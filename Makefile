GO ?= go

# Benchmark knobs: `make bench` records a dated, benchstat-compatible JSON
# trajectory point under bench/. Override BENCHTIME (e.g. 5x or 2s) for
# stable numbers, BENCH to narrow the pattern, BENCHLABEL to tag the run.
BENCH ?= .
BENCHTIME ?= 1x
BENCHLABEL ?=
BENCH_DATE := $(shell date -u +%F)

.PHONY: all build test test-race vet fmt lint bench bench-smoke verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static checks, as run by CI's lint job.
lint: vet fmt

# Two steps (not a pipe) so a failing benchmark run aborts the recipe
# instead of recording a silently truncated trajectory point.
bench:
	@mkdir -p bench
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) ./... > bench/.raw.txt
	$(GO) run ./internal/tools/benchjson -out bench/BENCH_$(BENCH_DATE).json -label '$(BENCHLABEL)' < bench/.raw.txt > /dev/null
	@rm -f bench/.raw.txt

# Quick rot check: every benchmark must still compile and run one iteration.
# CI runs this on each push.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Tier-1 verification (ROADMAP).
verify: build test
