GO ?= go

.PHONY: all build test test-race vet fmt bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Tier-1 verification (ROADMAP).
verify: build test
