GO ?= go

# Benchmark knobs: `make bench` records a dated, benchstat-compatible JSON
# trajectory point under bench/. Override BENCHTIME (e.g. 5x or 2s) for
# stable numbers, BENCH to narrow the pattern, BENCHLABEL to tag the run.
BENCH ?= .
BENCHTIME ?= 1x
BENCHLABEL ?=
BENCH_DATE := $(shell date -u +%F)

.PHONY: all build test test-race vet fmt lint bench bench-smoke bench-compare fuzz-smoke cover verify

all: build

build:
	$(GO) build ./...

# -shuffle=on randomises test execution order within each package, surfacing
# inter-test state leaks (shared caches, leaked globals) that a fixed order
# hides. The shuffle seed is printed on failure for reproduction.
test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static checks, as run by CI's lint job: go vet, gofmt, and the repo's own
# analyzer suite (internal/analysis, surfaced as `nopfs lint`) enforcing the
# determinism / ctxfirst / goroutine / metricnames / exitcodes / retrybound
# contracts.
# On failure the recipe prints the suppression grammar so the fix path is
# one copy-paste away.
lint: vet fmt
	@$(GO) run ./cmd/nopfs lint ./... || { \
	  echo ''; \
	  echo 'nopfs lint found violations. Fix them, or suppress a single line with'; \
	  echo '    //lint:ignore <check> <reason>'; \
	  echo 'placed on (or directly above) the flagged line. The reason is mandatory:'; \
	  echo 'a reasonless ignore is itself a finding. Checks: determinism, ctxfirst,'; \
	  echo 'goroutine, metricnames, exitcodes, retrybound. See README "Static analysis".'; \
	  exit 1; }

# Fault-tolerance soak, as run by CI's chaos-soak job: the live chaos
# matrix (chan + tcp fabrics crossed with the node-crash, flaky-fabric, and
# meltdown presets) plus the elastic-membership matrix (ranks joining and
# leaving at epoch boundaries), under the race detector with the default
# resilience policy — exactly-once delivery, crash/elastic redistribution,
# and leak-free teardown get their memory-model audit on every push.
chaos-soak:
	$(GO) test -race -count=1 -run 'TestChaosSoak|TestElasticSoak' ./nopfs/

# Two steps (not a pipe) so a failing benchmark run aborts the recipe
# instead of recording a silently truncated trajectory point. One shell with
# an EXIT trap, so the .raw.txt scratch file is removed on every outcome —
# success, a failing run, or a failing benchjson step.
bench:
	@mkdir -p bench
	@trap 'rm -f bench/.raw.txt' EXIT; \
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) ./... > bench/.raw.txt && \
	$(GO) run ./internal/tools/benchjson -out bench/BENCH_$(BENCH_DATE).json -label '$(BENCHLABEL)' < bench/.raw.txt > /dev/null

# Quick rot check: every benchmark must still compile and run one iteration.
# CI runs this on each push (and feeds the run into bench-compare below).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Benchstat-style diff of two trajectory documents. Defaults to the two
# most recently written bench/BENCH_*.json files (mtime order — "_baseline"
# suffixes make lexicographic order lie); override with OLD= and NEW=.
# Advisory by default (regressions warn, exit 0); pass
# BENCHCOMPARE_FLAGS=-gate to make a regression past the threshold fail.
OLD ?=
NEW ?=
BENCHCOMPARE_FLAGS ?=

bench-compare:
	@old='$(OLD)'; new='$(NEW)'; \
	if [ -z "$$old" ] || [ -z "$$new" ]; then \
	  set -- $$(ls -t bench/BENCH_*.json 2>/dev/null | head -2); \
	  if [ $$# -lt 2 ] && { [ -z "$$old" ] || [ -z "$$new" ]; }; then \
	    echo "bench-compare: need two bench/BENCH_*.json files (or set OLD= and NEW=)"; exit 1; \
	  fi; \
	  [ -n "$$new" ] || new=$$1; \
	  [ -n "$$old" ] || old=$$2; \
	fi; \
	$(GO) run ./internal/tools/benchcompare -old "$$old" -new "$$new" $(BENCHCOMPARE_FLAGS)

# Fuzz knobs: `make fuzz-smoke` runs each wire-format and spec-grammar fuzz
# target briefly (CI does this per push); raise FUZZTIME for a longer local
# session or the workflow_dispatch nightly job.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzDecodeMessage$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz '^FuzzHeader$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/access -run '^$$' -fuzz '^FuzzParseAccessSpec$$' -fuzztime $(FUZZTIME)

# Coverage gate for the core packages: fails when total statement coverage
# of internal/... drops below COVER_MIN percent. CI runs this per push.
COVER_MIN ?= 80

cover:
	@trap 'rm -f .cover.out' EXIT; \
	$(GO) test -coverprofile=.cover.out ./internal/... || { echo "cover: go test failed (not a gate violation)"; exit 1; }; \
	total=$$($(GO) tool cover -func=.cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "total internal/... coverage: $$total% (gate: $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) ? 1 : 0 }' || \
	{ echo "coverage below gate"; exit 1; }

# Tier-1 verification (ROADMAP).
verify: build test
