GO ?= go

.PHONY: all build test test-race vet fmt lint bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static checks, as run by CI's lint job.
lint: vet fmt

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Tier-1 verification (ROADMAP).
verify: build test
