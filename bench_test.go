// Package repro_test is the benchmark harness that regenerates every table
// and figure of "Clairvoyant Prefetching for Distributed Machine Learning
// I/O" (SC 2021). One benchmark per paper artifact; each runs at a reduced
// dataset scale that preserves the storage-hierarchy regime (see
// internal/sim.ScaleSystem), and reports the headline metric of its figure
// as a custom unit so `go test -bench=.` doubles as a results table.
//
// Absolute runtimes are not expected to match the paper (the substrate is a
// simulator, not Piz Daint/Lassen); EXPERIMENTS.md records paper-vs-measured
// shapes.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/trainer"
	"repro/nopfs"
	"repro/sim"
)

// benchScale keeps full Fig. 8 policy sweeps fast while preserving regimes.
const benchScale = 0.005

// bg is the benchmarks' run context; cancellation behaviour is covered by
// the nopfs and transport test tiers.
var bg = context.Background()

// BenchmarkTable1Characteristics exercises the framework-comparison
// registry: every policy of Table 1 instantiated and round-tripped by name.
func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range sim.AllPolicies() {
			if _, err := sim.PolicyByName(p.Name()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3AccessFrequency reproduces the access-frequency analysis:
// Monte-Carlo-free measurement of heavy hitters vs the binomial estimate
// (N=16, E=90, scaled F).
func BenchmarkFig3AccessFrequency(b *testing.B) {
	plan := &access.Plan{Seed: 42, F: 100000, N: 16, E: 90, BatchPerWorker: 4, DropLast: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := access.HeavyHitters(plan, 0, 0.8)
		ratio := float64(r.Measured) / r.Analytic
		b.ReportMetric(ratio, "measured/analytic")
	}
}

// fig8 runs one Fig. 8 panel across all policies and reports NoPFS's
// distance to the lower bound and its advantage over the worst policy.
func fig8(b *testing.B, id string) {
	s, err := sim.ScenarioByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		results, err := sim.RunScenario(bg, s, benchScale, 42)
		if err != nil {
			b.Fatal(err)
		}
		var lb, nopfsT, worst float64
		for _, r := range results {
			switch {
			case r.Failed:
			case r.Policy == "LowerBound":
				lb = r.ExecSeconds
			case r.Policy == "NoPFS":
				nopfsT = r.ExecSeconds
			default:
				if r.ExecSeconds > worst {
					worst = r.ExecSeconds
				}
			}
		}
		b.ReportMetric(nopfsT/lb, "NoPFS/LB")
		b.ReportMetric(worst/nopfsT, "worst/NoPFS")
	}
}

// BenchmarkFig8aMNIST: S < d1 regime.
func BenchmarkFig8aMNIST(b *testing.B) { fig8(b, "fig8a") }

// BenchmarkFig8bImageNet1k: d1 < S < D regime.
func BenchmarkFig8bImageNet1k(b *testing.B) { fig8(b, "fig8b") }

// BenchmarkFig8cOpenImages: d1 < S < ND regime.
func BenchmarkFig8cOpenImages(b *testing.B) { fig8(b, "fig8c") }

// BenchmarkFig8dImageNet22k: D < S < ND regime.
func BenchmarkFig8dImageNet22k(b *testing.B) { fig8(b, "fig8d") }

// BenchmarkFig8eCosmoFlow: ND < S regime.
func BenchmarkFig8eCosmoFlow(b *testing.B) { fig8(b, "fig8e") }

// BenchmarkFig8fCosmoFlow512: ND < S, N=8, 1 GB samples.
func BenchmarkFig8fCosmoFlow512(b *testing.B) { fig8(b, "fig8f") }

// fig9Sweep runs the 25-point RAM x SSD study through the sweep engine at
// the given pool width and reports the best/worst configuration spread.
func fig9Sweep(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		points, err := sim.Fig9SweepParallel(bg, 0.002, 11, parallel)
		if err != nil {
			b.Fatal(err)
		}
		best, worst := points[0].Result.ExecSeconds, points[0].Result.ExecSeconds
		for _, p := range points {
			if v := p.Result.ExecSeconds; v < best {
				best = v
			} else if v > worst {
				worst = v
			}
		}
		b.ReportMetric(worst/best, "worst/best-config")
	}
}

// BenchmarkFig9EnvironmentSweep is the Fig. 9 study on a GOMAXPROCS-wide
// pool (the default engine configuration).
func BenchmarkFig9EnvironmentSweep(b *testing.B) { fig9Sweep(b, 0) }

// BenchmarkFig9EnvironmentSweepSerial pins the engine to one goroutine;
// comparing against the parallel variants shows the sweep-engine speedup on
// this host.
func BenchmarkFig9EnvironmentSweepSerial(b *testing.B) { fig9Sweep(b, 1) }

// BenchmarkFig9EnvironmentSweepParallel8 runs the same grid on an 8-wide
// pool.
func BenchmarkFig9EnvironmentSweepParallel8(b *testing.B) { fig9Sweep(b, 8) }

// fig10 runs a scaling experiment and reports the PyTorch-vs-NoPFS epoch
// ratio at the largest scale point.
func fig10(b *testing.B, exp trainer.Experiment, gpus int) {
	exp.GPUCounts = []int{gpus}
	for i := 0; i < b.N; i++ {
		points, err := exp.Run(bg)
		if err != nil {
			b.Fatal(err)
		}
		var pytorch, nopfsT float64
		for _, p := range points {
			switch p.Loader {
			case "PyTorch":
				pytorch = p.MedianEpoch
			case "NoPFS":
				nopfsT = p.MedianEpoch
			}
		}
		b.ReportMetric(pytorch/nopfsT, "PyTorch/NoPFS")
	}
}

// BenchmarkFig10ImageNet1kScalingPizDaint: paper headline 2.2x at 256 GPUs.
func BenchmarkFig10ImageNet1kScalingPizDaint(b *testing.B) {
	fig10(b, trainer.Fig10PizDaint(0.1), 256)
}

// BenchmarkFig10ImageNet1kScalingLassen: paper headline 5.4x at 1024 GPUs
// (measured here at 256 ranks under dataset scaling).
func BenchmarkFig10ImageNet1kScalingLassen(b *testing.B) {
	fig10(b, trainer.Fig10Lassen(0.1), 256)
}

// benchFig10TrainerGrid runs the full Fig. 10 Piz Daint grid (4 GPU counts
// × 4 loaders) through the sweep engine at a fixed pool width. Comparing
// the Serial and Parallel8 variants shows the engine's wall-clock speedup
// on trainer grids, mirroring the Fig9EnvironmentSweep pair for the
// simulator grids.
func benchFig10TrainerGrid(b *testing.B, parallel int) {
	exp := trainer.Fig10PizDaint(0.05)
	runner := &sim.Runner{Parallel: parallel}
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(bg, exp.Grid(1))
		if err != nil {
			b.Fatal(err)
		}
		points, err := trainer.PointsFromReport(rep)
		if err != nil {
			b.Fatal(err)
		}
		var pytorch, nopfsT float64
		for _, p := range points {
			if p.GPUs != 256 {
				continue
			}
			switch p.Loader {
			case "PyTorch":
				pytorch = p.MedianEpoch
			case "NoPFS":
				nopfsT = p.MedianEpoch
			}
		}
		b.ReportMetric(pytorch/nopfsT, "PyTorch/NoPFS")
	}
}

// BenchmarkFig10TrainerGridSerial pins the trainer grid to one goroutine.
func BenchmarkFig10TrainerGridSerial(b *testing.B) { benchFig10TrainerGrid(b, 1) }

// BenchmarkFig10TrainerGridParallel8 runs the same grid on an 8-wide pool.
func BenchmarkFig10TrainerGridParallel8(b *testing.B) { benchFig10TrainerGrid(b, 8) }

// BenchmarkFig11Epoch0 reports the epoch-0 / steady-state batch-time ratio
// for NoPFS (cold caches make epoch 0 slower).
func BenchmarkFig11Epoch0(b *testing.B) {
	exp := trainer.Fig10PizDaint(0.1)
	exp.GPUCounts = []int{128}
	for i := 0; i < b.N; i++ {
		points, err := exp.Run(bg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Loader == "NoPFS" {
				b.ReportMetric(p.Batch0.Mean/p.Batch.Mean, "epoch0/steady")
			}
		}
	}
}

// BenchmarkFig12CacheStats reports NoPFS's remote-fetch fraction at scale.
func BenchmarkFig12CacheStats(b *testing.B) {
	exp := trainer.Fig10Lassen(0.1)
	exp.GPUCounts = []int{256}
	for i := 0; i < b.N; i++ {
		points, err := exp.Run(bg)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range trainer.Fig12CacheStats(points) {
			b.ReportMetric(p.LocFraction[2], "local-frac")
			b.ReportMetric(p.LocFraction[1], "remote-frac")
			b.ReportMetric(p.LocFraction[0], "pfs-frac")
		}
	}
}

// BenchmarkFig13BatchSize reports the NoPFS advantage averaged over the
// batch-size sweep.
func BenchmarkFig13BatchSize(b *testing.B) {
	exps := trainer.Fig13BatchSweep(0.1)
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, exp := range exps {
			points, err := exp.Run(bg)
			if err != nil {
				b.Fatal(err)
			}
			var pytorch, nopfsT float64
			for _, p := range points {
				switch p.Loader {
				case "PyTorch":
					pytorch = p.Batch.Median
				case "NoPFS":
					nopfsT = p.Batch.Median
				}
			}
			ratios = append(ratios, pytorch/nopfsT)
		}
		b.ReportMetric(stats.Mean(ratios), "PyTorch/NoPFS-batch")
	}
}

// BenchmarkFig14ImageNet22k: paper headline 2.4x at 1024 GPUs.
func BenchmarkFig14ImageNet22k(b *testing.B) {
	fig10(b, trainer.Fig14Lassen(0.1), 256)
}

// BenchmarkFig15CosmoFlow: paper headline 2.1x at 1024 GPUs.
func BenchmarkFig15CosmoFlow(b *testing.B) {
	fig10(b, trainer.Fig15Lassen(0.1), 256)
}

// BenchmarkFig16EndToEnd reports the end-to-end training speedup at equal
// accuracy (paper: 1.42x).
func BenchmarkFig16EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := trainer.Fig16EndToEnd(bg, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		var pytorch, nopfsT float64
		for _, r := range results {
			switch r.Loader {
			case "PyTorch":
				pytorch = r.TotalSeconds
			case "NoPFS":
				nopfsT = r.TotalSeconds
			}
		}
		b.ReportMetric(pytorch/nopfsT, "end-to-end-speedup")
	}
}

// BenchmarkAblations quantifies each NoPFS design choice on the Fig. 8d
// regime (D < S < ND) under 5x compute — the operating point where I/O
// genuinely binds, so placement quality, remote fetching, and prefetch
// depth each become visible. The variant grid runs through the sweep
// engine.
func BenchmarkAblations(b *testing.B) {
	grid := sim.AblationGrid(benchScale, 42, 1)
	runner := &sim.Runner{}
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(bg, grid)
		if err != nil {
			b.Fatal(err)
		}
		summaries := rep.Aggregate()
		base := summaries[0].Metric(sim.MetricExec).Mean // full NoPFS is the first column
		for _, s := range summaries[1:] {
			b.ReportMetric(s.Metric(sim.MetricExec).Mean/base, s.Policy+"/full")
		}
	}
}

// benchDelivery runs one fixed in-process cluster per iteration, consuming
// every worker's stream through the given loop. The three delivery-API
// variants below share identical cluster work, so their deltas isolate the
// per-sample overhead of Get vs the Samples iterator vs GetBatch.
func benchDelivery(b *testing.B, fn nopfs.RankFunc) {
	b.Helper()
	ds := dataset.MustNew(dataset.Spec{
		Name: "bench-delivery", F: 512, MeanSize: 2048, Classes: 10, Seed: 3,
	})
	opts := nopfs.NewOptions(
		nopfs.WithSeed(9),
		nopfs.WithEpochs(2),
		nopfs.WithBatchPerWorker(8),
		nopfs.WithStagingBuffer(4<<20),
		nopfs.WithStagingThreads(4),
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 4 << 20, Threads: 2}),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats, err := nopfs.RunCluster(bg, ds, 2, opts, fn)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for _, s := range stats {
			n += s.Delivered
		}
		b.ReportMetric(float64(n), "samples/op")
	}
}

// BenchmarkDeliveryGet consumes through the classic Get loop.
func BenchmarkDeliveryGet(b *testing.B) {
	benchDelivery(b, func(ctx context.Context, j *nopfs.Job) error {
		for {
			_, ok, err := j.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	})
}

// BenchmarkDeliverySamples consumes through the range-over-func iterator.
func BenchmarkDeliverySamples(b *testing.B) {
	benchDelivery(b, func(ctx context.Context, j *nopfs.Job) error {
		for _, err := range j.Samples(ctx) {
			if err != nil {
				return err
			}
		}
		return nil
	})
}

// BenchmarkDeliveryGetBatch consumes through per-worker minibatch pulls.
func BenchmarkDeliveryGetBatch(b *testing.B) {
	benchDelivery(b, func(ctx context.Context, j *nopfs.Job) error {
		for {
			batch, err := j.GetBatch(ctx, 8)
			if err != nil {
				return err
			}
			if batch == nil {
				return nil
			}
		}
	})
}

// BenchmarkSimulate10kWorkers stresses the struct-of-arrays hot state at a
// worker count two-and-a-half orders beyond the paper's Sec. 6 configuration
// (N=4): one ImageNet-22k epoch with 10⁴ workers, exercising the packed
// availability words and lean worker-0 assignment rows that keep the
// placement state O(F) instead of O(F × N). Beyond the paper's simulated
// envelope (see EXPERIMENTS.md); skipped under -short.
func BenchmarkSimulate10kWorkers(b *testing.B) {
	if testing.Short() {
		b.Skip("10k-worker simulation is a scale stress; skipped under -short")
	}
	s, err := sim.ScenarioByID("fig8d")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := s.Config(0.02, 42)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Work.Workers = 10000
	cfg.Work.Epochs = 1
	// Keep the global batch (workers × batch) within the scaled dataset.
	cfg.Work.BatchPerWorker = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(cfg, sim.NewNoPFS())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ExecSeconds, "sim-exec-s")
	}
}

// BenchmarkSweep100kCells streams a 100,000-cell grid (50 scenarios × 20
// policies × 100 replicas) through the CSV aggregator: resident Result
// memory stays at the engine's bounded delivery window plus the open summary
// group, independent of grid size. Skipped under -short.
func BenchmarkSweep100kCells(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-cell sweep is a scale stress; skipped under -short")
	}
	var scenarios []sim.GridScenario
	for i := 0; i < 50; i++ {
		scenarios = append(scenarios, sim.GridScenario{ID: fmt.Sprintf("row%02d", i)})
	}
	var policies []sim.GridPolicy
	for i := 0; i < 20; i++ {
		policies = append(policies, sim.GridPolicy{Name: fmt.Sprintf("col%02d", i)})
	}
	grid := &sim.Grid{
		Name: "bench-100k", Scenarios: scenarios, Policies: policies,
		Replicas: 100, BaseSeed: 7,
		Metrics: []sim.Metric{{Name: "score"}},
		Cell: func(si, pi, _, _ int) sim.CellFunc {
			return func(_ context.Context, seed uint64) (*sim.Outcome, error) {
				v := float64((seed*2654435761+uint64(si*31+pi))%1000) / 10
				return &sim.Outcome{Values: map[string]float64{"score": v}}, nil
			}
		},
	}
	runner := &sim.Runner{Parallel: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := runner.RunStream(bg, grid, sim.NewCSVAggregator(io.Discard)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalResweep measures a fully memoised re-run of the Fig. 8
// grid: every cell's configuration digest hits the ResultMemo, so the loop
// costs digesting plus report assembly — no simulation. Compare against
// BenchmarkFig8* for the cold cost the memo removes.
func BenchmarkIncrementalResweep(b *testing.B) {
	runner := &sim.Runner{Parallel: 1, Memo: sim.NewResultMemo(0)}
	if _, err := runner.Run(bg, sim.Fig8Grid(benchScale, 42, 1)); err != nil {
		b.Fatal(err) // cold fill
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(bg, sim.Fig8Grid(benchScale, 42, 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveClusterThroughput measures the real middleware end to end —
// samples delivered by a 4-worker in-process cluster — with the run
// orchestrated as a one-cell grid through the sweep engine, like every
// other experiment path.
func BenchmarkLiveClusterThroughput(b *testing.B) {
	ds := dataset.MustNew(dataset.Spec{
		Name: "bench-live", F: 512, MeanSize: 8 << 10, Classes: 10, Seed: 3,
	})
	grid := nopfs.ClusterGrid("bench-live",
		[]nopfs.ClusterScenario{{
			ID: "w4", Workers: 4,
			Dataset: func() (nopfs.Dataset, error) { return ds, nil },
			Options: nopfs.Options{
				Epochs: 2, BatchPerWorker: 8,
				StagingBytes: 4 << 20, StagingThreads: 4,
				Classes: []nopfs.Class{{Name: "ram", CapacityBytes: 8 << 20, Threads: 2}},
			},
		}},
		nopfs.ChanFabric(), 1, 9)
	runner := &sim.Runner{Parallel: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := runner.Run(bg, grid)
		if err != nil {
			b.Fatal(err)
		}
		n := int64(rep.Cells[0].Outcome.Values[nopfs.MetricDelivered])
		b.SetBytes(n * 8 << 10 / int64(b.N+1))
	}
}
