// nopfs-access demonstrates the access-pattern analysis of paper Sec. 3:
// the per-worker access-frequency distribution (Fig. 3), the analytic
// binomial heavy-hitter estimate versus the measured count, and a Lemma 1
// check on the generated plan.
//
// Usage:
//
//	nopfs-access                        # Fig. 3 defaults (N=16, E=90)
//	nopfs-access -f 1281167 -n 16 -e 90 # paper-scale (slower)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/access"
	"repro/internal/stats"
)

func main() {
	f := flag.Int("f", 100000, "dataset size F (paper Fig. 3 uses 1,281,167)")
	n := flag.Int("n", 16, "workers N")
	e := flag.Int("e", 90, "epochs E")
	seed := flag.Uint64("seed", 42, "shuffle seed")
	delta := flag.Float64("delta", 0.8, "heavy-hitter threshold factor δ")
	flag.Parse()

	// Ctrl-C / SIGTERM cancels the run context; the analysis stages below
	// are pure compute, so cancellation is honoured between stages.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	interrupted := func() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "nopfs-access: interrupted")
			os.Exit(130)
		}
	}

	plan := &access.Plan{Seed: *seed, F: *f, N: *n, E: *e, BatchPerWorker: 4, DropLast: true}
	if err := plan.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nopfs-access:", err)
		os.Exit(1)
	}

	fmt.Printf("Fig. 3: access frequency for worker 0 of %d, %d epochs, F=%d\n\n", *n, *e, *f)
	freq := plan.WorkerFrequencies(0)
	hist := access.FrequencyHistogram(freq)
	fmt.Print(hist.String())

	interrupted()
	r := access.HeavyHitters(plan, 0, *delta)
	fmt.Printf("\nmean accesses per worker        mu = E/N = %.3f\n", r.Mu)
	fmt.Printf("heavy hitters: accessed more than %d times ((1+%.1f)*mu)\n", r.Threshold, *delta)
	fmt.Printf("  analytic  F*P(X > %d), X~Binomial(%d, 1/%d): %.0f\n", r.Threshold, *e, *n, r.Analytic)
	fmt.Printf("  measured from the actual shuffles:           %d\n", r.Measured)
	fmt.Printf("  (paper, at F=1,281,167: analytic 31,635 vs measured 31,863)\n")

	interrupted()
	fmt.Printf("\nLemma 1 verification over all %d samples:\n", *f)
	freqs := plan.Frequencies()
	for _, d := range []float64{0.25, 0.5, 1.0} {
		v := access.Lemma1Violations(freqs, *e, d)
		fmt.Printf("  delta=%.2f: %d violations\n", d, v)
	}
	if k, tot := access.TotalAccessInvariant(plan, freqs); k >= 0 {
		fmt.Printf("  INVARIANT BROKEN: sample %d accessed %d times\n", k, tot)
		os.Exit(1)
	}
	fmt.Printf("  every sample accessed exactly once per epoch: ok\n")
	_ = stats.BinomialMean // keep the analytic package linked explicitly
}
