// nopfs-access demonstrates the access-pattern analysis of paper Sec. 3.
//
// Deprecated: nopfs-access is a compatibility shim over `nopfs access` (see
// cmd/nopfs); both produce byte-identical output. New scripts should invoke
// the subcommand form.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunAccess("nopfs-access", os.Args[1:], os.Stdout, os.Stderr))
}
