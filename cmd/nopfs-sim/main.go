// nopfs-sim runs the paper's I/O performance simulator (Sec. 6): the Fig. 8
// policy comparison across dataset/storage regimes, the Fig. 9 environment
// sweep, and the Table 1 framework-characteristics summary.
//
// Usage:
//
//	nopfs-sim -scenario fig8b            # one Fig. 8 panel
//	nopfs-sim -all                       # all six panels
//	nopfs-sim -sweep                     # Fig. 9 environment study
//	nopfs-sim -table1                    # Table 1 characteristics
//	nopfs-sim -all -scale 1              # paper-scale datasets (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/sim"
)

func main() {
	scenario := flag.String("scenario", "", "Fig. 8 panel id (fig8a..fig8f) or dataset name")
	all := flag.Bool("all", false, "run every Fig. 8 panel")
	sweep := flag.Bool("sweep", false, "run the Fig. 9 environment sweep")
	table1 := flag.Bool("table1", false, "print the Table 1 framework comparison")
	scale := flag.Float64("scale", 0.02, "dataset/capacity scale (1 = paper size)")
	seed := flag.Uint64("seed", 42, "training PRNG seed")
	flag.Parse()

	switch {
	case *table1:
		printTable1()
	case *sweep:
		points, err := sim.Fig9Sweep(*scale, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Fig. 9: ImageNet-22k, NoPFS, 5x compute, 5 GB staging buffer")
		sim.PrintSweep(os.Stdout, points)
		staging, err := sim.Fig9StagingCheck(*scale, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nstaging-buffer preliminary (runtime vs staging GB, RAM=32, no SSD):")
		for _, gb := range []int{1, 2, 4, 5} {
			fmt.Printf("  %d GB: %.1fs\n", gb, staging[gb].ExecSeconds)
		}
	case *all:
		for _, s := range sim.Fig8Scenarios() {
			runOne(s, *scale, *seed)
		}
	case *scenario != "":
		s, err := sim.ScenarioByID(*scenario)
		if err != nil {
			fatal(err)
		}
		runOne(s, *scale, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(s sim.Scenario, scale float64, seed uint64) {
	results, err := sim.RunScenario(s, scale, seed)
	if err != nil {
		fatal(err)
	}
	sim.PrintScenario(os.Stdout, s, results)
	fmt.Println()
}

// printTable1 reproduces Table 1: the qualitative capabilities of each
// approach.
func printTable1() {
	type row struct {
		name                                         string
		sysScale, dataScale, fullRand, hwIndep, easy bool
	}
	rows := []row{
		{"Double-buffering (PyTorch)", false, true, true, false, true},
		{"tf.data", false, true, false, false, true},
		{"Data sharding", true, false, false, false, true},
		{"DeepIO", true, false, false, false, true},
		{"LBANN data store", true, false, true, false, false},
		{"Locality-aware loading", true, true, true, false, false},
		{"NoPFS (this work)", true, true, true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Printf("%-28s %10s %10s %10s %10s %8s\n",
		"approach", "sys-scale", "data-scale", "full-rand", "hw-indep", "easy")
	for _, r := range rows {
		fmt.Printf("%-28s %10s %10s %10s %10s %8s\n",
			r.name, mark(r.sysScale), mark(r.dataScale), mark(r.fullRand), mark(r.hwIndep), mark(r.easy))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nopfs-sim:", err)
	os.Exit(1)
}
