// nopfs-sim runs the paper's I/O performance simulator.
//
// Deprecated: nopfs-sim is a compatibility shim over `nopfs sim` (see
// cmd/nopfs); both produce byte-identical output. New scripts should invoke
// the subcommand form.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunSim("nopfs-sim", os.Args[1:], os.Stdout, os.Stderr))
}
