// nopfs-sim runs the paper's I/O performance simulator (Sec. 6): the Fig. 8
// policy comparison across dataset/storage regimes, the Fig. 9 environment
// sweep, the NoPFS design ablation, and the Table 1 framework summary. All
// simulation modes execute through the concurrent sweep engine.
//
// Usage:
//
//	nopfs-sim -scenario fig8b                      # one Fig. 8 panel
//	nopfs-sim -all                                 # all six panels
//	nopfs-sim -sweep                               # Fig. 9 environment study
//	nopfs-sim -ablation                            # NoPFS design ablation
//	nopfs-sim -table1                              # Table 1 characteristics
//	nopfs-sim -all -parallel 8 -replicas 5         # 8-wide pool, 5 seeds/cell
//	nopfs-sim -all -format json                    # structured output
//	nopfs-sim -all -scale 1                        # paper-scale datasets (slow)
//	nopfs-sim -scenario fig8d -chaos straggler     # inject a fault profile
//	nopfs-sim -all -chaos "tier:0x4@1,drop:0.05"   # custom fault spec
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/chaos"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/sim"
)

func main() {
	scenario := flag.String("scenario", "", "Fig. 8 panel id (fig8a..fig8f) or dataset name")
	all := flag.Bool("all", false, "run every Fig. 8 panel")
	sweepFlag := flag.Bool("sweep", false, "run the Fig. 9 environment sweep")
	ablation := flag.Bool("ablation", false, "run the NoPFS design ablation")
	table1 := flag.Bool("table1", false, "print the Table 1 framework comparison")
	scale := flag.Float64("scale", 0.02, "dataset/capacity scale (1 = paper size)")
	seed := flag.Uint64("seed", 42, "training PRNG seed")
	parallel := flag.Int("parallel", 0, "sweep-engine goroutine pool width (0 = GOMAXPROCS)")
	replicas := flag.Int("replicas", 1, "replica seeds per (scenario, policy) cell")
	format := flag.String("format", "text", "output format: text, json, or csv")
	chaosSpec := flag.String("chaos", "", "fault profile: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a spec like \"straggler:1x2@1,tier:0x4,drop:0.05\"; adds a clean-vs-faulted profile axis to the grid")
	stream := flag.Bool("stream", false, "stream output incrementally as cells finish (same bytes as the buffered encoders; -sweep text uses the generic table instead of the RAM x SSD matrix)")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or csv)", *format))
	}
	profiles, err := sweep.ChaosAxis(*chaosSpec)
	if err != nil {
		fatal(err)
	}
	// Profile collectors run for the whole invocation. fatal's os.Exit skips
	// the finalizer, so error paths leave truncated profiles — fine for a
	// diagnostics flag; success paths get complete files.
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	runner := &sim.Runner{Parallel: *parallel}
	// Ctrl-C / SIGTERM cancels the run context: in-flight grids abort
	// promptly instead of finishing the sweep.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *table1:
		printTable1()
	case *sweepFlag:
		runSweep(ctx, runner, *scale, *seed, *replicas, *format, profiles, *stream)
	case *ablation:
		grid := sim.AblationGrid(*scale, *seed, *replicas)
		grid.Profiles = profiles
		emit(ctx, runner, grid, *format, *stream)
	case *all:
		grid := sim.Fig8Grid(*scale, *seed, *replicas)
		grid.Profiles = profiles
		emit(ctx, runner, grid, *format, *stream)
	case *scenario != "":
		s, err := sim.ScenarioByID(*scenario)
		if err != nil {
			fatal(err)
		}
		grid := sim.ScenarioGrid(s, *scale, *seed, *replicas)
		grid.Profiles = profiles
		emit(ctx, runner, grid, *format, *stream)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// emit runs the grid and writes it in the requested format. With -stream the
// grid flows through the incremental encoders — identical bytes, but only a
// bounded window of results resident at once.
func emit(ctx context.Context, runner *sim.Runner, grid *sim.Grid, format string, stream bool) {
	if stream {
		if err := runner.RunStream(ctx, grid, aggregatorFor(os.Stdout, format)); err != nil {
			fatal(err)
		}
		return
	}
	rep, err := runner.Run(ctx, grid)
	if err != nil {
		fatal(err)
	}
	if err := write(os.Stdout, rep, format); err != nil {
		fatal(err)
	}
}

// aggregatorFor picks the streaming encoder for a format.
func aggregatorFor(w io.Writer, format string) sim.Aggregator {
	switch format {
	case "json":
		return sim.NewJSONAggregator(w)
	case "csv":
		return sim.NewCSVAggregator(w)
	default:
		return sim.NewTextAggregator(w)
	}
}

// write encodes one report.
func write(w io.Writer, rep *sim.Report, format string) error {
	switch format {
	case "json":
		return sim.WriteJSON(w, rep)
	case "csv":
		return sim.WriteCSV(w, rep)
	default:
		return sim.WriteText(w, rep)
	}
}

// runSweep renders the Fig. 9 study: environment grid plus staging
// preliminary as one engine run, so json/csv emit a single document and
// every format honours -replicas. Text mode keeps the legacy RAM × SSD
// matrix, with means when the grid ran multiple seeds per cell; with a
// fault-profile axis — or under -stream, which cannot buffer the whole
// grid — it falls back to the generic per-profile table (the matrix has
// one cell per scenario).
func runSweep(ctx context.Context, runner *sim.Runner, scale float64, seed uint64, replicas int, format string, profiles []sweep.ProfileSpec, stream bool) {
	grid := sim.Fig9FullGrid(scale, seed, replicas)
	grid.Profiles = profiles
	if stream {
		if err := runner.RunStream(ctx, grid, aggregatorFor(os.Stdout, format)); err != nil {
			fatal(err)
		}
		return
	}
	rep, err := runner.Run(ctx, grid)
	if err != nil {
		fatal(err)
	}
	if format != "text" || len(profiles) > 0 {
		if err := write(os.Stdout, rep, format); err != nil {
			fatal(err)
		}
		return
	}
	byID := map[string]sim.Summary{}
	for _, s := range rep.Aggregate() {
		byID[s.Scenario] = s
	}
	title := "Fig. 9: ImageNet-22k, NoPFS, 5x compute, 5 GB staging buffer"
	if rep.Replicas > 1 {
		title += fmt.Sprintf(" (mean of %d seeds)", rep.Replicas)
	}
	fmt.Println(title)
	rams, ssds := sim.Fig9Axes()
	fmt.Printf("exec seconds by RAM (rows) x SSD (cols), GB:\n%8s", "")
	for _, ssd := range ssds {
		fmt.Printf("%10d", ssd)
	}
	fmt.Println()
	for _, ram := range rams {
		fmt.Printf("%8d", ram)
		for _, ssd := range ssds {
			fmt.Printf("%10.1f", byID[sim.Fig9CellID(ram, ssd)].Metric(sim.MetricExec).Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nstaging-buffer preliminary (runtime vs staging GB, RAM=32, no SSD):")
	for _, gb := range sim.Fig9StagingSizes() {
		fmt.Printf("  %d GB: %.1fs\n", gb, byID[sim.Fig9StagingID(gb)].Metric(sim.MetricExec).Mean)
	}
}

// printTable1 reproduces Table 1: the qualitative capabilities of each
// approach.
func printTable1() {
	type row struct {
		name                                         string
		sysScale, dataScale, fullRand, hwIndep, easy bool
	}
	rows := []row{
		{"Double-buffering (PyTorch)", false, true, true, false, true},
		{"tf.data", false, true, false, false, true},
		{"Data sharding", true, false, false, false, true},
		{"DeepIO", true, false, false, false, true},
		{"LBANN data store", true, false, true, false, false},
		{"Locality-aware loading", true, true, true, false, false},
		{"NoPFS (this work)", true, true, true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Printf("%-28s %10s %10s %10s %10s %8s\n",
		"approach", "sys-scale", "data-scale", "full-rand", "hw-indep", "easy")
	for _, r := range rows {
		fmt.Printf("%-28s %10s %10s %10s %10s %8s\n",
			r.name, mark(r.sysScale), mark(r.dataScale), mark(r.fullRand), mark(r.hwIndep), mark(r.easy))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nopfs-sim:", err)
	os.Exit(1)
}
