// nopfs-train reproduces the paper's real-system evaluation (Sec. 7) on the
// simulated Piz Daint and Lassen machines: scaling studies (Figs. 10, 14,
// 15), epoch-0 behaviour (Fig. 11), NoPFS cache statistics (Fig. 12), the
// batch-size sweep (Fig. 13), and the end-to-end 90-epoch run (Fig. 16).
// Every figure's (machine × loader × GPU count × replica seed) grid executes
// through the concurrent sweep engine, so output is bit-identical at any
// -parallel width.
//
// Usage:
//
//	nopfs-train -fig 10                     # ImageNet-1k scaling, both machines
//	nopfs-train -fig 10 -parallel 8         # same bytes, 8-wide pool
//	nopfs-train -fig 10 -replicas 5         # 5 seeds per cell, mean/CI tables
//	nopfs-train -fig 12 -format csv         # structured output
//	nopfs-train -fig 14 -gpus 32,64         # trim the GPU-count axis
//	nopfs-train -fig 16 -scale 0.1          # end-to-end accuracy vs time
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/chaos"
	"repro/internal/profiling"
	"repro/internal/sweep"
	"repro/internal/trainer"
)

func main() {
	fig := flag.Int("fig", 10, "figure to reproduce: 10, 11, 12, 13, 14, 15, or 16")
	scale := flag.Float64("scale", 0.1, "dataset/capacity scale (1 = paper size)")
	seed := flag.Uint64("seed", 0, "override the figure's preset shuffle seed (0 = preset)")
	parallel := flag.Int("parallel", 0, "sweep-engine goroutine pool width (0 = GOMAXPROCS)")
	replicas := flag.Int("replicas", 1, "replica seeds per grid cell")
	format := flag.String("format", "text", "output format: text, json, or csv")
	gpus := flag.String("gpus", "", "comma-separated GPU counts to keep (default: the figure's full axis)")
	chaosSpec := flag.String("chaos", "", "fault profile: a preset ("+strings.Join(chaos.PresetNames(), ", ")+") or a spec like \"straggler:1x2@1,drop:0.05\"; adds a clean-vs-faulted profile axis to the grid (fault profiles extend beyond the paper's measured configurations)")
	var prof profiling.Flags
	prof.Register(flag.CommandLine)
	flag.Parse()

	switch *format {
	case "text", "json", "csv":
	default:
		fatal(fmt.Errorf("unknown -format %q (want text, json, or csv)", *format))
	}
	keep, err := parseGPUs(*gpus)
	if err != nil {
		fatal(err)
	}
	profiles, err := sweep.ChaosAxis(*chaosSpec)
	if err != nil {
		fatal(err)
	}
	// Profile collectors run for the whole invocation. fatal's os.Exit skips
	// the finalizer, so error paths leave truncated profiles — fine for a
	// diagnostics flag; success paths get complete files.
	stopProf, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	// Ctrl-C / SIGTERM cancels the run context: in-flight grids abort
	// promptly instead of finishing the figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := runConfig{
		ctx:      ctx,
		runner:   &sweep.Runner{Parallel: *parallel},
		replicas: *replicas,
		format:   *format,
		seed:     *seed,
		keepGPUs: keep,
		profiles: profiles,
	}

	switch *fig {
	case 10:
		cfg.emitExperiment("Fig. 10 (left): ResNet-50/ImageNet-1k on Piz Daint", trainer.Fig10PizDaint(*scale))
		cfg.emitExperiment("Fig. 10 (right): ResNet-50/ImageNet-1k on Lassen", trainer.Fig10Lassen(*scale))
	case 11:
		cfg.emitFig11(trainer.Fig10PizDaint(*scale))
	case 12:
		cfg.emitFig12(trainer.Fig10PizDaint(*scale))
	case 13:
		cfg.emitFig13(*scale)
	case 14:
		cfg.emitExperiment("Fig. 14: ResNet-50/ImageNet-22k on Lassen", trainer.Fig14Lassen(*scale))
	case 15:
		cfg.emitExperiment("Fig. 15: CosmoFlow on Lassen", trainer.Fig15Lassen(*scale))
	case 16:
		cfg.emitFig16(*scale)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// runConfig carries the engine and presentation settings shared by every
// figure path.
type runConfig struct {
	ctx      context.Context
	runner   *sweep.Runner
	replicas int
	format   string
	seed     uint64
	keepGPUs []int
	// profiles is the -chaos fault-profile axis (clean + faulted), empty
	// without the flag.
	profiles []sweep.ProfileSpec
}

// parseGPUs parses the -gpus comma list.
func parseGPUs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -gpus entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// prep applies the seed override and GPU-count filter to one experiment. A
// filter that matches nothing on the experiment's axis is an error, not a
// silent full-axis run.
func (c runConfig) prep(exp trainer.Experiment) trainer.Experiment {
	if c.seed != 0 {
		exp.Seed = c.seed
	}
	if len(c.keepGPUs) > 0 {
		var counts []int
		for _, g := range exp.GPUCounts {
			for _, k := range c.keepGPUs {
				if g == k {
					counts = append(counts, g)
					break
				}
			}
		}
		if len(counts) == 0 {
			fatal(fmt.Errorf("-gpus %v matches none of %s's GPU counts %v",
				c.keepGPUs, exp.Name, exp.GPUCounts))
		}
		exp.GPUCounts = counts
	}
	return exp
}

// trim applies prep to a list of experiments.
func (c runConfig) trim(exps []trainer.Experiment) []trainer.Experiment {
	out := make([]trainer.Experiment, len(exps))
	for i, e := range exps {
		out[i] = c.prep(e)
	}
	return out
}

// run executes one grid through the engine, attaching the -chaos
// clean-vs-faulted profile axis (a no-op without the flag).
func (c runConfig) run(grid *sweep.Grid) *sweep.Report {
	grid.Profiles = c.profiles
	rep, err := c.runner.Run(c.ctx, grid)
	if err != nil {
		fatal(err)
	}
	return rep
}

// rowLabel is sweep's shared profile-qualified labelling rule, aliased for
// the bespoke figure tables below.
var rowLabel = sweep.RowLabel

// emitExperiment runs one experiment's grid and writes it in the requested
// format (generic text table, JSON, or CSV).
func (c runConfig) emitExperiment(title string, exp trainer.Experiment) {
	c.emitGrid(title, c.prep(exp).Grid(c.replicas))
}

// emitGrid runs and renders a prepared grid.
func (c runConfig) emitGrid(title string, grid *sweep.Grid) {
	rep := c.run(grid)
	if c.format == "text" {
		fmt.Println(title)
		check(sweep.WriteText(os.Stdout, rep))
		return
	}
	check(writeReport(os.Stdout, rep, c.format))
}

// emitFig11 renders the epoch-0 batch-time table (cold caches) from the
// Fig. 10 Piz Daint grid's batch0 metrics.
func (c runConfig) emitFig11(exp trainer.Experiment) {
	rep := c.run(c.prep(exp).Grid(c.replicas))
	if c.format != "text" {
		check(writeReport(os.Stdout, rep, c.format))
		return
	}
	fmt.Println("Fig. 11: epoch-0 batch times on Piz Daint")
	fmt.Printf("%-24s %-14s %12s %12s %12s\n", "scenario", "loader", "median", "p95", "max")
	for _, s := range rep.Aggregate() {
		if s.Failed {
			continue
		}
		fmt.Printf("%-24s %-14s %11.3fs %11.3fs %11.3fs\n",
			s.Scenario, rowLabel(s.Policy, s.Profile),
			s.Metric(trainer.MetricBatch0Med).Mean,
			s.Metric(trainer.MetricBatch0P95).Mean,
			s.Metric(trainer.MetricBatch0Max).Mean)
	}
}

// emitFig12 renders NoPFS's stall time and fetch-location mix per scale
// from the Fig. 10 Piz Daint grid.
func (c runConfig) emitFig12(exp trainer.Experiment) {
	rep := c.run(c.prep(exp).Grid(c.replicas))
	if c.format != "text" {
		check(writeReport(os.Stdout, rep, c.format))
		return
	}
	fmt.Println("Fig. 12: NoPFS cache stats on Piz Daint (ImageNet-1k)")
	fmt.Printf("%-24s %12s %8s %8s %8s\n", "scenario", "stall", "pfs%", "remote%", "local%")
	for _, s := range rep.Aggregate() {
		if s.Policy != "NoPFS" || s.Failed {
			continue
		}
		fmt.Printf("%-24s %11.2fs %7.1f%% %7.1f%% %7.1f%%\n",
			rowLabel(s.Scenario, s.Profile),
			s.Metric(trainer.MetricStallS).Mean,
			100*s.Metric(trainer.MetricPFSFrac).Mean,
			100*s.Metric(trainer.MetricRemoteFrac).Mean,
			100*s.Metric(trainer.MetricLocalFrac).Mean)
	}
}

// emitFig13 renders the batch-size sweep. Text mode prints the figure's
// primary statistic — steady-state per-batch times (median/p95/max) per
// batch size; structured modes emit the full grid report.
func (c runConfig) emitFig13(scale float64) {
	grid, err := trainer.MultiGrid("fig13", c.trim(trainer.Fig13BatchSweep(scale)), c.replicas)
	if err != nil {
		fatal(err)
	}
	rep := c.run(grid)
	if c.format != "text" {
		check(writeReport(os.Stdout, rep, c.format))
		return
	}
	fmt.Println("Fig. 13: batch-size sweep, ImageNet-1k, 128 Lassen GPUs")
	fmt.Printf("%-20s %-14s %12s %12s %12s\n", "scenario", "loader", "median", "p95", "max")
	for _, s := range rep.Aggregate() {
		if s.Failed {
			continue
		}
		fmt.Printf("%-20s %-14s %11.3fs %11.3fs %11.3fs\n",
			s.Scenario, rowLabel(s.Policy, s.Profile),
			s.Metric(trainer.MetricBatchMedian).Mean,
			s.Metric(trainer.MetricBatchP95).Mean,
			s.Metric(trainer.MetricBatchMax).Mean)
	}
}

// emitFig16 renders the end-to-end accuracy-vs-time comparison. Text mode
// prints replica-0 curves from the cell payloads; structured modes emit the
// grid report.
func (c runConfig) emitFig16(scale float64) {
	// Fig. 16 is a single-point figure; honour -gpus the same way every
	// other figure does (prep errors on a non-matching filter) rather than
	// silently ignoring it, and carry the seed override and chaos profile
	// into the grid like every other figure.
	grid := trainer.Fig16GridFrom(c.prep(trainer.Fig16Experiment(scale)), c.replicas)
	rep := c.run(grid)
	if c.format != "text" {
		check(writeReport(os.Stdout, rep, c.format))
		return
	}
	fmt.Println("Fig. 16: end-to-end ResNet-50/ImageNet-1k, 256 Lassen GPUs, 90 epochs")
	for _, cell := range rep.Cells {
		if cell.Replica != 0 {
			continue
		}
		r, ok := cell.Outcome.Payload.(trainer.EndToEndResult)
		if !ok || len(r.Curve) == 0 {
			fmt.Printf("%-14s failed\n", rowLabel(cell.Policy, cell.Profile))
			continue
		}
		fmt.Printf("%-14s total %.1f min, final top-1 %.1f%%\n",
			rowLabel(r.Loader, cell.Profile), r.TotalSeconds/60, r.FinalTop1)
		for _, pt := range r.Curve {
			if pt.Epoch%10 == 0 {
				fmt.Printf("    epoch %2d  t=%8.1fs  top1=%.1f%%\n", pt.Epoch, pt.Seconds, pt.Top1Percent)
			}
		}
	}
}

// writeReport encodes one report.
func writeReport(w io.Writer, rep *sweep.Report, format string) error {
	switch format {
	case "json":
		return sweep.WriteJSON(w, rep)
	case "csv":
		return sweep.WriteCSV(w, rep)
	default:
		return sweep.WriteText(w, rep)
	}
}

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nopfs-train:", err)
	os.Exit(1)
}
