// nopfs-train reproduces the paper's real-system evaluation figures.
//
// Deprecated: nopfs-train is a compatibility shim over `nopfs train` (see
// cmd/nopfs); both produce byte-identical output. New scripts should invoke
// the subcommand form.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.RunTrain("nopfs-train", os.Args[1:], os.Stdout, os.Stderr))
}
