// nopfs-train reproduces the paper's real-system evaluation (Sec. 7) on the
// simulated Piz Daint and Lassen machines: scaling studies (Figs. 10, 14,
// 15), epoch-0 behaviour (Fig. 11), NoPFS cache statistics (Fig. 12), the
// batch-size sweep (Fig. 13), and the end-to-end 90-epoch run (Fig. 16).
//
// Usage:
//
//	nopfs-train -fig 10                  # ImageNet-1k scaling, both machines
//	nopfs-train -fig 12                  # NoPFS cache stats vs scale
//	nopfs-train -fig 16 -scale 0.1       # end-to-end accuracy vs time
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/perfmodel"
	"repro/internal/trainer"
)

func main() {
	fig := flag.Int("fig", 10, "figure to reproduce: 10, 11, 12, 13, 14, 15, or 16")
	scale := flag.Float64("scale", 0.1, "dataset/capacity scale (1 = paper size)")
	flag.Parse()

	switch *fig {
	case 10:
		runExperiment("Fig. 10 (left): ResNet-50/ImageNet-1k on Piz Daint", trainer.Fig10PizDaint(*scale))
		runExperiment("Fig. 10 (right): ResNet-50/ImageNet-1k on Lassen", trainer.Fig10Lassen(*scale))
	case 11:
		exp := trainer.Fig10PizDaint(*scale)
		points, err := exp.Run()
		check(err)
		fmt.Println("Fig. 11: epoch-0 batch times on Piz Daint")
		fmt.Printf("%-14s %6s %12s %12s %12s\n", "loader", "gpus", "median", "p95", "max")
		for _, p := range points {
			if p.Failed {
				continue
			}
			fmt.Printf("%-14s %6d %11.3fs %11.3fs %11.3fs\n",
				p.Loader, p.GPUs, p.Batch0.Median, p.Batch0.P95, p.Batch0.Max)
		}
	case 12:
		exp := trainer.Fig10PizDaint(*scale)
		points, err := exp.Run()
		check(err)
		fmt.Println("Fig. 12: NoPFS cache stats on Piz Daint (ImageNet-1k)")
		fmt.Printf("%6s %12s %8s %8s %8s\n", "gpus", "stall", "pfs%", "remote%", "local%")
		for _, p := range trainer.Fig12CacheStats(points) {
			fmt.Printf("%6d %11.2fs %7.1f%% %7.1f%% %7.1f%%\n",
				p.GPUs, p.StallSeconds,
				100*p.LocFraction[perfmodel.LocPFS],
				100*p.LocFraction[perfmodel.LocRemote],
				100*p.LocFraction[perfmodel.LocLocal])
		}
	case 13:
		fmt.Println("Fig. 13: batch-size sweep, ImageNet-1k, 128 Lassen GPUs")
		fmt.Printf("%-14s %6s %12s %12s %12s\n", "loader", "batch", "median", "p95", "max")
		for i, exp := range trainer.Fig13BatchSweep(*scale) {
			batch := []int{32, 64, 96, 120}[i]
			points, err := exp.Run()
			check(err)
			for _, p := range points {
				fmt.Printf("%-14s %6d %11.3fs %11.3fs %11.3fs\n",
					p.Loader, batch, p.Batch.Median, p.Batch.P95, p.Batch.Max)
			}
		}
	case 14:
		runExperiment("Fig. 14: ResNet-50/ImageNet-22k on Lassen", trainer.Fig14Lassen(*scale))
	case 15:
		runExperiment("Fig. 15: CosmoFlow on Lassen", trainer.Fig15Lassen(*scale))
	case 16:
		results, err := trainer.Fig16EndToEnd(*scale)
		check(err)
		fmt.Println("Fig. 16: end-to-end ResNet-50/ImageNet-1k, 256 Lassen GPUs, 90 epochs")
		for _, r := range results {
			if len(r.Curve) == 0 {
				fmt.Printf("%-14s failed\n", r.Loader)
				continue
			}
			fmt.Printf("%-14s total %.1f min, final top-1 %.1f%%\n",
				r.Loader, r.TotalSeconds/60, r.FinalTop1)
			for _, pt := range r.Curve {
				if pt.Epoch%10 == 0 {
					fmt.Printf("    epoch %2d  t=%8.1fs  top1=%.1f%%\n", pt.Epoch, pt.Seconds, pt.Top1Percent)
				}
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runExperiment(title string, exp trainer.Experiment) {
	points, err := exp.Run()
	check(err)
	fmt.Println(title)
	fmt.Printf("%-14s %6s %14s %14s %12s %12s\n",
		"loader", "gpus", "median epoch", "epoch 0", "batch p95", "batch max")
	for _, p := range points {
		if p.Failed {
			fmt.Printf("%-14s %6d  FAILED: %s\n", p.Loader, p.GPUs, p.Reason)
			continue
		}
		fmt.Printf("%-14s %6d %13.2fs %13.2fs %11.3fs %11.3fs\n",
			p.Loader, p.GPUs, p.MedianEpoch, p.Epoch0Seconds, p.Batch.P95, p.Batch.Max)
	}
	fmt.Println()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nopfs-train:", err)
		os.Exit(1)
	}
}
