// nopfs is the consolidated command-line front end for the NoPFS
// reproduction: the simulator, the real-system evaluation figures, the
// access-pattern analysis, and a live instrumented training cluster, as
// subcommands of one binary sharing flag groups, config-file support, and
// one exit-code contract.
//
// Usage:
//
//	nopfs sim -all                     # the Fig. 8 policy comparison
//	nopfs sim -sweep -replicas 5       # Fig. 9, 5 seeds per cell
//	nopfs sim -all -dry-run            # plan analysis, no simulation
//	nopfs train -fig 12                # NoPFS cache stats (Fig. 12)
//	nopfs train -fig 10 -dry-run       # placement + predicted stall
//	nopfs access -f 1281167            # paper-scale Fig. 3 analysis
//	nopfs run -workers 4 -metrics-out - # live cluster + Prometheus dump
//	nopfs help                         # the full subcommand list
//
// The former standalone binaries (nopfs-sim, nopfs-train, nopfs-access)
// remain as deprecated shims over the same implementation and print
// byte-identical output.
package main

import (
	"os"

	"repro/internal/cli"
)

func main() {
	os.Exit(cli.Main(os.Args[1:], os.Stdout, os.Stderr))
}
