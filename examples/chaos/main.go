// Chaos: fault & degradation scenarios on both execution engines.
//
// The paper evaluates NoPFS on healthy clusters; its value proposition is
// strongest exactly when the hardware misbehaves. This example runs the same
// deterministic fault profile — a straggler worker, a degraded storage tier,
// and a flaky interconnect — through:
//
//  1. the simulator, as a (scenario × policy × fault-profile) sweep grid
//     comparing clean vs faulted runs on identical access streams; and
//
//  2. a live in-process cluster, where the fabric decorator injects
//     latency and transient fetch failures and the straggler rank is paced
//     for real.
//
//     go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/nopfs"
	"repro/sim"
)

// profile is the shared fault scenario: worker 1 runs half speed from epoch
// 1, the fastest tier loses 3/4 of its bandwidth from epoch 2, and every
// remote fetch pays 1-3 ms with a 5% transient failure rate.
func profile() chaos.Profile {
	return chaos.Profile{
		Name:       "demo",
		Stragglers: []chaos.Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
		Tiers:      []chaos.TierDegradation{{Class: 0, Factor: 4, FromEpoch: 2}},
		Fabric:     chaos.FabricFault{LatencySeconds: 0.001, JitterSeconds: 0.002, FailRate: 0.05},
	}
}

func main() {
	ctx := context.Background()

	// --- Simulator: clean vs faulted on the Fig. 8d regime. -------------
	scenario, err := sim.ScenarioByID("fig8d")
	if err != nil {
		log.Fatal(err)
	}
	grid := sim.ScenarioGrid(scenario, 0.01, 42, 1)
	grid.Profiles = sim.ChaosProfiles(chaos.Profile{Name: "clean"}, profile())
	rep, err := (&sim.Runner{}).Run(ctx, grid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Simulated policy comparison, clean vs faulted (identical access streams):")
	if err := sim.WriteText(os.Stdout, rep); err != nil {
		log.Fatal(err)
	}

	// --- Live cluster: the same profile injected for real. --------------
	ds := dataset.MustNew(dataset.Spec{
		Name: "chaos", F: 2000, MeanSize: 8 << 10, StddevSize: 2 << 10,
		Classes: 10, Seed: 7,
	})
	opts := nopfs.NewOptions(
		nopfs.WithSeed(0xBAD),
		nopfs.WithEpochs(3),
		nopfs.WithBatchPerWorker(16),
		nopfs.WithStagingBuffer(4<<20),
		nopfs.WithStagingThreads(4),
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 8 << 20, Threads: 2}),
		nopfs.WithPFSBandwidth(256),
		nopfs.WithChaos(profile()),
	)
	stats, err := nopfs.RunCluster(ctx, ds, 4, opts, nopfs.DrainAll(nil))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Live 4-worker cluster under the same profile (rank 1 straggles):")
	fmt.Println("rank  delivered  local  remote  pfs   miss-fallbacks  stall")
	for _, s := range stats {
		fmt.Printf("%4d  %9d  %5d  %6d  %4d  %14d  %5.2fs\n",
			s.Rank, s.Delivered,
			s.Fetches[nopfs.SourceLocal], s.Fetches[nopfs.SourceRemote], s.Fetches[nopfs.SourcePFS],
			s.RemoteFalsePositives, s.StallSeconds)
	}
}
