// CosmoFlow-style workload: few, large, uniform samples (the paper's
// scientific-computing case, Fig. 15). With samples this large the
// interesting effects are the staging buffer's byte budget and the bimodal
// batch times depending on fetch location — both visible here.
//
// The example drives the live middleware over the TCP fabric (real loopback
// sockets, selected by registry name via WithFabric) to show the same Job
// runs unchanged on either transport, and consumes the stream in per-worker
// minibatches through Job.GetBatch.
//
//	go run ./examples/cosmoflow
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/nopfs"
)

func main() {
	// CosmoFlow's shape: uniform large samples. Scaled to 256 samples of
	// 1 MiB (the real dataset: 262,144 samples of 17 MB).
	ds := dataset.MustNew(dataset.Spec{
		Name: "cosmoflow-mini", F: 256, MeanSize: 1 << 20, StddevSize: 0,
		Classes: 1, Seed: 5,
	})
	fmt.Printf("dataset: %s, %d samples x %.0f MiB\n",
		ds.Name(), ds.Len(), float64(ds.Size(0))/(1<<20))

	const batch = 4
	opts := nopfs.NewOptions(
		nopfs.WithSeed(2026),
		nopfs.WithEpochs(3),
		nopfs.WithBatchPerWorker(batch),
		// Staging budget of 8 samples: with 1 MiB samples the byte-budget
		// admission logic is actually exercised.
		nopfs.WithStagingBuffer(8<<20),
		nopfs.WithStagingThreads(4),
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 48 << 20, Threads: 2, ReadMBps: 8192, WriteMBps: 8192}),
		nopfs.WithPFSBandwidth(256),
		nopfs.WithInterconnectBandwidth(1024),
		nopfs.WithFabric(nopfs.FabricTCP), // real sockets
		nopfs.WithVerifySamples(true),
	)

	const workers = 4
	type batchTimes struct{ perBatch []float64 }
	times := make([]batchTimes, workers)

	start := time.Now()
	st, err := nopfs.RunCluster(context.Background(), ds, workers, opts,
		func(ctx context.Context, job *nopfs.Job) error {
			rank := job.Rank()
			last := time.Now()
			for {
				// Per-worker minibatch pulls: the paper's training-loop shape.
				b, err := job.GetBatch(ctx, batch)
				if err != nil {
					return err
				}
				if len(b) == 0 {
					return nil
				}
				now := time.Now()
				times[rank].perBatch = append(times[rank].perBatch, now.Sub(last).Seconds())
				last = now
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncompleted over TCP fabric in %.2fs\n", time.Since(start).Seconds())
	fmt.Println("rank  batches  median    p95      max     remote  pfs")
	for rank, bt := range times {
		s := stats.Summarize(bt.perBatch)
		fmt.Printf("%4d  %7d  %6.1fms %6.1fms %6.1fms  %5d  %4d\n",
			rank, s.N, 1000*s.Median, 1000*s.P95, 1000*s.Max,
			st[rank].Fetches[nopfs.SourceRemote], st[rank].Fetches[nopfs.SourcePFS])
	}
	fmt.Println("\nnote the batch-time spread: batches served from caches are fast,")
	fmt.Println("batches needing PFS reads are slow — the paper's bimodal CosmoFlow")
	fmt.Println("distribution (Sec. 7.1).")
}
