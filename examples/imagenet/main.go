// ImageNet-style workload: a scaled-down ImageNet-1k run through the LIVE
// middleware with a full storage hierarchy — RAM class, filesystem-backed
// SSD class (real files under a temp directory), and a bandwidth-limited
// PFS — comparing NoPFS's fetch mix and stall time across epochs against a
// naive loader that reads everything from the PFS.
//
//	go run ./examples/imagenet
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/nopfs"
)

func main() {
	// ImageNet-1k's size distribution (0.1077 MB ± 0.1 MB), scaled to
	// 3,000 samples so the example runs in seconds.
	spec := dataset.ImageNet1kSpec().Scale(3000.0 / 1281167.0)
	ds := dataset.MustNew(spec)
	fmt.Printf("dataset: %s, %d samples, %.1f MiB total\n",
		ds.Name(), ds.Len(), float64(ds.TotalSize())/(1<<20))

	ssdRoot, err := os.MkdirTemp("", "nopfs-ssd-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ssdRoot)

	opts := nopfs.NewOptions(
		nopfs.WithSeed(99),
		nopfs.WithEpochs(4),
		nopfs.WithBatchPerWorker(32),
		nopfs.WithStagingBuffer(8<<20),
		nopfs.WithStagingThreads(4),
		// Fast but small RAM; larger filesystem-backed "SSD" with a rate
		// limit, holding real sample files (the "dir" storage backend).
		nopfs.WithClasses(
			nopfs.Class{Name: "ram", CapacityBytes: 64 << 20, Threads: 2, ReadMBps: 4096, WriteMBps: 4096},
			nopfs.Class{Name: "ssd", CapacityBytes: 512 << 20, Dir: ssdRoot, Threads: 2, ReadMBps: 512, WriteMBps: 256},
		),
		nopfs.WithPFSBandwidth(96), // contended shared filesystem
		nopfs.WithInterconnectBandwidth(2048),
		nopfs.WithVerifySamples(true),
	)

	const workers = 4
	ctx := context.Background()
	start := time.Now()
	stats, err := nopfs.RunCluster(ctx, ds, workers, opts, nopfs.DrainAll(nil))
	if err != nil {
		log.Fatal(err)
	}
	nopfsTime := time.Since(start)

	fmt.Printf("\nNoPFS run: %.2fs wall\n", nopfsTime.Seconds())
	fmt.Println("rank  local  remote   pfs  falsePos   stall")
	var pfsReads int64
	for _, s := range stats {
		pfsReads += s.Fetches[nopfs.SourcePFS]
		fmt.Printf("%4d  %5d  %6d  %4d  %8d  %5.2fs\n",
			s.Rank, s.Fetches[nopfs.SourceLocal], s.Fetches[nopfs.SourceRemote],
			s.Fetches[nopfs.SourcePFS], s.RemoteFalsePositives, s.StallSeconds)
	}

	// The naive comparison: every sample of every epoch straight from the
	// PFS (no cache classes, no clairvoyant benefit beyond ordering).
	naive := opts
	naive.Classes = nil
	start = time.Now()
	nstats, err := nopfs.RunCluster(ctx, ds, workers, naive, nopfs.DrainAll(nil))
	if err != nil {
		log.Fatal(err)
	}
	naiveTime := time.Since(start)

	var naivePFS int64
	for _, s := range nstats {
		naivePFS += s.Fetches[nopfs.SourcePFS]
	}
	fmt.Printf("\nPFS-only loader: %.2fs wall, %d PFS reads (NoPFS needed %d)\n",
		naiveTime.Seconds(), naivePFS, pfsReads)
	fmt.Printf("speedup from hierarchical clairvoyant caching: %.2fx\n",
		naiveTime.Seconds()/nopfsTime.Seconds())
}
