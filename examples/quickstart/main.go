// Quickstart: the Fig. 7 integration pattern — replace your data loader
// with a NoPFS Job and iterate.
//
// This example runs a 4-worker distributed training job inside one process:
// a synthetic ImageNet-like dataset rests on a (bandwidth-limited) simulated
// PFS, each worker gets an in-memory cache class, and NoPFS's clairvoyant
// prefetcher keeps every worker's staging buffer full in exact SGD order.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/nopfs"
)

func main() {
	// A small synthetic dataset: 2,000 samples, ~16 KiB each, 10 classes.
	ds := dataset.MustNew(dataset.Spec{
		Name: "quickstart", F: 2000, MeanSize: 16 << 10, StddevSize: 4 << 10,
		Classes: 10, Seed: 7,
	})

	opts := nopfs.Options{
		Seed:           0xC0FFEE, // the clairvoyance input
		Epochs:         3,
		BatchPerWorker: 16,
		StagingBytes:   4 << 20,
		StagingThreads: 4,
		Classes: []nopfs.Class{
			// One in-memory cache level per worker, 16 MiB.
			{Name: "ram", CapacityBytes: 16 << 20, Threads: 2},
		},
		PFSAggregateMBps: 64, // shared-filesystem bandwidth emulation
		VerifySamples:    true,
	}

	const workers = 4
	stats, err := nopfs.RunCluster(ds, workers, opts, func(job *nopfs.Job) error {
		// The training loop: identical shape to a PyTorch loader loop.
		var batchBytes int
		for {
			s, ok, err := job.Get()
			if err != nil {
				return err
			}
			if !ok {
				return nil // run complete
			}
			// "Train" on the sample: here we just account for its bytes.
			batchBytes += len(s.Data)
			if (s.Iteration+1)%8 == 0 && batchBytes > 0 {
				batchBytes = 0
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rank  delivered  local  remote  pfs   stall     cached")
	for _, s := range stats {
		fmt.Printf("%4d  %9d  %5d  %6d  %4d  %6.2fs  %6.1f MiB\n",
			s.Rank, s.Delivered,
			s.Fetches[nopfs.SourceLocal], s.Fetches[nopfs.SourceRemote], s.Fetches[nopfs.SourcePFS],
			s.StallSeconds, float64(s.CachedBytes)/(1<<20))
	}
}
