// Quickstart: the Fig. 7 integration pattern — replace your data loader
// with a NoPFS Job and range over its sample stream.
//
// This example runs a 4-worker distributed training job inside one process:
// a synthetic ImageNet-like dataset rests on a (bandwidth-limited) simulated
// PFS, each worker gets an in-memory cache class, and NoPFS's clairvoyant
// prefetcher keeps every worker's staging buffer full in exact SGD order.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/nopfs"
)

func main() {
	// A small synthetic dataset: 2,000 samples, ~16 KiB each, 10 classes.
	ds := dataset.MustNew(dataset.Spec{
		Name: "quickstart", F: 2000, MeanSize: 16 << 10, StddevSize: 4 << 10,
		Classes: 10, Seed: 7,
	})

	// Functional options are the v1 configuration surface; the Options
	// struct remains available for literal-style configuration.
	opts := nopfs.NewOptions(
		nopfs.WithSeed(0xC0FFEE), // the clairvoyance input
		nopfs.WithEpochs(3),
		nopfs.WithBatchPerWorker(16),
		nopfs.WithStagingBuffer(4<<20),
		nopfs.WithStagingThreads(4),
		// One in-memory cache level per worker, 16 MiB.
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 16 << 20, Threads: 2}),
		nopfs.WithPFSBandwidth(64), // shared-filesystem bandwidth emulation
		nopfs.WithVerifySamples(true),
	)

	const workers = 4
	ctx := context.Background()
	stats, err := nopfs.RunCluster(ctx, ds, workers, opts, func(ctx context.Context, job *nopfs.Job) error {
		// The training loop: a plain range over the sample stream.
		var batchBytes int
		for s, err := range job.Samples(ctx) {
			if err != nil {
				return err
			}
			// "Train" on the sample: here we just account for its bytes.
			batchBytes += len(s.Data)
			if (s.Iteration+1)%8 == 0 && batchBytes > 0 {
				batchBytes = 0
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rank  delivered  local  remote  pfs   stall     cached")
	for _, s := range stats {
		fmt.Printf("%4d  %9d  %5d  %6d  %4d  %6.2fs  %6.1f MiB\n",
			s.Rank, s.Delivered,
			s.Fetches[nopfs.SourceLocal], s.Fetches[nopfs.SourceRemote], s.Fetches[nopfs.SourcePFS],
			s.StallSeconds, float64(s.CachedBytes)/(1<<20))
	}
}
