// System design with the performance simulator (the paper's Sec. 6.2 use
// case): before buying hardware, sweep candidate storage configurations and
// see which actually move training time.
//
// This reproduces the Fig. 9 methodology on a scaled ImageNet-22k: fix the
// staging buffer (after verifying it is not the bottleneck), then sweep RAM
// and SSD sizes under a 5x-compute future-accelerator assumption.
//
//	go run ./examples/sysdesign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func main() {
	const scale = 0.005 // ImageNet-22k at 0.5% size; regimes preserved

	// Step 1: is the staging buffer a limiting factor? (Paper: no.)
	ctx := context.Background()
	staging, err := sim.Fig9StagingCheck(ctx, scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 1: staging buffer sweep (RAM=32 GB, no SSD):")
	for _, gb := range []int{1, 2, 4, 5} {
		fmt.Printf("  staging %d GB -> %.1fs\n", gb, staging[gb].ExecSeconds)
	}
	fmt.Println("  => staging size is irrelevant here; fix it at 5 GB")

	// Step 2: the RAM x SSD grid.
	points, err := sim.Fig9Sweep(ctx, scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstep 2: RAM x SSD sweep (NoPFS, ImageNet-22k, 5x compute):")
	sim.PrintSweep(os.Stdout, points)

	// Step 3: read off the design guidance the paper highlights.
	byCfg := map[[2]int]float64{}
	for _, p := range points {
		byCfg[[2]int{p.RAMGB, p.SSDGB}] = p.Result.ExecSeconds
	}
	fmt.Println("\ndesign observations (paper Sec. 6.2):")
	fmt.Printf("  max RAM, no SSD:    %.1fs\n", byCfg[[2]int{512, 0}])
	fmt.Printf("  max RAM, max SSD:   %.1fs  (SSD barely matters once RAM is large)\n", byCfg[[2]int{512, 1024}])
	fmt.Printf("  min RAM, no SSD:    %.1fs\n", byCfg[[2]int{32, 0}])
	fmt.Printf("  min RAM, max SSD:   %.1fs  (cheap SSD compensates for scarce RAM)\n", byCfg[[2]int{32, 1024}])
}
