// Package access implements NoPFS's clairvoyant access-stream analysis
// (paper Secs. 2 and 3) and the workload patterns layered on it.
//
// Mini-batch SGD orders the dataset indices once per epoch and partitions
// each global batch among the N data-parallel workers. Because the order is
// a pure function of a PRNG seed, every worker can reconstruct the entire
// access stream R for every worker, for every epoch, before training starts.
// That reconstruction — the Plan — is the input to NoPFS's caching policy,
// the performance model, and the simulator.
//
// The default order is the paper's uniform Fisher-Yates epoch shuffle, but
// a Plan may carry an access pattern (Plan.Access, see pattern.go): Zipf or
// boost-set importance sampling, curriculum ordering, multi-dataset
// mixtures, or an elastic membership schedule that re-partitions positions
// as ranks join and leave. Every pattern remains a deterministic function
// of (Seed, Access spec), so clairvoyance is preserved.
package access

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/prng"
)

// shuffleCount counts epoch-order generations (full Fisher-Yates passes)
// executed by this package since process start. It is a test probe: the
// plan-artifact cache's contract is that warm grid cells perform *zero*
// shuffle work, and asserting this counter is flat across a warm run is how
// the tests verify it.
var shuffleCount atomic.Int64

// ShuffleCount returns the number of epoch shuffles generated so far.
func ShuffleCount() int64 { return shuffleCount.Load() }

// SampleID identifies a sample within a dataset. int32 keeps the large
// materialised streams (ImageNet-22k has 14.2M samples) compact.
type SampleID = int32

// Plan describes a training run's access pattern: it is the clairvoyant
// oracle. All methods are deterministic functions of the exported fields, so
// two workers constructing a Plan from the same values always agree.
type Plan struct {
	Seed uint64 // PRNG seed generating every epoch's shuffle
	F    int    // number of samples in the dataset
	N    int    // number of workers
	E    int    // number of epochs
	// BatchPerWorker is the per-worker mini-batch size b_i; the global
	// batch is B = N * BatchPerWorker.
	BatchPerWorker int
	// DropLast drops the final, smaller iteration when F is not a
	// multiple of the global batch (PyTorch drop_last semantics).
	DropLast bool
	// Access is the canonical access-pattern spec ("" = the uniform epoch
	// shuffle; see ParseAccessSpec for the grammar). Held as a string so
	// Plan stays a comparable map key for the plan-artifact cache.
	Access string
}

// Validate reports whether the plan's parameters are usable.
func (p *Plan) Validate() error {
	switch {
	case p.F <= 0:
		return errors.New("access: plan needs F > 0 samples")
	case p.N <= 0:
		return errors.New("access: plan needs N > 0 workers")
	case p.E <= 0:
		return errors.New("access: plan needs E > 0 epochs")
	case p.BatchPerWorker <= 0:
		return errors.New("access: plan needs BatchPerWorker > 0")
	case p.GlobalBatch() > p.F:
		return fmt.Errorf("access: global batch %d exceeds dataset size %d", p.GlobalBatch(), p.F)
	}
	pat, err := ParseAccessSpec(p.Access)
	if err != nil {
		return err
	}
	return pat.validateFor(p)
}

// Pattern returns the plan's parsed access pattern. It panics on a malformed
// spec — Validate (run by every entry path) reports that as an error first.
func (p *Plan) Pattern() Pattern {
	pat, err := ParseAccessSpec(p.Access)
	if err != nil {
		panic(err)
	}
	return pat
}

// Elastic reports whether the plan carries an elastic membership schedule
// (per-epoch worker counts differ; consumers must use per-worker epoch ends
// instead of the uniform SamplesPerEpoch arithmetic).
func (p *Plan) Elastic() bool { return p.Pattern().Elastic() }

// ActiveRanks returns epoch e's active rank set in ascending order. For
// non-elastic plans every rank is always active.
func (p *Plan) ActiveRanks(e int) []int {
	pat := p.Pattern()
	return pat.activeRanks(e, p.N)
}

// activeFor returns worker's ordinal within epoch e's active set and the
// active count; ordinal -1 when the worker sits the epoch out. The ordinal
// replaces the worker index in the pos-mod-N partition rule.
func (p *Plan) activeFor(pat Pattern, worker, e int) (ord, count int) {
	if !pat.Elastic() {
		return worker, p.N
	}
	active := pat.activeRanks(e, p.N)
	for i, r := range active {
		if r == worker {
			return i, len(active)
		}
	}
	return -1, len(active)
}

// GlobalBatch returns B = N * BatchPerWorker.
func (p *Plan) GlobalBatch() int { return p.N * p.BatchPerWorker }

// IterationsPerEpoch returns T, the number of iterations in one epoch:
// floor(F/B), or ceil(F/B) when the trailing partial batch is kept.
func (p *Plan) IterationsPerEpoch() int {
	b := p.GlobalBatch()
	t := p.F / b
	if !p.DropLast && p.F%b != 0 {
		t++
	}
	return t
}

// EpochLimit returns how many entries of the epoch-wide shuffled order are
// consumed in one epoch (F, or T*B when the partial batch is dropped).
func (p *Plan) EpochLimit() int { return p.epochLimit() }

// epochLimit returns how many entries of the epoch-wide shuffled order are
// consumed in one epoch (F, or T*B when the partial batch is dropped).
func (p *Plan) epochLimit() int {
	if p.DropLast {
		return (p.F / p.GlobalBatch()) * p.GlobalBatch()
	}
	return p.F
}

// SamplesPerEpoch returns how many samples worker i consumes per epoch
// under the static partition: workers are assigned positions p of the epoch
// order with p mod N == i, so counts differ by at most one when a partial
// batch is kept. For elastic plans the partition varies per epoch; use the
// per-worker epoch ends from AllStreamsFromOrders instead.
func (p *Plan) SamplesPerEpoch(worker int) int {
	limit := p.epochLimit()
	if worker >= limit%p.N {
		return limit / p.N
	}
	return limit/p.N + 1
}

// StreamLen returns the total length of worker i's access stream R.
func (p *Plan) StreamLen(worker int) int { return p.E * p.SamplesPerEpoch(worker) }

// epochGen returns the generator driving epoch e's shuffle. Each epoch gets
// an independently derived stream so any epoch's order can be produced
// without generating its predecessors.
func (p *Plan) epochGen(e int) *prng.Generator {
	return prng.New(p.Seed).Derive(uint64(e) + 1)
}

// EpochOrder returns the global sample order for epoch e (0-indexed): the
// uniform shuffle by default, the pattern's order otherwise. The returned
// slice is freshly allocated.
func (p *Plan) EpochOrder(e int) []SampleID {
	if e < 0 || e >= p.E {
		panic(fmt.Sprintf("access: epoch %d out of range [0,%d)", e, p.E))
	}
	pat := p.Pattern()
	shuffleCount.Add(1)
	order := make([]SampleID, p.F)
	pat.orderInto(p, e, order)
	return order
}

// EpochOrders materialises every epoch's order, generating epochs
// concurrently on a bounded pool (workers < 1 means GOMAXPROCS). Each epoch
// is driven by its own derived generator, so the result is bit-identical to
// calling EpochOrder(e) for e = 0..E-1 at any worker count.
func (p *Plan) EpochOrders(workers int) [][]SampleID {
	pat := p.Pattern()
	shuffleCount.Add(int64(p.E))
	if pat.uniformOrder() {
		return prng.ParallelPerms32(p.E, p.F, workers, p.epochGen)
	}
	out := make([][]SampleID, p.E)
	prng.ParallelFor(p.E, workers, func(e int) {
		out[e] = make([]SampleID, p.F)
		pat.orderInto(p, e, out[e])
	})
	return out
}

// WorkerEpochFromOrder extracts worker i's per-epoch access sequence from a
// precomputed EpochOrder, avoiding re-shuffles when iterating workers. It
// applies the static pos-mod-N partition; for elastic plans use
// WorkerEpochFromOrderAt, which knows which epoch's membership applies.
func (p *Plan) WorkerEpochFromOrder(order []SampleID, worker int) []SampleID {
	limit := p.epochLimit()
	out := make([]SampleID, 0, limit/p.N+1)
	for pos := worker; pos < limit; pos += p.N {
		out = append(out, order[pos])
	}
	return out
}

// WorkerEpochFromOrderAt extracts worker i's sequence for epoch e from a
// precomputed order, honouring the plan's pattern: under an elastic
// membership schedule the epoch's positions are partitioned among the
// active ranks only (an inactive worker gets nil).
func (p *Plan) WorkerEpochFromOrderAt(order []SampleID, worker, e int) []SampleID {
	pat := p.Pattern()
	ord, count := p.activeFor(pat, worker, e)
	if ord < 0 {
		return nil
	}
	limit := p.epochLimit()
	out := make([]SampleID, 0, limit/count+1)
	for pos := ord; pos < limit; pos += count {
		out = append(out, order[pos])
	}
	return out
}

// WorkerEpoch returns worker i's access sequence for epoch e.
func (p *Plan) WorkerEpoch(worker, e int) []SampleID {
	return p.WorkerEpochFromOrderAt(p.EpochOrder(e), worker, e)
}

// WorkerStream returns worker i's full access stream R across all epochs.
// For very large plans prefer iterating epochs with EpochOrder to bound
// memory; this materialises E*F/N entries.
func (p *Plan) WorkerStream(worker int) []SampleID {
	out := make([]SampleID, 0, p.StreamLen(worker))
	for e := 0; e < p.E; e++ {
		out = append(out, p.WorkerEpoch(worker, e)...)
	}
	return out
}

// AllWorkerStreams materialises every worker's access stream in one pass
// over the epochs. Total memory is E*F entries of 4 bytes, independent of N,
// which keeps large-N plans (e.g. 1024 workers) tractable where per-worker
// dense frequency tables would not be.
func (p *Plan) AllWorkerStreams() [][]SampleID {
	pat := p.Pattern()
	streams := make([][]SampleID, p.N)
	for w := range streams {
		streams[w] = make([]SampleID, 0, p.StreamLen(w))
	}
	for e := 0; e < p.E; e++ {
		order := p.EpochOrder(e)
		limit := p.epochLimit()
		active := epochOwners(p, pat, e)
		for pos := 0; pos < limit; pos++ {
			w := active[pos%len(active)]
			streams[w] = append(streams[w], order[pos])
		}
	}
	return streams
}

// AllStreamsFromOrders partitions precomputed epoch orders into per-worker
// streams, honouring the plan's pattern, building workers' streams
// concurrently on a bounded pool (workers < 1 means GOMAXPROCS). For
// elastic plans it also returns every worker's cumulative per-epoch end
// offsets (ends[w][e] = stream positions consumed through epoch e); for
// static partitions ends is nil — epochs are uniform and SamplesPerEpoch
// applies.
func (p *Plan) AllStreamsFromOrders(orders [][]SampleID, workers int) (streams [][]SampleID, ends [][]int) {
	pat := p.Pattern()
	streams = make([][]SampleID, p.N)
	if !pat.Elastic() {
		prng.ParallelFor(p.N, workers, func(w int) {
			s := make([]SampleID, 0, p.StreamLen(w))
			for _, order := range orders {
				limit := p.epochLimit()
				for pos := w; pos < limit; pos += p.N {
					s = append(s, order[pos])
				}
			}
			streams[w] = s
		})
		return streams, nil
	}
	ends = make([][]int, p.N)
	prng.ParallelFor(p.N, workers, func(w int) {
		s := make([]SampleID, 0, p.StreamLen(w))
		we := make([]int, p.E)
		for e, order := range orders {
			ord, count := p.activeFor(pat, w, e)
			if ord >= 0 {
				limit := p.epochLimit()
				for pos := ord; pos < limit; pos += count {
					s = append(s, order[pos])
				}
			}
			we[e] = len(s)
		}
		streams[w] = s
		ends[w] = we
	})
	return streams, ends
}

// epochOwners returns the worker owning each position ordinal of epoch e:
// owners[i] serves positions pos with pos mod len(owners) == i.
func epochOwners(p *Plan, pat Pattern, e int) []int {
	if !pat.Elastic() {
		owners := make([]int, p.N)
		for i := range owners {
			owners[i] = i
		}
		return owners
	}
	return pat.activeRanks(e, p.N)
}

// Frequencies returns, for every worker, the number of times that worker
// accesses each sample across all E epochs: freqs[worker][sample].
// This is the access-frequency disparity of Sec. 3.1 that drives NoPFS's
// cache placement — under a non-uniform pattern the disparity comes from
// the workload itself, not only the partition. One pass per epoch keeps
// peak memory at O(F).
func (p *Plan) Frequencies() [][]int32 {
	pat := p.Pattern()
	freqs := make([][]int32, p.N)
	for i := range freqs {
		freqs[i] = make([]int32, p.F)
	}
	for e := 0; e < p.E; e++ {
		order := p.EpochOrder(e)
		limit := p.epochLimit()
		active := epochOwners(p, pat, e)
		for pos := 0; pos < limit; pos++ {
			freqs[active[pos%len(active)]][order[pos]]++
		}
	}
	return freqs
}

// WorkerFrequencies returns the per-sample access counts for one worker.
func (p *Plan) WorkerFrequencies(worker int) []int32 {
	pat := p.Pattern()
	freq := make([]int32, p.F)
	for e := 0; e < p.E; e++ {
		ord, count := p.activeFor(pat, worker, e)
		if ord < 0 {
			continue
		}
		order := p.EpochOrder(e)
		limit := p.epochLimit()
		for pos := ord; pos < limit; pos += count {
			freq[order[pos]]++
		}
	}
	return freq
}

// Hash returns a deterministic full-parameter digest of the plan: every
// parameter plus a sample of every epoch's derived generator stream. In the
// live system workers exchange this digest instead of the full access
// streams: equality guarantees identical plans because every stream is a
// pure function of the parameters.
//
// Sampling *each* epoch's generator (not just epoch 0's, as this digest
// originally did) means two workers whose shuffle derivation agrees for the
// first epoch but drifts for later ones — e.g. a version skew in the
// per-epoch stream derivation — can no longer exchange colliding digests.
// The plan-artifact cache also keys shared immutable artifacts off this
// digest, so the collision would otherwise serve one plan's streams for
// another's.
func (p *Plan) Hash() uint64 {
	return p.hashWith(p.epochSample)
}

// epochSample folds two draws of epoch e's derived generator into one word —
// enough to detect any divergence in the epoch-stream derivation, since the
// generator state is itself a digest of (seed, e).
func (p *Plan) epochSample(e int) uint64 {
	g := p.epochGen(e)
	return g.Uint64() ^ rotl64(g.Uint64(), 32)
}

func rotl64(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// hashWith is Hash with the epoch-generator sampler injected, so tests can
// demonstrate the collision the per-epoch folding closes: a sampler that
// agrees on epoch 0 but diverges later collides under epoch-0-only
// sampling and is distinguished here.
func (p *Plan) hashWith(sample func(e int) uint64) uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(p.Seed)
	mix(uint64(p.F))
	mix(uint64(p.N))
	mix(uint64(p.E))
	mix(uint64(p.BatchPerWorker))
	if p.DropLast {
		mix(1)
	} else {
		mix(2)
	}
	// Fold the access-pattern spec so two plans differing only in pattern
	// never exchange colliding digests (and the artifact cache never serves
	// one pattern's streams for another's). The uniform spec mixes nothing:
	// digests of pattern-free plans are unchanged.
	if p.Access != "" {
		mix(uint64(len(p.Access)))
		for _, b := range []byte(p.Access) {
			mix(uint64(b))
		}
	}
	// Fold in a sample of every epoch's derived stream so disagreement in
	// the shuffle derivation of any epoch — not only the first — is
	// detected.
	for e := 0; e < p.E; e++ {
		mix(sample(e))
	}
	return h
}
