package access

import (
	"testing"
	"testing/quick"
)

func mkPlan(seed uint64, f, n, e, b int, drop bool) *Plan {
	return &Plan{Seed: seed, F: f, N: n, E: e, BatchPerWorker: b, DropLast: drop}
}

func TestValidate(t *testing.T) {
	good := mkPlan(1, 100, 4, 2, 8, false)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []*Plan{
		mkPlan(1, 0, 4, 2, 8, false),
		mkPlan(1, 100, 0, 2, 8, false),
		mkPlan(1, 100, 4, 0, 8, false),
		mkPlan(1, 100, 4, 2, 0, false),
		mkPlan(1, 10, 4, 2, 8, false), // global batch 32 > F=10
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestGlobalBatchAndIterations(t *testing.T) {
	p := mkPlan(1, 100, 4, 1, 8, false) // global batch 32
	if p.GlobalBatch() != 32 {
		t.Errorf("GlobalBatch = %d, want 32", p.GlobalBatch())
	}
	if got := p.IterationsPerEpoch(); got != 4 { // ceil(100/32)
		t.Errorf("iterations (keep last) = %d, want 4", got)
	}
	p.DropLast = true
	if got := p.IterationsPerEpoch(); got != 3 { // floor(100/32)
		t.Errorf("iterations (drop last) = %d, want 3", got)
	}
}

func TestEpochOrderIsPermutation(t *testing.T) {
	p := mkPlan(42, 1000, 4, 3, 8, false)
	for e := 0; e < p.E; e++ {
		order := p.EpochOrder(e)
		seen := make([]bool, p.F)
		for _, id := range order {
			if id < 0 || int(id) >= p.F || seen[id] {
				t.Fatalf("epoch %d order not a permutation (id %d)", e, id)
			}
			seen[id] = true
		}
	}
}

func TestEpochOrdersDiffer(t *testing.T) {
	p := mkPlan(42, 1000, 4, 2, 8, false)
	a, b := p.EpochOrder(0), p.EpochOrder(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > len(a)/10 {
		t.Errorf("epochs 0 and 1 share %d/%d positions; shuffles look identical", same, len(a))
	}
}

func TestClairvoyanceDeterminism(t *testing.T) {
	// Two independently constructed plans with the same seed must agree on
	// every worker's stream — this IS the paper's clairvoyance property.
	a := mkPlan(7, 500, 4, 3, 4, false)
	b := mkPlan(7, 500, 4, 3, 4, false)
	for w := 0; w < 4; w++ {
		sa, sb := a.WorkerStream(w), b.WorkerStream(w)
		if len(sa) != len(sb) {
			t.Fatalf("worker %d stream lengths differ: %d vs %d", w, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("worker %d streams diverge at %d", w, i)
			}
		}
	}
	if a.Hash() != b.Hash() {
		t.Error("same-parameter plans have different hashes")
	}
}

func TestHashDetectsParameterDrift(t *testing.T) {
	base := mkPlan(7, 500, 4, 3, 4, false)
	variants := []*Plan{
		mkPlan(8, 500, 4, 3, 4, false),
		mkPlan(7, 501, 4, 3, 4, false),
		mkPlan(7, 500, 5, 3, 4, false),
		mkPlan(7, 500, 4, 4, 4, false),
		mkPlan(7, 500, 4, 3, 5, false),
		mkPlan(7, 500, 4, 3, 4, true),
	}
	for i, v := range variants {
		if v.Hash() == base.Hash() {
			t.Errorf("variant %d has same hash as base", i)
		}
	}
}

func TestWorkerStreamsPartitionEpoch(t *testing.T) {
	p := mkPlan(3, 997, 4, 1, 8, false) // F not divisible by batch; keep last
	seen := make([]int, p.F)
	total := 0
	for w := 0; w < p.N; w++ {
		for _, id := range p.WorkerEpoch(w, 0) {
			seen[id]++
			total++
		}
	}
	if total != p.F {
		t.Fatalf("workers consumed %d samples in epoch, want %d", total, p.F)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("sample %d accessed %d times in one epoch, want 1", id, c)
		}
	}
}

func TestDropLastSkipsTail(t *testing.T) {
	p := mkPlan(3, 100, 4, 1, 8, true) // global batch 32, limit 96
	total := 0
	for w := 0; w < p.N; w++ {
		n := len(p.WorkerEpoch(w, 0))
		if n != 24 {
			t.Errorf("worker %d got %d samples, want 24", w, n)
		}
		total += n
	}
	if total != 96 {
		t.Errorf("epoch total = %d, want 96", total)
	}
}

func TestSamplesPerEpochMatchesStreams(t *testing.T) {
	f := func(seed uint64, fRaw, nRaw, bRaw uint8, drop bool) bool {
		n := int(nRaw%6) + 1
		b := int(bRaw%4) + 1
		f := int(fRaw%100) + n*b // ensure global batch fits
		p := mkPlan(seed, f, n, 2, b, drop)
		if p.Validate() != nil {
			return true
		}
		for w := 0; w < n; w++ {
			if p.SamplesPerEpoch(w) != len(p.WorkerEpoch(w, 0)) {
				return false
			}
			if p.StreamLen(w) != len(p.WorkerStream(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequenciesMatchStreams(t *testing.T) {
	p := mkPlan(11, 300, 3, 4, 5, false)
	freqs := p.Frequencies()
	for w := 0; w < p.N; w++ {
		counted := make([]int32, p.F)
		for _, id := range p.WorkerStream(w) {
			counted[id]++
		}
		for k := 0; k < p.F; k++ {
			if counted[k] != freqs[w][k] {
				t.Fatalf("worker %d sample %d: stream count %d, Frequencies %d",
					w, k, counted[k], freqs[w][k])
			}
		}
		wf := p.WorkerFrequencies(w)
		for k := 0; k < p.F; k++ {
			if wf[k] != freqs[w][k] {
				t.Fatalf("WorkerFrequencies mismatch at worker %d sample %d", w, k)
			}
		}
	}
}

func TestTotalAccessInvariant(t *testing.T) {
	p := mkPlan(5, 256, 4, 6, 8, false) // F divisible by global batch
	freqs := p.Frequencies()
	if k, tot := TotalAccessInvariant(p, freqs); k != -1 {
		t.Fatalf("sample %d accessed %d times, want exactly %d", k, tot, p.E)
	}
	// With drop_last and non-divisible F, totals must stay <= E.
	p2 := mkPlan(5, 260, 4, 6, 8, true)
	freqs2 := p2.Frequencies()
	if k, tot := TotalAccessInvariant(p2, freqs2); k != -1 {
		t.Fatalf("drop_last: sample %d accessed %d times, exceeds E=%d", k, tot, p2.E)
	}
}

func TestTotalAccessInvariantDetectsCorruption(t *testing.T) {
	p := mkPlan(5, 64, 4, 3, 4, false)
	freqs := p.Frequencies()
	freqs[0][10]++ // corrupt
	if k, _ := TotalAccessInvariant(p, freqs); k != 10 {
		t.Fatalf("corruption not detected (got sample %d)", k)
	}
}

func TestLemma1HoldsOnRealPlans(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		p := mkPlan(seed, 512, 4, 16, 4, false)
		freqs := p.Frequencies()
		for _, delta := range []float64{0.25, 0.5, 1.0} {
			if v := Lemma1Violations(freqs, p.E, delta); v != 0 {
				t.Errorf("seed %d delta %v: %d Lemma 1 violations", seed, delta, v)
			}
		}
	}
}

func TestLemma1Property(t *testing.T) {
	// Lemma 1 is a theorem about any frequency matrix where each sample's
	// total is exactly E; verify over random plans.
	f := func(seed uint64, nRaw, eRaw uint8) bool {
		n := int(nRaw%5) + 2
		e := int(eRaw%12) + 4
		p := mkPlan(seed, 128, n, e, 2, false)
		if p.Validate() != nil {
			return true
		}
		freqs := p.Frequencies()
		return Lemma1Violations(freqs, e, 0.5) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyHittersAgreesWithAnalytic(t *testing.T) {
	// Scaled-down version of the paper's Fig. 3 experiment: measured heavy
	// hitters should track the binomial estimate closely.
	p := mkPlan(1234, 100000, 16, 90, 4, true)
	r := HeavyHitters(p, 0, 0.8)
	if r.Threshold != 10 {
		t.Fatalf("threshold = %d, want 10 (paper: 'accessed more than 10 times')", r.Threshold)
	}
	if r.Analytic <= 0 {
		t.Fatal("analytic estimate is zero")
	}
	ratio := float64(r.Measured) / r.Analytic
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("measured %d vs analytic %.0f (ratio %.3f), want within 15%%",
			r.Measured, r.Analytic, ratio)
	}
}

func TestFirstAccessPositions(t *testing.T) {
	stream := []SampleID{5, 3, 5, 7, 3, 1}
	first := FirstAccessPositions(stream)
	want := map[SampleID]int{5: 0, 3: 1, 7: 3, 1: 5}
	if len(first) != len(want) {
		t.Fatalf("got %d entries, want %d", len(first), len(want))
	}
	for id, pos := range want {
		if first[id] != pos {
			t.Errorf("first[%d] = %d, want %d", id, first[id], pos)
		}
	}
}

func TestFrequencyHistogram(t *testing.T) {
	h := FrequencyHistogram([]int32{0, 1, 1, 2, 5})
	if h.Total != 5 {
		t.Errorf("Total = %d, want 5", h.Total)
	}
	if h.Counts[1] != 2 || h.Counts[5] != 1 {
		t.Errorf("counts wrong: %v", h.Counts)
	}
}

func TestEpochOrderPanicsOutOfRange(t *testing.T) {
	p := mkPlan(1, 10, 2, 2, 2, false)
	defer func() {
		if recover() == nil {
			t.Fatal("EpochOrder(-1) did not panic")
		}
	}()
	p.EpochOrder(-1)
}

func BenchmarkEpochOrderImageNet1k(b *testing.B) {
	p := mkPlan(1, 1281167, 16, 90, 64, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.EpochOrder(i % p.E)
	}
}

func BenchmarkFrequencies(b *testing.B) {
	p := mkPlan(1, 100000, 8, 20, 16, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Frequencies()
	}
}

// TestEpochOrdersMatchSerial verifies the parallel epoch-shuffle generation
// is bit-identical to the serial EpochOrder loop at every pool width.
func TestEpochOrdersMatchSerial(t *testing.T) {
	p := mkPlan(11, 400, 4, 6, 8, false)
	want := make([][]SampleID, p.E)
	for e := 0; e < p.E; e++ {
		want[e] = p.EpochOrder(e)
	}
	for _, workers := range []int{0, 1, 2, 3, 16} {
		got := p.EpochOrders(workers)
		if len(got) != p.E {
			t.Fatalf("workers=%d: %d orders, want %d", workers, len(got), p.E)
		}
		for e := range want {
			for i := range want[e] {
				if got[e][i] != want[e][i] {
					t.Fatalf("workers=%d epoch %d pos %d: got %d want %d",
						workers, e, i, got[e][i], want[e][i])
				}
			}
		}
	}
}

// TestShuffleCountProbe verifies the probe counts one shuffle per generated
// epoch order, including the parallel path.
func TestShuffleCountProbe(t *testing.T) {
	p := mkPlan(3, 100, 2, 4, 5, false)
	before := ShuffleCount()
	p.EpochOrder(0)
	if got := ShuffleCount() - before; got != 1 {
		t.Fatalf("EpochOrder counted %d shuffles, want 1", got)
	}
	before = ShuffleCount()
	p.EpochOrders(2)
	if got := ShuffleCount() - before; got != int64(p.E) {
		t.Fatalf("EpochOrders counted %d shuffles, want %d", got, p.E)
	}
}

// TestHashCoversLaterEpochs demonstrates the collision the per-epoch digest
// folding closes. The old Hash sampled only epoch 0's derived generator, so
// two workers whose epoch-stream derivation agrees for epoch 0 but diverges
// for a later epoch (version skew in the derivation code) exchanged equal
// digests while planning different access streams. With every epoch sampled,
// the digests differ.
func TestHashCoversLaterEpochs(t *testing.T) {
	p := mkPlan(7, 500, 4, 5, 4, false)
	healthy := p.epochSample
	// A drifted peer: identical epoch-0 stream, divergent epoch-3 stream.
	drifted := func(e int) uint64 {
		s := healthy(e)
		if e == 3 {
			return s ^ 0xdeadbeef
		}
		return s
	}
	// Old scheme: sample epoch 0 only (16 draws of the same generator fold
	// to a pure function of epochSample(0) for collision purposes — both
	// sides agree on epoch 0, so the old digests collide).
	oldHash := func(sample func(e int) uint64) uint64 {
		epoch0Only := func(e int) uint64 { return sample(0) }
		return p.hashWith(epoch0Only)
	}
	if oldHash(healthy) != oldHash(drifted) {
		t.Fatal("epoch-0-only digests should collide for epoch-3 drift (the old bug)")
	}
	if p.hashWith(healthy) == p.hashWith(drifted) {
		t.Fatal("full per-epoch digest must distinguish epoch-3 drift")
	}
	// And the production Hash is the healthy full digest.
	if p.Hash() != p.hashWith(healthy) {
		t.Fatal("Hash must sample every epoch's generator")
	}
}
