package access

import (
	"math"

	"repro/internal/stats"
)

// FrequencyHistogram builds the Fig. 3 histogram: how many samples a single
// worker accesses exactly k times over the full training run.
func FrequencyHistogram(freq []int32) *stats.Histogram {
	maxF := int32(0)
	for _, f := range freq {
		if f > maxF {
			maxF = f
		}
	}
	h := stats.NewHistogram(int(maxF))
	for _, f := range freq {
		h.Add(int(f))
	}
	return h
}

// HeavyHitterReport compares the analytic binomial estimate of Sec. 3.1 with
// the measured count from an actual plan, for the "accessed more than
// (1+delta)*mu times" threshold.
type HeavyHitterReport struct {
	N, E, F   int
	Delta     float64
	Mu        float64 // E/N, mean accesses per worker
	Threshold int     // samples with count > Threshold are heavy hitters
	Analytic  float64 // F * P(X > threshold), X ~ Binomial(E, 1/N)
	Measured  int     // actual count from the plan's shuffles
}

// HeavyHitters evaluates the report for one worker of the given plan.
func HeavyHitters(p *Plan, worker int, delta float64) HeavyHitterReport {
	mu := float64(p.E) / float64(p.N)
	threshold := int(math.Ceil((1+delta)*mu)) - 1
	freq := p.WorkerFrequencies(worker)
	measured := 0
	for _, f := range freq {
		if int(f) > threshold {
			measured++
		}
	}
	return HeavyHitterReport{
		N: p.N, E: p.E, F: p.F,
		Delta:     delta,
		Mu:        mu,
		Threshold: threshold,
		Analytic:  stats.ExpectedHeavyHitters(p.F, p.E, p.N, delta),
		Measured:  measured,
	}
}

// Lemma1Violations checks Lemma 1 of the paper over measured frequencies:
// if some worker accesses a sample at least ceil((1+delta) * E/N) times,
// then at least one other worker accesses it at most
// ceil((N-1-delta)/(N-1) * E/N) times. Returns the number of samples
// violating the bound (always 0 for valid frequencies — the lemma is a
// theorem, so a non-zero count indicates a bug in stream generation).
func Lemma1Violations(freqs [][]int32, E int, delta float64) int {
	n := len(freqs)
	if n < 2 {
		return 0
	}
	f := len(freqs[0])
	mu := float64(E) / float64(n)
	hi := int32(math.Ceil((1 + delta) * mu))
	low := int32(math.Ceil((float64(n) - 1 - delta) / float64(n-1) * mu))
	violations := 0
	for k := 0; k < f; k++ {
		anyHigh := false
		anyLow := false
		for w := 0; w < n; w++ {
			c := freqs[w][k]
			if c >= hi {
				anyHigh = true
			}
			if c <= low {
				anyLow = true
			}
		}
		if anyHigh && !anyLow {
			violations++
		}
	}
	return violations
}

// TotalAccessInvariant verifies that each sample is accessed exactly E times
// across all workers (the without-replacement property underpinning both
// Lemma 1 and the clairvoyant schedule). It returns the first offending
// sample ID and its total, or (-1, 0) when the invariant holds.
//
// When the plan drops partial batches, F - epochLimit samples per epoch are
// legitimately skipped, so totals may fall below E; in that case the
// invariant checked is total <= E.
func TotalAccessInvariant(p *Plan, freqs [][]int32) (sample int, total int32) {
	exact := p.epochLimit() == p.F
	for k := 0; k < p.F; k++ {
		var t int32
		for w := range freqs {
			t += freqs[w][k]
		}
		if exact && t != int32(p.E) {
			return k, t
		}
		if !exact && t > int32(p.E) {
			return k, t
		}
	}
	return -1, 0
}

// FirstAccessPositions returns, for worker i, a map from sample ID to the
// stream position of the sample's first access. The NoPFS prefetchers fill
// storage classes in first-access order (Rule 1 of Sec. 3), so this order
// defines the cache fill schedule.
func FirstAccessPositions(stream []SampleID) map[SampleID]int {
	first := make(map[SampleID]int)
	for pos, id := range stream {
		if _, seen := first[id]; !seen {
			first[id] = pos
		}
	}
	return first
}
