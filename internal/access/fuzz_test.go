package access

import "testing"

// FuzzParseAccessSpec fuzzes the -access spec grammar: no input may panic,
// and every accepted pattern must render a canonical spec that re-parses to
// the same pattern (the round-trip contract the CLI and the sweep axis rely
// on). The corpus seeds every preset and one spec per kind.
func FuzzParseAccessSpec(f *testing.F) {
	for _, name := range PresetNames() {
		f.Add(name)
	}
	for _, spec := range []string{
		"", "uniform",
		"zipf:s=1.2,drift=0.05",
		"boost:frac=0.1,factor=8,drift=0.1",
		"curriculum:buckets=4,shuffle=off",
		"mix:w=0.6/0.3/0.1",
		"elastic:join=1@1,leave=2@2",
		"zipf:s=", "elastic:join=@", "mix:w=1/",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		pat, err := ParseAccessSpec(spec)
		if err != nil {
			return
		}
		canon := pat.Spec()
		again, err := ParseAccessSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) rejected: %v", canon, spec, err)
		}
		if got := again.Spec(); got != canon {
			t.Fatalf("canonical spec not a fixed point: %q -> %q (from %q)", canon, got, spec)
		}
	})
}
