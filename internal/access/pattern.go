package access

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prng"
)

// This file implements the access-pattern layer: the generators that decide
// *which* sample order each epoch draws, behind the same Plan surface the
// uniform Fisher-Yates shuffle always used. A Pattern is declared by a spec
// string (the `-access` flag grammar), parsed once, and then drives
// EpochOrder / the stream partition deterministically from the plan seed —
// every order remains a pure function of (Seed, spec, epoch).
//
// Kinds:
//
//	uniform                                  legacy per-epoch permutation
//	zipf:s=<exp>[,drift=<frac>]              importance sampling, Zipf weights
//	boost:frac=<f>,factor=<x>[,drift=<frac>] boost-set importance sampling
//	curriculum:buckets=<B>[,shuffle=off]     difficulty-ordered epochs
//	mix:w=<w1>/<w2>/...                      multi-dataset weighted interleave
//	elastic:join=<rank>@<epoch>,leave=...    rank join/leave at epoch bounds
//
// zipf and boost draw F samples per epoch *with replacement* (non-uniform,
// optionally drifting frequencies); curriculum and mix emit a permutation
// per epoch; elastic keeps the uniform order and changes the worker
// partition instead.

// Pattern kinds. The empty kind is the uniform baseline.
const (
	KindUniform    = "uniform"
	KindZipf       = "zipf"
	KindBoost      = "boost"
	KindCurriculum = "curriculum"
	KindMix        = "mix"
	KindElastic    = "elastic"
)

// MemberEvent is one elastic membership change: Rank joins (or leaves) the
// active set at the start of epoch Epoch.
type MemberEvent struct {
	Rank  int
	Epoch int
}

// Pattern is a parsed access-pattern declaration. The zero value is the
// uniform pattern. Patterns are carried on a Plan as their canonical Spec()
// string (plans stay comparable map keys); parse cost is negligible next to
// order generation.
type Pattern struct {
	// Name is the preset this pattern was parsed from ("" for raw specs).
	Name string
	// Kind selects the generator ("" = uniform).
	Kind string

	// S is the Zipf exponent (zipf).
	S float64
	// Drift shifts the weight-to-sample mapping by floor(drift*e*F) ids
	// each epoch e (zipf, boost).
	Drift float64
	// Frac is the boosted fraction of the dataset; Factor its weight
	// multiplier (boost).
	Frac, Factor float64
	// Buckets is the number of difficulty buckets; Shuffle permutes within
	// each bucket per epoch (curriculum).
	Buckets int
	Shuffle bool
	// Weights are the mixture rates of the K contiguous dataset parts (mix).
	Weights []float64
	// Joins and Leaves are the elastic membership schedule (elastic).
	Joins, Leaves []MemberEvent
}

// presets are the named access patterns, the -access analogue of the chaos
// presets: each is a worked instance of one generator kind.
func presets() []Pattern {
	return []Pattern{
		{Name: "zipf", Kind: KindZipf, S: 1.1},
		{Name: "drifting-zipf", Kind: KindZipf, S: 1.1, Drift: 0.05},
		{Name: "hot-set", Kind: KindBoost, Frac: 0.1, Factor: 8},
		{Name: "curriculum", Kind: KindCurriculum, Buckets: 4, Shuffle: true},
		{Name: "mix", Kind: KindMix, Weights: []float64{0.6, 0.3, 0.1}},
		{Name: "elastic", Kind: KindElastic,
			Joins:  []MemberEvent{{Rank: 1, Epoch: 1}},
			Leaves: []MemberEvent{{Rank: 2, Epoch: 2}}},
	}
}

// Presets returns the built-in named patterns.
func Presets() []Pattern { return presets() }

// PresetNames returns the built-in pattern names in declaration order.
func PresetNames() []string {
	ps := presets()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// PresetByName returns the named preset.
func PresetByName(name string) (Pattern, bool) {
	for _, p := range presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Pattern{}, false
}

// Empty reports whether the pattern is the uniform baseline.
func (pat Pattern) Empty() bool { return pat.Kind == "" || pat.Kind == KindUniform }

// Elastic reports whether the pattern carries a membership schedule.
func (pat Pattern) Elastic() bool { return pat.Kind == KindElastic }

// Label returns the human label: the preset name when the pattern came from
// one, the canonical spec otherwise, "uniform" for the baseline.
func (pat Pattern) Label() string {
	if pat.Name != "" {
		return pat.Name
	}
	return pat.Spec()
}

// Spec renders the canonical spec string; ParseAccessSpec(Spec()) round-trips.
func (pat Pattern) Spec() string {
	switch pat.Kind {
	case "", KindUniform:
		return KindUniform
	case KindZipf:
		s := "zipf:s=" + trimFloat(pat.S)
		if pat.Drift > 0 {
			s += ",drift=" + trimFloat(pat.Drift)
		}
		return s
	case KindBoost:
		s := "boost:frac=" + trimFloat(pat.Frac) + ",factor=" + trimFloat(pat.Factor)
		if pat.Drift > 0 {
			s += ",drift=" + trimFloat(pat.Drift)
		}
		return s
	case KindCurriculum:
		s := "curriculum:buckets=" + strconv.Itoa(pat.Buckets)
		if !pat.Shuffle {
			s += ",shuffle=off"
		}
		return s
	case KindMix:
		parts := make([]string, len(pat.Weights))
		for i, w := range pat.Weights {
			parts[i] = trimFloat(w)
		}
		return "mix:w=" + strings.Join(parts, "/")
	case KindElastic:
		var dirs []string
		for _, ev := range sortedEvents(pat.Joins) {
			dirs = append(dirs, fmt.Sprintf("join=%d@%d", ev.Rank, ev.Epoch))
		}
		for _, ev := range sortedEvents(pat.Leaves) {
			dirs = append(dirs, fmt.Sprintf("leave=%d@%d", ev.Rank, ev.Epoch))
		}
		return "elastic:" + strings.Join(dirs, ",")
	}
	return pat.Kind
}

// sortedEvents returns the events ordered by (epoch, rank) — the canonical
// rendering order.
func sortedEvents(evs []MemberEvent) []MemberEvent {
	out := append([]MemberEvent(nil), evs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Epoch != out[j].Epoch {
			return out[i].Epoch < out[j].Epoch
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// trimFloat renders a float without trailing zeros (8 → "8", 0.05 → "0.05").
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// ParseAccessSpec parses an access-pattern spec: a preset name, "uniform"
// (or the empty string), or a `kind:args` declaration from the grammar in
// the file comment. The parsed pattern is validated.
func ParseAccessSpec(spec string) (Pattern, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == KindUniform {
		return Pattern{}, nil
	}
	if p, ok := PresetByName(spec); ok {
		return p, nil
	}
	kind, args, ok := strings.Cut(spec, ":")
	if !ok {
		return Pattern{}, fmt.Errorf("access: unknown pattern %q (presets: %s; or kind:args with kinds zipf, boost, curriculum, mix, elastic)",
			spec, strings.Join(PresetNames(), ", "))
	}
	var pat Pattern
	var err error
	switch kind {
	case KindZipf:
		err = pat.parseZipf(args)
	case KindBoost:
		err = pat.parseBoost(args)
	case KindCurriculum:
		err = pat.parseCurriculum(args)
	case KindMix:
		err = pat.parseMix(args)
	case KindElastic:
		err = pat.parseElastic(args)
	default:
		return Pattern{}, fmt.Errorf("access: unknown pattern kind %q (want zipf, boost, curriculum, mix, or elastic)", kind)
	}
	if err != nil {
		return Pattern{}, err
	}
	if err := pat.Validate(); err != nil {
		return Pattern{}, err
	}
	return pat, nil
}

// CanonicalSpec parses a spec and returns its canonical rendering, with the
// uniform baseline normalised to the empty string. Entry points (CLI flags,
// nopfs options, the sweep axis) canonicalise before stamping a Plan so two
// spellings of one pattern ("zipf" vs "zipf:s=1.1") share plan digests,
// cache entries, and memoised results.
func CanonicalSpec(spec string) (string, error) {
	pat, err := ParseAccessSpec(spec)
	if err != nil {
		return "", err
	}
	if pat.Empty() {
		return "", nil
	}
	return pat.Spec(), nil
}

// keyVals splits "k1=v1,k2=v2" argument lists.
func keyVals(kind, args string) ([][2]string, error) {
	if strings.TrimSpace(args) == "" {
		return nil, fmt.Errorf("access: %s: empty argument list", kind)
	}
	var out [][2]string
	for _, part := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("access: %s: want key=value, got %q", kind, part)
		}
		out = append(out, [2]string{k, v})
	}
	return out, nil
}

func parseFloatArg(kind, key, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, fmt.Errorf("access: %s: bad %s value %q", kind, key, v)
	}
	return f, nil
}

func (pat *Pattern) parseZipf(args string) error {
	pat.Kind = KindZipf
	kvs, err := keyVals(KindZipf, args)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		switch kv[0] {
		case "s":
			if pat.S, err = parseFloatArg(KindZipf, "s", kv[1]); err != nil {
				return err
			}
		case "drift":
			if pat.Drift, err = parseFloatArg(KindZipf, "drift", kv[1]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("access: zipf: unknown key %q (want s, drift)", kv[0])
		}
	}
	return nil
}

func (pat *Pattern) parseBoost(args string) error {
	pat.Kind = KindBoost
	kvs, err := keyVals(KindBoost, args)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		switch kv[0] {
		case "frac":
			if pat.Frac, err = parseFloatArg(KindBoost, "frac", kv[1]); err != nil {
				return err
			}
		case "factor":
			if pat.Factor, err = parseFloatArg(KindBoost, "factor", kv[1]); err != nil {
				return err
			}
		case "drift":
			if pat.Drift, err = parseFloatArg(KindBoost, "drift", kv[1]); err != nil {
				return err
			}
		default:
			return fmt.Errorf("access: boost: unknown key %q (want frac, factor, drift)", kv[0])
		}
	}
	return nil
}

func (pat *Pattern) parseCurriculum(args string) error {
	pat.Kind = KindCurriculum
	pat.Shuffle = true
	kvs, err := keyVals(KindCurriculum, args)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		switch kv[0] {
		case "buckets":
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return fmt.Errorf("access: curriculum: bad buckets value %q", kv[1])
			}
			pat.Buckets = n
		case "shuffle":
			switch kv[1] {
			case "on":
				pat.Shuffle = true
			case "off":
				pat.Shuffle = false
			default:
				return fmt.Errorf("access: curriculum: bad shuffle value %q (want on or off)", kv[1])
			}
		default:
			return fmt.Errorf("access: curriculum: unknown key %q (want buckets, shuffle)", kv[0])
		}
	}
	return nil
}

func (pat *Pattern) parseMix(args string) error {
	pat.Kind = KindMix
	kvs, err := keyVals(KindMix, args)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		if kv[0] != "w" {
			return fmt.Errorf("access: mix: unknown key %q (want w)", kv[0])
		}
		for _, part := range strings.Split(kv[1], "/") {
			w, err := parseFloatArg(KindMix, "w", part)
			if err != nil {
				return err
			}
			pat.Weights = append(pat.Weights, w)
		}
	}
	return nil
}

func (pat *Pattern) parseElastic(args string) error {
	pat.Kind = KindElastic
	kvs, err := keyVals(KindElastic, args)
	if err != nil {
		return err
	}
	for _, kv := range kvs {
		ev, err := parseEvent(kv[0], kv[1])
		if err != nil {
			return err
		}
		switch kv[0] {
		case "join":
			pat.Joins = append(pat.Joins, ev)
		case "leave":
			pat.Leaves = append(pat.Leaves, ev)
		default:
			return fmt.Errorf("access: elastic: unknown key %q (want join, leave)", kv[0])
		}
	}
	return nil
}

// parseEvent parses "<rank>@<epoch>".
func parseEvent(key, v string) (MemberEvent, error) {
	r, e, ok := strings.Cut(v, "@")
	if !ok {
		return MemberEvent{}, fmt.Errorf("access: elastic: %s wants rank@epoch, got %q", key, v)
	}
	rank, err1 := strconv.Atoi(r)
	epoch, err2 := strconv.Atoi(e)
	if err1 != nil || err2 != nil {
		return MemberEvent{}, fmt.Errorf("access: elastic: %s wants rank@epoch, got %q", key, v)
	}
	return MemberEvent{Rank: rank, Epoch: epoch}, nil
}

// Validate checks the pattern's plan-independent constraints. Plan-dependent
// constraints (elastic ranks within N, nonempty active sets, mixture parts
// and curriculum buckets within F) are checked by Plan.Validate.
func (pat Pattern) Validate() error {
	switch pat.Kind {
	case "", KindUniform:
		return nil
	case KindZipf:
		if pat.S <= 0 {
			return fmt.Errorf("access: zipf: exponent s must be > 0, got %s", trimFloat(pat.S))
		}
	case KindBoost:
		if pat.Frac <= 0 || pat.Frac > 1 {
			return fmt.Errorf("access: boost: frac must be in (0,1], got %s", trimFloat(pat.Frac))
		}
		if pat.Factor < 1 {
			return fmt.Errorf("access: boost: factor must be >= 1, got %s", trimFloat(pat.Factor))
		}
	case KindCurriculum:
		if pat.Buckets <= 0 {
			return fmt.Errorf("access: curriculum: buckets must be > 0, got %d", pat.Buckets)
		}
	case KindMix:
		if len(pat.Weights) < 2 {
			return errors.New("access: mix: need at least 2 mixture weights")
		}
		for _, w := range pat.Weights {
			if w <= 0 {
				return fmt.Errorf("access: mix: weights must be > 0, got %s", trimFloat(w))
			}
		}
	case KindElastic:
		if len(pat.Joins)+len(pat.Leaves) == 0 {
			return errors.New("access: elastic: need at least one join or leave event")
		}
		seen := map[[2]int]bool{}
		check := func(key string, evs []MemberEvent, kind int) error {
			for _, ev := range evs {
				if ev.Rank < 0 {
					return fmt.Errorf("access: elastic: %s rank %d must be >= 0", key, ev.Rank)
				}
				if ev.Epoch < 1 {
					return fmt.Errorf("access: elastic: %s epoch %d must be >= 1 (membership changes at epoch boundaries)", key, ev.Epoch)
				}
				if seen[[2]int{kind, ev.Rank}] {
					return fmt.Errorf("access: elastic: duplicate %s event for rank %d", key, ev.Rank)
				}
				seen[[2]int{kind, ev.Rank}] = true
			}
			return nil
		}
		if err := check("join", pat.Joins, 0); err != nil {
			return err
		}
		if err := check("leave", pat.Leaves, 1); err != nil {
			return err
		}
		for _, j := range pat.Joins {
			for _, l := range pat.Leaves {
				if j.Rank == l.Rank && l.Epoch <= j.Epoch {
					return fmt.Errorf("access: elastic: rank %d leaves at epoch %d but only joins at %d", j.Rank, l.Epoch, j.Epoch)
				}
			}
		}
	default:
		return fmt.Errorf("access: unknown pattern kind %q", pat.Kind)
	}
	if pat.Drift < 0 {
		return fmt.Errorf("access: %s: drift must be >= 0, got %s", pat.Kind, trimFloat(pat.Drift))
	}
	return nil
}

// validateFor checks the plan-dependent constraints.
func (pat Pattern) validateFor(p *Plan) error {
	switch pat.Kind {
	case KindCurriculum:
		if pat.Buckets > p.F {
			return fmt.Errorf("access: curriculum: %d buckets exceed dataset size %d", pat.Buckets, p.F)
		}
	case KindMix:
		if len(pat.Weights) > p.F {
			return fmt.Errorf("access: mix: %d parts exceed dataset size %d", len(pat.Weights), p.F)
		}
	case KindElastic:
		for _, ev := range append(append([]MemberEvent(nil), pat.Joins...), pat.Leaves...) {
			if ev.Rank >= p.N {
				return fmt.Errorf("access: elastic: rank %d out of range for N=%d workers", ev.Rank, p.N)
			}
		}
		for e := 0; e < p.E; e++ {
			if len(pat.activeRanks(e, p.N)) == 0 {
				return fmt.Errorf("access: elastic: epoch %d has no active ranks", e)
			}
		}
	}
	return nil
}

// activeRanks returns epoch e's active rank set, ascending. A rank with a
// join event is inactive before its join epoch; one with a leave event is
// inactive from its leave epoch on.
func (pat Pattern) activeRanks(e, n int) []int {
	out := make([]int, 0, n)
rank:
	for r := 0; r < n; r++ {
		for _, ev := range pat.Joins {
			if ev.Rank == r && e < ev.Epoch {
				continue rank
			}
		}
		for _, ev := range pat.Leaves {
			if ev.Rank == r && e >= ev.Epoch {
				continue rank
			}
		}
		out = append(out, r)
	}
	return out
}

// uniformOrder reports whether the pattern keeps the uniform per-epoch
// permutation (elastic changes the partition, not the order).
func (pat Pattern) uniformOrder() bool { return pat.Empty() || pat.Kind == KindElastic }

// orderInto fills out (length F) with epoch e's global access order. Every
// draw comes from the plan's derived epoch generator, so the order is a pure
// function of (Seed, spec, e) and parallel per-epoch generation stays
// bit-identical to the serial loop.
func (pat Pattern) orderInto(p *Plan, e int, out []SampleID) {
	switch pat.Kind {
	case "", KindUniform, KindElastic:
		p.epochGen(e).Perm32Into(out)
	case KindZipf, KindBoost:
		pat.weightedInto(p, e, out)
	case KindCurriculum:
		pat.curriculumInto(p, e, out)
	case KindMix:
		pat.mixInto(p, e, out)
	default:
		panic(fmt.Sprintf("access: unknown pattern kind %q", pat.Kind))
	}
}

// weightedInto draws F samples with replacement from the pattern's weight
// table (Zipf ranks or the boost set), the importance-sampling generators.
// Drift rotates the weight-to-sample mapping by floor(drift*e*F) ids.
func (pat Pattern) weightedInto(p *Plan, e int, out []SampleID) {
	f := p.F
	shift := 0
	if pat.Drift > 0 {
		shift = int(pat.Drift*float64(e)*float64(f)) % f
	}
	cum := make([]float64, f)
	total := 0.0
	hot := 0
	if pat.Kind == KindBoost {
		hot = int(math.Ceil(pat.Frac * float64(f)))
	}
	for i := 0; i < f; i++ {
		// rank i carries the weight; it maps to sample (i+shift) mod f —
		// cum stays a monotone table over ranks, samples rotate under it.
		var w float64
		if pat.Kind == KindZipf {
			w = 1 / math.Pow(float64(i+1), pat.S)
		} else if i < hot {
			w = pat.Factor
		} else {
			w = 1
		}
		total += w
		cum[i] = total
	}
	g := p.epochGen(e)
	for j := range out {
		x := g.Float64() * total
		rank := sort.Search(f, func(i int) bool { return cum[i] > x })
		if rank >= f {
			rank = f - 1
		}
		out[j] = SampleID((rank + shift) % f)
	}
}

// curriculumInto emits the difficulty-ordered epoch: sample ids ascending
// (id as the difficulty proxy) in Buckets near-equal buckets, optionally
// permuted within each bucket per epoch.
func (pat Pattern) curriculumInto(p *Plan, e int, out []SampleID) {
	for i := range out {
		out[i] = SampleID(i)
	}
	if !pat.Shuffle {
		return
	}
	g := p.epochGen(e)
	f, b := p.F, pat.Buckets
	for k := 0; k < b; k++ {
		shuffle32(g, out[k*f/b:(k+1)*f/b])
	}
}

// mixInto emits the merged multi-dataset epoch: the K contiguous near-equal
// parts of [0,F) are independently permuted (one derived sub-generator per
// part) and interleaved by largest-remainder weighted credit, so each part's
// samples appear exactly once per epoch at the declared mixture rate.
func (pat Pattern) mixInto(p *Plan, e int, out []SampleID) {
	f, k := p.F, len(pat.Weights)
	g := p.epochGen(e)
	parts := make([][]SampleID, k)
	for i := range parts {
		lo, hi := i*f/k, (i+1)*f/k
		part := make([]SampleID, hi-lo)
		for j := range part {
			part[j] = SampleID(lo + j)
		}
		shuffle32(g.Derive(uint64(i)+1), part)
		parts[i] = part
	}
	credits := make([]float64, k)
	idx := make([]int, k)
	for n := 0; n < f; n++ {
		// Renormalise accrual over the non-exhausted parts so late samples
		// of a light part still interleave instead of bunching at the end.
		total := 0.0
		for i := range parts {
			if idx[i] < len(parts[i]) {
				total += pat.Weights[i]
			}
		}
		best := -1
		for i := range parts {
			if idx[i] >= len(parts[i]) {
				continue
			}
			credits[i] += pat.Weights[i] / total
			if best < 0 || credits[i] > credits[best] {
				best = i // strict > keeps ties on the lowest index
			}
		}
		out[n] = parts[best][idx[best]]
		idx[best]++
		credits[best]--
	}
}

// MixPart returns the mixture part owning a sample id: part k of K covers
// the contiguous id range [k*F/K, (k+1)*F/K). It is the per-dataset
// accounting rule the mixture conservation law checks against.
func MixPart(id SampleID, f, k int) int {
	// Inverse of the near-equal split: binary-search-free since parts are
	// contiguous; candidate from proportional position, corrected ±1.
	p := int(int64(id) * int64(k) / int64(f))
	for p+1 < k && int(id) >= (p+1)*f/k {
		p++
	}
	for p > 0 && int(id) < p*f/k {
		p--
	}
	return p
}

// shuffle32 Fisher-Yates-shuffles a SampleID slice in place with g's draws.
func shuffle32(g *prng.Generator, s []SampleID) {
	for i := len(s) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
