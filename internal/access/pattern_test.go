package access

import (
	"reflect"
	"testing"
)

// patternPlan returns a small plan carrying the given spec.
func patternPlan(spec string) Plan {
	return Plan{Seed: 42, F: 120, N: 4, E: 4, BatchPerWorker: 5, Access: spec}
}

// specSamples is one spec per kind plus presets, reused across tests.
var specSamples = []string{
	"", "uniform",
	"zipf:s=1.2", "zipf:s=1.1,drift=0.05",
	"boost:frac=0.1,factor=8", "boost:frac=0.25,factor=4,drift=0.1",
	"curriculum:buckets=4", "curriculum:buckets=3,shuffle=off",
	"mix:w=0.6/0.3/0.1", "mix:w=1/1",
	"elastic:join=1@1,leave=2@2", "elastic:leave=3@1",
	"zipf", "drifting-zipf", "hot-set", "curriculum", "mix", "elastic",
}

func TestParseAccessSpecRoundTrip(t *testing.T) {
	for _, spec := range specSamples {
		pat, err := ParseAccessSpec(spec)
		if err != nil {
			t.Fatalf("ParseAccessSpec(%q): %v", spec, err)
		}
		again, err := ParseAccessSpec(pat.Spec())
		if err != nil {
			t.Fatalf("re-parse of canonical %q (from %q): %v", pat.Spec(), spec, err)
		}
		// Canonical specs are a fixed point; preset names dissolve into
		// their spec on the round trip.
		pat.Name = ""
		if !reflect.DeepEqual(pat, again) {
			t.Errorf("%q: canonical round-trip drifted:\n got %+v\nwant %+v", spec, again, pat)
		}
		if again.Spec() != pat.Spec() {
			t.Errorf("%q: Spec not a fixed point: %q vs %q", spec, again.Spec(), pat.Spec())
		}
	}
}

func TestParseAccessSpecErrors(t *testing.T) {
	bad := []string{
		"bogus", "bogus:x=1",
		"zipf:", "zipf:s=0", "zipf:s=nope", "zipf:q=1",
		"boost:frac=0,factor=2", "boost:frac=2,factor=2", "boost:frac=0.1,factor=0.5",
		"curriculum:buckets=0", "curriculum:buckets=x", "curriculum:buckets=2,shuffle=maybe",
		"mix:w=1", "mix:w=1/0", "mix:w=1/-2", "mix:q=1/1",
		"elastic:", "elastic:join=1", "elastic:join=1@0", "elastic:join=-1@1",
		"elastic:join=1@1,join=1@2", "elastic:join=1@3,leave=1@2",
		"zipf:s=1,drift=-0.5",
	}
	for _, spec := range bad {
		if _, err := ParseAccessSpec(spec); err == nil {
			t.Errorf("ParseAccessSpec(%q): want error, got nil", spec)
		}
	}
}

func TestCanonicalSpec(t *testing.T) {
	for spec, want := range map[string]string{
		"":              "",
		"uniform":       "",
		"zipf":          "zipf:s=1.1",
		"zipf:s=1.1":    "zipf:s=1.1",
		"hot-set":       "boost:frac=0.1,factor=8",
		"drifting-zipf": "zipf:s=1.1,drift=0.05",
		"elastic":       "elastic:join=1@1,leave=2@2",
	} {
		got, err := CanonicalSpec(spec)
		if err != nil {
			t.Fatalf("CanonicalSpec(%q): %v", spec, err)
		}
		if got != want {
			t.Errorf("CanonicalSpec(%q) = %q, want %q", spec, got, want)
		}
	}
}

// TestUniformSpecKeepsLegacyOrders pins the opt-out guarantee: a plan with
// the uniform (or empty) spec produces exactly the orders, streams, and hash
// of a pattern-free plan.
func TestUniformSpecKeepsLegacyOrders(t *testing.T) {
	base := patternPlan("")
	uni := patternPlan("uniform")
	for e := 0; e < base.E; e++ {
		if !reflect.DeepEqual(base.EpochOrder(e), uni.EpochOrder(e)) {
			t.Fatalf("epoch %d: uniform spec changed the order", e)
		}
	}
	if !reflect.DeepEqual(base.AllWorkerStreams(), uni.AllWorkerStreams()) {
		t.Fatal("uniform spec changed the worker streams")
	}
}

// TestPatternOrdersDeterministic pins seed determinism and the parallel
// generation contract for every pattern kind.
func TestPatternOrdersDeterministic(t *testing.T) {
	for _, spec := range specSamples {
		p := patternPlan(spec)
		serial := make([][]SampleID, p.E)
		for e := range serial {
			serial[e] = p.EpochOrder(e)
		}
		for _, workers := range []int{1, 4} {
			if got := p.EpochOrders(workers); !reflect.DeepEqual(got, serial) {
				t.Errorf("%q: EpochOrders(%d) differs from serial EpochOrder loop", spec, workers)
			}
		}
		q := patternPlan(spec)
		for e := 0; e < p.E; e++ {
			if !reflect.DeepEqual(p.EpochOrder(e), q.EpochOrder(e)) {
				t.Errorf("%q: epoch %d order not a pure function of the plan", spec, e)
			}
		}
	}
}

// TestPermutationPatterns: curriculum, mix, elastic, and uniform orders must
// each be a permutation of [0,F); importance sampling draws with replacement
// and is exempt.
func TestPermutationPatterns(t *testing.T) {
	for _, spec := range []string{"", "curriculum:buckets=4", "curriculum:buckets=3,shuffle=off", "mix:w=0.6/0.3/0.1", "elastic:join=1@1"} {
		p := patternPlan(spec)
		for e := 0; e < p.E; e++ {
			seen := make([]bool, p.F)
			for _, id := range p.EpochOrder(e) {
				if seen[id] {
					t.Fatalf("%q epoch %d: sample %d repeated", spec, e, id)
				}
				seen[id] = true
			}
		}
	}
}

// TestZipfSkewsFrequencies: the head of the Zipf distribution must be drawn
// substantially more often than the tail across the run.
func TestZipfSkewsFrequencies(t *testing.T) {
	p := patternPlan("zipf:s=1.2")
	var head, tail int64
	for e := 0; e < p.E; e++ {
		for _, id := range p.EpochOrder(e) {
			if int(id) < p.F/10 {
				head++
			} else if int(id) >= p.F*9/10 {
				tail++
			}
		}
	}
	if head <= 2*tail {
		t.Fatalf("zipf head %d not dominating tail %d", head, tail)
	}
}

// TestBoostDriftMovesHotSet: with drift, the boosted window must rotate —
// later epochs concentrate on different samples than epoch 0.
func TestBoostDriftMovesHotSet(t *testing.T) {
	p := patternPlan("boost:frac=0.1,factor=16,drift=0.5")
	counts := func(e int) []int {
		c := make([]int, p.F)
		for _, id := range p.EpochOrder(e) {
			c[id]++
		}
		return c
	}
	hottest := func(c []int) int {
		best := 0
		for i, n := range c {
			if n > c[best] {
				best = i
			}
		}
		return best
	}
	h0, h2 := hottest(counts(0)), hottest(counts(2))
	if d := (h2 - h0 + p.F) % p.F; d < p.F/10 {
		t.Fatalf("drifted hot set did not move: hottest %d -> %d", h0, h2)
	}
}

// TestCurriculumBucketsPreserveDifficultyOrder: each bucket holds exactly
// its id range, so the epoch stays difficulty-ordered at bucket granularity.
func TestCurriculumBucketsPreserveDifficultyOrder(t *testing.T) {
	p := patternPlan("curriculum:buckets=4")
	b, f := 4, p.F
	for e := 0; e < p.E; e++ {
		order := p.EpochOrder(e)
		for k := 0; k < b; k++ {
			lo, hi := k*f/b, (k+1)*f/b
			for _, id := range order[lo:hi] {
				if int(id) < lo || int(id) >= hi {
					t.Fatalf("epoch %d: sample %d escaped bucket [%d,%d)", e, id, lo, hi)
				}
			}
		}
	}
	// shuffle=off is the identity order.
	q := patternPlan("curriculum:buckets=4,shuffle=off")
	order := q.EpochOrder(1)
	for i, id := range order {
		if int(id) != i {
			t.Fatalf("shuffle=off: position %d holds %d, want %d", i, id, i)
		}
	}
}

// TestMixInterleaveRates: parts must appear at roughly their mixture rates
// in every prefix (largest-remainder interleave, not front-loading).
func TestMixInterleaveRates(t *testing.T) {
	p := patternPlan("mix:w=0.5/0.3/0.2")
	order := p.EpochOrder(0)
	half := order[:p.F/2]
	counts := make([]int, 3)
	for _, id := range half {
		counts[MixPart(id, p.F, 3)]++
	}
	// Parts are near-equal in size (40 each of 120); the half-prefix at
	// rates 0.5/0.3/0.2 should exhaust none and keep ordering 0 >= 1 >= 2.
	if !(counts[0] >= counts[1] && counts[1] >= counts[2]) {
		t.Fatalf("prefix counts %v do not follow mixture weights", counts)
	}
	if counts[2] == 0 {
		t.Fatalf("light part starved in the first half: %v", counts)
	}
}

// TestMixPartInverse pins the contiguous-part accounting rule.
func TestMixPartInverse(t *testing.T) {
	for _, k := range []int{2, 3, 7} {
		for _, f := range []int{10, 120, 121} {
			if k > f {
				continue
			}
			for id := 0; id < f; id++ {
				part := MixPart(SampleID(id), f, k)
				lo, hi := part*f/k, (part+1)*f/k
				if id < lo || id >= hi {
					t.Fatalf("MixPart(%d, f=%d, k=%d) = %d but range is [%d,%d)", id, f, k, part, lo, hi)
				}
			}
		}
	}
}

// TestElasticPartitionExactlyOnce: each epoch's positions are partitioned
// exactly once among the epoch's active ranks, and inactive ranks get
// nothing.
func TestElasticPartitionExactlyOnce(t *testing.T) {
	p := patternPlan("elastic:join=1@1,leave=2@2")
	orders := p.EpochOrders(0)
	streams, ends := p.AllStreamsFromOrders(orders, 0)
	if ends == nil {
		t.Fatal("elastic plan returned nil epoch ends")
	}
	wantActive := [][]int{{0, 2, 3}, {0, 1, 2, 3}, {0, 1, 3}, {0, 1, 3}}
	for e := 0; e < p.E; e++ {
		if got := p.ActiveRanks(e); !reflect.DeepEqual(got, wantActive[e]) {
			t.Fatalf("epoch %d active ranks = %v, want %v", e, got, wantActive[e])
		}
		// Reassemble the epoch from the per-worker slices: the union must
		// be exactly the epoch order's consumed prefix as a multiset.
		seen := map[SampleID]int{}
		total := 0
		for w := 0; w < p.N; w++ {
			lo := 0
			if e > 0 {
				lo = ends[w][e-1]
			}
			seg := streams[w][lo:ends[w][e]]
			active := false
			for _, r := range wantActive[e] {
				if r == w {
					active = true
				}
			}
			if !active && len(seg) != 0 {
				t.Fatalf("epoch %d: inactive rank %d delivered %d samples", e, w, len(seg))
			}
			for _, id := range seg {
				seen[id]++
			}
			total += len(seg)
		}
		if total != p.EpochLimit() {
			t.Fatalf("epoch %d delivered %d samples, want %d", e, total, p.EpochLimit())
		}
		for _, id := range orders[e][:p.EpochLimit()] {
			if seen[id] != 1 {
				t.Fatalf("epoch %d: sample %d delivered %d times", e, id, seen[id])
			}
		}
	}
	// AllWorkerStreams must agree with the orders-based builder.
	if got := p.AllWorkerStreams(); !reflect.DeepEqual(got, streams) {
		t.Fatal("AllWorkerStreams disagrees with AllStreamsFromOrders")
	}
}

// TestStaticStreamsFromOrdersMatchLegacy: for non-elastic plans the
// concurrent builder must replicate the pos-mod-N partition exactly and
// return nil ends.
func TestStaticStreamsFromOrdersMatchLegacy(t *testing.T) {
	for _, spec := range []string{"", "zipf:s=1.1", "mix:w=1/1"} {
		p := patternPlan(spec)
		orders := p.EpochOrders(0)
		streams, ends := p.AllStreamsFromOrders(orders, 0)
		if ends != nil {
			t.Fatalf("%q: static plan returned epoch ends", spec)
		}
		if want := p.AllWorkerStreams(); !reflect.DeepEqual(streams, want) {
			t.Fatalf("%q: AllStreamsFromOrders disagrees with AllWorkerStreams", spec)
		}
	}
}

// TestElasticValidation pins the plan-dependent elastic checks.
func TestElasticValidation(t *testing.T) {
	p := patternPlan("elastic:join=7@1")
	if err := p.Validate(); err == nil {
		t.Error("rank out of range: want error")
	}
	q := Plan{Seed: 1, F: 40, N: 2, E: 3, BatchPerWorker: 2,
		Access: "elastic:join=0@1,join=1@2"}
	if err := q.Validate(); err == nil {
		t.Error("empty epoch-0 active set: want error")
	}
	r := patternPlan("elastic:join=1@1,leave=2@2")
	if err := r.Validate(); err != nil {
		t.Errorf("valid elastic plan rejected: %v", err)
	}
}

// TestHashCoversPattern: plans differing only in the access spec must not
// collide, and the empty spec must hash identically to the pre-pattern plan
// (the live digest allgather stays compatible).
func TestHashCoversPattern(t *testing.T) {
	base := patternPlan("")
	hashes := map[uint64]string{base.Hash(): ""}
	for _, spec := range []string{"zipf:s=1.1", "zipf:s=1.2", "curriculum:buckets=4", "elastic:join=1@1"} {
		p := patternPlan(spec)
		h := p.Hash()
		if prev, dup := hashes[h]; dup {
			t.Fatalf("hash collision between specs %q and %q", prev, spec)
		}
		hashes[h] = spec
	}
}

// TestWorkerFrequenciesMatchStreamsUnderPatterns: the frequency tables that
// drive placement must agree with the materialised streams for every kind.
func TestWorkerFrequenciesMatchStreamsUnderPatterns(t *testing.T) {
	for _, spec := range []string{"zipf:s=1.1", "boost:frac=0.2,factor=4", "curriculum:buckets=4", "mix:w=0.6/0.4", "elastic:join=1@1,leave=2@2"} {
		p := patternPlan(spec)
		streams := p.AllWorkerStreams()
		freqs := p.Frequencies()
		for w := 0; w < p.N; w++ {
			want := make([]int32, p.F)
			for _, id := range streams[w] {
				want[id]++
			}
			if !reflect.DeepEqual(freqs[w], want) {
				t.Fatalf("%q: worker %d frequencies disagree with stream", spec, w)
			}
			if wf := p.WorkerFrequencies(w); !reflect.DeepEqual(wf, want) {
				t.Fatalf("%q: WorkerFrequencies(%d) disagrees with stream", spec, w)
			}
		}
	}
}
