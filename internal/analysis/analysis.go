// Package analysis is a dependency-free static-analysis framework (stdlib
// go/parser + go/ast + go/types with the source importer) that mechanically
// enforces this repository's load-bearing contracts:
//
//   - determinism — the simulation/planning packages must stay a pure
//     function of the seed: no wall clock, no global math/rand, no map
//     iteration feeding ordered output or order-sensitive accumulation;
//   - ctxfirst — library APIs are context-first: blocking exported functions
//     take a context.Context as their first parameter, and library code
//     never manufactures context.Background()/TODO() roots;
//   - goroutine — every goroutine in library code is tied to a teardown
//     path (context, done channel, or WaitGroup), and library code never
//     busy-waits on a bare time.Sleep;
//   - metricnames — every internal/metrics registration uses a constant
//     nopfs_-prefixed snake_case name with the unit-suffix conventions;
//   - exitcodes — os.Exit and log.Fatal* live only in cmd/ and
//     internal/cli, where the 0/1/2/130 exit-code contract is implemented;
//   - retrybound — retry loops around fabric calls in library code go
//     through internal/resilience, so every retry is attempt-bounded, backs
//     off deterministically, and honours the per-peer circuit breaker.
//
// Findings are suppressed line by line with
//
//	//lint:ignore <check> <reason>
//
// placed on, or on the line above, the flagged line. The reason is
// mandatory: a reasonless or unknown-check ignore is itself a finding and
// cannot be suppressed. The surface is the `nopfs lint` subcommand
// (internal/cli) and `make lint`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for both human (String) and machine
// (-json) consumption. File is module-root-relative and slash-separated.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	// Name is the check token used in output and //lint:ignore comments.
	Name string
	// Doc is the one-line contract description.
	Doc string
	// Run returns the check's findings for one package.
	Run func(p *Package) []Diagnostic
}

// Analyzers returns the repo's check suite in output order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		determinismAnalyzer(),
		ctxfirstAnalyzer(),
		goroutineAnalyzer(),
		metricnamesAnalyzer(),
		exitcodesAnalyzer(),
		retryboundAnalyzer(),
	}
}

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	Fset *token.FileSet
	// Dir is the absolute package directory; Rel is module-root-relative
	// (slash-separated), e.g. "internal/sim".
	Dir, Rel string
	// Name is the package name from source ("main" matters to scoping).
	Name  string
	Files []*ast.File
	// Types and Info carry whatever type information resolved; either may be
	// partial if the package had type errors.
	Types *types.Package
	Info  *types.Info

	root string
}

// EffectivePath is the module-relative path scope decisions use. Fixture
// packages under a testdata/src/ tree masquerade as the path below it, so
// testdata/src/internal/sim exercises exactly the internal/sim scope rules.
func (p *Package) EffectivePath() string {
	if i := strings.LastIndex(p.Rel, "testdata/src/"); i >= 0 {
		return p.Rel[i+len("testdata/src/"):]
	}
	return p.Rel
}

// underPath reports whether path is prefix or below it.
func underPath(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// mainAdjacent reports whether p is command (not library) code: package main
// anywhere, the cmd/ and examples/ trees, the CLI implementation, and the
// internal dev tools. The context, goroutine, and exit-code contracts bind
// library code only.
func (p *Package) mainAdjacent() bool {
	if p.Name == "main" {
		return true
	}
	ep := p.EffectivePath()
	for _, prefix := range []string{"cmd", "examples", "internal/cli", "internal/tools"} {
		if underPath(ep, prefix) {
			return true
		}
	}
	return false
}

// diag builds a Diagnostic at pos with a module-relative file path.
func (p *Package) diag(pos token.Pos, check, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	file := position.Filename
	if rel, err := relToSlash(p.root, file); err == nil {
		file = rel
	}
	return Diagnostic{
		File:    file,
		Line:    position.Line,
		Col:     position.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}

// Lint resolves patterns (relative to cwd), loads each matched package, runs
// the analyzers, applies //lint:ignore suppressions, and returns the
// surviving findings sorted by position. The returned error is a
// *PatternError for bad patterns (a usage error at the CLI).
func Lint(cwd string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	cwd, err := filepath.Abs(cwd)
	if err != nil {
		return nil, err
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	dirs, err := Match(cwd, patterns)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, dir := range dirs {
		pkg, err := Load(root, dir)
		if err != nil {
			return nil, err
		}
		var diags []Diagnostic
		for _, a := range analyzers {
			diags = append(diags, a.Run(pkg)...)
		}
		out = append(out, applySuppressions(pkg, diags, known)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return out, nil
}
