package analysis

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixture expectations")

// fixtureDirs lists every fixture package and the analyzer its golden file
// is named for (the golden still holds the output of the FULL suite over the
// package, so cross-firing between analyzers cannot hide).
var fixtureDirs = []struct{ dir, golden string }{
	{"internal/sim", "determinism"},
	{"internal/access", "determinism-access"},
	{"internal/ctxlib", "ctxfirst"},
	{"internal/golib", "goroutine"},
	{"internal/metlib", "metricnames"},
	{"internal/exitlib", "exitcodes"},
	{"internal/retrylib", "retrybound"},
	{"internal/clean", "clean"},
}

// TestFixtureGoldens runs the full suite over each fixture package and
// compares the findings line for line against the golden file. The
// suppressed.go twins in each fixture contribute zero lines, which is the
// proof that a reasoned //lint:ignore silences each check; the bad.go files
// prove each check fires.
func TestFixtureGoldens(t *testing.T) {
	for _, tc := range fixtureDirs {
		t.Run(tc.golden, func(t *testing.T) {
			diags, err := Lint(".", []string{"./testdata/src/" + tc.dir}, Analyzers())
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, d := range diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()

			goldenPath := filepath.Join("testdata", "golden", tc.golden+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestFixturesFireEveryAnalyzer is the meta-acceptance check: each of the
// six analyzers produces at least one finding somewhere in the fixtures,
// and each fixture's suppressed file produces none.
func TestFixturesFireEveryAnalyzer(t *testing.T) {
	diags, err := Lint(".", []string{
		"./testdata/src/internal/sim",
		"./testdata/src/internal/access",
		"./testdata/src/internal/ctxlib",
		"./testdata/src/internal/golib",
		"./testdata/src/internal/metlib",
		"./testdata/src/internal/exitlib",
		"./testdata/src/internal/retrylib",
	}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Check] = true
		if strings.HasSuffix(d.File, "suppressed.go") {
			t.Errorf("finding leaked through a reasoned suppression: %s", d)
		}
	}
	for _, a := range Analyzers() {
		if !fired[a.Name] {
			t.Errorf("analyzer %s produced no fixture finding", a.Name)
		}
	}
	// The suppression grammar is itself enforced: the malformed fixtures
	// must surface as "suppression" findings.
	if !fired["suppression"] {
		t.Errorf("malformed //lint:ignore fixtures produced no suppression finding")
	}
}

// TestRepoLintClean is the tentpole's acceptance criterion in executable
// form: the full suite over the real tree reports nothing — every
// pre-existing finding was fixed or carries a written suppression reason.
func TestRepoLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Lint(root, []string{"./..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}

// TestMatchPatterns pins the pattern grammar and its usage-error class.
func TestMatchPatterns(t *testing.T) {
	if _, err := Match(".", []string{"./no/such/dir"}); err == nil {
		t.Error("missing directory: want error")
	} else if _, ok := err.(*PatternError); !ok {
		t.Errorf("missing directory: got %T, want *PatternError", err)
	}
	if _, err := Match(".", []string{"./testdata"}); err == nil {
		t.Error("dir without Go files: want *PatternError")
	}

	dirs, err := Match(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("recursive walk descended into testdata: %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Errorf("./... from internal/analysis matched %d dirs, want 1 (itself): %v", len(dirs), dirs)
	}

	// Explicitly naming a testdata package works (fixtures, CI's seeded
	// violation) and recursive patterns below one are honoured.
	dirs, err = Match(".", []string{"./testdata/src/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != len(fixtureDirs) {
		t.Errorf("testdata/src/... matched %d dirs, want %d", len(dirs), len(fixtureDirs))
	}
}

// TestDiagnosticJSON pins the -json wire shape the CLI exposes.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "internal/x/y.go", Line: 3, Col: 7, Check: "determinism", Message: "m"}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"internal/x/y.go","line":3,"col":7,"check":"determinism","message":"m"}`
	if string(raw) != want {
		t.Errorf("JSON shape drifted:\n got %s\nwant %s", raw, want)
	}
	if s := d.String(); s != "internal/x/y.go:3:7: determinism: m" {
		t.Errorf("String() drifted: %s", s)
	}
}

// TestEffectivePath pins the testdata/src masquerade used by fixtures.
func TestEffectivePath(t *testing.T) {
	p := &Package{Rel: "internal/analysis/testdata/src/internal/sim"}
	if got := p.EffectivePath(); got != "internal/sim" {
		t.Errorf("EffectivePath = %q, want internal/sim", got)
	}
	p = &Package{Rel: "internal/sweep"}
	if got := p.EffectivePath(); got != "internal/sweep" {
		t.Errorf("EffectivePath = %q, want internal/sweep", got)
	}
}
