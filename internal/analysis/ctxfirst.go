package analysis

import (
	"go/ast"
)

func ctxfirstAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "ctxfirst",
		Doc: "library APIs are context-first: blocking exported functions take context.Context " +
			"as the first parameter; library code never calls context.Background()/TODO()",
		Run: runCtxfirst,
	}
}

func runCtxfirst(p *Package) []Diagnostic {
	if p.mainAdjacent() {
		return nil
	}
	var diags []Diagnostic

	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := pkgFuncCall(p.Info, call, "context", "Background", "TODO"); ok {
				diags = append(diags, p.diag(call.Pos(), "ctxfirst",
					"context.%s() in library code: accept the caller's context instead (PR 3 contract: "+
						"cancellation must reach every blocking layer)", name))
			}
		}
		return true
	})

	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Context present but misplaced is wrong for any function:
			// exported or not, ctx threads first by convention.
			params := fn.Type.Params
			hasCtx := false
			for i, field := range params.List {
				t := exprType(p.Info, field.Type)
				if t != nil && isContext(t) {
					hasCtx = true
					if i > 0 {
						diags = append(diags, p.diag(field.Pos(), "ctxfirst",
							"%s: context.Context must be the first parameter", fn.Name.Name))
					}
				}
			}
			// Exported API that blocks must accept a context at all.
			if !hasCtx && exportedFunc(fn) {
				if op, blocks := blockingOp(p, fn.Body); blocks {
					diags = append(diags, p.diag(fn.Pos(), "ctxfirst",
						"exported %s blocks (%s) but takes no context.Context", fn.Name.Name, op))
				}
			}
		}
	}
	return diags
}

// blockingOp scans a function body (not nested function literals — a
// function that merely *launches* concurrent work does not itself block) for
// operations that can block indefinitely: channel sends/receives, select,
// ranging over a channel, and sync.WaitGroup.Wait.
func blockingOp(p *Package, body *ast.BlockStmt) (string, bool) {
	var op string
	ast.Inspect(body, func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			op = "channel send"
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				op = "channel receive"
			}
		case *ast.SelectStmt:
			op = "select"
		case *ast.RangeStmt:
			if t := exprType(p.Info, x.X); t != nil && isChan(t) {
				op = "range over channel"
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := exprType(p.Info, sel.X); t != nil && isWaitGroup(t) {
					op = "sync.WaitGroup.Wait"
				}
			}
		}
		return op == ""
	})
	return op, op != ""
}
