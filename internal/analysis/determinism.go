package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismScope lists the packages whose outputs must be a pure function
// of the seed: the clairvoyant-plan pipeline. Bit-identical reports at any
// parallelism (PR 1's contract) die the moment one of these packages reads a
// wall clock, draws from a global PRNG, or lets Go's randomized map
// iteration order leak into an ordered result.
var determinismScope = []string{
	"internal/access",
	"internal/sim",
	"internal/sweep",
	"internal/cachepolicy",
	"internal/plancache",
	"internal/prng",
}

func determinismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc: "simulation/planning packages must be a pure function of the seed: " +
			"no time.Now/time.Since, no math/rand, no map ranges feeding ordered output or order-sensitive accumulation",
		Run: runDeterminism,
	}
}

func runDeterminism(p *Package) []Diagnostic {
	ep := p.EffectivePath()
	inScope := false
	for _, s := range determinismScope {
		if underPath(ep, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	var diags []Diagnostic
	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ImportSpec:
			switch x.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				diags = append(diags, p.diag(x.Pos(), "determinism",
					"import of %s: randomness must flow from the seeded internal/prng generators", x.Path.Value))
			}
		case *ast.CallExpr:
			if name, ok := pkgFuncCall(p.Info, x, "time", "Now", "Since"); ok {
				diags = append(diags, p.diag(x.Pos(), "determinism",
					"call to time.%s: wall-clock time makes simulation output nondeterministic", name))
			}
		case *ast.RangeStmt:
			if t := exprType(p.Info, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					if sink, found := orderSensitiveSink(p.Info, x.Body); found {
						diags = append(diags, p.diag(x.Pos(), "determinism",
							"map iteration order feeds %s: iterate sorted keys instead", sink))
					}
				}
			}
		}
		return true
	})
	return diags
}

// orderSensitiveSink scans a map-range body for operations whose result
// depends on iteration order: slice appends (ordered accumulation),
// floating-point compound assignment (non-associative accumulation), and
// writes to an output stream. Building other maps, integer counting, and
// key deletion are order-insensitive and pass.
func orderSensitiveSink(info *types.Info, body *ast.BlockStmt) (string, bool) {
	var sink string
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range x.Lhs {
					if t := exprType(info, lhs); t != nil && isFloat(t) {
						sink = "a floating-point accumulation (non-associative, so the sum depends on order)"
					}
				}
			default:
				for _, rhs := range x.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isAppend(info, call) {
						sink = "a slice append (ordered accumulation)"
					}
				}
			}
		case *ast.CallExpr:
			if name, ok := pkgFuncCall(info, x, "fmt",
				"Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf"); ok {
				sink = "fmt." + name + " output"
			} else if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Write", "WriteString", "WriteByte", "WriteRune":
					sink = "a stream write"
				}
			}
		}
		return sink == ""
	})
	return sink, sink != ""
}
