package analysis

import (
	"go/ast"
)

func exitcodesAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "exitcodes",
		Doc: "os.Exit and log.Fatal* live only in cmd/ and internal/cli, where the " +
			"0/1/2/130 exit-code contract is implemented; library code returns errors",
		Run: runExitcodes,
	}
}

func runExitcodes(p *Package) []Diagnostic {
	// package main is the process boundary by definition (cmd/, examples/,
	// internal/tools), and internal/cli implements the contract itself.
	if p.Name == "main" {
		return nil
	}
	ep := p.EffectivePath()
	if underPath(ep, "cmd") || underPath(ep, "internal/cli") {
		return nil
	}
	var diags []Diagnostic
	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := pkgFuncCall(p.Info, call, "os", "Exit"); ok {
			diags = append(diags, p.diag(call.Pos(), "exitcodes",
				"os.Exit in library code: return an error and let cmd/ or internal/cli map it "+
					"onto the 0/1/2/130 exit-code contract"))
		}
		if name, ok := pkgFuncCall(p.Info, call, "log", "Fatal", "Fatalf", "Fatalln"); ok {
			diags = append(diags, p.diag(call.Pos(), "exitcodes",
				"log.%s in library code exits the process: return an error and let cmd/ or "+
					"internal/cli map it onto the exit-code contract", name))
		}
		return true
	})
	return diags
}
