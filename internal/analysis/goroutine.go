package analysis

import (
	"go/ast"
	"go/types"
)

func goroutineAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine",
		Doc: "every goroutine in library code is tied to a teardown path (context, channel, or " +
			"WaitGroup), and library code never busy-waits on a bare time.Sleep",
		Run: runGoroutine,
	}
}

func runGoroutine(p *Package) []Diagnostic {
	if p.mainAdjacent() {
		return nil
	}
	var diags []Diagnostic
	decls := funcDeclIndex(p)

	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if _, ok := pkgFuncCall(p.Info, x, "time", "Sleep"); ok {
				diags = append(diags, p.diag(x.Pos(), "goroutine",
					"bare time.Sleep in library code: wait on a context or timer channel so "+
						"cancellation can interrupt it (PR 3 contract: teardown in bounded time)"))
			}
		case *ast.GoStmt:
			if !teardownEvidence(p, decls, x) {
				diags = append(diags, p.diag(x.Pos(), "goroutine",
					"goroutine has no visible teardown path: tie it to a context, a done/work "+
						"channel, or a sync.WaitGroup so cluster shutdown can collect it"))
			}
		}
		return true
	})
	return diags
}

// teardownEvidence reports whether the spawned function is visibly tied to a
// teardown path. The heuristic accepts any of, in the goroutine's arguments,
// its function-literal body, or (one level deep) the body of a same-package
// named function it calls:
//
//   - a value of type context.Context (cancellation reaches it),
//   - any channel operation or channel-typed value (its lifetime is bound to
//     a peer closing/draining the channel),
//   - a sync.WaitGroup use (a collector is waiting for it).
//
// A goroutine with none of these is unreachable by every shutdown mechanism
// the repo has — the exact leak class PR 3's zero-leaked-goroutines tests
// exist to prevent.
func teardownEvidence(p *Package, decls map[types.Object]*ast.FuncDecl, g *ast.GoStmt) bool {
	// Evidence in the call arguments (e.g. `go serve(ctx, conn)`).
	for _, arg := range g.Call.Args {
		if nodeHasTeardown(p, arg) {
			return true
		}
	}
	// Evidence in the spawned body: a literal's own body, or — one level
	// deep — the declaration of a same-package named function or method.
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		return nodeHasTeardown(p, fun.Body)
	default:
		if obj := calleeObject(p.Info, fun); obj != nil {
			if decl, ok := decls[obj]; ok && decl.Body != nil {
				return nodeHasTeardown(p, decl.Body)
			}
		}
		// Receiver evidence: `go j.worker()` where j carries a ctx/chan
		// field is opaque here, but the selector base itself may be typed.
		if sel, ok := fun.(*ast.SelectorExpr); ok && nodeHasTeardown(p, sel.X) {
			return true
		}
	}
	return false
}

// nodeHasTeardown scans one AST subtree for teardown evidence.
func nodeHasTeardown(p *Package, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				found = true
			}
		case ast.Expr:
			if t := exprType(p.Info, x); t != nil {
				if isContext(t) || isChan(t) || isWaitGroup(t) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
