package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// PatternError marks a package-pattern problem (no such directory, no Go
// packages matched): a usage error under the CLI's exit-code contract, not a
// runtime failure.
type PatternError struct{ msg string }

func (e *PatternError) Error() string { return e.msg }

func patternErrf(format string, a ...any) error {
	return &PatternError{msg: fmt.Sprintf(format, a...)}
}

// One process-wide file set and source importer, shared by every Load call:
// the source importer type-checks each dependency (including the standard
// library) from source exactly once and caches it, so linting many packages
// — or many lint invocations in one test binary — pays the cold cost once.
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	sharedImp  = importer.ForCompiler(sharedFset, "source", nil)
)

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Match resolves package patterns relative to cwd into package directories
// (absolute, sorted). Supported forms: "dir", "./dir", and the recursive
// "dir/..." / "./...". Recursive walks skip testdata, hidden, and "_"
// directories — name a testdata directory explicitly to lint a fixture.
func Match(cwd string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		p := pat
		if p == "..." {
			p, recursive = ".", true
		} else if strings.HasSuffix(p, "/...") {
			p, recursive = strings.TrimSuffix(p, "/..."), true
		}
		base := filepath.Join(cwd, filepath.FromSlash(p))
		st, err := os.Stat(base)
		if err != nil || !st.IsDir() {
			return nil, patternErrf("no such package directory: %s", pat)
		}
		if !recursive {
			if !hasGoFiles(base) {
				return nil, patternErrf("no Go package in %s", pat)
			}
			add(base)
			continue
		}
		found := false
		err = filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != base {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
			}
			if hasGoFiles(path) {
				found = true
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if !found {
			return nil, patternErrf("no Go packages under %s", pat)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one non-test Go source file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file. Test files
// are outside the lint surface: the contracts govern library and command
// code, and tests legitimately use wall clocks, sleeps, and Background
// contexts.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Load parses and type-checks the non-test sources of the package in dir.
// root is the module root (used to compute module-relative paths for
// diagnostics and scope decisions). Parse errors fail the load; type errors
// do not — the analyzers work from whatever type information resolved, so a
// package mid-refactor still gets linted.
func Load(root, dir string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(sharedFset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		names = append(names, path)
	}
	if len(files) == 0 {
		return nil, patternErrf("no Go package in %s", dir)
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: sharedImp,
		Error:    func(error) {}, // collect nothing: partial info is enough
	}
	tpkg, _ := conf.Check(rel, sharedFset, files, info)

	return &Package{
		Fset:  sharedFset,
		Dir:   dir,
		Rel:   rel,
		Name:  files[0].Name.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
		root:  root,
	}, nil
}
