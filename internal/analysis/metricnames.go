package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// The nopfs_* namespace contract (PR 7): every series registered on an
// internal/metrics Registry carries the repo prefix, is snake_case, and ends
// with the unit suffix its kind demands, so dashboards and alert rules can
// rely on the shape of every exported name.
var (
	metricNameRE = regexp.MustCompile(`^nopfs_[a-z0-9]+(_[a-z0-9]+)*$`)

	// Unit-suffix conventions per metric kind.
	counterSuffixes   = []string{"_total"}
	gaugeSuffixes     = []string{"_bytes", "_seconds", "_ratio", "_count"}
	histogramSuffixes = []string{"_seconds", "_bytes"}
)

func metricnamesAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "metricnames",
		Doc: "internal/metrics registrations use constant nopfs_-prefixed snake_case names: " +
			"counters end _total, histograms _seconds/_bytes, gauges a unit suffix",
		Run: runMetricnames,
	}
}

func runMetricnames(p *Package) []Diagnostic {
	var diags []Diagnostic
	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		switch kind {
		case "Counter", "Gauge", "Histogram":
		default:
			return true
		}
		recv := exprType(p.Info, sel.X)
		if recv == nil || !isMetricsRegistry(recv) || len(call.Args) == 0 {
			return true
		}

		tv, ok := p.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			diags = append(diags, p.diag(call.Args[0].Pos(), "metricnames",
				"%s registration: metric name must be a constant string so the exported namespace is auditable", kind))
			return true
		}
		name := constant.StringVal(tv.Value)
		if !metricNameRE.MatchString(name) {
			diags = append(diags, p.diag(call.Args[0].Pos(), "metricnames",
				"metric %q must be nopfs_-prefixed snake_case (matching %s)", name, metricNameRE))
			return true
		}
		var want []string
		switch kind {
		case "Counter":
			want = counterSuffixes
		case "Gauge":
			want = gaugeSuffixes
		case "Histogram":
			want = histogramSuffixes
		}
		for _, suffix := range want {
			if strings.HasSuffix(name, suffix) {
				return true
			}
		}
		diags = append(diags, p.diag(call.Args[0].Pos(), "metricnames",
			"%s %q needs a unit suffix: one of %s", strings.ToLower(kind), name, strings.Join(want, ", ")))
		return true
	})
	return diags
}

// isMetricsRegistry reports whether t is (a pointer to) the Registry type of
// an internal/metrics package. Matching on the path suffix keeps the check
// working for both the real "repro/internal/metrics" and any future module
// rename.
func isMetricsRegistry(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Name() != "Registry" {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "internal/metrics" || strings.HasSuffix(path, "/internal/metrics")
}
