package analysis

import (
	"go/ast"
	"strings"
)

func retryboundAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "retrybound",
		Doc: "retry loops around fabric calls in library code go through internal/resilience " +
			"(bounded attempts, seeded backoff, breaker-gated)",
		Run: runRetrybound,
	}
}

// runRetrybound flags unbounded `for` loops (no loop condition) that issue a
// fabric Call in library code. The repo's contract is that its one retry
// loop lives in resilience.Do — everything else either bounds its iteration
// explicitly (a conditioned or counted loop, like the allgather's peer walk)
// or delegates to the policy, so every retry is attempt-bounded, backs off
// deterministically, and respects the per-peer circuit breaker. An inline
// `for { Call }` silently spins on a dead peer forever; that is exactly the
// hang class the resilience layer exists to remove.
func runRetrybound(p *Package) []Diagnostic {
	if p.mainAdjacent() || underPath(p.EffectivePath(), "internal/resilience") {
		return nil
	}
	var diags []Diagnostic
	inspectFiles(p, func(_ *ast.File, n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if call := fabricCallIn(p, loop.Body); call != nil {
			diags = append(diags, p.diag(loop.Pos(), "retrybound",
				"unbounded for loop around a fabric Call: route the retry through "+
					"internal/resilience (resilience.Do) so attempts are bounded, backoff is "+
					"seeded, and the per-peer circuit breaker is honoured"))
		}
		return true
	})
	return diags
}

// fabricCallIn returns the first transport Call invocation in the subtree,
// or nil. A fabric call is a method call named Call whose receiver's static
// type is declared in internal/transport (the Network interface, a concrete
// endpoint, or any alias of them — decorators embedding Network resolve to
// the interface type).
func fabricCallIn(p *Package, root ast.Node) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Call" {
			return true
		}
		if t := namedType(exprType(p.Info, sel.X)); t != nil && t.Obj().Pkg() != nil &&
			strings.HasSuffix(t.Obj().Pkg().Path(), "internal/transport") {
			found = call
		}
		return found == nil
	})
	return found
}
