package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// The suppression grammar:
//
//	//lint:ignore <check> <reason>
//
// An ignore placed on line L silences findings of <check> on line L (inline
// comment) and line L+1 (comment above the flagged statement). The reason is
// mandatory and must say *why* the contract does not apply — a reasonless
// ignore, or one naming an unknown check, is reported as a "suppression"
// finding and cannot itself be suppressed.

const ignorePrefix = "lint:ignore"

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	file  string
	line  int
	check string
}

// applySuppressions filters diags through the package's //lint:ignore
// comments and appends a finding for each malformed ignore.
func applySuppressions(p *Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	active := map[suppression]bool{}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // a /* */ group cannot carry line suppressions
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				pos := p.Fset.Position(c.Pos())
				file := pos.Filename
				if rel, err := relToSlash(p.root, file); err == nil {
					file = rel
				}
				switch {
				case len(fields) == 0:
					out = append(out, p.diag(c.Pos(), "suppression",
						"malformed ignore: want //lint:ignore <check> <reason>"))
				case !known[fields[0]]:
					out = append(out, p.diag(c.Pos(), "suppression",
						"unknown check %q in //lint:ignore", fields[0]))
				case len(fields) == 1:
					out = append(out, p.diag(c.Pos(), "suppression",
						"//lint:ignore %s needs a reason: say why the contract does not apply here", fields[0]))
				default:
					active[suppression{file, pos.Line, fields[0]}] = true
					active[suppression{file, pos.Line + 1, fields[0]}] = true
				}
			}
		}
	}
	for _, d := range diags {
		if d.Check != "suppression" && active[suppression{d.File, d.Line, d.Check}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// relToSlash rebases an absolute path onto root in slash form.
func relToSlash(root, path string) (string, error) {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return "", err
	}
	return filepath.ToSlash(rel), nil
}

// inspectFiles runs fn over every node of every file in the package.
func inspectFiles(p *Package, fn func(f *ast.File, n ast.Node) bool) {
	for _, f := range p.Files {
		file := f
		ast.Inspect(file, func(n ast.Node) bool { return fn(file, n) })
	}
}
