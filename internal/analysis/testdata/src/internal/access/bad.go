// Package accessfix seeds determinism violations in the access-pattern
// layer's scope. Its directory masquerades as internal/access (see
// Package.EffectivePath): epoch orders are the root of the clairvoyant
// plan, so a wall clock or global PRNG here corrupts every downstream
// stream, frequency table, and memoised sweep result.
package accessfix

import (
	"math/rand"
	"time"
)

// DriftNow derives an epoch drift offset from the wall clock.
func DriftNow(f int) int { return int(time.Now().Unix()) % f }

// WeightedDraw samples a pattern weight from the global math/rand stream
// instead of the plan's seeded generators.
func WeightedDraw(weights []float64) int { return rand.Intn(len(weights)) }

// OrderParts flattens a part-id map in iteration order into an epoch order.
func OrderParts(parts map[int][]int32) []int32 {
	var order []int32
	for _, ids := range parts {
		order = append(order, ids...)
	}
	return order
}

// PartSizes counts ids per part — order-insensitive map work that must NOT
// be flagged.
func PartSizes(parts map[int][]int32) map[int]int {
	sizes := map[int]int{}
	for k, ids := range parts {
		sizes[k] = len(ids)
	}
	return sizes
}
