package accessfix

import "time"

// BenchClock proves a reasoned //lint:ignore still works in the access
// scope: same violation as DriftNow, zero findings expected from this file.
func BenchClock() int64 {
	//lint:ignore determinism fixture: proves a reasoned suppression silences the finding
	return time.Now().UnixNano()
}
