// Package clean is a violation-free fixture: `nopfs lint` must exit 0 here
// (the CLI exit-code table test depends on it).
package clean

// Answer returns a constant.
func Answer() int { return 42 }
