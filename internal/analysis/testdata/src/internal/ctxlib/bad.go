// Package ctxlib seeds context-contract violations for the ctxfirst fixture.
package ctxlib

import "context"

// Lookup takes its context in the wrong position.
func Lookup(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

// Detached manufactures a root context in library code.
func Detached() context.Context {
	return context.Background()
}

// Todo manufactures the other root.
func Todo() context.Context {
	return context.TODO()
}

// Await blocks on a channel receive without accepting a context.
func Await(ch chan int) int {
	return <-ch
}

// Launch only STARTS concurrent work (the blocking ops live in the literal,
// which does take the teardown channel) and must NOT be flagged by the
// blocking heuristic.
func Launch(done chan struct{}) {
	go func() {
		<-done
	}()
}
