package ctxlib

import "context"

// DetachedQuiet is the suppressed twin of Detached: zero findings expected.
func DetachedQuiet() context.Context {
	//lint:ignore ctxfirst fixture: proves a reasoned suppression silences the finding
	return context.Background()
}

// AwaitQuiet is the suppressed twin of Await.
//
//lint:ignore ctxfirst fixture: structurally bounded helper, caller owns the channel
func AwaitQuiet(ch chan int) int {
	return <-ch
}
