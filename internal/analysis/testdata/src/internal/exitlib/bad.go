// Package exitlib seeds exit-code-contract violations for the exitcodes
// fixture: library code must return errors, not exit the process.
package exitlib

import (
	"log"
	"os"
)

// Die exits the process from library code.
func Die(code int) {
	os.Exit(code)
}

// Fail log.Fatals from library code.
func Fail(err error) {
	log.Fatalf("fatal: %v", err)
}
