package exitlib

import "os"

// DieQuiet is the suppressed twin of Die: zero findings expected.
func DieQuiet(code int) {
	//lint:ignore exitcodes fixture: proves a reasoned suppression silences the finding
	os.Exit(code)
}
