// Package golib seeds goroutine-hygiene violations for the fixture tests.
package golib

import (
	"context"
	"sync"
	"time"
)

// Spin leaks a goroutine with no teardown path at all.
func Spin() {
	go func() {
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// Nap busy-waits on a bare sleep in library code.
func Nap() {
	time.Sleep(time.Millisecond)
}

// tick is a named helper with no teardown evidence; spawning it is flagged
// at the go statement.
func tick(n int) {
	for i := 0; i < n; i++ {
		_ = i
	}
}

// SpawnNamed launches the untied named helper.
func SpawnNamed() {
	go tick(10)
}

// Tied goroutines must NOT be flagged: WaitGroup, context, and channel
// evidence each count, including one level deep into a named callee.
func Tied(ctx context.Context, done chan struct{}) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	go func() {
		<-done
	}()
	go watch(ctx)
	wg.Wait()
}

// watch is tied through its context parameter.
func watch(ctx context.Context) {
	<-ctx.Done()
}
