package golib

import "time"

// NapQuiet is the suppressed twin of Nap: zero findings expected.
func NapQuiet() {
	//lint:ignore goroutine fixture: proves a reasoned suppression silences the finding
	time.Sleep(time.Millisecond)
}

// SpinQuiet is the suppressed twin of Spin.
func SpinQuiet() {
	//lint:ignore goroutine fixture: process-lifetime worker, documented as such
	go func() {
		for {
			_ = 0
		}
	}()
}
