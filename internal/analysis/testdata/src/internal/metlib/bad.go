// Package metlib seeds metric-naming violations for the metricnames fixture.
package metlib

import "repro/internal/metrics"

// Register registers series that each break one naming rule.
func Register(r *metrics.Registry, name string) {
	r.Counter("requests_total", "missing the nopfs_ prefix.")
	r.Counter("nopfs_Fetches_total", "not snake_case.")
	r.Counter("nopfs_fetches", "counter without the _total suffix.")
	r.Gauge("nopfs_queue_depth", "gauge without a unit suffix.")
	r.Histogram("nopfs_latency", "histogram without a unit suffix.", nil)
	r.Counter(name, "non-constant metric name.")
}

// RegisterGood registers fully conforming series and must NOT be flagged.
func RegisterGood(r *metrics.Registry) {
	r.Counter("nopfs_requests_total", "conforming counter.")
	r.Gauge("nopfs_staging_bytes", "conforming gauge.")
	r.Histogram("nopfs_fetch_seconds", "conforming histogram.", nil)
}
