package metlib

import "repro/internal/metrics"

// RegisterQuiet is the suppressed twin of Register: zero findings expected.
func RegisterQuiet(r *metrics.Registry) {
	//lint:ignore metricnames fixture: proves a reasoned suppression silences the finding
	r.Counter("requests_total", "missing the nopfs_ prefix, suppressed.")
}
