// Package retrylib seeds unbounded-retry violations for the fixture tests.
package retrylib

import (
	"context"

	"repro/internal/transport"
)

// FetchForever spins on the fabric until the call succeeds: the unbounded
// inline retry loop the resilience layer exists to replace.
func FetchForever(ctx context.Context, net transport.Network, to int, req transport.Request) transport.Response {
	for {
		resp, err := net.Call(ctx, to, req)
		if err == nil {
			return resp
		}
	}
}

// FetchCounted hides the same unbounded loop behind init/post clauses: no
// condition still means no bound.
func FetchCounted(ctx context.Context, net transport.Network, req transport.Request) transport.Response {
	for i := 0; ; i++ {
		resp, err := net.Call(ctx, i%2, req)
		if err == nil {
			return resp
		}
	}
}

// FetchBounded walks a fixed peer range — a conditioned loop is not a
// retry loop and must not be flagged.
func FetchBounded(ctx context.Context, net transport.Network, req transport.Request) error {
	for to := 0; to < 4; to++ {
		if _, err := net.Call(ctx, to, req); err != nil {
			return err
		}
	}
	return nil
}

// FetchOnce is a single call: nothing to flag.
func FetchOnce(ctx context.Context, net transport.Network, to int, req transport.Request) (transport.Response, error) {
	return net.Call(ctx, to, req)
}

// localCall proves the check is type-based: an unrelated method that merely
// shares the Call name does not count as a fabric call.
type localCall struct{}

func (localCall) Call(n int) int { return n }

// SpinLocal loops forever over the look-alike; only the goroutine-free,
// fabric-free loop body keeps this out of every analyzer's scope.
func SpinLocal(c localCall) {
	for {
		if c.Call(1) > 0 {
			return
		}
	}
}
