package retrylib

import (
	"context"

	"repro/internal/transport"
)

// FetchForeverQuiet is the suppressed twin of FetchForever: zero findings
// expected.
func FetchForeverQuiet(ctx context.Context, net transport.Network, to int, req transport.Request) transport.Response {
	//lint:ignore retrybound fixture: proves a reasoned suppression silences the finding
	for {
		resp, err := net.Call(ctx, to, req)
		if err == nil {
			return resp
		}
	}
}
