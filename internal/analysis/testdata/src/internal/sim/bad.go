// Package simfix seeds determinism violations. Its directory masquerades as
// internal/sim (see Package.EffectivePath), so it exercises exactly the
// scope rules the real simulation packages are held to.
package simfix

import (
	"fmt"
	"io"
	"math/rand"
	"time"
)

// Stamp reads the wall clock inside the simulation scope.
func Stamp() int64 { return time.Now().UnixNano() }

// Elapsed measures wall time inside the simulation scope.
func Elapsed(t0 time.Time) float64 { return time.Since(t0).Seconds() }

// Draw uses the global math/rand stream instead of a seeded prng.Generator.
func Draw() int { return rand.Int() }

// Keys feeds map iteration order into an ordered accumulation.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Total accumulates floats in map iteration order (non-associative).
func Total(m map[string]float64) float64 {
	var t float64
	for _, v := range m {
		t += v
	}
	return t
}

// Dump writes map entries to a stream in iteration order.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Histo is order-insensitive map work — counting into another map — and
// must NOT be flagged.
func Histo(m map[string]int) map[int]int {
	counts := map[int]int{}
	for _, v := range m {
		counts[v]++
	}
	return counts
}
