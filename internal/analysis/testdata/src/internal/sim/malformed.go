package simfix

import "time"

// BadIgnore carries a reasonless suppression: the ignore itself is a finding
// and does NOT silence the determinism finding below it.
func BadIgnore() int64 {
	//lint:ignore determinism
	return time.Now().UnixNano()
}

// UnknownIgnore names a check that does not exist.
func UnknownIgnore() int64 {
	//lint:ignore nosuchcheck because reasons
	return time.Now().UnixNano()
}
