package simfix

import "time"

// StampQuiet proves a reasoned //lint:ignore silences the check: same
// violation as Stamp, zero findings expected from this file.
func StampQuiet() int64 {
	//lint:ignore determinism fixture: proves a reasoned suppression silences the finding
	return time.Now().UnixNano()
}

// KeysQuiet proves the inline form works too.
func KeysQuiet(m map[string]int) []string {
	var out []string
	for k := range m { //lint:ignore determinism fixture: caller sorts the result before use
		out = append(out, k)
	}
	return out
}
