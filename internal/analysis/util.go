package analysis

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall reports whether call invokes one of the named package-level
// functions of the import path pkgPath (e.g. time.Now), returning the
// matched name. Resolution is type-based, so aliased imports are seen and
// same-named local identifiers are not.
func pkgFuncCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, name := range names {
		if sel.Sel.Name == name {
			return name, true
		}
	}
	return "", false
}

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamedType(t, "context", "Context") }

// isWaitGroup reports whether t is sync.WaitGroup (possibly *sync.WaitGroup).
func isWaitGroup(t types.Type) bool { return isNamedType(t, "sync", "WaitGroup") }

// isChan reports whether t's underlying type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// exprType returns the static type of e, or nil if unresolved.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isAppend reports whether call is the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// exportedFunc reports whether fn is part of the package's exported API: an
// exported name, and (for methods) a receiver whose base type name is also
// exported.
func exportedFunc(fn *ast.FuncDecl) bool {
	if !fn.Name.IsExported() {
		return false
	}
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// funcDeclIndex maps a package's declared function objects to their decls,
// so a `go pkgLevelFunc(...)` statement can be traced into its body.
func funcDeclIndex(p *Package) map[types.Object]*ast.FuncDecl {
	idx := map[types.Object]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj := p.Info.Defs[fn.Name]; obj != nil {
					idx[obj] = fn
				}
			}
		}
	}
	return idx
}

// calleeObject resolves the called function or method object of e, or nil.
func calleeObject(info *types.Info, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			return s.Obj()
		}
		return info.Uses[x.Sel]
	}
	return nil
}
