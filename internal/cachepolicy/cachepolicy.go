// Package cachepolicy computes which samples each worker caches in which
// storage class.
//
// The NoPFS assignment implements paper Sec. 5.1: each worker ranks samples
// by its own access frequency r_k (computed clairvoyantly from the seed) and
// greedily assigns the most frequently accessed samples to its fastest
// storage class, spilling to slower classes until either the whole dataset
// is cached or local capacity is exhausted. Lemma 1 guarantees that samples
// a worker rarely touches are frequently touched — and therefore cached — by
// some other worker, which is what makes the distributed cache effective.
//
// Baseline placements (first-touch caching as used by the LBANN data store
// and DeepIO, static sharding as used by ParallelStaging and LocalityAware,
// and RAM-only preloading) are provided for the simulator's comparisons.
//
// Each placement records the holder's stream position at which the sample
// becomes available, which implements the paper's remote-progress heuristic
// (Sec. 5.2.2): a worker at stream position f assumes a peer has cached a
// sample iff the peer's fill position for it is below f, mirroring "if the
// local prefetching has reached the corresponding access stream location,
// the remote worker likely has, too".
//
// Layout: availability state is packed struct-of-arrays — one 64-bit word
// per (worker, sample) local placement and per best-holder slot — so the
// simulator's per-sample availability queries are single cache-line loads
// instead of gathers across parallel class/worker/position arrays. The
// Lean* builders additionally record local tables for worker 0 only, making
// placement memory O(F) instead of O(N·F) for the simulator's symmetric
// observer at planetary worker counts.
//
// Throughout, 1 MB = 2^20 bytes.
package cachepolicy

import (
	"slices"

	"repro/internal/access"
	"repro/internal/hwspec"
)

// bytesPerMB converts hwspec capacities to bytes.
const bytesPerMB = 1 << 20

// Sizer is the subset of dataset.Dataset the policy needs.
type Sizer interface {
	Len() int
	Size(id int) int64
}

// NotCached marks a sample absent from a worker's local hierarchy.
const NotCached = int8(-1)

// AlwaysAvail marks a placement available from the start of training
// (prestaged data), regardless of the asker's progress.
const AlwaysAvail = int32(-1)

// Packed placement words. A zero word means "not cached"; a placed sample
// packs class+1 into the low byte and the availability position, biased by
// 2 so AlwaysAvail (-1) becomes 1 and position p becomes p+2, into the next
// 32 bits. The bias makes packed position fields order-compatible with
// posBefore: prestaged (1) sorts below every stream position (≥ 2). Holder
// words (best1/best2) additionally carry the worker rank in the top 24 bits.
const (
	packClassBits = 8
	packPosBits   = 32
	packPosShift  = packClassBits
	packWorkShift = packClassBits + packPosBits
)

// packPlace encodes a (class, availability position) pair.
func packPlace(c int8, pos int32) uint64 {
	return uint64(uint8(c+1)) | uint64(uint32(pos+2))<<packPosShift
}

// packHolder encodes a (class, worker, availability position) triple.
func packHolder(c int8, w int32, pos int32) uint64 {
	return packPlace(c, pos) | uint64(uint32(w))<<packWorkShift
}

// unpackClass returns the placement's class, or -1 for the zero word.
func unpackClass(v uint64) int { return int(v&0xff) - 1 }

// unpackPos returns the placement's availability position (AlwaysAvail for
// prestaged entries). Only meaningful for non-zero words.
func unpackPos(v uint64) int32 { return int32(uint32(v>>packPosShift)) - 2 }

// unpackWorker returns a holder word's worker rank.
func unpackWorker(v uint64) int32 { return int32(uint32(v >> packWorkShift)) }

// posField extracts the raw biased position bits; comparing two fields as
// integers is exactly posBefore on the decoded positions.
func posField(v uint64) uint32 { return uint32(v >> packPosShift) }

// Assignment is the materialised placement: for every worker, which class
// (index into hwspec.Node.Classes, 0 = fastest) holds each sample, plus the
// order in which each class should be filled and O(1) lookup of the best
// remote holder together with its availability position.
type Assignment struct {
	N int
	// local[w][k] is the packed placement of sample k on worker w (see
	// packPlace). Lean assignments allocate the row for worker 0 only;
	// untracked rows are nil.
	local [][]uint64
	// FillOrder[w][c] lists the samples assigned to worker w's class c in
	// first-access order — the prefetchers' fill schedule (Rule 1). Nil for
	// untracked workers of lean assignments.
	FillOrder [][][]int32
	// best1/best2 are the packed best-two holder words per sample (see
	// packHolder), so RemoteAvail can exclude the asking worker in O(1).
	best1, best2 []uint64
	// CachedBytes[w] is the total bytes worker w caches.
	CachedBytes []int64
}

// newAssignment allocates an empty assignment for n workers over f samples
// with nClasses storage classes each. Lean assignments track local tables
// for worker 0 only; the best-holder pair still covers every worker.
func newAssignment(n, f, nClasses int, lean bool) *Assignment {
	a := &Assignment{
		N:           n,
		local:       make([][]uint64, n),
		FillOrder:   make([][][]int32, n),
		best1:       make([]uint64, f),
		best2:       make([]uint64, f),
		CachedBytes: make([]int64, n),
	}
	for w := 0; w < n; w++ {
		if lean && w != 0 {
			continue
		}
		a.local[w] = make([]uint64, f)
		a.FillOrder[w] = make([][]int32, nClasses)
	}
	return a
}

// Lean reports whether the assignment records local tables for worker 0
// only (see the Lean* builders).
func (a *Assignment) Lean() bool { return a.N > 1 && a.local[1] == nil }

// posBefore orders availability positions: prestaged (AlwaysAvail) sorts
// before any stream position.
func posBefore(a, b int32) bool {
	if a == AlwaysAvail {
		return b != AlwaysAvail
	}
	if b == AlwaysAvail {
		return false
	}
	return a < b
}

// place records sample k in worker w's class c, available from the holder's
// stream position pos, and maintains the per-sample best-holder pair.
// Holders are ranked by (class speed, availability position): among
// same-class holders the one whose copy exists earliest wins, so the
// remote-availability heuristic consults the peer most likely to already
// have the sample (typically its epoch-0 toucher). For untracked workers of
// lean assignments only the holder pair and byte count are updated.
func (a *Assignment) place(w int, k int32, c int8, size int64, pos int32) {
	if row := a.local[w]; row != nil {
		row[k] = packPlace(c, pos)
		a.FillOrder[w][c] = append(a.FillOrder[w][c], k)
	}
	a.CachedBytes[w] += size
	cand := packHolder(c, int32(w), pos)
	// beats compares (class, position) lexicographically on the packed
	// fields: an empty slot (zero word, class bits 0) always loses.
	beats := func(e uint64) bool {
		ec, cc := e&0xff, cand&0xff
		if ec == 0 {
			return true
		}
		if cc != ec {
			return cc < ec
		}
		return posField(cand) < posField(e)
	}
	switch {
	case beats(a.best1[k]):
		a.best2[k] = a.best1[k]
		a.best1[k] = cand
	case beats(a.best2[k]):
		a.best2[k] = cand
	}
}

// Local returns the class caching sample k on worker w, or -1. Worker w's
// local table must be tracked (always true for non-lean assignments).
func (a *Assignment) Local(w int, k int32) int { return unpackClass(a.local[w][k]) }

// LocalPos returns the stream position at which worker w's copy of sample k
// becomes available (its first access for NoPFS placements, AlwaysAvail for
// prestaged ones). Only meaningful when Local(w, k) >= 0.
func (a *Assignment) LocalPos(w int, k int32) int32 { return unpackPos(a.local[w][k]) }

// LocalAvail returns the class caching sample k on worker w if that copy
// exists by the time the worker reaches stream position pos, else -1.
func (a *Assignment) LocalAvail(w int, k int32, pos int32) int {
	v := a.local[w][k]
	c := unpackClass(v)
	if c < 0 {
		return -1
	}
	if p := unpackPos(v); p != AlwaysAvail && p >= pos {
		return -1
	}
	return c
}

// LocalWords exposes worker w's packed placement row (read-only) for fused
// simulator loops; decode with UnpackLocal.
func (a *Assignment) LocalWords(w int) []uint64 { return a.local[w] }

// HolderWords exposes the packed best-two holder arrays (read-only) for
// fused simulator loops; decode with UnpackHolder.
func (a *Assignment) HolderWords() (best1, best2 []uint64) { return a.best1, a.best2 }

// UnpackLocal decodes one LocalWords entry into (class, availability
// position); class is -1 for samples not cached there.
func UnpackLocal(v uint64) (class int, pos int32) { return unpackClass(v), unpackPos(v) }

// UnpackHolder decodes one HolderWords entry into (class, worker,
// availability position); class is -1 for empty slots.
func UnpackHolder(v uint64) (class int, worker int32, pos int32) {
	return unpackClass(v), unpackWorker(v), unpackPos(v)
}

// AvailClass decodes one LocalWords entry exactly as LocalAvail does: the
// caching class if the copy exists by stream position pos, else -1. Small
// enough to inline into fused simulator kernels.
func AvailClass(v uint64, pos int32) int {
	c := int(v&0xff) - 1
	if c < 0 {
		return -1
	}
	if p := int32(uint32(v>>packPosShift)) - 2; p != AlwaysAvail && p >= pos {
		return -1
	}
	return c
}

// HolderFor decodes one HolderWords entry exactly as RemoteAvail does for a
// single slot: the class if the slot holds a copy on a worker other than
// asker that exists by stream position pos, else -1.
func HolderFor(v uint64, asker, pos int32) int {
	if v == 0 || int32(uint32(v>>packWorkShift)) == asker {
		return -1
	}
	if p := int32(uint32(v>>packPosShift)) - 2; p != AlwaysAvail && p >= pos {
		return -1
	}
	return int(v&0xff) - 1
}

// HolderAny is HolderFor without the progress check — the word-level form of
// RemoteBest for one slot.
func HolderAny(v uint64, asker int32) int {
	if v == 0 || int32(uint32(v>>packWorkShift)) == asker {
		return -1
	}
	return int(v&0xff) - 1
}

// RemoteBest returns the fastest class holding sample k on any worker other
// than w, and that worker's rank; (-1, -1) if no other worker caches k.
func (a *Assignment) RemoteBest(w int, k int32) (class, worker int) {
	if v := a.best1[k]; v != 0 && unpackWorker(v) != int32(w) {
		return unpackClass(v), int(unpackWorker(v))
	}
	if v := a.best2[k]; v != 0 && unpackWorker(v) != int32(w) {
		return unpackClass(v), int(unpackWorker(v))
	}
	return -1, -1
}

// RemoteAvail is RemoteBest restricted to holders estimated to have cached
// the sample by the time the asker is at stream position pos (the paper's
// symmetric-progress heuristic: all workers advance in lockstep, so a
// holder's progress equals the asker's).
func (a *Assignment) RemoteAvail(w int, k int32, pos int32) (class, worker int) {
	if v := a.best1[k]; v != 0 && unpackWorker(v) != int32(w) {
		if p := unpackPos(v); p == AlwaysAvail || p < pos {
			return unpackClass(v), int(unpackWorker(v))
		}
	}
	if v := a.best2[k]; v != 0 && unpackWorker(v) != int32(w) {
		if p := unpackPos(v); p == AlwaysAvail || p < pos {
			return unpackClass(v), int(unpackWorker(v))
		}
	}
	return -1, -1
}

// CachedAnywhere reports whether any worker caches sample k.
func (a *Assignment) CachedAnywhere(k int32) bool { return a.best1[k] != 0 }

// Coverage returns the fraction of dataset bytes cached on at least one
// worker — the "does not access the entire dataset" diagnostic from Fig. 8
// applies when a policy restricts reads to cached samples with coverage < 1.
func (a *Assignment) Coverage(ds Sizer) float64 {
	var cached, total int64
	for k := 0; k < ds.Len(); k++ {
		sz := ds.Size(k)
		total += sz
		if a.best1[k] != 0 {
			cached += sz
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cached) / float64(total)
}

// ApproxBytes approximates the assignment's resident memory: packed local
// rows, holder words, fill orders, and byte counters.
func (a *Assignment) ApproxBytes() int64 {
	var n int64
	for _, row := range a.local {
		n += int64(len(row)) * 8
	}
	n += int64(len(a.best1)+len(a.best2)) * 8
	for _, classes := range a.FillOrder {
		for _, list := range classes {
			n += int64(len(list)) * 4
		}
	}
	n += int64(a.N) * 8
	return n
}

// classCaps extracts per-class byte capacities from a node spec.
func classCaps(node hwspec.Node) []int64 {
	caps := make([]int64, len(node.Classes))
	for i, c := range node.Classes {
		caps[i] = int64(c.CapacityMB * bytesPerMB)
	}
	return caps
}

// BuildNoPFS computes the NoPFS frequency-based assignment for every worker
// of the plan. Samples a worker never accesses are not cached by it: with
// full-dataset randomization every sample has freq ≥ 1 somewhere, so global
// coverage is unaffected, and local capacity is reserved for samples the
// worker will actually consume. The recorded availability position of each
// placement is the holder's first access (the copy exists once the holder
// has pulled the sample for its own consumption).
//
// Peak memory is O(E*F) for the materialised streams plus O(F) scratch,
// independent of N, so plans with many workers stay tractable.
func BuildNoPFS(plan *access.Plan, ds Sizer, node hwspec.Node) *Assignment {
	streams := plan.AllWorkerStreams()
	return BuildNoPFSFromStreams(plan, streams, ds, node)
}

// BuildNoPFSFromStreams is BuildNoPFS for callers that already materialised
// the worker streams (the simulator reuses them).
func BuildNoPFSFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, false, false)
}

// BuildNoPFSLean is BuildNoPFSFromStreams recording local tables for worker
// 0 only — the simulator's symmetric observer. The global best-holder pair
// still reflects every worker's placement, so Source decisions are identical
// to the full build while memory stays O(F) at any N.
func BuildNoPFSLean(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, false, true)
}

// BuildRandomFromStreams is the placement ablation: identical machinery to
// the NoPFS assignment, but candidates fill the hierarchy in arbitrary
// (first-access) order instead of by access frequency. Comparing it against
// BuildNoPFS isolates the contribution of the Sec. 3.1 frequency analysis.
func BuildRandomFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, true, false)
}

// BuildRandomLean is BuildRandomFromStreams tracking worker 0 only.
func BuildRandomLean(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, true, true)
}

func buildFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node, ignoreFreq, lean bool) *Assignment {
	a := newAssignment(plan.N, plan.F, len(node.Classes), lean)
	caps := classCaps(node)

	// Reusable per-worker scratch; reset only the touched entries.
	freq := make([]int32, plan.F)
	firstPos := make([]int32, plan.F)
	for k := range firstPos {
		firstPos[k] = -1
	}

	for w := 0; w < plan.N; w++ {
		stream := streams[w]
		for pos, k := range stream {
			if firstPos[k] < 0 {
				firstPos[k] = int32(pos)
			}
			freq[k]++
		}
		// Candidates: distinct samples this worker accesses, most frequent
		// first; among equals, the one needed soonest.
		cand := make([]int32, 0, len(stream))
		for _, k := range stream {
			if freq[k] > 0 {
				cand = append(cand, k)
				freq[k] = -freq[k] // mark visited, preserve magnitude
			}
		}
		for _, k := range cand {
			freq[k] = -freq[k]
		}
		// Direct int32 comparators (no reflection): candidates are distinct
		// samples, so firstPos breaks every tie and the order is total —
		// identical output to the previous sort.Slice regardless of sort
		// algorithm. Both comparator branches subtract int32 values promoted
		// to int, which cannot overflow.
		if ignoreFreq {
			slices.SortFunc(cand, func(a, b int32) int {
				return int(firstPos[a]) - int(firstPos[b])
			})
		} else {
			slices.SortFunc(cand, func(a, b int32) int {
				if freq[a] != freq[b] {
					return int(freq[b]) - int(freq[a]) // most frequent first
				}
				return int(firstPos[a]) - int(firstPos[b])
			})
		}
		fillGreedy(a, w, cand, ds, caps, firstPos)
		sortFillOrders(a, w, firstPos)
		// Reset scratch for the next worker.
		for _, k := range stream {
			freq[k] = 0
			firstPos[k] = -1
		}
	}
	return a
}

// fillGreedy assigns candidates to worker w's classes fastest-first until
// capacity runs out. A sample too large for the remaining space of one class
// falls through to the next.
func fillGreedy(a *Assignment, w int, cand []int32, ds Sizer, caps []int64, firstPos []int32) {
	remaining := append([]int64(nil), caps...)
	for _, k := range cand {
		sz := ds.Size(int(k))
		for c := range remaining {
			if remaining[c] >= sz {
				remaining[c] -= sz
				a.place(w, k, int8(c), sz, firstPos[k])
				break
			}
		}
	}
}

// sortFillOrders orders each class's fill list by first access so the
// prefetchers load soonest-needed samples first (Rule 1). Untracked workers
// of lean assignments have no fill lists.
func sortFillOrders(a *Assignment, w int, firstPos []int32) {
	for c := range a.FillOrder[w] {
		list := a.FillOrder[w][c]
		slices.SortFunc(list, func(x, y int32) int {
			return int(firstPos[x]) - int(firstPos[y])
		})
	}
}

// BuildFirstTouch computes the first-touch placement used by the LBANN data
// store's dynamic mode and by DeepIO: during epoch 0, the first worker to
// read a sample caches it in RAM (class 0) if it still has room. The
// availability position is the owner's epoch-0 stream position of that first
// touch.
func BuildFirstTouch(plan *access.Plan, ds Sizer, node hwspec.Node) *Assignment {
	return BuildFirstTouchFromOrder(plan, plan.EpochOrder(0), ds, node)
}

// BuildFirstTouchFromOrder is BuildFirstTouch for callers that already
// materialised epoch 0's shuffle (the plan-artifact cache shares it).
func BuildFirstTouchFromOrder(plan *access.Plan, order []access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFirstTouch(plan, order, ds, node, false)
}

// BuildFirstTouchLean is BuildFirstTouchFromOrder tracking worker 0 only.
func BuildFirstTouchLean(plan *access.Plan, order []access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFirstTouch(plan, order, ds, node, true)
}

func buildFirstTouch(plan *access.Plan, order []access.SampleID, ds Sizer, node hwspec.Node, lean bool) *Assignment {
	a := newAssignment(plan.N, plan.F, maxInt(len(node.Classes), 1), lean)
	if len(node.Classes) == 0 {
		return a
	}
	ramCap := int64(node.Classes[0].CapacityMB * bytesPerMB)
	remaining := make([]int64, plan.N)
	for w := range remaining {
		remaining[w] = ramCap
	}
	limit := plan.EpochLimit()
	localPos := make([]int32, plan.N)
	for p := 0; p < limit; p++ {
		w := p % plan.N
		k := order[p]
		if !a.CachedAnywhere(k) {
			sz := ds.Size(int(k))
			if remaining[w] >= sz {
				remaining[w] -= sz
				a.place(w, k, 0, sz, localPos[w])
			}
		}
		localPos[w]++
	}
	return a
}

// BuildShard computes the static round-robin sharding used by the
// ParallelStaging and LocalityAware baselines: sample k lives on worker
// k mod N, packed into classes fastest-first until capacity is exhausted.
// With S > N*D part of the dataset is nowhere cached (coverage < 1).
// Placements are prestaged (AlwaysAvail).
func BuildShard(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	return buildShard(f, n, ds, node, false)
}

// BuildShardLean is BuildShard tracking worker 0 only.
func BuildShardLean(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	return buildShard(f, n, ds, node, true)
}

func buildShard(f, n int, ds Sizer, node hwspec.Node, lean bool) *Assignment {
	a := newAssignment(n, f, len(node.Classes), lean)
	caps := classCaps(node)
	remaining := make([][]int64, n)
	for w := range remaining {
		remaining[w] = append([]int64(nil), caps...)
	}
	for k := int32(0); int(k) < f; k++ {
		w := int(k) % n
		sz := ds.Size(int(k))
		for c := range remaining[w] {
			if remaining[w][c] >= sz {
				remaining[w][c] -= sz
				a.place(w, k, int8(c), sz, AlwaysAvail)
				break
			}
		}
	}
	return a
}

// BuildPreload computes the LBANN-preloading placement: each worker loads
// its shard into RAM (class 0) only; samples that do not fit are not cached.
// Placements are prestaged (AlwaysAvail).
func BuildPreload(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	return buildPreload(f, n, ds, node, false)
}

// BuildPreloadLean is BuildPreload tracking worker 0 only.
func BuildPreloadLean(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	return buildPreload(f, n, ds, node, true)
}

func buildPreload(f, n int, ds Sizer, node hwspec.Node, lean bool) *Assignment {
	a := newAssignment(n, f, maxInt(len(node.Classes), 1), lean)
	if len(node.Classes) == 0 {
		return a
	}
	ramCap := int64(node.Classes[0].CapacityMB * bytesPerMB)
	remaining := make([]int64, n)
	for w := range remaining {
		remaining[w] = ramCap
	}
	for k := int32(0); int(k) < f; k++ {
		w := int(k) % n
		sz := ds.Size(int(k))
		if remaining[w] >= sz {
			remaining[w] -= sz
			a.place(w, k, 0, sz, AlwaysAvail)
		}
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
