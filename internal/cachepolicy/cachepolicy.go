// Package cachepolicy computes which samples each worker caches in which
// storage class.
//
// The NoPFS assignment implements paper Sec. 5.1: each worker ranks samples
// by its own access frequency r_k (computed clairvoyantly from the seed) and
// greedily assigns the most frequently accessed samples to its fastest
// storage class, spilling to slower classes until either the whole dataset
// is cached or local capacity is exhausted. Lemma 1 guarantees that samples
// a worker rarely touches are frequently touched — and therefore cached — by
// some other worker, which is what makes the distributed cache effective.
//
// Baseline placements (first-touch caching as used by the LBANN data store
// and DeepIO, static sharding as used by ParallelStaging and LocalityAware,
// and RAM-only preloading) are provided for the simulator's comparisons.
//
// Each placement records the holder's stream position at which the sample
// becomes available, which implements the paper's remote-progress heuristic
// (Sec. 5.2.2): a worker at stream position f assumes a peer has cached a
// sample iff the peer's fill position for it is below f, mirroring "if the
// local prefetching has reached the corresponding access stream location,
// the remote worker likely has, too".
//
// Throughout, 1 MB = 2^20 bytes.
package cachepolicy

import (
	"slices"

	"repro/internal/access"
	"repro/internal/hwspec"
)

// bytesPerMB converts hwspec capacities to bytes.
const bytesPerMB = 1 << 20

// Sizer is the subset of dataset.Dataset the policy needs.
type Sizer interface {
	Len() int
	Size(id int) int64
}

// NotCached marks a sample absent from a worker's local hierarchy.
const NotCached = int8(-1)

// AlwaysAvail marks a placement available from the start of training
// (prestaged data), regardless of the asker's progress.
const AlwaysAvail = int32(-1)

// Assignment is the materialised placement: for every worker, which class
// (index into hwspec.Node.Classes, 0 = fastest) holds each sample, plus the
// order in which each class should be filled and O(1) lookup of the best
// remote holder together with its availability position.
type Assignment struct {
	N int
	// localClass[w][k] is the class caching sample k on worker w, or
	// NotCached.
	localClass [][]int8
	// localPos[w][k] is the holder-stream position at which the local copy
	// exists (AlwaysAvail for prestaged placements).
	localPos [][]int32
	// FillOrder[w][c] lists the samples assigned to worker w's class c in
	// first-access order — the prefetchers' fill schedule (Rule 1).
	FillOrder [][][]int32
	// Best two holders per sample, so RemoteAvail can exclude the asking
	// worker in O(1).
	best1Class, best2Class   []int8
	best1Worker, best2Worker []int32
	best1Pos, best2Pos       []int32
	// CachedBytes[w] is the total bytes worker w caches.
	CachedBytes []int64
}

// newAssignment allocates an empty assignment for n workers over f samples
// with nClasses storage classes each.
func newAssignment(n, f, nClasses int) *Assignment {
	a := &Assignment{
		N:           n,
		localClass:  make([][]int8, n),
		localPos:    make([][]int32, n),
		FillOrder:   make([][][]int32, n),
		best1Class:  make([]int8, f),
		best2Class:  make([]int8, f),
		best1Worker: make([]int32, f),
		best2Worker: make([]int32, f),
		best1Pos:    make([]int32, f),
		best2Pos:    make([]int32, f),
		CachedBytes: make([]int64, n),
	}
	for w := 0; w < n; w++ {
		lc := make([]int8, f)
		lp := make([]int32, f)
		for k := range lc {
			lc[k] = NotCached
		}
		a.localClass[w] = lc
		a.localPos[w] = lp
		a.FillOrder[w] = make([][]int32, nClasses)
	}
	for k := 0; k < f; k++ {
		a.best1Class[k], a.best2Class[k] = NotCached, NotCached
		a.best1Worker[k], a.best2Worker[k] = -1, -1
	}
	return a
}

// posBefore orders availability positions: prestaged (AlwaysAvail) sorts
// before any stream position.
func posBefore(a, b int32) bool {
	if a == AlwaysAvail {
		return b != AlwaysAvail
	}
	if b == AlwaysAvail {
		return false
	}
	return a < b
}

// place records sample k in worker w's class c, available from the holder's
// stream position pos, and maintains the per-sample best-holder pair.
// Holders are ranked by (class speed, availability position): among
// same-class holders the one whose copy exists earliest wins, so the
// remote-availability heuristic consults the peer most likely to already
// have the sample (typically its epoch-0 toucher).
func (a *Assignment) place(w int, k int32, c int8, size int64, pos int32) {
	a.localClass[w][k] = c
	a.localPos[w][k] = pos
	a.FillOrder[w][c] = append(a.FillOrder[w][c], k)
	a.CachedBytes[w] += size
	beats := func(bc int8, bp int32) bool {
		return bc == NotCached || c < bc || (c == bc && posBefore(pos, bp))
	}
	switch {
	case beats(a.best1Class[k], a.best1Pos[k]):
		a.best2Class[k], a.best2Worker[k], a.best2Pos[k] = a.best1Class[k], a.best1Worker[k], a.best1Pos[k]
		a.best1Class[k], a.best1Worker[k], a.best1Pos[k] = c, int32(w), pos
	case beats(a.best2Class[k], a.best2Pos[k]):
		a.best2Class[k], a.best2Worker[k], a.best2Pos[k] = c, int32(w), pos
	}
}

// Local returns the class caching sample k on worker w, or -1.
func (a *Assignment) Local(w int, k int32) int { return int(a.localClass[w][k]) }

// LocalPos returns the stream position at which worker w's copy of sample k
// becomes available (its first access for NoPFS placements, AlwaysAvail for
// prestaged ones). Only meaningful when Local(w, k) >= 0.
func (a *Assignment) LocalPos(w int, k int32) int32 { return a.localPos[w][k] }

// LocalAvail returns the class caching sample k on worker w if that copy
// exists by the time the worker reaches stream position pos, else -1.
func (a *Assignment) LocalAvail(w int, k int32, pos int32) int {
	c := a.localClass[w][k]
	if c == NotCached {
		return -1
	}
	if p := a.localPos[w][k]; p != AlwaysAvail && p >= pos {
		return -1
	}
	return int(c)
}

// RemoteBest returns the fastest class holding sample k on any worker other
// than w, and that worker's rank; (-1, -1) if no other worker caches k.
func (a *Assignment) RemoteBest(w int, k int32) (class, worker int) {
	if a.best1Class[k] != NotCached && a.best1Worker[k] != int32(w) {
		return int(a.best1Class[k]), int(a.best1Worker[k])
	}
	if a.best2Class[k] != NotCached && a.best2Worker[k] != int32(w) {
		return int(a.best2Class[k]), int(a.best2Worker[k])
	}
	return -1, -1
}

// RemoteAvail is RemoteBest restricted to holders estimated to have cached
// the sample by the time the asker is at stream position pos (the paper's
// symmetric-progress heuristic: all workers advance in lockstep, so a
// holder's progress equals the asker's).
func (a *Assignment) RemoteAvail(w int, k int32, pos int32) (class, worker int) {
	if a.best1Class[k] != NotCached && a.best1Worker[k] != int32(w) &&
		(a.best1Pos[k] == AlwaysAvail || a.best1Pos[k] < pos) {
		return int(a.best1Class[k]), int(a.best1Worker[k])
	}
	if a.best2Class[k] != NotCached && a.best2Worker[k] != int32(w) &&
		(a.best2Pos[k] == AlwaysAvail || a.best2Pos[k] < pos) {
		return int(a.best2Class[k]), int(a.best2Worker[k])
	}
	return -1, -1
}

// CachedAnywhere reports whether any worker caches sample k.
func (a *Assignment) CachedAnywhere(k int32) bool { return a.best1Class[k] != NotCached }

// Coverage returns the fraction of dataset bytes cached on at least one
// worker — the "does not access the entire dataset" diagnostic from Fig. 8
// applies when a policy restricts reads to cached samples with coverage < 1.
func (a *Assignment) Coverage(ds Sizer) float64 {
	var cached, total int64
	for k := 0; k < ds.Len(); k++ {
		sz := ds.Size(k)
		total += sz
		if a.best1Class[int32(k)] != NotCached {
			cached += sz
		}
	}
	if total == 0 {
		return 0
	}
	return float64(cached) / float64(total)
}

// classCaps extracts per-class byte capacities from a node spec.
func classCaps(node hwspec.Node) []int64 {
	caps := make([]int64, len(node.Classes))
	for i, c := range node.Classes {
		caps[i] = int64(c.CapacityMB * bytesPerMB)
	}
	return caps
}

// BuildNoPFS computes the NoPFS frequency-based assignment for every worker
// of the plan. Samples a worker never accesses are not cached by it: with
// full-dataset randomization every sample has freq ≥ 1 somewhere, so global
// coverage is unaffected, and local capacity is reserved for samples the
// worker will actually consume. The recorded availability position of each
// placement is the holder's first access (the copy exists once the holder
// has pulled the sample for its own consumption).
//
// Peak memory is O(E*F) for the materialised streams plus O(F) scratch,
// independent of N, so plans with many workers stay tractable.
func BuildNoPFS(plan *access.Plan, ds Sizer, node hwspec.Node) *Assignment {
	streams := plan.AllWorkerStreams()
	return BuildNoPFSFromStreams(plan, streams, ds, node)
}

// BuildNoPFSFromStreams is BuildNoPFS for callers that already materialised
// the worker streams (the simulator reuses them).
func BuildNoPFSFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, false)
}

// BuildRandomFromStreams is the placement ablation: identical machinery to
// the NoPFS assignment, but candidates fill the hierarchy in arbitrary
// (first-access) order instead of by access frequency. Comparing it against
// BuildNoPFS isolates the contribution of the Sec. 3.1 frequency analysis.
func BuildRandomFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	return buildFromStreams(plan, streams, ds, node, true)
}

func buildFromStreams(plan *access.Plan, streams [][]access.SampleID, ds Sizer, node hwspec.Node, ignoreFreq bool) *Assignment {
	a := newAssignment(plan.N, plan.F, len(node.Classes))
	caps := classCaps(node)

	// Reusable per-worker scratch; reset only the touched entries.
	freq := make([]int32, plan.F)
	firstPos := make([]int32, plan.F)
	for k := range firstPos {
		firstPos[k] = -1
	}

	for w := 0; w < plan.N; w++ {
		stream := streams[w]
		for pos, k := range stream {
			if firstPos[k] < 0 {
				firstPos[k] = int32(pos)
			}
			freq[k]++
		}
		// Candidates: distinct samples this worker accesses, most frequent
		// first; among equals, the one needed soonest.
		cand := make([]int32, 0, len(stream))
		for _, k := range stream {
			if freq[k] > 0 {
				cand = append(cand, k)
				freq[k] = -freq[k] // mark visited, preserve magnitude
			}
		}
		for _, k := range cand {
			freq[k] = -freq[k]
		}
		// Direct int32 comparators (no reflection): candidates are distinct
		// samples, so firstPos breaks every tie and the order is total —
		// identical output to the previous sort.Slice regardless of sort
		// algorithm. Both comparator branches subtract int32 values promoted
		// to int, which cannot overflow.
		if ignoreFreq {
			slices.SortFunc(cand, func(a, b int32) int {
				return int(firstPos[a]) - int(firstPos[b])
			})
		} else {
			slices.SortFunc(cand, func(a, b int32) int {
				if freq[a] != freq[b] {
					return int(freq[b]) - int(freq[a]) // most frequent first
				}
				return int(firstPos[a]) - int(firstPos[b])
			})
		}
		fillGreedy(a, w, cand, ds, caps, firstPos)
		sortFillOrders(a, w, firstPos)
		// Reset scratch for the next worker.
		for _, k := range stream {
			freq[k] = 0
			firstPos[k] = -1
		}
	}
	return a
}

// fillGreedy assigns candidates to worker w's classes fastest-first until
// capacity runs out. A sample too large for the remaining space of one class
// falls through to the next.
func fillGreedy(a *Assignment, w int, cand []int32, ds Sizer, caps []int64, firstPos []int32) {
	remaining := append([]int64(nil), caps...)
	for _, k := range cand {
		sz := ds.Size(int(k))
		for c := range remaining {
			if remaining[c] >= sz {
				remaining[c] -= sz
				a.place(w, k, int8(c), sz, firstPos[k])
				break
			}
		}
	}
}

// sortFillOrders orders each class's fill list by first access so the
// prefetchers load soonest-needed samples first (Rule 1).
func sortFillOrders(a *Assignment, w int, firstPos []int32) {
	for c := range a.FillOrder[w] {
		list := a.FillOrder[w][c]
		slices.SortFunc(list, func(x, y int32) int {
			return int(firstPos[x]) - int(firstPos[y])
		})
	}
}

// BuildFirstTouch computes the first-touch placement used by the LBANN data
// store's dynamic mode and by DeepIO: during epoch 0, the first worker to
// read a sample caches it in RAM (class 0) if it still has room. The
// availability position is the owner's epoch-0 stream position of that first
// touch.
func BuildFirstTouch(plan *access.Plan, ds Sizer, node hwspec.Node) *Assignment {
	return BuildFirstTouchFromOrder(plan, plan.EpochOrder(0), ds, node)
}

// BuildFirstTouchFromOrder is BuildFirstTouch for callers that already
// materialised epoch 0's shuffle (the plan-artifact cache shares it).
func BuildFirstTouchFromOrder(plan *access.Plan, order []access.SampleID, ds Sizer, node hwspec.Node) *Assignment {
	a := newAssignment(plan.N, plan.F, maxInt(len(node.Classes), 1))
	if len(node.Classes) == 0 {
		return a
	}
	ramCap := int64(node.Classes[0].CapacityMB * bytesPerMB)
	remaining := make([]int64, plan.N)
	for w := range remaining {
		remaining[w] = ramCap
	}
	limit := plan.EpochLimit()
	localPos := make([]int32, plan.N)
	for p := 0; p < limit; p++ {
		w := p % plan.N
		k := order[p]
		if !a.CachedAnywhere(k) {
			sz := ds.Size(int(k))
			if remaining[w] >= sz {
				remaining[w] -= sz
				a.place(w, k, 0, sz, localPos[w])
			}
		}
		localPos[w]++
	}
	return a
}

// BuildShard computes the static round-robin sharding used by the
// ParallelStaging and LocalityAware baselines: sample k lives on worker
// k mod N, packed into classes fastest-first until capacity is exhausted.
// With S > N*D part of the dataset is nowhere cached (coverage < 1).
// Placements are prestaged (AlwaysAvail).
func BuildShard(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	a := newAssignment(n, f, len(node.Classes))
	caps := classCaps(node)
	remaining := make([][]int64, n)
	for w := range remaining {
		remaining[w] = append([]int64(nil), caps...)
	}
	for k := int32(0); int(k) < f; k++ {
		w := int(k) % n
		sz := ds.Size(int(k))
		for c := range remaining[w] {
			if remaining[w][c] >= sz {
				remaining[w][c] -= sz
				a.place(w, k, int8(c), sz, AlwaysAvail)
				break
			}
		}
	}
	return a
}

// BuildPreload computes the LBANN-preloading placement: each worker loads
// its shard into RAM (class 0) only; samples that do not fit are not cached.
// Placements are prestaged (AlwaysAvail).
func BuildPreload(f, n int, ds Sizer, node hwspec.Node) *Assignment {
	a := newAssignment(n, f, maxInt(len(node.Classes), 1))
	if len(node.Classes) == 0 {
		return a
	}
	ramCap := int64(node.Classes[0].CapacityMB * bytesPerMB)
	remaining := make([]int64, n)
	for w := range remaining {
		remaining[w] = ramCap
	}
	for k := int32(0); int(k) < f; k++ {
		w := int(k) % n
		sz := ds.Size(int(k))
		if remaining[w] >= sz {
			remaining[w] -= sz
			a.place(w, k, 0, sz, AlwaysAvail)
		}
	}
	return a
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
