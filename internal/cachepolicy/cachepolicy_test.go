package cachepolicy

import (
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
	"repro/internal/hwspec"
)

// fixedSizer is a Sizer with uniform sample sizes.
type fixedSizer struct {
	n    int
	size int64
}

func (f fixedSizer) Len() int       { return f.n }
func (f fixedSizer) Size(int) int64 { return f.size }

// nodeWithMB builds a two-class node (ram, ssd) with given capacities in MB.
func nodeWithMB(ramMB, ssdMB float64) hwspec.Node {
	n := hwspec.Node{
		Staging: hwspec.StorageClass{
			Name: "staging", CapacityMB: 100, Threads: 2,
			Read: hwspec.Flat(10000), Write: hwspec.Flat(10000),
		},
		InterconnectMBps: 10000,
	}
	if ramMB > 0 {
		n.Classes = append(n.Classes, hwspec.StorageClass{
			Name: "ram", CapacityMB: ramMB, Threads: 2,
			Read: hwspec.Flat(8000), Write: hwspec.Flat(8000),
		})
	}
	if ssdMB > 0 {
		n.Classes = append(n.Classes, hwspec.StorageClass{
			Name: "ssd", CapacityMB: ssdMB, Threads: 1,
			Read: hwspec.Flat(500), Write: hwspec.Flat(300),
		})
	}
	return n
}

func testPlan(f, n, e int) *access.Plan {
	return &access.Plan{Seed: 77, F: f, N: n, E: e, BatchPerWorker: 4}
}

func TestBuildNoPFSCachesEverythingWhenItFits(t *testing.T) {
	// 1 MB samples, 256 of them, 4 workers with 512 MB RAM each: every
	// worker can cache every sample it ever touches.
	ds := fixedSizer{n: 256, size: 1 << 20}
	plan := testPlan(256, 4, 4)
	a := BuildNoPFS(plan, ds, nodeWithMB(512, 0))

	freqs := plan.Frequencies()
	for w := 0; w < plan.N; w++ {
		for k := int32(0); k < 256; k++ {
			cached := a.Local(w, k) >= 0
			accessed := freqs[w][k] > 0
			if accessed && !cached {
				t.Fatalf("worker %d accesses sample %d (freq %d) but did not cache it", w, k, freqs[w][k])
			}
			if !accessed && cached {
				t.Fatalf("worker %d cached never-accessed sample %d", w, k)
			}
		}
	}
	if cov := a.Coverage(ds); cov != 1 {
		t.Errorf("coverage = %v, want 1 (every sample accessed by someone)", cov)
	}
}

func TestBuildNoPFSRespectsCapacity(t *testing.T) {
	ds := fixedSizer{n: 100, size: 1 << 20} // 100 MB total
	plan := testPlan(100, 2, 4)
	// 10 MB RAM + 20 MB SSD per worker: at most 30 samples cached each.
	a := BuildNoPFS(plan, ds, nodeWithMB(10, 20))
	for w := 0; w < 2; w++ {
		var ram, ssd int
		for k := int32(0); k < 100; k++ {
			switch a.Local(w, k) {
			case 0:
				ram++
			case 1:
				ssd++
			}
		}
		if ram > 10 {
			t.Errorf("worker %d cached %d samples in 10 MB RAM", w, ram)
		}
		if ssd > 20 {
			t.Errorf("worker %d cached %d samples in 20 MB SSD", w, ssd)
		}
		if a.CachedBytes[w] > 30<<20 {
			t.Errorf("worker %d cached %d bytes, capacity 30 MB", w, a.CachedBytes[w])
		}
	}
}

func TestBuildNoPFSFrequencyOrdering(t *testing.T) {
	// The minimum frequency among RAM-cached samples must be >= the
	// maximum among SSD-cached, which must be >= the max among uncached
	// (for samples the worker accesses at all): the greedy fill is by
	// frequency rank.
	ds := fixedSizer{n: 400, size: 1 << 20}
	plan := testPlan(400, 2, 8)
	a := BuildNoPFS(plan, ds, nodeWithMB(40, 60))
	freqs := plan.Frequencies()
	for w := 0; w < 2; w++ {
		minRAM, maxSSD, maxNone := int32(1<<30), int32(-1), int32(-1)
		for k := int32(0); k < 400; k++ {
			f := freqs[w][k]
			switch a.Local(w, k) {
			case 0:
				if f < minRAM {
					minRAM = f
				}
			case 1:
				if f > maxSSD {
					maxSSD = f
				}
			default:
				if f > maxNone {
					maxNone = f
				}
			}
		}
		if maxSSD > minRAM {
			t.Errorf("worker %d: SSD has freq %d > RAM min %d", w, maxSSD, minRAM)
		}
		if maxNone > maxSSD && maxSSD >= 0 {
			t.Errorf("worker %d: uncached freq %d > SSD max %d", w, maxNone, maxSSD)
		}
	}
}

func TestFillOrderIsFirstAccessOrder(t *testing.T) {
	ds := fixedSizer{n: 128, size: 1 << 20}
	plan := testPlan(128, 2, 3)
	a := BuildNoPFS(plan, ds, nodeWithMB(1000, 0))
	for w := 0; w < 2; w++ {
		first := access.FirstAccessPositions(plan.WorkerStream(w))
		for c, list := range a.FillOrder[w] {
			for i := 1; i < len(list); i++ {
				if first[list[i-1]] >= first[list[i]] {
					t.Fatalf("worker %d class %d fill order not by first access at %d", w, c, i)
				}
			}
		}
	}
}

func TestRemoteBestExcludesSelf(t *testing.T) {
	ds := fixedSizer{n: 64, size: 1 << 20}
	plan := testPlan(64, 4, 6)
	a := BuildNoPFS(plan, ds, nodeWithMB(1000, 0))
	for w := 0; w < 4; w++ {
		for k := int32(0); k < 64; k++ {
			class, holder := a.RemoteBest(w, k)
			if class >= 0 && holder == w {
				t.Fatalf("RemoteBest(%d, %d) returned the asking worker", w, k)
			}
			if class >= 0 && a.Local(holder, k) != class {
				t.Fatalf("RemoteBest points to worker %d class %d but placement says %d",
					holder, class, a.Local(holder, k))
			}
		}
	}
}

func TestRemoteBestFindsSecondHolder(t *testing.T) {
	// With every worker caching everything, RemoteBest must always find
	// someone else for samples cached by >= 2 workers.
	ds := fixedSizer{n: 32, size: 1 << 20}
	plan := testPlan(32, 4, 8)
	a := BuildNoPFS(plan, ds, nodeWithMB(1000, 0))
	for k := int32(0); k < 32; k++ {
		holders := 0
		for w := 0; w < 4; w++ {
			if a.Local(w, k) >= 0 {
				holders++
			}
		}
		if holders < 2 {
			continue
		}
		for w := 0; w < 4; w++ {
			if class, _ := a.RemoteBest(w, k); class < 0 {
				t.Fatalf("sample %d has %d holders but RemoteBest(%d) found none", k, holders, w)
			}
		}
	}
}

func TestLargeSampleFallsThroughToNextClass(t *testing.T) {
	// Samples of 3 MB with a 2 MB RAM class: everything must land on SSD.
	ds := fixedSizer{n: 10, size: 3 << 20}
	plan := testPlan(10, 2, 2)
	a := BuildNoPFS(plan, ds, nodeWithMB(2, 100))
	for w := 0; w < 2; w++ {
		for k := int32(0); k < 10; k++ {
			if a.Local(w, k) == 0 {
				t.Fatalf("3 MB sample %d placed in 2 MB RAM", k)
			}
		}
	}
}

func TestBuildShard(t *testing.T) {
	ds := fixedSizer{n: 100, size: 1 << 20}
	a := BuildShard(100, 4, ds, nodeWithMB(1000, 0))
	for k := int32(0); k < 100; k++ {
		owner := int(k) % 4
		if a.Local(owner, k) != 0 {
			t.Fatalf("sample %d not on its shard owner %d", k, owner)
		}
		for w := 0; w < 4; w++ {
			if w != owner && a.Local(w, k) >= 0 {
				t.Fatalf("sample %d duplicated on worker %d", k, w)
			}
		}
	}
	if cov := a.Coverage(ds); cov != 1 {
		t.Errorf("shard coverage = %v, want 1", cov)
	}
}

func TestBuildShardCoverageCapped(t *testing.T) {
	// 100 x 1 MB samples, 4 workers x 10 MB: at most 40 MB cached.
	ds := fixedSizer{n: 100, size: 1 << 20}
	a := BuildShard(100, 4, ds, nodeWithMB(10, 0))
	cov := a.Coverage(ds)
	if cov > 0.41 || cov < 0.39 {
		t.Errorf("capped shard coverage = %v, want ~0.40", cov)
	}
}

func TestBuildPreloadRAMOnly(t *testing.T) {
	ds := fixedSizer{n: 40, size: 1 << 20}
	a := BuildPreload(40, 4, ds, nodeWithMB(5, 100))
	for k := int32(0); k < 40; k++ {
		for w := 0; w < 4; w++ {
			if c := a.Local(w, k); c > 0 {
				t.Fatalf("preload placed sample %d in class %d (only RAM allowed)", k, c)
			}
		}
	}
	// 4 workers x 5 MB RAM = 20 of 40 MB.
	if cov := a.Coverage(ds); cov > 0.51 || cov < 0.49 {
		t.Errorf("preload coverage = %v, want ~0.5", cov)
	}
}

func TestCoverageEmptyAssignment(t *testing.T) {
	ds := fixedSizer{n: 10, size: 1}
	a := newAssignment(2, 10, 1, false)
	if cov := a.Coverage(ds); cov != 0 {
		t.Errorf("empty assignment coverage = %v", cov)
	}
}

func TestBuildNoPFSWithRealDataset(t *testing.T) {
	// Variable sizes: the greedy fill must respect byte capacities, not
	// sample counts.
	d := dataset.MustNew(dataset.Spec{
		Name: "var", F: 300, MeanSize: 1 << 20, StddevSize: 512 << 10, Classes: 3, Seed: 5,
	})
	plan := testPlan(300, 4, 3)
	node := nodeWithMB(30, 50)
	a := BuildNoPFS(plan, d, node)
	for w := 0; w < 4; w++ {
		var ramBytes, ssdBytes int64
		for k := int32(0); k < 300; k++ {
			switch a.Local(w, k) {
			case 0:
				ramBytes += d.Size(int(k))
			case 1:
				ssdBytes += d.Size(int(k))
			}
		}
		if ramBytes > 30<<20 {
			t.Errorf("worker %d RAM bytes %d exceed 30 MB", w, ramBytes)
		}
		if ssdBytes > 50<<20 {
			t.Errorf("worker %d SSD bytes %d exceed 50 MB", w, ssdBytes)
		}
	}
}

func BenchmarkBuildNoPFS(b *testing.B) {
	ds := fixedSizer{n: 100000, size: 112 << 10}
	plan := &access.Plan{Seed: 1, F: 100000, N: 8, E: 10, BatchPerWorker: 16}
	node := nodeWithMB(4000, 4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildNoPFS(plan, ds, node)
	}
}
