package cachepolicy

import (
	"fmt"
	"testing"
)

// TestLeanMatchesFullBuilders: every Lean builder must produce exactly the
// tracked subset of its full counterpart — identical worker-0 local words
// and fill orders, identical global best-holder pairs, identical per-worker
// cached-byte totals — across every builder family. The simulator observes
// worker 0 through these views, so this equality is what makes lean
// assignments a pure memory optimisation.
func TestLeanMatchesFullBuilders(t *testing.T) {
	ds := fixedSizer{n: 300, size: 1 << 20}
	node := nodeWithMB(30, 50)
	plan := testPlan(300, 4, 6)
	streams := plan.AllWorkerStreams()
	order := plan.EpochOrder(0)

	pairs := []struct {
		name       string
		full, lean *Assignment
	}{
		{"nopfs", BuildNoPFSFromStreams(plan, streams, ds, node), BuildNoPFSLean(plan, streams, ds, node)},
		{"random", BuildRandomFromStreams(plan, streams, ds, node), BuildRandomLean(plan, streams, ds, node)},
		{"firsttouch", BuildFirstTouchFromOrder(plan, order, ds, node), BuildFirstTouchLean(plan, order, ds, node)},
		{"shard", BuildShard(300, 4, ds, node), BuildShardLean(300, 4, ds, node)},
		{"preload", BuildPreload(300, 4, ds, node), BuildPreloadLean(300, 4, ds, node)},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			if p.lean.Lean() == p.full.Lean() {
				t.Fatalf("Lean() = %v for both builds", p.full.Lean())
			}
			fullLocal, leanLocal := p.full.LocalWords(0), p.lean.LocalWords(0)
			if err := equalWords("local[0]", fullLocal, leanLocal); err != nil {
				t.Error(err)
			}
			fb1, fb2 := p.full.HolderWords()
			lb1, lb2 := p.lean.HolderWords()
			if err := equalWords("best1", fb1, lb1); err != nil {
				t.Error(err)
			}
			if err := equalWords("best2", fb2, lb2); err != nil {
				t.Error(err)
			}
			for c := range p.full.FillOrder[0] {
				ff, lf := p.full.FillOrder[0][c], p.lean.FillOrder[0][c]
				if len(ff) != len(lf) {
					t.Fatalf("FillOrder[0][%d]: full %d entries, lean %d", c, len(ff), len(lf))
				}
				for i := range ff {
					if ff[i] != lf[i] {
						t.Fatalf("FillOrder[0][%d][%d]: full %d, lean %d", c, i, ff[i], lf[i])
					}
				}
			}
			for w := range p.full.CachedBytes {
				if p.full.CachedBytes[w] != p.lean.CachedBytes[w] {
					t.Errorf("CachedBytes[%d]: full %d, lean %d", w, p.full.CachedBytes[w], p.lean.CachedBytes[w])
				}
			}
			// Untracked rows really are untracked: that is the memory saving.
			for w := 1; w < p.lean.N; w++ {
				if p.lean.local[w] != nil {
					t.Errorf("lean build tracks worker %d's local row", w)
				}
			}
			if p.lean.ApproxBytes() >= p.full.ApproxBytes() {
				t.Errorf("lean build not smaller: %d vs %d bytes", p.lean.ApproxBytes(), p.full.ApproxBytes())
			}
		})
	}
}

// equalWords compares two packed word slices.
func equalWords(label string, a, b []uint64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s[%d]: %#x vs %#x", label, i, a[i], b[i])
		}
	}
	return nil
}
