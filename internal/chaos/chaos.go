// Package chaos defines deterministic fault and degradation scenarios for
// the NoPFS reproduction: straggler workers, mid-run storage-tier
// degradation, node crashes with clairvoyant-plan redistribution, and fabric
// latency/jitter/transient-failure injection.
//
// The paper's evaluation runs on healthy clusters; NoPFS's value proposition
// is strongest exactly when the hardware misbehaves. A Profile describes a
// fault scenario declaratively and hardware-independently; Compile derives a
// Schedule from a cell seed, and every query on the Schedule is a stateless
// pure function of (seed, query arguments). That statelessness is what makes
// chaos-injected sweeps bit-identical at any engine pool width: no draw
// depends on execution order.
//
// Both execution engines honour the same Profile so sim-vs-live comparisons
// stay meaningful:
//
//   - the simulator (internal/sim) slows the simulated worker's prefetch
//     threads, rescales tier bandwidths, redistributes a crashed node's plan
//     across the survivors, and charges fabric latency/fallbacks;
//   - the live middleware (package nopfs) wraps the fabric in a
//     fault-injecting decorator, throttles degraded tiers with
//     storage.Limiter clocks, paces straggler ranks, and enacts node
//     crashes: the crashed rank delivers its pre-crash prefix and closes
//     its fabric endpoint, while the survivors absorb its orphaned plan
//     rounds through the same RedistributeStream rule the simulator uses —
//     so sim-vs-live stall under one profile converges.
//
// The empty Profile compiles to a nil Schedule and both engines skip every
// chaos hook, so fault-free runs are byte-identical to a build without this
// package.
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PFSTier is the TierDegradation.Class value selecting the shared parallel
// filesystem instead of a node-local storage class.
const PFSTier = -1

// DefaultLiveTierMBps is the bandwidth the live path assumes for a degraded
// tier whose class has no configured rate (unlimited classes still need a
// finite base to divide by the degradation factor).
const DefaultLiveTierMBps = 1024.0

// Straggler marks one worker as slow: every fetch it performs takes Factor
// times as long from FromEpoch onwards. In the simulator a straggler peer
// also paces the per-iteration allreduce barrier (training advances at the
// slowest worker's rate); the live path slows the straggler rank's own
// prefetch pipeline.
type Straggler struct {
	// Worker is the straggler's rank; engines map it modulo the actual
	// worker count so one profile applies to any cluster size.
	Worker int
	// Factor is the slowdown multiplier (>= 1; 2 = half speed).
	Factor float64
	// FromEpoch is the first epoch the slowdown applies to (0 = from start).
	FromEpoch int
}

// TierDegradation rescales one storage tier's bandwidth: reads from the
// class take Factor times as long from FromEpoch onwards. Class PFSTier
// degrades the shared filesystem itself.
type TierDegradation struct {
	// Class indexes the node's storage classes (0 = fastest), or PFSTier.
	Class int
	// Factor divides the tier's bandwidth (>= 1; 4 = quarter bandwidth).
	Factor float64
	// FromEpoch is the first epoch the degradation applies to.
	FromEpoch int
}

// Crash removes one worker at the start of an epoch. Its clairvoyant plan —
// the stream positions it would have consumed — is redistributed round-robin
// across the survivors, and remote fetches that would have been served from
// its caches fall back to the PFS. Simulator-only (see the package comment).
type Crash struct {
	// Worker is the crashing rank; mapped modulo the worker count, and
	// never onto rank 0 (the simulator's surviving observer).
	Worker int
	// AtEpoch is the epoch at whose start the worker disappears (>= 1, so
	// at least one healthy epoch establishes the plan).
	AtEpoch int
}

// FabricFault injects interconnect misbehaviour into every remote sample
// fetch: a fixed latency, seed-derived uniform jitter on top, and a
// transient failure rate. A failed fetch is not fatal — the caller times out
// against the peer and falls back to the PFS, exactly the miss path the
// remote-progress heuristic already handles.
type FabricFault struct {
	// LatencySeconds is added to every remote call.
	LatencySeconds float64
	// JitterSeconds is the width of the uniform extra delay in [0, Jitter).
	JitterSeconds float64
	// FailRate is the probability in [0, 1) that a remote fetch fails
	// transiently and falls back to the PFS.
	FailRate float64
}

// zero reports whether the fault injects nothing.
func (f FabricFault) zero() bool {
	return f.LatencySeconds == 0 && f.JitterSeconds == 0 && f.FailRate == 0
}

// Profile is one declarative fault scenario: the third axis of the
// (scenario × policy × fault-profile × seed) experiment grids. The zero
// value is the empty profile — no faults, byte-identical behaviour.
type Profile struct {
	// Name labels the profile in reports and grid columns; empty means the
	// canonical Spec string is used.
	Name string

	Stragglers []Straggler
	Tiers      []TierDegradation
	Crashes    []Crash
	Fabric     FabricFault
}

// Empty reports whether the profile injects no faults at all.
func (p Profile) Empty() bool {
	return len(p.Stragglers) == 0 && len(p.Tiers) == 0 && len(p.Crashes) == 0 && p.Fabric.zero()
}

// Validate reports whether the profile is well-formed.
func (p Profile) Validate() error {
	for _, s := range p.Stragglers {
		switch {
		case s.Worker < 0:
			return fmt.Errorf("chaos: straggler worker %d negative", s.Worker)
		case s.Factor < 1:
			return fmt.Errorf("chaos: straggler factor %g < 1", s.Factor)
		case s.FromEpoch < 0:
			return fmt.Errorf("chaos: straggler from-epoch %d negative", s.FromEpoch)
		}
	}
	for _, t := range p.Tiers {
		switch {
		case t.Class < PFSTier:
			return fmt.Errorf("chaos: tier class %d invalid", t.Class)
		case t.Factor < 1:
			return fmt.Errorf("chaos: tier factor %g < 1", t.Factor)
		case t.FromEpoch < 0:
			return fmt.Errorf("chaos: tier from-epoch %d negative", t.FromEpoch)
		}
	}
	for _, c := range p.Crashes {
		switch {
		case c.Worker < 0:
			return fmt.Errorf("chaos: crash worker %d negative", c.Worker)
		case c.AtEpoch < 1:
			return fmt.Errorf("chaos: crash at epoch %d (need >= 1: the plan needs one healthy epoch)", c.AtEpoch)
		}
	}
	f := p.Fabric
	switch {
	case f.LatencySeconds < 0 || f.JitterSeconds < 0:
		return fmt.Errorf("chaos: negative fabric latency/jitter")
	case f.FailRate < 0 || f.FailRate >= 1:
		return fmt.Errorf("chaos: fabric fail rate %g outside [0, 1)", f.FailRate)
	}
	return nil
}

// Structural reports whether the profile changes the access schedule itself
// (node crashes redistribute streams). Non-structural faults only stretch
// durations, which is what makes the fault-removal monotonicity law hold:
// removing a non-structural fault never slows a run.
func (p Profile) Structural() bool { return len(p.Crashes) > 0 }

// Label returns the profile's report label: Name when set, else the
// canonical Spec string.
func (p Profile) Label() string {
	if p.Name != "" {
		return p.Name
	}
	if p.Empty() {
		return "none"
	}
	return p.Spec()
}

// Spec renders the profile in the -chaos flag grammar (see ParseProfile);
// ParseProfile(p.Spec()) reproduces the profile.
func (p Profile) Spec() string {
	var parts []string
	for _, s := range p.Stragglers {
		d := fmt.Sprintf("straggler:%dx%s", s.Worker, trimFloat(s.Factor))
		if s.FromEpoch > 0 {
			d += "@" + strconv.Itoa(s.FromEpoch)
		}
		parts = append(parts, d)
	}
	for _, t := range p.Tiers {
		class := strconv.Itoa(t.Class)
		if t.Class == PFSTier {
			class = "pfs"
		}
		d := fmt.Sprintf("tier:%sx%s", class, trimFloat(t.Factor))
		if t.FromEpoch > 0 {
			d += "@" + strconv.Itoa(t.FromEpoch)
		}
		parts = append(parts, d)
	}
	for _, c := range p.Crashes {
		parts = append(parts, fmt.Sprintf("crash:%d@%d", c.Worker, c.AtEpoch))
	}
	if f := p.Fabric; !f.zero() {
		if f.LatencySeconds > 0 {
			parts = append(parts, "lat:"+secondsToSpec(f.LatencySeconds))
		}
		if f.JitterSeconds > 0 {
			parts = append(parts, "jitter:"+secondsToSpec(f.JitterSeconds))
		}
		if f.FailRate > 0 {
			parts = append(parts, "drop:"+trimFloat(f.FailRate))
		}
	}
	return strings.Join(parts, ",")
}

// trimFloat formats a factor/rate without trailing zeros.
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// secondsToSpec renders a duration in the spec grammar.
func secondsToSpec(s float64) string {
	return time.Duration(s * float64(time.Second)).String()
}

// ParseProfile parses the -chaos flag grammar: either a preset name
// (see Presets) or a comma-separated list of directives:
//
//	straggler:<worker>x<factor>[@<epoch>]   worker runs <factor>x slower
//	tier:<class|pfs>x<factor>[@<epoch>]     tier bandwidth divided by <factor>
//	crash:<worker>@<epoch>                  worker crashes at epoch start
//	lat:<duration>                          remote-call latency (e.g. 5ms)
//	jitter:<duration>                       uniform extra remote-call delay
//	drop:<rate>                             transient remote-fetch failure rate
//
// Example: "straggler:1x2@1,tier:0x4@2,lat:2ms,drop:0.05".
func ParseProfile(spec string) (Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return Profile{}, nil
	}
	if p, err := PresetByName(spec); err == nil {
		return p, nil
	}
	var p Profile
	for _, raw := range strings.Split(spec, ",") {
		d := strings.TrimSpace(raw)
		if d == "" {
			continue
		}
		kind, rest, ok := strings.Cut(d, ":")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: directive %q is not <kind>:<args> and %q is not a preset (presets: %s)",
				d, spec, strings.Join(PresetNames(), ", "))
		}
		var err error
		switch kind {
		case "straggler":
			var s Straggler
			s.Worker, s.Factor, s.FromEpoch, err = parseWorkerFactor(rest)
			p.Stragglers = append(p.Stragglers, s)
		case "tier":
			var t TierDegradation
			t.Class, t.Factor, t.FromEpoch, err = parseTier(rest)
			p.Tiers = append(p.Tiers, t)
		case "crash":
			var c Crash
			c.Worker, c.AtEpoch, err = parseCrash(rest)
			p.Crashes = append(p.Crashes, c)
		case "lat":
			p.Fabric.LatencySeconds, err = parseDurationSeconds(rest)
		case "jitter":
			p.Fabric.JitterSeconds, err = parseDurationSeconds(rest)
		case "drop":
			p.Fabric.FailRate, err = strconv.ParseFloat(rest, 64)
		default:
			return Profile{}, fmt.Errorf("chaos: unknown directive kind %q in %q", kind, d)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: directive %q: %w", d, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// parseWorkerFactor parses "<worker>x<factor>[@<epoch>]".
func parseWorkerFactor(s string) (worker int, factor float64, from int, err error) {
	s, from, err = splitEpoch(s)
	if err != nil {
		return 0, 0, 0, err
	}
	w, f, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want <worker>x<factor>")
	}
	worker, err = strconv.Atoi(w)
	if err != nil {
		return 0, 0, 0, err
	}
	factor, err = strconv.ParseFloat(f, 64)
	return worker, factor, from, err
}

// parseTier parses "<class|pfs>x<factor>[@<epoch>]".
func parseTier(s string) (class int, factor float64, from int, err error) {
	s, from, err = splitEpoch(s)
	if err != nil {
		return 0, 0, 0, err
	}
	c, f, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, 0, fmt.Errorf("want <class|pfs>x<factor>")
	}
	if c == "pfs" {
		class = PFSTier
	} else if class, err = strconv.Atoi(c); err != nil {
		return 0, 0, 0, err
	}
	factor, err = strconv.ParseFloat(f, 64)
	return class, factor, from, err
}

// parseCrash parses "<worker>@<epoch>".
func parseCrash(s string) (worker, at int, err error) {
	w, e, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want <worker>@<epoch>")
	}
	if worker, err = strconv.Atoi(w); err != nil {
		return 0, 0, err
	}
	at, err = strconv.Atoi(e)
	return worker, at, err
}

// splitEpoch strips an optional "@<epoch>" suffix.
func splitEpoch(s string) (rest string, epoch int, err error) {
	head, tail, ok := strings.Cut(s, "@")
	if !ok {
		return s, 0, nil
	}
	epoch, err = strconv.Atoi(tail)
	return head, epoch, err
}

// parseDurationSeconds parses a time.Duration spec into seconds.
func parseDurationSeconds(s string) (float64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %s", d)
	}
	return d.Seconds(), nil
}

// Presets returns the named fault scenarios shipped with the repo, the
// quick vocabulary for -chaos flags and smoke tests.
func Presets() []Profile {
	return []Profile{
		{
			Name:       "straggler",
			Stragglers: []Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
		},
		{
			Name:  "degraded-tier",
			Tiers: []TierDegradation{{Class: 0, Factor: 4, FromEpoch: 1}},
		},
		{
			Name:  "slow-pfs",
			Tiers: []TierDegradation{{Class: PFSTier, Factor: 3, FromEpoch: 1}},
		},
		{
			Name:   "flaky-fabric",
			Fabric: FabricFault{LatencySeconds: 0.002, JitterSeconds: 0.003, FailRate: 0.02},
		},
		{
			Name:    "node-crash",
			Crashes: []Crash{{Worker: 1, AtEpoch: 1}},
		},
		{
			Name:       "meltdown",
			Stragglers: []Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
			Tiers:      []TierDegradation{{Class: 0, Factor: 4, FromEpoch: 2}, {Class: PFSTier, Factor: 2, FromEpoch: 1}},
			Crashes:    []Crash{{Worker: 2, AtEpoch: 2}},
			Fabric:     FabricFault{LatencySeconds: 0.001, JitterSeconds: 0.002, FailRate: 0.01},
		},
	}
}

// PresetNames returns the preset names, sorted.
func PresetNames() []string {
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// PresetByName resolves one preset profile.
func PresetByName(name string) (Profile, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("chaos: unknown preset %q (have: %s)", name, strings.Join(PresetNames(), ", "))
}
