package chaos

import (
	"strings"
	"testing"
)

func TestEmptyProfile(t *testing.T) {
	var p Profile
	if !p.Empty() {
		t.Error("zero profile not Empty")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("zero profile invalid: %v", err)
	}
	if p.Compile(42) != nil {
		t.Error("empty profile compiled to a non-nil schedule")
	}
	if p.Label() != "none" {
		t.Errorf("empty label = %q", p.Label())
	}
}

func TestNilScheduleIsNeutral(t *testing.T) {
	var s *Schedule
	if f := s.Slowdown(1, 2, 4); f != 1 {
		t.Errorf("nil Slowdown = %g", f)
	}
	if f := s.BarrierFactor(0, 4); f != 1 {
		t.Errorf("nil BarrierFactor = %g", f)
	}
	if f := s.TierFactor(0, 3); f != 1 {
		t.Errorf("nil TierFactor = %g", f)
	}
	if s.CrashedAt(1, 5, 4) || s.HasCrashes(4) || len(s.CrashedWorkers(5, 4)) != 0 {
		t.Error("nil schedule reports crashes")
	}
	if d, fail := s.FabricCall(0, 7); d != 0 || fail {
		t.Error("nil FabricCall injects faults")
	}
	if len(s.DegradedClasses()) != 0 || s.MaxTierFactor(0) != 1 {
		t.Error("nil schedule degrades tiers")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{Stragglers: []Straggler{{Worker: 1, Factor: 0.5}}},
		{Stragglers: []Straggler{{Worker: -1, Factor: 2}}},
		{Tiers: []TierDegradation{{Class: -2, Factor: 2}}},
		{Tiers: []TierDegradation{{Class: 0, Factor: 0}}},
		{Crashes: []Crash{{Worker: 1, AtEpoch: 0}}},
		{Fabric: FabricFault{FailRate: 1}},
		{Fabric: FabricFault{LatencySeconds: -1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
	}
}

func TestScheduleQueries(t *testing.T) {
	p := Profile{
		Stragglers: []Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
		Tiers: []TierDegradation{
			{Class: 0, Factor: 4, FromEpoch: 2},
			{Class: PFSTier, Factor: 3, FromEpoch: 0},
		},
		Crashes: []Crash{{Worker: 2, AtEpoch: 2}},
	}
	s := p.Compile(7)
	const n = 4

	if f := s.Slowdown(1, 0, n); f != 1 {
		t.Errorf("straggler active before FromEpoch: %g", f)
	}
	if f := s.Slowdown(1, 1, n); f != 2 {
		t.Errorf("straggler factor = %g, want 2", f)
	}
	if f := s.Slowdown(0, 1, n); f != 1 {
		t.Errorf("non-straggler slowed: %g", f)
	}
	if f := s.BarrierFactor(1, n); f != 2 {
		t.Errorf("barrier = %g, want 2 (worker 1 straggles)", f)
	}
	if f := s.TierFactor(0, 1); f != 1 {
		t.Errorf("tier degraded before FromEpoch: %g", f)
	}
	if f := s.TierFactor(0, 2); f != 4 {
		t.Errorf("tier factor = %g, want 4", f)
	}
	if f := s.TierFactor(PFSTier, 0); f != 3 {
		t.Errorf("pfs factor = %g, want 3", f)
	}
	if f := s.MaxTierFactor(0); f != 4 {
		t.Errorf("max tier factor = %g", f)
	}
	if got := s.DegradedClasses(); len(got) != 1 || got[0] != 0 {
		t.Errorf("degraded classes = %v", got)
	}
	if s.CrashedAt(2, 1, n) {
		t.Error("crash before AtEpoch")
	}
	if !s.CrashedAt(2, 2, n) || !s.CrashedAt(2, 3, n) {
		t.Error("crash not permanent from AtEpoch")
	}
	if got := s.CrashedWorkers(2, n); len(got) != 1 || got[0] != 2 {
		t.Errorf("crashed workers = %v", got)
	}
	if !s.HasCrashes(n) {
		t.Error("HasCrashes false")
	}
	// A crashed straggler no longer paces the barrier.
	s2 := Profile{
		Stragglers: []Straggler{{Worker: 2, Factor: 3, FromEpoch: 0}},
		Crashes:    []Crash{{Worker: 2, AtEpoch: 1}},
	}.Compile(7)
	if f := s2.BarrierFactor(0, n); f != 3 {
		t.Errorf("pre-crash barrier = %g, want 3", f)
	}
	if f := s2.BarrierFactor(1, n); f != 1 {
		t.Errorf("post-crash barrier = %g, want 1", f)
	}
}

func TestCrashNeverLandsOnRankZero(t *testing.T) {
	s := Profile{Crashes: []Crash{{Worker: 4, AtEpoch: 1}}}.Compile(1)
	// Worker 4 maps to rank 0 on a 4-rank cluster; the crash must be
	// remapped to rank 1 (rank 0 is the simulator's surviving observer).
	if s.CrashedAt(0, 1, 4) {
		t.Error("crash landed on rank 0")
	}
	if !s.CrashedAt(1, 1, 4) {
		t.Error("crash not remapped to rank 1")
	}
	// Single-worker clusters cannot crash.
	if s.HasCrashes(1) || s.CrashedAt(0, 9, 1) {
		t.Error("single-worker cluster crashed")
	}
}

func TestFabricCallDeterministicAndRateBounded(t *testing.T) {
	p := Profile{Fabric: FabricFault{LatencySeconds: 0.001, JitterSeconds: 0.002, FailRate: 0.2}}
	s := p.Compile(99)
	fails := 0
	const calls = 4000
	for i := uint64(0); i < calls; i++ {
		d1, f1 := s.FabricCall(3, i)
		d2, f2 := s.FabricCall(3, i)
		if d1 != d2 || f1 != f2 {
			t.Fatalf("FabricCall not stateless at call %d", i)
		}
		if d1 < 0.001 || d1 > 0.003 {
			t.Fatalf("delay %g outside [latency, latency+jitter]", d1)
		}
		if f1 {
			fails++
		}
	}
	rate := float64(fails) / calls
	if rate < 0.15 || rate > 0.25 {
		t.Errorf("fail rate %.3f far from configured 0.2", rate)
	}
	// Distinct callers draw distinct streams.
	same := 0
	for i := uint64(0); i < 100; i++ {
		a, _ := s.FabricCall(0, i)
		b, _ := s.FabricCall(1, i)
		if a == b {
			same++
		}
	}
	if same == 100 {
		t.Error("caller rank does not influence the fault stream")
	}
}

func TestParseProfileRoundTrip(t *testing.T) {
	spec := "straggler:1x2@1,tier:pfsx3,tier:0x4@2,crash:2@1,lat:5ms,jitter:2ms,drop:0.05"
	p, err := ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stragglers) != 1 || p.Stragglers[0] != (Straggler{Worker: 1, Factor: 2, FromEpoch: 1}) {
		t.Errorf("stragglers = %+v", p.Stragglers)
	}
	if len(p.Tiers) != 2 || p.Tiers[0] != (TierDegradation{Class: PFSTier, Factor: 3}) ||
		p.Tiers[1] != (TierDegradation{Class: 0, Factor: 4, FromEpoch: 2}) {
		t.Errorf("tiers = %+v", p.Tiers)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{Worker: 2, AtEpoch: 1}) {
		t.Errorf("crashes = %+v", p.Crashes)
	}
	if p.Fabric.LatencySeconds != 0.005 || p.Fabric.JitterSeconds != 0.002 || p.Fabric.FailRate != 0.05 {
		t.Errorf("fabric = %+v", p.Fabric)
	}
	// Spec → Parse → Spec is a fixed point.
	back, err := ParseProfile(p.Spec())
	if err != nil {
		t.Fatalf("reparsing %q: %v", p.Spec(), err)
	}
	if back.Spec() != p.Spec() {
		t.Errorf("spec round trip: %q != %q", back.Spec(), p.Spec())
	}
}

func TestParseProfileErrors(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"straggler:1",
		"straggler:ax2",
		"tier:0x0.5", // factor < 1 rejected by Validate
		"crash:1",
		"lat:xyz",
		"drop:2",
	} {
		if _, err := ParseProfile(spec); err == nil {
			t.Errorf("ParseProfile(%q) accepted", spec)
		}
	}
}

func TestPresetsAreValidAndNamed(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Presets() {
		if p.Name == "" {
			t.Error("preset without a name")
		}
		if names[p.Name] {
			t.Errorf("duplicate preset name %q", p.Name)
		}
		names[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", p.Name, err)
		}
		if p.Empty() {
			t.Errorf("preset %q injects nothing", p.Name)
		}
		got, err := ParseProfile(p.Name)
		if err != nil {
			t.Errorf("preset %q not parseable by name: %v", p.Name, err)
		} else if got.Name != p.Name {
			t.Errorf("ParseProfile(%q) returned %q", p.Name, got.Name)
		}
	}
	if !names["meltdown"] || !names["straggler"] {
		t.Errorf("expected presets missing from %v", PresetNames())
	}
	if list := strings.Join(PresetNames(), ","); !strings.Contains(list, "flaky-fabric") {
		t.Errorf("PresetNames() = %v", PresetNames())
	}
}
