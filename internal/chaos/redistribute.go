package chaos

import (
	"repro/internal/access"
)

// This file is the shared half of the crash-recovery contract: the
// round-robin redistribution of a crashed worker's plan entries across the
// survivors. Both engines consult the same pure function of the schedule —
// the simulator reshapes worker 0's stream before its hot loop
// (sim.chaosStream) and the live Job reshapes each rank's delivery stream
// at setup — so sim-vs-live stall under the same crash profile converges
// and exactly-once delivery is checkable against the union of the
// redistributed streams (internal/invariant).

// CrashEpoch returns the first epoch at which worker is gone on a cluster
// of n ranks, or -1 when it never crashes.
func (s *Schedule) CrashEpoch(worker, n int) int {
	if s == nil {
		return -1
	}
	first := -1
	for _, c := range s.p.Crashes {
		if r, ok := crashRank(c.Worker, n); ok && r == worker {
			if first < 0 || c.AtEpoch < first {
				first = c.AtEpoch
			}
		}
	}
	return first
}

// survivorOrdinal returns self's index among the survivors (the ranks not
// in crashed, which is ascending). The ordinal selects self's round-robin
// share of each orphaned slice.
func survivorOrdinal(self int, crashed []int) int {
	ord := self
	for _, c := range crashed {
		if c < self {
			ord--
		}
	}
	return ord
}

// RedistributeStream applies crash re-planning to one worker's delivery
// stream. From each crash epoch onwards the crashed workers' plan entries
// — sliced at the plan's per-epoch boundaries from peerStream — are split
// round-robin across the survivors in rank order, and self appends its
// share after its own entries for the epoch. Self's own stream is sliced
// into epochs near-equal chunks (size len/epochs, remainder spread over
// the early epochs), so policies that reorder or cycle their stream keep
// their own epoch structure while still absorbing orphaned entries; for
// plan-shaped streams (length = epochs x samplesPerEpoch) the chunks
// coincide with the plan boundaries.
//
// If self itself crashes, its stream ends at its crash epoch: the returned
// stream holds only the pre-crash prefix (own chunks plus any shares of
// earlier crashes).
//
// The second return carries the cumulative end-of-epoch boundaries of the
// reshaped stream (one entry per epoch self survives the start of). A
// fault-free schedule returns the stream untouched with nil boundaries —
// the uniform legacy rule.
//
// The function is a stateless pure function of (schedule, arguments): both
// engines compute identical redistributions from a shared profile, which
// is what lets the live path recover clairvoyantly — survivors know the
// orphaned plan rounds without any runtime ownership negotiation.
func (s *Schedule) RedistributeStream(
	self, n, epochs int,
	stream []access.SampleID,
	samplesPerEpoch func(worker int) int,
	peerStream func(worker int) []access.SampleID,
) ([]access.SampleID, []int) {
	if s == nil || !s.HasCrashes(n) || len(stream) == 0 || epochs <= 0 {
		return stream, nil
	}
	selfCrash := s.CrashEpoch(self, n)
	e0 := len(stream) / epochs
	rem := len(stream) % epochs
	out := make([]access.SampleID, 0, len(stream)+len(stream)/n+1)
	ends := make([]int, 0, epochs)
	off := 0
	for e := 0; e < epochs; e++ {
		if selfCrash >= 0 && e >= selfCrash {
			break // self is gone: deliver only the pre-crash prefix
		}
		size := e0
		if e < rem {
			size++
		}
		out = append(out, stream[off:off+size]...)
		off += size
		if crashed := s.CrashedWorkers(e, n); len(crashed) > 0 {
			survivors := n - len(crashed)
			ord := survivorOrdinal(self, crashed)
			for _, w := range crashed {
				// Worker w's plan entries for this epoch, from the shared
				// plan streams; survivors split them round-robin in rank
				// order, so survivor ordinal k takes positions lo+k,
				// lo+k+S, lo+k+2S, ...
				pe := samplesPerEpoch(w)
				ws := peerStream(w)
				lo, hi := e*pe, (e+1)*pe
				if hi > len(ws) {
					hi = len(ws)
				}
				for i := lo + ord; i < hi; i += survivors {
					out = append(out, ws[i])
				}
			}
		}
		ends = append(ends, len(out))
	}
	return out, ends
}

// RedistributedRounds returns how many plan entries RedistributeStream
// grafted onto self's stream beyond its own chunks — the live engine's
// nopfs_redistributed_rounds_total accounting.
func RedistributedRounds(stream, reshaped []access.SampleID, ends []int) int {
	if ends == nil {
		return 0
	}
	own := len(stream)
	if len(reshaped) < own {
		own = len(reshaped) // crashed self: only the delivered prefix is own
	}
	return len(reshaped) - own
}

// SurvivorStreams is a test/verification helper: it redistributes every
// rank's plan stream under the schedule and returns the per-rank reshaped
// streams and boundaries, keyed by rank. Ranks that crash get their
// truncated prefix. The union of the returned streams is exactly the set
// of samples a live cluster must deliver — the exactly-once oracle.
func (s *Schedule) SurvivorStreams(n, epochs int,
	samplesPerEpoch func(worker int) int,
	peerStream func(worker int) []access.SampleID,
) (streams [][]access.SampleID, bounds [][]int) {
	streams = make([][]access.SampleID, n)
	bounds = make([][]int, n)
	for r := 0; r < n; r++ {
		streams[r], bounds[r] = s.RedistributeStream(r, n, epochs, peerStream(r), samplesPerEpoch, peerStream)
	}
	return streams, bounds
}
