package chaos

import (
	"reflect"
	"testing"

	"repro/internal/access"
)

// planStreams builds n synthetic plan streams of epochs x pe entries each;
// worker w's entries are w*100+i so every ID is globally unique and its
// origin is readable in failures.
func planStreams(n, epochs, pe int) [][]access.SampleID {
	out := make([][]access.SampleID, n)
	for w := 0; w < n; w++ {
		s := make([]access.SampleID, epochs*pe)
		for i := range s {
			s[i] = access.SampleID(w*100 + i)
		}
		out[w] = s
	}
	return out
}

func compileSpec(t *testing.T, spec string) *Schedule {
	t.Helper()
	p, err := ParseProfile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p.Compile(7)
}

func TestRedistributeStreamFaultFree(t *testing.T) {
	streams := planStreams(2, 2, 3)
	var nilSched *Schedule
	out, ends := nilSched.RedistributeStream(0, 2, 2, streams[0], func(int) int { return 3 },
		func(w int) []access.SampleID { return streams[w] })
	if &out[0] != &streams[0][0] || ends != nil {
		t.Fatal("nil schedule must return the stream untouched with nil bounds")
	}
	// A schedule without crashes is equally neutral.
	s := compileSpec(t, "lat:1ms")
	out, ends = s.RedistributeStream(0, 2, 2, streams[0], func(int) int { return 3 },
		func(w int) []access.SampleID { return streams[w] })
	if &out[0] != &streams[0][0] || ends != nil {
		t.Fatal("crash-free schedule must return the stream untouched")
	}
}

func TestCrashEpoch(t *testing.T) {
	s := compileSpec(t, "crash:2@1")
	if got := s.CrashEpoch(2, 4); got != 1 {
		t.Errorf("CrashEpoch(2) = %d, want 1", got)
	}
	if got := s.CrashEpoch(1, 4); got != -1 {
		t.Errorf("CrashEpoch(1) = %d, want -1", got)
	}
	var nilSched *Schedule
	if got := nilSched.CrashEpoch(2, 4); got != -1 {
		t.Errorf("nil CrashEpoch = %d, want -1", got)
	}
	// Earliest of several crashes aimed at the same rank wins.
	multi := compileSpec(t, "crash:2@3,crash:2@1")
	if got := multi.CrashEpoch(2, 4); got != 1 {
		t.Errorf("multi CrashEpoch = %d, want 1", got)
	}
}

func TestRedistributeStreamRoundRobinShares(t *testing.T) {
	const n, epochs, pe = 4, 3, 4
	streams := planStreams(n, epochs, pe)
	s := compileSpec(t, "crash:2@1")
	speFn := func(int) int { return pe }
	psFn := func(w int) []access.SampleID { return streams[w] }

	// Survivor rank 0 (ordinal 0) takes positions lo, lo+3, ...
	got0, ends0 := s.RedistributeStream(0, n, epochs, streams[0], speFn, psFn)
	want0 := append([]access.SampleID(nil), streams[0][0:4]...)
	want0 = append(want0, streams[0][4:8]...)
	want0 = append(want0, streams[2][4], streams[2][7])
	want0 = append(want0, streams[0][8:12]...)
	want0 = append(want0, streams[2][8], streams[2][11])
	if !reflect.DeepEqual(got0, want0) {
		t.Errorf("rank 0 stream = %v, want %v", got0, want0)
	}
	if want := []int{4, 10, 16}; !reflect.DeepEqual(ends0, want) {
		t.Errorf("rank 0 bounds = %v, want %v", ends0, want)
	}

	// Survivor rank 3 has ordinal 2 (rank 2 crashed below it).
	got3, _ := s.RedistributeStream(3, n, epochs, streams[3], speFn, psFn)
	want3 := append([]access.SampleID(nil), streams[3][0:4]...)
	want3 = append(want3, streams[3][4:8]...)
	want3 = append(want3, streams[2][6])
	want3 = append(want3, streams[3][8:12]...)
	want3 = append(want3, streams[2][10])
	if !reflect.DeepEqual(got3, want3) {
		t.Errorf("rank 3 stream = %v, want %v", got3, want3)
	}

	// The crashed rank delivers only its pre-crash prefix.
	got2, ends2 := s.RedistributeStream(2, n, epochs, streams[2], speFn, psFn)
	if !reflect.DeepEqual(got2, streams[2][0:4]) {
		t.Errorf("crashed rank stream = %v, want its epoch-0 prefix", got2)
	}
	if want := []int{4}; !reflect.DeepEqual(ends2, want) {
		t.Errorf("crashed rank bounds = %v, want %v", ends2, want)
	}
	if rr := RedistributedRounds(streams[2], got2, ends2); rr != 0 {
		t.Errorf("crashed rank RedistributedRounds = %d, want 0", rr)
	}
	if rr := RedistributedRounds(streams[0], got0, ends0); rr != 4 {
		t.Errorf("rank 0 RedistributedRounds = %d, want 4", rr)
	}
}

// TestSurvivorStreamsExactlyOnce is the conservation law the live engine is
// held to: under any crash schedule, the union of all ranks' redistributed
// streams delivers every non-orphaned plan entry exactly once — the crashed
// rank's pre-crash prefix included, its post-crash entries exactly once via
// the survivors' shares.
func TestSurvivorStreamsExactlyOnce(t *testing.T) {
	for _, spec := range []string{"crash:2@1", "crash:1@1,crash:3@2", "crash:0@2"} {
		const n, epochs, pe = 4, 3, 4
		streams := planStreams(n, epochs, pe)
		s := compileSpec(t, spec)
		got, _ := s.SurvivorStreams(n, epochs,
			func(int) int { return pe },
			func(w int) []access.SampleID { return streams[w] })
		counts := map[access.SampleID]int{}
		for _, rs := range got {
			for _, id := range rs {
				counts[id]++
			}
		}
		// Expected: every entry of every worker's plan stream, except the
		// post-crash entries of crashed workers are owed exactly once too
		// (they move to survivors), so the full union is all entries.
		want := map[access.SampleID]int{}
		for w := 0; w < n; w++ {
			for _, id := range streams[w] {
				want[id] = 1
			}
		}
		if !reflect.DeepEqual(counts, want) {
			for id, c := range counts {
				if want[id] != c {
					t.Errorf("%s: sample %d delivered %d times, want %d", spec, id, c, want[id])
				}
			}
			for id := range want {
				if _, ok := counts[id]; !ok {
					t.Errorf("%s: sample %d never delivered", spec, id)
				}
			}
		}
	}
}

// TestRedistributeUnevenPolicyStream pins the e0/rem chunking rule for
// policy streams whose length is not a multiple of the epoch count.
func TestRedistributeUnevenPolicyStream(t *testing.T) {
	const n, epochs, pe = 2, 3, 4
	streams := planStreams(n, epochs, pe)
	s := compileSpec(t, "crash:1@2")
	// A reordered/shortened policy stream: 10 entries over 3 epochs chunks
	// as 4, 3, 3.
	policy := streams[0][:10]
	got, ends := s.RedistributeStream(0, n, epochs, policy, func(int) int { return pe },
		func(w int) []access.SampleID { return streams[w] })
	want := append([]access.SampleID(nil), policy[0:4]...)
	want = append(want, policy[4:7]...)
	want = append(want, policy[7:10]...)
	want = append(want, streams[1][8:12]...) // sole survivor takes all of epoch 2
	if !reflect.DeepEqual(got, want) {
		t.Errorf("stream = %v, want %v", got, want)
	}
	if wantEnds := []int{4, 7, 14}; !reflect.DeepEqual(ends, wantEnds) {
		t.Errorf("bounds = %v, want %v", ends, wantEnds)
	}
}
