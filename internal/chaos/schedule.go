package chaos

import (
	"sort"

	"repro/internal/prng"
)

// Schedule is a Profile compiled against one cell seed: the deterministic
// event schedule both engines consult. Every method is a stateless pure
// function of (profile, seed, arguments) — no draw depends on call order —
// so concurrent queries are race-free and chaos-injected grids stay
// bit-identical at any pool width.
//
// A nil *Schedule is the fault-free schedule: every query returns its
// neutral value, so engines compile once (Profile.Compile returns nil for
// the empty profile) and call unconditionally.
type Schedule struct {
	p    Profile
	seed uint64
}

// Compile derives the deterministic event schedule for one cell seed. The
// empty profile compiles to nil.
func (p Profile) Compile(seed uint64) *Schedule {
	if p.Empty() {
		return nil
	}
	return &Schedule{p: p, seed: seed}
}

// Profile returns the generating profile (zero for the nil schedule).
func (s *Schedule) Profile() Profile {
	if s == nil {
		return Profile{}
	}
	return s.p
}

// mapWorker folds a profile worker index onto a cluster of n ranks.
func mapWorker(w, n int) int {
	if n <= 0 {
		return 0
	}
	return w % n
}

// crashRank maps a crash onto a cluster of n ranks, never onto rank 0: the
// simulator models rank 0 as the surviving observer, so a crash aimed at it
// lands on rank 1 instead. Clusters of one worker cannot crash.
func crashRank(w, n int) (int, bool) {
	if n <= 1 {
		return 0, false
	}
	r := mapWorker(w, n)
	if r == 0 {
		r = 1
	}
	return r, true
}

// Slowdown returns the straggler multiplier (>= 1) for one worker at one
// epoch. Crashed workers no longer straggle.
func (s *Schedule) Slowdown(worker, epoch, n int) float64 {
	if s == nil {
		return 1
	}
	if s.CrashedAt(worker, epoch, n) {
		return 1
	}
	factor := 1.0
	for _, st := range s.p.Stragglers {
		if mapWorker(st.Worker, n) == worker && epoch >= st.FromEpoch && st.Factor > factor {
			factor = st.Factor
		}
	}
	return factor
}

// BarrierFactor returns the allreduce pacing multiplier rank 0 observes at
// one epoch: training advances at the slowest surviving peer's rate, so the
// max straggler factor among peers (rank != 0) gates every iteration.
func (s *Schedule) BarrierFactor(epoch, n int) float64 {
	if s == nil {
		return 1
	}
	factor := 1.0
	for _, st := range s.p.Stragglers {
		w := mapWorker(st.Worker, n)
		if w == 0 || epoch < st.FromEpoch || st.Factor <= factor {
			continue
		}
		if s.CrashedAt(w, epoch, n) {
			continue
		}
		factor = st.Factor
	}
	return factor
}

// TierFactor returns the bandwidth-division multiplier (>= 1) for reads from
// one storage class (or PFSTier) at one epoch.
func (s *Schedule) TierFactor(class, epoch int) float64 {
	if s == nil {
		return 1
	}
	factor := 1.0
	for _, t := range s.p.Tiers {
		if t.Class == class && epoch >= t.FromEpoch && t.Factor > factor {
			factor = t.Factor
		}
	}
	return factor
}

// MaxTierFactor returns the largest factor any epoch applies to the class —
// the steady-state degradation the live path throttles towards.
func (s *Schedule) MaxTierFactor(class int) float64 {
	if s == nil {
		return 1
	}
	factor := 1.0
	for _, t := range s.p.Tiers {
		if t.Class == class && t.Factor > factor {
			factor = t.Factor
		}
	}
	return factor
}

// DegradedClasses returns the set of node-local class indices the profile
// degrades at any epoch (PFSTier excluded), in ascending order.
func (s *Schedule) DegradedClasses() []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, t := range s.p.Tiers {
		if t.Class >= 0 && !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	sort.Ints(out)
	return out
}

// CrashedAt reports whether the given rank is gone at the given epoch.
func (s *Schedule) CrashedAt(worker, epoch, n int) bool {
	if s == nil {
		return false
	}
	for _, c := range s.p.Crashes {
		if r, ok := crashRank(c.Worker, n); ok && r == worker && epoch >= c.AtEpoch {
			return true
		}
	}
	return false
}

// CrashedWorkers returns the ranks gone at the given epoch, ascending and
// deduplicated.
func (s *Schedule) CrashedWorkers(epoch, n int) []int {
	if s == nil {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for _, c := range s.p.Crashes {
		if r, ok := crashRank(c.Worker, n); ok && epoch >= c.AtEpoch && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// HasCrashes reports whether any crash applies on a cluster of n ranks.
func (s *Schedule) HasCrashes(n int) bool {
	if s == nil {
		return false
	}
	for _, c := range s.p.Crashes {
		if _, ok := crashRank(c.Worker, n); ok {
			return true
		}
	}
	return false
}

// fabricStream salts the fabric-fault PRNG derivation so it cannot collide
// with the training shuffle streams derived from the same seed.
const fabricStream = 0xfab51c

// FabricCall draws the fault outcome for one remote call: the injected
// delay in seconds (latency + uniform jitter) and whether the call fails
// transiently. The draw is a pure function of (seed, caller, call), never
// of execution order. It runs once per remote fetch inside the simulator's
// allocation-lean hot loop, so the draw is two SplitMix64 finalizer rounds
// over a mixed counter state — no generator construction per call.
func (s *Schedule) FabricCall(caller int, call uint64) (delaySeconds float64, fail bool) {
	if s == nil || s.p.Fabric.zero() {
		return 0, false
	}
	f := s.p.Fabric
	delaySeconds = f.LatencySeconds
	if f.JitterSeconds == 0 && f.FailRate == 0 {
		return delaySeconds, false
	}
	// Distinct odd multipliers keep (caller, call) pairs on distinct
	// states; SplitMix64's bijective finalizer decorrelates the draws.
	sm := prng.NewSplitMix64((s.seed ^ fabricStream) +
		(uint64(caller)+1)*0x9e3779b97f4a7c15 + (call+1)*0xd1b54a32d192ed03)
	delaySeconds += f.JitterSeconds * unitFloat(sm.Next())
	fail = unitFloat(sm.Next()) < f.FailRate
	return delaySeconds, fail
}

// unitFloat maps a uniform 64-bit draw onto [0, 1) with 53 bits of
// precision (the prng.Generator.Float64 construction).
func unitFloat(v uint64) float64 {
	return float64(v>>11) / (1 << 53)
}
