package cli

import (
	"context"
	"flag"
	"fmt"
	"io"

	"repro/internal/access"
	"repro/internal/stats"
)

// accessOptions holds the access command's parsed flags.
type accessOptions struct {
	F     int
	N     int
	E     int
	Seed  uint64
	Delta float64
	CommonFlags
}

// accessFlags builds the access command's flag set. -seed carries the shared
// wording (the command's shuffle seed is the training PRNG seed — the drift
// fix); there is no grid to dry-run, so CommonFlags registers without it.
func accessFlags(prog string) (*flag.FlagSet, *accessOptions) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	o := &accessOptions{}
	fs.IntVar(&o.F, "f", 100000, "dataset size F (paper Fig. 3 uses 1,281,167)")
	fs.IntVar(&o.N, "n", 16, "workers N")
	fs.IntVar(&o.E, "e", 90, "epochs E")
	fs.Uint64Var(&o.Seed, "seed", 42, seedHelp)
	fs.Float64Var(&o.Delta, "delta", 0.8, "heavy-hitter threshold factor δ")
	o.CommonFlags.Register(fs, false)
	return fs, o
}

// RunAccess is the `nopfs access` command: the access-pattern analysis of
// paper Sec. 3 — the per-worker access-frequency distribution (Fig. 3), the
// analytic binomial heavy-hitter estimate versus the measured count, and a
// Lemma 1 check on the generated plan.
func RunAccess(prog string, args []string, stdout, stderr io.Writer) int {
	fs, o := accessFlags(prog)
	return execute(prog, fs, args, stderr, &o.Config, func(ctx context.Context) error {
		// Bad plan parameters are a usage problem (exit 2), where the legacy
		// binary conflated them with runtime failures (exit 1).
		plan := &access.Plan{Seed: o.Seed, F: o.F, N: o.N, E: o.E, BatchPerWorker: 4, DropLast: true}
		if err := plan.Validate(); err != nil {
			return usageError{err: err}
		}

		fmt.Fprintf(stdout, "Fig. 3: access frequency for worker 0 of %d, %d epochs, F=%d\n\n", o.N, o.E, o.F)
		freq := plan.WorkerFrequencies(0)
		hist := access.FrequencyHistogram(freq)
		fmt.Fprint(stdout, hist.String())

		// The analysis stages are pure compute; cancellation is honoured
		// between them (execute maps the context error to exit 130).
		if err := ctx.Err(); err != nil {
			return err
		}
		r := access.HeavyHitters(plan, 0, o.Delta)
		fmt.Fprintf(stdout, "\nmean accesses per worker        mu = E/N = %.3f\n", r.Mu)
		fmt.Fprintf(stdout, "heavy hitters: accessed more than %d times ((1+%.1f)*mu)\n", r.Threshold, o.Delta)
		fmt.Fprintf(stdout, "  analytic  F*P(X > %d), X~Binomial(%d, 1/%d): %.0f\n", r.Threshold, o.E, o.N, r.Analytic)
		fmt.Fprintf(stdout, "  measured from the actual shuffles:           %d\n", r.Measured)
		fmt.Fprintf(stdout, "  (paper, at F=1,281,167: analytic 31,635 vs measured 31,863)\n")

		if err := ctx.Err(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nLemma 1 verification over all %d samples:\n", o.F)
		freqs := plan.Frequencies()
		for _, d := range []float64{0.25, 0.5, 1.0} {
			v := access.Lemma1Violations(freqs, o.E, d)
			fmt.Fprintf(stdout, "  delta=%.2f: %d violations\n", d, v)
		}
		if k, tot := access.TotalAccessInvariant(plan, freqs); k >= 0 {
			fmt.Fprintf(stdout, "  INVARIANT BROKEN: sample %d accessed %d times\n", k, tot)
			return fmt.Errorf("total-access invariant broken at sample %d", k)
		}
		fmt.Fprintf(stdout, "  every sample accessed exactly once per epoch: ok\n")
		_ = stats.BinomialMean // keep the analytic package linked explicitly
		return nil
	})
}
