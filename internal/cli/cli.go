// Package cli is the shared implementation behind the `nopfs` subcommand
// binary (cmd/nopfs) and the deprecated standalone shims (cmd/nopfs-sim,
// cmd/nopfs-train, cmd/nopfs-access). Every command body is a pure function
// of (program name, args, stdout, stderr) returning an exit code, so the
// shims and the subcommands share one implementation byte for byte — only
// the program name in error messages differs.
//
// One exit-code contract across every command:
//
//	0   success
//	1   runtime error (a run started and failed)
//	2   usage error (bad flag, bad flag value, unknown scenario/figure/
//	    subcommand, no mode selected) — usage is printed to stderr
//	130 interrupted (SIGINT/SIGTERM canceled the run context)
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// Exit codes shared by every command.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitInterrupt = 130
)

// Command is one `nopfs` subcommand.
type Command struct {
	// Name is the subcommand token ("sim").
	Name string
	// Summary is the one-line usage description.
	Summary string
	// Run executes the command. prog is the program name used in error
	// messages ("nopfs sim" or the deprecated shim's "nopfs-sim").
	Run func(prog string, args []string, stdout, stderr io.Writer) int
	// Flags returns the command's full flag set (for usage rendering and
	// the cross-command drift test); it must register exactly the flags Run
	// parses.
	Flags func(prog string) *flag.FlagSet
}

// Commands returns every subcommand in usage order.
func Commands() []Command {
	return []Command{
		{
			Name:    "sim",
			Summary: "run the I/O performance simulator (Fig. 8/9, ablation, Table 1)",
			Run:     RunSim,
			Flags:   func(prog string) *flag.FlagSet { fs, _ := simFlags(prog); return fs },
		},
		{
			Name:    "train",
			Summary: "reproduce the real-system evaluation figures (Figs. 10-16)",
			Run:     RunTrain,
			Flags:   func(prog string) *flag.FlagSet { fs, _ := trainFlags(prog); return fs },
		},
		{
			Name:    "access",
			Summary: "analyse the clairvoyant access pattern (Fig. 3, Lemma 1)",
			Run:     RunAccess,
			Flags:   func(prog string) *flag.FlagSet { fs, _ := accessFlags(prog); return fs },
		},
		{
			Name:    "run",
			Summary: "execute a live in-process training cluster with metrics",
			Run:     RunLive,
			Flags:   func(prog string) *flag.FlagSet { fs, _ := runFlags(prog); return fs },
		},
		{
			Name:    "lint",
			Summary: "run the repo's static-analysis suite (determinism, ctxfirst, goroutine, metricnames, exitcodes)",
			Run:     RunLint,
			Flags:   func(prog string) *flag.FlagSet { fs, _ := lintFlags(prog); return fs },
		},
	}
}

// Main dispatches `nopfs <subcommand> [flags]` and returns the exit code.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		printUsage(stderr)
		return ExitUsage
	}
	switch args[0] {
	case "help", "-h", "-help", "--help":
		printUsage(stdout)
		return ExitOK
	}
	for _, c := range Commands() {
		if c.Name == args[0] {
			return c.Run("nopfs "+c.Name, args[1:], stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "nopfs: unknown command %q\n\n", args[0])
	printUsage(stderr)
	return ExitUsage
}

// printUsage renders the subcommand tree.
func printUsage(w io.Writer) {
	fmt.Fprintln(w, "usage: nopfs <command> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "commands:")
	for _, c := range Commands() {
		fmt.Fprintf(w, "  %-8s %s\n", c.Name, c.Summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "run 'nopfs <command> -h' for the command's flags")
}

// usageError marks an error that should print usage and exit ExitUsage.
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// usagef builds a usage error.
func usagef(format string, a ...any) error {
	return usageError{err: fmt.Errorf(format, a...)}
}

// isUsage reports whether err is (or wraps) a usage error.
func isUsage(err error) bool {
	var u usageError
	return errors.As(err, &u)
}

// execute is the shared command shell: it parses flags (applying -config
// file defaults when the options carry a config path), installs the
// interrupt context, runs the body, and maps errors onto the exit-code
// contract.
func execute(prog string, fs *flag.FlagSet, args []string, stderr io.Writer,
	configPath *string, body func(ctx context.Context) error) int {
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return ExitOK
		}
		return ExitUsage // flag package already printed the error and usage
	}
	if configPath != nil && *configPath != "" {
		if err := applyConfigFile(fs, *configPath); err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", prog, err)
			fs.Usage()
			return ExitUsage
		}
	}
	// Ctrl-C / SIGTERM cancels the run context: in-flight work aborts
	// promptly instead of running to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := body(ctx)
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled) || ctx.Err() != nil && errors.Is(err, ctx.Err()):
		fmt.Fprintf(stderr, "%s: interrupted\n", prog)
		return ExitInterrupt
	case isUsage(err):
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		fs.Usage()
		return ExitUsage
	default:
		fmt.Fprintf(stderr, "%s: %v\n", prog, err)
		return ExitError
	}
}
