package cli

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	isim "repro/internal/sim"
)

// runMain invokes Main with captured streams.
func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = Main(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestExitCodes pins the one exit-code contract across every command: 0
// success, 1 runtime error, 2 usage error (with usage on stderr), covering
// the legacy inconsistencies this package fixed (nopfs-sim exited 1 on an
// unknown scenario but 2 on a missing mode).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no subcommand", nil, ExitUsage},
		{"unknown subcommand", []string{"bogus"}, ExitUsage},
		{"help", []string{"help"}, ExitOK},
		{"sim no mode", []string{"sim"}, ExitUsage},
		{"sim unknown scenario", []string{"sim", "-scenario", "bogus"}, ExitUsage},
		{"sim bad format", []string{"sim", "-all", "-format", "xml"}, ExitUsage},
		{"sim bad chaos", []string{"sim", "-all", "-chaos", "nonsense:spec"}, ExitUsage},
		{"sim bad access", []string{"sim", "-all", "-access", "nonsense:spec"}, ExitUsage},
		{"sim bad flag", []string{"sim", "-no-such-flag"}, ExitUsage},
		{"sim table1", []string{"sim", "-table1"}, ExitOK},
		{"sim runtime error", []string{"sim", "-scenario", "fig8a", "-scale", "0.002"}, ExitError},
		{"train unknown fig", []string{"train", "-fig", "99"}, ExitUsage},
		{"train bad gpus", []string{"train", "-gpus", "x"}, ExitUsage},
		{"train gpus match nothing", []string{"train", "-fig", "10", "-gpus", "7"}, ExitUsage},
		{"access bad plan", []string{"access", "-f", "-1"}, ExitUsage},
		{"access ok", []string{"access", "-f", "2000", "-n", "4", "-e", "3"}, ExitOK},
		{"run bad workers", []string{"run", "-workers", "0"}, ExitUsage},
		{"run bad chaos", []string{"run", "-chaos", "nonsense:spec"}, ExitUsage},
		{"run bad access", []string{"run", "-access", "nonsense:spec"}, ExitUsage},
		{"run bad resilience", []string{"run", "-resilience", "nonsense:spec"}, ExitUsage},
		// The lint command joins the same contract: 0 on a clean tree, 1
		// when the suite finds violations, 2 on a bad flag or pattern. The
		// fixtures under internal/analysis/testdata provide a known-clean
		// and a known-dirty package (cli tests run with cwd internal/cli).
		{"lint clean", []string{"lint", "../analysis/testdata/src/internal/clean"}, ExitOK},
		{"lint findings", []string{"lint", "../analysis/testdata/src/internal/exitlib"}, ExitError},
		{"lint bad flag", []string{"lint", "-no-such-flag"}, ExitUsage},
		{"lint bad pattern", []string{"lint", "./no/such/dir"}, ExitUsage},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runMain(tc.args...)
			if code != tc.want {
				t.Fatalf("Main(%q) = %d, want %d (stderr: %s)", tc.args, code, tc.want, stderr)
			}
			if tc.want == ExitUsage && !strings.Contains(stderr, "usage") && !strings.Contains(stderr, "Usage") {
				t.Errorf("Main(%q): usage exit without usage text on stderr:\n%s", tc.args, stderr)
			}
		})
	}
}

// TestShimMatchesSubcommand proves the deprecated standalone entry points and
// the subcommand dispatch share one implementation byte for byte: same exit
// code, same stdout.
func TestShimMatchesSubcommand(t *testing.T) {
	cases := []struct {
		name string
		shim func(prog string, args []string, stdout, stderr *bytes.Buffer) int
		sub  string
		args []string
	}{
		{
			name: "sim table1",
			shim: func(prog string, args []string, stdout, stderr *bytes.Buffer) int {
				return RunSim(prog, args, stdout, stderr)
			},
			sub:  "sim",
			args: []string{"-table1"},
		},
		{
			name: "sim scenario",
			shim: func(prog string, args []string, stdout, stderr *bytes.Buffer) int {
				return RunSim(prog, args, stdout, stderr)
			},
			sub:  "sim",
			args: []string{"-scenario", "fig8a", "-scale", "0.01", "-seed", "7"},
		},
		{
			name: "access",
			shim: func(prog string, args []string, stdout, stderr *bytes.Buffer) int {
				return RunAccess(prog, args, stdout, stderr)
			},
			sub:  "access",
			args: []string{"-f", "2000", "-n", "4", "-e", "3"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var shimOut, shimErr, subOut, subErr bytes.Buffer
			shimCode := tc.shim("nopfs-"+tc.sub, tc.args, &shimOut, &shimErr)
			subCode := Main(append([]string{tc.sub}, tc.args...), &subOut, &subErr)
			if shimCode != subCode {
				t.Fatalf("exit codes differ: shim %d, subcommand %d", shimCode, subCode)
			}
			if !bytes.Equal(shimOut.Bytes(), subOut.Bytes()) {
				t.Fatalf("stdout differs:\nshim:\n%s\nsubcommand:\n%s", shimOut.String(), subOut.String())
			}
		})
	}
}

// drift is one permitted cross-command flag difference.
type drift struct{ flag, command string }

// TestFlagGroupsConsistent asserts that a flag name shared by several
// subcommands means the same thing everywhere — identical usage text and
// default — except for the explicitly intended differences below. This is
// the regression net for the copy-paste drift the shared groups replaced.
func TestFlagGroupsConsistent(t *testing.T) {
	// The intended deviations; anything else is drift.
	allowUsage := map[drift]bool{
		{"seed", "train"}: true, // overrides the figure's preset seed
		{"chaos", "run"}:  true, // injects into the live run, no grid axis
		{"access", "run"}: true, // shapes the live run, no grid axis
	}
	allowDefault := map[drift]bool{
		{"scale", "train"}: true, // figures stay faithful at 0.1, sim panels at 0.02
		{"seed", "train"}:  true, // 0 = keep the figure's preset
	}

	type info struct{ usage, def, command string }
	first := map[string]info{}
	for _, c := range Commands() {
		fs := c.Flags("nopfs " + c.Name)
		fs.VisitAll(func(f *flag.Flag) {
			prev, seen := first[f.Name]
			if !seen {
				first[f.Name] = info{usage: f.Usage, def: f.DefValue, command: c.Name}
				return
			}
			if f.Usage != prev.usage &&
				!allowUsage[drift{f.Name, c.Name}] && !allowUsage[drift{f.Name, prev.command}] {
				t.Errorf("flag -%s usage drifted between %s and %s:\n  %q\n  %q",
					f.Name, prev.command, c.Name, prev.usage, f.Usage)
			}
			if f.DefValue != prev.def &&
				!allowDefault[drift{f.Name, c.Name}] && !allowDefault[drift{f.Name, prev.command}] {
				t.Errorf("flag -%s default drifted between %s and %s: %q vs %q",
					f.Name, prev.command, c.Name, prev.def, f.DefValue)
			}
		})
	}
	// The groups must actually be shared: every engine flag appears on both
	// grid commands (train historically lacked -stream).
	for _, name := range []string{"parallel", "replicas", "format", "chaos", "access", "stream", "config"} {
		for _, cmd := range Commands() {
			if cmd.Name != "sim" && cmd.Name != "train" {
				continue
			}
			if cmd.Flags("nopfs "+cmd.Name).Lookup(name) == nil {
				t.Errorf("command %s is missing shared flag -%s", cmd.Name, name)
			}
		}
	}
}

// TestConfigFile covers the -config file path: defaults applied, command
// line winning, comments skipped, and unknown or malformed lines rejected
// as usage errors.
func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("defaults and precedence", func(t *testing.T) {
		path := write("good.conf", "# sweep defaults\nreplicas = 3\nformat=json\n\n")
		fs, o := simFlags("nopfs sim")
		if err := fs.Parse([]string{"-replicas", "2"}); err != nil {
			t.Fatal(err)
		}
		if err := applyConfigFile(fs, path); err != nil {
			t.Fatal(err)
		}
		if o.Replicas != 2 {
			t.Errorf("replicas = %d, want 2 (command line must win)", o.Replicas)
		}
		if o.Format != "json" {
			t.Errorf("format = %q, want %q (config default must apply)", o.Format, "json")
		}
	})

	t.Run("unknown flag", func(t *testing.T) {
		path := write("unknown.conf", "no-such-flag = 1\n")
		fs, _ := simFlags("nopfs sim")
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if err := applyConfigFile(fs, path); err == nil || !isUsage(err) {
			t.Fatalf("unknown config flag: err = %v, want usage error", err)
		}
	})

	t.Run("malformed line", func(t *testing.T) {
		path := write("malformed.conf", "replicas\n")
		fs, _ := simFlags("nopfs sim")
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		if err := applyConfigFile(fs, path); err == nil || !isUsage(err) {
			t.Fatalf("malformed config line: err = %v, want usage error", err)
		}
	})

	t.Run("missing file is a usage exit", func(t *testing.T) {
		code, _, _ := runMain("sim", "-table1", "-config", filepath.Join(dir, "absent.conf"))
		if code != ExitUsage {
			t.Fatalf("missing -config file: exit %d, want %d", code, ExitUsage)
		}
	})

	t.Run("end to end", func(t *testing.T) {
		path := write("e2e.conf", "scenario = fig8a\nscale = 0.01\n")
		code, out, stderr := runMain("sim", "-config", path)
		if code != ExitOK {
			t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
		}
		if !strings.Contains(out, "fig8a") {
			t.Errorf("config-selected scenario missing from output:\n%s", out)
		}
	})
}

// TestDryRunExecutesNoCells is the tentpole's acceptance check: --dry-run
// prints the full plan analysis without running a single simulation cell.
func TestDryRunExecutesNoCells(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "sim scenario",
			args: []string{"sim", "-scenario", "fig8a", "-dry-run"},
			want: []string{"dry run: grid \"fig8a\"", "placement (NoPFS policy, worker 0):", "predicted fetch mix"},
		},
		{
			name: "sim sweep",
			args: []string{"sim", "-sweep", "-scale", "0.005", "-dry-run"},
			want: []string{"dry run: grid", "predicted time:"},
		},
		{
			name: "train",
			args: []string{"train", "-fig", "10", "-scale", "0.02", "-gpus", "32", "-dry-run"},
			want: []string{"dry run: grid \"fig10-pizdaint\"", "dry run: grid \"fig10-lassen\"", "placement (NoPFS policy, worker 0):"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := isim.SimulateCount()
			code, out, stderr := runMain(tc.args...)
			if code != ExitOK {
				t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
			}
			if got := isim.SimulateCount() - before; got != 0 {
				t.Fatalf("dry run executed %d simulation cells, want 0", got)
			}
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("dry-run output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestStreamMatchesBuffered pins the train command's new -stream flag: the
// streamed generic encoders must produce the same bytes as the buffered
// ones for structured formats.
func TestStreamMatchesBuffered(t *testing.T) {
	base := []string{"train", "-fig", "10", "-scale", "0.02", "-gpus", "32", "-format", "csv"}
	code, buffered, stderr := runMain(base...)
	if code != ExitOK {
		t.Fatalf("buffered run: exit %d (stderr: %s)", code, stderr)
	}
	code, streamed, stderr := runMain(append(base, "-stream")...)
	if code != ExitOK {
		t.Fatalf("streamed run: exit %d (stderr: %s)", code, stderr)
	}
	if buffered != streamed {
		t.Fatalf("-stream csv differs from buffered csv:\nbuffered:\n%s\nstreamed:\n%s", buffered, streamed)
	}
}
