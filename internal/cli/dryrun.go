package cli

import (
	"fmt"
	"io"
	"math"

	"repro/internal/cachepolicy"
	"repro/internal/perfmodel"
	"repro/internal/plancache"
	isim "repro/internal/sim"
	"repro/internal/sweep"
)

// This file is the --dry-run explain path: it prints everything a grid run
// is *about to* do — shape, clairvoyant placement, predicted fetch mix and
// stall from the performance model — without executing a single simulation
// cell (sim.SimulateCount is the proof in the test suite). The plan
// artifacts it consults come from the same shared plancache the real run
// would use, so a dry run also warms the cache for a run that follows.

// explainGridShape prints the grid's axes, cell count, and metric columns.
func explainGridShape(w io.Writer, grid *sweep.Grid) {
	metrics := grid.Metrics
	if len(metrics) == 0 {
		metrics = sweep.SimMetrics()
	}
	fmt.Fprintf(w, "dry run: grid %q\n", grid.Name)
	replicas := grid.Replicas
	if replicas < 1 {
		replicas = 1
	}
	profiles := len(grid.Profiles)
	if profiles == 0 {
		profiles = 1
	}
	// The patterns term appears only when the axis does, so pattern-less
	// dry runs stay byte-identical to the pre-pattern output.
	patterns := ""
	if len(grid.Patterns) > 0 {
		patterns = fmt.Sprintf(" x %d patterns", len(grid.Patterns))
	}
	fmt.Fprintf(w, "  axes: %d scenarios x %d policies x %d profiles%s x %d replicas = %d cells\n",
		len(grid.Scenarios), len(grid.Policies), profiles, patterns, replicas, grid.Size())
	fmt.Fprintf(w, "  base seed: %d\n", grid.BaseSeed)
	fmt.Fprint(w, "  metrics:")
	for _, m := range metrics {
		fmt.Fprintf(w, " %s", m.Name)
	}
	fmt.Fprintln(w)
}

// explainGrid prints the grid's shape and, for every scenario that can
// materialise a simulator config, the per-scenario plan analysis.
func explainGrid(w io.Writer, grid *sweep.Grid) error {
	explainGridShape(w, grid)
	for _, spec := range grid.Scenarios {
		if spec.Config == nil {
			fmt.Fprintf(w, "\n== %s ==\n  (no simulator config; labels a custom cell binding)\n", spec.ID)
			continue
		}
		cfg, err := spec.Config(grid.BaseSeed)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", spec.ID, err)
		}
		if err := explainConfig(w, spec.ID, spec.Label, cfg); err != nil {
			return fmt.Errorf("scenario %s: %w", spec.ID, err)
		}
	}
	return nil
}

// explainConfig prints one configuration's plan analysis: access-plan shape,
// per-tier clairvoyant placement, and the performance model's predicted
// fetch mix and stall for worker 0's stream.
func explainConfig(w io.Writer, id, label string, cfg isim.Config) error {
	if label != "" {
		fmt.Fprintf(w, "\n== %s: %s ==\n", id, label)
	} else {
		fmt.Fprintf(w, "\n== %s ==\n", id)
	}
	plan := cfg.Plan()
	if err := plan.Validate(); err != nil {
		return err
	}
	art := plancache.Shared().Artifacts(*plan)
	stream := art.Streams[0]
	perEpoch := plan.SamplesPerEpoch(0)
	totalMB := float64(cfg.DS.TotalSize()) / (1 << 20)
	fmt.Fprintf(w, "plan: F=%d samples, N=%d workers, E=%d epochs, batch/worker=%d, drop-last=%v, seed=%d\n",
		plan.F, plan.N, plan.E, plan.BatchPerWorker, plan.DropLast, plan.Seed)
	fmt.Fprintf(w, "      worker-0 stream: %d accesses (%d per epoch); dataset %.1f MB total, %.3f MB/sample mean\n",
		len(stream), perEpoch, totalMB, totalMB/float64(plan.F))

	// Clairvoyant NoPFS placement, via the shared plan cache (the identical
	// artifacts a real run would consume).
	node := cfg.Sys.Node
	assign := art.AssignmentLean(plancache.FamilyNoPFS, cfg.DS, node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildNoPFSLean(plan, art.Streams, cfg.DS, node)
	})
	fmt.Fprintln(w, "placement (NoPFS policy, worker 0):")
	cachedSamples := 0
	for c, class := range node.Classes {
		fill := assign.FillOrder[0][c]
		var bytes int64
		for _, k := range fill {
			bytes += cfg.DS.Size(int(k))
		}
		cachedSamples += len(fill)
		fillMB := float64(bytes) / (1 << 20)
		pct := 0.0
		if class.CapacityMB > 0 {
			pct = 100 * fillMB / class.CapacityMB
		}
		fmt.Fprintf(w, "      %-8s %8d samples, %10.1f / %.1f MB (%.1f%% full)\n",
			class.Name, len(fill), fillMB, class.CapacityMB, pct)
	}
	fmt.Fprintf(w, "      %-8s %8d samples\n", "uncached", plan.F-cachedSamples)

	// Predicted fetch mix over worker 0's stream: local if this worker
	// caches the sample, else remote if any peer's placement holds it, else
	// the PFS. Two passes: the first counts PFS clients so the shared-PFS
	// curve is evaluated at the contention the mix itself predicts.
	model, err := perfmodel.New(cfg.Sys, cfg.Work)
	if err != nil {
		return err
	}
	localWords := assign.LocalWords(0)
	best1, best2 := assign.HolderWords()
	srcOf := func(k int32) (source int, class int) {
		if c, _ := cachepolicy.UnpackLocal(localWords[k]); c >= 0 {
			return 2, c // local
		}
		if c := cachepolicy.HolderAny(best1[k], 0); c >= 0 {
			return 1, c // remote
		}
		if c := cachepolicy.HolderAny(best2[k], 0); c >= 0 {
			return 1, c
		}
		return 0, -1 // pfs
	}
	var nPFS, nRemote, nLocal int
	for _, k := range stream {
		switch src, _ := srcOf(k); src {
		case 0:
			nPFS++
		case 1:
			nRemote++
		case 2:
			nLocal++
		}
	}
	pfsFrac := float64(nPFS) / float64(len(stream))
	clients := int(math.Round(float64(plan.N) * pfsFrac))
	if clients < 1 {
		clients = 1
	}
	var secPFS, secRemote, secLocal float64
	sizesMB := make([]float64, 0, len(stream))
	for _, k := range stream {
		szMB := float64(cfg.DS.Size(int(k))) / (1 << 20)
		sizesMB = append(sizesMB, szMB)
		switch src, class := srcOf(k); src {
		case 0:
			secPFS += model.FetchPFS(szMB, clients)
		case 1:
			secRemote += model.FetchRemote(szMB, class)
		case 2:
			secLocal += model.FetchLocal(szMB, class)
		}
	}
	total := float64(len(stream))
	fmt.Fprintf(w, "predicted fetch mix (worker 0, %d clients on the PFS):\n", clients)
	fmt.Fprintf(w, "      %-8s %6.1f%%  %8d fetches  %10.1fs fetch time\n", "pfs", 100*float64(nPFS)/total, nPFS, secPFS)
	fmt.Fprintf(w, "      %-8s %6.1f%%  %8d fetches  %10.1fs fetch time\n", "remote", 100*float64(nRemote)/total, nRemote, secRemote)
	fmt.Fprintf(w, "      %-8s %6.1f%%  %8d fetches  %10.1fs fetch time\n", "local", 100*float64(nLocal)/total, nLocal, secLocal)

	// Predicted stall: fetch work spread over the p0 staging prefetcher
	// threads, against the compute lower bound. An explanatory estimate —
	// the simulator models per-thread scheduling, availability positions,
	// and jitter exactly; this predicts the same quantities from closed
	// forms without running it.
	compute := model.LowerBound(sizesMB)
	p0 := node.Staging.Threads
	if p0 < 1 {
		p0 = 1
	}
	fetchTotal := secPFS + secRemote + secLocal
	stall := fetchTotal/float64(p0) - compute
	if stall < 0 {
		stall = 0
	}
	fmt.Fprintf(w, "predicted time: compute lower bound %.1fs; fetch %.1fs over p0=%d threads -> stall ~%.1fs, exec >= %.1fs\n",
		compute, fetchTotal, p0, stall, compute+stall)
	return nil
}
