package cli

import (
	"flag"
	"os"
	"strings"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/profiling"
	"repro/internal/sweep"
)

// This file defines the shared flag groups. The three legacy binaries grew
// their flag sets by copy-paste and drifted (differing -chaos grammar
// wording, differing -replicas help, -stream missing from train); every
// command now registers the same groups, and TestFlagGroupsConsistent pins
// that shared flags stay identical. Deliberate per-command differences are
// confined to the registration parameters below:
//
//   - -scale defaults: sim 0.02 vs train 0.1 (intentional, see
//     EXPERIMENTS.md — the trainer figures stay faithful at a coarser
//     scale than the simulator panels);
//   - -seed on train overrides the figure's preset seed (default 0),
//     everywhere else it is the training PRNG seed (default 42).

// chaosHelp is the single -chaos grammar description shared by the grid
// commands (the sim/train wording drift, reconciled).
func chaosHelp() string {
	return "fault profile: a preset (" + strings.Join(chaos.PresetNames(), ", ") +
		") or a spec like \"straggler:1x2@1,tier:0x4,drop:0.05\"; adds a clean-vs-faulted" +
		" profile axis to the grid (fault profiles extend beyond the paper's measured configurations)"
}

// accessFlagHelp is the single -access grammar description shared by the
// grid commands.
func accessFlagHelp() string {
	return "workload access pattern: a preset (" + strings.Join(access.PresetNames(), ", ") +
		") or a spec like \"zipf:s=1.1,drift=0.05\" or \"elastic:join=1@1,leave=2@2\";" +
		" adds a uniform-vs-pattern axis to the grid (the empty spec keeps the classic uniform shuffle)"
}

// scaleHelp and seedHelp are the shared wordings.
const (
	scaleHelp    = "dataset/capacity scale (1 = paper size)"
	seedHelp     = "training PRNG seed"
	seedHelpPre  = "override the figure's preset shuffle seed (0 = preset)"
	formatHelp   = "output format: text, json, or csv"
	parallelHelp = "sweep-engine goroutine pool width (0 = GOMAXPROCS)"
	replicasHelp = "replica seeds per grid cell"
	streamHelp   = "stream output incrementally as cells finish (same bytes as the buffered encoders; bespoke text tables fall back to the generic table)"
	configHelp   = "read flag defaults from FILE (name=value lines, # comments; command-line flags win)"
	dryRunHelp   = "print the plan analysis (grid shape, per-tier placement, predicted fetch mix and stall) without running any simulation"
)

// ScaleFlags is the scale/seed group shared by the experiment commands.
type ScaleFlags struct {
	Scale float64
	Seed  uint64
}

// Register adds the group with the command's defaults (see the file comment
// for why the defaults differ per command).
func (f *ScaleFlags) Register(fs *flag.FlagSet, scaleDefault float64, seedDefault uint64, seedUsage string) {
	fs.Float64Var(&f.Scale, "scale", scaleDefault, scaleHelp)
	fs.Uint64Var(&f.Seed, "seed", seedDefault, seedUsage)
}

// EngineFlags is the sweep-engine group: pool width, replica axis, output
// format, fault-profile axis, access-pattern axis, and streaming encoders.
type EngineFlags struct {
	Parallel int
	Replicas int
	Format   string
	Chaos    string
	Access   string
	Stream   bool
}

// Register adds the group.
func (f *EngineFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&f.Parallel, "parallel", 0, parallelHelp)
	fs.IntVar(&f.Replicas, "replicas", 1, replicasHelp)
	fs.StringVar(&f.Format, "format", "text", formatHelp)
	fs.StringVar(&f.Chaos, "chaos", "", chaosHelp())
	fs.StringVar(&f.Access, "access", "", accessFlagHelp())
	fs.BoolVar(&f.Stream, "stream", false, streamHelp)
}

// CheckFormat validates -format.
func (f *EngineFlags) CheckFormat() error {
	switch f.Format {
	case "text", "json", "csv":
		return nil
	default:
		return usagef("unknown -format %q (want text, json, or csv)", f.Format)
	}
}

// ChaosProfiles resolves -chaos into the clean-vs-faulted profile axis
// (nil without the flag). A malformed spec is a usage error.
func (f *EngineFlags) ChaosProfiles() ([]sweep.ProfileSpec, error) {
	profiles, err := sweep.ChaosAxis(f.Chaos)
	if err != nil {
		return nil, usageError{err: err}
	}
	return profiles, nil
}

// AccessPatterns resolves -access into the uniform-vs-pattern axis (nil
// without the flag). A malformed spec is a usage error.
func (f *EngineFlags) AccessPatterns() ([]sweep.AccessSpec, error) {
	patterns, err := sweep.AccessAxis(f.Access)
	if err != nil {
		return nil, usageError{err: err}
	}
	return patterns, nil
}

// CommonFlags is the group every experiment command carries: config-file
// support, dry-run, and the profiling collectors.
type CommonFlags struct {
	Config string
	DryRun bool
	Prof   profiling.Flags
}

// Register adds the group; withDryRun gates -dry-run (the access and run
// commands have nothing to dry-run).
func (f *CommonFlags) Register(fs *flag.FlagSet, withDryRun bool) {
	fs.StringVar(&f.Config, "config", "", configHelp)
	if withDryRun {
		fs.BoolVar(&f.DryRun, "dry-run", false, dryRunHelp)
	}
	f.Prof.Register(fs)
}

// applyConfigFile loads name=value defaults from path into fs, skipping
// flags already set on the command line (the command line wins). Lines are
// `name = value`; blank lines and #-comments are ignored. Unknown names are
// usage errors — a typo must not silently no-op.
func applyConfigFile(fs *flag.FlagSet, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return usagef("config: %v", err)
	}
	fromCLI := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { fromCLI[f.Name] = true })
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, "=")
		if !ok {
			return usagef("config %s:%d: want name=value, got %q", path, i+1, line)
		}
		name, value = strings.TrimSpace(name), strings.TrimSpace(value)
		if fs.Lookup(name) == nil {
			return usagef("config %s:%d: unknown flag %q", path, i+1, name)
		}
		if fromCLI[name] {
			continue
		}
		if err := fs.Set(name, value); err != nil {
			return usagef("config %s:%d: flag %q: %v", path, i+1, name, err)
		}
	}
	return nil
}
