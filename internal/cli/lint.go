package cli

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
)

// lintOptions holds the lint command's parsed flags.
type lintOptions struct {
	JSON bool
}

// lintFlags builds the lint command's flag set. Positional arguments are
// package patterns ("./...", "./internal/sim", "dir/..."); the default is
// the whole module.
func lintFlags(prog string) (*flag.FlagSet, *lintOptions) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	o := &lintOptions{}
	fs.BoolVar(&o.JSON, "json", false, "emit findings as a JSON array ([{file,line,col,check,message}])")
	return fs, o
}

// RunLint is the `nopfs lint` command: the repo's static-analysis suite
// (determinism, ctxfirst, goroutine, metricnames, exitcodes, retrybound — see
// internal/analysis). Exit codes follow the shared contract: 0 when clean,
// 1 when there are findings, 2 on a usage error (bad flag or bad package
// pattern).
func RunLint(prog string, args []string, stdout, stderr io.Writer) int {
	fs, o := lintFlags(prog)
	return execute(prog, fs, args, stderr, nil, func(ctx context.Context) error {
		patterns := fs.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		cwd, err := os.Getwd()
		if err != nil {
			return err
		}
		diags, err := analysis.Lint(cwd, patterns, analysis.Analyzers())
		if err != nil {
			var pe *analysis.PatternError
			if errors.As(err, &pe) {
				return usageError{err: err}
			}
			return err
		}
		if o.JSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if diags == nil {
				diags = []analysis.Diagnostic{}
			}
			if err := enc.Encode(diags); err != nil {
				return err
			}
		} else {
			for _, d := range diags {
				fmt.Fprintln(stdout, d)
			}
		}
		if n := len(diags); n > 0 {
			return fmt.Errorf("%d finding(s); fix them, or suppress a line with `//lint:ignore <check> <reason>` (the reason is required)", n)
		}
		return nil
	})
}
