package cli

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixture packages relative to this package's test cwd (internal/cli).
const (
	lintCleanPkg = "../analysis/testdata/src/internal/clean"
	lintDirtyPkg = "../analysis/testdata/src/internal/exitlib"
)

// TestLintJSONShape pins the -json output: a valid JSON array of
// {file,line,col,check,message} objects on a dirty tree, an empty array (not
// null, not nothing) on a clean one — and the exit code is carried by the
// process status, not the payload.
func TestLintJSONShape(t *testing.T) {
	type finding struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}

	t.Run("findings", func(t *testing.T) {
		code, out, _ := runMain("lint", "-json", lintDirtyPkg)
		if code != ExitError {
			t.Fatalf("exit %d, want %d", code, ExitError)
		}
		var findings []finding
		if err := json.Unmarshal([]byte(out), &findings); err != nil {
			t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
		}
		if len(findings) == 0 {
			t.Fatal("expected findings from the dirty fixture")
		}
		for _, f := range findings {
			if f.File == "" || f.Line == 0 || f.Col == 0 || f.Check == "" || f.Message == "" {
				t.Errorf("finding with empty fields: %+v", f)
			}
			if f.Check != "exitcodes" {
				t.Errorf("unexpected check %q from the exitcodes fixture", f.Check)
			}
		}
	})

	t.Run("clean is an empty array", func(t *testing.T) {
		code, out, stderr := runMain("lint", "-json", lintCleanPkg)
		if code != ExitOK {
			t.Fatalf("exit %d, want 0 (stderr: %s)", code, stderr)
		}
		var findings []finding
		if err := json.Unmarshal([]byte(out), &findings); err != nil {
			t.Fatalf("stdout is not a JSON array: %v\n%s", err, out)
		}
		if findings == nil || len(findings) != 0 {
			t.Errorf("clean run: want [], got %q", strings.TrimSpace(out))
		}
	})
}

// TestLintFailureHint pins the suppression-syntax hint: when the suite finds
// violations, stderr tells the developer exactly how to suppress one.
func TestLintFailureHint(t *testing.T) {
	code, _, stderr := runMain("lint", lintDirtyPkg)
	if code != ExitError {
		t.Fatalf("exit %d, want %d", code, ExitError)
	}
	if !strings.Contains(stderr, "//lint:ignore <check> <reason>") {
		t.Errorf("failure output missing the suppression hint:\n%s", stderr)
	}
}

// TestLintTextOutput pins the human format file:line:col: check: message.
func TestLintTextOutput(t *testing.T) {
	code, out, _ := runMain("lint", lintDirtyPkg)
	if code != ExitError {
		t.Fatalf("exit %d, want %d", code, ExitError)
	}
	if !strings.Contains(out, "bad.go:12:2: exitcodes: os.Exit in library code") {
		t.Errorf("text output drifted:\n%s", out)
	}
}
