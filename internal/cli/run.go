package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/nopfs"
)

// runOptions holds the run command's parsed flags.
type runOptions struct {
	Workers          int
	Epochs           int
	Batch            int
	Samples          int
	SampleKB         int
	StagingMB        int
	RAMMB            int
	SSDMB            int
	PFSMBps          float64
	InterconnectMBps float64
	Fabric           string
	Seed             uint64
	Verify           bool
	Chaos            string
	Access           string
	Resilience       string
	MetricsOut       string
	TraceFetches     string
	CommonFlags
}

// runFlags builds the run command's flag set. -chaos here injects the fault
// profile into the live cluster rather than adding a grid axis, so its help
// deliberately differs from the grid commands' shared wording (the drift
// test allowlists it).
func runFlags(prog string) (*flag.FlagSet, *runOptions) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	o := &runOptions{}
	fs.IntVar(&o.Workers, "workers", 4, "cluster size (one rank per worker)")
	fs.IntVar(&o.Epochs, "epochs", 2, "training epochs")
	fs.IntVar(&o.Batch, "batch", 16, "per-worker mini-batch size")
	fs.IntVar(&o.Samples, "samples", 2000, "dataset size F")
	fs.IntVar(&o.SampleKB, "sample-kb", 16, "mean sample size in KiB")
	fs.IntVar(&o.StagingMB, "staging-mb", 4, "per-worker staging-buffer budget in MiB")
	fs.IntVar(&o.RAMMB, "ram-mb", 16, "per-worker ram cache class capacity in MiB (0 = none)")
	fs.IntVar(&o.SSDMB, "ssd-mb", 0, "per-worker ssd cache class capacity in MiB (0 = none)")
	fs.Float64Var(&o.PFSMBps, "pfs-mbps", 64, "shared-PFS aggregate bandwidth in MB/s (0 = unlimited)")
	fs.Float64Var(&o.InterconnectMBps, "interconnect-mbps", 0, "fabric bandwidth in MB/s (0 = unlimited)")
	fs.StringVar(&o.Fabric, "fabric", nopfs.FabricChan, "cluster fabric: chan (in-process) or tcp (loopback sockets)")
	fs.Uint64Var(&o.Seed, "seed", 42, seedHelp)
	fs.BoolVar(&o.Verify, "verify", false, "CRC-check every delivered sample payload")
	fs.StringVar(&o.Chaos, "chaos", "", "fault profile injected into the live run: a preset or a spec like \"straggler:1x2@1,tier:0x4,drop:0.05\"")
	fs.StringVar(&o.Access, "access", "", "workload access pattern for the live run: a preset or a spec like \"zipf:s=1.1\" or \"elastic:join=1@1,leave=2@2\"")
	fs.StringVar(&o.Resilience, "resilience", "", "fetch-path fault handling: \"none\", \"default\", or a spec like \"retries:3,backoff:1ms..32ms,jitter:0.25,timeout:250ms,breaker:3@50ms\"")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write Prometheus text metrics to FILE after the run (\"-\" = stdout)")
	fs.StringVar(&o.TraceFetches, "trace-fetches", "", "write one line per staged fetch to FILE")
	o.CommonFlags.Register(fs, false)
	return fs, o
}

// RunLive is the `nopfs run` command: an end-to-end in-process training
// cluster through the public nopfs API — the quickstart, parameterised and
// instrumented. It exists so the observability layer is drivable from the
// CLI: metrics and the per-fetch decision trace come from a real run, not
// the simulator.
func RunLive(prog string, args []string, stdout, stderr io.Writer) int {
	fs, o := runFlags(prog)
	return execute(prog, fs, args, stderr, &o.Config, func(ctx context.Context) error {
		if o.Workers < 1 {
			return usagef("-workers must be at least 1, got %d", o.Workers)
		}
		profile, err := chaos.ParseProfile(o.Chaos)
		if err != nil {
			return usageError{err: err}
		}
		resilience, err := nopfs.ParseResilience(o.Resilience)
		if err != nil {
			return usageError{err: err}
		}
		if _, err := access.CanonicalSpec(o.Access); err != nil {
			return usageError{err: err}
		}
		ds, err := dataset.Cached(dataset.Spec{
			Name: "live", F: o.Samples, MeanSize: int64(o.SampleKB) << 10,
			StddevSize: int64(o.SampleKB) << 8, Classes: 10, Seed: o.Seed,
		})
		if err != nil {
			return usageError{err: err}
		}

		var classes []nopfs.Class
		if o.RAMMB > 0 {
			classes = append(classes, nopfs.Class{Name: "ram", CapacityBytes: int64(o.RAMMB) << 20, Threads: 2})
		}
		if o.SSDMB > 0 {
			classes = append(classes, nopfs.Class{Name: "ssd", CapacityBytes: int64(o.SSDMB) << 20, Threads: 1})
		}
		reg := nopfs.NewMetricsRegistry()
		opts := nopfs.NewOptions(
			nopfs.WithSeed(o.Seed),
			nopfs.WithEpochs(o.Epochs),
			nopfs.WithBatchPerWorker(o.Batch),
			nopfs.WithStagingBuffer(int64(o.StagingMB)<<20),
			nopfs.WithClasses(classes...),
			nopfs.WithPFSBandwidth(o.PFSMBps),
			nopfs.WithInterconnectBandwidth(o.InterconnectMBps),
			nopfs.WithFabric(o.Fabric),
			nopfs.WithVerifySamples(o.Verify),
			nopfs.WithChaos(profile),
			nopfs.WithAccessPattern(o.Access),
			nopfs.WithResilience(resilience),
			nopfs.WithMetrics(reg),
		)
		var traceFile *os.File
		if o.TraceFetches != "" {
			traceFile, err = os.Create(o.TraceFetches)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			nopfs.WithFetchTrace(traceFile)(&opts)
		}

		stats, err := nopfs.RunCluster(ctx, ds, o.Workers, opts, nopfs.DrainAll(nil))
		if err != nil {
			return err
		}

		fmt.Fprintln(stdout, "rank  delivered  local  remote  pfs   stall     cached")
		for _, s := range stats {
			fmt.Fprintf(stdout, "%4d  %9d  %5d  %6d  %4d  %6.2fs  %6.1f MiB\n",
				s.Rank, s.Delivered,
				s.Fetches[nopfs.SourceLocal], s.Fetches[nopfs.SourceRemote], s.Fetches[nopfs.SourcePFS],
				s.StallSeconds, float64(s.CachedBytes)/(1<<20))
		}
		return dumpMetrics(stdout, reg, o.MetricsOut)
	})
}

// dumpMetrics writes the registry in Prometheus text exposition format to
// dest ("" = skip, "-" = stdout, else a file path).
func dumpMetrics(stdout io.Writer, reg *nopfs.MetricsRegistry, dest string) error {
	switch dest {
	case "":
		return nil
	case "-":
		fmt.Fprintln(stdout)
		return reg.WritePrometheus(stdout)
	default:
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
