package cli

import (
	"context"
	"flag"
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/sim"
)

// simOptions holds the sim command's parsed flags.
type simOptions struct {
	Scenario string
	All      bool
	Sweep    bool
	Ablation bool
	Table1   bool
	ScaleFlags
	EngineFlags
	CommonFlags
}

// simFlags builds the sim command's flag set.
func simFlags(prog string) (*flag.FlagSet, *simOptions) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	o := &simOptions{}
	fs.StringVar(&o.Scenario, "scenario", "", "Fig. 8 panel id (fig8a..fig8f) or dataset name")
	fs.BoolVar(&o.All, "all", false, "run every Fig. 8 panel")
	fs.BoolVar(&o.Sweep, "sweep", false, "run the Fig. 9 environment sweep")
	fs.BoolVar(&o.Ablation, "ablation", false, "run the NoPFS design ablation")
	fs.BoolVar(&o.Table1, "table1", false, "print the Table 1 framework comparison")
	o.ScaleFlags.Register(fs, 0.02, 42, seedHelp)
	o.EngineFlags.Register(fs)
	o.CommonFlags.Register(fs, true)
	return fs, o
}

// RunSim is the `nopfs sim` command: the Fig. 8 policy comparison across
// dataset/storage regimes, the Fig. 9 environment sweep, the NoPFS design
// ablation, and the Table 1 framework summary. All simulation modes execute
// through the concurrent sweep engine.
func RunSim(prog string, args []string, stdout, stderr io.Writer) int {
	fs, o := simFlags(prog)
	return execute(prog, fs, args, stderr, &o.Config, func(ctx context.Context) error {
		if err := o.CheckFormat(); err != nil {
			return err
		}
		profiles, err := o.ChaosProfiles()
		if err != nil {
			return err
		}
		patterns, err := o.AccessPatterns()
		if err != nil {
			return err
		}
		grid, err := simGrid(o, profiles, patterns)
		if err != nil {
			return err
		}
		if o.Table1 && !o.DryRun {
			printTable1(stdout)
			return nil
		}
		if o.DryRun {
			if grid == nil { // -table1: nothing to simulate, print the table
				printTable1(stdout)
				return nil
			}
			return explainGrid(stdout, grid)
		}
		// Profile collectors run for the whole invocation; error paths leave
		// truncated profiles — fine for a diagnostics flag.
		stopProf, err := o.Prof.Start()
		if err != nil {
			return err
		}
		runner := &sim.Runner{Parallel: o.Parallel}
		if o.Sweep {
			if err := runSweep(ctx, stdout, runner, grid, o.Format, profiles, patterns, o.Stream); err != nil {
				return err
			}
		} else if err := emit(ctx, stdout, runner, grid, o.Format, o.Stream); err != nil {
			return err
		}
		return stopProf()
	})
}

// simGrid selects the mode's grid (nil for -table1). Unknown scenarios and a
// missing mode are usage errors — exit 2 with usage, where the legacy binary
// inconsistently exited 1 for a bad -scenario.
func simGrid(o *simOptions, profiles []sweep.ProfileSpec, patterns []sweep.AccessSpec) (*sim.Grid, error) {
	var grid *sim.Grid
	switch {
	case o.Table1:
		return nil, nil
	case o.Sweep:
		grid = sim.Fig9FullGrid(o.Scale, o.Seed, o.Replicas)
	case o.Ablation:
		grid = sim.AblationGrid(o.Scale, o.Seed, o.Replicas)
	case o.All:
		grid = sim.Fig8Grid(o.Scale, o.Seed, o.Replicas)
	case o.Scenario != "":
		s, err := sim.ScenarioByID(o.Scenario)
		if err != nil {
			return nil, usageError{err: err}
		}
		grid = sim.ScenarioGrid(s, o.Scale, o.Seed, o.Replicas)
	default:
		return nil, usagef("no mode selected: use -scenario, -all, -sweep, -ablation, or -table1")
	}
	grid.Profiles = profiles
	grid.Patterns = patterns
	return grid, nil
}

// emit runs the grid and writes it in the requested format. With -stream the
// grid flows through the incremental encoders — identical bytes, but only a
// bounded window of results resident at once.
func emit(ctx context.Context, w io.Writer, runner *sim.Runner, grid *sim.Grid, format string, stream bool) error {
	if stream {
		return runner.RunStream(ctx, grid, aggregatorFor(w, format))
	}
	rep, err := runner.Run(ctx, grid)
	if err != nil {
		return err
	}
	return write(w, rep, format)
}

// aggregatorFor picks the streaming encoder for a format.
func aggregatorFor(w io.Writer, format string) sim.Aggregator {
	switch format {
	case "json":
		return sim.NewJSONAggregator(w)
	case "csv":
		return sim.NewCSVAggregator(w)
	default:
		return sim.NewTextAggregator(w)
	}
}

// write encodes one report.
func write(w io.Writer, rep *sim.Report, format string) error {
	switch format {
	case "json":
		return sim.WriteJSON(w, rep)
	case "csv":
		return sim.WriteCSV(w, rep)
	default:
		return sim.WriteText(w, rep)
	}
}

// runSweep renders the Fig. 9 study: environment grid plus staging
// preliminary as one engine run, so json/csv emit a single document and
// every format honours -replicas. Text mode keeps the legacy RAM × SSD
// matrix, with means when the grid ran multiple seeds per cell; with a
// fault-profile or access-pattern axis — or under -stream, which cannot
// buffer the whole grid — it falls back to the generic per-profile table
// (the matrix has one cell per scenario).
func runSweep(ctx context.Context, w io.Writer, runner *sim.Runner, grid *sim.Grid, format string, profiles []sweep.ProfileSpec, patterns []sweep.AccessSpec, stream bool) error {
	if stream {
		return runner.RunStream(ctx, grid, aggregatorFor(w, format))
	}
	rep, err := runner.Run(ctx, grid)
	if err != nil {
		return err
	}
	if format != "text" || len(profiles) > 0 || len(patterns) > 0 {
		return write(w, rep, format)
	}
	byID := map[string]sim.Summary{}
	for _, s := range rep.Aggregate() {
		byID[s.Scenario] = s
	}
	title := "Fig. 9: ImageNet-22k, NoPFS, 5x compute, 5 GB staging buffer"
	if rep.Replicas > 1 {
		title += fmt.Sprintf(" (mean of %d seeds)", rep.Replicas)
	}
	fmt.Fprintln(w, title)
	rams, ssds := sim.Fig9Axes()
	fmt.Fprintf(w, "exec seconds by RAM (rows) x SSD (cols), GB:\n%8s", "")
	for _, ssd := range ssds {
		fmt.Fprintf(w, "%10d", ssd)
	}
	fmt.Fprintln(w)
	for _, ram := range rams {
		fmt.Fprintf(w, "%8d", ram)
		for _, ssd := range ssds {
			fmt.Fprintf(w, "%10.1f", byID[sim.Fig9CellID(ram, ssd)].Metric(sim.MetricExec).Mean)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nstaging-buffer preliminary (runtime vs staging GB, RAM=32, no SSD):")
	for _, gb := range sim.Fig9StagingSizes() {
		fmt.Fprintf(w, "  %d GB: %.1fs\n", gb, byID[sim.Fig9StagingID(gb)].Metric(sim.MetricExec).Mean)
	}
	return nil
}

// printTable1 reproduces Table 1: the qualitative capabilities of each
// approach.
func printTable1(w io.Writer) {
	type row struct {
		name                                         string
		sysScale, dataScale, fullRand, hwIndep, easy bool
	}
	rows := []row{
		{"Double-buffering (PyTorch)", false, true, true, false, true},
		{"tf.data", false, true, false, false, true},
		{"Data sharding", true, false, false, false, true},
		{"DeepIO", true, false, false, false, true},
		{"LBANN data store", true, false, true, false, false},
		{"Locality-aware loading", true, true, true, false, false},
		{"NoPFS (this work)", true, true, true, true, true},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(w, "%-28s %10s %10s %10s %10s %8s\n",
		"approach", "sys-scale", "data-scale", "full-rand", "hw-indep", "easy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10s %10s %10s %10s %8s\n",
			r.name, mark(r.sysScale), mark(r.dataScale), mark(r.fullRand), mark(r.hwIndep), mark(r.easy))
	}
}
