package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sweep"
	"repro/internal/trainer"
)

// trainOptions holds the train command's parsed flags.
type trainOptions struct {
	Fig  int
	GPUs string
	ScaleFlags
	EngineFlags
	CommonFlags
}

// trainFlags builds the train command's flag set. The group registrations
// give train the same -stream the sim command always had (the flag-drift
// fix); -scale and -seed keep their figure-preset defaults.
func trainFlags(prog string) (*flag.FlagSet, *trainOptions) {
	fs := flag.NewFlagSet(prog, flag.ContinueOnError)
	o := &trainOptions{}
	fs.IntVar(&o.Fig, "fig", 10, "figure to reproduce: 10, 11, 12, 13, 14, 15, or 16")
	fs.StringVar(&o.GPUs, "gpus", "", "comma-separated GPU counts to keep (default: the figure's full axis)")
	o.ScaleFlags.Register(fs, 0.1, 0, seedHelpPre)
	o.EngineFlags.Register(fs)
	o.CommonFlags.Register(fs, true)
	return fs, o
}

// RunTrain is the `nopfs train` command: the paper's real-system evaluation
// (Sec. 7) on the simulated Piz Daint and Lassen machines — scaling studies
// (Figs. 10, 14, 15), epoch-0 behaviour (Fig. 11), NoPFS cache statistics
// (Fig. 12), the batch-size sweep (Fig. 13), and the end-to-end 90-epoch run
// (Fig. 16). Every figure's (machine × loader × GPU count × replica seed)
// grid executes through the concurrent sweep engine, so output is
// bit-identical at any -parallel width.
func RunTrain(prog string, args []string, stdout, stderr io.Writer) int {
	fs, o := trainFlags(prog)
	return execute(prog, fs, args, stderr, &o.Config, func(ctx context.Context) error {
		if err := o.CheckFormat(); err != nil {
			return err
		}
		keep, err := parseGPUs(o.GPUs)
		if err != nil {
			return err
		}
		profiles, err := o.ChaosProfiles()
		if err != nil {
			return err
		}
		patterns, err := o.AccessPatterns()
		if err != nil {
			return err
		}
		c := trainRun{
			ctx:      ctx,
			out:      stdout,
			runner:   &sweep.Runner{Parallel: o.Parallel},
			replicas: o.Replicas,
			format:   o.Format,
			seed:     o.Seed,
			keepGPUs: keep,
			profiles: profiles,
			patterns: patterns,
			stream:   o.Stream,
			dryRun:   o.DryRun,
		}
		if o.DryRun {
			return c.emitFig(o.Fig, o.Scale)
		}
		// Profile collectors run for the whole invocation; error paths leave
		// truncated profiles — fine for a diagnostics flag.
		stopProf, err := o.Prof.Start()
		if err != nil {
			return err
		}
		if err := c.emitFig(o.Fig, o.Scale); err != nil {
			return err
		}
		return stopProf()
	})
}

// trainRun carries the engine and presentation settings shared by every
// figure path.
type trainRun struct {
	ctx      context.Context
	out      io.Writer
	runner   *sweep.Runner
	replicas int
	format   string
	seed     uint64
	keepGPUs []int
	// profiles is the -chaos fault-profile axis (clean + faulted), empty
	// without the flag; patterns is the -access uniform-vs-pattern axis.
	profiles []sweep.ProfileSpec
	patterns []sweep.AccessSpec
	stream   bool
	dryRun   bool
}

// emitFig dispatches one figure. An unknown figure is a usage error (exit 2).
func (c trainRun) emitFig(fig int, scale float64) error {
	switch fig {
	case 10:
		if err := c.emitExperiment("Fig. 10 (left): ResNet-50/ImageNet-1k on Piz Daint", trainer.Fig10PizDaint(scale)); err != nil {
			return err
		}
		return c.emitExperiment("Fig. 10 (right): ResNet-50/ImageNet-1k on Lassen", trainer.Fig10Lassen(scale))
	case 11:
		return c.emitFig11(trainer.Fig10PizDaint(scale))
	case 12:
		return c.emitFig12(trainer.Fig10PizDaint(scale))
	case 13:
		return c.emitFig13(scale)
	case 14:
		return c.emitExperiment("Fig. 14: ResNet-50/ImageNet-22k on Lassen", trainer.Fig14Lassen(scale))
	case 15:
		return c.emitExperiment("Fig. 15: CosmoFlow on Lassen", trainer.Fig15Lassen(scale))
	case 16:
		return c.emitFig16(scale)
	default:
		return usagef("unknown -fig %d: want 10, 11, 12, 13, 14, 15, or 16", fig)
	}
}

// parseGPUs parses the -gpus comma list.
func parseGPUs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, usagef("bad -gpus entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// prep applies the seed override and GPU-count filter to one experiment. A
// filter that matches nothing on the experiment's axis is an error, not a
// silent full-axis run.
func (c trainRun) prep(exp trainer.Experiment) (trainer.Experiment, error) {
	if c.seed != 0 {
		exp.Seed = c.seed
	}
	if len(c.keepGPUs) > 0 {
		var counts []int
		for _, g := range exp.GPUCounts {
			for _, k := range c.keepGPUs {
				if g == k {
					counts = append(counts, g)
					break
				}
			}
		}
		if len(counts) == 0 {
			return exp, usagef("-gpus %v matches none of %s's GPU counts %v",
				c.keepGPUs, exp.Name, exp.GPUCounts)
		}
		exp.GPUCounts = counts
	}
	return exp, nil
}

// trim applies prep to a list of experiments.
func (c trainRun) trim(exps []trainer.Experiment) ([]trainer.Experiment, error) {
	out := make([]trainer.Experiment, len(exps))
	for i, e := range exps {
		var err error
		if out[i], err = c.prep(e); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// run executes one grid through the engine, attaching the -chaos
// clean-vs-faulted profile axis and the -access uniform-vs-pattern axis
// (no-ops without the flags).
func (c trainRun) run(grid *sweep.Grid) (*sweep.Report, error) {
	grid.Profiles = c.profiles
	grid.Patterns = c.patterns
	return c.runner.Run(c.ctx, grid)
}

// runStream executes one grid through the streaming encoders: identical
// bytes to the buffered generic table, bounded residency.
func (c trainRun) runStream(grid *sweep.Grid) error {
	grid.Profiles = c.profiles
	grid.Patterns = c.patterns
	switch c.format {
	case "json":
		return c.runner.RunStream(c.ctx, grid, sweep.NewJSONAggregator(c.out))
	case "csv":
		return c.runner.RunStream(c.ctx, grid, sweep.NewCSVAggregator(c.out))
	default:
		return c.runner.RunStream(c.ctx, grid, sweep.NewTextAggregator(c.out))
	}
}

// explain is the --dry-run path: print the grid's shape and the plan
// analysis of every (experiment, GPU count) scenario under the NoPFS loader
// (the placement-bearing policy — the other loaders share the same access
// plan).
func (c trainRun) explain(grid *sweep.Grid, exps []trainer.Experiment) error {
	grid.Profiles = c.profiles
	grid.Patterns = c.patterns
	explainGridShape(c.out, grid)
	for _, exp := range exps {
		for _, gpus := range exp.GPUCounts {
			cfg, err := exp.Config(gpus, trainer.LoaderNoPFS, exp.Seed)
			if err != nil {
				return err
			}
			id := fmt.Sprintf("%s-g%d", exp.Name, gpus)
			label := fmt.Sprintf("%s, %d GPUs", exp.Name, gpus)
			if err := explainConfig(c.out, id, label, cfg); err != nil {
				return err
			}
		}
	}
	return nil
}

// rowLabel is sweep's shared profile-qualified labelling rule, aliased for
// the bespoke figure tables below.
var rowLabel = sweep.RowLabel

// emitExperiment runs one experiment's grid and writes it in the requested
// format (generic text table, JSON, or CSV).
func (c trainRun) emitExperiment(title string, exp trainer.Experiment) error {
	exp, err := c.prep(exp)
	if err != nil {
		return err
	}
	if c.dryRun {
		return c.explain(exp.Grid(c.replicas), []trainer.Experiment{exp})
	}
	return c.emitGrid(title, exp.Grid(c.replicas))
}

// emitGrid runs and renders a prepared grid.
func (c trainRun) emitGrid(title string, grid *sweep.Grid) error {
	if c.stream {
		if c.format == "text" {
			fmt.Fprintln(c.out, title)
		}
		return c.runStream(grid)
	}
	rep, err := c.run(grid)
	if err != nil {
		return err
	}
	if c.format == "text" {
		fmt.Fprintln(c.out, title)
		return sweep.WriteText(c.out, rep)
	}
	return writeReport(c.out, rep, c.format)
}

// emitBespoke renders a grid whose text mode has a bespoke table. Under
// -stream — which cannot buffer the whole grid — text falls back to the
// generic streaming table, as documented on the flag.
func (c trainRun) emitBespoke(grid *sweep.Grid, text func(rep *sweep.Report)) error {
	if c.stream {
		return c.runStream(grid)
	}
	rep, err := c.run(grid)
	if err != nil {
		return err
	}
	if c.format != "text" {
		return writeReport(c.out, rep, c.format)
	}
	text(rep)
	return nil
}

// emitFig11 renders the epoch-0 batch-time table (cold caches) from the
// Fig. 10 Piz Daint grid's batch0 metrics.
func (c trainRun) emitFig11(exp trainer.Experiment) error {
	exp, err := c.prep(exp)
	if err != nil {
		return err
	}
	if c.dryRun {
		return c.explain(exp.Grid(c.replicas), []trainer.Experiment{exp})
	}
	return c.emitBespoke(exp.Grid(c.replicas), func(rep *sweep.Report) {
		fmt.Fprintln(c.out, "Fig. 11: epoch-0 batch times on Piz Daint")
		fmt.Fprintf(c.out, "%-24s %-14s %12s %12s %12s\n", "scenario", "loader", "median", "p95", "max")
		for _, s := range rep.Aggregate() {
			if s.Failed {
				continue
			}
			fmt.Fprintf(c.out, "%-24s %-14s %11.3fs %11.3fs %11.3fs\n",
				s.Scenario, rowLabel(s.Policy, s.Profile, s.Pattern),
				s.Metric(trainer.MetricBatch0Med).Mean,
				s.Metric(trainer.MetricBatch0P95).Mean,
				s.Metric(trainer.MetricBatch0Max).Mean)
		}
	})
}

// emitFig12 renders NoPFS's stall time and fetch-location mix per scale
// from the Fig. 10 Piz Daint grid.
func (c trainRun) emitFig12(exp trainer.Experiment) error {
	exp, err := c.prep(exp)
	if err != nil {
		return err
	}
	if c.dryRun {
		return c.explain(exp.Grid(c.replicas), []trainer.Experiment{exp})
	}
	return c.emitBespoke(exp.Grid(c.replicas), func(rep *sweep.Report) {
		fmt.Fprintln(c.out, "Fig. 12: NoPFS cache stats on Piz Daint (ImageNet-1k)")
		fmt.Fprintf(c.out, "%-24s %12s %8s %8s %8s\n", "scenario", "stall", "pfs%", "remote%", "local%")
		for _, s := range rep.Aggregate() {
			if s.Policy != "NoPFS" || s.Failed {
				continue
			}
			fmt.Fprintf(c.out, "%-24s %11.2fs %7.1f%% %7.1f%% %7.1f%%\n",
				rowLabel(s.Scenario, s.Profile, s.Pattern),
				s.Metric(trainer.MetricStallS).Mean,
				100*s.Metric(trainer.MetricPFSFrac).Mean,
				100*s.Metric(trainer.MetricRemoteFrac).Mean,
				100*s.Metric(trainer.MetricLocalFrac).Mean)
		}
	})
}

// emitFig13 renders the batch-size sweep. Text mode prints the figure's
// primary statistic — steady-state per-batch times (median/p95/max) per
// batch size; structured modes emit the full grid report.
func (c trainRun) emitFig13(scale float64) error {
	exps, err := c.trim(trainer.Fig13BatchSweep(scale))
	if err != nil {
		return err
	}
	grid, err := trainer.MultiGrid("fig13", exps, c.replicas)
	if err != nil {
		return err
	}
	if c.dryRun {
		return c.explain(grid, exps)
	}
	return c.emitBespoke(grid, func(rep *sweep.Report) {
		fmt.Fprintln(c.out, "Fig. 13: batch-size sweep, ImageNet-1k, 128 Lassen GPUs")
		fmt.Fprintf(c.out, "%-20s %-14s %12s %12s %12s\n", "scenario", "loader", "median", "p95", "max")
		for _, s := range rep.Aggregate() {
			if s.Failed {
				continue
			}
			fmt.Fprintf(c.out, "%-20s %-14s %11.3fs %11.3fs %11.3fs\n",
				s.Scenario, rowLabel(s.Policy, s.Profile, s.Pattern),
				s.Metric(trainer.MetricBatchMedian).Mean,
				s.Metric(trainer.MetricBatchP95).Mean,
				s.Metric(trainer.MetricBatchMax).Mean)
		}
	})
}

// emitFig16 renders the end-to-end accuracy-vs-time comparison. Text mode
// prints replica-0 curves from the cell payloads; structured modes emit the
// grid report.
func (c trainRun) emitFig16(scale float64) error {
	// Fig. 16 is a single-point figure; honour -gpus the same way every
	// other figure does (prep errors on a non-matching filter) rather than
	// silently ignoring it, and carry the seed override and chaos profile
	// into the grid like every other figure.
	exp, err := c.prep(trainer.Fig16Experiment(scale))
	if err != nil {
		return err
	}
	grid := trainer.Fig16GridFrom(exp, c.replicas)
	if c.dryRun {
		return c.explain(grid, []trainer.Experiment{exp})
	}
	return c.emitBespoke(grid, func(rep *sweep.Report) {
		fmt.Fprintln(c.out, "Fig. 16: end-to-end ResNet-50/ImageNet-1k, 256 Lassen GPUs, 90 epochs")
		for _, cell := range rep.Cells {
			if cell.Replica != 0 {
				continue
			}
			r, ok := cell.Outcome.Payload.(trainer.EndToEndResult)
			if !ok || len(r.Curve) == 0 {
				fmt.Fprintf(c.out, "%-14s failed\n", rowLabel(cell.Policy, cell.Profile, cell.Pattern))
				continue
			}
			fmt.Fprintf(c.out, "%-14s total %.1f min, final top-1 %.1f%%\n",
				rowLabel(r.Loader, cell.Profile, cell.Pattern), r.TotalSeconds/60, r.FinalTop1)
			for _, pt := range r.Curve {
				if pt.Epoch%10 == 0 {
					fmt.Fprintf(c.out, "    epoch %2d  t=%8.1fs  top1=%.1f%%\n", pt.Epoch, pt.Seconds, pt.Top1Percent)
				}
			}
		}
	})
}

// writeReport encodes one report.
func writeReport(w io.Writer, rep *sweep.Report, format string) error {
	switch format {
	case "json":
		return sweep.WriteJSON(w, rep)
	case "csv":
		return sweep.WriteCSV(w, rep)
	default:
		return sweep.WriteText(w, rep)
	}
}
