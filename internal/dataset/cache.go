package dataset

import "sync"

// Synthetic datasets are immutable after New and a pure function of their
// Spec, yet every sweep-grid cell used to rebuild its scenario's dataset
// from scratch — F truncated-normal draws per cell. Cached memoises the
// construction per Spec so concurrent cells share one dataset object, the
// same compute-once discipline the plan-artifact cache applies to shuffles.

var (
	cacheMu    sync.Mutex
	cache      = map[Spec]*Synthetic{}
	cacheBytes int64
)

// cacheByteLimit bounds the memo by retained table bytes (each entry holds
// F × 16 bytes of sizes+sizesMB: a paper-scale ImageNet-22k dataset is
// ~230 MB). Real processes use a handful of (preset, scale) specs; the
// bound only guards pathological spec churn — e.g. a sweep materialising
// many distinct paper-scale specs. On overflow the memo is cleared
// wholesale: entries are cheap to rebuild and LRU bookkeeping is not worth
// carrying for a map that normally holds < 10 entries. A variable so tests
// can drive the overflow path without materialising a gigabyte.
var cacheByteLimit int64 = 1 << 30

// entryBytes approximates a dataset's retained memory: the int64 size
// table plus the float64 MB view.
func entryBytes(d *Synthetic) int64 { return int64(d.Len()) * 16 }

// Cached returns the shared immutable dataset for spec, building it once.
// Callers must treat the dataset as read-only, which every Dataset/Store
// consumer already does.
func Cached(spec Spec) (*Synthetic, error) {
	cacheMu.Lock()
	d, ok := cache[spec]
	cacheMu.Unlock()
	if ok {
		return d, nil
	}
	d, err := New(spec)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	if cacheBytes+entryBytes(d) > cacheByteLimit {
		cache = map[Spec]*Synthetic{}
		cacheBytes = 0
	}
	// A racing builder may have inserted first; keep the existing object so
	// every consumer shares one identity.
	if prev, ok := cache[spec]; ok {
		d = prev
	} else {
		cache[spec] = d
		cacheBytes += entryBytes(d)
	}
	cacheMu.Unlock()
	return d, nil
}
