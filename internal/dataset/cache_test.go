package dataset

import (
	"sync"
	"testing"
)

// resetCache empties the Cached memo and restores the byte limit; tests
// that manipulate the shared memo call it on entry and exit so ordering
// (including -shuffle=on) cannot leak state across tests.
func resetCache(limit int64) func() {
	cacheMu.Lock()
	cache = map[Spec]*Synthetic{}
	cacheBytes = 0
	old := cacheByteLimit
	cacheByteLimit = limit
	cacheMu.Unlock()
	return func() {
		cacheMu.Lock()
		cache = map[Spec]*Synthetic{}
		cacheBytes = 0
		cacheByteLimit = old
		cacheMu.Unlock()
	}
}

func cachedSpec(name string, f int, seed uint64) Spec {
	return Spec{Name: name, F: f, MeanSize: 2048, StddevSize: 256, Classes: 4, Seed: seed}
}

// TestCachedSameSpecSharesIdentity: every caller of one spec — including
// concurrent first requesters — gets the same object.
func TestCachedSameSpecSharesIdentity(t *testing.T) {
	defer resetCache(1 << 30)()
	spec := cachedSpec("identity", 512, 1)
	const callers = 16
	got := make([]*Synthetic, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := Cached(spec)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = d
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] != got[0] {
			t.Fatalf("caller %d received a distinct object for the same spec", i)
		}
	}
}

// TestCachedCrossSpecIsolation: specs differing in any single field get
// distinct objects with their own size tables — one spec's dataset must
// never be served for another's, however similar.
func TestCachedCrossSpecIsolation(t *testing.T) {
	defer resetCache(1 << 30)()
	base := cachedSpec("isolation", 256, 7)
	variants := []Spec{base, base, base, base, base, base}
	variants[1].Seed = 8
	variants[2].F = 257
	variants[3].MeanSize = 4096
	variants[4].Classes = 5
	variants[5].Name = "isolation-b"

	objs := make([]*Synthetic, len(variants))
	for i, spec := range variants {
		d, err := Cached(spec)
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = d
	}
	for i := 1; i < len(objs); i++ {
		if objs[i] == objs[0] {
			t.Errorf("variant %d (%+v) shares the base spec's object", i, variants[i])
		}
	}
	// Distinct seeds draw distinct size tables (same F, mean, stddev).
	same := true
	for k := 0; k < objs[0].Len() && k < objs[1].Len(); k++ {
		if objs[0].Size(k) != objs[1].Size(k) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed variant shares the base size table")
	}
	// And re-requesting each variant still hits its own object.
	for i, spec := range variants {
		d, err := Cached(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d != objs[i] {
			t.Errorf("variant %d lost cache identity on re-request", i)
		}
	}
}

// TestCachedOverflowClearsAndRebuilds: pushing the memo past its byte limit
// clears it wholesale; subsequent requests rebuild working datasets.
func TestCachedOverflowClears(t *testing.T) {
	// Each 512-sample entry retains 8 KB; a 20 KB limit holds two.
	defer resetCache(20 << 10)()
	a, err := Cached(cachedSpec("ov-a", 512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Cached(cachedSpec("ov-b", 512, 2)); err != nil {
		t.Fatal(err)
	}
	// Third entry overflows: the memo clears, then admits it.
	c1, err := Cached(cachedSpec("ov-c", 512, 3))
	if err != nil {
		t.Fatal(err)
	}
	// a was dropped with the wholesale clear: a re-request rebuilds an
	// equivalent (but distinct) object...
	a2, err := Cached(cachedSpec("ov-a", 512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a2 == a {
		t.Error("overflow did not clear the memo")
	}
	for k := 0; k < a.Len(); k++ {
		if a.Size(k) != a2.Size(k) {
			t.Fatalf("rebuilt dataset diverges at sample %d", k)
		}
	}
	// ...while entries admitted after the clear keep their identity.
	c2, err := Cached(cachedSpec("ov-c", 512, 3))
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Error("post-clear entry lost identity")
	}
}

// TestCachedRejectsBadSpec: construction errors pass through and poison
// nothing.
func TestCachedRejectsBadSpec(t *testing.T) {
	defer resetCache(1 << 30)()
	if _, err := Cached(Spec{Name: "bad", F: -1}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Cached(cachedSpec("good", 64, 1)); err != nil {
		t.Fatalf("valid spec failed after a bad one: %v", err)
	}
}
