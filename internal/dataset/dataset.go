// Package dataset provides the training datasets NoPFS ingests.
//
// The paper evaluates on MNIST, ImageNet-1k/-22k, OpenImages, and CosmoFlow.
// Those datasets are not redistributable here, so this package synthesises
// stand-ins with the paper's exact sample counts and file-size distributions
// (Sec. 6.1 Table): I/O behaviour depends only on how many samples exist and
// how large each is, both of which are matched. Sample payloads are
// deterministic, self-describing, and integrity-checkable so that every byte
// that flows through the caching hierarchy can be verified end to end.
package dataset

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/prng"
)

// MB is one megabyte in bytes; specs below quote sizes in MB like the paper.
const MB = 1 << 20

// headerSize is the fixed payload prefix: magic(4) id(8) size(8).
const headerSize = 20

// trailerSize is the CRC32 suffix.
const trailerSize = 4

// MinSampleSize is the smallest representable sample: header + trailer.
const MinSampleSize = headerSize + trailerSize

const payloadMagic = 0x4e6f5046 // "NoPF"

// Spec declares a synthetic dataset. Sizes are drawn from a truncated normal
// distribution (the paper's model: "filesizes are assumed to be distributed
// normally and we vary the μ and σ parameters and the number of samples").
type Spec struct {
	Name string
	// F is the number of samples.
	F int
	// MeanSize and StddevSize parameterise the size distribution, in bytes.
	MeanSize   int64
	StddevSize int64
	// Classes is the number of label classes (ImageNet-style layout).
	Classes int
	// Seed drives size generation; independent from the training seed.
	Seed uint64
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	switch {
	case s.F <= 0:
		return errors.New("dataset: spec needs F > 0")
	case s.MeanSize < MinSampleSize:
		return fmt.Errorf("dataset: mean size %d below minimum %d", s.MeanSize, MinSampleSize)
	case s.StddevSize < 0:
		return errors.New("dataset: negative stddev")
	case s.Classes <= 0:
		return errors.New("dataset: spec needs Classes > 0")
	}
	return nil
}

// Scale returns a copy of the spec with the sample count multiplied by
// factor (minimum 1 sample). Used to shrink paper-scale datasets for live
// in-process experiments while preserving the size distribution.
func (s Spec) Scale(factor float64) Spec {
	out := s
	out.F = int(float64(s.F) * factor)
	if out.F < 1 {
		out.F = 1
	}
	out.Name = fmt.Sprintf("%s-x%.4g", s.Name, factor)
	return out
}

// TotalSizeEstimate returns the expected dataset size in bytes (F * mean).
func (s Spec) TotalSizeEstimate() int64 { return int64(s.F) * s.MeanSize }

// Dataset is the metadata view shared by the simulator and the live system.
type Dataset interface {
	// Name identifies the dataset in reports.
	Name() string
	// Len returns the number of samples F.
	Len() int
	// Size returns the size in bytes of sample id.
	Size(id int) int64
	// TotalSize returns the sum of all sample sizes S.
	TotalSize() int64
	// Label returns the class label of sample id.
	Label(id int) int
}

// Store extends Dataset with byte access; the live middleware reads through
// a Store (backed by the simulated PFS), the simulator needs only Dataset.
type Store interface {
	Dataset
	// ReadSample returns the full payload of sample id.
	ReadSample(id int) ([]byte, error)
}

// Synthetic is an in-memory-metadata dataset whose payloads are generated
// on demand: sample bytes are a pure function of (spec seed, id), so no
// storage is needed and any cached copy can be verified.
type Synthetic struct {
	spec    Spec
	sizes   []int64
	sizesMB []float64
	total   int64
	digest  uint64
}

// New builds a Synthetic dataset from spec, materialising the per-sample
// size table, its MB-unit view (shared by every simulator run over this
// dataset), and the size digest consumers use as a cache key.
func New(spec Spec) (*Synthetic, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := prng.New(spec.Seed).Derive(0xDA7A)
	sizes := make([]int64, spec.F)
	sizesMB := make([]float64, spec.F)
	var total int64
	digest := uint64(1469598103934665603) // FNV offset basis
	digest ^= uint64(spec.F)
	digest *= 1099511628211
	for i := range sizes {
		sz := spec.MeanSize
		if spec.StddevSize > 0 {
			sz = spec.MeanSize + int64(g.NormFloat64()*float64(spec.StddevSize))
		}
		if sz < MinSampleSize {
			sz = MinSampleSize
		}
		sizes[i] = sz
		sizesMB[i] = float64(sz) / MB
		total += sz
		digest ^= uint64(sz)
		digest *= 1099511628211
	}
	return &Synthetic{spec: spec, sizes: sizes, sizesMB: sizesMB, total: total, digest: digest}, nil
}

// SizesMB returns the shared per-sample size table in MB. The slice is
// immutable; callers must not modify it.
func (d *Synthetic) SizesMB() []float64 { return d.sizesMB }

// SizeDigest returns an FNV-1a digest of (F, every sample size) — the same
// formula plancache.SizerDigest computes generically — so digest-keyed
// caches resolve it in O(1) instead of re-hashing F sizes per lookup.
func (d *Synthetic) SizeDigest() uint64 { return d.digest }

// MustNew is New but panics on error; for tests and presets known valid.
func MustNew(spec Spec) *Synthetic {
	d, err := New(spec)
	if err != nil {
		panic(err)
	}
	return d
}

// Name implements Dataset.
func (d *Synthetic) Name() string { return d.spec.Name }

// Spec returns the generating spec.
func (d *Synthetic) Spec() Spec { return d.spec }

// Len implements Dataset.
func (d *Synthetic) Len() int { return d.spec.F }

// Size implements Dataset.
func (d *Synthetic) Size(id int) int64 { return d.sizes[id] }

// TotalSize implements Dataset.
func (d *Synthetic) TotalSize() int64 { return d.total }

// Label implements Dataset; labels cycle through the classes.
func (d *Synthetic) Label(id int) int { return id % d.spec.Classes }

// MeanSize returns the empirical mean sample size in bytes.
func (d *Synthetic) MeanSize() float64 {
	return float64(d.total) / float64(d.spec.F)
}

// ReadSample implements Store: it synthesises the deterministic payload for
// sample id. Layout: magic(4) | id(8) | size(8) | body | crc32(4); the body
// is a SplitMix64 keystream seeded by (dataset seed, id).
func (d *Synthetic) ReadSample(id int) ([]byte, error) {
	if id < 0 || id >= d.spec.F {
		return nil, fmt.Errorf("dataset %s: sample %d out of range [0,%d)", d.spec.Name, id, d.spec.F)
	}
	size := d.sizes[id]
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:4], payloadMagic)
	binary.LittleEndian.PutUint64(buf[4:12], uint64(id))
	binary.LittleEndian.PutUint64(buf[12:20], uint64(size))
	fillBody(buf[headerSize:size-trailerSize], d.spec.Seed, uint64(id))
	crc := crc32.ChecksumIEEE(buf[:size-trailerSize])
	binary.LittleEndian.PutUint32(buf[size-trailerSize:], crc)
	return buf, nil
}

// fillBody writes the deterministic keystream for (seed, id) into body.
func fillBody(body []byte, seed, id uint64) {
	sm := prng.NewSplitMix64(seed ^ (id * 0x9e3779b97f4a7c15) ^ 0xC0FFEE)
	i := 0
	for ; i+8 <= len(body); i += 8 {
		binary.LittleEndian.PutUint64(body[i:], sm.Next())
	}
	if i < len(body) {
		var tail [8]byte
		binary.LittleEndian.PutUint64(tail[:], sm.Next())
		copy(body[i:], tail[:len(body)-i])
	}
}

// VerifySample checks that data is the authentic payload of sample id:
// correct magic, id, length, and CRC. Any corruption anywhere in the caching
// hierarchy surfaces here.
func VerifySample(id int, data []byte) error {
	if len(data) < MinSampleSize {
		return fmt.Errorf("dataset: sample %d payload too short (%d bytes)", id, len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != payloadMagic {
		return fmt.Errorf("dataset: sample %d bad magic %#x", id, m)
	}
	if got := binary.LittleEndian.Uint64(data[4:12]); got != uint64(id) {
		return fmt.Errorf("dataset: payload claims sample %d, expected %d", got, id)
	}
	if got := binary.LittleEndian.Uint64(data[12:20]); got != uint64(len(data)) {
		return fmt.Errorf("dataset: sample %d length field %d != payload length %d", id, got, len(data))
	}
	want := binary.LittleEndian.Uint32(data[len(data)-trailerSize:])
	if crc := crc32.ChecksumIEEE(data[:len(data)-trailerSize]); crc != want {
		return fmt.Errorf("dataset: sample %d CRC mismatch (got %#x want %#x)", id, crc, want)
	}
	return nil
}
