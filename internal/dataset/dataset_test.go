package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func smallSpec() Spec {
	return Spec{Name: "test", F: 200, MeanSize: 2048, StddevSize: 512, Classes: 7, Seed: 9}
}

func TestSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Name: "f0", F: 0, MeanSize: 1000, Classes: 1},
		{Name: "tiny", F: 1, MeanSize: 8, Classes: 1},
		{Name: "negsd", F: 1, MeanSize: 1000, StddevSize: -1, Classes: 1},
		{Name: "nocls", F: 1, MeanSize: 1000, Classes: 0},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %q accepted", s.Name)
		}
	}
}

func TestNewRejectsBadSpec(t *testing.T) {
	if _, err := New(Spec{Name: "x", F: 0, MeanSize: 1000, Classes: 1}); err == nil {
		t.Fatal("New accepted invalid spec")
	}
}

func TestSizesDeterministicAndPositive(t *testing.T) {
	a := MustNew(smallSpec())
	b := MustNew(smallSpec())
	if a.TotalSize() != b.TotalSize() {
		t.Fatal("same spec produced different total sizes")
	}
	for i := 0; i < a.Len(); i++ {
		if a.Size(i) != b.Size(i) {
			t.Fatalf("sample %d size differs between builds", i)
		}
		if a.Size(i) < MinSampleSize {
			t.Fatalf("sample %d size %d below minimum", i, a.Size(i))
		}
	}
}

func TestSizeDistributionMoments(t *testing.T) {
	spec := Spec{Name: "dist", F: 20000, MeanSize: 100000, StddevSize: 10000, Classes: 2, Seed: 4}
	d := MustNew(spec)
	var sum, sumSq float64
	for i := 0; i < d.Len(); i++ {
		s := float64(d.Size(i))
		sum += s
		sumSq += s * s
	}
	n := float64(d.Len())
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-100000) > 500 {
		t.Errorf("mean size = %.0f, want ~100000", mean)
	}
	if math.Abs(sd-10000) > 500 {
		t.Errorf("size stddev = %.0f, want ~10000", sd)
	}
}

func TestZeroStddevExactSizes(t *testing.T) {
	d := MustNew(Spec{Name: "fixed", F: 50, MeanSize: 4096, Classes: 5, Seed: 1})
	for i := 0; i < d.Len(); i++ {
		if d.Size(i) != 4096 {
			t.Fatalf("sample %d size %d, want exactly 4096", i, d.Size(i))
		}
	}
	if d.TotalSize() != 50*4096 {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
}

func TestReadSampleRoundTrip(t *testing.T) {
	d := MustNew(smallSpec())
	for _, id := range []int{0, 1, 50, d.Len() - 1} {
		data, err := d.ReadSample(id)
		if err != nil {
			t.Fatalf("ReadSample(%d): %v", id, err)
		}
		if int64(len(data)) != d.Size(id) {
			t.Fatalf("sample %d payload %d bytes, size table says %d", id, len(data), d.Size(id))
		}
		if err := VerifySample(id, data); err != nil {
			t.Fatalf("VerifySample(%d): %v", id, err)
		}
	}
}

func TestReadSampleDeterministic(t *testing.T) {
	d := MustNew(smallSpec())
	a, _ := d.ReadSample(3)
	b, _ := d.ReadSample(3)
	if string(a) != string(b) {
		t.Fatal("same sample produced different payloads")
	}
}

func TestReadSampleOutOfRange(t *testing.T) {
	d := MustNew(smallSpec())
	if _, err := d.ReadSample(-1); err == nil {
		t.Error("ReadSample(-1) succeeded")
	}
	if _, err := d.ReadSample(d.Len()); err == nil {
		t.Error("ReadSample(Len) succeeded")
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	d := MustNew(smallSpec())
	data, _ := d.ReadSample(5)

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip body byte", func(b []byte) []byte { b[25] ^= 1; return b }},
		{"flip header id", func(b []byte) []byte { b[4] ^= 1; return b }},
		{"truncate", func(b []byte) []byte { return b[:len(b)-1] }},
		{"too short", func(b []byte) []byte { return b[:4] }},
		{"flip magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
	} {
		cp := append([]byte(nil), data...)
		if err := VerifySample(5, tc.mutate(cp)); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
	// Wrong id claim.
	if err := VerifySample(6, data); err == nil {
		t.Error("payload for sample 5 verified as sample 6")
	}
}

func TestVerifySampleProperty(t *testing.T) {
	d := MustNew(Spec{Name: "q", F: 64, MeanSize: 600, StddevSize: 200, Classes: 3, Seed: 8})
	f := func(raw uint8) bool {
		id := int(raw) % d.Len()
		data, err := d.ReadSample(id)
		if err != nil {
			return false
		}
		return VerifySample(id, data) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	d := MustNew(smallSpec())
	for i := 0; i < d.Len(); i++ {
		if l := d.Label(i); l != i%7 {
			t.Fatalf("Label(%d) = %d, want %d", i, l, i%7)
		}
	}
}

func TestScale(t *testing.T) {
	s := ImageNet1kSpec().Scale(0.001)
	if s.F != 1281 {
		t.Errorf("scaled F = %d, want 1281", s.F)
	}
	if s.MeanSize != ImageNet1kSpec().MeanSize {
		t.Error("Scale changed the size distribution")
	}
	tiny := ImageNet1kSpec().Scale(0)
	if tiny.F != 1 {
		t.Errorf("Scale(0) F = %d, want clamp to 1", tiny.F)
	}
}

func TestPaperPresetTotals(t *testing.T) {
	// Check the presets land near the paper's quoted dataset sizes.
	cases := []struct {
		spec   Spec
		wantGB float64
		within float64 // relative tolerance
	}{
		{MNISTSpec(), 0.039, 0.15},
		{ImageNet1kSpec(), 135, 0.1},
		{OpenImagesSpec(), 500, 0.1},
		{ImageNet22kSpec(), 1500, 0.1},
		{CosmoFlowSpec(), 4360, 0.1},
		{CosmoFlow512Spec(), 9770, 0.1},
	}
	for _, c := range cases {
		gotGB := float64(c.spec.TotalSizeEstimate()) / (1 << 30)
		if math.Abs(gotGB-c.wantGB)/c.wantGB > c.within {
			t.Errorf("%s: estimated %.1f GB, want ~%.1f GB", c.spec.Name, gotGB, c.wantGB)
		}
	}
}

func TestAllPaperSpecsComplete(t *testing.T) {
	all := AllPaperSpecs()
	for _, name := range []string{"mnist", "imagenet-1k", "openimages", "imagenet-22k", "cosmoflow", "cosmoflow-512"} {
		if _, ok := all[name]; !ok {
			t.Errorf("preset %q missing", name)
		}
	}
	if len(all) != 6 {
		t.Errorf("expected 6 presets, got %d", len(all))
	}
}

func TestMaterializeAndOpenFS(t *testing.T) {
	dir := t.TempDir()
	d := MustNew(Spec{Name: "fs", F: 30, MeanSize: 512, StddevSize: 100, Classes: 4, Seed: 2})
	fsd, err := Materialize(d, dir)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if fsd.Len() != d.Len() || fsd.TotalSize() != d.TotalSize() {
		t.Fatalf("FS metadata mismatch: len %d/%d total %d/%d",
			fsd.Len(), d.Len(), fsd.TotalSize(), d.TotalSize())
	}
	for id := 0; id < d.Len(); id++ {
		want, _ := d.ReadSample(id)
		got, err := fsd.ReadSample(id)
		if err != nil {
			t.Fatalf("fs read %d: %v", id, err)
		}
		if string(got) != string(want) {
			t.Fatalf("sample %d bytes differ on disk", id)
		}
		if err := VerifySample(id, got); err != nil {
			t.Fatalf("fs sample %d: %v", id, err)
		}
		if fsd.Label(id) != d.Label(id) {
			t.Fatalf("label mismatch at %d", id)
		}
	}
	// Reopen from disk.
	re, err := OpenFS(dir)
	if err != nil {
		t.Fatalf("OpenFS: %v", err)
	}
	if re.Name() != "fs" || re.Len() != 30 {
		t.Errorf("reopened dataset: name=%q len=%d", re.Name(), re.Len())
	}
}

func TestOpenFSErrors(t *testing.T) {
	if _, err := OpenFS(t.TempDir()); err == nil {
		t.Error("OpenFS on empty dir succeeded")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644)
	if _, err := OpenFS(dir); err == nil {
		t.Error("OpenFS with corrupt manifest succeeded")
	}
	os.WriteFile(filepath.Join(dir, manifestName), []byte(`{"name":"x","classes":0,"sizes":[1]}`), 0o644)
	if _, err := OpenFS(dir); err == nil {
		t.Error("OpenFS with invalid manifest succeeded")
	}
}

func TestFSReadSampleOutOfRange(t *testing.T) {
	dir := t.TempDir()
	d := MustNew(Spec{Name: "fs2", F: 3, MeanSize: 256, Classes: 1, Seed: 3})
	fsd, err := Materialize(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsd.ReadSample(99); err == nil {
		t.Error("out-of-range fs read succeeded")
	}
}

func BenchmarkReadSample128KB(b *testing.B) {
	d := MustNew(Spec{Name: "bench", F: 16, MeanSize: 128 << 10, Classes: 1, Seed: 1})
	b.SetBytes(128 << 10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.ReadSample(i % 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifySample128KB(b *testing.B) {
	d := MustNew(Spec{Name: "bench", F: 1, MeanSize: 128 << 10, Classes: 1, Seed: 1})
	data, _ := d.ReadSample(0)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := VerifySample(0, data); err != nil {
			b.Fatal(err)
		}
	}
}
