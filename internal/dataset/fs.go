package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// FSDataset is a dataset materialised as one file per sample in the standard
// ImageNet directory layout (one directory per class). It backs the live
// middleware's "data at rest on a PFS" starting state and the filesystem
// storage backend tests.
type FSDataset struct {
	name    string
	root    string
	classes int
	sizes   []int64
	total   int64
}

// manifest is persisted alongside the samples so an FSDataset can be
// reopened without re-statting every file.
type manifest struct {
	Name    string  `json:"name"`
	Classes int     `json:"classes"`
	Sizes   []int64 `json:"sizes"`
}

const manifestName = "nopfs-manifest.json"

// samplePath returns the on-disk location of sample id under root.
func samplePath(root string, classes, id int) string {
	return filepath.Join(root, fmt.Sprintf("class_%04d", id%classes), fmt.Sprintf("sample_%08d.bin", id))
}

// Materialize writes every sample of d into dir and returns the resulting
// FSDataset. dir is created if needed. Intended for scaled-down datasets;
// writing ImageNet-22k would need 1.5 TB of disk.
func Materialize(d *Synthetic, dir string) (*FSDataset, error) {
	spec := d.Spec()
	sizes := make([]int64, d.Len())
	for id := 0; id < d.Len(); id++ {
		data, err := d.ReadSample(id)
		if err != nil {
			return nil, err
		}
		path := samplePath(dir, spec.Classes, id)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, fmt.Errorf("dataset: materialize: %w", err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, fmt.Errorf("dataset: materialize sample %d: %w", id, err)
		}
		sizes[id] = int64(len(data))
	}
	m := manifest{Name: spec.Name, Classes: spec.Classes, Sizes: sizes}
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), raw, 0o644); err != nil {
		return nil, err
	}
	return OpenFS(dir)
}

// OpenFS opens a previously materialised dataset rooted at dir.
func OpenFS(dir string) (*FSDataset, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("dataset: corrupt manifest in %s: %w", dir, err)
	}
	if m.Classes <= 0 || len(m.Sizes) == 0 {
		return nil, fmt.Errorf("dataset: manifest in %s is invalid", dir)
	}
	var total int64
	for _, s := range m.Sizes {
		total += s
	}
	return &FSDataset{name: m.Name, root: dir, classes: m.Classes, sizes: m.Sizes, total: total}, nil
}

// Name implements Dataset.
func (d *FSDataset) Name() string { return d.name }

// Len implements Dataset.
func (d *FSDataset) Len() int { return len(d.sizes) }

// Size implements Dataset.
func (d *FSDataset) Size(id int) int64 { return d.sizes[id] }

// TotalSize implements Dataset.
func (d *FSDataset) TotalSize() int64 { return d.total }

// Label implements Dataset.
func (d *FSDataset) Label(id int) int { return id % d.classes }

// Path returns the on-disk path of sample id.
func (d *FSDataset) Path(id int) string { return samplePath(d.root, d.classes, id) }

// ReadSample implements Store by reading the sample's file.
func (d *FSDataset) ReadSample(id int) ([]byte, error) {
	if id < 0 || id >= len(d.sizes) {
		return nil, fmt.Errorf("dataset %s: sample %d out of range [0,%d)", d.name, id, len(d.sizes))
	}
	data, err := os.ReadFile(d.Path(id))
	if err != nil {
		return nil, fmt.Errorf("dataset %s: read sample %d: %w", d.name, id, err)
	}
	return data, nil
}
