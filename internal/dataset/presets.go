package dataset

// mb converts a size quoted in megabytes to bytes at runtime.
func mb(x float64) int64 { return int64(x * float64(MB)) }

// Paper dataset presets (Sec. 6.1 and Sec. 7). Sizes in bytes; μ and σ are
// the paper's values converted from KB/MB. Building the full-size metadata is
// cheap (a size table), but materialising payloads at full scale is not —
// use Spec.Scale for live experiments.

// MNISTSpec: μ = 0.76 KB, σ = 0, F = 50,000 → ≈40 MB (Fig. 8a).
func MNISTSpec() Spec {
	return Spec{Name: "mnist", F: 50000, MeanSize: 778, StddevSize: 0, Classes: 10, Seed: 0x11}
}

// ImageNet1kSpec: μ = 0.1077 MB, σ = 0.1 MB, F = 1,281,167 → ≈135 GB (Fig. 8b).
func ImageNet1kSpec() Spec {
	return Spec{
		Name: "imagenet-1k", F: 1281167,
		MeanSize: mb(0.1077), StddevSize: mb(0.1),
		Classes: 1000, Seed: 0x12,
	}
}

// OpenImagesSpec: μ = 0.2937 MB, σ = 0.2 MB, F = 1,743,042 → ≈500 GB (Fig. 8c).
func OpenImagesSpec() Spec {
	return Spec{
		Name: "openimages", F: 1743042,
		MeanSize: mb(0.2937), StddevSize: mb(0.2),
		Classes: 600, Seed: 0x13,
	}
}

// ImageNet22kSpec: μ = 0.1077 MB, σ = 0.2 MB, F = 14,197,122 → ≈1.5 TB (Fig. 8d).
func ImageNet22kSpec() Spec {
	return Spec{
		Name: "imagenet-22k", F: 14197122,
		MeanSize: mb(0.1077), StddevSize: mb(0.2),
		Classes: 21841, Seed: 0x14,
	}
}

// CosmoFlowSpec: μ = 17 MB, σ = 0, F = 262,144 → ≈4 TB (Fig. 8e). The
// MLPerf-HPC 128³ samples are 16 MiB of tensor data; the paper's simulator
// uses 17 MB which includes format overhead — we follow the simulator value.
func CosmoFlowSpec() Spec {
	return Spec{
		Name: "cosmoflow", F: 262144,
		MeanSize: 17 * MB, StddevSize: 0,
		Classes: 1, Seed: 0x15,
	}
}

// CosmoFlow512Spec: μ = 1,000 MB, σ = 0, F = 10,000 → ≈10 TB (Fig. 8f).
func CosmoFlow512Spec() Spec {
	return Spec{
		Name: "cosmoflow-512", F: 10000,
		MeanSize: 1000 * MB, StddevSize: 0,
		Classes: 1, Seed: 0x16,
	}
}

// AllPaperSpecs returns every preset used in the paper's evaluation, keyed
// by name, for CLI lookup.
func AllPaperSpecs() map[string]Spec {
	out := map[string]Spec{}
	for _, s := range []Spec{
		MNISTSpec(), ImageNet1kSpec(), OpenImagesSpec(),
		ImageNet22kSpec(), CosmoFlowSpec(), CosmoFlow512Spec(),
	} {
		out[s.Name] = s
	}
	return out
}
