package hwspec

import "math"

// Content digests (FNV-1a over every field, including names and full
// throughput curves) identify a spec for result-memo keys: two configs with
// equal digests produce bit-identical simulations, because every value the
// performance model reads — and every label copied into outputs — is folded
// in. Compare with plancache.NodeDigest, which intentionally hashes only the
// capacities the placement builds consume; memo keys need the whole spec.

const (
	fnvOffset = 1469598103934665603
	fnvPrime  = 1099511628211
)

// digester accumulates FNV-1a words.
type digester uint64

func newDigester() digester { return fnvOffset }

func (d *digester) word(v uint64) {
	h := uint64(*d)
	h ^= v
	h *= fnvPrime
	*d = digester(h)
}

func (d *digester) float(v float64) { d.word(math.Float64bits(v)) }

func (d *digester) str(s string) {
	d.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		d.word(uint64(s[i]))
	}
}

func (d *digester) curve(c ThroughputCurve) {
	d.word(uint64(len(c.Points)))
	for i := range c.Points {
		d.float(c.Points[i])
		d.float(c.MBps[i])
	}
	d.float(c.Cap)
}

func (d *digester) class(c StorageClass) {
	d.str(c.Name)
	d.float(c.CapacityMB)
	d.curve(c.Read)
	d.curve(c.Write)
	d.word(uint64(c.Threads))
}

// Digest returns a content hash of the full system spec.
func (s System) Digest() uint64 {
	d := newDigester()
	d.str(s.Name)
	d.curve(s.PFS.Read)
	d.float(s.PFS.RandomFraction)
	d.class(s.Node.Staging)
	d.word(uint64(len(s.Node.Classes)))
	for _, c := range s.Node.Classes {
		d.class(c)
	}
	d.float(s.Node.InterconnectMBps)
	return uint64(d)
}

// Digest returns a content hash of the full workload spec.
func (w Workload) Digest() uint64 {
	d := newDigester()
	d.str(w.Name)
	d.float(w.ComputeMBps)
	d.float(w.PreprocMBps)
	d.word(uint64(w.BatchPerWorker))
	d.word(uint64(w.Epochs))
	d.word(uint64(w.Workers))
	return uint64(d)
}
