// Package hwspec describes the hardware NoPFS runs on: storage classes with
// capacity and thread-dependent throughput, the parallel filesystem with its
// client-count-dependent aggregate bandwidth t(γ), the interconnect, and
// whole-system presets for the machines in the paper (the Sec. 6.1 small
// cluster, Piz Daint, and Lassen).
//
// All capacities are in MB and all rates in MB/s, matching the paper's
// notation (Table 2). Throughput curves are piecewise linear through the
// measured points with linear-regression extension beyond them, exactly the
// approach the paper's configuration manager takes ("inferred using linear
// regression when the exact value is not available", Sec. 5.2.2).
package hwspec

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// ThroughputCurve maps a load parameter (reader threads for storage classes,
// concurrent clients for the PFS) to aggregate throughput in MB/s.
type ThroughputCurve struct {
	// Points and MBps are parallel slices of measured (load, throughput)
	// knots; Points must be strictly increasing.
	Points []float64
	MBps   []float64
	// Cap, when positive, bounds regression-based extrapolation beyond the
	// last knot — real devices and filesystems saturate. When zero,
	// extrapolation is flat at the last measured value.
	Cap float64
}

// Flat returns a curve that reports the same throughput at any load.
func Flat(mbps float64) ThroughputCurve {
	return ThroughputCurve{Points: []float64{1}, MBps: []float64{mbps}}
}

// Validate reports whether the curve is well-formed.
func (c ThroughputCurve) Validate() error {
	if len(c.Points) == 0 || len(c.Points) != len(c.MBps) {
		return errors.New("hwspec: curve needs matching non-empty knots")
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i] <= c.Points[i-1] {
			return fmt.Errorf("hwspec: curve knots not increasing at %d", i)
		}
	}
	for i, v := range c.MBps {
		if v <= 0 {
			return fmt.Errorf("hwspec: non-positive throughput at knot %d", i)
		}
	}
	return nil
}

// At returns the aggregate throughput at the given load. Within the measured
// range it interpolates linearly; past the last knot it extends the
// least-squares regression line through the knots, clamped to Cap (when set)
// and never below the last measured value's floor at zero slope.
func (c ThroughputCurve) At(load float64) float64 {
	if len(c.Points) == 1 {
		return c.MBps[0]
	}
	last := c.Points[len(c.Points)-1]
	if load <= last {
		return stats.InterpolateMonotone(c.Points, c.MBps, load)
	}
	a, b := stats.LinearRegression(c.Points, c.MBps)
	v := a + b*load
	lastV := c.MBps[len(c.MBps)-1]
	if v < lastV {
		v = lastV // throughput does not drop below the saturated value
	}
	if c.Cap > 0 && v > c.Cap {
		v = c.Cap
	}
	return v
}

// StorageClass describes one level of a worker's storage hierarchy
// (paper: capacity d_j, read/write throughput r_j(p), w_j(p), and the
// prefetch thread count p_j used by NoPFS).
type StorageClass struct {
	Name       string
	CapacityMB float64
	Read       ThroughputCurve
	Write      ThroughputCurve
	// Threads is p_j, the number of prefetcher threads assigned to this
	// class.
	Threads int
}

// Validate reports whether the class is usable.
func (s StorageClass) Validate() error {
	if s.CapacityMB <= 0 {
		return fmt.Errorf("hwspec: class %q needs positive capacity", s.Name)
	}
	if s.Threads <= 0 {
		return fmt.Errorf("hwspec: class %q needs at least one thread", s.Name)
	}
	if err := s.Read.Validate(); err != nil {
		return fmt.Errorf("class %q read: %w", s.Name, err)
	}
	if err := s.Write.Validate(); err != nil {
		return fmt.Errorf("class %q write: %w", s.Name, err)
	}
	return nil
}

// ReadPerThread returns r_j(p_j)/p_j, the per-thread random read bandwidth
// at the configured thread count — the rate one prefetch or serve operation
// proceeds at (paper Sec. 4).
func (s StorageClass) ReadPerThread() float64 {
	return s.Read.At(float64(s.Threads)) / float64(s.Threads)
}

// WritePerThread returns w_j(p_j)/p_j.
func (s StorageClass) WritePerThread() float64 {
	return s.Write.At(float64(s.Threads)) / float64(s.Threads)
}

// PFS describes the shared parallel filesystem: aggregate read throughput
// t(γ) as a function of concurrent clients γ.
type PFS struct {
	Read ThroughputCurve
	// RandomFraction derates the curve for the random small-file reads
	// training performs: published t(γ) figures are streaming (IOR-style)
	// aggregates, while per-sample random reads achieve only a fraction
	// of that on real filesystems. 0 means 1.0 (no derating). The
	// effective per-client share used by the performance model is
	// RandomFraction * t(γ)/γ.
	RandomFraction float64
}

// randomFraction returns the derating factor, defaulting to 1.
func (p PFS) randomFraction() float64 {
	if p.RandomFraction <= 0 {
		return 1
	}
	return p.RandomFraction
}

// Aggregate returns t(γ).
func (p PFS) Aggregate(clients int) float64 {
	if clients < 1 {
		clients = 1
	}
	return p.Read.At(float64(clients))
}

// PerClient returns t(γ)/γ, the share of streaming PFS bandwidth one of γ
// concurrent readers obtains.
func (p PFS) PerClient(clients int) float64 {
	if clients < 1 {
		clients = 1
	}
	return p.Aggregate(clients) / float64(clients)
}

// EffectivePerClient returns the per-client share for random per-sample
// reads: RandomFraction * t(γ)/γ. This is the rate the performance model
// charges PFS fetches at.
func (p PFS) EffectivePerClient(clients int) float64 {
	return p.randomFraction() * p.PerClient(clients)
}

// Node describes the resources available to one worker (one rank). Storage
// classes are ordered fastest first; the staging buffer is class 0 and is
// held separately because it is managed as a consumption window, not a
// cache.
type Node struct {
	Staging StorageClass
	// Classes are the cacheable levels (RAM, SSD, ...), fastest first.
	Classes []StorageClass
	// InterconnectMBps is b_c, the point-to-point bandwidth between two
	// workers.
	InterconnectMBps float64
}

// Validate reports whether the node spec is usable.
func (n Node) Validate() error {
	if err := n.Staging.Validate(); err != nil {
		return err
	}
	for _, c := range n.Classes {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	for i := 1; i < len(n.Classes); i++ {
		if n.Classes[i].ReadPerThread() > n.Classes[i-1].ReadPerThread() {
			return fmt.Errorf("hwspec: classes not ordered fastest-first (%q faster than %q)",
				n.Classes[i].Name, n.Classes[i-1].Name)
		}
	}
	if n.InterconnectMBps <= 0 {
		return errors.New("hwspec: node needs positive interconnect bandwidth")
	}
	return nil
}

// TotalLocalMB returns D, the total cacheable local storage of a worker
// (excluding the staging buffer, per the paper's definition).
func (n Node) TotalLocalMB() float64 {
	var d float64
	for _, c := range n.Classes {
		d += c.CapacityMB
	}
	return d
}

// System couples a PFS with homogeneous worker nodes.
type System struct {
	Name string
	PFS  PFS
	Node Node
}

// Validate reports whether the system spec is usable.
func (s System) Validate() error {
	if err := s.PFS.Read.Validate(); err != nil {
		return fmt.Errorf("system %q pfs: %w", s.Name, err)
	}
	if err := s.Node.Validate(); err != nil {
		return fmt.Errorf("system %q node: %w", s.Name, err)
	}
	return nil
}

// Workload captures the training-side parameters of the performance model:
// compute throughput c, preprocessing rate β (both MB/s), the per-worker
// batch size, epoch count, and worker count.
type Workload struct {
	Name           string
	ComputeMBps    float64 // c
	PreprocMBps    float64 // β
	BatchPerWorker int
	Epochs         int
	Workers        int
}

// Validate reports whether the workload is usable.
func (w Workload) Validate() error {
	switch {
	case w.ComputeMBps <= 0:
		return errors.New("hwspec: workload needs c > 0")
	case w.PreprocMBps <= 0:
		return errors.New("hwspec: workload needs β > 0")
	case w.BatchPerWorker <= 0:
		return errors.New("hwspec: workload needs batch > 0")
	case w.Epochs <= 0:
		return errors.New("hwspec: workload needs epochs > 0")
	case w.Workers <= 0:
		return errors.New("hwspec: workload needs workers > 0")
	}
	return nil
}
