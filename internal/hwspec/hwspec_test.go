package hwspec

import (
	"math"
	"testing"
)

func TestFlatCurve(t *testing.T) {
	c := Flat(500)
	for _, load := range []float64{0.5, 1, 4, 100} {
		if got := c.At(load); got != 500 {
			t.Errorf("Flat(500).At(%v) = %v", load, got)
		}
	}
}

func TestCurveValidate(t *testing.T) {
	good := ThroughputCurve{Points: []float64{1, 2}, MBps: []float64{10, 20}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	bad := []ThroughputCurve{
		{},
		{Points: []float64{1}, MBps: []float64{1, 2}},
		{Points: []float64{2, 1}, MBps: []float64{1, 2}},
		{Points: []float64{1, 2}, MBps: []float64{1, 0}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad curve %d accepted", i)
		}
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := ThroughputCurve{Points: []float64{1, 2, 4, 8}, MBps: []float64{330, 730, 1540, 2870}}
	if got := c.At(1); got != 330 {
		t.Errorf("At(1) = %v", got)
	}
	if got := c.At(3); math.Abs(got-1135) > 1e-9 {
		t.Errorf("At(3) = %v, want 1135", got)
	}
	if got := c.At(0.5); got != 330 {
		t.Errorf("At(0.5) = %v, want clamp to first knot", got)
	}
}

func TestCurveRegressionExtrapolation(t *testing.T) {
	// t(γ) for the Sec. 6.1 PFS grows ~linearly (slope ≈ 363 MB/s/client);
	// the regression extension should continue that growth and the cap
	// should stop it.
	c := ThroughputCurve{
		Points: []float64{1, 2, 4, 8},
		MBps:   []float64{330, 730, 1540, 2870},
		Cap:    5000,
	}
	at16 := c.At(16)
	if at16 <= 2870 {
		t.Errorf("At(16) = %v, expected regression growth beyond last knot", at16)
	}
	if at16 > 6500 {
		t.Errorf("At(16) = %v, implausibly high", at16)
	}
	if got := c.At(1000); got != 5000 {
		t.Errorf("At(1000) = %v, want cap 5000", got)
	}
	// Without a cap, extrapolation is unbounded regression but floors at
	// the last knot.
	noCap := c
	noCap.Cap = 0
	if got := noCap.At(1000); got < 2870 {
		t.Errorf("uncapped At(1000) = %v, below last measured value", got)
	}
}

func TestExtrapolationNeverBelowLastKnot(t *testing.T) {
	// A decreasing curve would regress to negative throughput; the floor
	// must hold it at the last measured value.
	c := ThroughputCurve{Points: []float64{1, 2, 4}, MBps: []float64{1000, 600, 400}}
	if got := c.At(100); got != 400 {
		t.Errorf("At(100) = %v, want floor at 400", got)
	}
}

func TestStorageClassPerThread(t *testing.T) {
	s := StorageClass{
		Name: "ram", CapacityMB: 1000, Threads: 4,
		Read: Flat(85000), Write: Flat(85000),
	}
	if got := s.ReadPerThread(); math.Abs(got-21250) > 1e-9 {
		t.Errorf("ReadPerThread = %v, want 21250", got)
	}
	if got := s.WritePerThread(); math.Abs(got-21250) > 1e-9 {
		t.Errorf("WritePerThread = %v, want 21250", got)
	}
}

func TestPFSPerClient(t *testing.T) {
	p := SmallCluster().PFS
	if got := p.Aggregate(4); got != 1540 {
		t.Errorf("Aggregate(4) = %v, want 1540", got)
	}
	if got := p.PerClient(4); got != 385 {
		t.Errorf("PerClient(4) = %v, want 385", got)
	}
	if got := p.PerClient(0); got != p.PerClient(1) {
		t.Errorf("PerClient(0) should clamp to 1 client")
	}
}

func TestPerClientSaturationDecreases(t *testing.T) {
	// Past the saturation cap, each additional client dilutes everyone:
	// this is the PFS contention NoPFS avoids.
	p := Lassen().PFS
	prev := math.Inf(1)
	for _, clients := range []int{32, 128, 512, 1024} {
		v := p.PerClient(clients)
		if v > prev {
			t.Errorf("PerClient(%d) = %v rose above %v", clients, v, prev)
		}
		prev = v
	}
	if prev > 20 {
		t.Errorf("PerClient(1024) = %v MB/s; contention model too generous", prev)
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, sys := range []System{SmallCluster(), PizDaint(), Lassen()} {
		if err := sys.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", sys.Name, err)
		}
	}
}

func TestSmallClusterMatchesPaper(t *testing.T) {
	s := SmallCluster()
	if s.Node.Staging.CapacityMB != 5000 {
		t.Errorf("staging = %v MB, want 5000", s.Node.Staging.CapacityMB)
	}
	if got := s.Node.TotalLocalMB(); got != 1020000 {
		t.Errorf("D = %v MB, want 1,020,000 (120 GB RAM + 900 GB SSD)", got)
	}
	if s.Node.InterconnectMBps != 24000 {
		t.Errorf("b_c = %v, want 24000", s.Node.InterconnectMBps)
	}
	// r_j(p_j)/p_j from the paper's configuration.
	if got := s.Node.Staging.ReadPerThread(); math.Abs(got-111000.0/8) > 1e-6 {
		t.Errorf("staging per-thread = %v", got)
	}
	if got := s.Node.Classes[0].ReadPerThread(); math.Abs(got-85000.0/4) > 1e-6 {
		t.Errorf("ram per-thread = %v", got)
	}
	if got := s.Node.Classes[1].ReadPerThread(); math.Abs(got-4000.0/2) > 1e-6 {
		t.Errorf("ssd per-thread = %v", got)
	}
}

func TestNodeValidateOrdering(t *testing.T) {
	n := SmallCluster().Node
	n.Classes[0], n.Classes[1] = n.Classes[1], n.Classes[0] // ssd before ram
	if err := n.Validate(); err == nil {
		t.Error("misordered storage classes accepted")
	}
}

func TestNodeValidateErrors(t *testing.T) {
	n := SmallCluster().Node
	n.InterconnectMBps = 0
	if err := n.Validate(); err == nil {
		t.Error("zero interconnect accepted")
	}
	n2 := SmallCluster().Node
	n2.Staging.CapacityMB = 0
	if err := n2.Validate(); err == nil {
		t.Error("zero staging capacity accepted")
	}
	n3 := SmallCluster().Node
	n3.Classes[0].Threads = 0
	if err := n3.Validate(); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Sec61Workload(5)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	fields := []func(*Workload){
		func(w *Workload) { w.ComputeMBps = 0 },
		func(w *Workload) { w.PreprocMBps = 0 },
		func(w *Workload) { w.BatchPerWorker = 0 },
		func(w *Workload) { w.Epochs = 0 },
		func(w *Workload) { w.Workers = 0 },
	}
	for i, mut := range fields {
		w := Sec61Workload(5)
		mut(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("invalid workload %d accepted", i)
		}
	}
}

func TestLassenComputeVsPFSBalance(t *testing.T) {
	// The calibration must put the model in the regime the paper reports:
	// at 32 ranks the PFS per-client share exceeds ResNet-50 compute
	// throughput (no I/O bottleneck), at 1024 it is several times below
	// (PyTorch-style loaders stall hard).
	sys := Lassen()
	c := ResNet50Lassen(1024, 10, 120).ComputeMBps
	if share := sys.PFS.PerClient(32); share < c {
		t.Errorf("32 ranks: PFS share %v < compute %v; small scale should not be I/O bound", share, c)
	}
	share1024 := sys.PFS.PerClient(1024)
	ratio := c / share1024
	if ratio < 3 || ratio > 8 {
		t.Errorf("1024 ranks: compute/PFS ratio %.1f, want 3-8 (paper: ~5.4x gap)", ratio)
	}
}
