package hwspec

// System presets for the machines used in the paper. The Sec. 6.1 small
// cluster is specified exactly by the paper; Piz Daint and Lassen presets
// use the Fig. 1 hardware description plus calibration so that the model's
// compute/PFS balance reproduces the published speedup shapes (the paper's
// absolute throughputs for those systems are not published). Calibration
// rationale is recorded in EXPERIMENTS.md.

// SmallCluster returns the simulated cluster of Sec. 6.1: four dedicated
// nodes, a 5 GB staging buffer (8 threads, 111 GB/s), 120 GB RAM (4 threads,
// 85 GB/s), a 900 GB local SSD (2 threads, 4 GB/s), 24 GB/s interconnect,
// and a PFS measured at t(1)=330, t(2)=730, t(4)=1540, t(8)=2870 MB/s
// (Lassen benchmark values).
//
// The paper does not quote write throughputs; RAM-backed levels are assumed
// write-symmetric and the SSD write rate is set to half its read rate
// (typical for NVMe random writes).
func SmallCluster() System {
	return System{
		Name: "small-cluster",
		PFS: PFS{
			Read: ThroughputCurve{
				Points: []float64{1, 2, 4, 8},
				MBps:   []float64{330, 730, 1540, 2870},
				Cap:    25000,
			},
			// The measured t(γ) values are streaming aggregates; random
			// ~0.1 MB file reads reach only a fraction of that. 0.18 is
			// calibrated so the Fig. 8 policy gaps match the paper's
			// (see EXPERIMENTS.md).
			RandomFraction: 0.18,
		},
		Node: Node{
			Staging: StorageClass{
				Name: "staging", CapacityMB: 5000, Threads: 8,
				Read:  Flat(111000),
				Write: Flat(111000),
			},
			Classes: []StorageClass{
				{
					Name: "ram", CapacityMB: 120000, Threads: 4,
					Read:  Flat(85000),
					Write: Flat(85000),
				},
				{
					Name: "ssd", CapacityMB: 900000, Threads: 2,
					Read:  Flat(4000),
					Write: Flat(2000),
				},
			},
			InterconnectMBps: 24000,
		},
	}
}

// PizDaint returns a per-worker view of Piz Daint (Fig. 1): one rank per
// node (one P100), a 5 GiB staging buffer with 4 prefetch threads and 40 GiB
// of RAM cache with 2 threads (the paper's Sec. 7 configuration), no local
// SSD, and an Aries dragonfly interconnect (~9 GB/s point to point). The
// Lustre PFS uses the measured small-client curve with a 3 GB/s aggregate
// random-read saturation: Piz Daint's shared Lustre delivers far less random
// small-file bandwidth than its streaming peak, and this value reproduces
// the paper's observed 2.2x PyTorch-vs-NoPFS gap at 256 GPUs.
func PizDaint() System {
	return System{
		Name: "piz-daint",
		PFS: PFS{Read: ThroughputCurve{
			Points: []float64{1, 2, 4, 8},
			MBps:   []float64{300, 620, 1250, 2300},
			Cap:    3000,
		}},
		Node: Node{
			Staging: StorageClass{
				Name: "staging", CapacityMB: 5 * 1024, Threads: 4,
				Read:  Flat(60000),
				Write: Flat(60000),
			},
			Classes: []StorageClass{
				{
					Name: "ram", CapacityMB: 40 * 1024, Threads: 2,
					Read:  Flat(40000),
					Write: Flat(40000),
				},
			},
			InterconnectMBps: 9000,
		},
	}
}

// Lassen returns a per-rank view of Lassen (Sierra architecture, Fig. 1):
// four ranks per node (one per V100), each with a 5 GiB staging buffer
// (8 threads), 25 GiB of RAM cache (4 threads), and 300 GiB of the node's
// 1.6 TB NVMe SSD (2 threads) — the paper's Sec. 7 configuration. The
// per-rank share of the node's dual-rail InfiniBand is ~6.25 GB/s, and the
// per-rank share of NVMe random reads ~2 GB/s. The GPFS curve uses the
// measured Sec. 6.1 values with an 18 GB/s aggregate random-read saturation,
// calibrated so the model reproduces the paper's 5.4x PyTorch gap at 1024
// GPUs and its failure to scale past 256.
func Lassen() System {
	const gib = 1024
	return System{
		Name: "lassen",
		PFS: PFS{Read: ThroughputCurve{
			// The first four knots are the measured Sec. 6.1 values; the
			// larger-scale knots encode the progressive flattening of
			// GPFS aggregate random-read bandwidth that makes PyTorch
			// stop scaling past 256 ranks (paper Sec. 7.1): per-client
			// shares of ~125, ~37, and ~16 MB/s at 64, 256, and 1024
			// clients versus ResNet-50's 86 MB/s compute rate.
			Points: []float64{1, 2, 4, 8, 64, 256, 1024},
			MBps:   []float64{330, 730, 1540, 2870, 8000, 9500, 16000},
			Cap:    16000,
		}},
		Node: Node{
			Staging: StorageClass{
				Name: "staging", CapacityMB: 5 * gib, Threads: 8,
				Read:  Flat(50000),
				Write: Flat(50000),
			},
			Classes: []StorageClass{
				{
					Name: "ram", CapacityMB: 25 * gib, Threads: 4,
					Read:  Flat(40000),
					Write: Flat(40000),
				},
				{
					Name: "ssd", CapacityMB: 300 * gib, Threads: 2,
					Read:  Flat(2000),
					Write: Flat(1200),
				},
			},
			InterconnectMBps: 6250,
		},
	}
}

// Workload presets. Compute rates c convert published samples/s throughputs
// into MB/s via the dataset's mean sample size, as the paper prescribes
// (Sec. 4: "if it is known only in terms of samples/second, it can be
// approximated by multiplying this by the average file size").

// Sec61Workload returns the simulator workload of Sec. 6.1: c = 64 MB/s,
// β = 200 MB/s, per-worker batch 32, 4 workers.
func Sec61Workload(epochs int) Workload {
	return Workload{
		Name:        "sec6.1",
		ComputeMBps: 64, PreprocMBps: 200,
		BatchPerWorker: 32, Epochs: epochs, Workers: 4,
	}
}

// ResNet50PizDaint: ~230 images/s on a P100 × 0.1077 MB mean ImageNet file.
func ResNet50PizDaint(workers, epochs, batch int) Workload {
	return Workload{
		Name:        "resnet50-pizdaint",
		ComputeMBps: 24.8, PreprocMBps: 400,
		BatchPerWorker: batch, Epochs: epochs, Workers: workers,
	}
}

// ResNet50Lassen: ~800 images/s on a V100 × 0.1077 MB mean ImageNet file.
func ResNet50Lassen(workers, epochs, batch int) Workload {
	return Workload{
		Name:        "resnet50-lassen",
		ComputeMBps: 86, PreprocMBps: 800,
		BatchPerWorker: batch, Epochs: epochs, Workers: workers,
	}
}

// CosmoFlowLassen: ~6 samples/s on a V100 × 17 MB CosmoFlow sample.
func CosmoFlowLassen(workers, epochs, batch int) Workload {
	return Workload{
		Name:        "cosmoflow-lassen",
		ComputeMBps: 100, PreprocMBps: 1500,
		BatchPerWorker: batch, Epochs: epochs, Workers: workers,
	}
}
