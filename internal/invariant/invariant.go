// Package invariant is the repo's property/metamorphic test harness: the
// laws every simulated (and live) run must obey, stated as reusable checks.
//
// The checks are exported so future scenario work — new policies, new fault
// profiles, new hardware presets — can assert the same laws instead of
// re-deriving ad-hoc expectations. The package's tests drive them over
// randomized plans and fault profiles; they double as the acceptance oracle
// for the chaos layer:
//
//   - Basic laws (CheckResult): stall and exec times are non-negative,
//     stall never exceeds exec, coverage lies in [0, 1], and the per-epoch
//     series sums back to the run's training time.
//   - No-prefetch bound (CheckStallBound): a pipelined policy's stall time
//     cannot exceed the fully synchronous Naive run's execution time — if
//     waiting on the staging buffer cost more than doing all I/O inline,
//     the pipeline would be worse than no pipeline.
//   - Cache monotonicity (CheckNotSlower): enlarging any cache tier never
//     increases epoch time — more capacity means a superset of caching
//     options under the argmin fetch rule.
//   - Fault-removal monotonicity (CheckNotSlower): removing a
//     non-structural fault (stragglers, tier degradation, fabric faults —
//     anything that stretches durations without changing the access
//     schedule) never slows a run. The chaos layer guarantees this by
//     construction: faults perturb durations only, never the policy's
//     source decisions or the γ-estimation feedback.
//   - Determinism: identical grids produce bit-identical encoded reports at
//     any engine pool width, chaos included.
//   - Exactly-once delivery (CheckExactlyOnce): under node crashes the
//     survivors' redistributed streams partition the plan — every scheduled
//     sample round is delivered exactly once, none lost, none duplicated.
//     The same law gates elastic membership schedules: the per-epoch active
//     ranks partition every epoch's order with nothing lost to a join or
//     leave.
//   - Frequency conservation (CheckFrequencyConservation): the plan's
//     access-frequency tables account for every scheduled round — the
//     per-worker tables agree with the all-worker pass and sum to exactly
//     E x EpochLimit accesses, whatever the pattern. The no-prefetch stall
//     bound is frequency-weighted under non-uniform patterns for free: the
//     Naive baseline pays every repeated hot-sample access, so comparing
//     against it weights the bound by the pattern's frequencies.
//   - Mixture conservation (CheckMixConservation): a mix pattern's epoch
//     order is a permutation in which every dataset part contributes
//     exactly its size — the weighted interleaver reorders, never resamples.
//   - Live stall bound (CheckLiveStallBound): a live cluster's measured
//     stall stays inside an order-of-magnitude envelope of the simulator's
//     prediction for the same plan and fault profile.
package invariant

import (
	"fmt"
	"math"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/prng"
	isim "repro/internal/sim"
)

// Tol is the relative tolerance for the monotonicity comparisons: the laws
// hold exactly in the model's real-number semantics, and floating-point
// evaluation tracks it to well below this.
const Tol = 1e-9

// CheckResult verifies the basic laws of one simulated result. Failed
// results (configurations that legitimately cannot run) pass trivially.
func CheckResult(r *isim.Result) error {
	if r.Failed {
		return nil
	}
	switch {
	case r.StallSeconds < 0:
		return fmt.Errorf("invariant: stall %g < 0", r.StallSeconds)
	case r.ExecSeconds < 0 || math.IsNaN(r.ExecSeconds) || math.IsInf(r.ExecSeconds, 0):
		return fmt.Errorf("invariant: exec %g not a finite non-negative time", r.ExecSeconds)
	case r.SetupSeconds < 0:
		return fmt.Errorf("invariant: setup %g < 0", r.SetupSeconds)
	case r.StallSeconds > r.ExecSeconds*(1+Tol):
		return fmt.Errorf("invariant: stall %g exceeds exec %g", r.StallSeconds, r.ExecSeconds)
	case r.Coverage < 0 || r.Coverage > 1+Tol:
		return fmt.Errorf("invariant: coverage %g outside [0, 1]", r.Coverage)
	}
	var epochSum float64
	for i, e := range r.EpochSeconds {
		if e < 0 {
			return fmt.Errorf("invariant: epoch %d duration %g < 0", i, e)
		}
		epochSum += e
	}
	// Epoch durations cover at most the training time (exec minus
	// prestaging setup). One-sided: policies that reorder their stream
	// (LocalityAware) can leave a sub-epoch tail beyond the last boundary.
	training := r.ExecSeconds - r.SetupSeconds
	if epochSum > training*(1+1e-6)+Tol {
		return fmt.Errorf("invariant: epoch sum %g exceeds training time %g", epochSum, training)
	}
	for i, b := range r.BatchSeconds {
		if b < 0 {
			return fmt.Errorf("invariant: batch %d duration %g < 0", i, b)
		}
	}
	return nil
}

// CheckStallBound verifies the no-prefetch bound: the policy's total stall
// time cannot exceed the synchronous no-prefetch run's execution time for
// the same fault-free configuration. The bound is a fault-free law: Naive
// never touches caches or the fabric, so faults targeting those tiers slow
// the compared policy while leaving the bound untouched.
func CheckStallBound(r, noPrefetch *isim.Result) error {
	if r.Failed || noPrefetch.Failed {
		return nil
	}
	if r.StallSeconds > noPrefetch.ExecSeconds*(1+Tol) {
		return fmt.Errorf("invariant: stall %g exceeds the no-prefetch bound %g (%s vs %s)",
			r.StallSeconds, noPrefetch.ExecSeconds, r.Policy, noPrefetch.Policy)
	}
	return nil
}

// SameStreamPolicies lists the policies that consume the plan's true access
// stream end to end. Only for these is LowerBound ("Perfect") an actual
// execution-time lower bound — policies that cycle their cached subset
// (ParallelStaging, opportunistic DeepIO) or reorder and resize the stream
// (LocalityAware) train on different bytes.
func SameStreamPolicies() map[string]bool {
	return map[string]bool{
		isim.NameLowerBound:    true,
		isim.NameNaive:         true,
		isim.NameStagingBuffer: true,
		isim.NameDeepIOOrdered: true,
		isim.NameLBANNDynamic:  true,
		isim.NameLBANNPreload:  true,
		isim.NameNoPFS:         true,
	}
}

// CheckNotSlower verifies the monotonicity laws: the "better" run (larger
// caches, or faults removed) must not be slower than the "worse" one.
func CheckNotSlower(better, worse *isim.Result, law string) error {
	if better.Failed || worse.Failed {
		return nil
	}
	if better.ExecSeconds > worse.ExecSeconds*(1+Tol) {
		return fmt.Errorf("invariant: %s violated: %g > %g (%s)",
			law, better.ExecSeconds, worse.ExecSeconds, better.Policy)
	}
	return nil
}

// CheckExactlyOnce verifies the crash-recovery conservation law: the
// per-rank delivered id sequences, taken together, form exactly the multiset
// of sample rounds in the scheduled streams — nothing lost to the crash,
// nothing delivered twice by the redistribution. The per-rank order is not
// part of this law (checkable separately against the redistributed streams);
// conservation is what must survive any redistribution rule.
func CheckExactlyOnce(delivered [][]int, scheduled [][]access.SampleID) error {
	need := make(map[int]int)
	total := 0
	for _, stream := range scheduled {
		for _, id := range stream {
			need[int(id)]++
			total++
		}
	}
	got := 0
	for rank, ids := range delivered {
		for _, id := range ids {
			if need[id] == 0 {
				return fmt.Errorf("invariant: rank %d delivered sample %d more times than scheduled", rank, id)
			}
			need[id]--
			got++
		}
	}
	if got != total {
		return fmt.Errorf("invariant: delivered %d sample rounds, schedule has %d", got, total)
	}
	return nil
}

// CheckLiveStallBound gates a live run's measured stall time against the
// simulator's prediction for the same plan and fault profile. Live wall
// clocks are noisy and the simulator models datacenter hardware, so this is
// deliberately an order-of-magnitude envelope — slack × the simulated stall
// plus an absolute floor — not a tight band: it catches pathological live
// behaviour (a fetch path hanging on a dead peer for seconds) while staying
// robust to CI machine jitter.
func CheckLiveStallBound(liveSeconds, simSeconds, slack, floorSeconds float64) error {
	if liveSeconds < 0 || math.IsNaN(liveSeconds) {
		return fmt.Errorf("invariant: live stall %g not a non-negative time", liveSeconds)
	}
	bound := simSeconds*slack + floorSeconds
	if liveSeconds > bound {
		return fmt.Errorf("invariant: live stall %gs exceeds sim-predicted bound %gs (sim %gs × %g + %gs floor)",
			liveSeconds, bound, simSeconds, slack, floorSeconds)
	}
	return nil
}

// CheckFrequencyConservation verifies the frequency accounting laws of a
// plan's access pattern: the per-worker frequency tables agree entry for
// entry with the all-worker pass, and the total access count is exactly
// E x EpochLimit — with-replacement patterns (zipf, boost) repeat samples
// but never change the volume, and elastic membership only repartitions it.
func CheckFrequencyConservation(p *access.Plan) error {
	freqs := p.Frequencies()
	var total int64
	for w := range freqs {
		wf := p.WorkerFrequencies(w)
		for i := range wf {
			if wf[i] != freqs[w][i] {
				return fmt.Errorf("invariant: worker %d sample %d frequency %d (per-worker) vs %d (all-worker)",
					w, i, wf[i], freqs[w][i])
			}
			total += int64(wf[i])
		}
	}
	if want := int64(p.E) * int64(p.EpochLimit()); total != want {
		return fmt.Errorf("invariant: pattern %q schedules %d accesses, plan has %d",
			p.Access, total, want)
	}
	return nil
}

// CheckMixConservation verifies a mixture epoch order: it is a permutation
// of the dataset, and each of the K contiguous parts contributes exactly its
// size — the weighted interleaver decides order, never multiplicity.
func CheckMixConservation(order []access.SampleID, f, parts int) error {
	if len(order) != f {
		return fmt.Errorf("invariant: mix order has %d entries, dataset has %d", len(order), f)
	}
	seen := make([]bool, f)
	counts := make([]int, parts)
	for _, id := range order {
		if id < 0 || int(id) >= f {
			return fmt.Errorf("invariant: mix order emits sample %d outside [0,%d)", id, f)
		}
		if seen[id] {
			return fmt.Errorf("invariant: mix order repeats sample %d", id)
		}
		seen[id] = true
		counts[access.MixPart(id, f, parts)]++
	}
	for k := 0; k < parts; k++ {
		want := (k+1)*f/parts - k*f/parts
		if counts[k] != want {
			return fmt.Errorf("invariant: mix part %d contributes %d samples, owns %d", k, counts[k], want)
		}
	}
	return nil
}

// RandomPattern draws a random access-pattern spec for property tests,
// covering every generator kind. Elastic schedules are valid by
// construction (events target existing ranks at epochs 1..E-1, never
// emptying an epoch's active set); they require workers >= 2 and epochs >= 2
// and fall back to a non-structural kind otherwise. Deterministic in the
// generator's state.
func RandomPattern(g *prng.Generator, workers, epochs int) string {
	kind := g.Intn(6)
	if kind == 5 && (workers < 2 || epochs < 2) {
		kind = g.Intn(5)
	}
	switch kind {
	case 0:
		return ""
	case 1:
		spec := fmt.Sprintf("zipf:s=%.2f", 0.8+0.8*g.Float64())
		if g.Float64() < 0.5 {
			spec += fmt.Sprintf(",drift=%.2f", 0.05+0.2*g.Float64())
		}
		return spec
	case 2:
		return fmt.Sprintf("boost:frac=%.2f,factor=%d", 0.05+0.3*g.Float64(), 2+g.Intn(8))
	case 3:
		spec := fmt.Sprintf("curriculum:buckets=%d", 2+g.Intn(5))
		if g.Float64() < 0.3 {
			spec += ",shuffle=off"
		}
		return spec
	case 4:
		parts := make([]string, 2+g.Intn(3))
		for i := range parts {
			parts[i] = fmt.Sprintf("%.2f", 0.1+g.Float64())
		}
		return "mix:w=" + joinSlash(parts)
	default:
		// One membership event keeps every epoch's active set non-empty
		// for workers >= 2; add a second on a distinct rank when room.
		epoch := func() int { return 1 + g.Intn(epochs-1) }
		if g.Float64() < 0.5 {
			spec := fmt.Sprintf("elastic:join=%d@%d", workers-1, epoch())
			if workers >= 3 && g.Float64() < 0.5 {
				spec += fmt.Sprintf(",leave=%d@%d", g.Intn(workers-1), epoch())
			}
			return spec
		}
		return fmt.Sprintf("elastic:leave=%d@%d", g.Intn(workers), epoch())
	}
}

// joinSlash joins mixture weights with the spec grammar's '/' separator.
func joinSlash(parts []string) string {
	out := parts[0]
	for _, p := range parts[1:] {
		out += "/" + p
	}
	return out
}

// RandomProfile draws a random fault profile for property tests: a mix of
// stragglers, tier degradations (including the PFS), and fabric faults,
// plus — when structural is true — node crashes. Deterministic in the
// generator's state.
func RandomProfile(g *prng.Generator, workers, epochs, classes int, structural bool) chaos.Profile {
	p := chaos.Profile{Name: "random"}
	factor := func() float64 { return 1 + 3*g.Float64() }
	epoch := func() int { return g.Intn(epochs) }
	if g.Float64() < 0.7 {
		p.Stragglers = append(p.Stragglers, chaos.Straggler{
			Worker: g.Intn(workers), Factor: factor(), FromEpoch: epoch(),
		})
	}
	if g.Float64() < 0.7 {
		class := chaos.PFSTier
		if classes > 0 && g.Float64() < 0.7 {
			class = g.Intn(classes)
		}
		p.Tiers = append(p.Tiers, chaos.TierDegradation{
			Class: class, Factor: factor(), FromEpoch: epoch(),
		})
	}
	if g.Float64() < 0.7 {
		p.Fabric = chaos.FabricFault{
			LatencySeconds: 0.002 * g.Float64(),
			JitterSeconds:  0.002 * g.Float64(),
			FailRate:       0.3 * g.Float64(),
		}
	}
	if structural && epochs > 1 && workers > 1 && g.Float64() < 0.6 {
		p.Crashes = append(p.Crashes, chaos.Crash{
			Worker: g.Intn(workers), AtEpoch: 1 + g.Intn(epochs-1),
		})
	}
	return p
}
