package invariant

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/prng"
	isim "repro/internal/sim"
	"repro/internal/sweep"
)

var bgCtx = context.Background()

// trialCase is one randomized simulator configuration.
type trialCase struct {
	cfg  isim.Config
	name string
}

// randomCase draws a random plan and environment: dataset size, worker
// count, epochs, batch size, cache capacities, and PFS jitter all vary.
// uniformSizes fixes the sample-size distribution to a constant, which the
// cache-monotonicity trials use (nested greedy placements by construction).
func randomCase(t *testing.T, g *prng.Generator, uniformSizes bool) trialCase {
	t.Helper()
	f := 64 + g.Intn(256)
	workers := 2 + g.Intn(4)
	epochs := 1 + g.Intn(4)
	batch := 2 + g.Intn(7)
	for workers*batch > f {
		batch--
	}
	var stddev int64 = 4 << 10
	if uniformSizes {
		stddev = 0
	}
	spec := dataset.Spec{
		Name: fmt.Sprintf("inv-f%d", f), F: f,
		MeanSize: 16 << 10, StddevSize: stddev,
		Classes: 10, Seed: g.Uint64(),
	}
	ds, err := dataset.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	sys := isim.ScaleSystem(hwspec.SmallCluster(), 0.5e-5*(1+9*g.Float64()))
	jitter := 0.0
	if g.Float64() < 0.4 {
		jitter = 0.5 * g.Float64()
	}
	cfg := isim.Config{
		Sys: sys, Work: hwspec.Workload{
			Name:        "invariant",
			ComputeMBps: 32 + 128*g.Float64(), PreprocMBps: 100 + 200*g.Float64(),
			BatchPerWorker: batch, Epochs: epochs, Workers: workers,
		},
		DS: ds, Seed: g.Uint64(), PFSJitter: jitter, DropLast: g.Float64() < 0.5,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("random config invalid: %v", err)
	}
	return trialCase{cfg: cfg, name: spec.Name}
}

// run simulates one policy, failing the test on engine errors.
func run(t *testing.T, cfg isim.Config, pol isim.Policy) *isim.Result {
	t.Helper()
	r, err := isim.Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSimulatorLaws drives the basic laws and the no-prefetch stall bound
// over randomized plans, with and without randomized fault profiles
// (crashes included — the structural laws must hold under re-planning too).
func TestSimulatorLaws(t *testing.T) {
	g := prng.New(0x1AB5)
	for trial := 0; trial < 20; trial++ {
		tc := randomCase(t, g, false)
		cfg := tc.cfg
		if trial%2 == 1 {
			cfg.Chaos = RandomProfile(g.Derive(uint64(trial)), cfg.Work.Workers, cfg.Work.Epochs,
				len(cfg.Sys.Node.Classes), true)
		}
		naive := run(t, cfg, isim.NewNaive())
		lower := run(t, cfg, isim.NewLowerBound())
		sameStream := SameStreamPolicies()
		for _, pol := range isim.AllPolicies() {
			r := run(t, cfg, pol)
			if err := CheckResult(r); err != nil {
				t.Errorf("trial %d (%s, chaos=%q) %s: %v", trial, tc.name, cfg.Chaos.Label(), r.Policy, err)
			}
			if cfg.Chaos.Empty() {
				// The no-prefetch stall bound is a fault-free law (see
				// CheckStallBound).
				if err := CheckStallBound(r, naive); err != nil {
					t.Errorf("trial %d (%s): %v", trial, tc.name, err)
				}
			}
			if sameStream[r.Policy] {
				if err := CheckNotSlower(lower, r, "lower bound"); err != nil {
					t.Errorf("trial %d (%s, chaos=%q): LowerBound beaten: %v", trial, tc.name, cfg.Chaos.Label(), err)
				}
			}
		}
	}
}

// TestCacheTierMonotonicity verifies that enlarging any cache tier never
// increases execution time: doubling the RAM class, the SSD class, or both
// must leave NoPFS at most as slow, fault-free and under non-structural
// chaos alike. Sample sizes are uniform so greedy placements nest exactly.
func TestCacheTierMonotonicity(t *testing.T) {
	g := prng.New(0xCAC4E)
	enlarge := func(cfg isim.Config, class int, factor float64) isim.Config {
		classes := make([]hwspec.StorageClass, len(cfg.Sys.Node.Classes))
		copy(classes, cfg.Sys.Node.Classes)
		if class < 0 {
			for i := range classes {
				classes[i].CapacityMB *= factor
			}
		} else {
			classes[class].CapacityMB *= factor
		}
		cfg.Sys.Node.Classes = classes
		return cfg
	}
	for trial := 0; trial < 12; trial++ {
		tc := randomCase(t, g, true)
		cfg := tc.cfg
		if trial%2 == 1 {
			cfg.Chaos = RandomProfile(g.Derive(uint64(trial)), cfg.Work.Workers, cfg.Work.Epochs,
				len(cfg.Sys.Node.Classes), false)
		}
		base := run(t, cfg, isim.NewNoPFS())
		for _, class := range []int{0, 1, -1} {
			larger := run(t, enlarge(cfg, class, 2), isim.NewNoPFS())
			if err := CheckNotSlower(larger, base, "cache monotonicity"); err != nil {
				t.Errorf("trial %d (%s, class %d, chaos=%q): %v", trial, tc.name, class, cfg.Chaos.Label(), err)
			}
		}
	}
}

// TestFaultRemovalMonotonicity verifies that removing a non-structural
// fault never slows a run: for every policy, the clean execution is at most
// the faulted one. (Crashes are structural — they change the access
// schedule itself — and are exempt by design.)
func TestFaultRemovalMonotonicity(t *testing.T) {
	g := prng.New(0xFA17)
	for trial := 0; trial < 12; trial++ {
		tc := randomCase(t, g, false)
		clean := tc.cfg
		faulted := clean
		faulted.Chaos = RandomProfile(g.Derive(uint64(trial)), clean.Work.Workers, clean.Work.Epochs,
			len(clean.Sys.Node.Classes), false)
		if faulted.Chaos.Empty() {
			continue
		}
		for _, pol := range isim.AllPolicies() {
			rc := run(t, clean, pol)
			// Policies carry per-run placement state: rebuild a fresh
			// instance for the faulted run.
			fresh, err := isim.PolicyByName(rc.Policy)
			if err != nil {
				t.Fatal(err)
			}
			rf := run(t, faulted, fresh)
			if err := CheckNotSlower(rc, rf, "fault-removal monotonicity"); err != nil {
				t.Errorf("trial %d (%s, chaos=%q): %v", trial, tc.name, faulted.Chaos.Spec(), err)
			}
		}
	}
}

// TestCrashRedistributionKeepsEpochStructure: a crash redistributes the
// crashed worker's plan to the survivors — the simulated worker's later
// epochs absorb extra samples, the epoch count stays E, and the basic laws
// hold.
func TestCrashRedistributionKeepsEpochStructure(t *testing.T) {
	g := prng.New(0xC7A54)
	tc := randomCase(t, g, false)
	cfg := tc.cfg
	cfg.Work.Epochs = 3
	cfg.Work.Workers = 4
	clean := run(t, cfg, isim.NewNoPFS())

	cfg.Chaos = chaos.Profile{Crashes: []chaos.Crash{{Worker: 1, AtEpoch: 1}}}
	crashed := run(t, cfg, isim.NewNoPFS())
	if err := CheckResult(crashed); err != nil {
		t.Fatal(err)
	}
	if len(crashed.EpochSeconds) != len(clean.EpochSeconds) {
		t.Fatalf("crash changed epoch count: %d vs %d", len(crashed.EpochSeconds), len(clean.EpochSeconds))
	}
	// The surviving worker consumes ~1/3 more samples in epochs 1-2; its
	// batches grow accordingly.
	if len(crashed.BatchSeconds) <= len(clean.BatchSeconds) {
		t.Errorf("crash did not grow the survivor's stream: %d vs %d batches",
			len(crashed.BatchSeconds), len(clean.BatchSeconds))
	}
}

// TestDeterminismAcrossPoolWidths encodes a chaos-injected simulator grid
// at pool widths 1 and 8: the reports must be bit-identical, fault profiles
// (crashes and fabric randomness included) notwithstanding.
func TestDeterminismAcrossPoolWidths(t *testing.T) {
	g := prng.New(0xDE7)
	tc := randomCase(t, g, false)
	profile := chaos.Profile{
		Name:       "mixed",
		Stragglers: []chaos.Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
		Tiers:      []chaos.TierDegradation{{Class: 0, Factor: 3}, {Class: chaos.PFSTier, Factor: 2, FromEpoch: 1}},
		Crashes:    []chaos.Crash{{Worker: 2, AtEpoch: 1}},
		Fabric:     chaos.FabricFault{LatencySeconds: 0.001, JitterSeconds: 0.001, FailRate: 0.1},
	}
	grid := func() *sweep.Grid {
		return &sweep.Grid{
			Name: "invariant-determinism",
			Scenarios: []sweep.ScenarioSpec{{
				ID: tc.name,
				Config: func(seed uint64) (isim.Config, error) {
					cfg := tc.cfg
					cfg.Seed = seed
					return cfg, nil
				},
			}},
			Policies: sweep.AllPolicySpecs(),
			Profiles: sweep.ChaosProfiles(chaos.Profile{Name: "clean"}, profile),
			Replicas: 3, BaseSeed: 11,
		}
	}
	encode := func(parallel int) []byte {
		rep, err := (&sweep.Runner{Parallel: parallel}).Run(bgCtx, grid())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sweep.WriteJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, wide := encode(1), encode(8)
	if !bytes.Equal(serial, wide) {
		t.Error("chaos-injected grid reports differ between pool widths 1 and 8")
	}
	if !bytes.Contains(serial, []byte(`"profile": "mixed"`)) {
		t.Error("report missing the profile column")
	}
}
