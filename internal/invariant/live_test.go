package invariant

import (
	"context"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/prng"
	"repro/nopfs"
)

// The live half of the invariant suite: the laws that survive wall-clock
// noise on the channel-fabric path. Live runs are not schedule-deterministic
// in their timing metrics, but delivery is — every worker must receive
// exactly its clairvoyant stream, faults or not, and stalls are never
// negative.

// liveOptions is the invariant tier's standard small cluster.
func liveOptions(seed uint64) nopfs.Options {
	return nopfs.NewOptions(
		nopfs.WithSeed(seed),
		nopfs.WithEpochs(3),
		nopfs.WithBatchPerWorker(4),
		nopfs.WithStagingBuffer(64<<10),
		nopfs.WithStagingThreads(3),
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 256 << 10, Threads: 2}),
		nopfs.WithVerifySamples(true),
	)
}

// runLive executes a chan-fabric cluster and returns per-rank delivered ids
// and stats.
func runLive(t *testing.T, workers, f int, opts nopfs.Options) ([][]int, []nopfs.Stats) {
	t.Helper()
	ds := dataset.MustNew(dataset.Spec{
		Name: "invariant-live", F: f, MeanSize: 2048, StddevSize: 512, Classes: 10, Seed: 5,
	})
	delivered := make([][]int, workers)
	var mu sync.Mutex
	stats, err := nopfs.RunCluster(context.Background(), ds, workers, opts,
		func(ctx context.Context, j *nopfs.Job) error {
			var ids []int
			for s, err := range j.Samples(ctx) {
				if err != nil {
					return err
				}
				ids = append(ids, s.ID)
			}
			mu.Lock()
			delivered[j.Rank()] = ids
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return delivered, stats
}

// checkExactSchedule asserts every rank received its clairvoyant stream.
func checkExactSchedule(t *testing.T, delivered [][]int, f, workers int, opts nopfs.Options) {
	t.Helper()
	plan := &access.Plan{
		Seed: opts.Seed, F: f, N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
	}
	for w := 0; w < workers; w++ {
		want := plan.WorkerStream(w)
		if len(delivered[w]) != len(want) {
			t.Fatalf("rank %d delivered %d samples, want %d", w, len(delivered[w]), len(want))
		}
		for i := range want {
			if delivered[w][i] != int(want[i]) {
				t.Fatalf("rank %d position %d: got %d, want %d", w, i, delivered[w][i], want[i])
			}
		}
	}
}

// TestLiveLawsUnderRandomProfiles drives randomized non-structural fault
// profiles through real chan-fabric clusters: exact schedule delivery and
// non-negative stalls must survive stragglers, degraded tiers, and flaky
// fabrics.
func TestLiveLawsUnderRandomProfiles(t *testing.T) {
	g := prng.New(0x11FE)
	for trial := 0; trial < 4; trial++ {
		const workers, f = 3, 72
		opts := liveOptions(g.Uint64())
		opts.Chaos = RandomProfile(g.Derive(uint64(trial)), workers, opts.Epochs, len(opts.Classes), false)
		// Keep injected fabric delays tiny: this is a correctness tier, not
		// a timing benchmark.
		opts.Chaos.Fabric.LatencySeconds /= 10
		opts.Chaos.Fabric.JitterSeconds /= 10
		delivered, stats := runLive(t, workers, f, opts)
		checkExactSchedule(t, delivered, f, workers, opts)
		for _, s := range stats {
			if s.StallSeconds < 0 {
				t.Errorf("trial %d rank %d: negative stall %g", trial, s.Rank, s.StallSeconds)
			}
			if s.Delivered == 0 {
				t.Errorf("trial %d rank %d: delivered nothing", trial, s.Rank)
			}
		}
	}
}

// TestLiveCrashProfileIsIgnored pins the documented live semantics of
// crashes: they are simulator-only, so a crash-bearing profile behaves like
// the same profile without its crashes — the run completes with exact
// delivery.
func TestLiveCrashProfileIsIgnored(t *testing.T) {
	const workers, f = 3, 48
	opts := liveOptions(99)
	opts.Chaos = nopfs.ChaosProfile{
		Crashes: []chaos.Crash{{Worker: 1, AtEpoch: 1}},
	}
	delivered, _ := runLive(t, workers, f, opts)
	checkExactSchedule(t, delivered, f, workers, opts)
}
