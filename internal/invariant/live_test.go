package invariant

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/prng"
	isim "repro/internal/sim"
	"repro/nopfs"
)

// The live half of the invariant suite: the laws that survive wall-clock
// noise on the channel-fabric path. Live runs are not schedule-deterministic
// in their timing metrics, but delivery is — every worker must receive
// exactly its clairvoyant stream, faults or not, and stalls are never
// negative.

// liveOptions is the invariant tier's standard small cluster.
func liveOptions(seed uint64) nopfs.Options {
	return nopfs.NewOptions(
		nopfs.WithSeed(seed),
		nopfs.WithEpochs(3),
		nopfs.WithBatchPerWorker(4),
		nopfs.WithStagingBuffer(64<<10),
		nopfs.WithStagingThreads(3),
		nopfs.WithClasses(nopfs.Class{Name: "ram", CapacityBytes: 256 << 10, Threads: 2}),
		nopfs.WithVerifySamples(true),
	)
}

// runLive executes a chan-fabric cluster and returns per-rank delivered ids
// and stats.
func runLive(t *testing.T, workers, f int, opts nopfs.Options) ([][]int, []nopfs.Stats) {
	t.Helper()
	ds := dataset.MustNew(dataset.Spec{
		Name: "invariant-live", F: f, MeanSize: 2048, StddevSize: 512, Classes: 10, Seed: 5,
	})
	delivered := make([][]int, workers)
	var mu sync.Mutex
	stats, err := nopfs.RunCluster(context.Background(), ds, workers, opts,
		func(ctx context.Context, j *nopfs.Job) error {
			var ids []int
			for s, err := range j.Samples(ctx) {
				if err != nil {
					return err
				}
				ids = append(ids, s.ID)
			}
			mu.Lock()
			delivered[j.Rank()] = ids
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	return delivered, stats
}

// livePlan derives the access plan a live run follows, pattern included.
func livePlan(t *testing.T, f, workers int, opts nopfs.Options) *access.Plan {
	t.Helper()
	spec, err := access.CanonicalSpec(opts.Access)
	if err != nil {
		t.Fatal(err)
	}
	return &access.Plan{
		Seed: opts.Seed, F: f, N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
		Access: spec,
	}
}

// expectedStreams is the delivery oracle: each rank's clairvoyant stream,
// reshaped by the profile's crash redistribution (a no-op without crashes).
// This is the exact same rule Job and the simulator apply, so live delivery
// must match it position for position.
func expectedStreams(t *testing.T, f, workers int, opts nopfs.Options) [][]access.SampleID {
	t.Helper()
	plan := livePlan(t, f, workers, opts)
	streams := make([][]access.SampleID, workers)
	for w := range streams {
		streams[w] = plan.WorkerStream(w)
	}
	sched := opts.Chaos.Compile(opts.Seed)
	reshaped, _ := sched.SurvivorStreams(workers, opts.Epochs, plan.SamplesPerEpoch,
		func(w int) []access.SampleID { return streams[w] })
	return reshaped
}

// checkExactSchedule asserts every rank received exactly its scheduled
// (possibly crash-redistributed) stream.
func checkExactSchedule(t *testing.T, delivered [][]int, f, workers int, opts nopfs.Options) {
	t.Helper()
	want := expectedStreams(t, f, workers, opts)
	for w := 0; w < workers; w++ {
		if len(delivered[w]) != len(want[w]) {
			t.Fatalf("rank %d delivered %d samples, want %d", w, len(delivered[w]), len(want[w]))
		}
		for i := range want[w] {
			if delivered[w][i] != int(want[w][i]) {
				t.Fatalf("rank %d position %d: got %d, want %d", w, i, delivered[w][i], want[w][i])
			}
		}
	}
}

// goroutinesSettle polls until the goroutine count drops to limit, failing
// after a bounded wait — the leak check for live cluster teardown.
func goroutinesSettle(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), limit)
}

// TestLiveLawsUnderRandomProfiles drives randomized non-structural fault
// profiles through real chan-fabric clusters: exact schedule delivery and
// non-negative stalls must survive stragglers, degraded tiers, and flaky
// fabrics.
func TestLiveLawsUnderRandomProfiles(t *testing.T) {
	g := prng.New(0x11FE)
	for trial := 0; trial < 4; trial++ {
		const workers, f = 3, 72
		opts := liveOptions(g.Uint64())
		opts.Chaos = RandomProfile(g.Derive(uint64(trial)), workers, opts.Epochs, len(opts.Classes), false)
		// Keep injected fabric delays tiny: this is a correctness tier, not
		// a timing benchmark.
		opts.Chaos.Fabric.LatencySeconds /= 10
		opts.Chaos.Fabric.JitterSeconds /= 10
		delivered, stats := runLive(t, workers, f, opts)
		checkExactSchedule(t, delivered, f, workers, opts)
		for _, s := range stats {
			if s.StallSeconds < 0 {
				t.Errorf("trial %d rank %d: negative stall %g", trial, s.Rank, s.StallSeconds)
			}
			if s.Delivered == 0 {
				t.Errorf("trial %d rank %d: delivered nothing", trial, s.Rank)
			}
		}
	}
}

// TestLiveCrashRecovery drives the crash-recovery contract end to end on a
// real chan-fabric cluster: rank 1 crashes after epoch 0, delivers only its
// pre-crash prefix, and goes away (its endpoint closes); the survivors
// absorb its orphaned rounds round-robin by the shared redistribution rule.
// The laws checked:
//
//   - exact per-rank delivery of the redistributed streams;
//   - exactly-once conservation of the whole plan (CheckExactlyOnce);
//   - RedistributedRounds accounting matches the orphan count;
//   - teardown leaks no goroutines despite the mid-run endpoint close;
//   - the live stall stays inside the simulator's predicted envelope for
//     the same profile (CheckLiveStallBound).
func TestLiveCrashRecovery(t *testing.T) {
	before := runtime.NumGoroutine()
	const workers, f = 3, 48
	opts := liveOptions(99)
	opts.Chaos = nopfs.ChaosProfile{
		Name:    "crash",
		Crashes: []chaos.Crash{{Worker: 1, AtEpoch: 1}},
	}
	opts.Resilience = nopfs.DefaultResilience()

	delivered, stats := runLive(t, workers, f, opts)
	checkExactSchedule(t, delivered, f, workers, opts)

	plan := livePlan(t, f, workers, opts)
	planStreams := make([][]access.SampleID, workers)
	for w := range planStreams {
		planStreams[w] = plan.WorkerStream(w)
	}
	if err := CheckExactlyOnce(delivered, planStreams); err != nil {
		t.Error(err)
	}

	// The crashed rank absorbs nothing; the survivors absorb exactly its
	// orphaned rounds between them.
	orphaned := len(planStreams[1]) - len(delivered[1])
	if orphaned <= 0 {
		t.Fatalf("crash at epoch 1 orphaned %d rounds, want > 0", orphaned)
	}
	var absorbed int64
	for _, s := range stats {
		if s.Rank == 1 {
			if s.RedistributedRounds != 0 {
				t.Errorf("crashed rank reports %d redistributed rounds, want 0", s.RedistributedRounds)
			}
			continue
		}
		if s.RedistributedRounds <= 0 {
			t.Errorf("survivor rank %d absorbed %d rounds, want > 0", s.Rank, s.RedistributedRounds)
		}
		absorbed += s.RedistributedRounds
	}
	if absorbed != int64(orphaned) {
		t.Errorf("survivors absorbed %d rounds, crash orphaned %d", absorbed, orphaned)
	}

	// Stall envelope: simulate the same plan and profile and require the
	// live stall to stay within an order-of-magnitude gate of the
	// prediction. The chan fabric on 2 KiB samples is far faster than the
	// simulated datacenter, so this catches hangs, not percentage drift.
	var maxStall float64
	for _, s := range stats {
		if s.StallSeconds > maxStall {
			maxStall = s.StallSeconds
		}
	}
	sim := simStallFor(t, f, workers, opts)
	if err := CheckLiveStallBound(maxStall, sim, 50, 2.0); err != nil {
		t.Error(err)
	}

	// +2 of slack: the runtime may keep a finalizer/timer goroutine warm.
	goroutinesSettle(t, before+2)
}

// simStallFor predicts the stall time of the live configuration's plan and
// chaos profile with the simulator's NoPFS policy.
func simStallFor(t *testing.T, f, workers int, opts nopfs.Options) float64 {
	t.Helper()
	ds := dataset.MustNew(dataset.Spec{
		Name: "invariant-live", F: f, MeanSize: 2048, StddevSize: 512, Classes: 10, Seed: 5,
	})
	cfg := isim.Config{
		Sys: hwspec.SmallCluster(),
		Work: hwspec.Workload{
			Name: "crash-recovery", ComputeMBps: 64, PreprocMBps: 200,
			BatchPerWorker: opts.BatchPerWorker, Epochs: opts.Epochs, Workers: workers,
		},
		DS: ds, Seed: opts.Seed, DropLast: opts.DropLast, Chaos: opts.Chaos,
	}
	spec, err := access.CanonicalSpec(opts.Access)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Access = spec
	pol, err := isim.PolicyByName(isim.NameNoPFS)
	if err != nil {
		t.Fatal(err)
	}
	r, err := isim.Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed {
		t.Fatalf("sim prediction failed: %s", r.FailReason)
	}
	return r.StallSeconds
}

// TestLiveCrashLawsUnderRandomProfiles extends the random-profile law suite
// to structural faults: random profiles that may include node crashes (plus
// stragglers, degraded tiers, and flaky fabrics) must still deliver the
// redistributed streams exactly, conserve the plan exactly once, and tear
// down clean.
func TestLiveCrashLawsUnderRandomProfiles(t *testing.T) {
	g := prng.New(0xC4A5)
	for trial := 0; trial < 3; trial++ {
		const workers, f = 3, 48
		opts := liveOptions(g.Uint64())
		opts.Chaos = RandomProfile(g.Derive(uint64(trial)), workers, opts.Epochs, len(opts.Classes), true)
		opts.Chaos.Fabric.LatencySeconds /= 10
		opts.Chaos.Fabric.JitterSeconds /= 10
		opts.Resilience = nopfs.DefaultResilience()
		delivered, stats := runLive(t, workers, f, opts)
		checkExactSchedule(t, delivered, f, workers, opts)

		plan := livePlan(t, f, workers, opts)
		planStreams := make([][]access.SampleID, workers)
		for w := range planStreams {
			planStreams[w] = plan.WorkerStream(w)
		}
		if err := CheckExactlyOnce(delivered, planStreams); err != nil {
			t.Errorf("trial %d: %v", trial, err)
		}
		for _, s := range stats {
			if s.StallSeconds < 0 {
				t.Errorf("trial %d rank %d: negative stall %g", trial, s.Rank, s.StallSeconds)
			}
		}
	}
}

// TestLivePatternAgreement is the sim-vs-live agreement law for access
// patterns: a live chan-fabric cluster running a non-uniform workload must
// deliver exactly the pattern-aware clairvoyant streams the simulator plans
// from — same spec, same seed, position for position — and its measured
// stall must stay inside the simulator's predicted envelope for the same
// pattern. Permutation patterns additionally conserve the plan exactly
// once; elastic schedules conserve it across the membership windows.
func TestLivePatternAgreement(t *testing.T) {
	before := runtime.NumGoroutine()
	const workers, f = 3, 48
	patterns := []struct {
		name, spec string
	}{
		{"zipf", "zipf:s=1.1"},
		{"hot-set", "boost:frac=0.1,factor=8"},
		{"curriculum", "curriculum:buckets=3"},
		{"mix", "mix:w=0.5/0.3/0.2"},
		{"elastic", "elastic:join=2@1,leave=0@2"},
	}
	for _, tc := range patterns {
		t.Run(tc.name, func(t *testing.T) {
			opts := liveOptions(7)
			opts.Access = tc.spec
			delivered, stats := runLive(t, workers, f, opts)
			checkExactSchedule(t, delivered, f, workers, opts)

			plan := livePlan(t, f, workers, opts)
			planStreams := make([][]access.SampleID, workers)
			for w := range planStreams {
				planStreams[w] = plan.WorkerStream(w)
			}
			if err := CheckExactlyOnce(delivered, planStreams); err != nil {
				t.Error(err)
			}
			if err := CheckFrequencyConservation(plan); err != nil {
				t.Error(err)
			}

			var maxStall float64
			for _, s := range stats {
				if s.StallSeconds < 0 {
					t.Errorf("rank %d: negative stall %g", s.Rank, s.StallSeconds)
				}
				if s.StallSeconds > maxStall {
					maxStall = s.StallSeconds
				}
			}
			sim := simStallFor(t, f, workers, opts)
			if err := CheckLiveStallBound(maxStall, sim, 50, 2.0); err != nil {
				t.Error(err)
			}
		})
	}
	goroutinesSettle(t, before+2)
}
