package invariant

import (
	"testing"

	"repro/internal/access"
	"repro/internal/prng"
	isim "repro/internal/sim"
)

// The access-pattern half of the invariant suite: the laws every workload
// shape — non-uniform frequencies, curriculum orders, dataset mixtures,
// elastic membership — must obey, driven over randomized {pattern x policy
// x chaos} configurations. The uniform baseline rides along as pattern
// kind 0 of RandomPattern, so every law is also continuously re-proven for
// the classic shuffle.

// patternPlan derives the access plan of a pattern-carrying config.
func patternPlan(cfg isim.Config) *access.Plan {
	return cfg.Plan()
}

// TestPatternChaosSweep is the randomized {pattern x policy x chaos} sweep:
// 25 trials draw a random plan, a random access pattern, and (on odd
// trials) a random fault profile, then drive every policy through the
// simulator and assert the laws:
//
//   - the basic result laws (CheckResult) hold under every pattern;
//   - the frequency-weighted no-prefetch bound holds fault-free: Naive runs
//     the same pattern, so its execution time already integrates the
//     pattern's repeated hot-sample accesses (CheckStallBound);
//   - the plan's frequency accounting conserves the access volume
//     (CheckFrequencyConservation);
//   - mixture epochs conserve each dataset part exactly
//     (CheckMixConservation);
//   - elastic partitions deliver every scheduled round exactly once across
//     the per-epoch active sets (CheckExactlyOnce).
//
// Structural chaos (crashes) is drawn only for non-elastic patterns — the
// combination is rejected by config validation, and the sweep asserts that
// rejection once below.
func TestPatternChaosSweep(t *testing.T) {
	g := prng.New(0xACCE55)
	for trial := 0; trial < 25; trial++ {
		tc := randomCase(t, g, false)
		cfg := tc.cfg
		raw := RandomPattern(g.Derive(uint64(trial)), cfg.Work.Workers, cfg.Work.Epochs)
		spec, err := access.CanonicalSpec(raw)
		if err != nil {
			t.Fatalf("trial %d: RandomPattern emitted invalid spec %q: %v", trial, raw, err)
		}
		cfg.Access = spec
		pat, err := access.ParseAccessSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if trial%2 == 1 {
			cfg.Chaos = RandomProfile(g.Derive(uint64(100+trial)), cfg.Work.Workers, cfg.Work.Epochs,
				len(cfg.Sys.Node.Classes), !pat.Elastic())
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d (pattern %q): config invalid: %v", trial, spec, err)
		}

		plan := patternPlan(cfg)
		if err := CheckFrequencyConservation(plan); err != nil {
			t.Errorf("trial %d (pattern %q): %v", trial, spec, err)
		}
		if pat.Kind == access.KindMix {
			for e := 0; e < plan.E; e++ {
				if err := CheckMixConservation(plan.EpochOrder(e), plan.F, len(pat.Weights)); err != nil {
					t.Errorf("trial %d (pattern %q) epoch %d: %v", trial, spec, e, err)
				}
			}
		}
		if pat.Elastic() {
			streams := plan.AllWorkerStreams()
			delivered := make([][]int, len(streams))
			for w, s := range streams {
				delivered[w] = make([]int, len(s))
				for i, id := range s {
					delivered[w][i] = int(id)
				}
			}
			scheduled := make([][]access.SampleID, plan.E)
			for e := 0; e < plan.E; e++ {
				scheduled[e] = plan.EpochOrder(e)[:plan.EpochLimit()]
			}
			if err := CheckExactlyOnce(delivered, scheduled); err != nil {
				t.Errorf("trial %d (pattern %q): %v", trial, spec, err)
			}
		}

		naive := run(t, cfg, isim.NewNaive())
		for _, pol := range isim.AllPolicies() {
			r := run(t, cfg, pol)
			if err := CheckResult(r); err != nil {
				t.Errorf("trial %d (%s, pattern %q, chaos=%q) %s: %v",
					trial, tc.name, spec, cfg.Chaos.Label(), r.Policy, err)
			}
			if cfg.Chaos.Empty() {
				if err := CheckStallBound(r, naive); err != nil {
					t.Errorf("trial %d (%s, pattern %q): %v", trial, tc.name, spec, err)
				}
			}
		}
	}
}

// TestElasticRejectsStructuralChaos pins the guard the sweep above relies
// on: an elastic membership schedule cannot combine with a crash profile —
// both rewrite the partition, and composing them would break exactly-once.
func TestElasticRejectsStructuralChaos(t *testing.T) {
	g := prng.New(0xE1A5)
	tc := randomCase(t, g, false)
	cfg := tc.cfg
	cfg.Work.Epochs = 3
	cfg.Work.Workers = 3
	cfg.Access = "elastic:leave=1@1"
	cfg.Chaos = RandomProfile(g, cfg.Work.Workers, cfg.Work.Epochs, len(cfg.Sys.Node.Classes), true)
	for cfg.Chaos.Empty() || !cfg.Chaos.Structural() {
		cfg.Chaos = RandomProfile(g, cfg.Work.Workers, cfg.Work.Epochs, len(cfg.Sys.Node.Classes), true)
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("elastic pattern + crash profile validated; want rejection")
	}
}
