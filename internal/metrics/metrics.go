// Package metrics is a dependency-free instrumentation layer for the live
// middleware: counters, gauges, and histograms collected in a Registry and
// rendered in the Prometheus text exposition format (version 0.0.4).
//
// The package is built for optional instrumentation: every method is safe on
// a nil receiver and does nothing, so production code threads a possibly-nil
// *Registry through its hot paths without guards, and a run without a
// registry executes the exact uninstrumented code path. All metric
// operations are lock-free atomics and safe for concurrent use.
//
// Rendering is deterministic: families sort by name, series by label
// signature, so two registries holding the same values expose byte-identical
// text.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v (negative deltas are ignored: counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addBits(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addBits(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addBits CAS-adds a float64 delta onto atomically stored float bits.
func addBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// DefBuckets are the default histogram bucket upper bounds, in seconds:
// 100 µs to 10 s, the span of one sample fetch on any tier this repo models.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds  []float64 // upper bounds, strictly increasing; +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.buckets) {
		h.buckets[i].Add(1)
	}
	h.count.Add(1)
	addBits(&h.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metric is the series interface the renderer consumes.
type metric interface {
	write(w io.Writer, name, labels string)
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+formatFloat(b)+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="+Inf"`), h.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// mergeLabels splices an extra label into a rendered {...} signature.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// family is one named group of series sharing a type and help string.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]metric
}

// Registry collects metric families. The zero value is ready to use; a nil
// *Registry is a valid no-op sink (every constructor returns nil metrics
// whose operations do nothing).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// family returns (creating if needed) the named family, enforcing one type
// per name.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = map[string]*family{}
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// renderLabels builds the canonical {...} signature (sorted by label name;
// empty for an unlabeled series).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Counter returns the counter series for (name, labels), registering the
// family on first use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "counter")
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := renderLabels(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "gauge")
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := renderLabels(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram series for (name, labels) with the given
// bucket upper bounds (nil means DefBuckets). Bounds must match across calls
// for one name; the first registration wins.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	f := r.family(name, help, "histogram")
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := renderLabels(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...), buckets: make([]atomic.Uint64, len(buckets))}
	f.series[sig] = h
	return h
}

// WritePrometheus renders every family in the text exposition format,
// deterministically ordered (families by name, series by label signature).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			f.series[sig].write(&b, f.name, sig)
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}
