package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoOp pins the off-switch contract: a nil registry hands
// out nil metrics, and every operation on them (and on the registry itself)
// is a safe no-op — instrumented code needs no guards when metrics are off.
func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "help")
	g := r.Gauge("x", "help")
	h := r.Histogram("x_seconds", "help", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics accumulated values")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry rendered %q, err=%v", b.String(), err)
	}
}

// TestCounterGaugeValues covers basic accumulation and series identity: the
// same (name, labels) returns the same series regardless of label order.
func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "h", L("tier", "ram"), L("rank", "0"))
	c.Inc()
	c.Add(2)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	same := r.Counter("hits_total", "h", L("rank", "0"), L("tier", "ram"))
	if same != c {
		t.Error("label order created a distinct series")
	}
	other := r.Counter("hits_total", "h", L("rank", "1"), L("tier", "ram"))
	if other == c {
		t.Error("distinct labels shared a series")
	}
	g := r.Gauge("occupancy", "h")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Errorf("gauge = %v, want 6", got)
	}
}

// TestHistogramBuckets checks cumulative bucket placement and sum/count.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestWritePrometheusFormat pins the exposition text: HELP/TYPE lines,
// label rendering with escaping, and deterministic ordering.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees", L("k", `va"l\ue`)).Add(2)
	r.Gauge("a_bytes", "bytes held").Set(1.5)
	r.Counter("b_total", "bees", L("k", "other")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP a_bytes bytes held\n" +
		"# TYPE a_bytes gauge\n" +
		"a_bytes 1.5\n" +
		"# HELP b_total bees\n" +
		"# TYPE b_total counter\n" +
		"b_total{k=\"other\"} 1\n" +
		"b_total{k=\"va\\\"l\\\\ue\"} 2\n"
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Error("two renders differ")
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run under
// -race this is the metrics layer's race-cleanliness proof, and the final
// totals check that no increment is lost.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("ops_total", "ops", L("src", "a")).Inc()
				r.Gauge("level", "lvl").Add(1)
				r.Histogram("lat_seconds", "lat", nil, L("src", "a")).Observe(0.01)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total", "ops", L("src", "a")).Value(); got != workers*iters {
		t.Errorf("counter = %v, want %d", got, workers*iters)
	}
	if got := r.Gauge("level", "lvl").Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("lat_seconds", "lat", nil, L("src", "a")).Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestTypeMismatchPanics: one name, one type.
func TestTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "h")
	r.Gauge("x_total", "h")
}
