// Package perfmodel implements the training-I/O performance model of
// paper Sec. 4. Every quantity is expressed in the paper's units (MB,
// MB/s, seconds). The model supplies:
//
//   - write_i(k): time to preprocess a sample and place it in the staging
//     buffer, max(s/β, s/(w₀(p₀)/p₀)), with preprocessing and writing
//     pipelined;
//   - fetch times for the three data locations (PFS under γ-client
//     contention, a remote worker's storage class over the interconnect,
//     and a local storage class);
//   - read_i(k) = fetch + write;
//   - source ranking: which available location minimises fetch time.
//
// The discrete-event simulator (internal/sim) and the live middleware's
// fetch planner both consume this package, so the two engines share one
// definition of cost.
package perfmodel

import (
	"fmt"

	"repro/internal/hwspec"
)

// Location identifies where a sample is fetched from.
type Location int

// Fetch locations, fastest typically last.
const (
	// LocPFS reads from the shared parallel filesystem.
	LocPFS Location = iota
	// LocRemote reads from another worker's storage class over the network.
	LocRemote
	// LocLocal reads from a local storage class.
	LocLocal
)

// String returns the location's report label.
func (l Location) String() string {
	switch l {
	case LocPFS:
		return "pfs"
	case LocRemote:
		return "remote"
	case LocLocal:
		return "local"
	default:
		return fmt.Sprintf("location(%d)", int(l))
	}
}

// Model evaluates the Sec. 4 equations for one system and workload.
type Model struct {
	Sys  hwspec.System
	Work hwspec.Workload
}

// New validates and couples a system with a workload.
func New(sys hwspec.System, work hwspec.Workload) (*Model, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := work.Validate(); err != nil {
		return nil, err
	}
	return &Model{Sys: sys, Work: work}, nil
}

// ComputeTime returns s/c, the time the trainer needs to consume sizeMB.
func (m *Model) ComputeTime(sizeMB float64) float64 {
	return sizeMB / m.Work.ComputeMBps
}

// WriteTime returns write_i(k) = max(s/β, s/(w₀(p₀)/p₀)): preprocessing and
// the staging-buffer store are pipelined, so the slower of the two binds.
func (m *Model) WriteTime(sizeMB float64) float64 {
	prep := sizeMB / m.Work.PreprocMBps
	store := sizeMB / m.Sys.Node.Staging.WritePerThread()
	if prep > store {
		return prep
	}
	return store
}

// FetchPFS returns fetch_{i,0,0}(k) = s/(t(γ)/γ): the time to pull sizeMB
// from the PFS while γ−1 other clients are also reading. The per-client
// share is derated by the system's random-read fraction (hwspec.PFS).
func (m *Model) FetchPFS(sizeMB float64, clients int) float64 {
	return sizeMB / m.Sys.PFS.EffectivePerClient(clients)
}

// FetchRemote returns fetch_{i,1,j}(k) = s/min(b_c, r_j(p_j)/p_j): a remote
// read is bounded by the slower of the interconnect and the remote class's
// per-thread read rate. class indexes Node.Classes.
func (m *Model) FetchRemote(sizeMB float64, class int) float64 {
	rate := m.Sys.Node.Classes[class].ReadPerThread()
	if bc := m.Sys.Node.InterconnectMBps; bc < rate {
		rate = bc
	}
	return sizeMB / rate
}

// FetchLocal returns fetch_{i,2,j}(k) = s/(r_j(p_j)/p_j).
func (m *Model) FetchLocal(sizeMB float64, class int) float64 {
	return sizeMB / m.Sys.Node.Classes[class].ReadPerThread()
}

// ReadTime returns read_i(k) = fetch + write for a fetch that takes
// fetchSeconds.
func (m *Model) ReadTime(fetchSeconds, sizeMB float64) float64 {
	return fetchSeconds + m.WriteTime(sizeMB)
}

// Choice is the outcome of source selection for one sample.
type Choice struct {
	Loc Location
	// Class is the storage-class index for local/remote fetches (-1 for PFS).
	Class int
	// Seconds is the fetch time (excluding the staging write).
	Seconds float64
	// Holder is the serving worker's rank for LocRemote fetches (meaningless
	// for other locations). Fault injection uses it to reroute fetches whose
	// holder has crashed.
	Holder int32
}

// Best returns the fastest applicable fetch source for a sample of sizeMB,
// implementing the paper's argmin fetch rule (Fig. 5): localClass and
// remoteClass give the fastest storage class holding the sample locally and
// on some remote worker (−1 when not cached there); clients is the current
// PFS reader count γ. The PFS is always applicable.
func (m *Model) Best(sizeMB float64, localClass, remoteClass, clients int) Choice {
	best := Choice{Loc: LocPFS, Class: -1, Seconds: m.FetchPFS(sizeMB, clients)}
	if remoteClass >= 0 {
		if t := m.FetchRemote(sizeMB, remoteClass); t < best.Seconds {
			best = Choice{Loc: LocRemote, Class: remoteClass, Seconds: t}
		}
	}
	if localClass >= 0 {
		if t := m.FetchLocal(sizeMB, localClass); t < best.Seconds {
			best = Choice{Loc: LocLocal, Class: localClass, Seconds: t}
		}
	}
	return best
}

// WorstCaseTotal returns the paper's worst-case bound on training time,
// t_{i,|R|} = Σ read_i(R_k) / p₀, for a stream of per-sample read times.
func (m *Model) WorstCaseTotal(readSeconds []float64) float64 {
	var sum float64
	for _, r := range readSeconds {
		sum += r
	}
	return sum / float64(m.Sys.Node.Staging.Threads)
}

// LowerBound returns the no-stall execution time for a worker consuming the
// given sample sizes: pure compute, Σ s/c. This is the paper's "Perfect"
// policy and the "No I/O" baseline.
func (m *Model) LowerBound(sizesMB []float64) float64 {
	var total float64
	for _, s := range sizesMB {
		total += s
	}
	return total / m.Work.ComputeMBps
}
