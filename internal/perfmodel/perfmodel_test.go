package perfmodel

import (
	"math"
	"testing"

	"repro/internal/hwspec"
)

func model(t *testing.T) *Model {
	t.Helper()
	m, err := New(hwspec.SmallCluster(), hwspec.Sec61Workload(5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func almost(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b)) }

func TestNewValidates(t *testing.T) {
	bad := hwspec.SmallCluster()
	bad.Node.InterconnectMBps = 0
	if _, err := New(bad, hwspec.Sec61Workload(5)); err == nil {
		t.Error("invalid system accepted")
	}
	w := hwspec.Sec61Workload(5)
	w.ComputeMBps = 0
	if _, err := New(hwspec.SmallCluster(), w); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestComputeTime(t *testing.T) {
	m := model(t)
	// c = 64 MB/s, so 128 MB takes 2 s.
	if got := m.ComputeTime(128); !almost(got, 2) {
		t.Errorf("ComputeTime(128) = %v, want 2", got)
	}
}

func TestWriteTimePipelined(t *testing.T) {
	m := model(t)
	// β = 200 MB/s; staging write per-thread = 111000/8 = 13875 MB/s.
	// Preprocessing dominates: write(1 MB) = 1/200 s.
	if got := m.WriteTime(1); !almost(got, 1.0/200) {
		t.Errorf("WriteTime(1) = %v, want %v", got, 1.0/200)
	}
	// With a very fast β the staging store would dominate.
	m2 := *m
	m2.Work.PreprocMBps = 1e9
	if got := m2.WriteTime(1); !almost(got, 1.0/13875) {
		t.Errorf("store-bound WriteTime(1) = %v, want %v", got, 1.0/13875)
	}
}

func TestFetchPFSContention(t *testing.T) {
	m := model(t)
	// t(4) = 1540 => per-client 385 MB/s streaming; the small cluster's
	// random-read fraction is 0.18, so the effective rate is 69.3 MB/s.
	if got := m.FetchPFS(0.18*385, 4); !almost(got, 1) {
		t.Errorf("FetchPFS(69.3 MB, 4 clients) = %v, want 1 s", got)
	}
	// One client: t(1) = 330 streaming, 59.4 effective.
	if got := m.FetchPFS(0.18*330, 1); !almost(got, 1) {
		t.Errorf("FetchPFS(59.4 MB, 1 client) = %v, want 1 s", got)
	}
	// More clients must never make a single read faster per-client here.
	if m.FetchPFS(100, 8) < m.FetchPFS(100, 4) {
		t.Error("per-client PFS fetch sped up with more contention")
	}
}

func TestFetchRemoteBoundedByInterconnect(t *testing.T) {
	m := model(t)
	// RAM per-thread = 21250 MB/s > b_c = 24000? No: 21250 < 24000, so the
	// class rate binds for class 0.
	if got := m.FetchRemote(21250, 0); !almost(got, 1) {
		t.Errorf("FetchRemote(ram) = %v, want 1 s", got)
	}
	// SSD per-thread = 2000 MB/s binds even more.
	if got := m.FetchRemote(2000, 1); !almost(got, 1) {
		t.Errorf("FetchRemote(ssd) = %v, want 1 s", got)
	}
	// If the interconnect were slower than the class, it must bind.
	m2 := *m
	m2.Sys.Node.InterconnectMBps = 1000
	if got := m2.FetchRemote(1000, 0); !almost(got, 1) {
		t.Errorf("interconnect-bound FetchRemote = %v, want 1 s", got)
	}
}

func TestFetchLocal(t *testing.T) {
	m := model(t)
	if got := m.FetchLocal(21250, 0); !almost(got, 1) {
		t.Errorf("FetchLocal(ram) = %v, want 1 s", got)
	}
	if got := m.FetchLocal(2000, 1); !almost(got, 1) {
		t.Errorf("FetchLocal(ssd) = %v, want 1 s", got)
	}
}

func TestSpeedOrdering(t *testing.T) {
	// For the small cluster the paper's rank ordering must hold:
	// local RAM < remote RAM < local SSD?? No — remote RAM (21250 capped by
	// bc 24000 => 21250) beats local SSD (2000): "reading from remote
	// memory can be faster than reading from a local SSD".
	m := model(t)
	sz := 100.0
	localRAM := m.FetchLocal(sz, 0)
	remoteRAM := m.FetchRemote(sz, 0)
	localSSD := m.FetchLocal(sz, 1)
	pfs := m.FetchPFS(sz, 4)
	if !(localRAM <= remoteRAM && remoteRAM < localSSD && localSSD < pfs) {
		t.Errorf("ordering violated: localRAM=%v remoteRAM=%v localSSD=%v pfs=%v",
			localRAM, remoteRAM, localSSD, pfs)
	}
}

func TestReadTime(t *testing.T) {
	m := model(t)
	fetch := 0.5
	if got := m.ReadTime(fetch, 1); !almost(got, fetch+m.WriteTime(1)) {
		t.Errorf("ReadTime = %v", got)
	}
}

func TestBestSelectsFastest(t *testing.T) {
	m := model(t)
	sz := 10.0

	// Nothing cached: PFS is the only option.
	c := m.Best(sz, -1, -1, 4)
	if c.Loc != LocPFS || c.Class != -1 {
		t.Errorf("uncached Best = %+v, want PFS", c)
	}

	// Cached in local RAM: local wins.
	c = m.Best(sz, 0, -1, 4)
	if c.Loc != LocLocal || c.Class != 0 {
		t.Errorf("local-RAM Best = %+v", c)
	}

	// Cached only on a remote worker's RAM: remote beats PFS.
	c = m.Best(sz, -1, 0, 4)
	if c.Loc != LocRemote {
		t.Errorf("remote-RAM Best = %+v", c)
	}

	// Local SSD vs remote RAM: remote RAM is faster on this cluster.
	c = m.Best(sz, 1, 0, 4)
	if c.Loc != LocRemote || c.Class != 0 {
		t.Errorf("ssd-vs-remote Best = %+v, want remote RAM", c)
	}

	// Local SSD vs PFS under light contention: SSD wins.
	c = m.Best(sz, 1, -1, 4)
	if c.Loc != LocLocal || c.Class != 1 {
		t.Errorf("ssd-vs-pfs Best = %+v, want local SSD", c)
	}
}

func TestBestSecondsConsistent(t *testing.T) {
	m := model(t)
	c := m.Best(7, 1, 0, 8)
	want := m.FetchRemote(7, 0)
	if !almost(c.Seconds, want) {
		t.Errorf("Best.Seconds = %v, want %v", c.Seconds, want)
	}
}

func TestWorstCaseTotal(t *testing.T) {
	m := model(t)
	reads := []float64{1, 2, 3, 4} // 10 s of work over p0 = 8 threads
	if got := m.WorstCaseTotal(reads); !almost(got, 10.0/8) {
		t.Errorf("WorstCaseTotal = %v, want 1.25", got)
	}
}

func TestLowerBound(t *testing.T) {
	m := model(t)
	sizes := []float64{64, 64, 128}
	if got := m.LowerBound(sizes); !almost(got, 4) {
		t.Errorf("LowerBound = %v, want 4 s", got)
	}
}

func TestLocationString(t *testing.T) {
	if LocPFS.String() != "pfs" || LocRemote.String() != "remote" || LocLocal.String() != "local" {
		t.Error("location labels wrong")
	}
	if Location(99).String() == "" {
		t.Error("unknown location should still render")
	}
}

func BenchmarkBest(b *testing.B) {
	m, _ := New(hwspec.SmallCluster(), hwspec.Sec61Workload(5))
	for i := 0; i < b.N; i++ {
		m.Best(0.1, i%3-1, (i+1)%3-1, 4)
	}
}
