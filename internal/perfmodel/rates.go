package perfmodel

// Rates is a Model compiled to constant per-source rates, so the simulator's
// hot loop performs one table load and one division per fetch instead of
// re-interpolating throughput curves for every sample.
//
// Every rate is the exact divisor the corresponding Model method would
// compute — FetchPFS divides by EffectivePerClient(γ), FetchLocal/FetchRemote
// by the class's per-thread rates, WriteTime by min(β, w₀(p₀)/p₀) — so every
// quotient is bit-identical to the uncompiled path. The WriteTime collapse
// relies on correctly-rounded division being monotone in the divisor:
// max(s/a, s/b) == s/min(a, b) holds bitwise for s ≥ 0 and a, b > 0.
type Rates struct {
	m *Model
	// pfs[γ] is RandomFraction·t(γ)/γ for γ in [1, len-1]; index 0 unused.
	pfs []float64
	// local[j] is r_j(p_j)/p_j; remote[j] is min(b_c, r_j(p_j)/p_j).
	local, remote []float64
	// write is min(β, w₀(p₀)/p₀): the single binding divisor of WriteTime.
	write float64
}

// Compile precomputes the model's constant rates for PFS reader counts up to
// maxClients (the worker count: γ never exceeds N and the simulator's other
// PFS callers pass N itself).
func (m *Model) Compile(maxClients int) *Rates {
	if maxClients < 1 {
		maxClients = 1
	}
	r := &Rates{m: m, pfs: make([]float64, maxClients+1)}
	for g := 1; g <= maxClients; g++ {
		r.pfs[g] = m.Sys.PFS.EffectivePerClient(g)
	}
	r.local = make([]float64, len(m.Sys.Node.Classes))
	r.remote = make([]float64, len(m.Sys.Node.Classes))
	for j, cls := range m.Sys.Node.Classes {
		rate := cls.ReadPerThread()
		r.local[j] = rate
		if bc := m.Sys.Node.InterconnectMBps; bc < rate {
			rate = bc
		}
		r.remote[j] = rate
	}
	r.write = m.Work.PreprocMBps
	if store := m.Sys.Node.Staging.WritePerThread(); store < r.write {
		r.write = store
	}
	return r
}

// Model returns the model the rates were compiled from.
func (r *Rates) Model() *Model { return r.m }

// PFSRate returns the effective per-client PFS rate at `clients` readers.
func (r *Rates) PFSRate(clients int) float64 {
	if clients >= 1 && clients < len(r.pfs) {
		return r.pfs[clients]
	}
	return r.m.Sys.PFS.EffectivePerClient(clients)
}

// LocalRate returns class j's per-thread read rate r_j(p_j)/p_j.
func (r *Rates) LocalRate(j int) float64 { return r.local[j] }

// RemoteRate returns min(b_c, r_j(p_j)/p_j) for class j.
func (r *Rates) RemoteRate(j int) float64 { return r.remote[j] }

// WriteRate returns min(β, w₀(p₀)/p₀), WriteTime's binding divisor.
func (r *Rates) WriteRate() float64 { return r.write }

// FetchPFS is Model.FetchPFS through the compiled table.
func (r *Rates) FetchPFS(sizeMB float64, clients int) float64 {
	return sizeMB / r.PFSRate(clients)
}

// FetchRemote is Model.FetchRemote through the compiled table.
func (r *Rates) FetchRemote(sizeMB float64, class int) float64 {
	return sizeMB / r.remote[class]
}

// FetchLocal is Model.FetchLocal through the compiled table.
func (r *Rates) FetchLocal(sizeMB float64, class int) float64 {
	return sizeMB / r.local[class]
}

// WriteTime is Model.WriteTime as a single division (see type comment).
func (r *Rates) WriteTime(sizeMB float64) float64 {
	return sizeMB / r.write
}

// Best is Model.Best through the compiled tables: identical divisions in
// identical comparison order, so ties break the same way bit for bit.
func (r *Rates) Best(sizeMB float64, localClass, remoteClass, clients int) Choice {
	best := Choice{Loc: LocPFS, Class: -1, Seconds: sizeMB / r.PFSRate(clients)}
	if remoteClass >= 0 {
		if t := sizeMB / r.remote[remoteClass]; t < best.Seconds {
			best = Choice{Loc: LocRemote, Class: remoteClass, Seconds: t}
		}
	}
	if localClass >= 0 {
		if t := sizeMB / r.local[localClass]; t < best.Seconds {
			best = Choice{Loc: LocLocal, Class: localClass, Seconds: t}
		}
	}
	return best
}
