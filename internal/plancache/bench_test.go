package plancache

import (
	"testing"

	"repro/internal/access"
)

// benchPlan is an ImageNet-1k-shaped plan at the benchmark scale used by
// the Fig. 8 panels (F = 1.28M × 0.005, N = 4, E = 5).
var benchPlan = access.Plan{Seed: 42, F: 6405, N: 4, E: 5, BatchPerWorker: 32, DropLast: true}

// BenchmarkPlanArtifactsCold measures one full artifact build — parallel
// epoch shuffles, stream extraction, first positions — with no reuse (a
// fresh cache per iteration).
func BenchmarkPlanArtifactsCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := New(0, 0)
		art := c.Artifacts(benchPlan)
		if len(art.Streams) != benchPlan.N {
			b.Fatal("bad artifacts")
		}
	}
}

// BenchmarkPlanArtifactsWarm measures the memo hit path — what every grid
// cell after the first pays.
func BenchmarkPlanArtifactsWarm(b *testing.B) {
	c := New(0, 0)
	c.Artifacts(benchPlan)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Artifacts(benchPlan) == nil {
			b.Fatal("miss")
		}
	}
}
