package plancache

import (
	"sync"
	"testing"

	"repro/internal/access"
)

// The eviction tier for concurrent, mixed-size workloads: PR 4's tests
// exercised the LRU bound serially with equal-size entries; sweeps hit the
// shared cache from many goroutines with plans whose artifact footprints
// differ by an order of magnitude.

// mixedPlans returns plans whose artifact sizes span ~8 KB to ~260 KB
// (size ≈ 2*E*F*4 + F*4 bytes).
func mixedPlans() []access.Plan {
	var plans []access.Plan
	for i, f := range []int{1000, 2000, 3000, 5000, 8000} {
		for e := 1; e <= 4; e++ {
			plans = append(plans, access.Plan{
				Seed: uint64(100*i + e), F: f, N: 1 + (i+e)%4, E: e, BatchPerWorker: 2,
			})
		}
	}
	return plans
}

// TestConcurrentMixedSizeEviction hammers a small cache from 8 goroutines
// with 20 mixed-size plans (aggregate footprint far beyond the bound):
// every returned artifact set must be correct regardless of eviction
// churn, the cache must end within its byte budget, and the hit/miss
// counters must account for every request.
func TestConcurrentMixedSizeEviction(t *testing.T) {
	const maxBytes = 300 << 10 // fits one large or a handful of small entries
	c := New(maxBytes, 0)
	plans := mixedPlans()

	const goroutines, rounds = 8, 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p := plans[(3*g+i)%len(plans)]
				art := c.Artifacts(p)
				// Shape checks are cheap enough for the hot loop: the
				// artifacts must always describe their own plan, evicted or
				// not.
				if len(art.EpochOrders) != p.E || len(art.Streams) != p.N {
					t.Errorf("artifact shape wrong for %+v: %d orders, %d streams",
						p, len(art.EpochOrders), len(art.Streams))
					return
				}
				if len(art.EpochOrders[0]) != p.F {
					t.Errorf("epoch order length %d, want %d", len(art.EpochOrders[0]), p.F)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Errorf("cache over budget after settling: %d > %d bytes (%d entries)",
			st.Bytes, st.MaxBytes, st.Entries)
	}
	if st.Entries < 1 {
		t.Error("cache evicted everything")
	}
	if got, want := st.Hits+st.Misses, int64(goroutines*rounds); got != want {
		t.Errorf("hit+miss = %d, want %d (every request accounted)", got, want)
	}
	if st.Misses < int64(len(plans)) {
		t.Errorf("only %d misses for %d distinct plans", st.Misses, len(plans))
	}

	// Post-churn correctness: a surviving-or-rebuilt artifact set is
	// bit-identical to a fresh naive derivation.
	p := plans[7]
	art := c.Artifacts(p)
	for e := 0; e < p.E; e++ {
		want := p.EpochOrder(e)
		for i, k := range art.EpochOrders[e] {
			if k != want[i] {
				t.Fatalf("epoch %d order diverges at %d after eviction churn", e, i)
			}
		}
	}
}

// TestEvictionIsLRUUnderMixedSizes pins the recency rule with unequal
// entries: touching an old entry saves it, and the cold one goes first even
// when evicting it alone is not enough for the incoming large entry.
func TestEvictionIsLRUUnderMixedSizes(t *testing.T) {
	small1 := access.Plan{Seed: 1, F: 2000, N: 2, E: 2, BatchPerWorker: 4} // ~40 KB
	small2 := access.Plan{Seed: 2, F: 2000, N: 2, E: 2, BatchPerWorker: 4}
	large := access.Plan{Seed: 3, F: 8000, N: 2, E: 3, BatchPerWorker: 4} // ~224 KB

	c := New(280<<10, 0)
	c.Artifacts(small1)
	c.Artifacts(small2)
	c.Artifacts(small1) // refresh small1: small2 becomes LRU
	hits := c.Stats().Hits
	if hits != 1 {
		t.Fatalf("refresh not counted as hit: %+v", c.Stats())
	}
	// The large entry does not fit next to both smalls; small2 (LRU) must
	// go. Whether small1 also goes depends only on the byte arithmetic —
	// here small1+large fit, so it stays.
	c.Artifacts(large)
	if c.Stats().Bytes > c.Stats().MaxBytes {
		t.Fatalf("over budget: %+v", c.Stats())
	}
	// Re-requests reveal residency through the counters.
	before := c.Stats()
	c.Artifacts(small1)
	if c.Stats().Hits != before.Hits+1 {
		t.Error("recently-touched small1 was evicted before LRU small2")
	}
	before = c.Stats()
	c.Artifacts(small2)
	if c.Stats().Misses != before.Misses+1 {
		t.Error("LRU small2 survived while the cache was over budget")
	}
}
