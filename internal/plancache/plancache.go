// Package plancache memoises the clairvoyant plan artifacts that every
// layer of the system re-derives from an access.Plan: per-epoch orders
// (uniform shuffles or any access.Pattern), per-worker access streams,
// elastic epoch-end offsets, first-access positions, access-frequency
// tables, and the cachepolicy.Assignment placements computed from them.
// The plan's canonical access spec is part of the cache key, so two plans
// differing only in pattern never share artifacts.
//
// The paper's premise is that the access stream is a cheap pure function of
// the seed — but "cheap" is relative: a Fig. 8 panel sweeps P policies over
// one scenario, and without sharing, every policy cell re-runs all E
// Fisher-Yates shuffles and re-materialises E×F stream entries. The cache
// applies the same "reconstruct once, reuse everywhere" discipline NoPFS
// itself applies to training I/O: each (plan) computes its artifacts exactly
// once, concurrent requesters block on the single computation
// (singleflight), and every consumer shares the immutable result.
//
// Memory bound and eviction rule: the cache tracks an approximate byte size
// per entry (orders + streams + lazily-computed frequency tables +
// assignments) and evicts least-recently-used entries whenever the total
// exceeds MaxBytes. Eviction only drops the cache's reference — artifacts
// already handed out remain valid (they are immutable), so a concurrent
// holder is never invalidated.
//
// Determinism: epoch shuffles are generated in parallel across a bounded
// goroutine pool. Each epoch's shuffle is driven by an independently derived
// PRNG stream (access.Plan.epochGen), so parallel generation is
// bit-identical to the serial loop by construction. The naive single-
// threaded, uncached path remains reachable via SetNaive for equivalence
// testing.
package plancache

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/hwspec"
)

// DefaultMaxBytes is the shared cache's default memory bound. Artifacts for
// the benchmark- and test-scale grids are a few MB per plan; paper-scale
// ImageNet-22k plans (E=5, F=14.2M) are ~570 MB of orders+streams, so the
// default admits one paper-scale plan or hundreds of scaled ones.
const DefaultMaxBytes = 768 << 20

// naiveMode forces the naive single-threaded artifact path: every call
// recomputes serially, nothing is memoised or shared. It exists so
// equivalence tests can compare the cached/parallel path against the
// original per-call derivation. Build-internal: this package is internal to
// the module, so the flag is unreachable from external importers.
var naiveMode atomic.Bool

// SetNaive toggles the naive artifact path (see naiveMode). Returns the
// previous value so tests can restore it.
func SetNaive(v bool) bool { return naiveMode.Swap(v) }

// Cache is a concurrency-safe, size-bounded memo of plan artifacts, keyed by
// the full Plan value (collision-free by construction; Plan.Hash is for
// cross-worker digest exchange, not for keying).
type Cache struct {
	workers  int // epoch-shuffle pool width; <1 means GOMAXPROCS
	maxBytes int64

	mu       sync.Mutex
	entries  map[access.Plan]*entry
	tick     int64 // LRU clock
	curBytes int64

	hits, misses atomic.Int64
}

// entry is one memoised plan. The zero entry is inserted under Cache.mu;
// the artifacts are computed exactly once outside the lock.
type entry struct {
	once    sync.Once
	art     *Artifacts
	ready   atomic.Bool // set after once completes; gates eviction
	bytes   int64       // under Cache.mu
	lastUse int64       // under Cache.mu
	// evicted is set (under Cache.mu) when the entry is dropped from the
	// map. Lazy artifacts added by live holders afterwards must not be
	// charged to the cache: the entry's bytes were already subtracted and
	// no future eviction could ever reclaim the new charge.
	evicted bool
}

// New returns a cache bounded at maxBytes (<=0 means DefaultMaxBytes) that
// generates epoch shuffles on a pool of `workers` goroutines (<1 means
// GOMAXPROCS).
func New(maxBytes int64, workers int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		workers:  workers,
		maxBytes: maxBytes,
		entries:  map[access.Plan]*entry{},
	}
}

// shared is the process-wide cache every production path routes through:
// sim.Run environments, cachepolicy builds, and nopfs.Job setup all share
// one artifact set, so every policy cell of one (scenario, replica seed)
// shares a single shuffle pass (a P×R grid does R passes, not P×R).
var shared = New(0, 0)

// Shared returns the process-wide cache.
func Shared() *Cache { return shared }

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits, Misses int64
	Entries      int
	Bytes        int64
	MaxBytes     int64
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: len(c.entries), Bytes: c.curBytes, MaxBytes: c.maxBytes,
	}
}

// effectiveWorkers resolves the shuffle pool width.
func (c *Cache) effectiveWorkers() int {
	if c.workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return c.workers
}

// Artifacts returns the compute-once artifact set for the plan. Concurrent
// calls for the same plan share one computation; calls for different plans
// proceed independently. In naive mode the artifacts are rebuilt serially on
// every call and never cached.
func (c *Cache) Artifacts(p access.Plan) *Artifacts {
	if naiveMode.Load() {
		return buildArtifacts(p, 1, nil, nil)
	}
	c.mu.Lock()
	e, ok := c.entries[p]
	if !ok {
		e = &entry{}
		c.entries[p] = e
	}
	c.tick++
	e.lastUse = c.tick
	c.mu.Unlock()

	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		e.art = buildArtifacts(p, c.effectiveWorkers(), c, e)
		c.addBytes(e, e.art.baseBytes())
		e.ready.Store(true)
	})
	return e.art
}

// addBytes charges delta bytes to the entry and evicts least-recently-used
// ready entries (never e itself) until the cache fits its bound again.
func (c *Cache) addBytes(e *entry, delta int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.evicted {
		return
	}
	e.bytes += delta
	c.curBytes += delta
	for c.curBytes > c.maxBytes && len(c.entries) > 1 {
		var victimKey access.Plan
		var victim *entry
		for k, cand := range c.entries {
			if cand == e || !cand.ready.Load() {
				continue
			}
			if victim == nil || cand.lastUse < victim.lastUse {
				victimKey, victim = k, cand
			}
		}
		if victim == nil {
			return // everything else is still computing; stay over budget
		}
		delete(c.entries, victimKey)
		victim.evicted = true
		c.curBytes -= victim.bytes
	}
}

// Artifacts is the immutable derived state of one plan. All exported slices
// are shared across every consumer and MUST NOT be mutated; policies that
// reorder streams copy first.
type Artifacts struct {
	// Plan is the generating plan, by value.
	Plan access.Plan
	// EpochOrders[e] is epoch e's global shuffled sample order.
	EpochOrders [][]access.SampleID
	// Streams[w] is worker w's materialised access stream across all epochs.
	Streams [][]access.SampleID
	// FirstPos0[k] is worker 0's first stream position accessing sample k
	// (-1 if never accessed) — the simulator's availability index.
	FirstPos0 []int32
	// EpochEnds[w][e] is worker w's cumulative stream length through epoch
	// e, for plans whose partition varies per epoch (an elastic membership
	// schedule); nil for static partitions, where epochs are uniform and
	// Plan.SamplesPerEpoch applies.
	EpochEnds [][]int

	freqOnce sync.Once
	freqs    [][]int32

	// cache/self back-link for byte accounting of lazily added artifacts;
	// nil in naive mode.
	cache *Cache
	self  *entry

	amu     sync.Mutex
	assigns map[assignKey]*assignEntry
}

// buildArtifacts derives the full artifact set: epoch shuffles generated in
// parallel across the pool, streams extracted per worker in parallel, and
// first-access positions for the simulated worker. Output is bit-identical
// to the serial access.Plan methods at any pool width.
func buildArtifacts(p access.Plan, workers int, c *Cache, e *entry) *Artifacts {
	orders := p.EpochOrders(workers)
	streams, ends := p.AllStreamsFromOrders(orders, workers)
	firstPos := make([]int32, p.F)
	for k := range firstPos {
		firstPos[k] = -1
	}
	for pos, k := range streams[0] {
		if firstPos[k] < 0 {
			firstPos[k] = int32(pos)
		}
	}
	return &Artifacts{
		Plan: p, EpochOrders: orders, Streams: streams, FirstPos0: firstPos,
		EpochEnds: ends,
		cache:     c, self: e,
		assigns: map[assignKey]*assignEntry{},
	}
}

// baseBytes approximates the memory held by the eagerly built artifacts.
func (a *Artifacts) baseBytes() int64 {
	var n int64
	for _, o := range a.EpochOrders {
		n += int64(len(o)) * 4
	}
	for _, s := range a.Streams {
		n += int64(len(s)) * 4
	}
	n += int64(len(a.FirstPos0)) * 4
	for _, e := range a.EpochEnds {
		n += int64(len(e)) * 8
	}
	return n
}

// Frequencies returns freqs[worker][sample] — each worker's per-sample
// access counts across all epochs — computed once from the cached streams
// (no shuffle work) and shared thereafter.
func (a *Artifacts) Frequencies() [][]int32 {
	a.freqOnce.Do(func() {
		freqs := make([][]int32, a.Plan.N)
		for w := range freqs {
			f := make([]int32, a.Plan.F)
			for _, k := range a.Streams[w] {
				f[k]++
			}
			freqs[w] = f
		}
		a.freqs = freqs
		if a.cache != nil {
			a.cache.addBytes(a.self, int64(a.Plan.N)*int64(a.Plan.F)*4)
		}
	})
	return a.freqs
}

// assignKey identifies one derived placement: the policy family plus
// digests of the inputs the build consumes beyond the plan itself (sample
// sizes and node storage-class capacities), and whether the build is lean
// (worker-0 local tables only — the simulator's layout) or full (per-rank
// tables, required by the live middleware). The two layouts must not share
// an entry: a lean build cannot serve Local/FillOrder queries for rank > 0.
type assignKey struct {
	family  string
	dataset uint64
	node    uint64
	lean    bool
}

type assignEntry struct {
	once   sync.Once
	assign *cachepolicy.Assignment
}

// Assignment families used by the simulator and the live middleware.
const (
	FamilyNoPFS      = "nopfs"
	FamilyRandom     = "random"
	FamilyFirstTouch = "firsttouch"
	FamilyShard      = "shard"
	FamilyPreload    = "preload"
)

// Assignment returns the compute-once placement for (plan, dataset, node,
// family), building it with build on first use. The returned Assignment is
// shared and must be treated as immutable (all its methods are read-only).
// In naive mode build runs directly with no memoisation.
//
// The build's tracking layout (full vs. lean, see AssignmentLean) is part of
// the key; builds passed here must be full.
func (a *Artifacts) Assignment(family string, ds cachepolicy.Sizer, node hwspec.Node, build func() *cachepolicy.Assignment) *cachepolicy.Assignment {
	return a.assignment(family, ds, node, false, build)
}

// AssignmentLean is Assignment for lean builds (worker-0 local tables only;
// see the cachepolicy Lean* builders). Lean and full placements of the same
// family are cached independently.
func (a *Artifacts) AssignmentLean(family string, ds cachepolicy.Sizer, node hwspec.Node, build func() *cachepolicy.Assignment) *cachepolicy.Assignment {
	return a.assignment(family, ds, node, true, build)
}

func (a *Artifacts) assignment(family string, ds cachepolicy.Sizer, node hwspec.Node, lean bool, build func() *cachepolicy.Assignment) *cachepolicy.Assignment {
	if a.cache == nil {
		return build()
	}
	key := assignKey{family: family, dataset: SizerDigest(ds), node: NodeDigest(node), lean: lean}
	a.amu.Lock()
	e, ok := a.assigns[key]
	if !ok {
		e = &assignEntry{}
		a.assigns[key] = e
	}
	a.amu.Unlock()
	e.once.Do(func() {
		e.assign = build()
		a.cache.addBytes(a.self, e.assign.ApproxBytes())
	})
	return e.assign
}

// SizeDigester is implemented by datasets that precompute their size
// digest (dataset.Synthetic does, using the same FNV-1a formula as the
// generic path below), making warm digest-keyed lookups O(1).
type SizeDigester interface {
	SizeDigest() uint64
}

// SizerDigest hashes a dataset's full size table (FNV-1a over the count and
// every sample size). Two datasets with identical sizes produce identical
// placements, so they may safely share cached assignments even when they are
// distinct objects — which is exactly what sweep cells do when each cell
// materialises its own dataset from the same spec.
func SizerDigest(ds cachepolicy.Sizer) uint64 {
	if d, ok := ds.(SizeDigester); ok {
		return d.SizeDigest()
	}
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	n := ds.Len()
	mix(uint64(n))
	for k := 0; k < n; k++ {
		mix(uint64(ds.Size(k)))
	}
	return h
}

// NodeDigest hashes the node's storage-class capacities — the only node
// inputs the placement builds consume.
func NodeDigest(node hwspec.Node) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(len(node.Classes)))
	for _, c := range node.Classes {
		mix(math.Float64bits(c.CapacityMB))
	}
	return h
}
