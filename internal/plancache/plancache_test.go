package plancache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/dataset"
	"repro/internal/hwspec"
)

// testPlans is the table shared by the equivalence tests: small plans
// covering drop-last, partial batches, single-worker, and many-epoch
// shapes.
func testPlans() []access.Plan {
	return []access.Plan{
		{Seed: 1, F: 200, N: 4, E: 3, BatchPerWorker: 8, DropLast: false},
		{Seed: 2, F: 203, N: 4, E: 3, BatchPerWorker: 8, DropLast: true},
		{Seed: 3, F: 97, N: 1, E: 5, BatchPerWorker: 4, DropLast: false},
		{Seed: 4, F: 512, N: 8, E: 10, BatchPerWorker: 2, DropLast: true},
	}
}

func testNode(ramMB, ssdMB float64) hwspec.Node {
	node := hwspec.Node{
		Staging:          hwspec.StorageClass{Name: "staging", CapacityMB: 100, Threads: 2, Read: hwspec.Flat(100), Write: hwspec.Flat(100)},
		InterconnectMBps: 100,
		Classes: []hwspec.StorageClass{
			{Name: "ram", CapacityMB: ramMB, Threads: 2, Read: hwspec.Flat(1000), Write: hwspec.Flat(1000)},
		},
	}
	if ssdMB > 0 {
		node.Classes = append(node.Classes,
			hwspec.StorageClass{Name: "ssd", CapacityMB: ssdMB, Threads: 1, Read: hwspec.Flat(300), Write: hwspec.Flat(200)})
	}
	return node
}

func testDataset(t testing.TB, f int) dataset.Dataset {
	t.Helper()
	ds, err := dataset.New(dataset.Spec{
		Name: "plancache-test", F: f, MeanSize: 4096, StddevSize: 1024, Classes: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func eqStreams(t *testing.T, label string, got, want [][]access.SampleID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d slices, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s[%d]: len %d, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s[%d][%d]: got %d want %d", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestArtifactsMatchNaivePlanPath asserts byte-identical epoch orders,
// streams, first positions, and frequency tables between the cached/parallel
// path and the naive serial access.Plan derivations.
func TestArtifactsMatchNaivePlanPath(t *testing.T) {
	for _, p := range testPlans() {
		p := p
		t.Run(fmt.Sprintf("seed%d", p.Seed), func(t *testing.T) {
			c := New(0, 4)
			art := c.Artifacts(p)

			wantOrders := make([][]access.SampleID, p.E)
			for e := 0; e < p.E; e++ {
				wantOrders[e] = p.EpochOrder(e)
			}
			eqStreams(t, "EpochOrders", art.EpochOrders, wantOrders)
			eqStreams(t, "Streams", art.Streams, p.AllWorkerStreams())

			wantFreqs := p.Frequencies()
			gotFreqs := art.Frequencies()
			if len(gotFreqs) != len(wantFreqs) {
				t.Fatalf("freqs: %d workers, want %d", len(gotFreqs), len(wantFreqs))
			}
			for w := range wantFreqs {
				for k := range wantFreqs[w] {
					if gotFreqs[w][k] != wantFreqs[w][k] {
						t.Fatalf("freqs[%d][%d]: got %d want %d", w, k, gotFreqs[w][k], wantFreqs[w][k])
					}
				}
			}

			for k, pos := range art.FirstPos0 {
				want := int32(-1)
				for i, id := range art.Streams[0] {
					if int(id) == k {
						want = int32(i)
						break
					}
				}
				if pos != want {
					t.Fatalf("FirstPos0[%d]: got %d want %d", k, pos, want)
				}
			}
		})
	}
}

// TestNaiveModeMatchesCached asserts the SetNaive path produces identical
// artifacts to the cached/parallel path (and does not populate the cache).
func TestNaiveModeMatchesCached(t *testing.T) {
	p := testPlans()[1]
	c := New(0, 0)
	cached := c.Artifacts(p)

	defer SetNaive(SetNaive(true))
	naive := c.Artifacts(p)

	eqStreams(t, "EpochOrders", naive.EpochOrders, cached.EpochOrders)
	eqStreams(t, "Streams", naive.Streams, cached.Streams)
	if naive == cached {
		t.Fatal("naive mode must rebuild, not serve the memo")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("naive mode added entries: %+v", st)
	}
}

// TestAssignmentEquivalence asserts the cached assignments are byte-identical
// to direct cachepolicy builds, for every family.
func TestAssignmentEquivalence(t *testing.T) {
	p := access.Plan{Seed: 9, F: 300, N: 4, E: 4, BatchPerWorker: 8, DropLast: true}
	ds := testDataset(t, p.F)
	node := testNode(0.3, 0.5)
	c := New(0, 0)
	art := c.Artifacts(p)

	direct := map[string]*cachepolicy.Assignment{
		FamilyNoPFS:      cachepolicy.BuildNoPFSFromStreams(&p, art.Streams, ds, node),
		FamilyRandom:     cachepolicy.BuildRandomFromStreams(&p, art.Streams, ds, node),
		FamilyFirstTouch: cachepolicy.BuildFirstTouch(&p, ds, node),
		FamilyShard:      cachepolicy.BuildShard(p.F, p.N, ds, node),
		FamilyPreload:    cachepolicy.BuildPreload(p.F, p.N, ds, node),
	}
	builds := map[string]func() *cachepolicy.Assignment{
		FamilyNoPFS: func() *cachepolicy.Assignment {
			return cachepolicy.BuildNoPFSFromStreams(&p, art.Streams, ds, node)
		},
		FamilyRandom: func() *cachepolicy.Assignment {
			return cachepolicy.BuildRandomFromStreams(&p, art.Streams, ds, node)
		},
		FamilyFirstTouch: func() *cachepolicy.Assignment {
			return cachepolicy.BuildFirstTouchFromOrder(&p, art.EpochOrders[0], ds, node)
		},
		FamilyShard: func() *cachepolicy.Assignment {
			return cachepolicy.BuildShard(p.F, p.N, ds, node)
		},
		FamilyPreload: func() *cachepolicy.Assignment {
			return cachepolicy.BuildPreload(p.F, p.N, ds, node)
		},
	}
	for family, build := range builds {
		got := art.Assignment(family, ds, node, build)
		want := direct[family]
		for w := 0; w < p.N; w++ {
			for k := int32(0); int(k) < p.F; k++ {
				if got.Local(w, k) != want.Local(w, k) {
					t.Fatalf("%s: Local(%d,%d) got %d want %d", family, w, k, got.Local(w, k), want.Local(w, k))
				}
				if got.Local(w, k) >= 0 && got.LocalPos(w, k) != want.LocalPos(w, k) {
					t.Fatalf("%s: LocalPos(%d,%d) got %d want %d", family, w, k, got.LocalPos(w, k), want.LocalPos(w, k))
				}
			}
		}
		// Second lookup returns the same shared object (memoised).
		if again := art.Assignment(family, ds, node, build); again != got {
			t.Fatalf("%s: assignment not memoised", family)
		}
		// A different node capacity is a different key.
		other := testNode(0.1, 0)
		if art.Assignment(family, ds, other, func() *cachepolicy.Assignment {
			return cachepolicy.BuildShard(p.F, p.N, ds, other)
		}) == got {
			t.Fatalf("%s: distinct node shared an assignment", family)
		}
	}
}

// TestSingleflight asserts concurrent requesters of one plan share a single
// computation and a single artifact object.
func TestSingleflight(t *testing.T) {
	p := testPlans()[3]
	c := New(0, 2)
	const goroutines = 16
	arts := make([]*Artifacts, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arts[i] = c.Artifacts(p)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if arts[i] != arts[0] {
			t.Fatal("concurrent requesters got distinct artifact objects")
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats: %+v, want 1 miss / %d hits", st, goroutines-1)
	}
	before := access.ShuffleCount()
	c.Artifacts(p)
	if access.ShuffleCount() != before {
		t.Fatal("warm lookup performed shuffle work")
	}
}

// TestCacheRace hammers the cache from concurrent goroutines mixing plans,
// assignment lookups, and frequency materialisation — the shape of
// concurrent sweep cells. Run under -race in CI.
func TestCacheRace(t *testing.T) {
	c := New(1<<20, 0)
	plans := testPlans()
	ds := testDataset(t, 512)
	node := testNode(0.2, 0.3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := plans[(g+i)%len(plans)]
				art := c.Artifacts(p)
				_ = art.Frequencies()
				if p.F <= ds.Len() {
					art.Assignment(FamilyShard, ds, node, func() *cachepolicy.Assignment {
						return cachepolicy.BuildShard(p.F, p.N, ds, node)
					})
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestEviction verifies the size bound: inserting past MaxBytes evicts the
// least-recently-used entry, and evicted artifacts remain usable.
func TestEviction(t *testing.T) {
	p1 := access.Plan{Seed: 1, F: 4000, N: 2, E: 4, BatchPerWorker: 4}
	p2 := access.Plan{Seed: 2, F: 4000, N: 2, E: 4, BatchPerWorker: 4}
	// Each entry is ~2*E*F*4 + F*4 ≈ 144 KB; bound admits one, not two.
	c := New(200<<10, 0)
	a1 := c.Artifacts(p1)
	a2 := c.Artifacts(p2)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("after overflow: %d entries, want 1 (stats %+v)", st.Entries, st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache over budget after eviction: %+v", st)
	}
	// p1 was LRU and evicted; its artifacts must still be readable.
	if len(a1.Streams[0]) == 0 || len(a2.Streams[1]) == 0 {
		t.Fatal("evicted artifacts became unusable")
	}
	// Re-requesting p1 is a miss that rebuilds (and evicts p2).
	misses := c.Stats().Misses
	b1 := c.Artifacts(p1)
	if c.Stats().Misses != misses+1 {
		t.Fatal("re-request of evicted plan was not a miss")
	}
	eqStreams(t, "rebuilt", b1.Streams, a1.Streams)
}

// TestSizerAndNodeDigests pin the digest discrimination properties the
// assignment keys rely on.
func TestSizerAndNodeDigests(t *testing.T) {
	ds1 := testDataset(t, 128)
	ds2 := testDataset(t, 129)
	if SizerDigest(ds1) == SizerDigest(ds2) {
		t.Fatal("datasets of different length share a digest")
	}
	if SizerDigest(ds1) != SizerDigest(ds1) {
		t.Fatal("digest not deterministic")
	}
	n1 := testNode(1, 2)
	n2 := testNode(1, 3)
	n3 := testNode(1, 0)
	if NodeDigest(n1) == NodeDigest(n2) || NodeDigest(n1) == NodeDigest(n3) {
		t.Fatal("nodes of different capacities share a digest")
	}
}

// TestEvictedEntryDoesNotInflateBytes is the regression guard for lazy
// artifacts added after eviction: a live holder of an evicted entry that
// materialises Frequencies must not charge the cache — those bytes could
// never be reclaimed and would permanently crowd out future entries.
func TestEvictedEntryDoesNotInflateBytes(t *testing.T) {
	p1 := access.Plan{Seed: 1, F: 4000, N: 2, E: 4, BatchPerWorker: 4}
	p2 := access.Plan{Seed: 2, F: 4000, N: 2, E: 4, BatchPerWorker: 4}
	c := New(200<<10, 0)
	a1 := c.Artifacts(p1)
	c.Artifacts(p2) // evicts p1
	before := c.Stats()
	if before.Entries != 1 {
		t.Fatalf("setup: want 1 entry, got %+v", before)
	}
	a1.Frequencies() // lazy artifact on the evicted entry
	after := c.Stats()
	if after.Bytes != before.Bytes {
		t.Fatalf("evicted entry charged the cache: %d -> %d bytes", before.Bytes, after.Bytes)
	}
}

// plainSizer hides a dataset's SizeDigester fast path so the generic
// SizerDigest loop runs.
type plainSizer struct{ ds dataset.Dataset }

func (p plainSizer) Len() int          { return p.ds.Len() }
func (p plainSizer) Size(id int) int64 { return p.ds.Size(id) }

// TestSizeDigestFastPathMatchesGeneric guards the duplicated FNV-1a
// formula: Synthetic's precomputed digest and the generic full-table hash
// must agree, or datasets with identical sizes would silently stop sharing
// cached assignments depending on which path computed their key.
func TestSizeDigestFastPathMatchesGeneric(t *testing.T) {
	ds := testDataset(t, 257)
	if SizerDigest(ds) != SizerDigest(plainSizer{ds}) {
		t.Fatal("Synthetic.SizeDigest diverges from the generic SizerDigest loop")
	}
}
