package prng

import "math"

// Thin wrappers so prng.go stays readable; math.Sqrt/Log are deterministic
// across platforms (IEEE-754 correctly rounded).
func sqrt(x float64) float64 { return math.Sqrt(x) }
func log(x float64) float64  { return math.Log(x) }
