package prng

import (
	"runtime"
	"sync"
)

// Perm32Into fills out with the identity permutation 0..len(out)-1 and
// Fisher-Yates shuffles it in place, drawing j = Intn(i+1) for i from
// len(out)-1 down to 1 — the exact draw sequence of Shuffle, so a
// Generator at the same state produces the same permutation through either
// entry point. int32 elements keep large materialised orders (ImageNet-22k
// has 14.2M samples) at 4 bytes apiece.
func (g *Generator) Perm32Into(out []int32) {
	for i := range out {
		out[i] = int32(i)
	}
	for i := len(out) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// ParallelFor runs fn(i) for every i in [0, n) on a bounded goroutine pool
// (workers < 1 means GOMAXPROCS; workers == 1 runs inline). Iterations must
// be independent: each fn(i) may only write state owned by index i, which
// is what makes the result order-independent and race-free.
//
//lint:ignore ctxfirst structurally bounded: the same call closes jobs and Waits, and fn is pure compute with no cancellation point
func ParallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// ParallelPerms32 generates n independent length-f permutations on a bounded
// goroutine pool. Permutation i is driven entirely by its own generator
// gen(i), so the output is bit-identical to the serial loop
//
//	for i := range out { gen(i).Perm32Into(out[i]) }
//
// at any worker count — this is what makes parallel epoch-shuffle generation
// safe for clairvoyant plans, where every epoch already derives an
// independent PRNG stream from the root seed. workers < 1 means GOMAXPROCS.
func ParallelPerms32(n, f, workers int, gen func(i int) *Generator) [][]int32 {
	if n <= 0 {
		return nil
	}
	out := make([][]int32, n)
	ParallelFor(n, workers, func(i int) {
		out[i] = make([]int32, f)
		gen(i).Perm32Into(out[i])
	})
	return out
}
