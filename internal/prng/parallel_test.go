package prng

import (
	"testing"
)

// TestPerm32IntoMatchesShuffle verifies Perm32Into draws the same sequence
// as the classic identity-fill + Shuffle path, so both entry points produce
// the same permutation from the same generator state.
func TestPerm32IntoMatchesShuffle(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	for i := range want {
		want[i] = i
	}
	New(7).Derive(3).Shuffle(want)

	got := make([]int32, n)
	New(7).Derive(3).Perm32Into(got)

	for i := range want {
		if int32(want[i]) != got[i] {
			t.Fatalf("position %d: Shuffle %d != Perm32Into %d", i, want[i], got[i])
		}
	}
}

// TestParallelPerms32BitIdentical verifies the parallel pool produces
// exactly the serial result at every worker count — the property that makes
// parallel epoch-shuffle generation safe.
func TestParallelPerms32BitIdentical(t *testing.T) {
	gen := func(i int) *Generator { return New(99).Derive(uint64(i) + 1) }
	const n, f = 12, 512
	want := ParallelPerms32(n, f, 1, gen)
	for _, workers := range []int{0, 2, 3, 8, 32} {
		got := ParallelPerms32(n, f, workers, gen)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d perms, want %d", workers, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d perm %d pos %d: got %d want %d",
						workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestParallelPerms32Empty covers the degenerate inputs.
func TestParallelPerms32Empty(t *testing.T) {
	if got := ParallelPerms32(0, 10, 4, nil); got != nil {
		t.Fatalf("n=0: got %v, want nil", got)
	}
	got := ParallelPerms32(2, 0, 4, func(int) *Generator { return New(1) })
	if len(got) != 2 || len(got[0]) != 0 || len(got[1]) != 0 {
		t.Fatalf("f=0: got %v, want two empty perms", got)
	}
}
