// Package prng provides deterministic pseudorandom number generation for
// clairvoyant access-stream reconstruction.
//
// NoPFS's central trick is that the per-epoch shuffle of sample indices is a
// pure function of a seed: every worker that knows the seed can reconstruct
// the entire training access pattern arbitrarily far into the future. This
// package supplies the primitives that make that reconstruction exact and
// portable: SplitMix64 for seed expansion, xoshiro256** as the bulk
// generator, and a Fisher-Yates shuffle driven by unbiased bounded draws.
//
// All state is explicit; two Generators created from equal seeds produce
// identical output on any platform.
package prng

// SplitMix64 is a tiny, high-quality 64-bit generator used to expand a
// single user seed into the larger state required by xoshiro256**. It is
// the seeding procedure recommended by the xoshiro authors.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Generator is a xoshiro256** PRNG. It is small, fast, and passes stringent
// statistical tests; we use it for every shuffle in the system so that the
// access stream is a deterministic function of the seed alone.
//
// Generator is not safe for concurrent use; clone or derive per-goroutine
// streams instead.
type Generator struct {
	s [4]uint64
}

// New returns a Generator seeded from seed via SplitMix64 expansion.
func New(seed uint64) *Generator {
	sm := NewSplitMix64(seed)
	var g Generator
	for i := range g.s {
		g.s[i] = sm.Next()
	}
	// xoshiro256** must not start from the all-zero state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 0x9e3779b97f4a7c15
	}
	return &g
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value.
func (g *Generator) Uint64() uint64 {
	result := rotl(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = rotl(g.s[3], 45)
	return result
}

// Clone returns an independent copy of the generator at its current state.
func (g *Generator) Clone() *Generator {
	cp := *g
	return &cp
}

// Derive returns a new Generator whose stream is a deterministic function of
// the parent seed state and the given stream identifier. It does not advance
// the parent. Use it to give each worker, epoch, or subsystem its own
// independent stream from one root seed.
func (g *Generator) Derive(stream uint64) *Generator {
	sm := NewSplitMix64(g.s[0] ^ rotl(stream, 32) ^ 0xd1b54a32d192ed03)
	var d Generator
	for i := range d.s {
		d.s[i] = sm.Next() ^ g.s[i]
	}
	if d.s[0]|d.s[1]|d.s[2]|d.s[3] == 0 {
		d.s[0] = 1
	}
	return &d
}

// Uint64n returns an unbiased uniform value in [0, n). It panics if n == 0.
// Uses Lemire's nearly-divisionless method with a rejection loop.
func (g *Generator) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return g.Uint64() & (n - 1)
	}
	// Rejection sampling on the top range to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := g.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns an unbiased uniform int in [0, n). It panics if n <= 0.
func (g *Generator) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (g *Generator) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Shuffle performs an in-place Fisher-Yates shuffle of ids. Given the same
// generator state and slice length, the resulting permutation is identical
// on every worker — this is the clairvoyance primitive.
func (g *Generator) Shuffle(ids []int) {
	for i := len(ids) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		ids[i], ids[j] = ids[j], ids[i]
	}
}

// Perm returns a shuffled permutation of [0, n).
func (g *Generator) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	g.Shuffle(p)
	return p
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the polar (Marsaglia) method. Deterministic given the
// generator state.
func (g *Generator) NormFloat64() float64 {
	for {
		u := 2*g.Float64() - 1
		v := 2*g.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// math.Sqrt and math.Log are correctly rounded per IEEE-754 on
		// all Go platforms, so this remains cross-platform deterministic.
		return u * sqrt(-2*log(s)/s)
	}
}
