package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical C implementation.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("generators diverged at step %d: %d vs %d", i, x, y)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical outputs", same)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(7)
	g.Uint64()
	c := g.Clone()
	if x, y := g.Uint64(), c.Uint64(); x != y {
		t.Fatalf("clone diverged immediately: %d vs %d", x, y)
	}
	// Advancing the parent must not move the clone: both are now at the
	// same offset, so after advancing only g, c must replay g's old values.
	want := g.Clone()
	g.Uint64()
	g.Uint64()
	for i := 0; i < 10; i++ {
		if c.Uint64() != want.Uint64() {
			t.Fatal("advancing parent perturbed the clone's stream")
		}
	}
}

func TestDeriveStreamsIndependent(t *testing.T) {
	root := New(42)
	d1 := root.Derive(1)
	d2 := root.Derive(2)
	d1again := root.Derive(1)
	same12 := 0
	for i := 0; i < 100; i++ {
		v1, v2, v1a := d1.Uint64(), d2.Uint64(), d1again.Uint64()
		if v1 != v1a {
			t.Fatalf("Derive(1) not reproducible at step %d", i)
		}
		if v1 == v2 {
			same12++
		}
	}
	if same12 > 2 {
		t.Fatalf("Derive(1) and Derive(2) produced %d/100 identical outputs", same12)
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	a.Derive(99)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive advanced the parent generator state")
	}
}

func TestUint64nBounds(t *testing.T) {
	g := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity test on a small modulus.
	g := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(5)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%200) + 1
		g := New(seed)
		p := g.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := New(77).Perm(1000)
	b := New(77).Perm(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed permutations differ at %d", i)
		}
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	// Over many seeds, each value should land in position 0 roughly equally.
	const n, trials = 8, 40000
	counts := make([]int, n)
	for s := 0; s < trials; s++ {
		g := New(uint64(s))
		counts[g.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d at position 0 in %d shuffles, want ~%.0f", v, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	g := New(123)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestZeroStateGuard(t *testing.T) {
	var g Generator // all-zero state, bypassing New
	g.s[0] = 0x9e3779b97f4a7c15
	if g.Uint64() == 0 && g.Uint64() == 0 && g.Uint64() == 0 {
		t.Fatal("generator stuck at zero")
	}
}

func BenchmarkUint64(b *testing.B) {
	g := New(1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkShuffle1M(b *testing.B) {
	g := New(1)
	ids := make([]int, 1<<20)
	for i := range ids {
		ids[i] = i
	}
	b.SetBytes(int64(len(ids) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Shuffle(ids)
	}
}
