// Package profiling wires the standard Go diagnostics escape hatches —
// pprof CPU/heap profiles and the runtime execution trace — into the repo's
// CLIs with one shared flag triple, so performance investigations of
// paper-scale runs (-scale 1 sweeps, 10³-worker configs) don't need a
// bespoke harness.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the CLI profiling options.
type Flags struct {
	CPU, Mem, Trace string
}

// Register installs the -cpuprofile, -memprofile and -trace flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.CPU, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&f.Mem, "memprofile", "", "write a heap profile to `file` on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to `file`")
}

// Start begins the requested collectors. The returned stop function ends
// them and writes the heap profile; it must run before process exit for the
// output files to be complete, and reports the first error it hits.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
	}
	if f.CPU != "" {
		cpuFile, err = os.Create(f.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			cpuFile = nil
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			traceFile = nil
		}
		if f.Mem != "" {
			mf, err := os.Create(f.Mem)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialise up-to-date allocation stats
				if err := pprof.WriteHeapProfile(mf); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := mf.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if firstErr != nil {
			return fmt.Errorf("profiling: %w", firstErr)
		}
		return nil
	}, nil
}
