package resilience

import (
	"strconv"
	"sync"
	"time"
)

// BreakerState is the circuit position: Closed (calls flow), Open (calls
// fail fast with ErrCircuitOpen), HalfOpen (one probe in flight decides).
type BreakerState int

const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String returns the state's metrics/log label.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "state(" + strconv.Itoa(int(s)) + ")"
	}
}

// Breaker is a per-peer circuit breaker: `threshold` consecutive failures
// open it; after `cooldown` one half-open probe is let through; the probe's
// outcome closes it again or re-opens it for another cooldown. A nil
// *Breaker is valid and always allows (all methods are nil-safe), so
// callers can thread an optional breaker without branching.
type Breaker struct {
	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive, while closed

	threshold int
	cooldown  time.Duration
	openedAt  time.Time

	// now is the clock (injectable in tests).
	now func() time.Time
	// onTransition observes every state change (may be nil); called
	// without the lock held.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker from the policy's threshold/cooldown. A zero
// threshold disables circuit breaking: NewBreaker returns nil, which every
// method accepts. onTransition (optional) observes state changes.
func NewBreaker(p Policy, onTransition func(from, to BreakerState)) *Breaker {
	if p.BreakerThreshold <= 0 {
		return nil
	}
	cd := p.BreakerCooldown
	if cd <= 0 {
		cd = DefaultCooldown
	}
	return &Breaker{
		threshold:    p.BreakerThreshold,
		cooldown:     cd,
		now:          time.Now,
		onTransition: onTransition,
	}
}

// Allow reports whether a call may proceed. From Open it lets a single
// probe through once the cooldown has elapsed (moving to HalfOpen); the
// second return is true when this call is that probe.
func (b *Breaker) Allow() (ok, probe bool) {
	if b == nil {
		return true, false
	}
	b.mu.Lock()
	switch b.state {
	case Closed:
		b.mu.Unlock()
		return true, false
	case HalfOpen:
		// A probe is already in flight; fail fast until it resolves.
		b.mu.Unlock()
		return false, false
	default: // Open
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.mu.Unlock()
			return false, false
		}
		b.transitionLocked(HalfOpen)
		return true, true
	}
}

// Success records a successful call, closing the circuit.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.failures = 0
	if b.state != Closed {
		b.transitionLocked(Closed)
		return
	}
	b.mu.Unlock()
}

// Failure records a failed call: a failed half-open probe re-opens the
// circuit immediately; while closed, the threshold's worth of consecutive
// failures opens it.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch b.state {
	case HalfOpen:
		b.transitionLocked(Open)
		return
	case Closed:
		b.failures++
		if b.failures >= b.threshold {
			b.transitionLocked(Open)
			return
		}
	}
	b.mu.Unlock()
}

// State returns the current circuit position (Closed for a nil breaker).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transitionLocked moves to state `to`, stamps open time, releases the
// lock, and fires the observer. Callers must hold b.mu; it is released on
// return.
func (b *Breaker) transitionLocked(to BreakerState) {
	from := b.state
	b.state = to
	if to == Open {
		b.openedAt = b.now()
	}
	if to == Closed {
		b.failures = 0
	}
	cb := b.onTransition
	b.mu.Unlock()
	if cb != nil && from != to {
		cb(from, to)
	}
}
