// Package resilience is the fault-tolerance substrate of the live
// middleware: deterministic, seed-jittered bounded retry/backoff policies,
// per-call deadlines, failure classification, and per-peer circuit breakers
// (see breaker.go).
//
// The paper's subject is middleware for clusters that misbehave, so the live
// engine needs a disciplined answer to "a fabric call failed": was the
// failure transient (retry it, with bounded backoff), is the peer down
// (stop asking it, demote to the PFS, re-probe later), or did the caller
// cancel (abort — never mask cancellation as a cache miss)? Classify
// encodes that taxonomy; Do is the one retry loop the repo permits around
// fabric calls (enforced by the `retrybound` analyzer in internal/analysis:
// ad-hoc unbounded `for { Call }` loops in library code are findings).
//
// Determinism contract: backoff delays are a pure function of
// (key, attempt) — Backoff derives the jitter with SplitMix64 from the key
// the caller mixes (typically seed, rank, peer, and a local retry sequence
// number via Key). Like the chaos fabric draws, the delay *distribution* is
// therefore reproducible from the seed while the exact interleaving of
// retries remains a property of wall-clock scheduling; live runs measure
// effects, not schedules. The zero Policy disables everything: Empty
// reports true and callers take their exact pre-resilience code path.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/prng"
	"repro/internal/transport"
)

// Policy bounds the retry/backoff, deadline, and circuit-breaker behaviour
// of one run. The zero value disables resilience entirely (today's code
// path); Default returns the tuned preset.
type Policy struct {
	// MaxAttempts is the total number of attempts per call, first try
	// included (<= 1 means no retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// multiplies it by Multiplier, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// Multiplier is the exponential growth factor (<= 0 means 2).
	Multiplier float64
	// JitterFrac adds a deterministic uniform draw in [0, JitterFrac) of
	// the current delay on top of it, decorrelating retry storms.
	JitterFrac float64
	// CallTimeout is the per-attempt deadline (0 = none): each attempt
	// runs under context.WithTimeout so an unresponsive peer fails the
	// attempt instead of hanging the fetch pipeline.
	CallTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit (0 = no circuit breaking).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before letting a
	// single half-open probe through (<= 0 with a threshold set means
	// DefaultCooldown).
	BreakerCooldown time.Duration
}

// DefaultCooldown is the open→half-open delay used when a threshold is set
// without a cooldown.
const DefaultCooldown = 50 * time.Millisecond

// Default returns the tuned preset behind the "default" spec name: three
// attempts with 1ms..32ms exponential backoff and 25% jitter, a 250ms
// per-call deadline, and a 3-failure breaker re-probing after 50ms.
func Default() Policy {
	return Policy{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       32 * time.Millisecond,
		Multiplier:       2,
		JitterFrac:       0.25,
		CallTimeout:      250 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  DefaultCooldown,
	}
}

// Empty reports whether the policy disables resilience entirely; callers
// take their exact pre-resilience code path when it does.
func (p Policy) Empty() bool { return p == Policy{} }

// Validate reports whether the policy is well-formed.
func (p Policy) Validate() error {
	switch {
	case p.MaxAttempts < 0:
		return fmt.Errorf("resilience: negative max attempts %d", p.MaxAttempts)
	case p.BaseBackoff < 0 || p.MaxBackoff < 0 || p.CallTimeout < 0 || p.BreakerCooldown < 0:
		return errors.New("resilience: negative duration")
	case p.Multiplier < 0:
		return fmt.Errorf("resilience: negative multiplier %g", p.Multiplier)
	case p.JitterFrac < 0 || p.JitterFrac >= 1:
		return fmt.Errorf("resilience: jitter fraction %g outside [0, 1)", p.JitterFrac)
	case p.BreakerThreshold < 0:
		return fmt.Errorf("resilience: negative breaker threshold %d", p.BreakerThreshold)
	}
	return nil
}

// attempts returns the effective attempt budget (at least one).
func (p Policy) attempts() int {
	if p.MaxAttempts <= 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoffStream salts the backoff PRNG derivation so it cannot collide with
// the shuffle or chaos streams derived from the same seed.
const backoffStream = 0xbac0ff

// Key mixes the caller's identifying parts (seed, rank, peer, sequence
// number, ...) into one backoff-derivation key. Distinct odd multipliers
// keep distinct part tuples on distinct states.
func Key(parts ...uint64) uint64 {
	k := uint64(backoffStream)
	for i, p := range parts {
		k += (p + uint64(i) + 1) * 0x9e3779b97f4a7c15
		k ^= k >> 29
	}
	return k
}

// Backoff returns the deterministic delay before retry number attempt
// (attempt 0 = the delay after the first failure): BaseBackoff scaled by
// Multiplier^attempt, capped at MaxBackoff, plus a uniform jitter draw in
// [0, JitterFrac) of the capped delay derived from key via SplitMix64 — a
// pure function of (policy, key, attempt).
func (p Policy) Backoff(attempt int, key uint64) time.Duration {
	d := float64(p.BaseBackoff)
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	for i := 0; i < attempt; i++ {
		d *= mult
		if p.MaxBackoff > 0 && d >= float64(p.MaxBackoff) {
			d = float64(p.MaxBackoff)
			break
		}
	}
	if p.MaxBackoff > 0 && d > float64(p.MaxBackoff) {
		d = float64(p.MaxBackoff)
	}
	if p.JitterFrac > 0 && d > 0 {
		sm := prng.NewSplitMix64(key + (uint64(attempt)+1)*0xd1b54a32d192ed03)
		u := float64(sm.Next()>>11) / (1 << 53)
		d += d * p.JitterFrac * u
	}
	return time.Duration(d)
}

// Class is the failure taxonomy every fabric-call error resolves to.
type Class int

const (
	// Transient failures (injected chaos drops, per-attempt deadline
	// expiry, unclassified errors) are worth retrying with backoff.
	Transient Class = iota
	// PeerDown failures (closed endpoints, refused dials, severed
	// connections) mean the peer is unreachable: fail fast, feed the
	// circuit breaker, and let the caller demote to the PFS.
	PeerDown
	// Aborted means the caller's own context ended: the operation must
	// unwind, never be retried or masked as a miss.
	Aborted
	// Permanent failures (errors wrapped by MarkPermanent) are
	// application-level: retrying cannot help and the peer is healthy.
	Permanent
)

// String returns the class's metrics/log label.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case PeerDown:
		return "peer-down"
	case Aborted:
		return "aborted"
	case Permanent:
		return "permanent"
	default:
		return "class(" + strconv.Itoa(int(c)) + ")"
	}
}

// permanentError marks an application-level failure (see MarkPermanent).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// MarkPermanent wraps err so Classify reports Permanent: the failure is not
// the fabric's fault and retrying cannot help.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// ErrCircuitOpen is returned by Do when the peer's circuit is open and not
// yet due a half-open probe: the call was never attempted.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// Classify resolves one call error against the caller's own context:
// parent cancellation (or an error chain carrying context.Canceled) aborts;
// closed/unreachable transports are peer-down evidence; an expired
// per-attempt deadline while the parent is alive, and everything else, is
// transient.
func Classify(parent context.Context, err error) Class {
	var pe *permanentError
	switch {
	case parent != nil && parent.Err() != nil:
		return Aborted
	case errors.Is(err, context.Canceled):
		return Aborted
	case errors.As(err, &pe):
		return Permanent
	case errors.Is(err, ErrCircuitOpen),
		errors.Is(err, transport.ErrClosed),
		errors.Is(err, transport.ErrUnreachable):
		return PeerDown
	default:
		return Transient
	}
}

// Hooks observes one Do execution. Both fields are optional.
type Hooks struct {
	// OnRetry runs before each backoff sleep with the just-failed attempt
	// number (0-based) and its error.
	OnRetry func(attempt int, err error)
	// Sleep overrides the ctx-interruptible backoff sleep (tests).
	Sleep func(ctx context.Context, d time.Duration) error
}

// sleep waits d or until ctx ends, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn under the policy: each attempt gets a per-call deadline
// (CallTimeout), failures are classified, transient ones are retried up to
// MaxAttempts with deterministic backoff (key, see Key/Backoff), and the
// optional breaker gates and records every outcome. Peer-down, permanent,
// and aborted failures return immediately. This is the repo's single
// sanctioned retry loop around fabric calls (`retrybound` analyzer).
func Do[T any](ctx context.Context, p Policy, br *Breaker, key uint64, h Hooks, fn func(context.Context) (T, error)) (T, error) {
	var zero T
	if br != nil {
		if ok, _ := br.Allow(); !ok {
			return zero, ErrCircuitOpen
		}
	}
	doSleep := h.Sleep
	if doSleep == nil {
		doSleep = sleep
	}
	attempts := p.attempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.CallTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.CallTimeout)
		}
		v, err := fn(attemptCtx)
		cancel()
		if err == nil {
			br.Success()
			return v, nil
		}
		switch Classify(ctx, err) {
		case Aborted:
			return zero, err
		case Permanent:
			return zero, err
		case PeerDown:
			br.Failure()
			return zero, err
		default: // Transient
			br.Failure()
			lastErr = err
		}
		if attempt+1 >= attempts {
			break
		}
		if h.OnRetry != nil {
			h.OnRetry(attempt, lastErr)
		}
		if err := doSleep(ctx, p.Backoff(attempt, key)); err != nil {
			return zero, err
		}
	}
	return zero, lastErr
}

// ParsePolicy parses the -resilience flag grammar: "", "none" (disabled),
// "default" (the Default preset), or a comma-separated list of directives,
// each overriding the zero policy:
//
//	retries:<n>            total attempts per call (first try included)
//	backoff:<d>[..<max>]   base (and cap) of the exponential backoff
//	jitter:<frac>          deterministic uniform jitter fraction in [0, 1)
//	timeout:<d>            per-attempt call deadline
//	breaker:<n>[@<d>]      open after <n> consecutive failures, re-probe
//	                       after <d> (default 50ms)
//
// Example: "retries:3,backoff:1ms..32ms,jitter:0.25,timeout:250ms,breaker:3@50ms".
func ParsePolicy(spec string) (Policy, error) {
	spec = strings.TrimSpace(spec)
	switch spec {
	case "", "none":
		return Policy{}, nil
	case "default":
		return Default(), nil
	}
	var p Policy
	for _, raw := range strings.Split(spec, ",") {
		d := strings.TrimSpace(raw)
		if d == "" {
			continue
		}
		kind, rest, ok := strings.Cut(d, ":")
		if !ok {
			return Policy{}, fmt.Errorf("resilience: directive %q is not <kind>:<args> (or \"default\"/\"none\")", d)
		}
		var err error
		switch kind {
		case "retries":
			p.MaxAttempts, err = strconv.Atoi(rest)
		case "backoff":
			base, cap, hasCap := strings.Cut(rest, "..")
			if p.BaseBackoff, err = time.ParseDuration(base); err == nil && hasCap {
				p.MaxBackoff, err = time.ParseDuration(cap)
			}
		case "jitter":
			p.JitterFrac, err = strconv.ParseFloat(rest, 64)
		case "timeout":
			p.CallTimeout, err = time.ParseDuration(rest)
		case "breaker":
			n, cd, hasCd := strings.Cut(rest, "@")
			if p.BreakerThreshold, err = strconv.Atoi(n); err == nil {
				p.BreakerCooldown = DefaultCooldown
				if hasCd {
					p.BreakerCooldown, err = time.ParseDuration(cd)
				}
			}
		default:
			return Policy{}, fmt.Errorf("resilience: unknown directive kind %q in %q", kind, d)
		}
		if err != nil {
			return Policy{}, fmt.Errorf("resilience: directive %q: %w", d, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// Spec renders the policy in the ParsePolicy grammar;
// ParsePolicy(p.Spec()) reproduces the policy.
func (p Policy) Spec() string {
	if p.Empty() {
		return "none"
	}
	var parts []string
	if p.MaxAttempts != 0 {
		parts = append(parts, "retries:"+strconv.Itoa(p.MaxAttempts))
	}
	if p.BaseBackoff != 0 || p.MaxBackoff != 0 {
		s := "backoff:" + p.BaseBackoff.String()
		if p.MaxBackoff != 0 {
			s += ".." + p.MaxBackoff.String()
		}
		parts = append(parts, s)
	}
	if p.JitterFrac != 0 {
		parts = append(parts, "jitter:"+strconv.FormatFloat(p.JitterFrac, 'g', -1, 64))
	}
	if p.CallTimeout != 0 {
		parts = append(parts, "timeout:"+p.CallTimeout.String())
	}
	if p.BreakerThreshold != 0 {
		s := "breaker:" + strconv.Itoa(p.BreakerThreshold)
		if p.BreakerCooldown != 0 {
			s += "@" + p.BreakerCooldown.String()
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}
