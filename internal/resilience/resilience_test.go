package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestPolicyEmptyAndValidate(t *testing.T) {
	if !(Policy{}).Empty() {
		t.Fatal("zero policy should be empty")
	}
	if Default().Empty() {
		t.Fatal("default policy should not be empty")
	}
	if err := Default().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{MaxAttempts: -1},
		{BaseBackoff: -time.Millisecond},
		{Multiplier: -1},
		{JitterFrac: -0.1},
		{JitterFrac: 1},
		{BreakerThreshold: -2},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: policy %+v validated", i, p)
		}
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"retries:3,backoff:1ms..32ms,jitter:0.25,timeout:250ms,breaker:3@50ms",
		"retries:2,backoff:5ms",
		"breaker:4@1s",
		"timeout:10ms",
	}
	for _, spec := range cases {
		p, err := ParsePolicy(spec)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", spec, err)
		}
		p2, err := ParsePolicy(p.Spec())
		if err != nil {
			t.Fatalf("ParsePolicy(Spec()=%q): %v", p.Spec(), err)
		}
		if p2 != p {
			t.Errorf("round trip %q: %+v != %+v", spec, p2, p)
		}
	}
	if p, err := ParsePolicy("default"); err != nil || p != Default() {
		t.Errorf("ParsePolicy(default) = %+v, %v", p, err)
	}
	if p, err := ParsePolicy(""); err != nil || !p.Empty() {
		t.Errorf("ParsePolicy(\"\") = %+v, %v", p, err)
	}
	// breaker without cooldown gets the default.
	if p, err := ParsePolicy("breaker:3"); err != nil || p.BreakerCooldown != DefaultCooldown {
		t.Errorf("ParsePolicy(breaker:3) = %+v, %v", p, err)
	}
	for _, bad := range []string{"retries", "retries:x", "backoff:??", "jitter:2", "nope:1", "breaker:3@zz"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Multiplier: 2, JitterFrac: 0.5}
	key := Key(42, 3, 1)
	for attempt := 0; attempt < 6; attempt++ {
		d1 := p.Backoff(attempt, key)
		d2 := p.Backoff(attempt, key)
		if d1 != d2 {
			t.Fatalf("attempt %d: Backoff not deterministic: %v != %v", attempt, d1, d2)
		}
		base := time.Millisecond << attempt
		if base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		if d1 < base || d1 >= base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d1, base, base+base/2)
		}
	}
	// Distinct keys draw distinct jitter (with overwhelming probability).
	if p.Backoff(0, Key(1)) == p.Backoff(0, Key(2)) {
		t.Error("distinct keys produced identical jitter")
	}
	// No jitter → exact exponential.
	np := Policy{BaseBackoff: time.Millisecond, Multiplier: 2}
	if got := np.Backoff(3, 7); got != 8*time.Millisecond {
		t.Errorf("jitterless Backoff(3) = %v, want 8ms", got)
	}
}

func TestClassify(t *testing.T) {
	bg := context.Background()
	canceled, cancel := context.WithCancel(bg)
	cancel()
	cases := []struct {
		name string
		ctx  context.Context
		err  error
		want Class
	}{
		{"parent canceled", canceled, errors.New("anything"), Aborted},
		{"ctx.Canceled in chain", bg, context.Canceled, Aborted},
		{"closed endpoint", bg, transport.ErrClosed, PeerDown},
		{"unreachable peer", bg, transport.ErrUnreachable, PeerDown},
		{"circuit open", bg, ErrCircuitOpen, PeerDown},
		{"permanent marker", bg, MarkPermanent(errors.New("bad proto")), Permanent},
		{"attempt deadline, parent alive", bg, context.DeadlineExceeded, Transient},
		{"unknown", bg, errors.New("eof"), Transient},
	}
	for _, c := range cases {
		if got := Classify(c.ctx, c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
	if MarkPermanent(nil) != nil {
		t.Error("MarkPermanent(nil) should be nil")
	}
}

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }

func TestBreakerStateMachine(t *testing.T) {
	var transitions []string
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(Policy{BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond},
		func(from, to BreakerState) { transitions = append(transitions, from.String()+">"+to.String()) })
	b.now = clock.now

	if ok, _ := b.Allow(); !ok {
		t.Fatal("closed breaker should allow")
	}
	b.Failure()
	if b.State() != Closed {
		t.Fatal("one failure should not open a threshold-2 breaker")
	}
	b.Failure()
	if b.State() != Open {
		t.Fatal("two consecutive failures should open")
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker inside cooldown should deny")
	}
	clock.t = clock.t.Add(150 * time.Millisecond)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v, %v), want probe", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second caller during half-open probe should be denied")
	}
	b.Failure() // probe fails → re-open
	if b.State() != Open {
		t.Fatal("failed probe should re-open")
	}
	clock.t = clock.t.Add(150 * time.Millisecond)
	if ok, _ := b.Allow(); !ok {
		t.Fatal("second probe should be allowed")
	}
	b.Success()
	if b.State() != Closed {
		t.Fatal("successful probe should close")
	}
	// Success resets the consecutive-failure count.
	b.Failure()
	b.Success()
	b.Failure()
	if b.State() != Closed {
		t.Fatal("non-consecutive failures should not open")
	}
	want := "closed>open,open>half-open,half-open>open,open>half-open,half-open>closed"
	if got := join(transitions); got != want {
		t.Errorf("transitions = %s, want %s", got, want)
	}

	// Zero threshold → nil breaker; nil is safe everywhere.
	var nb *Breaker = NewBreaker(Policy{}, nil)
	if nb != nil {
		t.Fatal("zero threshold should produce a nil breaker")
	}
	if ok, _ := nb.Allow(); !ok {
		t.Fatal("nil breaker should allow")
	}
	nb.Success()
	nb.Failure()
	if nb.State() != Closed {
		t.Fatal("nil breaker state should read closed")
	}
}

func join(s []string) string {
	out := ""
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += v
	}
	return out
}

// instantSleep makes Do's backoff sleeps free while recording them.
func instantSleep(log *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*log = append(*log, d)
		return ctx.Err()
	}
}

func TestDoRetriesTransientThenSucceeds(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, Multiplier: 2}
	var sleeps []time.Duration
	var retries int
	calls := 0
	v, err := Do(context.Background(), p, nil, Key(1), Hooks{
		OnRetry: func(int, error) { retries++ },
		Sleep:   instantSleep(&sleeps),
	}, func(ctx context.Context) (int, error) {
		calls++
		if calls < 3 {
			return 0, errors.New("flaky")
		}
		return 99, nil
	})
	if err != nil || v != 99 {
		t.Fatalf("Do = (%d, %v), want (99, nil)", v, err)
	}
	if calls != 3 || retries != 2 || len(sleeps) != 2 {
		t.Fatalf("calls=%d retries=%d sleeps=%d, want 3/2/2", calls, retries, len(sleeps))
	}
	if sleeps[0] != time.Millisecond || sleeps[1] != 2*time.Millisecond {
		t.Errorf("sleeps = %v, want [1ms 2ms]", sleeps)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{MaxAttempts: 2}
	flaky := errors.New("flaky")
	calls := 0
	_, err := Do(context.Background(), p, nil, 0, Hooks{Sleep: instantSleep(new([]time.Duration))},
		func(ctx context.Context) (int, error) { calls++; return 0, flaky })
	if !errors.Is(err, flaky) || calls != 2 {
		t.Fatalf("Do = %v after %d calls, want flaky after 2", err, calls)
	}
}

func TestDoFailsFastOnPeerDownAndPermanentAndAbort(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	for _, c := range []struct {
		name string
		err  error
	}{
		{"peer down", transport.ErrUnreachable},
		{"permanent", MarkPermanent(errors.New("bad"))},
		{"aborted", context.Canceled},
	} {
		calls := 0
		_, err := Do(context.Background(), p, nil, 0, Hooks{},
			func(ctx context.Context) (int, error) { calls++; return 0, c.err })
		if !errors.Is(err, c.err) || calls != 1 {
			t.Errorf("%s: Do = %v after %d calls, want the error after 1", c.name, err, calls)
		}
	}
	// Parent cancellation aborts even when fn's error looks transient.
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	_, err := Do(ctx, p, nil, 0, Hooks{}, func(context.Context) (int, error) {
		calls++
		cancel()
		return 0, errors.New("transient-looking")
	})
	if calls != 1 || err == nil {
		t.Fatalf("canceled parent: %d calls, err=%v; want 1 call and an error", calls, err)
	}
}

func TestDoAppliesCallTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, CallTimeout: 5 * time.Millisecond}
	calls := 0
	var sleeps []time.Duration
	_, err := Do(context.Background(), p, nil, 0, Hooks{Sleep: instantSleep(&sleeps)},
		func(ctx context.Context) (int, error) {
			calls++
			<-ctx.Done() // attempt deadline fires; parent stays alive
			return 0, ctx.Err()
		})
	if !errors.Is(err, context.DeadlineExceeded) || calls != 2 {
		t.Fatalf("Do = %v after %d calls, want DeadlineExceeded after 2 (timeout is transient)", err, calls)
	}
}

func TestDoRespectsOpenBreaker(t *testing.T) {
	p := Policy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Hour}
	b := NewBreaker(p, nil)
	_, err := Do(context.Background(), p, b, 0, Hooks{},
		func(context.Context) (int, error) { return 0, transport.ErrUnreachable })
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("first call: %v", err)
	}
	if b.State() != Open {
		t.Fatal("breaker should be open after threshold failures")
	}
	calls := 0
	_, err = Do(context.Background(), p, b, 0, Hooks{},
		func(context.Context) (int, error) { calls++; return 0, nil })
	if !errors.Is(err, ErrCircuitOpen) || calls != 0 {
		t.Fatalf("open circuit: err=%v calls=%d, want ErrCircuitOpen and no calls", err, calls)
	}
	if Classify(context.Background(), err) != PeerDown {
		t.Fatal("ErrCircuitOpen should classify as peer-down")
	}
}

func TestDoBreakerRecoversViaProbe(t *testing.T) {
	p := Policy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Millisecond}
	clock := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(p, nil)
	b.now = clock.now
	_, _ = Do(context.Background(), p, b, 0, Hooks{},
		func(context.Context) (int, error) { return 0, transport.ErrUnreachable })
	clock.t = clock.t.Add(time.Minute)
	v, err := Do(context.Background(), p, b, 0, Hooks{},
		func(context.Context) (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("probe call = (%d, %v), want (7, nil)", v, err)
	}
	if b.State() != Closed {
		t.Fatal("successful probe should close the breaker")
	}
}

func TestDoSleepInterruptedByCancel(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseBackoff: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Do(ctx, p, nil, 0, Hooks{}, func(context.Context) (int, error) {
			calls++
			return 0, errors.New("flaky")
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Do = %v, want Canceled", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not unwind from backoff sleep on cancel")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestStringLabels(t *testing.T) {
	if Transient.String() != "transient" || PeerDown.String() != "peer-down" ||
		Aborted.String() != "aborted" || Permanent.String() != "permanent" {
		t.Error("class labels changed")
	}
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Error("breaker state labels changed")
	}
	if Class(42).String() == "" || BreakerState(42).String() == "" {
		t.Error("unknown labels should still render")
	}
}
