package sim

import (
	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/perfmodel"
)

// NoPFSVariant configures ablations of the NoPFS policy, isolating the
// contribution of each design choice (DESIGN.md Sec. 5).
type NoPFSVariant struct {
	// RandomPlacement fills storage classes in first-access order instead
	// of by access frequency — ablates the Sec. 3.1 analysis.
	RandomPlacement bool
	// NoRemote disables peer fetches — ablates distributed caching.
	NoRemote bool
	// TinyStaging shrinks the lookahead window to one mini-batch —
	// ablates clairvoyant prefetch depth.
	TinyStaging bool
}

// Name returns a label describing the ablation.
func (v NoPFSVariant) Name() string {
	name := "NoPFS"
	if v.RandomPlacement {
		name += "-randplace"
	}
	if v.NoRemote {
		name += "-noremote"
	}
	if v.TinyStaging {
		name += "-tinybuf"
	}
	return name
}

// nopfsAblated is NoPFS with parts switched off.
type nopfsAblated struct {
	v      NoPFSVariant
	assign *cachepolicy.Assignment
}

// NewNoPFSVariant builds an ablated NoPFS policy.
func NewNoPFSVariant(v NoPFSVariant) Policy { return &nopfsAblated{v: v} }

func (n *nopfsAblated) Name() string { return n.v.Name() }

func (n *nopfsAblated) Prepare(env *Env) (float64, error) {
	if n.v.RandomPlacement {
		n.assign = env.AssignRandomPlacement()
	} else {
		n.assign = env.AssignNoPFS()
	}
	return 0, nil
}

func (n *nopfsAblated) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (n *nopfsAblated) Coverage(*Env) float64             { return 1 }
func (n *nopfsAblated) Synchronous() bool                 { return false }
func (n *nopfsAblated) PrefetchThreads(env *Env) int      { return nodeThreads(env) }

func (n *nopfsAblated) StagingMB(env *Env) float64 {
	if n.v.TinyStaging {
		var meanMB float64
		if len(env.SizesMB) > 0 {
			var sum float64
			for _, s := range env.SizesMB {
				sum += s
			}
			meanMB = sum / float64(len(env.SizesMB))
		}
		return float64(env.Cfg.Work.BatchPerWorker) * meanMB
	}
	return nodeStagingMB(env)
}

func (n *nopfsAblated) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	localClass := n.assign.LocalAvail(0, k, int32(f))
	remoteClass, holder := -1, -1
	if !n.v.NoRemote {
		remoteClass, holder = n.assign.RemoteAvail(0, k, int32(f))
	}
	ch := env.Rate.Best(sz, localClass, remoteClass, env.Gamma())
	if ch.Loc == perfmodel.LocRemote {
		ch.Holder = int32(holder)
	}
	return ch
}
