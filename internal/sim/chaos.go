package sim

import (
	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/perfmodel"
)

// This file is the simulator's half of the fault-injection contract
// (internal/chaos): crash re-planning reshapes the simulated worker's stream
// before the hot loop, and chaosAdjust stretches per-fetch durations inside
// it. All adjustments are duration-only (the policy's source decisions and
// the γ heuristic see the fault-free world), which is what makes removing a
// non-structural fault provably never slow a run — the monotonicity law the
// invariant suite asserts.

// chaosAdjust applies the per-fetch fault effects to one source choice:
// crashed-holder rerouting, tier bandwidth rescaling, and fabric
// latency/jitter/transient failures. f is the stream position (the
// deterministic fabric-draw index); epoch the current epoch.
func chaosAdjust(env *Env, sched *chaos.Schedule, epoch, f int, sz float64, choice *perfmodel.Choice, res *Result) {
	n := env.Plan.N
	// A crashed holder serves nothing: the fetch lands on the PFS, which is
	// always available (its clairvoyant placement was redistributed, but the
	// bytes it cached are gone).
	if choice.Loc == perfmodel.LocRemote && sched.CrashedAt(int(choice.Holder), epoch, n) {
		*choice = perfmodel.Choice{
			Loc: perfmodel.LocPFS, Class: -1,
			Seconds: env.Rate.FetchPFS(sz, env.Gamma()),
		}
	}
	// Tier degradation divides the serving tier's bandwidth.
	switch choice.Loc {
	case perfmodel.LocPFS:
		choice.Seconds *= sched.TierFactor(chaos.PFSTier, epoch)
	case perfmodel.LocLocal, perfmodel.LocRemote:
		if choice.Class >= 0 {
			choice.Seconds *= sched.TierFactor(choice.Class, epoch)
		}
	}
	// Fabric faults hit remote fetches only: added latency/jitter, and a
	// transient failure costs the full timed-out attempt plus the PFS
	// fallback (never cheaper than succeeding, so fault removal is monotone
	// even when a policy's remote pick was slower than the PFS).
	if choice.Loc == perfmodel.LocRemote {
		delay, fail := sched.FabricCall(0, uint64(f))
		choice.Seconds += delay
		if fail {
			choice.Seconds += env.Rate.FetchPFS(sz, env.Gamma()) * sched.TierFactor(chaos.PFSTier, epoch)
			res.RemoteFalsePositives++
		}
	}
}

// chaosStream applies crash re-planning to the simulated worker's stream:
// from each crash epoch onwards, the crashed workers' plan entries are
// redistributed round-robin across the survivors, and worker 0 — the
// simulated survivor, by construction never the crashed rank — picks up its
// share. The returned epochEnds carries the now-unequal cumulative epoch
// boundaries; a fault-free schedule returns the stream untouched with nil
// boundaries (the uniform legacy rule).
//
// Redistribution slices the policy's stream into E near-equal chunks, so
// policies that reorder or cycle their stream (DeepIO opportunistic,
// ParallelStaging) keep their own epoch structure while still absorbing the
// crashed workers' plan entries.
func chaosStream(env *Env, stream []access.SampleID) ([]access.SampleID, []int) {
	sched := env.Chaos
	n := env.Plan.N
	if sched == nil || !sched.HasCrashes(n) || len(stream) == 0 {
		return stream, nil
	}
	e0 := len(stream) / env.Plan.E
	rem := len(stream) % env.Plan.E
	out := make([]access.SampleID, 0, len(stream)+len(stream)/n+1)
	ends := make([]int, 0, env.Plan.E)
	off := 0
	for e := 0; e < env.Plan.E; e++ {
		size := e0
		if e < rem {
			size++
		}
		out = append(out, stream[off:off+size]...)
		off += size
		if crashed := sched.CrashedWorkers(e, n); len(crashed) > 0 {
			survivors := n - len(crashed)
			for _, w := range crashed {
				// Worker w's plan entries for this epoch, from the shared
				// artifact streams.
				pe := env.Plan.SamplesPerEpoch(w)
				ws := env.Art.Streams[w]
				lo, hi := e*pe, (e+1)*pe
				if hi > len(ws) {
					hi = len(ws)
				}
				// Survivors split the orphaned entries round-robin; worker 0
				// is survivor index 0 and takes positions 0, S, 2S, ...
				for i := lo; i < hi; i += survivors {
					out = append(out, ws[i])
				}
			}
		}
		ends = append(ends, len(out))
	}
	return out, ends
}
