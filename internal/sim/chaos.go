package sim

import (
	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/perfmodel"
)

// This file is the simulator's half of the fault-injection contract
// (internal/chaos): crash re-planning reshapes the simulated worker's stream
// before the hot loop, and chaosAdjust stretches per-fetch durations inside
// it. All adjustments are duration-only (the policy's source decisions and
// the γ heuristic see the fault-free world), which is what makes removing a
// non-structural fault provably never slow a run — the monotonicity law the
// invariant suite asserts.

// chaosAdjust applies the per-fetch fault effects to one source choice:
// crashed-holder rerouting, tier bandwidth rescaling, and fabric
// latency/jitter/transient failures. f is the stream position (the
// deterministic fabric-draw index); epoch the current epoch.
func chaosAdjust(env *Env, sched *chaos.Schedule, epoch, f int, sz float64, choice *perfmodel.Choice, res *Result) {
	n := env.Plan.N
	// A crashed holder serves nothing: the fetch lands on the PFS, which is
	// always available (its clairvoyant placement was redistributed, but the
	// bytes it cached are gone).
	if choice.Loc == perfmodel.LocRemote && sched.CrashedAt(int(choice.Holder), epoch, n) {
		*choice = perfmodel.Choice{
			Loc: perfmodel.LocPFS, Class: -1,
			Seconds: env.Rate.FetchPFS(sz, env.Gamma()),
		}
	}
	// Tier degradation divides the serving tier's bandwidth.
	switch choice.Loc {
	case perfmodel.LocPFS:
		choice.Seconds *= sched.TierFactor(chaos.PFSTier, epoch)
	case perfmodel.LocLocal, perfmodel.LocRemote:
		if choice.Class >= 0 {
			choice.Seconds *= sched.TierFactor(choice.Class, epoch)
		}
	}
	// Fabric faults hit remote fetches only: added latency/jitter, and a
	// transient failure costs the full timed-out attempt plus the PFS
	// fallback (never cheaper than succeeding, so fault removal is monotone
	// even when a policy's remote pick was slower than the PFS).
	if choice.Loc == perfmodel.LocRemote {
		delay, fail := sched.FabricCall(0, uint64(f))
		choice.Seconds += delay
		if fail {
			choice.Seconds += env.Rate.FetchPFS(sz, env.Gamma()) * sched.TierFactor(chaos.PFSTier, epoch)
			res.RemoteFalsePositives++
		}
	}
}

// chaosStream applies crash re-planning to the simulated worker's stream:
// from each crash epoch onwards, the crashed workers' plan entries are
// redistributed round-robin across the survivors, and worker 0 — the
// simulated survivor, by construction never the crashed rank — picks up its
// share. The returned epochEnds carries the now-unequal cumulative epoch
// boundaries; a fault-free schedule returns the stream untouched with nil
// boundaries (the uniform legacy rule).
//
// The redistribution rule itself lives in chaos.RedistributeStream, shared
// verbatim with the live engine (nopfs) so sim-vs-live stall under the same
// crash profile converges; the simulator evaluates it for worker 0, which
// crashRank guarantees is always a survivor.
func chaosStream(env *Env, stream []access.SampleID) ([]access.SampleID, []int) {
	return env.Chaos.RedistributeStream(0, env.Plan.N, env.Plan.E, stream,
		env.Plan.SamplesPerEpoch,
		func(w int) []access.SampleID { return env.Art.Streams[w] })
}
