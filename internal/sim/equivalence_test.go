package sim

import (
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/plancache"
)

// equivalencePanels are the Fig. 8 panels covered by the cached-vs-naive
// equivalence table: one per storage regime shape (tiny/partial/oversized
// dataset), all at test scale.
var equivalencePanels = []string{"fig8a", "fig8b", "fig8e"}

// runAllPolicies simulates every policy on the panel and returns the
// results keyed by policy name.
func runAllPolicies(t *testing.T, id string, seed uint64) map[string]*Result {
	t.Helper()
	s, err := ScenarioByID(id)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(testScale, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*Result{}
	for _, pol := range AllPolicies() {
		r, err := Run(cfg, pol)
		if err != nil {
			t.Fatalf("policy %s: %v", pol.Name(), err)
		}
		out[r.Policy] = r
	}
	return out
}

// TestCachedMatchesNaiveArtifactPath is the end-to-end equivalence gate:
// for every policy on several panels, the full simulator Result (timing
// series, per-location breakdowns, coverage, failure flags) must be
// byte-identical between the naive single-threaded artifact path and the
// cached/parallel path — both cold and warm.
func TestCachedMatchesNaiveArtifactPath(t *testing.T) {
	for _, id := range equivalencePanels {
		id := id
		t.Run(id, func(t *testing.T) {
			// Collected in a closure so the deferred restore runs even when
			// runAllPolicies aborts via t.Fatal (Goexit): global naive mode
			// must never leak into later tests.
			naive := func() map[string]*Result {
				defer plancache.SetNaive(plancache.SetNaive(true))
				return runAllPolicies(t, id, 42)
			}()

			cold := runAllPolicies(t, id, 42) // may or may not hit earlier tests' entries
			warm := runAllPolicies(t, id, 42) // guaranteed warm

			for name, want := range naive {
				for pass, got := range map[string]*Result{"cold": cold[name], "warm": warm[name]} {
					if got == nil {
						t.Fatalf("%s: missing %s result", name, pass)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s: %s cached result differs from naive path:\n got %+v\nwant %+v",
							name, pass, got, want)
					}
				}
			}
		})
	}
}

// TestWarmCellsDoZeroShuffleWork is the acceptance probe: once a scenario's
// plan artifacts are cached, re-running the full policy panel — the shape of
// a warm sweep-grid cell — performs zero epoch shuffles.
func TestWarmCellsDoZeroShuffleWork(t *testing.T) {
	runAllPolicies(t, "fig8a", 17) // prime the cache for this seed
	before := access.ShuffleCount()
	runAllPolicies(t, "fig8a", 17)
	if n := access.ShuffleCount() - before; n != 0 {
		t.Fatalf("warm policy panel performed %d shuffles, want 0", n)
	}
}

// TestPolicyPanelSharesOneShufflePass verifies the cache collapses a cold
// P-policy panel to a single shuffle pass (E shuffles), not P×E.
func TestPolicyPanelSharesOneShufflePass(t *testing.T) {
	s, err := ScenarioByID("fig8b")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(testScale, 23) // fresh seed: cold for this test
	if err != nil {
		t.Fatal(err)
	}
	before := access.ShuffleCount()
	for _, pol := range AllPolicies() {
		if _, err := Run(cfg, pol); err != nil {
			t.Fatal(err)
		}
	}
	if n := access.ShuffleCount() - before; n != int64(cfg.Work.Epochs) {
		t.Fatalf("cold policy panel performed %d shuffles, want one pass of %d", n, cfg.Work.Epochs)
	}
}

// TestThreadPoolHeapMatchesScan drives the wide (heap) and narrow (scan)
// thread-pool variants through an identical schedule and asserts identical
// completion times — the property that keeps p₀ > 8 configurations
// bit-identical to the old linear scan.
func TestThreadPoolHeapMatchesScan(t *testing.T) {
	const p0 = 16
	heap := newThreadPool(p0, 1.0)
	scan := newThreadPool(p0, 1.0)
	scan.heap = false
	if !heap.heap {
		t.Fatal("p0=16 should use the heap variant")
	}
	// Deterministic pseudo-random schedule of (roomTime, readDur) pairs.
	room, dur := 0.0, 0.0
	for i := 0; i < 10000; i++ {
		room = float64((i*2654435761)%1000) / 250
		dur = 0.01 + float64((i*40503)%97)/100
		h := heap.schedule(room, dur)
		s := scan.schedule(room, dur)
		if h != s {
			t.Fatalf("step %d: heap %v != scan %v", i, h, s)
		}
	}
}
