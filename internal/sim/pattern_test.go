package sim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/plancache"
)

// patternSpecs are the access-pattern specs the simulator equivalence tests
// cross with the policy panel: one per pattern kind, plus the uniform
// baseline spelled explicitly.
var patternSpecs = []string{
	"",
	"zipf:s=1.1,drift=0.05",
	"boost:frac=0.1,factor=8",
	"curriculum:buckets=4",
	"mix:w=0.6/0.3/0.1",
	"elastic:join=1@1,leave=2@2",
}

// patternConfig builds a test-scale panel config with the given access spec.
func patternConfig(t *testing.T, spec string, seed uint64) Config {
	t.Helper()
	s, err := ScenarioByID("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(testScale, seed)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := access.CanonicalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Access = canon
	return cfg
}

// genericWrap hides the concrete policy type from kernelFor's type switch,
// forcing the exact per-sample generic kernel while forwarding every policy
// decision unchanged.
type genericWrap struct{ Policy }

// TestPatternKernelsMatchGeneric is the kernel-equivalence gate across the
// access-pattern axis: for every pattern and every policy, the specialized
// span kernels must stay bit-identical to the generic per-sample loop.
// Content patterns reorder and reweight the stream but never change the
// per-fetch cost structure the kernels exploit; elastic plans dispatch to
// the generic kernel outright, so the comparison is trivially exact there.
func TestPatternKernelsMatchGeneric(t *testing.T) {
	for _, spec := range patternSpecs {
		name := spec
		if name == "" {
			name = "uniform"
		}
		t.Run(name, func(t *testing.T) {
			cfg := patternConfig(t, spec, 91)
			for _, pol := range AllPolicies() {
				fast, err := Run(cfg, pol)
				if err != nil {
					t.Fatalf("%s: %v", pol.Name(), err)
				}
				slow, err := Run(cfg, genericWrap{pol})
				if err != nil {
					t.Fatalf("%s generic: %v", pol.Name(), err)
				}
				if !reflect.DeepEqual(fast, slow) {
					t.Errorf("%s under %q: specialized kernel differs from generic loop:\n got %+v\nwant %+v",
						pol.Name(), spec, fast, slow)
				}
			}
		})
	}
}

// TestPatternCachedMatchesNaive extends the cached-vs-naive artifact
// equivalence to every access pattern: the parallel plan-cache build and the
// naive single-threaded path must produce byte-identical Results.
func TestPatternCachedMatchesNaive(t *testing.T) {
	for _, spec := range patternSpecs {
		if spec == "" {
			continue // the uniform case is TestCachedMatchesNaiveArtifactPath
		}
		t.Run(spec, func(t *testing.T) {
			cfg := patternConfig(t, spec, 57)
			naive := func() map[string]*Result {
				defer plancache.SetNaive(plancache.SetNaive(true))
				out := map[string]*Result{}
				for _, pol := range AllPolicies() {
					r, err := Run(cfg, pol)
					if err != nil {
						t.Fatal(err)
					}
					out[r.Policy] = r
				}
				return out
			}()
			for _, pol := range AllPolicies() {
				got, err := Run(cfg, pol)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, naive[got.Policy]) {
					t.Errorf("%s under %q: cached result differs from naive path", got.Policy, spec)
				}
			}
		})
	}
}

// TestElasticForcesGenericKernel pins the dispatch rule: an elastic plan
// breaks the uniform-epoch-span precondition of every specialized kernel,
// exactly like a chaos schedule does.
func TestElasticForcesGenericKernel(t *testing.T) {
	for _, pol := range AllPolicies() {
		if k := kernelFor(pol, nil, true); k.kind != kernelGeneric {
			t.Errorf("%s: elastic plan got kernel kind %d, want generic", pol.Name(), k.kind)
		}
	}
	if k := kernelFor(NewNoPFS(), nil, false); k.kind == kernelGeneric {
		t.Error("static plan lost its specialized kernel")
	}
}

// TestElasticEpochAccounting checks the simulated worker's epoch series
// tracks the elastic boundaries: every plan epoch appears exactly once, with
// inactive epochs recorded as zero-duration entries.
func TestElasticEpochAccounting(t *testing.T) {
	cfg := patternConfig(t, "elastic:join=1@1,leave=2@2", 33)
	res, err := Run(cfg, NewNoPFS())
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("run failed: %s", res.FailReason)
	}
	if got, want := len(res.EpochSeconds), cfg.Work.Epochs; got != want {
		t.Fatalf("EpochSeconds has %d entries, want %d", got, want)
	}
	art := plancache.Shared().Artifacts(*cfg.Plan())
	if len(art.EpochEnds) == 0 {
		t.Fatal("elastic plan has no EpochEnds artifacts")
	}
	ends := art.EpochEnds[0]
	var total float64
	for e, sec := range res.EpochSeconds {
		start := 0
		if e > 0 {
			start = ends[e-1]
		}
		if ends[e] == start && sec != 0 {
			t.Errorf("epoch %d: worker 0 inactive but epoch took %g s", e, sec)
		}
		total += sec
	}
	if diff := total - res.ExecSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("epoch series sums to %g, exec time %g", total, res.ExecSeconds)
	}
}

// TestElasticRejectsStructuralChaos pins the validation rule: crash
// redistribution slices peer streams assuming uniform per-epoch counts,
// which an elastic membership schedule violates.
func TestElasticRejectsStructuralChaos(t *testing.T) {
	cfg := patternConfig(t, "elastic:join=1@1", 7)
	prof, err := chaos.ParseProfile("crash:1@1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = prof
	if err := cfg.Validate(); err == nil {
		t.Fatal("elastic pattern + crash profile validated, want error")
	} else if !strings.Contains(err.Error(), "elastic") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Non-structural chaos (a straggler) composes fine with elastic plans.
	prof, err = chaos.ParseProfile("straggler:1x2@1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = prof
	if err := cfg.Validate(); err != nil {
		t.Fatalf("elastic + non-structural chaos rejected: %v", err)
	}
	// Content patterns keep uniform partitions, so crashes stay legal.
	cfg = patternConfig(t, "zipf:s=1.1", 7)
	prof, err = chaos.ParseProfile("crash:1@1")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = prof
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zipf + crash rejected: %v", err)
	}
}

// TestDigestCoversAccessPattern: two configs differing only in access spec
// must produce distinct digests (the memo-soundness precondition), and the
// digest must be a pure function of the spec string.
func TestDigestCoversAccessPattern(t *testing.T) {
	base := patternConfig(t, "", 11)
	seen := map[uint64]string{}
	for _, spec := range patternSpecs {
		cfg := base
		canon, err := access.CanonicalSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Access = canon
		d := cfg.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between %q and %q", prev, spec)
		}
		seen[d] = spec
		cfg2 := base
		cfg2.Access = canon
		if cfg2.Digest() != d {
			t.Errorf("digest not deterministic for %q", spec)
		}
	}
}
