package sim

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/perfmodel"
)

// Policy names match the paper's Fig. 8 legend.
const (
	NameLowerBound      = "LowerBound"
	NameNaive           = "Naive"
	NameStagingBuffer   = "StagingBuffer"
	NameDeepIOOrdered   = "DeepIO (Ord.)"
	NameDeepIOOpp       = "DeepIO (Opp.)"
	NameParallelStaging = "ParallelStaging"
	NameLBANNDynamic    = "LBANN (Dynamic)"
	NameLBANNPreload    = "LBANN (Preloading)"
	NameLocalityAware   = "LocalityAware"
	NameNoPFS           = "NoPFS"
)

// AllPolicies returns every policy of the paper's comparison, in the order
// of the Fig. 8 bars.
func AllPolicies() []Policy {
	return []Policy{
		NewNaive(),
		NewStagingBuffer(),
		NewDeepIO(false),
		NewDeepIO(true),
		NewParallelStaging(),
		NewLBANN(false),
		NewLBANN(true),
		NewLocalityAware(),
		NewNoPFS(),
		NewLowerBound(),
	}
}

// PolicyByName builds a policy from its Fig. 8 label.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case NameLowerBound:
		return NewLowerBound(), nil
	case NameNaive:
		return NewNaive(), nil
	case NameStagingBuffer:
		return NewStagingBuffer(), nil
	case NameDeepIOOrdered:
		return NewDeepIO(false), nil
	case NameDeepIOOpp:
		return NewDeepIO(true), nil
	case NameParallelStaging:
		return NewParallelStaging(), nil
	case NameLBANNDynamic:
		return NewLBANN(false), nil
	case NameLBANNPreload:
		return NewLBANN(true), nil
	case NameLocalityAware:
		return NewLocalityAware(), nil
	case NameNoPFS:
		return NewNoPFS(), nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q", name)
}

// stagePrestageSeconds models copying `bytes` of shard data from the PFS to
// local storage before training: every worker stages concurrently, so each
// gets a 1/N share of the PFS, further bounded by the local write rate of
// the fastest class.
func stagePrestageSeconds(env *Env, bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	rate := env.Model.Sys.PFS.PerClient(env.Plan.N)
	if len(env.Model.Sys.Node.Classes) > 0 {
		cls := env.Model.Sys.Node.Classes[0]
		if w := cls.Write.At(float64(cls.Threads)); w < rate {
			rate = w
		}
	}
	return float64(bytes) / (1 << 20) / rate
}

// cachedList returns worker 0's cached samples in fill order, flattened
// across classes.
func cachedList(a *cachepolicy.Assignment) []access.SampleID {
	var out []access.SampleID
	for _, class := range a.FillOrder[0] {
		out = append(out, class...)
	}
	return out
}

// cycleStream builds a stream of length n by cycling list; returns nil when
// list is empty.
func cycleStream(list []access.SampleID, n int) []access.SampleID {
	if len(list) == 0 {
		return nil
	}
	out := make([]access.SampleID, n)
	for i := range out {
		out[i] = list[i%len(list)]
	}
	return out
}

// ---------------------------------------------------------------------------
// LowerBound ("Perfect"): no fetch cost at all; only compute and the staging
// write remain, which never stall the trainer. Matches the paper's
// unreachable lower bound.

type lowerBound struct{}

// NewLowerBound returns the Perfect policy.
func NewLowerBound() Policy { return lowerBound{} }

func (lowerBound) Name() string                      { return NameLowerBound }
func (lowerBound) Prepare(*Env) (float64, error)     { return 0, nil }
func (lowerBound) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (lowerBound) Coverage(*Env) float64             { return 1 }
func (lowerBound) Synchronous() bool                 { return false }
func (lowerBound) PrefetchThreads(env *Env) int      { return nodeThreads(env) }
func (lowerBound) StagingMB(env *Env) float64        { return nodeStagingMB(env) }

func (lowerBound) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	return perfmodel.Choice{Loc: perfmodel.LocLocal, Class: -1, Seconds: 0}
}

// ---------------------------------------------------------------------------
// Naive: synchronous reads from the PFS, no prefetching, no caching. Every
// worker hammers the PFS all the time (γ = N).

type naive struct{}

// NewNaive returns the Naive policy.
func NewNaive() Policy { return naive{} }

func (naive) Name() string                      { return NameNaive }
func (naive) Prepare(*Env) (float64, error)     { return 0, nil }
func (naive) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (naive) Coverage(*Env) float64             { return 1 }
func (naive) Synchronous() bool                 { return true }
func (naive) PrefetchThreads(*Env) int          { return 1 }
func (naive) StagingMB(env *Env) float64        { return doubleBufferMB(env) }

func (naive) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	return perfmodel.Choice{
		Loc: perfmodel.LocPFS, Class: -1,
		Seconds: env.Rate.FetchPFS(env.SizesMB[k], env.Plan.N),
	}
}

// ---------------------------------------------------------------------------
// StagingBuffer: the double-buffering/tf.data model — prefetch in access
// order into the staging buffer, always from the PFS, drop after use.

type stagingBuffer struct{}

// NewStagingBuffer returns the StagingBuffer policy.
func NewStagingBuffer() Policy { return stagingBuffer{} }

func (stagingBuffer) Name() string                      { return NameStagingBuffer }
func (stagingBuffer) Prepare(*Env) (float64, error)     { return 0, nil }
func (stagingBuffer) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (stagingBuffer) Coverage(*Env) float64             { return 1 }
func (stagingBuffer) Synchronous() bool                 { return false }
func (stagingBuffer) PrefetchThreads(*Env) int          { return 1 }
func (stagingBuffer) StagingMB(env *Env) float64        { return doubleBufferMB(env) }

func (stagingBuffer) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	return perfmodel.Choice{
		Loc: perfmodel.LocPFS, Class: -1,
		Seconds: env.Rate.FetchPFS(env.SizesMB[k], env.Plan.N),
	}
}

// ---------------------------------------------------------------------------
// DeepIO (Zhu et al.): workers cache samples in RAM first-touch during
// epoch 0 and serve each other over RDMA. Ordered mode preserves the global
// access order, reading uncached samples from the PFS forever. Opportunistic
// mode relaxes the order after epoch 0 to consume only cached samples —
// faster, but it no longer accesses the entire dataset when it exceeds
// aggregate RAM.

type deepIO struct {
	opportunistic bool
	assign        *cachepolicy.Assignment
}

// NewDeepIO returns the DeepIO policy in ordered or opportunistic mode.
func NewDeepIO(opportunistic bool) Policy { return &deepIO{opportunistic: opportunistic} }

func (d *deepIO) Name() string {
	if d.opportunistic {
		return NameDeepIOOpp
	}
	return NameDeepIOOrdered
}

func (d *deepIO) Prepare(env *Env) (float64, error) {
	d.assign = env.AssignFirstTouch()
	return 0, nil
}

func (d *deepIO) Stream(env *Env) []access.SampleID {
	base := env.Streams[0]
	if !d.opportunistic {
		return base
	}
	perEpoch := env.Plan.SamplesPerEpoch(0)
	cached := cachedList(d.assign)
	if len(cached) == 0 {
		return base
	}
	// Epoch 0 fills the caches in true order; later epochs cycle local
	// content only.
	out := make([]access.SampleID, 0, len(base))
	out = append(out, base[:min(perEpoch, len(base))]...)
	for e := 1; e < env.Plan.E; e++ {
		out = append(out, cycleStream(cached, perEpoch)...)
	}
	return out
}

func (d *deepIO) Coverage(env *Env) float64 {
	if !d.opportunistic {
		return 1
	}
	// After epoch 0 only cached samples are read; but epoch 0 itself
	// touches everything, so first-run coverage is full while steady-state
	// coverage is the cached fraction. Report the steady-state fraction,
	// matching the paper's "does not access entire dataset" flag.
	cov := d.assign.Coverage(env.Cfg.DS)
	if cov > 1 {
		cov = 1
	}
	return cov
}

func (d *deepIO) Synchronous() bool          { return false }
func (d *deepIO) PrefetchThreads(*Env) int   { return 1 }
func (d *deepIO) StagingMB(env *Env) float64 { return nodeStagingMB(env) }

func (d *deepIO) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	if c := d.assign.LocalAvail(0, k, int32(f)); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocLocal, Class: c, Seconds: env.Rate.FetchLocal(sz, c)}
	}
	if c, w := d.assign.RemoteAvail(0, k, int32(f)); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocRemote, Class: c, Seconds: env.Rate.FetchRemote(sz, c), Holder: int32(w)}
	}
	return perfmodel.Choice{Loc: perfmodel.LocPFS, Class: -1, Seconds: env.Rate.FetchPFS(sz, env.Gamma())}
}

// ---------------------------------------------------------------------------
// ParallelStaging: classic data sharding. Before training, every worker
// copies its shard (capped by local capacity) from the PFS; afterwards it
// reads exclusively from local storage. Fast, but the access order is no
// longer a global shuffle and, when S > N*D, part of the dataset is never
// read.

type parallelStaging struct {
	assign *cachepolicy.Assignment
}

// NewParallelStaging returns the data-sharding policy.
func NewParallelStaging() Policy { return &parallelStaging{} }

func (p *parallelStaging) Name() string { return NameParallelStaging }

func (p *parallelStaging) Prepare(env *Env) (float64, error) {
	p.assign = env.AssignShard()
	return stagePrestageSeconds(env, p.assign.CachedBytes[0]), nil
}

func (p *parallelStaging) Stream(env *Env) []access.SampleID {
	cached := cachedList(p.assign)
	out := cycleStream(cached, len(env.Streams[0]))
	if out == nil {
		return env.Streams[0]
	}
	return out
}

func (p *parallelStaging) Coverage(env *Env) float64 {
	return p.assign.Coverage(env.Cfg.DS)
}

func (p *parallelStaging) Synchronous() bool          { return false }
func (p *parallelStaging) PrefetchThreads(*Env) int   { return 1 }
func (p *parallelStaging) StagingMB(env *Env) float64 { return nodeStagingMB(env) }

func (p *parallelStaging) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	if c := p.assign.Local(0, k); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocLocal, Class: c, Seconds: env.Rate.FetchLocal(sz, c)}
	}
	// Only reachable when the worker has no local storage at all.
	return perfmodel.Choice{Loc: perfmodel.LocPFS, Class: -1, Seconds: env.Rate.FetchPFS(sz, env.Gamma())}
}

// ---------------------------------------------------------------------------
// LBANN data store (Jacobs et al.): an in-memory distributed cache. Dynamic
// mode caches first-touch during epoch 0; preloading mode stages shards into
// RAM before training. Both serve later epochs from local or remote RAM —
// and both fail outright when the dataset exceeds aggregate RAM.

type lbann struct {
	preloading bool
	assign     *cachepolicy.Assignment
}

// NewLBANN returns the LBANN data-store policy in dynamic or preloading mode.
func NewLBANN(preloading bool) Policy { return &lbann{preloading: preloading} }

func (l *lbann) Name() string {
	if l.preloading {
		return NameLBANNPreload
	}
	return NameLBANNDynamic
}

func (l *lbann) Prepare(env *Env) (float64, error) {
	node := env.Cfg.Sys.Node
	if len(node.Classes) == 0 {
		return 0, fmt.Errorf("lbann: no RAM storage class available")
	}
	ramBytes := int64(node.Classes[0].CapacityMB * (1 << 20))
	aggregate := ramBytes * int64(env.Plan.N)
	if env.Cfg.DS.TotalSize() > aggregate {
		return 0, fmt.Errorf("lbann: dataset (%d bytes) exceeds aggregate RAM (%d bytes)",
			env.Cfg.DS.TotalSize(), aggregate)
	}
	if l.preloading {
		l.assign = env.AssignPreload()
		return stagePrestageSeconds(env, l.assign.CachedBytes[0]), nil
	}
	l.assign = env.AssignFirstTouch()
	return 0, nil
}

func (l *lbann) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (l *lbann) Coverage(*Env) float64             { return 1 }
func (l *lbann) Synchronous() bool                 { return false }
func (l *lbann) PrefetchThreads(*Env) int          { return 1 }
func (l *lbann) StagingMB(env *Env) float64        { return nodeStagingMB(env) }

func (l *lbann) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	if c := l.assign.LocalAvail(0, k, int32(f)); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocLocal, Class: c, Seconds: env.Rate.FetchLocal(sz, c)}
	}
	if c, w := l.assign.RemoteAvail(0, k, int32(f)); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocRemote, Class: c, Seconds: env.Rate.FetchRemote(sz, c), Holder: int32(w)}
	}
	return perfmodel.Choice{Loc: perfmodel.LocPFS, Class: -1, Seconds: env.Rate.FetchPFS(sz, env.Gamma())}
}

// ---------------------------------------------------------------------------
// LocalityAware (Yang & Cong): the dataset is sharded across node-local
// storage once, and every epoch's batches are reordered so that each worker
// consumes mostly samples it already holds; the shortfall is fetched from
// peers, and samples that fit nowhere come from the PFS. Full-dataset
// randomization is preserved globally.

type localityAware struct {
	assign *cachepolicy.Assignment
}

// NewLocalityAware returns the locality-aware loading policy.
func NewLocalityAware() Policy { return &localityAware{} }

func (l *localityAware) Name() string { return NameLocalityAware }

func (l *localityAware) Prepare(env *Env) (float64, error) {
	l.assign = env.AssignShard()
	return stagePrestageSeconds(env, l.assign.CachedBytes[0]), nil
}

// Stream reorders each global batch so worker 0 preferentially receives the
// samples it stores locally; the remainder of its per-batch quota is filled
// from the batch's leftover samples.
func (l *localityAware) Stream(env *Env) []access.SampleID {
	plan := env.Plan
	b := plan.BatchPerWorker
	B := plan.GlobalBatch()
	out := make([]access.SampleID, 0, len(env.Streams[0]))
	// Per-batch scratch, reused across all batches of the run.
	mine := make([]access.SampleID, 0, b)
	other := make([]access.SampleID, 0, B)
	for e := 0; e < plan.E; e++ {
		order := env.EpochOrder(e)
		limit := plan.EpochLimit()
		for start := 0; start < limit; start += B {
			end := start + B
			if end > limit {
				end = limit
			}
			mine, other = mine[:0], other[:0]
			for _, k := range order[start:end] {
				if l.assign.Local(0, k) >= 0 && len(mine) < b {
					mine = append(mine, k)
				} else {
					other = append(other, k)
				}
			}
			quota := (end - start + plan.N - 1) / plan.N
			if quota > b {
				quota = b
			}
			out = append(out, mine...)
			for i := 0; len(mine)+i < quota && i < len(other); i++ {
				out = append(out, other[i])
			}
		}
	}
	return out
}

func (l *localityAware) Coverage(*Env) float64      { return 1 }
func (l *localityAware) Synchronous() bool          { return false }
func (l *localityAware) PrefetchThreads(*Env) int   { return 1 }
func (l *localityAware) StagingMB(env *Env) float64 { return nodeStagingMB(env) }

func (l *localityAware) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	if c := l.assign.Local(0, k); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocLocal, Class: c, Seconds: env.Rate.FetchLocal(sz, c)}
	}
	if c, w := l.assign.RemoteBest(0, k); c >= 0 {
		return perfmodel.Choice{Loc: perfmodel.LocRemote, Class: c, Seconds: env.Rate.FetchRemote(sz, c), Holder: int32(w)}
	}
	return perfmodel.Choice{Loc: perfmodel.LocPFS, Class: -1, Seconds: env.Rate.FetchPFS(sz, env.Gamma())}
}

// ---------------------------------------------------------------------------
// NoPFS: frequency-based hierarchical placement (Sec. 5.1) + clairvoyant
// prefetching with the argmin fetch rule and the symmetric-progress
// remote-availability heuristic (Sec. 5.2.2).

type nopfs struct {
	assign *cachepolicy.Assignment
}

// NewNoPFS returns the NoPFS policy.
func NewNoPFS() Policy { return &nopfs{} }

func (n *nopfs) Name() string { return NameNoPFS }

func (n *nopfs) Prepare(env *Env) (float64, error) {
	n.assign = env.AssignNoPFS()
	return 0, nil
}

func (n *nopfs) Stream(env *Env) []access.SampleID { return env.Streams[0] }
func (n *nopfs) Coverage(*Env) float64             { return 1 }
func (n *nopfs) Synchronous() bool                 { return false }
func (n *nopfs) PrefetchThreads(env *Env) int      { return nodeThreads(env) }
func (n *nopfs) StagingMB(env *Env) float64        { return nodeStagingMB(env) }

func (n *nopfs) Source(env *Env, f int, k access.SampleID) perfmodel.Choice {
	sz := env.SizesMB[k]
	localClass := n.assign.LocalAvail(0, k, int32(f))
	remoteClass, holder := n.assign.RemoteAvail(0, k, int32(f))
	ch := env.Rate.Best(sz, localClass, remoteClass, env.Gamma())
	if ch.Loc == perfmodel.LocRemote {
		ch.Holder = int32(holder)
	}
	return ch
}

// nodeThreads returns the node's configured staging thread count p0.
func nodeThreads(env *Env) int { return env.Cfg.Sys.Node.Staging.Threads }

// nodeStagingMB returns the node's full staging-buffer capacity.
func nodeStagingMB(env *Env) float64 { return env.Cfg.Sys.Node.Staging.CapacityMB }

// doubleBufferMB returns a two-mini-batch lookahead window (classic
// double-buffered loader), never larger than the node's staging buffer.
func doubleBufferMB(env *Env) float64 {
	var meanMB float64
	if n := len(env.SizesMB); n > 0 {
		var sum float64
		for _, s := range env.SizesMB {
			sum += s
		}
		meanMB = sum / float64(n)
	}
	mb := 2 * float64(env.Cfg.Work.BatchPerWorker) * meanMB
	if limit := nodeStagingMB(env); mb > limit {
		mb = limit
	}
	return mb
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
