package sim

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/hwspec"
)

// Scenario is one of the paper's Fig. 8 simulation setups: a dataset regime
// relative to the storage hierarchy (S < d₁ … ND < S) on the Sec. 6.1 small
// cluster.
type Scenario struct {
	// ID is the figure panel ("fig8a" … "fig8f").
	ID string
	// Label is the paper's caption for the panel.
	Label string
	// Spec is the dataset preset.
	Spec dataset.Spec
	// System is the simulated cluster.
	System hwspec.System
	// Workload holds c, β, batch size, epochs, and worker count. Epochs
	// are calibrated so the panel's lower bound lands near the paper's
	// (the paper does not state its simulated epoch counts; see
	// EXPERIMENTS.md).
	Workload hwspec.Workload
}

// Fig8Scenarios returns the six panels of Fig. 8.
func Fig8Scenarios() []Scenario {
	small := hwspec.SmallCluster()
	w := func(epochs, batch, workers int) hwspec.Workload {
		return hwspec.Workload{
			Name:        "sec6.1",
			ComputeMBps: 64, PreprocMBps: 200,
			BatchPerWorker: batch, Epochs: epochs, Workers: workers,
		}
	}
	return []Scenario{
		{ID: "fig8a", Label: "S < d1, MNIST", Spec: dataset.MNISTSpec(), System: small, Workload: w(5, 32, 4)},
		{ID: "fig8b", Label: "d1 < S < D, ImageNet-1k", Spec: dataset.ImageNet1kSpec(), System: small, Workload: w(5, 32, 4)},
		{ID: "fig8c", Label: "d1 < S < ND, OpenImages", Spec: dataset.OpenImagesSpec(), System: small, Workload: w(5, 32, 4)},
		{ID: "fig8d", Label: "D < S < ND, ImageNet-22k", Spec: dataset.ImageNet22kSpec(), System: small, Workload: w(5, 32, 4)},
		{ID: "fig8e", Label: "ND < S, CosmoFlow", Spec: dataset.CosmoFlowSpec(), System: small, Workload: w(3, 16, 4)},
		{ID: "fig8f", Label: "ND < S, N=8, CosmoFlow 512^3", Spec: dataset.CosmoFlow512Spec(), System: small, Workload: w(1, 1, 8)},
	}
}

// ScenarioByID finds a Fig. 8 scenario by panel id or dataset name.
func ScenarioByID(id string) (Scenario, error) {
	for _, s := range Fig8Scenarios() {
		if s.ID == id || s.Spec.Name == id {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q", id)
}

// ScaleSystem multiplies every cache capacity by factor, leaving throughputs
// and the staging buffer untouched. Shrinking the dataset and the cache
// capacities by the same factor preserves the scenario's regime (S vs d₁ vs
// D vs ND) and its relative results while making runs fast enough for tests
// and benchmarks. The staging buffer is a lookahead window, not a cache:
// scaling it below a few samples would serialise the pipeline in a way the
// paper-scale configuration never does (sample sizes do not shrink).
func ScaleSystem(sys hwspec.System, factor float64) hwspec.System {
	classes := make([]hwspec.StorageClass, len(sys.Node.Classes))
	copy(classes, sys.Node.Classes)
	for i := range classes {
		classes[i].CapacityMB *= factor
	}
	sys.Node.Classes = classes
	return sys
}

// Config materialises the scenario at the given dataset scale (1 = paper
// size). Scales below 1 shrink both the dataset and every storage capacity.
func (s Scenario) Config(scale float64, seed uint64) (Config, error) {
	spec := s.Spec
	sys := s.System
	if scale != 1 {
		spec = spec.Scale(scale)
		sys = ScaleSystem(sys, scale)
	}
	ds, err := dataset.Cached(spec)
	if err != nil {
		return Config{}, err
	}
	cfg := Config{Sys: sys, Work: s.Workload, DS: ds, Seed: seed, DropLast: true}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("scenario %s at scale %g: %w", s.ID, scale, err)
	}
	return cfg, nil
}

// Fig9Config builds the Fig. 9 environment-study configuration: NoPFS on
// ImageNet-22k with the given storage configuration (sizes in GB at paper
// scale) and 5× compute. Grid orchestration lives in internal/sweep; this
// is the per-point config factory it consumes.
func Fig9Config(scale float64, seed uint64, stagingGB, ramGB, ssdGB int) (Config, error) {
	base := hwspec.SmallCluster()
	sys := base
	sys.Name = fmt.Sprintf("fig9-ram%d-ssd%d", ramGB, ssdGB)
	classes := []hwspec.StorageClass{}
	if ramGB > 0 {
		ram := base.Node.Classes[0]
		ram.CapacityMB = float64(ramGB) * 1000
		classes = append(classes, ram)
	}
	if ssdGB > 0 {
		ssd := base.Node.Classes[1]
		ssd.CapacityMB = float64(ssdGB) * 1000
		classes = append(classes, ssd)
	}
	sys.Node.Classes = classes

	spec := dataset.ImageNet22kSpec()
	if scale != 1 {
		spec = spec.Scale(scale)
		sys = ScaleSystem(sys, scale)
	}
	// The staging buffer is deliberately NOT scaled down with the dataset:
	// the paper's preliminary sweep shows 1-5 GB staging buffers perform
	// identically (lookahead is never the limiting factor at these sizes),
	// and scaling it would reintroduce a lookahead limit the paper's
	// configuration does not have.
	sys.Node.Staging.CapacityMB = float64(stagingGB) * 1000
	ds, err := dataset.Cached(spec)
	if err != nil {
		return Config{}, err
	}
	work := hwspec.Workload{
		Name:        "fig9-5x",
		ComputeMBps: 5 * 64, PreprocMBps: 5 * 200,
		BatchPerWorker: 32, Epochs: 5, Workers: 4,
	}
	cfg := Config{Sys: sys, Work: work, DS: ds, Seed: seed, DropLast: true}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
