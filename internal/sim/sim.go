// Package sim is the I/O performance simulator of paper Sec. 6.
//
// It executes the Sec. 4 performance model in virtual time for one
// representative worker (workers are symmetric: same policy, same per-epoch
// work, synchronised by the allreduce in every iteration), modelling:
//
//   - the staging buffer as a byte-budget circular window filled by p₀
//     prefetch threads in access order (Rule 1);
//   - the consumption recurrence t_{i,f} = max(avail_i(f), t_{i,f-1} +
//     s_{R_{f-1}}/c);
//   - source selection per policy, with per-location time accounting;
//   - PFS contention through t(γ), with γ adapting to the fraction of
//     recent fetches that actually hit the PFS;
//   - optional log-normal jitter on PFS fetches, reproducing the tail
//     events ("catastrophically slow reads") the paper observes on shared
//     filesystems.
//
// The simulator is not meant to predict absolute runtimes of a particular
// machine; like the paper's, it captures the relative behaviour of I/O
// policies across dataset/storage-hierarchy regimes.
package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/perfmodel"
	"repro/internal/plancache"
	"repro/internal/prng"
)

// Config describes one simulation run.
type Config struct {
	Sys  hwspec.System
	Work hwspec.Workload
	// DS provides sample count and sizes; payloads are never touched.
	DS dataset.Dataset
	// Seed drives the training shuffles (clairvoyance) and the jitter
	// stream.
	Seed uint64
	// PFSJitter is the σ of a mean-one log-normal multiplier applied to
	// PFS fetch times (0 disables jitter).
	PFSJitter float64
	// DropLast drops trailing partial batches.
	DropLast bool
	// Chaos is the fault/degradation scenario (see internal/chaos). The
	// zero value injects nothing and reproduces the fault-free simulation
	// byte for byte.
	Chaos chaos.Profile
}

// Plan derives the access plan implied by the config.
func (c *Config) Plan() *access.Plan {
	return &access.Plan{
		Seed: c.Seed, F: c.DS.Len(), N: c.Work.Workers, E: c.Work.Epochs,
		BatchPerWorker: c.Work.BatchPerWorker, DropLast: c.DropLast,
	}
}

// Validate reports whether the config is runnable.
func (c *Config) Validate() error {
	if c.DS == nil {
		return fmt.Errorf("sim: config needs a dataset")
	}
	if err := c.Sys.Validate(); err != nil {
		return err
	}
	if err := c.Work.Validate(); err != nil {
		return err
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	return c.Plan().Validate()
}

// Result summarises one simulated run.
type Result struct {
	Policy string
	System string
	// Failed is set when the policy cannot run the scenario (e.g. the
	// LBANN data store with a dataset exceeding aggregate RAM).
	Failed     bool
	FailReason string

	// ExecSeconds is total wall time: setup (prestaging) + training.
	ExecSeconds  float64
	SetupSeconds float64
	// EpochSeconds[e] is the duration of epoch e (epoch 0 includes setup).
	EpochSeconds []float64
	// BatchSeconds holds per-batch durations of the simulated worker.
	BatchSeconds []float64
	// StallSeconds is total time the trainer waited on the staging buffer.
	StallSeconds float64
	// Per-location fetch time and counts; StagingWriteSeconds is the
	// preprocess+store component (the paper's "Staging Buffer" segment).
	LocSeconds          map[perfmodel.Location]float64
	LocCount            map[perfmodel.Location]int64
	StagingWriteSeconds float64
	// Coverage is the fraction of dataset bytes the policy ever reads
	// (< 1 flags the paper's "does not access entire dataset").
	Coverage float64
	// RemoteFalsePositives counts remote fetches that would have missed
	// (heuristic said cached, holder had not reached it yet).
	RemoteFalsePositives int64
}

// Speedup returns other.ExecSeconds / r.ExecSeconds.
func (r *Result) Speedup(other *Result) float64 {
	if r.ExecSeconds == 0 {
		return math.Inf(1)
	}
	return other.ExecSeconds / r.ExecSeconds
}

// Env is the shared state policies consult during a run.
type Env struct {
	Cfg     *Config
	Model   *perfmodel.Model
	Plan    *access.Plan
	SizesMB []float64
	// Streams are the materialised per-worker access streams, shared through
	// the plan-artifact cache. They are immutable: policies that reorder
	// build fresh slices.
	Streams [][]access.SampleID
	// FirstPos0[k] is the simulated worker's first access position of k
	// (-1 if never accessed).
	FirstPos0 []int32
	// Art is the cached artifact set backing Streams/FirstPos0; policies
	// use it for epoch orders and shared placement assignments.
	Art *plancache.Artifacts
	// Chaos is the compiled fault schedule (nil for the fault-free run).
	Chaos *chaos.Schedule

	rng  *prng.Generator
	ewma float64 // recent fraction of staging fetches served by the PFS
}

// newEnv builds the environment shared by all policies for one config. Plan
// artifacts come from the shared plan cache: all P policy cells sharing one
// (scenario, replica seed) perform one shuffle pass instead of P (replicas
// carry distinct derived seeds, so a P×R grid does R passes, not P×R).
func newEnv(cfg *Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := perfmodel.New(cfg.Sys, cfg.Work)
	if err != nil {
		return nil, err
	}
	plan := cfg.Plan()
	sizes := sizesMB(cfg.DS)
	art := plancache.Shared().Artifacts(*plan)
	return &Env{
		Cfg: cfg, Model: model, Plan: plan,
		SizesMB: sizes, Streams: art.Streams, FirstPos0: art.FirstPos0,
		Art:   art,
		Chaos: cfg.Chaos.Compile(cfg.Seed),
		rng:   prng.New(cfg.Seed).Derive(0x51),
		ewma:  1, // epoch 0 starts all-PFS
	}, nil
}

// sizesMB returns the dataset's per-sample sizes in MB. Synthetic datasets
// carry a precomputed shared table (one per dataset object — sweep cells
// share objects through dataset.Cached); other implementations get a fresh
// one. The returned slice is read-only.
func sizesMB(ds dataset.Dataset) []float64 {
	if d, ok := ds.(interface{ SizesMB() []float64 }); ok {
		return d.SizesMB()
	}
	s := make([]float64, ds.Len())
	for k := range s {
		s[k] = float64(ds.Size(k)) / (1 << 20)
	}
	return s
}

// EpochOrder returns epoch e's cached global shuffle order (immutable).
func (e *Env) EpochOrder(epoch int) []access.SampleID {
	return e.Art.EpochOrders[epoch]
}

// The Assign* helpers return shared, immutable placement assignments from
// the plan-artifact cache, computed once per (plan, dataset, node,
// policy-family): DeepIO and the dynamic LBANN data store share the
// first-touch placement, ParallelStaging and LocalityAware share the static
// shard, and NoPFS variants share the frequency-based assignment.

// AssignNoPFS returns the shared Sec. 5.1 frequency-based placement.
func (e *Env) AssignNoPFS() *cachepolicy.Assignment {
	return e.Art.Assignment(plancache.FamilyNoPFS, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildNoPFSFromStreams(e.Plan, e.Streams, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignRandomPlacement returns the shared placement ablation (first-access
// fill order instead of frequency order).
func (e *Env) AssignRandomPlacement() *cachepolicy.Assignment {
	return e.Art.Assignment(plancache.FamilyRandom, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildRandomFromStreams(e.Plan, e.Streams, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignFirstTouch returns the shared epoch-0 first-touch placement (DeepIO,
// LBANN dynamic).
func (e *Env) AssignFirstTouch() *cachepolicy.Assignment {
	return e.Art.Assignment(plancache.FamilyFirstTouch, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildFirstTouchFromOrder(e.Plan, e.Art.EpochOrders[0], e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignShard returns the shared static round-robin shard (ParallelStaging,
// LocalityAware).
func (e *Env) AssignShard() *cachepolicy.Assignment {
	return e.Art.Assignment(plancache.FamilyShard, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildShard(e.Plan.F, e.Plan.N, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignPreload returns the shared RAM-only preloading shard (LBANN
// preloading).
func (e *Env) AssignPreload() *cachepolicy.Assignment {
	return e.Art.Assignment(plancache.FamilyPreload, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildPreload(e.Plan.F, e.Plan.N, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// Gamma estimates γ, the number of workers concurrently reading from the
// PFS, from the recent PFS hit fraction: workers are symmetric, so the
// cluster-wide reader count is N times the local fraction.
func (e *Env) Gamma() int {
	g := int(math.Round(e.ewma * float64(e.Plan.N)))
	if g < 1 {
		g = 1
	}
	return g
}

// notePFS folds one fetch outcome into the γ estimate.
func (e *Env) notePFS(hitPFS bool) {
	const alpha = 0.02
	v := 0.0
	if hitPFS {
		v = 1
	}
	e.ewma += alpha * (v - e.ewma)
}

// pfsJitter returns a mean-one log-normal multiplier.
func (e *Env) pfsJitter() float64 {
	sigma := e.Cfg.PFSJitter
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma*e.rng.NormFloat64() - sigma*sigma/2)
}

// Policy is one I/O strategy under comparison.
type Policy interface {
	// Name is the report label (matches the paper's Fig. 8 legend).
	Name() string
	// Prepare precomputes placement state; it returns the prestaging time
	// (0 when the policy needs none) or an error when the policy cannot
	// run the scenario at all.
	Prepare(env *Env) (setupSeconds float64, err error)
	// Stream returns the simulated worker's (possibly reordered) access
	// stream; most policies return env.Streams[0] unchanged.
	Stream(env *Env) []access.SampleID
	// Source decides where stream entry f (sample k) is fetched from.
	Source(env *Env, f int, k access.SampleID) perfmodel.Choice
	// Coverage is the fraction of dataset bytes the policy ever accesses.
	Coverage(env *Env) float64
	// Synchronous reports whether reads block the trainer (no prefetch
	// pipeline) — true only for the Naive policy.
	Synchronous() bool
	// PrefetchThreads is the width of the staging prefetch pipeline this
	// policy drives. NoPFS uses the node's configured p₀; the baseline
	// loaders model a single background I/O pipeline (classic
	// double-buffering), which is what makes them PFS-bound at the
	// paper's operating points.
	PrefetchThreads(env *Env) int
	// StagingMB is the lookahead window the policy prefetches into.
	// NoPFS and the caching middlewares use the node's staging buffer;
	// PyTorch-style double buffering looks ahead about two mini-batches,
	// which is what exposes slow PFS reads directly as batch-time tail
	// events instead of smoothing them away.
	StagingMB(env *Env) float64
}

// Run simulates one policy under the config.
func Run(cfg Config, pol Policy) (*Result, error) {
	env, err := newEnv(&cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy:     pol.Name(),
		System:     cfg.Sys.Name,
		LocSeconds: map[perfmodel.Location]float64{},
		LocCount:   map[perfmodel.Location]int64{},
	}
	setup, err := pol.Prepare(env)
	if err != nil {
		res.Failed = true
		res.FailReason = err.Error()
		return res, nil
	}
	res.SetupSeconds = setup
	res.Coverage = pol.Coverage(env)
	stream := pol.Stream(env)
	// Node crashes redistribute the crashed workers' plan across the
	// survivors: the simulated worker's stream grows and epoch boundaries
	// shift (nil epochEnds means the fault-free uniform boundaries).
	stream, epochEnds := chaosStream(env, stream)
	simulate(env, pol, stream, setup, res, epochEnds)
	return res, nil
}

// stagingCompactMin is the staging-window compaction threshold: once at
// least this many consumed slots have accumulated at the front of the
// window slice AND they outnumber the live tail, the live entries are
// copied down and the dead prefix reclaimed. Large enough that compaction
// cost (a memmove of the live tail) amortises to O(1) per sample; small
// enough that the dead prefix never dominates the slice's footprint.
const stagingCompactMin = 4096

// numLocations sizes the per-location accounting arrays (LocPFS, LocRemote,
// LocLocal are contiguous small ints).
const numLocations = int(perfmodel.LocLocal) + 1

// slot is one staged sample resident in the simulate window: its size and
// the consume time that frees its bytes.
type slot struct {
	sizeMB  float64
	consume float64
}

// windowPool recycles simulate's staging-window backing arrays across runs.
var windowPool = sync.Pool{
	New: func() any {
		s := make([]slot, 0, 1024)
		return &s
	},
}

// threadPool tracks the free times of the p₀ prefetch threads and yields
// the least-loaded one per fetch. For the small p₀ of real nodes (≤ 8) a
// straight scan is fastest; wider pools use a binary min-heap so the
// per-sample cost is O(log p₀) instead of O(p₀).
type threadPool struct {
	free []float64
	heap bool
}

func newThreadPool(p0 int, setup float64) threadPool {
	free := make([]float64, p0)
	for i := range free {
		free[i] = setup
	}
	// All entries equal, so the slice is already a valid min-heap.
	return threadPool{free: free, heap: p0 > 8}
}

// schedule assigns one fetch of duration readDur to the least-loaded
// thread, starting no earlier than roomTime, and returns the fetch's
// completion time. Only the multiset of free times affects the result, so
// the heap and scan variants are output-identical.
func (t *threadPool) schedule(roomTime, readDur float64) float64 {
	if !t.heap {
		ti := 0
		for i := 1; i < len(t.free); i++ {
			if t.free[i] < t.free[ti] {
				ti = i
			}
		}
		start := t.free[ti]
		if roomTime > start {
			start = roomTime
		}
		avail := start + readDur
		t.free[ti] = avail
		return avail
	}
	start := t.free[0]
	if roomTime > start {
		start = roomTime
	}
	avail := start + readDur
	// Replace the root and sift down.
	t.free[0] = avail
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(t.free) && t.free[l] < t.free[smallest] {
			smallest = l
		}
		if r < len(t.free) && t.free[r] < t.free[smallest] {
			smallest = r
		}
		if smallest == i {
			return avail
		}
		t.free[i], t.free[smallest] = t.free[smallest], t.free[i]
		i = smallest
	}
}

// simulate runs the staging-pipeline model over the stream. The loop is
// allocation-lean: per-location accounting uses fixed arrays folded into the
// Result maps only at the end, and the per-batch/per-epoch series are
// preallocated to their known lengths.
//
// epochEnds, when non-nil, carries the cumulative stream position at which
// each epoch ends (chaos crash redistribution makes epochs unequal); nil
// means the plan's uniform per-epoch boundaries.
func simulate(env *Env, pol Policy, stream []access.SampleID, setup float64, res *Result, epochEnds []int) {
	model := env.Model
	c := env.Cfg.Work.ComputeMBps
	p0 := pol.PrefetchThreads(env)
	if p0 < 1 {
		p0 = 1
	}
	bufMB := pol.StagingMB(env)
	sync := pol.Synchronous()

	threads := newThreadPool(p0, setup)

	// Per-location accounting: fixed arrays in the hot loop, folded into
	// the Result maps after it.
	var locSec [numLocations]float64
	var locCnt [numLocations]int64

	// Staging-buffer occupancy window: entries currently resident, with
	// the consume times that free their bytes. The backing array is pooled
	// across runs — with a staging buffer larger than the stream's bytes
	// nothing is ever admitted out, so the window grows to the stream
	// length and would otherwise be reallocated per run.
	wp := windowPool.Get().(*[]slot)
	window := (*wp)[:0]
	defer func() {
		*wp = window[:0]
		windowPool.Put(wp)
	}()
	head := 0
	var inBufMB float64

	perEpoch := env.Plan.SamplesPerEpoch(0)
	batch := env.Cfg.Work.BatchPerWorker
	if len(stream) > 0 {
		res.BatchSeconds = make([]float64, 0, (len(stream)+batch-1)/batch+1)
		res.EpochSeconds = make([]float64, 0, len(stream)/perEpoch+1)
	}

	prevComputeDone := setup
	lastBatchEnd, lastEpochEnd := setup, setup

	// Epoch tracking: boundaries come from epochEnds when chaos reshaped the
	// stream, otherwise every perEpoch samples (the legacy rule).
	epoch := 0
	nextEpochEnd := perEpoch
	if len(epochEnds) > 0 {
		nextEpochEnd = epochEnds[0]
	}

	// Chaos multipliers are epoch-constant: resolve them at boundaries, not
	// per sample. barrier paces the allreduce when a peer straggles; self
	// slows this worker's own prefetch threads.
	sched := env.Chaos
	barrier, self := 1.0, 1.0
	if sched != nil {
		n := env.Plan.N
		barrier, self = sched.BarrierFactor(0, n), sched.Slowdown(0, 0, n)
	}

	// PFS slowness is bursty system noise, not i.i.d. per sample: one slow
	// OST or contention spike delays every read issued in that window. We
	// model it as one jitter draw per batch, which is what produces the
	// paper's order-of-magnitude batch-time tail events for PFS-bound
	// loaders while averaging out for cache-served ones.
	batchJitter := env.pfsJitter()

	for f, k := range stream {
		sz := env.SizesMB[k]
		if f%batch == 0 {
			batchJitter = env.pfsJitter()
		}

		choice := pol.Source(env, f, k)
		// γ estimation folds the policy's decision, not the chaos-perturbed
		// outcome: faults stretch durations without feeding back into the
		// contention heuristic, which keeps the fault-free run bit-identical
		// and makes fault injection monotone (see internal/invariant).
		env.notePFS(choice.Loc == perfmodel.LocPFS)
		if choice.Loc == perfmodel.LocPFS {
			// t(γ)/γ is the node's total PFS share: concurrent prefetch
			// threads divide it rather than multiplying it. The expected
			// number of this worker's threads at the PFS is the recent PFS
			// fraction times p0.
			conc := env.ewma * float64(p0)
			if conc > 1 {
				choice.Seconds *= conc
			}
			choice.Seconds *= batchJitter
		}
		if sched != nil {
			chaosAdjust(env, sched, epoch, f, sz, &choice, res)
		}
		write := model.WriteTime(sz)
		locSec[choice.Loc] += choice.Seconds
		locCnt[choice.Loc]++
		res.StagingWriteSeconds += write
		readDur := choice.Seconds + write
		if self != 1 {
			// Straggler self-slowdown: every prefetch thread of this worker
			// runs factor× slower.
			readDur *= self
		}

		var avail float64
		if sync {
			// Naive: the trainer itself issues the read after finishing
			// the previous sample.
			avail = prevComputeDone + readDur
		} else {
			// Admission: wait for buffer room.
			roomTime := setup
			for inBufMB+sz > bufMB && head < len(window) {
				s := window[head]
				head++
				inBufMB -= s.sizeMB
				if s.consume > roomTime {
					roomTime = s.consume
				}
			}
			// Least-loaded prefetch thread picks up the fetch.
			avail = threads.schedule(roomTime, readDur)
		}

		// Consumption recurrence (paper Sec. 4). barrier > 1 paces every
		// iteration at the slowest surviving peer's rate (allreduce).
		consume := prevComputeDone
		if avail > consume {
			res.StallSeconds += avail - consume
			consume = avail
		}
		computeDone := consume + sz/c*barrier

		if !sync {
			window = append(window, slot{sizeMB: sz, consume: consume})
			inBufMB += sz
			// Periodically compact the window slice.
			if head > stagingCompactMin && head*2 > len(window) {
				window = append(window[:0], window[head:]...)
				head = 0
			}
		}

		prevComputeDone = computeDone

		if (f+1)%batch == 0 || f == len(stream)-1 {
			res.BatchSeconds = append(res.BatchSeconds, computeDone-lastBatchEnd)
			lastBatchEnd = computeDone
		}
		if f+1 == nextEpochEnd {
			res.EpochSeconds = append(res.EpochSeconds, computeDone-lastEpochEnd)
			lastEpochEnd = computeDone
			epoch++
			if len(epochEnds) > 0 {
				if epoch < len(epochEnds) {
					nextEpochEnd = epochEnds[epoch]
				}
			} else {
				nextEpochEnd += perEpoch
			}
			if sched != nil {
				n := env.Plan.N
				barrier, self = sched.BarrierFactor(epoch, n), sched.Slowdown(0, epoch, n)
			}
		}
	}
	for l := 0; l < numLocations; l++ {
		// Fold only locations that saw a fetch, matching the key set the
		// per-sample map writes used to produce.
		if locCnt[l] > 0 {
			res.LocSeconds[perfmodel.Location(l)] += locSec[l]
			res.LocCount[perfmodel.Location(l)] += locCnt[l]
		}
	}
	res.ExecSeconds = prevComputeDone
	if len(res.EpochSeconds) < env.Plan.E && len(stream) > 0 && prevComputeDone > lastEpochEnd {
		res.EpochSeconds = append(res.EpochSeconds, prevComputeDone-lastEpochEnd)
	}
}
