// Package sim is the I/O performance simulator of paper Sec. 6.
//
// It executes the Sec. 4 performance model in virtual time for one
// representative worker (workers are symmetric: same policy, same per-epoch
// work, synchronised by the allreduce in every iteration), modelling:
//
//   - the staging buffer as a byte-budget circular window filled by p₀
//     prefetch threads in access order (Rule 1);
//   - the consumption recurrence t_{i,f} = max(avail_i(f), t_{i,f-1} +
//     s_{R_{f-1}}/c);
//   - source selection per policy, with per-location time accounting;
//   - PFS contention through t(γ), with γ adapting to the fraction of
//     recent fetches that actually hit the PFS;
//   - optional log-normal jitter on PFS fetches, reproducing the tail
//     events ("catastrophically slow reads") the paper observes on shared
//     filesystems.
//
// The simulator is not meant to predict absolute runtimes of a particular
// machine; like the paper's, it captures the relative behaviour of I/O
// policies across dataset/storage-hierarchy regimes.
package sim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/cachepolicy"
	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/perfmodel"
	"repro/internal/plancache"
	"repro/internal/prng"
)

// Config describes one simulation run.
type Config struct {
	Sys  hwspec.System
	Work hwspec.Workload
	// DS provides sample count and sizes; payloads are never touched.
	DS dataset.Dataset
	// Seed drives the training shuffles (clairvoyance) and the jitter
	// stream.
	Seed uint64
	// PFSJitter is the σ of a mean-one log-normal multiplier applied to
	// PFS fetch times (0 disables jitter).
	PFSJitter float64
	// DropLast drops trailing partial batches.
	DropLast bool
	// Chaos is the fault/degradation scenario (see internal/chaos). The
	// zero value injects nothing and reproduces the fault-free simulation
	// byte for byte.
	Chaos chaos.Profile
	// Access is the canonical access-pattern spec ("" = the classic uniform
	// per-epoch shuffle; see access.ParseAccessSpec). Entry points must
	// canonicalize with access.CanonicalSpec before stamping it so equal
	// patterns share plan-cache entries and memoised sweep results.
	Access string
}

// Plan derives the access plan implied by the config.
func (c *Config) Plan() *access.Plan {
	return &access.Plan{
		Seed: c.Seed, F: c.DS.Len(), N: c.Work.Workers, E: c.Work.Epochs,
		BatchPerWorker: c.Work.BatchPerWorker, DropLast: c.DropLast,
		Access: c.Access,
	}
}

// Validate reports whether the config is runnable.
func (c *Config) Validate() error {
	if c.DS == nil {
		return fmt.Errorf("sim: config needs a dataset")
	}
	if err := c.Sys.Validate(); err != nil {
		return err
	}
	if err := c.Work.Validate(); err != nil {
		return err
	}
	if err := c.Chaos.Validate(); err != nil {
		return err
	}
	if err := c.Plan().Validate(); err != nil {
		return err
	}
	// Crash redistribution (chaos.RedistributeStream) slices peer streams
	// assuming every epoch contributes the same uniform per-worker count —
	// true for all content patterns, false once an elastic membership
	// schedule varies the partition itself. Reject the combination rather
	// than silently violate exactly-once.
	if c.Access != "" && c.Chaos.Structural() {
		if pat, err := access.ParseAccessSpec(c.Access); err == nil && pat.Elastic() {
			return fmt.Errorf("sim: elastic access pattern %q cannot combine with a structural (crash) chaos profile", c.Access)
		}
	}
	return nil
}

// Result summarises one simulated run.
type Result struct {
	Policy string
	System string
	// Failed is set when the policy cannot run the scenario (e.g. the
	// LBANN data store with a dataset exceeding aggregate RAM).
	Failed     bool
	FailReason string

	// ExecSeconds is total wall time: setup (prestaging) + training.
	ExecSeconds  float64
	SetupSeconds float64
	// EpochSeconds[e] is the duration of epoch e (epoch 0 includes setup).
	EpochSeconds []float64
	// BatchSeconds holds per-batch durations of the simulated worker.
	BatchSeconds []float64
	// StallSeconds is total time the trainer waited on the staging buffer.
	StallSeconds float64
	// Per-location fetch time and counts; StagingWriteSeconds is the
	// preprocess+store component (the paper's "Staging Buffer" segment).
	LocSeconds          map[perfmodel.Location]float64
	LocCount            map[perfmodel.Location]int64
	StagingWriteSeconds float64
	// Coverage is the fraction of dataset bytes the policy ever reads
	// (< 1 flags the paper's "does not access entire dataset").
	Coverage float64
	// RemoteFalsePositives counts remote fetches that would have missed
	// (heuristic said cached, holder had not reached it yet).
	RemoteFalsePositives int64
}

// Speedup returns other.ExecSeconds / r.ExecSeconds.
func (r *Result) Speedup(other *Result) float64 {
	if r.ExecSeconds == 0 {
		return math.Inf(1)
	}
	return other.ExecSeconds / r.ExecSeconds
}

// Digest returns a content hash covering every input the simulation reads:
// the access plan (seed, shape, drop-last, access-pattern spec), the full
// system and workload specs including labels and throughput curves, the
// dataset's size table, the jitter σ, and the chaos profile's canonical spec
// string. Two configs with equal digests produce bit-identical Results,
// which is what makes the digest safe as an incremental re-simulation memo
// key (see sweep.ResultMemo). The digest is in-process only — it is never
// persisted, so its byte layout may change freely between versions.
func (c *Config) Digest() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
	}
	p := c.Plan()
	mix(p.Seed)
	mix(uint64(p.F))
	mix(uint64(p.N))
	mix(uint64(p.E))
	mix(uint64(p.BatchPerWorker))
	if p.DropLast {
		mix(1)
	} else {
		mix(0)
	}
	mixStr(p.Access)
	mix(c.Sys.Digest())
	mix(c.Work.Digest())
	mix(plancache.SizerDigest(c.DS))
	mix(math.Float64bits(c.PFSJitter))
	mixStr(c.Chaos.Name)
	mixStr(c.Chaos.Spec())
	return h
}

// Env is the shared state policies consult during a run.
type Env struct {
	Cfg   *Config
	Model *perfmodel.Model
	// Rate is the model compiled to constant per-source rates — the hot
	// loop's and the policies' fetch-time oracle. Bit-identical to Model's
	// methods (see perfmodel.Rates).
	Rate    *perfmodel.Rates
	Plan    *access.Plan
	SizesMB []float64
	// Streams are the materialised per-worker access streams, shared through
	// the plan-artifact cache. They are immutable: policies that reorder
	// build fresh slices.
	Streams [][]access.SampleID
	// FirstPos0[k] is the simulated worker's first access position of k
	// (-1 if never accessed).
	FirstPos0 []int32
	// Art is the cached artifact set backing Streams/FirstPos0; policies
	// use it for epoch orders and shared placement assignments.
	Art *plancache.Artifacts
	// Chaos is the compiled fault schedule (nil for the fault-free run).
	Chaos *chaos.Schedule

	rng  *prng.Generator
	ewma float64 // recent fraction of staging fetches served by the PFS
}

// newEnv builds the environment shared by all policies for one config. Plan
// artifacts come from the shared plan cache: all P policy cells sharing one
// (scenario, replica seed) perform one shuffle pass instead of P (replicas
// carry distinct derived seeds, so a P×R grid does R passes, not P×R).
func newEnv(cfg *Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := perfmodel.New(cfg.Sys, cfg.Work)
	if err != nil {
		return nil, err
	}
	plan := cfg.Plan()
	sizes := sizesMB(cfg.DS)
	art := plancache.Shared().Artifacts(*plan)
	return &Env{
		Cfg: cfg, Model: model, Rate: model.Compile(plan.N), Plan: plan,
		SizesMB: sizes, Streams: art.Streams, FirstPos0: art.FirstPos0,
		Art:   art,
		Chaos: cfg.Chaos.Compile(cfg.Seed),
		rng:   prng.New(cfg.Seed).Derive(0x51),
		ewma:  1, // epoch 0 starts all-PFS
	}, nil
}

// sizesMB returns the dataset's per-sample sizes in MB. Synthetic datasets
// carry a precomputed shared table (one per dataset object — sweep cells
// share objects through dataset.Cached); other implementations get a fresh
// one. The returned slice is read-only.
func sizesMB(ds dataset.Dataset) []float64 {
	if d, ok := ds.(interface{ SizesMB() []float64 }); ok {
		return d.SizesMB()
	}
	s := make([]float64, ds.Len())
	for k := range s {
		s[k] = float64(ds.Size(k)) / (1 << 20)
	}
	return s
}

// EpochOrder returns epoch e's cached global shuffle order (immutable).
func (e *Env) EpochOrder(epoch int) []access.SampleID {
	return e.Art.EpochOrders[epoch]
}

// The Assign* helpers return shared, immutable placement assignments from
// the plan-artifact cache, computed once per (plan, dataset, node,
// policy-family): DeepIO and the dynamic LBANN data store share the
// first-touch placement, ParallelStaging and LocalityAware share the static
// shard, and NoPFS variants share the frequency-based assignment.
//
// All simulator placements are lean builds — local tables for worker 0 only
// (the simulated symmetric observer), global best-holder state for all
// workers — so placement memory is O(F) regardless of the cluster size. The
// live middleware (package nopfs) builds full per-rank assignments through
// its own plancache entries; the two layouts are keyed separately.

// AssignNoPFS returns the shared Sec. 5.1 frequency-based placement.
func (e *Env) AssignNoPFS() *cachepolicy.Assignment {
	return e.Art.AssignmentLean(plancache.FamilyNoPFS, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildNoPFSLean(e.Plan, e.Streams, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignRandomPlacement returns the shared placement ablation (first-access
// fill order instead of frequency order).
func (e *Env) AssignRandomPlacement() *cachepolicy.Assignment {
	return e.Art.AssignmentLean(plancache.FamilyRandom, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildRandomLean(e.Plan, e.Streams, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignFirstTouch returns the shared epoch-0 first-touch placement (DeepIO,
// LBANN dynamic).
func (e *Env) AssignFirstTouch() *cachepolicy.Assignment {
	return e.Art.AssignmentLean(plancache.FamilyFirstTouch, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildFirstTouchLean(e.Plan, e.Art.EpochOrders[0], e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignShard returns the shared static round-robin shard (ParallelStaging,
// LocalityAware).
func (e *Env) AssignShard() *cachepolicy.Assignment {
	return e.Art.AssignmentLean(plancache.FamilyShard, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildShardLean(e.Plan.F, e.Plan.N, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// AssignPreload returns the shared RAM-only preloading shard (LBANN
// preloading).
func (e *Env) AssignPreload() *cachepolicy.Assignment {
	return e.Art.AssignmentLean(plancache.FamilyPreload, e.Cfg.DS, e.Cfg.Sys.Node, func() *cachepolicy.Assignment {
		return cachepolicy.BuildPreloadLean(e.Plan.F, e.Plan.N, e.Cfg.DS, e.Cfg.Sys.Node)
	})
}

// Gamma estimates γ, the number of workers concurrently reading from the
// PFS, from the recent PFS hit fraction: workers are symmetric, so the
// cluster-wide reader count is N times the local fraction.
func (e *Env) Gamma() int {
	g := int(math.Round(e.ewma * float64(e.Plan.N)))
	if g < 1 {
		g = 1
	}
	return g
}

// ewmaAlpha is the γ-estimate smoothing factor; the span kernels inline the
// same recurrence, so it is shared rather than local to notePFS.
const ewmaAlpha = 0.02

// notePFS folds one fetch outcome into the γ estimate.
func (e *Env) notePFS(hitPFS bool) {
	v := 0.0
	if hitPFS {
		v = 1
	}
	e.ewma += ewmaAlpha * (v - e.ewma)
}

// pfsJitter returns a mean-one log-normal multiplier.
func (e *Env) pfsJitter() float64 {
	sigma := e.Cfg.PFSJitter
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma*e.rng.NormFloat64() - sigma*sigma/2)
}

// Policy is one I/O strategy under comparison.
type Policy interface {
	// Name is the report label (matches the paper's Fig. 8 legend).
	Name() string
	// Prepare precomputes placement state; it returns the prestaging time
	// (0 when the policy needs none) or an error when the policy cannot
	// run the scenario at all.
	Prepare(env *Env) (setupSeconds float64, err error)
	// Stream returns the simulated worker's (possibly reordered) access
	// stream; most policies return env.Streams[0] unchanged.
	Stream(env *Env) []access.SampleID
	// Source decides where stream entry f (sample k) is fetched from.
	Source(env *Env, f int, k access.SampleID) perfmodel.Choice
	// Coverage is the fraction of dataset bytes the policy ever accesses.
	Coverage(env *Env) float64
	// Synchronous reports whether reads block the trainer (no prefetch
	// pipeline) — true only for the Naive policy.
	Synchronous() bool
	// PrefetchThreads is the width of the staging prefetch pipeline this
	// policy drives. NoPFS uses the node's configured p₀; the baseline
	// loaders model a single background I/O pipeline (classic
	// double-buffering), which is what makes them PFS-bound at the
	// paper's operating points.
	PrefetchThreads(env *Env) int
	// StagingMB is the lookahead window the policy prefetches into.
	// NoPFS and the caching middlewares use the node's staging buffer;
	// PyTorch-style double buffering looks ahead about two mini-batches,
	// which is what exposes slow PFS reads directly as batch-time tail
	// events instead of smoothing them away.
	StagingMB(env *Env) float64
}

// Run simulates one policy under the config.
func Run(cfg Config, pol Policy) (*Result, error) {
	env, err := newEnv(&cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Policy:     pol.Name(),
		System:     cfg.Sys.Name,
		LocSeconds: map[perfmodel.Location]float64{},
		LocCount:   map[perfmodel.Location]int64{},
	}
	setup, err := pol.Prepare(env)
	if err != nil {
		res.Failed = true
		res.FailReason = err.Error()
		return res, nil
	}
	res.SetupSeconds = setup
	res.Coverage = pol.Coverage(env)
	stream := pol.Stream(env)
	// Node crashes redistribute the crashed workers' plan across the
	// survivors: the simulated worker's stream grows and epoch boundaries
	// shift (nil epochEnds means the fault-free uniform boundaries).
	stream, epochEnds := chaosStream(env, stream)
	// An elastic membership schedule makes epochs unequal too: use the
	// plan's per-worker cumulative ends when the policy kept the stream's
	// length (policies that rebuild a different-length stream fall back to
	// uniform binning, same as under chaos).
	if epochEnds == nil && env.Plan.Elastic() &&
		len(env.Art.EpochEnds) > 0 && len(stream) == len(env.Art.Streams[0]) {
		epochEnds = env.Art.EpochEnds[0]
	}
	simulate(env, pol, stream, setup, res, epochEnds)
	return res, nil
}

// stagingCompactMin is the staging-window compaction threshold: once at
// least this many consumed slots have accumulated at the front of the
// window slice AND they outnumber the live tail, the live entries are
// copied down and the dead prefix reclaimed. Large enough that compaction
// cost (a memmove of the live tail) amortises to O(1) per sample; small
// enough that the dead prefix never dominates the slice's footprint.
const stagingCompactMin = 4096

// numLocations sizes the per-location accounting arrays (LocPFS, LocRemote,
// LocLocal are contiguous small ints).
const numLocations = int(perfmodel.LocLocal) + 1

// windowArena is the pooled struct-of-arrays backing of the staging window:
// parallel slices of staged sizes and of the consume times that free their
// bytes. SoA keeps the admission loop's two streams of float64 reads dense.
type windowArena struct {
	size, consume []float64
}

// windowPool recycles simulate's staging-window backing arrays across runs.
var windowPool = sync.Pool{
	New: func() any {
		return &windowArena{
			size:    make([]float64, 0, 1024),
			consume: make([]float64, 0, 1024),
		}
	},
}

// simulateCount counts simulate() executions process-wide. It mirrors
// access.ShuffleCount: tests assert incremental re-simulation (the sweep
// result memo) by probing how many cells actually simulated.
var simulateCount atomic.Int64

// SimulateCount returns the number of simulate() executions so far.
func SimulateCount() int64 { return simulateCount.Load() }

// threadPool tracks the free times of the p₀ prefetch threads and yields
// the least-loaded one per fetch. For the small p₀ of real nodes (≤ 8) a
// straight scan is fastest; wider pools use a binary min-heap so the
// per-sample cost is O(log p₀) instead of O(p₀).
type threadPool struct {
	free []float64
	heap bool
}

func newThreadPool(p0 int, setup float64) threadPool {
	free := make([]float64, p0)
	for i := range free {
		free[i] = setup
	}
	// All entries equal, so the slice is already a valid min-heap.
	return threadPool{free: free, heap: p0 > 8}
}

// schedule assigns one fetch of duration readDur to the least-loaded
// thread, starting no earlier than roomTime, and returns the fetch's
// completion time. Only the multiset of free times affects the result, so
// the heap and scan variants are output-identical.
func (t *threadPool) schedule(roomTime, readDur float64) float64 {
	if !t.heap {
		ti := 0
		for i := 1; i < len(t.free); i++ {
			if t.free[i] < t.free[ti] {
				ti = i
			}
		}
		start := t.free[ti]
		if roomTime > start {
			start = roomTime
		}
		avail := start + readDur
		t.free[ti] = avail
		return avail
	}
	start := t.free[0]
	if roomTime > start {
		start = roomTime
	}
	avail := start + readDur
	// Replace the root and sift down.
	t.free[0] = avail
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(t.free) && t.free[l] < t.free[smallest] {
			smallest = l
		}
		if r < len(t.free) && t.free[r] < t.free[smallest] {
			smallest = r
		}
		if smallest == i {
			return avail
		}
		t.free[i], t.free[smallest] = t.free[smallest], t.free[i]
		i = smallest
	}
}

// simState is the hot-loop state of one simulate() call, shared between the
// event-driven segment driver and the per-policy inner kernels. All fields
// that float arithmetic flows through are updated in exactly the operation
// order of the original per-sample loop, so every kernel is bit-identical to
// the generic path by construction.
type simState struct {
	env    *Env
	pol    Policy
	res    *Result
	stream []access.SampleID
	sizes  []float64

	c     float64 // compute rate (MB/s)
	p0    int
	bufMB float64
	sync  bool
	setup float64

	threads threadPool

	// Staging window (SoA, pooled). noEvict elides it entirely: when the
	// whole stream's bytes fit the staging buffer, the admission loop can
	// never trigger and the window contents are unobservable.
	winSize, winConsume []float64
	head                int
	inBufMB             float64
	noEvict             bool

	// Accumulators folded into res after the loop; scalar accumulation
	// performs the identical sequence of float adds the per-sample
	// res-field updates did.
	locSec       [numLocations]float64
	locCnt       [numLocations]int64
	stall        float64
	stagingWrite float64

	prevComputeDone float64

	// Segment-constant factors.
	batchJitter   float64
	barrier, self float64
	sched         *chaos.Schedule
	epoch         int
}

// step advances the staging pipeline for one sample: admission (buffer
// room), prefetch-thread scheduling, the consumption recurrence, and window
// bookkeeping. readDur already includes the staging write and any
// self-slowdown.
func (s *simState) step(sz, readDur float64) {
	var avail float64
	if s.sync {
		// Naive: the trainer itself issues the read after finishing the
		// previous sample.
		avail = s.prevComputeDone + readDur
	} else {
		// Admission: wait for buffer room.
		roomTime := s.setup
		if !s.noEvict {
			for s.inBufMB+sz > s.bufMB && s.head < len(s.winSize) {
				s.inBufMB -= s.winSize[s.head]
				if c := s.winConsume[s.head]; c > roomTime {
					roomTime = c
				}
				s.head++
			}
		}
		// Least-loaded prefetch thread picks up the fetch; the scan variant
		// is inlined here (identical to threadPool.schedule's scan branch)
		// to save a call per sample at realistic p₀.
		if !s.threads.heap {
			free := s.threads.free
			ti := 0
			for i := 1; i < len(free); i++ {
				if free[i] < free[ti] {
					ti = i
				}
			}
			start := free[ti]
			if roomTime > start {
				start = roomTime
			}
			avail = start + readDur
			free[ti] = avail
		} else {
			avail = s.threads.schedule(roomTime, readDur)
		}
	}

	// Consumption recurrence (paper Sec. 4). barrier > 1 paces every
	// iteration at the slowest surviving peer's rate (allreduce).
	consume := s.prevComputeDone
	if avail > consume {
		s.stall += avail - consume
		consume = avail
	}
	computeDone := consume + sz/s.c*s.barrier

	if !s.sync && !s.noEvict {
		s.winSize = append(s.winSize, sz)
		s.winConsume = append(s.winConsume, consume)
		s.inBufMB += sz
		// Periodically compact the window slices.
		if s.head > stagingCompactMin && s.head*2 > len(s.winSize) {
			s.winSize = append(s.winSize[:0], s.winSize[s.head:]...)
			s.winConsume = append(s.winConsume[:0], s.winConsume[s.head:]...)
			s.head = 0
		}
	}

	s.prevComputeDone = computeDone
}

// runGeneric is the exact per-sample path: policy dispatch through the
// interface, chaos adjustment, and the full pipeline. It handles every
// policy and every chaos schedule; the specialized kernels below are
// shortcuts for the fault-free runs of policies whose source decision is
// known in closed form.
func (s *simState) runGeneric(f0, stop int) {
	env := s.env
	for f := f0; f < stop; f++ {
		k := s.stream[f]
		sz := s.sizes[k]
		choice := s.pol.Source(env, f, k)
		// γ estimation folds the policy's decision, not the chaos-perturbed
		// outcome: faults stretch durations without feeding back into the
		// contention heuristic, which keeps the fault-free run bit-identical
		// and makes fault injection monotone (see internal/invariant).
		env.notePFS(choice.Loc == perfmodel.LocPFS)
		if choice.Loc == perfmodel.LocPFS {
			// t(γ)/γ is the node's total PFS share: concurrent prefetch
			// threads divide it rather than multiplying it. The expected
			// number of this worker's threads at the PFS is the recent PFS
			// fraction times p0.
			conc := env.ewma * float64(s.p0)
			if conc > 1 {
				choice.Seconds *= conc
			}
			choice.Seconds *= s.batchJitter
		}
		if s.sched != nil {
			chaosAdjust(env, s.sched, s.epoch, f, sz, &choice, s.res)
		}
		write := env.Rate.WriteTime(sz)
		s.locSec[choice.Loc] += choice.Seconds
		s.locCnt[choice.Loc]++
		s.stagingWrite += write
		readDur := choice.Seconds + write
		if s.self != 1 {
			// Straggler self-slowdown: every prefetch thread of this worker
			// runs factor× slower.
			readDur *= s.self
		}
		s.step(sz, readDur)
	}
}

// runPFSConst is the span kernel for policies that always fetch from the PFS
// at the constant all-readers rate (Naive, StagingBuffer; both have p0 = 1):
// every fetch is sz/rate, γ feedback pins ewma at 1 (each outcome is a PFS
// hit), and the p0=1 concurrency factor never exceeds 1.
func (s *simState) runPFSConst(f0, stop int, rate float64) {
	env := s.env
	// ewma == 1 makes the γ update a no-op (1 + α·(1-1) == 1 exactly), and
	// PFS-only policies can never lower it, so the recurrence is hoisted.
	if env.ewma != 1 {
		for f := f0; f < stop; f++ {
			env.ewma += ewmaAlpha * (1 - env.ewma)
		}
	}
	wr := env.Rate.WriteRate()
	for f := f0; f < stop; f++ {
		sz := s.sizes[s.stream[f]]
		sec := (sz / rate) * s.batchJitter
		s.locSec[perfmodel.LocPFS] += sec
		write := sz / wr
		s.stagingWrite += write
		s.step(sz, sec+write)
	}
	s.locCnt[perfmodel.LocPFS] += int64(stop - f0)
}

// runLowerBound is the span kernel for the Perfect policy: fetches cost
// exactly 0 seconds from LocLocal, so only the staging write and compute
// recurrence remain. The γ estimate still decays per sample (every outcome
// is a PFS miss), preserving the recurrence bit for bit.
func (s *simState) runLowerBound(f0, stop int) {
	env := s.env
	wr := env.Rate.WriteRate()
	for f := f0; f < stop; f++ {
		sz := s.sizes[s.stream[f]]
		env.ewma += ewmaAlpha * (0 - env.ewma)
		write := sz / wr
		s.stagingWrite += write
		// choice.Seconds == 0: locSec[LocLocal] accumulates +0.0 (identity)
		// and readDur = 0 + write == write bitwise.
		s.step(sz, write)
	}
	s.locCnt[perfmodel.LocLocal] += int64(stop - f0)
}

// runNoPFS is the devirtualized kernel for the NoPFS policy (and its
// ablations) on fault-free runs: packed-word availability lookups, compiled
// rate tables, and inline γ tracking — the same operations Source + the
// generic loop perform, with the interface dispatch and repeated
// slice-header loads removed. noRemote reproduces the NoRemote ablation
// (peer fetches disabled).
func (s *simState) runNoPFS(f0, stop int, a *cachepolicy.Assignment, noRemote bool) {
	env := s.env
	rate := env.Rate
	nWorkers := float64(env.Plan.N)
	p0f := float64(s.p0)
	wr := rate.WriteRate()
	local := a.LocalWords(0)
	b1, b2 := a.HolderWords()
	for f := f0; f < stop; f++ {
		k := s.stream[f]
		sz := s.sizes[k]
		// Packed-word availability, decoded inline (same logic as
		// LocalAvail / RemoteAvail; see cachepolicy.AvailClass/HolderFor).
		localClass := cachepolicy.AvailClass(local[k], int32(f))
		remoteClass := -1
		if !noRemote {
			remoteClass = cachepolicy.HolderFor(b1[k], 0, int32(f))
			if remoteClass < 0 {
				remoteClass = cachepolicy.HolderFor(b2[k], 0, int32(f))
			}
		}
		g := int(math.Round(env.ewma * nWorkers))
		if g < 1 {
			g = 1
		}
		choice := rate.Best(sz, localClass, remoteClass, g)
		if choice.Loc == perfmodel.LocPFS {
			env.ewma += ewmaAlpha * (1 - env.ewma)
			conc := env.ewma * p0f
			if conc > 1 {
				choice.Seconds *= conc
			}
			choice.Seconds *= s.batchJitter
		} else {
			env.ewma += ewmaAlpha * (0 - env.ewma)
		}
		write := sz / wr
		s.locSec[choice.Loc] += choice.Seconds
		s.locCnt[choice.Loc]++
		s.stagingWrite += write
		s.step(sz, choice.Seconds+write)
	}
}

// runTiered is the devirtualized kernel for the tiered-cache baselines on
// fault-free runs. Their Source methods share one shape — local hit, else
// (optionally) best remote holder, else PFS at the γ estimate:
//
//   - DeepIO / LBANN check progress-gated availability (byAvail=true,
//     useRemote=true);
//   - ParallelStaging consults only its static local shard (byAvail=false,
//     useRemote=false);
//   - LocalityAware adds the ungated best remote holder (byAvail=false,
//     useRemote=true).
func (s *simState) runTiered(f0, stop int, a *cachepolicy.Assignment, byAvail, useRemote bool) {
	env := s.env
	rate := env.Rate
	p0f := float64(s.p0)
	wr := rate.WriteRate()
	local := a.LocalWords(0)
	b1, b2 := a.HolderWords()
	for f := f0; f < stop; f++ {
		k := s.stream[f]
		sz := s.sizes[k]
		var lc int
		if byAvail {
			lc = cachepolicy.AvailClass(local[k], int32(f))
		} else {
			lc, _ = cachepolicy.UnpackLocal(local[k])
		}
		var choice perfmodel.Choice
		if lc >= 0 {
			choice = perfmodel.Choice{Loc: perfmodel.LocLocal, Class: lc, Seconds: rate.FetchLocal(sz, lc)}
		} else {
			rc := -1
			if useRemote {
				if byAvail {
					rc = cachepolicy.HolderFor(b1[k], 0, int32(f))
					if rc < 0 {
						rc = cachepolicy.HolderFor(b2[k], 0, int32(f))
					}
				} else {
					rc = cachepolicy.HolderAny(b1[k], 0)
					if rc < 0 {
						rc = cachepolicy.HolderAny(b2[k], 0)
					}
				}
			}
			if rc >= 0 {
				choice = perfmodel.Choice{Loc: perfmodel.LocRemote, Class: rc, Seconds: rate.FetchRemote(sz, rc)}
			} else {
				choice = perfmodel.Choice{Loc: perfmodel.LocPFS, Class: -1, Seconds: rate.FetchPFS(sz, env.Gamma())}
			}
		}
		env.notePFS(choice.Loc == perfmodel.LocPFS)
		if choice.Loc == perfmodel.LocPFS {
			conc := env.ewma * p0f
			if conc > 1 {
				choice.Seconds *= conc
			}
			choice.Seconds *= s.batchJitter
		}
		write := sz / wr
		s.locSec[choice.Loc] += choice.Seconds
		s.locCnt[choice.Loc]++
		s.stagingWrite += write
		s.step(sz, choice.Seconds+write)
	}
}

// kernelKind selects a specialized inner kernel for the fault-free runs of
// closed-form policies; kernelGeneric is the exact fallback.
type kernelKind int

const (
	kernelGeneric kernelKind = iota
	kernelPFSConst
	kernelLowerBound
	kernelNoPFS
	kernelTiered
)

// kernel is the resolved inner-loop strategy for one simulate() call.
type kernel struct {
	kind               kernelKind
	assign             *cachepolicy.Assignment
	byAvail, useRemote bool // kernelTiered shape
	noRemote           bool // kernelNoPFS ablation
}

// kernelFor picks the span kernel for the policy. Chaos schedules force the
// generic path: per-fetch fault adjustment depends on the stream index, the
// resolved epoch factors, and the holder rank, which only the generic loop
// threads through. Elastic membership schedules force it for the same
// precondition-break reason: the specialized kernels assume uniform epoch
// spans. Content patterns (zipf, boost, curriculum, mix) keep the
// specialized kernels — they change which samples appear where, not the
// per-fetch cost structure. Every kernel is bit-identical to runGeneric for
// its policy — the equivalence tests compare them directly, including under
// non-uniform patterns.
func kernelFor(pol Policy, sched *chaos.Schedule, elastic bool) kernel {
	if sched != nil || elastic {
		return kernel{kind: kernelGeneric}
	}
	switch p := pol.(type) {
	case naive, stagingBuffer:
		return kernel{kind: kernelPFSConst}
	case lowerBound:
		return kernel{kind: kernelLowerBound}
	case *nopfs:
		return kernel{kind: kernelNoPFS, assign: p.assign}
	case *nopfsAblated:
		return kernel{kind: kernelNoPFS, assign: p.assign, noRemote: p.v.NoRemote}
	case *deepIO:
		return kernel{kind: kernelTiered, assign: p.assign, byAvail: true, useRemote: true}
	case *lbann:
		return kernel{kind: kernelTiered, assign: p.assign, byAvail: true, useRemote: true}
	case *parallelStaging:
		return kernel{kind: kernelTiered, assign: p.assign}
	case *localityAware:
		return kernel{kind: kernelTiered, assign: p.assign, useRemote: true}
	}
	return kernel{kind: kernelGeneric}
}

// simulate runs the staging-pipeline model over the stream.
//
// The loop is event-driven: the stream is cut into segments bounded by the
// next batch edge and the next epoch boundary — the only places where
// jitter is redrawn, series are recorded, or chaos factors re-resolve — and
// each segment runs under a per-policy inner kernel with all boundary checks
// hoisted out. Outputs are bit-identical to the historical per-sample loop:
// the kernels perform the same float operations in the same order and the
// specialized ones exist only where the source decision is constant or
// closed-form (see internal/sim equivalence tests).
//
// epochEnds, when non-nil, carries the cumulative stream position at which
// each epoch ends (chaos crash redistribution makes epochs unequal); nil
// means the plan's uniform per-epoch boundaries.
func simulate(env *Env, pol Policy, stream []access.SampleID, setup float64, res *Result, epochEnds []int) {
	simulateCount.Add(1)
	p0 := pol.PrefetchThreads(env)
	if p0 < 1 {
		p0 = 1
	}
	s := &simState{
		env: env, pol: pol, res: res, stream: stream, sizes: env.SizesMB,
		c:     env.Cfg.Work.ComputeMBps,
		p0:    p0,
		bufMB: pol.StagingMB(env),
		sync:  pol.Synchronous(),
		setup: setup,

		threads:         newThreadPool(p0, setup),
		prevComputeDone: setup,
		barrier:         1, self: 1,
		sched: env.Chaos,
	}

	if !s.sync {
		// Window elision: inBufMB is the running prefix sum of staged sizes
		// minus evictions; with no evictions the admission check compares
		// exactly the next prefix sum against bufMB, so "total stream bytes
		// fit" (the same ordered sum) proves the loop can never trigger and
		// the window bookkeeping is unobservable. Common at paper operating
		// points where the staging buffer exceeds the epoch working set.
		var total float64
		for _, k := range stream {
			total += env.SizesMB[k]
		}
		s.noEvict = total <= s.bufMB
		if !s.noEvict {
			wa := windowPool.Get().(*windowArena)
			s.winSize, s.winConsume = wa.size[:0], wa.consume[:0]
			defer func() {
				wa.size, wa.consume = s.winSize[:0], s.winConsume[:0]
				windowPool.Put(wa)
			}()
		}
	}

	perEpoch := env.Plan.SamplesPerEpoch(0)
	batch := env.Cfg.Work.BatchPerWorker
	if len(stream) > 0 {
		res.BatchSeconds = make([]float64, 0, (len(stream)+batch-1)/batch+1)
		// Size the epoch series from the actual boundary list when chaos
		// supplies one (crash redistribution makes epochs unequal, so the
		// uniform estimate under-allocates); +1 covers the trailing fold.
		epochCap := len(stream)/perEpoch + 1
		if len(epochEnds) > 0 {
			epochCap = len(epochEnds) + 1
		}
		res.EpochSeconds = make([]float64, 0, epochCap)
	}

	lastBatchEnd, lastEpochEnd := setup, setup

	// Epoch tracking: boundaries come from epochEnds when chaos reshaped the
	// stream, otherwise every perEpoch samples (the legacy rule).
	nextEpochEnd := perEpoch
	if len(epochEnds) > 0 {
		nextEpochEnd = epochEnds[0]
	}

	// Chaos multipliers are epoch-constant: resolve them at boundaries, not
	// per sample. barrier paces the allreduce when a peer straggles; self
	// slows this worker's own prefetch threads.
	if s.sched != nil {
		n := env.Plan.N
		s.barrier, s.self = s.sched.BarrierFactor(0, n), s.sched.Slowdown(0, 0, n)
	}

	// PFS slowness is bursty system noise, not i.i.d. per sample: one slow
	// OST or contention spike delays every read issued in that window. We
	// model it as one jitter draw per batch, which is what produces the
	// paper's order-of-magnitude batch-time tail events for PFS-bound
	// loaders while averaging out for cache-served ones. The draw happens
	// at every batch edge — segment starts aligned to one.
	s.batchJitter = env.pfsJitter()

	// Elastic membership can leave the worker inactive in leading epochs
	// (cumulative ends still at position 0): fire those boundaries before
	// any samples run so epoch accounting and chaos factors stay aligned.
	for len(epochEnds) > 0 && s.epoch < len(epochEnds) && epochEnds[s.epoch] == 0 {
		res.EpochSeconds = append(res.EpochSeconds, 0)
		s.epoch++
		if s.epoch < len(epochEnds) {
			nextEpochEnd = epochEnds[s.epoch]
		}
		if s.sched != nil {
			nw := env.Plan.N
			s.barrier, s.self = s.sched.BarrierFactor(s.epoch, nw), s.sched.Slowdown(0, s.epoch, nw)
		}
	}

	ker := kernelFor(pol, s.sched, env.Plan.Elastic())
	var pfsRate float64
	if ker.kind == kernelPFSConst {
		pfsRate = env.Rate.PFSRate(env.Plan.N)
	}

	n := len(stream)
	for f := 0; f < n; {
		if f%batch == 0 {
			s.batchJitter = env.pfsJitter()
		}
		// Segment: up to the next batch edge, capped by the next epoch
		// boundary (a stale boundary at or before f never fires again,
		// matching the per-sample f+1 == nextEpochEnd check).
		stop := f - f%batch + batch
		if nextEpochEnd > f && nextEpochEnd < stop {
			stop = nextEpochEnd
		}
		if stop > n {
			stop = n
		}

		switch ker.kind {
		case kernelPFSConst:
			s.runPFSConst(f, stop, pfsRate)
		case kernelLowerBound:
			s.runLowerBound(f, stop)
		case kernelNoPFS:
			s.runNoPFS(f, stop, ker.assign, ker.noRemote)
		case kernelTiered:
			s.runTiered(f, stop, ker.assign, ker.byAvail, ker.useRemote)
		default:
			s.runGeneric(f, stop)
		}
		f = stop

		if f%batch == 0 || f == n {
			res.BatchSeconds = append(res.BatchSeconds, s.prevComputeDone-lastBatchEnd)
			lastBatchEnd = s.prevComputeDone
		}
		// A loop rather than a single check: elastic membership can leave
		// the worker with zero samples in an epoch (consecutive equal
		// ends), so several boundaries may fire at one stream position.
		// With uniform boundaries the advance is always strictly past f,
		// so the loop body runs at most once — identical to the old check.
		for f == nextEpochEnd && (len(epochEnds) == 0 || s.epoch < len(epochEnds)) {
			res.EpochSeconds = append(res.EpochSeconds, s.prevComputeDone-lastEpochEnd)
			lastEpochEnd = s.prevComputeDone
			s.epoch++
			if len(epochEnds) > 0 {
				if s.epoch < len(epochEnds) {
					nextEpochEnd = epochEnds[s.epoch]
				}
			} else {
				nextEpochEnd += perEpoch
			}
			if s.sched != nil {
				nw := env.Plan.N
				s.barrier, s.self = s.sched.BarrierFactor(s.epoch, nw), s.sched.Slowdown(0, s.epoch, nw)
			}
		}
	}

	res.StallSeconds = s.stall
	res.StagingWriteSeconds = s.stagingWrite
	for l := 0; l < numLocations; l++ {
		// Fold only locations that saw a fetch, matching the key set the
		// per-sample map writes used to produce.
		if s.locCnt[l] > 0 {
			res.LocSeconds[perfmodel.Location(l)] += s.locSec[l]
			res.LocCount[perfmodel.Location(l)] += s.locCnt[l]
		}
	}
	res.ExecSeconds = s.prevComputeDone
	if len(res.EpochSeconds) < env.Plan.E && len(stream) > 0 && s.prevComputeDone > lastEpochEnd {
		res.EpochSeconds = append(res.EpochSeconds, s.prevComputeDone-lastEpochEnd)
	}
}
