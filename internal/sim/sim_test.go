package sim

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/perfmodel"
)

// testScale shrinks Fig. 8 scenarios enough for fast tests while preserving
// their dataset-vs-storage regime.
const testScale = 0.005

func runPanel(t *testing.T, id string) map[string]*Result {
	t.Helper()
	s, err := ScenarioByID(id)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*Result{}
	for _, pol := range AllPolicies() {
		r, err := Run(cfg, pol)
		if err != nil {
			t.Fatalf("policy %s: %v", pol.Name(), err)
		}
		out[r.Policy] = r
	}
	return out
}

func TestScenarioByID(t *testing.T) {
	if _, err := ScenarioByID("fig8a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioByID("imagenet-22k"); err != nil {
		t.Error("lookup by dataset name failed")
	}
	if _, err := ScenarioByID("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestFig8ScenarioRegimes(t *testing.T) {
	// The six panels must sit in the paper's dataset-vs-storage regimes,
	// both at paper scale and at test scale.
	for _, scale := range []float64{1, testScale} {
		for _, s := range Fig8Scenarios() {
			spec := s.Spec
			sys := s.System
			if scale != 1 {
				spec = spec.Scale(scale)
				sys = ScaleSystem(sys, scale)
			}
			S := float64(spec.TotalSizeEstimate()) / (1 << 20)
			d1 := sys.Node.Classes[0].CapacityMB
			D := sys.Node.TotalLocalMB()
			ND := float64(s.Workload.Workers) * D
			switch s.ID {
			case "fig8a":
				if !(S < d1) {
					t.Errorf("scale %g %s: want S < d1, got S=%.0f d1=%.0f", scale, s.ID, S, d1)
				}
			case "fig8b", "fig8c":
				if !(d1 < S && S < D) {
					t.Errorf("scale %g %s: want d1 < S < D, got d1=%.0f S=%.0f D=%.0f", scale, s.ID, d1, S, D)
				}
			case "fig8d":
				if !(D < S && S < ND) {
					t.Errorf("scale %g %s: want D < S < ND, got D=%.0f S=%.0f ND=%.0f", scale, s.ID, D, S, ND)
				}
			case "fig8e", "fig8f":
				if !(ND < S) {
					t.Errorf("scale %g %s: want ND < S, got ND=%.0f S=%.0f", scale, s.ID, ND, S)
				}
			}
		}
	}
}

func TestFig8bShape(t *testing.T) {
	// ImageNet-1k on the small cluster (paper Fig. 8b): NoPFS is the best
	// policy and near the lower bound; Naive is worst by a wide margin;
	// StagingBuffer stalls on PFS reads.
	r := runPanel(t, "fig8b")
	lb := r[NameLowerBound].ExecSeconds
	nopfs := r[NameNoPFS].ExecSeconds

	if ratio := nopfs / lb; ratio > 1.10 {
		t.Errorf("NoPFS/LowerBound = %.3f, want <= 1.10 (paper: 1.05)", ratio)
	}
	if ratio := r[NameNaive].ExecSeconds / lb; ratio < 1.4 {
		t.Errorf("Naive/LowerBound = %.3f, want >= 1.4 (paper: 1.69)", ratio)
	}
	if ratio := r[NameStagingBuffer].ExecSeconds / lb; ratio < 1.1 {
		t.Errorf("StagingBuffer/LowerBound = %.3f, want >= 1.1 (paper: 1.29)", ratio)
	}
	// NoPFS is the best non-LowerBound policy.
	for name, res := range r {
		if name == NameLowerBound || res.Failed {
			continue
		}
		if res.ExecSeconds < nopfs-1e-9 {
			t.Errorf("%s (%.2fs) beat NoPFS (%.2fs)", name, res.ExecSeconds, nopfs)
		}
	}
	// Everyone accesses the entire dataset in this regime.
	for name, res := range r {
		if !res.Failed && res.Coverage < 0.999 {
			t.Errorf("%s coverage = %.3f, want 1 in 8b regime", name, res.Coverage)
		}
	}
}

func TestFig8dShape(t *testing.T) {
	// ImageNet-22k, D < S < ND (paper Fig. 8d): LBANN cannot run; the
	// order-relaxing policies stop covering the dataset; NoPFS still
	// covers everything and stays fastest.
	r := runPanel(t, "fig8d")
	if !r[NameLBANNDynamic].Failed || !r[NameLBANNPreload].Failed {
		t.Error("LBANN should fail when the dataset exceeds aggregate RAM")
	}
	if cov := r[NameDeepIOOpp].Coverage; cov > 0.9 {
		t.Errorf("DeepIO (Opp.) coverage = %.2f, want < 0.9 (does not access entire dataset)", cov)
	}
	if cov := r[NameNoPFS].Coverage; cov < 0.999 {
		t.Errorf("NoPFS coverage = %.3f, want full", cov)
	}
	lb := r[NameLowerBound].ExecSeconds
	for _, name := range []string{NameNaive, NameStagingBuffer, NameDeepIOOrdered, NameLocalityAware} {
		if r[name].ExecSeconds <= r[NameNoPFS].ExecSeconds-1e-9 {
			t.Errorf("%s (%.2f) beat NoPFS (%.2f) in 8d", name, r[name].ExecSeconds, r[NameNoPFS].ExecSeconds)
		}
	}
	if ratio := r[NameNoPFS].ExecSeconds / lb; ratio > 1.15 {
		t.Errorf("NoPFS/LB = %.3f in 8d, want near 1 (paper: 1.05)", ratio)
	}
}

func TestFig8eShape(t *testing.T) {
	// CosmoFlow, ND < S: even aggregate cluster storage cannot hold the
	// dataset. Sharding no longer covers it; NoPFS does, and still wins.
	r := runPanel(t, "fig8e")
	if cov := r[NameParallelStaging].Coverage; cov > 0.99 {
		t.Errorf("ParallelStaging coverage = %.3f, want < 1 when ND < S", cov)
	}
	if cov := r[NameDeepIOOpp].Coverage; cov > 0.5 {
		t.Errorf("DeepIO (Opp.) coverage = %.3f, want small when ND < S", cov)
	}
	if cov := r[NameNoPFS].Coverage; cov < 0.999 {
		t.Errorf("NoPFS coverage = %.3f, want full", cov)
	}
	if !r[NameLBANNDynamic].Failed {
		t.Error("LBANN should fail in the ND < S regime")
	}
	best := r[NameNoPFS].ExecSeconds
	for _, name := range []string{NameNaive, NameStagingBuffer, NameDeepIOOrdered} {
		if r[name].ExecSeconds <= best-1e-9 {
			t.Errorf("%s beat NoPFS in 8e", name)
		}
	}
}

func TestFig8aAllPoliciesClose(t *testing.T) {
	// MNIST fits in the first storage class: the paper reports little
	// difference between policies except Naive (1.7x).
	r := runPanel(t, "fig8a")
	lb := r[NameLowerBound].ExecSeconds
	for name, res := range r {
		if res.Failed || name == NameNaive {
			continue
		}
		if ratio := res.ExecSeconds / lb; ratio > 1.35 {
			t.Errorf("%s/LB = %.2f on MNIST, want close to 1", name, ratio)
		}
	}
	if ratio := r[NameNaive].ExecSeconds / lb; ratio < 1.3 {
		t.Errorf("Naive/LB = %.2f on MNIST, want >= 1.3 (paper: 1.7)", ratio)
	}
}

func TestNaiveStallDominates(t *testing.T) {
	r := runPanel(t, "fig8b")
	naive := r[NameNaive]
	if naive.StallSeconds <= r[NameNoPFS].StallSeconds {
		t.Error("Naive should stall more than NoPFS")
	}
	if naive.LocCount[perfmodel.LocPFS] == 0 {
		t.Error("Naive never touched the PFS?")
	}
	if naive.LocCount[perfmodel.LocLocal] != 0 || naive.LocCount[perfmodel.LocRemote] != 0 {
		t.Error("Naive must fetch exclusively from the PFS")
	}
}

func TestNoPFSFetchMixShiftsOffPFS(t *testing.T) {
	// After epoch 0, NoPFS serves most fetches from local/remote caches:
	// its PFS fetch count must be well below the total.
	r := runPanel(t, "fig8b")
	nopfs := r[NameNoPFS]
	total := nopfs.LocCount[perfmodel.LocPFS] + nopfs.LocCount[perfmodel.LocRemote] + nopfs.LocCount[perfmodel.LocLocal]
	pfsFrac := float64(nopfs.LocCount[perfmodel.LocPFS]) / float64(total)
	// 5 epochs: epoch 0 is all-PFS (~20% of accesses); beyond that the
	// caches serve nearly everything in the 8b regime.
	if pfsFrac > 0.35 {
		t.Errorf("NoPFS PFS fetch fraction = %.2f, want <= 0.35", pfsFrac)
	}
	if nopfs.LocCount[perfmodel.LocLocal] == 0 {
		t.Error("NoPFS never hit its local cache")
	}
}

func TestEpochZeroSlowerThanSteadyState(t *testing.T) {
	// Paper Fig. 11: the first epoch pays for cold caches. For NoPFS,
	// epoch 0 must be the slowest epoch.
	r := runPanel(t, "fig8b")
	ep := r[NameNoPFS].EpochSeconds
	if len(ep) < 2 {
		t.Fatalf("expected multiple epochs, got %d", len(ep))
	}
	// Later epochs process different (random) sample subsets, so allow a
	// small compute-total wobble; epoch 0 must still not be beaten by more
	// than that.
	for e := 1; e < len(ep); e++ {
		if ep[e] > ep[0]*1.02 {
			t.Errorf("epoch %d (%.2fs) slower than epoch 0 (%.2fs)", e, ep[e], ep[0])
		}
	}
}

func TestBatchAndEpochAccounting(t *testing.T) {
	s, _ := ScenarioByID("fig8b")
	cfg, err := s.Config(testScale, 7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg, NewNoPFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.EpochSeconds) != cfg.Work.Epochs {
		t.Errorf("got %d epoch times, want %d", len(r.EpochSeconds), cfg.Work.Epochs)
	}
	var epochSum, batchSum float64
	for _, e := range r.EpochSeconds {
		epochSum += e
	}
	for _, b := range r.BatchSeconds {
		batchSum += b
	}
	if math.Abs(epochSum-(r.ExecSeconds-r.SetupSeconds)) > 1e-6*r.ExecSeconds+1e-9 {
		t.Errorf("epoch times sum to %.4f, exec-setup = %.4f", epochSum, r.ExecSeconds-r.SetupSeconds)
	}
	if math.Abs(batchSum-(r.ExecSeconds-r.SetupSeconds)) > 1e-6*r.ExecSeconds+1e-9 {
		t.Errorf("batch times sum to %.4f, exec-setup = %.4f", batchSum, r.ExecSeconds-r.SetupSeconds)
	}
}

func TestDeterminism(t *testing.T) {
	s, _ := ScenarioByID("fig8b")
	cfg, _ := s.Config(testScale, 99)
	a, err := Run(cfg, NewNoPFS())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, NewNoPFS())
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecSeconds != b.ExecSeconds || a.StallSeconds != b.StallSeconds {
		t.Error("same seed gave different results")
	}
}

func TestPFSJitterAddsTail(t *testing.T) {
	// With jitter, PFS-bound loaders develop a heavy batch-time tail
	// (paper: "tail events an order of magnitude larger"); NoPFS, which
	// rarely touches the PFS after epoch 0, stays tight.
	s, _ := ScenarioByID("fig8b")
	cfg, _ := s.Config(testScale, 3)
	cfg.PFSJitter = 1.0

	staging, err := Run(cfg, NewStagingBuffer())
	if err != nil {
		t.Fatal(err)
	}
	nopfs, err := Run(cfg, NewNoPFS())
	if err != nil {
		t.Fatal(err)
	}
	tail := func(r *Result) float64 {
		// max/median of per-batch times, skipping epoch 0.
		skip := len(r.BatchSeconds) / cfg.Work.Epochs
		var xs []float64
		xs = append(xs, r.BatchSeconds[skip:]...)
		maxV, sum := 0.0, 0.0
		for _, v := range xs {
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		return maxV / (sum / float64(len(xs)))
	}
	if tail(staging) < tail(nopfs) {
		t.Errorf("StagingBuffer tail (%.1fx) should exceed NoPFS tail (%.1fx)",
			tail(staging), tail(nopfs))
	}
}

func TestGammaAdapts(t *testing.T) {
	env, err := newEnv(&Config{
		Sys: hwspec.SmallCluster(), Work: hwspec.Sec61Workload(2),
		DS:   dataset.MustNew(dataset.Spec{Name: "g", F: 1000, MeanSize: 1 << 20, Classes: 2, Seed: 1}),
		Seed: 1, DropLast: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if env.Gamma() != 4 {
		t.Errorf("initial gamma = %d, want N=4 (all-PFS start)", env.Gamma())
	}
	for i := 0; i < 500; i++ {
		env.notePFS(false)
	}
	if env.Gamma() != 1 {
		t.Errorf("gamma after all-cache phase = %d, want 1", env.Gamma())
	}
	for i := 0; i < 500; i++ {
		env.notePFS(true)
	}
	if env.Gamma() != 4 {
		t.Errorf("gamma after all-PFS phase = %d, want 4", env.Gamma())
	}
}

func TestPolicyByNameRoundTrip(t *testing.T) {
	for _, p := range AllPolicies() {
		got, err := PolicyByName(p.Name())
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", p.Name(), err)
			continue
		}
		if got.Name() != p.Name() {
			t.Errorf("round trip %q -> %q", p.Name(), got.Name())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (&Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	cfg := Config{
		Sys: hwspec.SmallCluster(), Work: hwspec.Sec61Workload(2),
		DS:   dataset.MustNew(dataset.Spec{Name: "v", F: 10, MeanSize: 1024, Classes: 1, Seed: 1}),
		Seed: 1,
	}
	// Global batch 128 > F=10.
	if err := cfg.Validate(); err == nil {
		t.Error("config with batch > dataset accepted")
	}
}

func TestFig9ConfigShapes(t *testing.T) {
	// The Fig. 9 config factory must honour the storage knobs: RAM-only,
	// RAM+SSD, and the unscaled staging buffer.
	cfg, err := Fig9Config(0.002, 11, 5, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.Sys.Node.Classes); got != 1 {
		t.Errorf("RAM-only config has %d classes, want 1", got)
	}
	if cfg.Sys.Node.Staging.CapacityMB != 5000 {
		t.Errorf("staging = %.0f MB, want 5000 (not scaled with dataset)", cfg.Sys.Node.Staging.CapacityMB)
	}
	cfg, err = Fig9Config(0.002, 11, 2, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(cfg.Sys.Node.Classes); got != 2 {
		t.Errorf("RAM+SSD config has %d classes, want 2", got)
	}
	if cfg.Sys.Node.Staging.CapacityMB != 2000 {
		t.Errorf("staging = %.0f MB, want 2000", cfg.Sys.Node.Staging.CapacityMB)
	}
}

func TestScaleSystemDoesNotAliasPreset(t *testing.T) {
	base := hwspec.SmallCluster()
	scaled := ScaleSystem(base, 0.5)
	if scaled.Node.Classes[0].CapacityMB != base.Node.Classes[0].CapacityMB/2 {
		t.Error("scaling wrong")
	}
	if hwspec.SmallCluster().Node.Classes[0].CapacityMB != 120000 {
		t.Error("ScaleSystem mutated the preset's class slice")
	}
}

func BenchmarkSimNoPFSImageNet1k(b *testing.B) {
	s, _ := ScenarioByID("fig8b")
	cfg, err := s.Config(0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, NewNoPFS()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimAllPoliciesMNIST(b *testing.B) {
	s, _ := ScenarioByID("fig8a")
	cfg, err := s.Config(0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, pol := range AllPolicies() {
			if _, err := Run(cfg, pol); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSimulateHotLoop isolates the consumption-recurrence inner loop:
// plan artifacts and the NoPFS assignment are prewarmed in the shared plan
// cache, so each iteration measures only Prepare-lookup + the simulate()
// pass over the stream. Allocations here are the per-run Result series, not
// per-sample accounting.
func BenchmarkSimulateHotLoop(b *testing.B) {
	s, _ := ScenarioByID("fig8b")
	cfg, err := s.Config(0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Run(cfg, NewNoPFS()); err != nil { // warm the plan cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, NewNoPFS()); err != nil {
			b.Fatal(err)
		}
	}
}
