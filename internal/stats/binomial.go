package stats

import "math"

// The access-frequency analysis of Sec. 3.1 models the number of times a
// fixed worker touches a fixed sample over E epochs as X ~ Binomial(E, 1/N).
// These helpers evaluate that distribution in log space so they stay exact
// for the paper's parameters (E up to hundreds) and beyond.

// logGamma is math.Lgamma without the sign return.
func logGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogChoose returns log(C(n, k)) for 0 <= k <= n.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return logGamma(float64(n)+1) - logGamma(float64(k)+1) - logGamma(float64(n-k)+1)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomialCDF returns P(X <= k) for X ~ Binomial(n, p).
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var s float64
	for i := 0; i <= k; i++ {
		s += BinomialPMF(n, p, i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// BinomialTail returns P(X > k) = 1 - CDF(k), summed from the upper end for
// accuracy in the regime the paper cares about (rare heavy hitters).
func BinomialTail(n int, p float64, k int) float64 {
	if k >= n {
		return 0
	}
	if k < 0 {
		return 1
	}
	var s float64
	for i := k + 1; i <= n; i++ {
		s += BinomialPMF(n, p, i)
	}
	if s > 1 {
		s = 1
	}
	return s
}

// BinomialMean returns E[X] = n*p.
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// ExpectedHeavyHitters returns the paper's Sec. 3.1 estimate
// F * P(X > (1+delta)*mu) — the expected number of dataset samples a fixed
// worker will access more than (1+delta) times the mean over E epochs with N
// workers. For the paper's example (N=16, E=90, F=1,281,167, delta=0.8) this
// evaluates to ~31,635.
func ExpectedHeavyHitters(F, E, N int, delta float64) float64 {
	mu := float64(E) / float64(N)
	threshold := int(math.Ceil((1+delta)*mu)) - 1 // P(X > threshold) == P(X >= ceil((1+d)mu))
	return float64(F) * BinomialTail(E, 1/float64(N), threshold)
}
