// Package stats provides the statistical utilities NoPFS relies on:
// streaming moments, percentiles, histograms, confidence intervals, linear
// regression (for interpolating PFS throughput curves), and the binomial
// distribution used in the access-frequency analysis of Sec. 3.1.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates running mean and variance in a single pass using
// Welford's numerically stable recurrence.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the sample variance (n-1 denominator; 0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Mean returns the arithmetic mean of xs (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation of xs (0 for fewer than 2).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted; it is copied.
// Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileSorted is like Percentile but requires xs sorted ascending and
// does not copy.
func PercentileSorted(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return percentileSorted(xs, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary holds the descriptive statistics the benchmark harness reports for
// a set of per-epoch or per-batch timings, mirroring the paper's "median with
// 95% CI plus violin (percentile) plots".
type Summary struct {
	N               int
	Mean, Stddev    float64
	Min, Max        float64
	P5, P25, Median float64
	P75, P95, P99   float64
	CILow, CIHigh   float64 // 95% CI on the median (order-statistic based)
}

// Summarize computes a Summary of xs. Returns a zero Summary for empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	sum := Summary{
		N:      len(s),
		Mean:   Mean(s),
		Stddev: Stddev(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		P5:     percentileSorted(s, 5),
		P25:    percentileSorted(s, 25),
		Median: percentileSorted(s, 50),
		P75:    percentileSorted(s, 75),
		P95:    percentileSorted(s, 95),
		P99:    percentileSorted(s, 99),
	}
	sum.CILow, sum.CIHigh = MedianCI95(s)
	return sum
}

// MedianCI95 returns a distribution-free 95% confidence interval for the
// median based on binomial order statistics. xs must be sorted ascending.
// For n < 6 the interval is the full range.
func MedianCI95(xs []float64) (lo, hi float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	if n < 6 {
		return xs[0], xs[n-1]
	}
	// Normal approximation to the binomial(n, 0.5) order-statistic bounds.
	z := 1.96
	d := z * math.Sqrt(float64(n)) / 2
	loIdx := int(math.Floor(float64(n)/2 - d))
	hiIdx := int(math.Ceil(float64(n)/2+d)) - 1
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	return xs[loIdx], xs[hiIdx]
}

// Histogram is a fixed-width-bucket histogram over integer values, used for
// the access-frequency distribution plot (Fig. 3).
type Histogram struct {
	Counts []int // Counts[v] = number of observations equal to v
	Total  int
}

// NewHistogram returns a histogram able to hold values in [0, maxValue].
func NewHistogram(maxValue int) *Histogram {
	return &Histogram{Counts: make([]int, maxValue+1)}
}

// Add records value v, growing the bucket slice if needed.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	for v >= len(h.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[v]++
	h.Total++
}

// CountAbove returns the number of observations strictly greater than v.
func (h *Histogram) CountAbove(v int) int {
	n := 0
	for i := v + 1; i < len(h.Counts); i++ {
		n += h.Counts[i]
	}
	return n
}

// Mode returns the value with the highest count (lowest value wins ties).
func (h *Histogram) Mode() int {
	best, bestCount := 0, -1
	for v, c := range h.Counts {
		if c > bestCount {
			best, bestCount = v, c
		}
	}
	return best
}

// String renders a compact ASCII bar chart, one row per bucket value.
func (h *Histogram) String() string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	out := ""
	for v, c := range h.Counts {
		bar := ""
		if c > 0 {
			width := c * 50 / maxC
			if width == 0 {
				width = 1
			}
			for i := 0; i < width; i++ {
				bar += "#"
			}
		}
		out += fmt.Sprintf("%4d | %-50s %d\n", v, bar, c)
	}
	return out
}

// LinearRegression fits y = a + b*x by ordinary least squares and returns
// (a, b). It panics if len(x) != len(y) and returns (0,0) for < 2 points.
// NoPFS uses this to interpolate PFS throughput t(γ) between measured client
// counts, exactly as the paper's configuration manager does (Sec. 5.2.2).
func LinearRegression(x, y []float64) (a, b float64) {
	if len(x) != len(y) {
		panic("stats: LinearRegression length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / denom
	a = (sy - b*sx) / n
	return a, b
}

// InterpolateMonotone performs piecewise-linear interpolation of y at query
// point q over the sorted knots (xs, ys), with flat extrapolation beyond the
// ends. xs must be strictly increasing and non-empty.
func InterpolateMonotone(xs, ys []float64, q float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("stats: InterpolateMonotone bad knots")
	}
	if q <= xs[0] {
		return ys[0]
	}
	if q >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	i := sort.SearchFloat64s(xs, q)
	// xs[i-1] < q <= xs[i]
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	f := (q - x0) / (x1 - x0)
	return y0 + f*(y1-y0)
}
