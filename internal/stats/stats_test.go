package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasic(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != len(data) {
		t.Fatalf("N = %d, want %d", w.N(), len(data))
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if !almostEqual(w.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Stddev() != 0 {
		t.Error("empty Welford should report zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single-value Welford: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seedVals []float64) bool {
		if len(seedVals) < 2 {
			return true
		}
		// Clamp crazy values to keep the batch formula stable.
		xs := make([]float64, 0, len(seedVals))
		for _, v := range seedVals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			xs = append(xs, math.Mod(v, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		m := Mean(xs)
		sd := Stddev(xs)
		return almostEqual(w.Mean(), m, 1e-6*(1+math.Abs(m))) &&
			almostEqual(w.Stddev(), sd, 1e-6*(1+sd))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5, 1e-9) {
		t.Errorf("interpolated median = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Median != 50 || s.Min != 0 || s.Max != 100 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P25 != 25 || s.P75 != 75 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
	if s.CILow > s.Median || s.CIHigh < s.Median {
		t.Errorf("median CI [%v, %v] does not contain median %v", s.CILow, s.CIHigh, s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestMedianCIOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		lo, hi := MedianCI95(xs)
		return lo <= hi && lo >= xs[0] && hi <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 2, 2, 2, 9} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Errorf("Total = %d, want 7", h.Total)
	}
	if h.Mode() != 2 {
		t.Errorf("Mode = %d, want 2", h.Mode())
	}
	if got := h.CountAbove(2); got != 1 {
		t.Errorf("CountAbove(2) = %d, want 1", got)
	}
	if got := h.CountAbove(100); got != 0 {
		t.Errorf("CountAbove(100) = %d, want 0", got)
	}
	if h.String() == "" {
		t.Error("String() empty")
	}
	h.Add(-3) // clamps to 0
	if h.Counts[0] != 2 {
		t.Errorf("negative value not clamped: Counts[0] = %d", h.Counts[0])
	}
}

func TestLinearRegressionExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b := LinearRegression(x, y)
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) {
		t.Errorf("fit = (%v, %v), want (1, 2)", a, b)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	a, b := LinearRegression([]float64{2, 2, 2}, []float64{1, 3, 5})
	if b != 0 || !almostEqual(a, 3, 1e-9) {
		t.Errorf("vertical data fit = (%v, %v), want (3, 0)", a, b)
	}
	if a, b := LinearRegression([]float64{1}, []float64{1}); a != 0 || b != 0 {
		t.Errorf("single point fit = (%v, %v), want (0, 0)", a, b)
	}
}

func TestLinearRegressionPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	LinearRegression([]float64{1, 2}, []float64{1})
}

func TestInterpolateMonotone(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := []float64{330, 730, 1540, 2870}
	cases := []struct{ q, want float64 }{
		{1, 330}, {8, 2870}, {0.5, 330}, {16, 2870},
		{2, 730}, {3, 1135}, {6, 2205},
	}
	for _, c := range cases {
		if got := InterpolateMonotone(xs, ys, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Interpolate(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestInterpolatePanicsOnBadKnots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty knots")
		}
	}()
	InterpolateMonotone(nil, nil, 1)
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 10, 90} {
		for _, p := range []float64{0.0625, 0.25, 0.5} {
			var s float64
			for k := 0; k <= n; k++ {
				s += BinomialPMF(n, p, k)
			}
			if !almostEqual(s, 1, 1e-9) {
				t.Errorf("PMF(n=%d, p=%v) sums to %v", n, p, s)
			}
		}
	}
}

func TestBinomialPMFEdgeCases(t *testing.T) {
	if BinomialPMF(10, 0.5, -1) != 0 || BinomialPMF(10, 0.5, 11) != 0 {
		t.Error("out-of-range k should have probability 0")
	}
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 0, 1) != 0 {
		t.Error("p=0 degenerate case wrong")
	}
	if BinomialPMF(10, 1, 10) != 1 || BinomialPMF(10, 1, 9) != 0 {
		t.Error("p=1 degenerate case wrong")
	}
}

func TestBinomialCDFTailComplement(t *testing.T) {
	n, p := 90, 1.0/16.0
	for k := -1; k <= n; k++ {
		c, tail := BinomialCDF(n, p, k), BinomialTail(n, p, k)
		if !almostEqual(c+tail, 1, 1e-9) {
			t.Errorf("CDF(%d)+Tail(%d) = %v, want 1", k, k, c+tail)
		}
	}
}

func TestBinomialMean(t *testing.T) {
	if m := BinomialMean(90, 1.0/16.0); !almostEqual(m, 5.625, 1e-12) {
		t.Errorf("mean = %v, want 5.625", m)
	}
}

func TestExpectedHeavyHittersPaperExample(t *testing.T) {
	// Paper Sec. 3.1: N=16, E=90, F=1,281,167, delta=0.8 -> ~31,635
	// expected samples accessed more than 10 times by a fixed worker.
	got := ExpectedHeavyHitters(1281167, 90, 16, 0.8)
	if got < 30000 || got > 33500 {
		t.Errorf("ExpectedHeavyHitters = %v, want ~31,635 (paper value)", got)
	}
}

func TestExpectedHeavyHittersMonotoneInDelta(t *testing.T) {
	prev := math.Inf(1)
	for _, d := range []float64{0.2, 0.4, 0.8, 1.6, 3.2} {
		v := ExpectedHeavyHitters(1281167, 90, 16, d)
		if v > prev {
			t.Errorf("heavy hitters not monotone: delta=%v gives %v > previous %v", d, v, prev)
		}
		prev = v
	}
}

func TestLogChoose(t *testing.T) {
	// C(5,2) = 10
	if got := math.Exp(LogChoose(5, 2)); !almostEqual(got, 10, 1e-9) {
		t.Errorf("C(5,2) = %v, want 10", got)
	}
	if !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("C(5,6) should be log(0)")
	}
}

func BenchmarkSummarize(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64((i * 2654435761) % 100003)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}

func BenchmarkBinomialTail(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomialTail(90, 1.0/16.0, 10)
	}
}
