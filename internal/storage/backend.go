package storage

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Backend is one storage class's byte store. Implementations are safe for
// concurrent use. Capacity is enforced: Put fails when the sample would not
// fit, mirroring the cache-assignment capacity model. Put and Get honour
// context cancellation: a rate-limited operation returns the context's
// error instead of sleeping out its bandwidth reservation.
type Backend interface {
	// Name identifies the class in stats ("ram", "ssd", ...).
	Name() string
	// Put stores sample id. It returns false (without storing) when the
	// payload would exceed remaining capacity.
	Put(ctx context.Context, id int32, data []byte) (bool, error)
	// Get returns the stored payload, or ok=false if absent.
	Get(ctx context.Context, id int32) (data []byte, ok bool, err error)
	// Has reports whether the sample is stored.
	Has(id int32) bool
	// Used returns the bytes currently stored.
	Used() int64
	// Capacity returns the byte capacity.
	Capacity() int64
}

// Memory is a RAM-backed Backend with optional read/write rate limiting.
type Memory struct {
	name       string
	capacity   int64
	readLimit  *Limiter
	writeLimit *Limiter

	mu   sync.RWMutex
	data map[int32][]byte
	used int64
}

// NewMemory returns a memory backend with the given capacity in bytes and
// read/write limiters (nil = unlimited).
func NewMemory(name string, capacity int64, read, write *Limiter) *Memory {
	return &Memory{
		name: name, capacity: capacity,
		readLimit: read, writeLimit: write,
		data: make(map[int32][]byte),
	}
}

// Name implements Backend.
func (m *Memory) Name() string { return m.name }

// Put implements Backend. Capacity is claimed (and the sample published)
// before the bandwidth cost is paid, so rejected puts never charge the
// shared limiter; a canceled Put rolls the sample back out.
func (m *Memory) Put(ctx context.Context, id int32, data []byte) (bool, error) {
	size := int64(len(data))
	m.mu.Lock()
	if _, exists := m.data[id]; exists {
		m.mu.Unlock()
		return true, nil
	}
	if m.used+size > m.capacity {
		m.mu.Unlock()
		return false, nil
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m.data[id] = cp
	m.used += size
	m.mu.Unlock()
	if err := m.writeLimit.Wait(ctx, size); err != nil {
		m.mu.Lock()
		delete(m.data, id)
		m.used -= size
		m.mu.Unlock()
		return false, err
	}
	return true, nil
}

// Get implements Backend.
func (m *Memory) Get(ctx context.Context, id int32) ([]byte, bool, error) {
	m.mu.RLock()
	data, ok := m.data[id]
	m.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	if err := m.readLimit.Wait(ctx, int64(len(data))); err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Has implements Backend.
func (m *Memory) Has(id int32) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.data[id]
	return ok
}

// Used implements Backend.
func (m *Memory) Used() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.used
}

// Capacity implements Backend.
func (m *Memory) Capacity() int64 { return m.capacity }

// FS is a filesystem-backed Backend (the paper's mmap/POSIX prefetcher
// target): one file per cached sample under a root directory.
type FS struct {
	name       string
	root       string
	capacity   int64
	readLimit  *Limiter
	writeLimit *Limiter

	mu      sync.RWMutex
	have    map[int32]int64 // id -> size, published (fully written) samples
	pending map[int32]struct{}
	used    int64
}

// NewFS returns a filesystem backend rooted at dir (created if needed).
func NewFS(name, dir string, capacity int64, read, write *Limiter) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: fs backend: %w", err)
	}
	return &FS{
		name: name, root: dir, capacity: capacity,
		readLimit: read, writeLimit: write,
		have:    make(map[int32]int64),
		pending: make(map[int32]struct{}),
	}, nil
}

func (f *FS) path(id int32) string {
	return filepath.Join(f.root, fmt.Sprintf("s%08d.bin", id))
}

// Name implements Backend.
func (f *FS) Name() string { return f.name }

// Put implements Backend. Capacity is reserved up front (so concurrent Puts
// cannot oversubscribe), the payload is written to a temp file and renamed
// into place, and only then is the sample published — a concurrent Get can
// never observe a torn write.
func (f *FS) Put(ctx context.Context, id int32, data []byte) (bool, error) {
	size := int64(len(data))
	f.mu.Lock()
	if _, exists := f.have[id]; exists {
		f.mu.Unlock()
		return true, nil
	}
	if _, writing := f.pending[id]; writing {
		// Another Put is in flight for the same sample; treat as stored.
		f.mu.Unlock()
		return true, nil
	}
	if f.used+size > f.capacity {
		f.mu.Unlock()
		return false, nil
	}
	f.pending[id] = struct{}{}
	f.used += size
	f.mu.Unlock()

	abort := func(err error) (bool, error) {
		f.mu.Lock()
		delete(f.pending, id)
		f.used -= size
		f.mu.Unlock()
		return false, err
	}
	tmp := f.path(id) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return abort(fmt.Errorf("storage: fs put %d: %w", id, err))
	}
	if err := os.Rename(tmp, f.path(id)); err != nil {
		os.Remove(tmp)
		return abort(fmt.Errorf("storage: fs put %d: %w", id, err))
	}
	if err := f.writeLimit.Wait(ctx, size); err != nil {
		os.Remove(f.path(id))
		return abort(err)
	}
	f.mu.Lock()
	delete(f.pending, id)
	f.have[id] = size
	f.mu.Unlock()
	return true, nil
}

// Get implements Backend.
func (f *FS) Get(ctx context.Context, id int32) ([]byte, bool, error) {
	f.mu.RLock()
	_, ok := f.have[id]
	f.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := os.ReadFile(f.path(id))
	if err != nil {
		return nil, false, fmt.Errorf("storage: fs get %d: %w", id, err)
	}
	if err := f.readLimit.Wait(ctx, int64(len(data))); err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Has implements Backend.
func (f *FS) Has(id int32) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.have[id]
	return ok
}

// Used implements Backend.
func (f *FS) Used() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.used
}

// Capacity implements Backend.
func (f *FS) Capacity() int64 { return f.capacity }
