// Package storage provides the live middleware's storage substrate: byte
// backends for each storage class (memory, filesystem), token-bucket rate
// limiting that emulates a class's aggregate bandwidth, and the ordered
// staging buffer that hands samples to the trainer in access order.
//
// Every blocking operation takes a context.Context and returns promptly
// when it is canceled, so a canceled training run tears down in bounded
// time instead of sleeping out its bandwidth reservations.
package storage

import (
	"context"
	"math"
	"sync"
	"time"
)

// Limiter emulates a storage class's aggregate bandwidth: concurrent
// operations share the configured rate, exactly like p threads sharing
// r_j(p). A nil limiter, a zero-value limiter, and any rate <= 0 all mean
// unlimited — waits pass immediately.
//
// Internally the limiter runs a virtual byte clock: reservations accumulate
// in byte space and are converted to release times against the current rate
// anchor, so SetRate mid-run re-paces the outstanding backlog at the new
// rate instead of honouring grants priced at the old one. Waiters observe
// rate changes through a broadcast channel, which is what keeps a waiter
// priced at a near-zero rate from sleeping forever after the rate recovers.
type Limiter struct {
	mu sync.Mutex
	// bytesPerSec is the configured rate; <= 0 means unlimited.
	bytesPerSec float64
	// reserved is the cumulative bytes ever granted.
	reserved float64
	// baseTime/baseBytes anchor the virtual clock: bytes up to baseBytes
	// were (or are deemed) complete at baseTime, so byte b releases at
	// baseTime + (b-baseBytes)/rate.
	baseTime  time.Time
	baseBytes float64
	// changed is closed and replaced on every SetRate so in-flight waiters
	// recompute their release times; lazily created (zero-value safety).
	changed chan struct{}
	// observer, when set, receives each Wait's actual blocked duration in
	// seconds (see SetObserver).
	observer func(seconds float64)
}

// NewLimiter returns a limiter enforcing the given aggregate rate in MB/s
// (MB = 2^20 bytes). Rates <= 0 return an unlimited (but non-nil) limiter,
// so a caller may later enable a rate with SetRate.
func NewLimiter(mbps float64) *Limiter {
	l := &Limiter{}
	if mbps > 0 {
		l.bytesPerSec = mbps * (1 << 20)
	}
	return l
}

// changedLocked returns the broadcast channel, creating it on first use.
// Callers must hold mu.
func (l *Limiter) changedLocked() chan struct{} {
	if l.changed == nil {
		l.changed = make(chan struct{})
	}
	return l.changed
}

// advanceLocked folds wall-clock progress into the clock anchor: bytes that
// have drained by now are marked complete so idle periods are not charged to
// future reservations. Callers must hold mu, and rate must be positive.
func (l *Limiter) advanceLocked(now time.Time) {
	if l.baseTime.IsZero() {
		l.baseTime, l.baseBytes = now, l.reserved
		return
	}
	if elapsed := now.Sub(l.baseTime).Seconds(); elapsed > 0 {
		done := l.baseBytes + elapsed*l.bytesPerSec
		if done > l.reserved {
			done = l.reserved
		}
		l.baseTime, l.baseBytes = now, done
	}
}

// releaseLocked returns the time cumulative byte b is released under the
// current anchor and rate. Callers must hold mu.
func (l *Limiter) releaseLocked(b float64) time.Time {
	seconds := (b - l.baseBytes) / l.bytesPerSec
	// Clamp pathological backlogs (near-zero rates) to a finite horizon so
	// the duration arithmetic cannot overflow; SetRate wakes such waiters.
	if max := float64(math.MaxInt64 / 2); seconds*float64(time.Second) > max {
		seconds = max / float64(time.Second)
	}
	return l.baseTime.Add(time.Duration(seconds * float64(time.Second)))
}

// SetRate changes the limiter's aggregate rate to mbps; values <= 0 switch
// the limiter to unlimited and release every waiter. The outstanding backlog
// (bytes reserved but not yet drained) is re-paced at the new rate, and
// in-flight Waits recompute their release times — a waiter granted a far
// future slot at a degraded rate is not stranded when the rate recovers.
// Fault injection uses this to degrade and restore a tier's bandwidth
// mid-run.
func (l *Limiter) SetRate(mbps float64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	now := time.Now()
	if l.bytesPerSec > 0 {
		l.advanceLocked(now)
	} else {
		// Unlimited until now: everything already reserved passed freely.
		l.baseTime, l.baseBytes = now, l.reserved
	}
	if mbps > 0 {
		l.bytesPerSec = mbps * (1 << 20)
	} else {
		l.bytesPerSec = 0
	}
	if l.changed != nil {
		close(l.changed)
	}
	l.changed = make(chan struct{})
	l.mu.Unlock()
}

// SetObserver installs a callback receiving each Wait's blocked duration in
// seconds (only calls that actually slept report). Instrumentation hook for
// the metrics layer; pass nil to remove.
func (l *Limiter) SetObserver(fn func(seconds float64)) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.observer = fn
	l.mu.Unlock()
}

// sleepQuantum bounds timer overhead: reservations shorter than this pass
// immediately and are paid for by later callers once the backlog
// accumulates past the quantum. Aggregate throughput still converges to the
// configured rate; only burst granularity is affected.
const sleepQuantum = 2 * time.Millisecond

// Wait blocks until n bytes may pass or ctx is canceled, returning ctx's
// error in the latter case. Serialising grants through a shared reservation
// clock makes the aggregate throughput of all callers converge to the
// configured rate regardless of concurrency. A canceled caller's
// reservation stays on the clock — the tail of a torn-down run is charged,
// not refunded, which keeps the accounting monotonic. A rate change during
// the wait re-prices the remaining sleep at the new rate.
func (l *Limiter) Wait(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	if l.bytesPerSec <= 0 {
		l.reserved += float64(n)
		l.mu.Unlock()
		return nil
	}
	now := time.Now()
	l.advanceLocked(now)
	l.reserved += float64(n)
	myEnd := l.reserved
	release := l.releaseLocked(myEnd)
	changed := l.changedLocked()
	observer := l.observer
	l.mu.Unlock()

	start := now
	slept := false
	for {
		wait := time.Until(release)
		if wait <= sleepQuantum {
			if slept && observer != nil {
				observer(time.Since(start).Seconds())
			}
			return nil
		}
		slept = true
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-changed:
			timer.Stop()
			l.mu.Lock()
			if l.bytesPerSec <= 0 {
				l.mu.Unlock()
				if observer != nil {
					observer(time.Since(start).Seconds())
				}
				return nil
			}
			release = l.releaseLocked(myEnd)
			changed = l.changedLocked()
			l.mu.Unlock()
		}
	}
}
