// Package storage provides the live middleware's storage substrate: byte
// backends for each storage class (memory, filesystem), token-bucket rate
// limiting that emulates a class's aggregate bandwidth, and the ordered
// staging buffer that hands samples to the trainer in access order.
//
// Every blocking operation takes a context.Context and returns promptly
// when it is canceled, so a canceled training run tears down in bounded
// time instead of sleeping out its bandwidth reservations.
package storage

import (
	"context"
	"sync"
	"time"
)

// Limiter emulates a storage class's aggregate bandwidth: concurrent
// operations share the configured rate, exactly like p threads sharing
// r_j(p). A zero/nil limiter is unlimited.
type Limiter struct {
	mu          sync.Mutex
	bytesPerSec float64
	next        time.Time
}

// NewLimiter returns a limiter enforcing the given aggregate rate in MB/s
// (MB = 2^20 bytes). Rates <= 0 mean unlimited.
func NewLimiter(mbps float64) *Limiter {
	if mbps <= 0 {
		return nil
	}
	return &Limiter{bytesPerSec: mbps * (1 << 20)}
}

// SetRate changes the limiter's aggregate rate to mbps (values <= 0 are
// ignored: an unlimited limiter is nil, not a zero rate). Reservations
// already on the clock keep their grants; later callers are paced at the new
// rate. Fault injection uses this to degrade a tier's bandwidth mid-run.
func (l *Limiter) SetRate(mbps float64) {
	if l == nil || mbps <= 0 {
		return
	}
	l.mu.Lock()
	l.bytesPerSec = mbps * (1 << 20)
	l.mu.Unlock()
}

// sleepQuantum bounds timer overhead: reservations shorter than this pass
// immediately and are paid for by later callers once the backlog
// accumulates past the quantum. Aggregate throughput still converges to the
// configured rate; only burst granularity is affected.
const sleepQuantum = 2 * time.Millisecond

// Wait blocks until n bytes may pass or ctx is canceled, returning ctx's
// error in the latter case. Serialising grants through a shared reservation
// clock makes the aggregate throughput of all callers converge to the
// configured rate regardless of concurrency. A canceled caller's
// reservation stays on the clock — the tail of a torn-down run is charged,
// not refunded, which keeps the accounting monotonic.
func (l *Limiter) Wait(ctx context.Context, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if l == nil || n <= 0 {
		return nil
	}
	// bytesPerSec is read under the mutex: SetRate mutates it mid-run.
	l.mu.Lock()
	dur := time.Duration(float64(n) / l.bytesPerSec * float64(time.Second))
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	release := l.next.Add(dur)
	l.next = release
	l.mu.Unlock()
	if wait := time.Until(release); wait > sleepQuantum {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
