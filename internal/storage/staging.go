package storage

import (
	"context"
	"errors"
	"sync"
)

// Entry is one staged sample.
type Entry struct {
	Pos  int
	ID   int32
	Data []byte
}

// Staging is the staging buffer of paper Sec. 5.2.2: a byte-budget circular
// buffer filled by concurrent prefetcher goroutines and drained in exact
// access order by the trainer. Producers may complete out of order; Pop
// always delivers position 0, 1, 2, ... Samples are dropped on Pop (the
// paper's Rule 2-4 approximation: a consumed sample is the best eviction
// candidate).
type Staging struct {
	capBytes int64

	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	pending  map[int]Entry
	used     int64
	nextPop  int
	closed   bool
}

// ErrClosed is returned by operations on a closed staging buffer.
var ErrClosed = errors.New("storage: staging buffer closed")

// NewStaging returns a staging buffer with the given byte budget.
func NewStaging(capBytes int64) *Staging {
	s := &Staging{capBytes: capBytes, pending: make(map[int]Entry)}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	return s
}

// noopStop is watch's return for contexts that can never be canceled.
var noopStop = func() bool { return false }

// watch wakes every waiter when ctx is canceled, so a Push/Pop blocked on a
// condition variable observes the cancellation. Callers register it lazily,
// under s.mu, only when actually about to Cond.Wait — the common non-blocking
// path stays free of AfterFunc bookkeeping. Registration under the mutex is
// what closes the lost-wakeup window: the callback also takes s.mu before
// broadcasting, so it cannot fire between the caller's ctx check and its
// Wait. Uncancellable contexts (context.Background and friends) skip the
// registration entirely.
func (s *Staging) watch(ctx context.Context) (stop func() bool) {
	if ctx.Done() == nil {
		return noopStop
	}
	return context.AfterFunc(ctx, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.notFull.Broadcast()
		s.notEmpty.Broadcast()
	})
}

// Push inserts the sample fetched for stream position pos, blocking while
// the byte budget is exhausted. The producer owning the next position to be
// consumed is always admitted, so a sample larger than the whole budget
// cannot deadlock the pipeline. Canceling ctx unblocks the call with ctx's
// error.
func (s *Staging) Push(ctx context.Context, pos int, id int32, data []byte) error {
	size := int64(len(data))
	s.mu.Lock()
	defer s.mu.Unlock()
	var stop func() bool
	for !s.closed && ctx.Err() == nil && s.used+size > s.capBytes && pos != s.nextPop {
		if stop == nil {
			stop = s.watch(ctx)
			defer stop()
		}
		s.notFull.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if _, dup := s.pending[pos]; dup {
		return errors.New("storage: duplicate staging position")
	}
	s.pending[pos] = Entry{Pos: pos, ID: id, Data: data}
	s.used += size
	s.notEmpty.Broadcast()
	return nil
}

// Pop removes and returns the entry for the next stream position, blocking
// until it has been staged. It returns ErrClosed after Close once the
// in-order prefix has drained, and ctx's error if the context is canceled
// while waiting.
func (s *Staging) Pop(ctx context.Context) (Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var stop func() bool
	for {
		if err := ctx.Err(); err != nil {
			return Entry{}, err
		}
		if e, ok := s.pending[s.nextPop]; ok {
			delete(s.pending, s.nextPop)
			s.nextPop++
			s.used -= int64(len(e.Data))
			s.notFull.Broadcast()
			return e, nil
		}
		if s.closed {
			return Entry{}, ErrClosed
		}
		if stop == nil {
			stop = s.watch(ctx)
			defer stop()
		}
		s.notEmpty.Wait()
	}
}

// Used returns the bytes currently staged.
func (s *Staging) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}

// Close wakes all waiters; Pop drains staged in-order entries then reports
// ErrClosed, Push fails immediately.
func (s *Staging) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.notFull.Broadcast()
	s.notEmpty.Broadcast()
}
