package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/prng"
)

// bg is the default context for tests that exercise the data paths rather
// than cancellation.
var bg = context.Background()

func TestMemoryPutGet(t *testing.T) {
	m := NewMemory("ram", 1024, nil, nil)
	ok, err := m.Put(bg, 1, []byte("hello"))
	if err != nil || !ok {
		t.Fatalf("Put: ok=%v err=%v", ok, err)
	}
	data, ok, err := m.Get(bg, 1)
	if err != nil || !ok || string(data) != "hello" {
		t.Fatalf("Get: %q ok=%v err=%v", data, ok, err)
	}
	if !m.Has(1) || m.Has(2) {
		t.Error("Has wrong")
	}
	if m.Used() != 5 {
		t.Errorf("Used = %d, want 5", m.Used())
	}
}

func TestMemoryCapacity(t *testing.T) {
	m := NewMemory("ram", 10, nil, nil)
	if ok, _ := m.Put(bg, 1, make([]byte, 8)); !ok {
		t.Fatal("first put rejected")
	}
	if ok, _ := m.Put(bg, 2, make([]byte, 8)); ok {
		t.Fatal("over-capacity put accepted")
	}
	// Duplicate put of an existing id succeeds without double-counting.
	if ok, _ := m.Put(bg, 1, make([]byte, 8)); !ok {
		t.Fatal("duplicate put rejected")
	}
	if m.Used() != 8 {
		t.Errorf("Used = %d after duplicate put, want 8", m.Used())
	}
}

func TestMemoryGetMissing(t *testing.T) {
	m := NewMemory("ram", 10, nil, nil)
	if _, ok, err := m.Get(bg, 9); ok || err != nil {
		t.Fatal("missing sample reported present")
	}
}

func TestMemoryCopiesData(t *testing.T) {
	m := NewMemory("ram", 100, nil, nil)
	src := []byte("abc")
	m.Put(bg, 1, src)
	src[0] = 'X'
	data, _, _ := m.Get(bg, 1)
	if data[0] != 'a' {
		t.Error("backend aliases caller's buffer")
	}
}

func TestBackendCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Rate-limited backends must refuse canceled work instead of sleeping
	// out the reservation.
	m := NewMemory("ram", 1<<20, NewLimiter(1), NewLimiter(1))
	if ok, err := m.Put(ctx, 1, make([]byte, 1<<19)); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Put: ok=%v err=%v", ok, err)
	}
	if m.Has(1) {
		t.Error("canceled Put published the sample")
	}
	m2 := NewMemory("ram", 1<<20, NewLimiter(1), nil)
	m2.Put(bg, 2, make([]byte, 1<<19))
	if _, ok, err := m2.Get(ctx, 2); ok || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Get: ok=%v err=%v", ok, err)
	}
}

func TestFSBackend(t *testing.T) {
	f, err := NewFS("ssd", t.TempDir(), 1<<20, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("sample-bytes")
	if ok, err := f.Put(bg, 7, payload); !ok || err != nil {
		t.Fatalf("Put: ok=%v err=%v", ok, err)
	}
	data, ok, err := f.Get(bg, 7)
	if err != nil || !ok || string(data) != string(payload) {
		t.Fatalf("Get: %q ok=%v err=%v", data, ok, err)
	}
	if ok, _ := f.Put(bg, 8, make([]byte, 1<<21)); ok {
		t.Error("over-capacity fs put accepted")
	}
	if f.Used() != int64(len(payload)) {
		t.Errorf("Used = %d", f.Used())
	}
	if f.Name() != "ssd" {
		t.Error("name wrong")
	}
}

func TestFSConcurrentPuts(t *testing.T) {
	f, err := NewFS("ssd", t.TempDir(), 100, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(id int32) {
			defer wg.Done()
			f.Put(bg, id, make([]byte, 10))
		}(int32(i))
	}
	wg.Wait()
	if f.Used() > 100 {
		t.Errorf("capacity oversubscribed: %d > 100", f.Used())
	}
	count := 0
	for i := int32(0); i < 20; i++ {
		if f.Has(i) {
			count++
		}
	}
	if count != 10 {
		t.Errorf("stored %d samples in 100 bytes, want exactly 10", count)
	}
}

func TestLimiterRate(t *testing.T) {
	// 8 MB/s limiter, 4 x 1 MB ops => ~0.5 s regardless of concurrency.
	l := NewLimiter(8)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Wait(bg, 1<<20)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 350*time.Millisecond || elapsed > 1500*time.Millisecond {
		t.Errorf("4 MB through 8 MB/s limiter took %v, want ~500ms", elapsed)
	}
}

// TestLimiterUnlimitedForms pins the "rate <= 0 means unlimited" contract
// across every way of arriving at an unlimited limiter: nil receiver,
// zero-value struct, NewLimiter with zero/negative rates, and SetRate with
// zero/negative rates. None may block, divide by zero, or panic.
func TestLimiterUnlimitedForms(t *testing.T) {
	cases := []struct {
		name string
		lim  *Limiter
	}{
		{"nil", nil},
		{"zero-value", &Limiter{}},
		{"new-zero", NewLimiter(0)},
		{"new-negative", NewLimiter(-5)},
		{"setrate-zero", func() *Limiter { l := NewLimiter(10); l.SetRate(0); return l }()},
		{"setrate-negative", func() *Limiter { l := NewLimiter(10); l.SetRate(-1); return l }()},
		{"zero-value-setrate-zero", func() *Limiter { l := &Limiter{}; l.SetRate(0); return l }()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() { done <- tc.lim.Wait(bg, 1<<30) }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("unlimited Wait returned %v", err)
				}
			case <-time.After(time.Second):
				t.Fatal("unlimited limiter blocked")
			}
		})
	}
	if err := NewLimiter(100).Wait(bg, 0); err != nil { // zero bytes free
		t.Fatal(err)
	}
	if err := NewLimiter(100).Wait(bg, -10); err != nil { // negative bytes free
		t.Fatal(err)
	}
}

// TestLimiterSetRateTransitions pins SetRate's edge cases: enabling a rate
// on an unlimited limiter starts pacing, disabling mid-run releases every
// in-flight waiter, and raising a near-zero rate re-prices a waiter whose
// original grant lay in the far future (no stranded sleeps).
func TestLimiterSetRateTransitions(t *testing.T) {
	t.Run("enable-on-unlimited", func(t *testing.T) {
		l := NewLimiter(0)
		if err := l.Wait(bg, 1<<30); err != nil { // free while unlimited
			t.Fatal(err)
		}
		l.SetRate(8)
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				l.Wait(bg, 1<<20)
			}()
		}
		wg.Wait()
		// Pre-SetRate reservations must not be billed: ~4MB/8MBps = ~0.5s.
		if elapsed := time.Since(start); elapsed < 350*time.Millisecond || elapsed > 1500*time.Millisecond {
			t.Errorf("4 MB through freshly enabled 8 MB/s limiter took %v, want ~500ms", elapsed)
		}
	})
	t.Run("disable-releases-waiter", func(t *testing.T) {
		l := NewLimiter(1) // 64 MB at 1 MB/s would sleep ~64s
		done := make(chan error, 1)
		go func() { done <- l.Wait(bg, 64<<20) }()
		time.Sleep(20 * time.Millisecond)
		l.SetRate(0)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("released waiter returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("SetRate(0) stranded an in-flight waiter")
		}
	})
	t.Run("raise-reprices-waiter", func(t *testing.T) {
		l := NewLimiter(0.001) // 1 MB at ~1 KB/s: released ~17 minutes out
		done := make(chan error, 1)
		go func() { done <- l.Wait(bg, 1<<20) }()
		time.Sleep(20 * time.Millisecond)
		l.SetRate(10_000) // backlog re-priced: drains almost immediately
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("re-priced waiter returned %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("raised rate stranded the in-flight waiter at the old price")
		}
	})
	t.Run("lower-slows-later-waiters", func(t *testing.T) {
		l := NewLimiter(10_000)
		l.SetRate(8)
		start := time.Now()
		if err := l.Wait(bg, 4<<20); err != nil {
			t.Fatal(err)
		}
		if elapsed := time.Since(start); elapsed < 350*time.Millisecond || elapsed > 1500*time.Millisecond {
			t.Errorf("4 MB at lowered 8 MB/s took %v, want ~500ms", elapsed)
		}
	})
}

// TestLimiterObserver checks the instrumentation hook: blocked waits report
// their duration, free passes stay silent.
func TestLimiterObserver(t *testing.T) {
	l := NewLimiter(8)
	var mu sync.Mutex
	var total float64
	l.SetObserver(func(s float64) {
		mu.Lock()
		total += s
		mu.Unlock()
	})
	if err := l.Wait(bg, 4<<20); err != nil { // ~0.5s blocked
		t.Fatal(err)
	}
	mu.Lock()
	got := total
	mu.Unlock()
	if got < 0.35 || got > 1.5 {
		t.Errorf("observer saw %.3fs of wait, want ~0.5s", got)
	}
	unlimited := NewLimiter(0)
	unlimited.SetObserver(func(s float64) { t.Errorf("unlimited wait observed %.3fs", s) })
	if err := unlimited.Wait(bg, 1<<30); err != nil {
		t.Fatal(err)
	}
}

func TestLimiterWaitCancel(t *testing.T) {
	// A 1 MB/s limiter asked for 64 MB would sleep ~64 s; cancellation must
	// interrupt the sleep within milliseconds.
	l := NewLimiter(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Wait(ctx, 64<<20) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled limiter wait did not return")
	}
	// A canceled context short-circuits even the nil limiter.
	var nilL *Limiter
	if err := nilL.Wait(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("nil limiter ignored canceled context: %v", err)
	}
}

func TestStagingInOrderDelivery(t *testing.T) {
	s := NewStaging(1 << 20)
	const n = 100
	// Push positions out of order from concurrent producers.
	var wg sync.WaitGroup
	g := prng.New(1)
	order := g.Perm(n)
	for _, pos := range order {
		wg.Add(1)
		go func(pos int) {
			defer wg.Done()
			if err := s.Push(bg, pos, int32(pos*10), []byte{byte(pos)}); err != nil {
				t.Errorf("push %d: %v", pos, err)
			}
		}(pos)
	}
	for i := 0; i < n; i++ {
		e, err := s.Pop(bg)
		if err != nil {
			t.Fatal(err)
		}
		if e.Pos != i || e.ID != int32(i*10) {
			t.Fatalf("pop %d returned pos %d id %d", i, e.Pos, e.ID)
		}
	}
	wg.Wait()
	if s.Used() != 0 {
		t.Errorf("Used = %d after draining", s.Used())
	}
}

func TestStagingBudgetBlocks(t *testing.T) {
	s := NewStaging(10)
	if err := s.Push(bg, 0, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	pushed := make(chan struct{})
	go func() {
		s.Push(bg, 1, 1, make([]byte, 8)) // must block: 16 > 10
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push succeeded beyond byte budget")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := s.Pop(bg); err != nil {
		t.Fatal(err)
	}
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("push did not unblock after pop freed budget")
	}
}

func TestStagingOversizedSampleNoDeadlock(t *testing.T) {
	// A sample larger than the whole budget must still pass when it is the
	// next to be consumed.
	s := NewStaging(4)
	done := make(chan error, 1)
	go func() {
		done <- s.Push(bg, 0, 0, make([]byte, 64))
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("oversized head-of-line sample deadlocked")
	}
	if e, err := s.Pop(bg); err != nil || len(e.Data) != 64 {
		t.Fatalf("pop: %v", err)
	}
}

func TestStagingClose(t *testing.T) {
	s := NewStaging(100)
	s.Push(bg, 0, 5, []byte("x"))
	s.Close()
	// Drains staged prefix first.
	if e, err := s.Pop(bg); err != nil || e.ID != 5 {
		t.Fatalf("pop after close: %v", err)
	}
	if _, err := s.Pop(bg); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	if err := s.Push(bg, 1, 6, []byte("y")); err != ErrClosed {
		t.Fatalf("push after close: %v", err)
	}
}

func TestStagingCancelUnblocks(t *testing.T) {
	// A Pop blocked on an empty buffer and a Push blocked on a full budget
	// must both return the context error promptly on cancel, leaving the
	// buffer usable for other contexts.
	s := NewStaging(10)
	ctx, cancel := context.WithCancel(context.Background())
	popDone := make(chan error, 1)
	go func() {
		_, err := s.Pop(ctx)
		popDone <- err
	}()
	if err := s.Push(bg, 1, 1, make([]byte, 8)); err != nil { // pos 1: does not satisfy Pop(0)
		t.Fatal(err)
	}
	pushDone := make(chan error, 1)
	go func() {
		pushDone <- s.Push(ctx, 2, 2, make([]byte, 8)) // blocks: budget full, not next pop
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	for name, ch := range map[string]chan error{"pop": popDone, "push": pushDone} {
		select {
		case err := <-ch:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s returned %v, want context.Canceled", name, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("canceled %s did not return", name)
		}
	}
	// The buffer itself is still healthy under a live context.
	if err := s.Push(bg, 0, 0, []byte("z")); err != nil {
		t.Fatal(err)
	}
	if e, err := s.Pop(bg); err != nil || e.Pos != 0 {
		t.Fatalf("pop after cancel: %+v %v", e, err)
	}
}

func TestStagingDuplicatePosition(t *testing.T) {
	s := NewStaging(100)
	s.Push(bg, 0, 1, []byte("a"))
	if err := s.Push(bg, 0, 2, []byte("b")); err == nil {
		t.Fatal("duplicate position accepted")
	}
}

func BenchmarkStagingThroughput(b *testing.B) {
	s := NewStaging(1 << 24)
	data := make([]byte, 4096)
	go func() {
		for i := 0; i < b.N; i++ {
			s.Push(bg, i, int32(i), data)
		}
	}()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		if _, err := s.Pop(bg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryBackend(b *testing.B) {
	m := NewMemory("ram", 1<<30, nil, nil)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		id := int32(i % 1000)
		m.Put(bg, id, data)
		if _, ok, _ := m.Get(bg, id); !ok {
			b.Fatal("miss")
		}
	}
}
