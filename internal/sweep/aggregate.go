package sweep

import (
	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Summary folds the replicas of one (scenario, policy) cell group into
// descriptive statistics: mean, spread, and a distribution-free 95% CI on
// the median (see stats.Summarize). With one replica the mean is the value
// and the CI collapses onto it.
type Summary struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Replicas int    `json:"replicas"`
	// Failed is set when every replica failed (policies fail a scenario
	// deterministically, so mixed outcomes indicate a bug).
	Failed     bool   `json:"failed"`
	FailReason string `json:"failReason,omitempty"`

	Exec  stats.Summary `json:"execSeconds"`
	Stall stats.Summary `json:"stallSeconds"`
	Setup stats.Summary `json:"setupSeconds"`
	// Coverage is the mean fraction of dataset bytes read (< 1 flags the
	// paper's "does not access entire dataset").
	Coverage float64 `json:"coverage"`
	// Mean per-location fetch seconds across replicas.
	PFSSeconds    float64 `json:"pfsSeconds"`
	RemoteSeconds float64 `json:"remoteSeconds"`
	LocalSeconds  float64 `json:"localSeconds"`
}

// Aggregate groups the report's cells by (scenario, policy) in grid order
// and summarises each group's replicas.
func (rep *Report) Aggregate() []Summary {
	type key struct{ scenario, policy string }
	order := []key{}
	groups := map[key][]CellResult{}
	for _, c := range rep.Cells {
		k := key{c.Scenario, c.Policy}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}

	out := make([]Summary, 0, len(order))
	for _, k := range order {
		cells := groups[k]
		s := Summary{Scenario: k.scenario, Policy: k.policy, Replicas: len(cells)}
		var exec, stall, setup []float64
		var cov, pfs, remote, local float64
		n := 0
		for _, c := range cells {
			r := c.Result
			if r.Failed {
				s.Failed = true
				s.FailReason = r.FailReason
				continue
			}
			exec = append(exec, r.ExecSeconds)
			stall = append(stall, r.StallSeconds)
			setup = append(setup, r.SetupSeconds)
			cov += r.Coverage
			pfs += r.LocSeconds[perfmodel.LocPFS]
			remote += r.LocSeconds[perfmodel.LocRemote]
			local += r.LocSeconds[perfmodel.LocLocal]
			n++
		}
		if n > 0 {
			s.Failed = false
			s.FailReason = ""
			s.Exec = stats.Summarize(exec)
			s.Stall = stats.Summarize(stall)
			s.Setup = stats.Summarize(setup)
			s.Coverage = cov / float64(n)
			s.PFSSeconds = pfs / float64(n)
			s.RemoteSeconds = remote / float64(n)
			s.LocalSeconds = local / float64(n)
		}
		out = append(out, s)
	}
	return out
}
