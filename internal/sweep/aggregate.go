package sweep

import (
	"fmt"

	"repro/internal/stats"
)

// Summary folds the replicas of one (scenario, policy) cell group into
// descriptive statistics per metric: mean, spread, and a distribution-free
// 95% CI on the median (see stats.Summarize). With one replica the mean is
// the value and the CI collapses onto it.
type Summary struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// Profile names the fault-profile column; empty (and omitted) for grids
	// without a fault-profile axis.
	Profile string `json:"profile,omitempty"`
	// Pattern names the access-pattern column; empty (and omitted) for
	// grids without an access-pattern axis.
	Pattern  string `json:"pattern,omitempty"`
	Replicas int    `json:"replicas"`
	// Failed is set when every replica failed (cells fail a configuration
	// deterministically, so mixed outcomes indicate a bug).
	Failed     bool   `json:"failed"`
	FailReason string `json:"failReason,omitempty"`
	// Note carries the first non-empty cell note of the group into text
	// reports.
	Note string `json:"note,omitempty"`
	// Metrics summarises each schema metric across the group's replicas.
	Metrics map[string]stats.Summary `json:"metrics"`
}

// Metric returns the named metric's replica summary (zero if absent), a
// convenience for presenters reading aggregated reports.
func (s Summary) Metric(name string) stats.Summary {
	return s.Metrics[name]
}

// summarizeGroup folds the replicas of one (scenario, policy, profile,
// pattern) group into a Summary. It is the single aggregation kernel, shared
// by the whole-report Aggregate and the streaming summary path, so both
// produce identical summaries by construction.
func summarizeGroup(metrics []Metric, scenario, policy, profile, pattern string, cells []CellResult) Summary {
	s := Summary{
		Scenario: scenario, Policy: policy, Profile: profile, Pattern: pattern,
		Replicas: len(cells),
		Metrics:  map[string]stats.Summary{},
	}
	values := map[string][]float64{}
	n := 0
	for _, c := range cells {
		o := c.Outcome
		if o.Failed {
			s.Failed = true
			s.FailReason = o.FailReason
			continue
		}
		if s.Note == "" {
			s.Note = o.Note
		}
		for _, m := range metrics {
			if v, ok := o.Values[m.Name]; ok {
				values[m.Name] = append(values[m.Name], v)
			}
		}
		n++
	}
	if n > 0 {
		s.Failed = false
		s.FailReason = ""
		for _, m := range metrics {
			if vs := values[m.Name]; len(vs) > 0 {
				s.Metrics[m.Name] = stats.Summarize(vs)
			}
		}
		// The coverage note is a group property: derive it from the
		// mean across replicas (as the legacy serial reports did), not
		// from whichever replica happened to carry a note.
		if cov, ok := s.Metrics[MetricCoverage]; ok && cov.N > 0 && cov.Mean < 0.999 {
			s.Note = fmt.Sprintf("does not access entire dataset (%.0f%%)", 100*cov.Mean)
		}
	}
	return s
}

// Aggregate groups the report's cells by (scenario, policy, profile,
// pattern) in grid order and summarises each group's replicas metric by
// metric.
func (rep *Report) Aggregate() []Summary {
	type key struct{ scenario, policy, profile, pattern string }
	order := []key{}
	groups := map[key][]CellResult{}
	for _, c := range rep.Cells {
		k := key{c.Scenario, c.Policy, c.Profile, c.Pattern}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}

	out := make([]Summary, 0, len(order))
	for _, k := range order {
		out = append(out, summarizeGroup(rep.Metrics, k.scenario, k.policy, k.profile, k.pattern, groups[k]))
	}
	return out
}
