package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// jsonReport is the stable on-wire shape: the raw cells plus the aggregated
// summaries, so consumers get both without re-deriving either.
type jsonReport struct {
	*Report
	Summaries []Summary `json:"summaries"`
}

// WriteJSON emits the full report (cells + aggregated summaries) as
// indented JSON. Encoding is deterministic: struct fields are emitted in
// declaration order and map keys sorted, so equal grids produce equal bytes
// at any parallelism.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Report: rep, Summaries: rep.Aggregate()})
}

// csvHeader builds the summary-CSV header row for the schema.
func csvHeader(hasProfiles, hasPatterns bool, metrics []Metric) []string {
	header := []string{"grid", "scenario", "policy"}
	if hasProfiles {
		header = append(header, "profile")
	}
	if hasPatterns {
		header = append(header, "pattern")
	}
	header = append(header, "replicas", "failed", "fail_reason", "note")
	for _, m := range metrics {
		header = append(header,
			m.Name+"_mean", m.Name+"_median", m.Name+"_ci_lo", m.Name+"_ci_hi")
	}
	return header
}

// csvRow builds one summary's CSV row.
func csvRow(grid string, hasProfiles, hasPatterns bool, metrics []Metric, s Summary) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := []string{grid, s.Scenario, s.Policy}
	if hasProfiles {
		row = append(row, s.Profile)
	}
	if hasPatterns {
		row = append(row, s.Pattern)
	}
	row = append(row, strconv.Itoa(s.Replicas),
		strconv.FormatBool(s.Failed), s.FailReason, s.Note)
	for _, m := range metrics {
		sm := s.Metrics[m.Name]
		row = append(row, f(sm.Mean), f(sm.Median), f(sm.CILow), f(sm.CIHigh))
	}
	return row
}

// WriteCSV emits one row per aggregated (scenario, policy, profile, pattern)
// summary, with four columns (mean, median, 95% CI bounds) per schema
// metric. The profile and pattern columns appear only when the grid declares
// the corresponding axis, keeping axis-less reports byte-identical.
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	hasProfiles := len(rep.Profiles) > 0
	hasPatterns := len(rep.Patterns) > 0
	if err := cw.Write(csvHeader(hasProfiles, hasPatterns, rep.Metrics)); err != nil {
		return err
	}
	for _, s := range rep.Aggregate() {
		if err := cw.Write(csvRow(rep.Grid, hasProfiles, hasPatterns, rep.Metrics, s)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// textColWidth is the text-report column width for metric values.
const textColWidth = 13

// RowLabel qualifies a policy/loader label with its axis columns — the
// fault profile, then the access pattern ("NoPFS @meltdown @zipf") — the one
// labelling rule shared by WriteText and the CLIs' bespoke figure tables, so
// the same grid renders consistently on every path. Empty qualifiers are
// skipped, so axis-less rows are the bare label. The variadic signature
// keeps legacy two-argument (policy, profile) call sites source-compatible.
func RowLabel(policy string, quals ...string) string {
	label := policy
	for _, q := range quals {
		if q != "" {
			label += " @" + q
		}
	}
	return label
}

// visibleMetrics filters the schema down to text-report columns.
func visibleMetrics(metrics []Metric) []Metric {
	var visible []Metric
	for _, m := range metrics {
		if !m.Hide {
			visible = append(visible, m)
		}
	}
	return visible
}

// textVal formats one metric value with its unit.
func textVal(m Metric, v float64) string {
	return fmt.Sprintf("%.3f%s", v, m.Unit)
}

// textBlockHeader writes one scenario block's title and column header.
func textBlockHeader(w io.Writer, scenario, label string, visible []Metric, multi bool) error {
	title := scenario
	if label != "" {
		title = fmt.Sprintf("%s: %s", scenario, label)
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	var head strings.Builder
	fmt.Fprintf(&head, "%-20s", "policy")
	for i, m := range visible {
		fmt.Fprintf(&head, " %*s", textColWidth, m.label())
		if i == 0 && multi {
			fmt.Fprintf(&head, " %*s", 2*textColWidth+3, "95% CI")
		}
	}
	_, err := fmt.Fprintln(w, head.String()+"  notes")
	return err
}

// textRow writes one summary row of a scenario block.
func textRow(w io.Writer, s Summary, visible []Metric, multi bool) error {
	var row strings.Builder
	fmt.Fprintf(&row, "%-20s", RowLabel(s.Policy, s.Profile, s.Pattern))
	for i, m := range visible {
		cell := "-"
		ci := "-"
		if !s.Failed {
			sm := s.Metrics[m.Name]
			cell = textVal(m, sm.Mean)
			ci = fmt.Sprintf("[%s, %s]", textVal(m, sm.CILow), textVal(m, sm.CIHigh))
		}
		fmt.Fprintf(&row, " %*s", textColWidth, cell)
		if i == 0 && multi {
			fmt.Fprintf(&row, " %*s", 2*textColWidth+3, ci)
		}
	}
	notes := s.Note
	if s.Failed {
		notes = s.FailReason
	}
	_, err := fmt.Fprintln(w, row.String()+"  "+notes)
	return err
}

// WriteText renders the report in the repo's bar-chart style: one block per
// scenario, one row per policy, one column per visible schema metric, with a
// ±CI column on the first metric when the grid ran more than one replica.
func WriteText(w io.Writer, rep *Report) error {
	summaries := rep.Aggregate()
	multi := rep.Replicas > 1
	visible := visibleMetrics(rep.Metrics)

	var scenarios []string
	seen := map[string]bool{}
	for _, s := range summaries {
		if !seen[s.Scenario] {
			seen[s.Scenario] = true
			scenarios = append(scenarios, s.Scenario)
		}
	}
	for _, sc := range scenarios {
		if err := textBlockHeader(w, sc, rep.Labels[sc], visible, multi); err != nil {
			return err
		}
		for _, s := range summaries {
			if s.Scenario != sc {
				continue
			}
			if err := textRow(w, s, visible, multi); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
