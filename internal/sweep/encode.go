package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// jsonReport is the stable on-wire shape: the raw cells plus the aggregated
// summaries, so consumers get both without re-deriving either.
type jsonReport struct {
	*Report
	Summaries []Summary `json:"summaries"`
}

// WriteJSON emits the full report (cells + aggregated summaries) as
// indented JSON. Encoding is deterministic: struct fields are emitted in
// declaration order and map keys sorted, so equal grids produce equal bytes
// at any parallelism.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Report: rep, Summaries: rep.Aggregate()})
}

// WriteCSV emits one row per aggregated (scenario, policy) summary.
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	header := []string{
		"grid", "scenario", "policy", "replicas", "failed", "fail_reason",
		"exec_mean_s", "exec_median_s", "exec_ci_lo_s", "exec_ci_hi_s",
		"stall_mean_s", "setup_mean_s", "coverage",
		"pfs_s", "remote_s", "local_s",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range rep.Aggregate() {
		row := []string{
			rep.Grid, s.Scenario, s.Policy, strconv.Itoa(s.Replicas),
			strconv.FormatBool(s.Failed), s.FailReason,
			f(s.Exec.Mean), f(s.Exec.Median), f(s.Exec.CILow), f(s.Exec.CIHigh),
			f(s.Stall.Mean), f(s.Setup.Mean), f(s.Coverage),
			f(s.PFSSeconds), f(s.RemoteSeconds), f(s.LocalSeconds),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the report in the repo's existing bar-chart style: one
// block per scenario, one row per policy, with a ±CI column when the grid
// ran more than one replica.
func WriteText(w io.Writer, rep *Report) error {
	summaries := rep.Aggregate()
	multi := rep.Replicas > 1

	var scenarios []string
	seen := map[string]bool{}
	for _, s := range summaries {
		if !seen[s.Scenario] {
			seen[s.Scenario] = true
			scenarios = append(scenarios, s.Scenario)
		}
	}
	for _, sc := range scenarios {
		title := sc
		if label := rep.Labels[sc]; label != "" {
			title = fmt.Sprintf("%s: %s", sc, label)
		}
		if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
			return err
		}
		if multi {
			fmt.Fprintf(w, "%-20s %12s %20s %10s %28s %s\n",
				"policy", "exec", "95% CI", "stall", "fetch time pfs/remote/local", "notes")
		} else {
			fmt.Fprintf(w, "%-20s %12s %10s %28s %s\n",
				"policy", "exec", "stall", "fetch time pfs/remote/local", "notes")
		}
		for _, s := range summaries {
			if s.Scenario != sc {
				continue
			}
			if s.Failed {
				if multi {
					fmt.Fprintf(w, "%-20s %12s %20s %10s %28s %s\n", s.Policy, "-", "-", "-", "-", s.FailReason)
				} else {
					fmt.Fprintf(w, "%-20s %12s %10s %28s %s\n", s.Policy, "-", "-", "-", s.FailReason)
				}
				continue
			}
			notes := ""
			if s.Coverage < 0.999 {
				notes = fmt.Sprintf("does not access entire dataset (%.0f%%)", 100*s.Coverage)
			}
			if multi {
				ci := fmt.Sprintf("[%8.2f,%8.2f]", s.Exec.CILow, s.Exec.CIHigh)
				fmt.Fprintf(w, "%-20s %11.2fs %20s %9.2fs %8.1f/%8.1f/%8.1fs  %s\n",
					s.Policy, s.Exec.Mean, ci, s.Stall.Mean,
					s.PFSSeconds, s.RemoteSeconds, s.LocalSeconds, notes)
			} else {
				fmt.Fprintf(w, "%-20s %11.2fs %9.2fs %8.1f/%8.1f/%8.1fs  %s\n",
					s.Policy, s.Exec.Mean, s.Stall.Mean,
					s.PFSSeconds, s.RemoteSeconds, s.LocalSeconds, notes)
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
