package sweep

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/prng"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/sweep -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the encoder golden files")

// goldenGrid is a fixed 2×2×2 grid of pure synthetic cells: metric values
// are a hash of (scenario, policy, seed), one cell group fails, one carries
// a note. It exercises every encoder feature without depending on the
// simulator, so the goldens pin the *report formats* and nothing else.
func goldenGrid() *Grid {
	return &Grid{
		Name: "golden",
		Scenarios: []ScenarioSpec{
			{ID: "s1", Label: "first scenario"},
			{ID: "s2"},
		},
		Policies: []PolicySpec{{Name: "alpha"}, {Name: "beta"}},
		Replicas: 2, BaseSeed: 42,
		Metrics: []Metric{
			{Name: "exec_s", Label: "exec", Unit: "s"},
			{Name: "ratio", Label: "ratio"},
			{Name: "aux", Hide: true},
		},
		Cell: func(si, pi, _, _ int) CellFunc {
			return func(_ context.Context, seed uint64) (*Outcome, error) {
				if si == 1 && pi == 1 {
					return &Outcome{Failed: true, FailReason: "beta cannot run s2"}, nil
				}
				h := prng.NewSplitMix64(seed ^ uint64(1+si*17+pi*3)).Next()
				o := &Outcome{Values: map[string]float64{
					"exec_s": 100 + float64(h%10000)/100,
					"ratio":  float64(h%7) / 8,
					"aux":    float64(si*10 + pi),
				}}
				if si == 0 && pi == 1 {
					o.Note = "partial coverage"
				}
				return o, nil
			}
		},
	}
}

// TestGoldenEncoders compares the JSON, CSV, and text encodings of the
// fixed grid byte-for-byte against checked-in goldens, so encoder changes
// cannot silently drift report formats. Regenerate with -update.
func TestGoldenEncoders(t *testing.T) {
	rep, err := (&Runner{Parallel: 3}).Run(context.Background(), goldenGrid())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		file   string
		encode func(*bytes.Buffer) error
	}{
		{"golden_report.json", func(b *bytes.Buffer) error { return WriteJSON(b, rep) }},
		{"golden_report.csv", func(b *bytes.Buffer) error { return WriteCSV(b, rep) }},
		{"golden_report.txt", func(b *bytes.Buffer) error { return WriteText(b, rep) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.encode(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s",
					tc.file, buf.Bytes(), want)
			}
		})
	}
}
