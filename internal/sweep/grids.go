package sweep

import (
	"context"
	"fmt"

	"repro/internal/perfmodel"
	isim "repro/internal/sim"
)

// This file holds the simulator's cell binding — the engine default — and
// the repo's standard simulator grid definitions: every orchestration path
// that used to be a bespoke serial loop (RunScenario, Fig9Sweep,
// Fig9StagingCheck, the ablation) is a Grid value plus a thin legacy-shaped
// wrapper.

// Simulator metric names (the default schema's Outcome.Values keys).
const (
	MetricExec     = "exec_s"
	MetricStall    = "stall_s"
	MetricSetup    = "setup_s"
	MetricCoverage = "coverage"
	MetricPFS      = "pfs_s"
	MetricRemote   = "remote_s"
	MetricLocal    = "local_s"
)

// SimMetrics is the simulator grids' result schema: execution/stall/setup
// time, dataset coverage, and the per-location fetch-time breakdown.
func SimMetrics() []Metric {
	return []Metric{
		{Name: MetricExec, Label: "exec", Unit: "s"},
		{Name: MetricStall, Label: "stall", Unit: "s"},
		{Name: MetricSetup, Unit: "s", Hide: true},
		{Name: MetricCoverage, Hide: true},
		{Name: MetricPFS, Label: "pfs", Unit: "s"},
		{Name: MetricRemote, Label: "remote", Unit: "s"},
		{Name: MetricLocal, Label: "local", Unit: "s"},
	}
}

// SimOutcome converts one simulator result into the engine's cell outcome,
// keeping the raw result as the payload.
func SimOutcome(r *isim.Result) *Outcome {
	o := &Outcome{Payload: r}
	if r.Failed {
		o.Failed = true
		o.FailReason = r.FailReason
		return o
	}
	o.Values = map[string]float64{
		MetricExec:     r.ExecSeconds,
		MetricStall:    r.StallSeconds,
		MetricSetup:    r.SetupSeconds,
		MetricCoverage: r.Coverage,
		MetricPFS:      r.LocSeconds[perfmodel.LocPFS],
		MetricRemote:   r.LocSeconds[perfmodel.LocRemote],
		MetricLocal:    r.LocSeconds[perfmodel.LocLocal],
	}
	if r.Coverage < 0.999 {
		o.Note = fmt.Sprintf("does not access entire dataset (%.0f%%)", 100*r.Coverage)
	}
	return o
}

// simCellFunc is the default cell binding: materialise the scenario's
// simulator configuration for the seed, stamp the cell's fault profile and
// access pattern onto it, build a fresh policy, and simulate. The implicit
// fault-free profile and uniform pattern are zero values, leaving the
// configuration untouched.
//
// With a memo, the cell first consults it under the configuration's content
// digest: equal digests imply bit-identical simulator inputs, so a hit
// replays the cached outcome without simulating (incremental re-simulation).
// The digest folds the access spec, so two cells differing only in pattern
// never share a memo entry.
func simCellFunc(s ScenarioSpec, p PolicySpec, prof ProfileSpec, pat AccessSpec, memo *ResultMemo) CellFunc {
	return func(ctx context.Context, seed uint64) (*Outcome, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cfg, err := s.Config(seed)
		if err != nil {
			return nil, err
		}
		cfg.Chaos = prof.Profile
		if pat.Spec != "" {
			cfg.Access = pat.Spec
		}
		var key memoKey
		if memo != nil {
			key = memoKey{digest: cfg.Digest(), policy: p.Name}
			if out, ok := memo.get(key); ok {
				return out, nil
			}
		}
		pol := p.New()
		if pol == nil {
			return nil, fmt.Errorf("policy %q constructor returned nil", p.Name)
		}
		r, err := isim.Run(cfg, pol)
		if err != nil {
			return nil, err
		}
		out := SimOutcome(r)
		if memo != nil {
			memo.put(key, out)
		}
		return out, nil
	}
}

// scenarioSpec adapts one Fig. 8 scenario preset into a grid row.
func scenarioSpec(s isim.Scenario, scale float64) ScenarioSpec {
	return ScenarioSpec{
		ID: s.ID, Label: s.Label,
		Config: func(seed uint64) (isim.Config, error) { return s.Config(scale, seed) },
	}
}

// ScenarioGrid is one Fig. 8 panel × every policy.
func ScenarioGrid(s isim.Scenario, scale float64, baseSeed uint64, replicas int) *Grid {
	return &Grid{
		Name:      s.ID,
		Scenarios: []ScenarioSpec{scenarioSpec(s, scale)},
		Policies:  AllPolicySpecs(),
		Replicas:  replicas, BaseSeed: baseSeed,
	}
}

// Fig8Grid is all six Fig. 8 panels × every policy.
func Fig8Grid(scale float64, baseSeed uint64, replicas int) *Grid {
	var rows []ScenarioSpec
	for _, s := range isim.Fig8Scenarios() {
		rows = append(rows, scenarioSpec(s, scale))
	}
	return &Grid{
		Name: "fig8", Scenarios: rows, Policies: AllPolicySpecs(),
		Replicas: replicas, BaseSeed: baseSeed,
	}
}

// Fig9 sweep axes (GB at paper scale).
var (
	fig9RAMs       = []int{32, 64, 128, 256, 512}
	fig9SSDs       = []int{0, 128, 256, 512, 1024}
	fig9StagingGBs = []int{1, 2, 4, 5}
)

// Fig9Axes returns copies of the RAM × SSD axes (GB at paper scale), in the
// grid's row enumeration order (RAM-major).
func Fig9Axes() (rams, ssds []int) {
	return append([]int(nil), fig9RAMs...), append([]int(nil), fig9SSDs...)
}

// Fig9StagingSizes returns the staging-buffer preliminary sizes (GB).
func Fig9StagingSizes() []int {
	return append([]int(nil), fig9StagingGBs...)
}

// Fig9CellID names one environment-study grid row; presenters key
// aggregated summaries by it.
func Fig9CellID(ramGB, ssdGB int) string {
	return fmt.Sprintf("ram%d-ssd%d", ramGB, ssdGB)
}

// Fig9StagingID names one staging-preliminary grid row.
func Fig9StagingID(gb int) string {
	return fmt.Sprintf("staging%d", gb)
}

// nopfsOnly is the single-policy column set of the Fig. 9 study.
func nopfsOnly() []PolicySpec {
	return []PolicySpec{{Name: "NoPFS", New: func() isim.Policy { return isim.NewNoPFS() }}}
}

// Fig9Grid is the 25-point RAM × SSD environment study: ImageNet-22k, NoPFS
// under 5× compute, 5 GB staging buffer.
func Fig9Grid(scale float64, baseSeed uint64, replicas int) *Grid {
	var rows []ScenarioSpec
	for _, ram := range fig9RAMs {
		for _, ssd := range fig9SSDs {
			ram, ssd := ram, ssd
			rows = append(rows, ScenarioSpec{
				ID:    Fig9CellID(ram, ssd),
				Label: fmt.Sprintf("ImageNet-22k, NoPFS 5x compute, RAM %d GB, SSD %d GB", ram, ssd),
				Config: func(seed uint64) (isim.Config, error) {
					return isim.Fig9Config(scale, seed, 5, ram, ssd)
				},
			})
		}
	}
	return &Grid{
		Name: "fig9", Scenarios: rows, Policies: nopfsOnly(),
		Replicas: replicas, BaseSeed: baseSeed,
	}
}

// Fig9StagingGrid is the staging-buffer preliminary: 1-5 GB staging windows
// on the smallest Fig. 9 configuration perform identically.
func Fig9StagingGrid(scale float64, baseSeed uint64) *Grid {
	var rows []ScenarioSpec
	for _, gb := range fig9StagingGBs {
		gb := gb
		rows = append(rows, ScenarioSpec{
			ID:    Fig9StagingID(gb),
			Label: fmt.Sprintf("staging buffer %d GB, RAM 32 GB, no SSD", gb),
			Config: func(seed uint64) (isim.Config, error) {
				return isim.Fig9Config(scale, seed, gb, 32, 0)
			},
		})
	}
	return &Grid{
		Name: "fig9-staging", Scenarios: rows, Policies: nopfsOnly(),
		Replicas: 1, BaseSeed: baseSeed,
	}
}

// Fig9FullGrid is the environment study plus the staging preliminary as one
// grid, so presenters emit a single report (one JSON document, one CSV
// table) for the whole Fig. 9 study.
func Fig9FullGrid(scale float64, baseSeed uint64, replicas int) *Grid {
	env := Fig9Grid(scale, baseSeed, replicas)
	stag := Fig9StagingGrid(scale, baseSeed)
	return &Grid{
		Name:      "fig9",
		Scenarios: append(env.Scenarios, stag.Scenarios...),
		Policies:  env.Policies,
		Replicas:  replicas, BaseSeed: baseSeed,
	}
}

// AblationGrid isolates each NoPFS design choice on the Fig. 8d regime
// (D < S < ND) under 5× compute — the operating point where placement
// quality, remote fetching, and prefetch depth each become visible.
func AblationGrid(scale float64, baseSeed uint64, replicas int) *Grid {
	s, err := isim.ScenarioByID("fig8d")
	if err != nil {
		panic(err) // fig8d is a compiled-in preset
	}
	row := ScenarioSpec{
		ID: "fig8d-5x", Label: s.Label + ", 5x compute",
		Config: func(seed uint64) (isim.Config, error) {
			cfg, err := s.Config(scale, seed)
			if err != nil {
				return isim.Config{}, err
			}
			cfg.Work.ComputeMBps *= 5
			cfg.Work.PreprocMBps *= 5
			return cfg, nil
		},
	}
	var cols []PolicySpec
	for _, v := range []isim.NoPFSVariant{
		{},
		{RandomPlacement: true},
		{NoRemote: true},
		{TinyStaging: true},
	} {
		v := v
		cols = append(cols, PolicySpec{Name: v.Name(), New: func() isim.Policy {
			return isim.NewNoPFSVariant(v)
		}})
	}
	return &Grid{
		Name: "ablation", Scenarios: []ScenarioSpec{row}, Policies: cols,
		Replicas: replicas, BaseSeed: baseSeed,
	}
}

// ---------------------------------------------------------------------------
// Legacy-shaped wrappers. These preserve the signatures of the former serial
// drivers while routing through the engine, so the façade, CLI, examples and
// benchmarks all exercise the parallel path.

// RunScenario simulates every policy on the scenario and returns results in
// Fig. 8 bar order, exactly as the old serial driver did. parallel <= 0
// means GOMAXPROCS.
func RunScenario(ctx context.Context, s isim.Scenario, scale float64, seed uint64, parallel int) ([]*isim.Result, error) {
	rep, err := (&Runner{Parallel: parallel}).Run(ctx, ScenarioGrid(s, scale, seed, 1))
	if err != nil {
		return nil, err
	}
	return rep.Results(), nil
}

// SweepPoint is one configuration of the Fig. 9 environment study.
type SweepPoint struct {
	RAMGB, SSDGB int
	StagingGB    int
	Result       *isim.Result
}

// Fig9Sweep runs the Fig. 9 environment evaluation through the engine and
// returns points in the legacy RAM-major order.
func Fig9Sweep(ctx context.Context, scale float64, seed uint64, parallel int) ([]SweepPoint, error) {
	rep, err := (&Runner{Parallel: parallel}).Run(ctx, Fig9Grid(scale, seed, 1))
	if err != nil {
		return nil, err
	}
	// One policy, one replica: cell i is scenario i, enumerated RAM-major.
	results := rep.Results()
	points := make([]SweepPoint, len(results))
	for i, r := range results {
		points[i] = SweepPoint{
			RAMGB: fig9RAMs[i/len(fig9SSDs)], SSDGB: fig9SSDs[i%len(fig9SSDs)],
			StagingGB: 5, Result: r,
		}
	}
	return points, nil
}

// Fig9StagingCheck runs the staging-buffer preliminary through the engine,
// keyed by staging-buffer GB.
func Fig9StagingCheck(ctx context.Context, scale float64, seed uint64, parallel int) (map[int]*isim.Result, error) {
	rep, err := (&Runner{Parallel: parallel}).Run(ctx, Fig9StagingGrid(scale, seed))
	if err != nil {
		return nil, err
	}
	out := map[int]*isim.Result{}
	for i, r := range rep.Results() {
		out[fig9StagingGBs[i]] = r
	}
	return out, nil
}
