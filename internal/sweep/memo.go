package sweep

import (
	"container/list"
	"sync"

	isim "repro/internal/sim"
)

// memoKey identifies one simulator cell outcome. The config digest folds
// every input the simulator reads — access plan (seed included), system and
// workload specs, dataset sizer, jitter, and the chaos profile — so equal
// keys imply bit-identical Results; the policy name distinguishes the one
// remaining axis.
type memoKey struct {
	digest uint64
	policy string
}

// ResultMemo is a size-bounded, concurrency-safe cache of simulator cell
// outcomes for incremental re-simulation: re-running a sweep after changing
// one knob only simulates the cells whose configuration digest actually
// changed; every untouched cell replays from the memo. Eviction is LRU by
// approximate payload bytes.
//
// Cached outcomes are shared by pointer: callers must treat memoised Results
// as read-only, which every presenter in this repo already does. The memo is
// strictly opt-in (Runner.Memo is nil by default), so default runs keep
// executing every cell.
type ResultMemo struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[memoKey]*list.Element
	hits     int64
	misses   int64
}

// memoEntry is one LRU node.
type memoEntry struct {
	key   memoKey
	out   *Outcome
	bytes int64
}

// NewResultMemo builds a memo bounded to approximately maxBytes of cached
// payload. maxBytes <= 0 selects a 64 MB default.
func NewResultMemo(maxBytes int64) *ResultMemo {
	if maxBytes <= 0 {
		maxBytes = 64 << 20
	}
	return &ResultMemo{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    map[memoKey]*list.Element{},
	}
}

// get returns the cached outcome for the key, if any, marking it recently
// used.
func (m *ResultMemo) get(k memoKey) (*Outcome, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[k]; ok {
		m.ll.MoveToFront(el)
		m.hits++
		return el.Value.(*memoEntry).out, true
	}
	m.misses++
	return nil, false
}

// put inserts an outcome, evicting least-recently-used entries to stay
// within the byte bound. Entries larger than the whole bound are not cached.
func (m *ResultMemo) put(k memoKey, out *Outcome) {
	sz := outcomeBytes(out)
	if sz > m.maxBytes {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[k]; ok {
		// Deterministic cells produce identical outcomes for identical
		// keys; keep the incumbent and refresh recency.
		m.ll.MoveToFront(el)
		return
	}
	m.items[k] = m.ll.PushFront(&memoEntry{key: k, out: out, bytes: sz})
	m.bytes += sz
	for m.bytes > m.maxBytes {
		el := m.ll.Back()
		if el == nil {
			break
		}
		e := m.ll.Remove(el).(*memoEntry)
		delete(m.items, e.key)
		m.bytes -= e.bytes
	}
}

// Len returns the number of cached outcomes.
func (m *ResultMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ll.Len()
}

// Bytes returns the approximate cached payload size.
func (m *ResultMemo) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// Stats returns the lifetime hit/miss counters.
func (m *ResultMemo) Stats() (hits, misses int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.misses
}

// outcomeBytes approximates the resident size of a cached outcome: the
// simulator payload's variable-length series plus fixed overhead for the
// structs and the metric map.
func outcomeBytes(o *Outcome) int64 {
	const fixed = 512
	sz := int64(fixed)
	sz += int64(len(o.Values)) * 48
	sz += int64(len(o.FailReason) + len(o.Note))
	if r, ok := o.Payload.(*isim.Result); ok && r != nil {
		sz += int64(len(r.EpochSeconds)+len(r.BatchSeconds)) * 8
	}
	return sz
}
