package sweep

import (
	"bytes"
	"context"
	"testing"

	isim "repro/internal/sim"
)

// memoGrid is a small simulator grid for memoisation tests: one Fig. 8
// panel × three policies × two replicas, with a compute-rate knob so tests
// can turn exactly one axis of the configuration.
func memoGrid(t *testing.T, computeScale float64) *Grid {
	t.Helper()
	s, err := isim.ScenarioByID("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	row := ScenarioSpec{
		ID: "fig8a", Label: s.Label,
		Config: func(seed uint64) (isim.Config, error) {
			cfg, err := s.Config(testScale, seed)
			if err != nil {
				return isim.Config{}, err
			}
			cfg.Work.ComputeMBps *= computeScale
			return cfg, nil
		},
	}
	return &Grid{
		Name:      "memo",
		Scenarios: []ScenarioSpec{row},
		Policies:  AllPolicySpecs()[:3],
		Replicas:  2, BaseSeed: 5,
	}
}

// TestMemoIncrementalResweep is the incremental re-simulation acceptance
// probe, mirroring access.ShuffleCount: a warm re-run of an unchanged grid
// performs zero simulations and reproduces the report byte for byte; after
// turning one knob, only the changed cells simulate.
func TestMemoIncrementalResweep(t *testing.T) {
	memo := NewResultMemo(0)
	r := &Runner{Parallel: 4, Memo: memo}
	g := memoGrid(t, 1)

	before := isim.SimulateCount()
	cold, err := r.Run(bg, g)
	if err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(g.Size()) {
		t.Fatalf("cold run simulated %d cells, want %d", n, g.Size())
	}

	before = isim.SimulateCount()
	warm, err := r.Run(bg, memoGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != 0 {
		t.Fatalf("warm re-run simulated %d cells, want 0", n)
	}
	var coldB, warmB bytes.Buffer
	if err := WriteJSON(&coldB, cold); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&warmB, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldB.Bytes(), warmB.Bytes()) {
		t.Fatal("memoised report differs from the cold report")
	}

	// One-knob re-run: scaling the compute rate changes every cell of this
	// single-scenario grid, so everything re-simulates — and a second run at
	// the new knob is again fully memoised alongside the old entries.
	before = isim.SimulateCount()
	if _, err := r.Run(bg, memoGrid(t, 5)); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(g.Size()) {
		t.Fatalf("changed grid simulated %d cells, want %d", n, g.Size())
	}
	before = isim.SimulateCount()
	if _, err := r.Run(bg, memoGrid(t, 5)); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != 0 {
		t.Fatalf("re-run at new knob simulated %d cells, want 0", n)
	}
}

// TestMemoPartialInvalidation: a two-scenario grid where the re-run changes
// only one row must re-simulate exactly that row's cells.
func TestMemoPartialInvalidation(t *testing.T) {
	build := func(scale float64) *Grid {
		g := memoGrid(t, 1)
		changed := memoGrid(t, scale)
		changed.Scenarios[0].ID = "fig8a-knob"
		g.Scenarios = append(g.Scenarios, changed.Scenarios[0])
		return g
	}
	memo := NewResultMemo(0)
	r := &Runner{Parallel: 2, Memo: memo}
	if _, err := r.Run(bg, build(2)); err != nil {
		t.Fatal(err)
	}

	before := isim.SimulateCount()
	if _, err := r.Run(bg, build(3)); err != nil {
		t.Fatal(err)
	}
	perRow := 3 * 2 // policies × replicas
	if n := isim.SimulateCount() - before; n != int64(perRow) {
		t.Fatalf("one-knob re-run simulated %d cells, want %d (the changed row only)", n, perRow)
	}
}

// TestMemoOffByDefault: without Runner.Memo every run simulates every cell —
// memoisation must never silently activate.
func TestMemoOffByDefault(t *testing.T) {
	r := &Runner{Parallel: 2}
	g := memoGrid(t, 1)
	if _, err := r.Run(bg, g); err != nil {
		t.Fatal(err)
	}
	before := isim.SimulateCount()
	if _, err := r.Run(bg, memoGrid(t, 1)); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(g.Size()) {
		t.Fatalf("memo-less re-run simulated %d cells, want %d", n, g.Size())
	}
}

// TestMemoEviction: the byte bound holds under pressure and evicts least
// recently used entries first.
func TestMemoEviction(t *testing.T) {
	memo := NewResultMemo(4096) // a handful of outcomes at most
	r := &Runner{Parallel: 1, Memo: memo}
	for scale := 1; scale <= 6; scale++ {
		if _, err := r.Run(bg, memoGrid(t, float64(scale))); err != nil {
			t.Fatal(err)
		}
	}
	if memo.Bytes() > 4096 {
		t.Errorf("memo holds %d bytes, bound 4096", memo.Bytes())
	}
	if memo.Len() == 0 {
		t.Error("memo evicted everything; bound too tight for even one outcome")
	}
	hits, misses := memo.Stats()
	if misses == 0 {
		t.Error("expected misses under eviction pressure")
	}
	t.Logf("memo after pressure: %d entries, %d bytes, %d hits, %d misses",
		memo.Len(), memo.Bytes(), hits, misses)
}

// TestMemoCustomBindingUnaffected: grids with a custom Cell binding must
// execute every cell even with a memo installed.
func TestMemoCustomBindingUnaffected(t *testing.T) {
	ran := 0
	g := funcGrid(2)
	inner := g.Cell
	g.Cell = func(si, pi, fi, ai int) CellFunc {
		fn := inner(si, pi, fi, ai)
		return func(ctx context.Context, seed uint64) (*Outcome, error) {
			ran++
			return fn(ctx, seed)
		}
	}
	r := &Runner{Parallel: 1, Memo: NewResultMemo(0)}
	if err := r.RunStream(bg, g, &funcAggregator{}); err != nil {
		t.Fatal(err)
	}
	if err := r.RunStream(bg, g, &funcAggregator{}); err != nil {
		t.Fatal(err)
	}
	if ran != 2*g.Size() {
		t.Errorf("custom-binding cells ran %d times, want %d", ran, 2*g.Size())
	}
}
