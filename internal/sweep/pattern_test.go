package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	isim "repro/internal/sim"
)

// patternGoldenGrid is goldenGrid with an access-pattern axis: the explicit
// uniform baseline column plus a zipf column, exactly as AccessAxis builds
// for the CLIs. The cells are the same synthetic functions, so the goldens
// pin the pattern column's place in every report format and nothing else.
func patternGoldenGrid() *Grid {
	g := goldenGrid()
	g.Name = "golden-pattern"
	g.Patterns = []AccessSpec{
		{Name: "uniform"},
		{Name: "zipf", Spec: "zipf:s=1.1"},
	}
	return g
}

// TestGoldenPatternEncoders pins the pattern column byte-for-byte across
// JSON, CSV, and text, against checked-in goldens. Regenerate with -update.
func TestGoldenPatternEncoders(t *testing.T) {
	rep, err := (&Runner{Parallel: 3}).Run(context.Background(), patternGoldenGrid())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		file   string
		encode func(*bytes.Buffer) error
	}{
		{"golden_pattern.json", func(b *bytes.Buffer) error { return WriteJSON(b, rep) }},
		{"golden_pattern.csv", func(b *bytes.Buffer) error { return WriteCSV(b, rep) }},
		{"golden_pattern.txt", func(b *bytes.Buffer) error { return WriteText(b, rep) }},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.encode(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.file)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from golden.\n-- got --\n%s\n-- want --\n%s",
					tc.file, buf.Bytes(), want)
			}
		})
	}
}

// TestPatternStreamingByteIdentity: on grids carrying a pattern axis — the
// synthetic golden grid and a real simulator grid — the streaming JSON, CSV
// and text aggregators must stay byte-identical to the buffered writers.
func TestPatternStreamingByteIdentity(t *testing.T) {
	axis, err := AccessAxis("zipf:s=1.1,drift=0.05")
	if err != nil {
		t.Fatal(err)
	}
	simGrid := testGrid(t)
	simGrid.Patterns = axis
	grids := []*Grid{patternGoldenGrid(), simGrid}
	for _, g := range grids {
		r := &Runner{Parallel: 4}
		wantJ, wantC, wantX := encodeInMemory(t, r, g)
		gotJ, gotC, gotX := encodeStreaming(t, r, g)
		if !bytes.Equal(wantJ, gotJ) {
			t.Errorf("grid %s: streaming JSON differs from WriteJSON", g.Name)
		}
		if !bytes.Equal(wantC, gotC) {
			t.Errorf("grid %s: streaming CSV differs from WriteCSV", g.Name)
		}
		if !bytes.Equal(wantX, gotX) {
			t.Errorf("grid %s: streaming text differs from WriteText", g.Name)
		}
	}
}

// TestAccessAxis pins the axis helper's contract: empty and uniform specs
// mean no axis at all (legacy output stays byte-identical), anything else
// pairs the pattern with the uniform baseline, and parse errors surface.
func TestAccessAxis(t *testing.T) {
	for _, spec := range []string{"", "uniform"} {
		axis, err := AccessAxis(spec)
		if err != nil {
			t.Fatalf("AccessAxis(%q): %v", spec, err)
		}
		if axis != nil {
			t.Errorf("AccessAxis(%q) = %v, want no axis", spec, axis)
		}
	}
	axis, err := AccessAxis("zipf:s=1.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(axis) != 2 {
		t.Fatalf("AccessAxis(zipf) = %d columns, want 2 (uniform baseline + pattern)", len(axis))
	}
	if axis[0].Name != "uniform" || axis[0].Spec != "" {
		t.Errorf("baseline column = %+v, want named uniform with empty spec", axis[0])
	}
	if axis[1].Spec == "" {
		t.Errorf("pattern column %+v lost its spec", axis[1])
	}
	if _, err := AccessAxis("zipf:s=banana"); err == nil {
		t.Error("AccessAxis accepted an unparseable spec")
	}
}

// TestGridValidatePatterns: the grid validator rejects unnamed pattern
// columns, unparseable specs, and elastic × structural-chaos crossings
// before any cell runs.
func TestGridValidatePatterns(t *testing.T) {
	base := func() *Grid {
		g := funcGrid(1)
		g.Patterns = []AccessSpec{{Name: "uniform"}, {Name: "zipf", Spec: "zipf:s=1.1"}}
		return g
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid patterned grid rejected: %v", err)
	}

	g := base()
	g.Patterns[1].Name = ""
	if err := g.Validate(); err == nil {
		t.Error("unnamed pattern column accepted")
	}

	g = base()
	g.Patterns[1].Spec = "zipf:s=oops"
	if err := g.Validate(); err == nil {
		t.Error("unparseable pattern spec accepted")
	}

	g = base()
	g.Patterns[1] = AccessSpec{Name: "elastic", Spec: "elastic:leave=1@2"}
	if err := g.Validate(); err != nil {
		t.Fatalf("elastic pattern without structural chaos rejected: %v", err)
	}
	crash, err := ChaosAxis("crash:1@1")
	if err != nil {
		t.Fatal(err)
	}
	g.Profiles = crash
	if err := g.Validate(); err == nil {
		t.Error("elastic pattern × crash profile accepted")
	}
}

// patternMemoGrid is memoGrid plus a pattern axis whose non-uniform column
// is the given spec — the access knob the digest-soundness tests turn.
func patternMemoGrid(t *testing.T, spec string) *Grid {
	t.Helper()
	g := memoGrid(t, 1)
	g.Patterns = []AccessSpec{{Name: "uniform"}, {Name: "pattern", Spec: spec}}
	return g
}

// TestMemoAccessKnob is the digest-soundness probe for the pattern axis:
// identical access specs hit the memo, differing specs miss, and the
// uniform column of a patterned grid reuses results cached by a grid with
// no pattern axis at all (the empty spec stays out of the digest).
func TestMemoAccessKnob(t *testing.T) {
	memo := NewResultMemo(0)
	r := &Runner{Parallel: 4, Memo: memo}

	// Seed the memo with the pattern-less grid.
	plain := memoGrid(t, 1)
	before := isim.SimulateCount()
	if _, err := r.Run(bg, plain); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(plain.Size()) {
		t.Fatalf("cold pattern-less run simulated %d cells, want %d", n, plain.Size())
	}

	// The patterned grid's uniform column must hit those entries; only the
	// zipf column simulates.
	perColumn := plain.Size() // policies × replicas, one scenario
	before = isim.SimulateCount()
	if _, err := r.Run(bg, patternMemoGrid(t, "zipf:s=1.1")); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(perColumn) {
		t.Fatalf("patterned run simulated %d cells, want %d (the zipf column only)", n, perColumn)
	}

	// Identical spec: fully memoised, and the report reproduces byte for byte.
	before = isim.SimulateCount()
	warmA, err := r.Run(bg, patternMemoGrid(t, "zipf:s=1.1"))
	if err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != 0 {
		t.Fatalf("identical-spec re-run simulated %d cells, want 0", n)
	}
	warmB, err := r.Run(bg, patternMemoGrid(t, "zipf:s=1.1"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteJSON(&a, warmA); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&b, warmB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("memoised patterned reports differ")
	}

	// Turning only the access knob must miss: the changed pattern column
	// re-simulates, the uniform column stays cached.
	before = isim.SimulateCount()
	if _, err := r.Run(bg, patternMemoGrid(t, "zipf:s=1.3")); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(perColumn) {
		t.Fatalf("access-knob re-run simulated %d cells, want %d (the changed column only)", n, perColumn)
	}

	// A different pattern kind is a different digest too.
	before = isim.SimulateCount()
	if _, err := r.Run(bg, patternMemoGrid(t, "boost:frac=0.1,factor=8")); err != nil {
		t.Fatal(err)
	}
	if n := isim.SimulateCount() - before; n != int64(perColumn) {
		t.Fatalf("pattern-kind switch simulated %d cells, want %d", n, perColumn)
	}
}

// TestPatternCellsDeterministic: a patterned simulator grid reproduces its
// report byte for byte across runs and pool widths, with no memo involved.
func TestPatternCellsDeterministic(t *testing.T) {
	build := func() *Grid {
		g := memoGrid(t, 1)
		axis, err := AccessAxis("curriculum:buckets=4")
		if err != nil {
			t.Fatal(err)
		}
		g.Patterns = axis
		return g
	}
	var reports [][]byte
	for _, par := range []int{1, 4} {
		rep, err := (&Runner{Parallel: par}).Run(bg, build())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, rep); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, buf.Bytes())
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("patterned grid report differs across pool widths")
	}
}

// TestUniformPatternAxisMatchesNoAxis: an explicit single uniform column
// must not change cell outcomes relative to the axis-free grid — the empty
// spec is the same simulation. (Headers differ: the axis is present.)
func TestUniformPatternAxisMatchesNoAxis(t *testing.T) {
	plain, err := (&Runner{Parallel: 2}).Run(bg, memoGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	g := memoGrid(t, 1)
	g.Patterns = []AccessSpec{{Name: "uniform"}}
	axised, err := (&Runner{Parallel: 2}).Run(bg, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Cells) != len(axised.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(plain.Cells), len(axised.Cells))
	}
	for i := range plain.Cells {
		p, q := plain.Cells[i], axised.Cells[i]
		if p.Seed != q.Seed {
			t.Fatalf("cell %d seed differs: %d vs %d", i, p.Seed, q.Seed)
		}
		for k, v := range p.Outcome.Values {
			if q.Outcome.Values[k] != v {
				t.Errorf("cell %d metric %s differs: %v vs %v", i, k, v, q.Outcome.Values[k])
			}
		}
	}
}
