package sweep

import (
	"fmt"
	"runtime"
	"sync"

	isim "repro/internal/sim"
)

// Runner executes a Grid's cells on a bounded goroutine pool. The zero value
// runs with GOMAXPROCS workers; Parallel=1 is fully serial.
type Runner struct {
	// Parallel is the worker count; values below 1 mean GOMAXPROCS.
	Parallel int
}

// workers returns the effective pool width for a grid of n cells.
func (r *Runner) workers(n int) int {
	w := r.Parallel
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellResult pairs a cell with its simulated outcome. Result.Failed marks
// policies that cannot run the scenario (a legitimate paper outcome, e.g.
// LBANN when the dataset exceeds aggregate RAM); Err marks configuration or
// engine errors that abort the whole run.
type CellResult struct {
	Cell
	Result *isim.Result `json:"result"`
}

// Report is the raw outcome of one grid execution, cells in enumeration
// order regardless of scheduling.
type Report struct {
	Grid string `json:"grid"`
	// Parallel records the pool width that produced the report. It is
	// excluded from encodings: serialised reports are a pure function of
	// the grid, bit-identical at any parallelism.
	Parallel int    `json:"-"`
	Replicas int    `json:"replicas"`
	BaseSeed uint64 `json:"baseSeed"`
	// Labels maps scenario IDs to their human captions for text reports.
	Labels map[string]string `json:"labels,omitempty"`
	Cells  []CellResult      `json:"cells"`
}

// Run executes every cell of the grid and returns the Report. The report is
// a pure function of the grid: identical at any Parallel setting.
func (r *Runner) Run(g *Grid) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(len(cells)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := runCell(g, cells[i])
				results[i] = CellResult{Cell: cells[i], Result: res}
				errs[i] = err
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Surface the lowest-index error so the failure reported is itself
	// deterministic.
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("sweep: grid %q cell %s/%s replica %d: %w",
				g.Name, c.Scenario, c.Policy, c.Replica, err)
		}
	}
	labels := map[string]string{}
	for _, s := range g.Scenarios {
		if s.Label != "" {
			labels[s.ID] = s.Label
		}
	}
	return &Report{
		Grid: g.Name, Parallel: r.Parallel, Replicas: g.replicas(),
		BaseSeed: g.BaseSeed, Labels: labels, Cells: results,
	}, nil
}

// runCell materialises and simulates one cell.
func runCell(g *Grid, c Cell) (*isim.Result, error) {
	cfg, err := g.Scenarios[c.ScenarioIdx].Config(c.Seed)
	if err != nil {
		return nil, err
	}
	pol := g.Policies[c.PolicyIdx].New()
	if pol == nil {
		return nil, fmt.Errorf("policy %q constructor returned nil", c.Policy)
	}
	return isim.Run(cfg, pol)
}

// Results returns the report's per-cell simulator results in cell order —
// the shape the legacy serial paths produced for 1-replica grids.
func (rep *Report) Results() []*isim.Result {
	out := make([]*isim.Result, len(rep.Cells))
	for i, c := range rep.Cells {
		out[i] = c.Result
	}
	return out
}
