package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	isim "repro/internal/sim"
)

// Runner executes a Grid's cells on a bounded goroutine pool. The zero value
// runs with GOMAXPROCS workers; Parallel=1 is fully serial.
type Runner struct {
	// Parallel is the worker count; values below 1 mean GOMAXPROCS.
	Parallel int
}

// workers returns the effective pool width for a grid of n cells.
func (r *Runner) workers(n int) int {
	w := r.Parallel
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellResult pairs a cell with its outcome. Outcome.Failed marks
// configurations that cannot run (a legitimate experimental result); an
// error from the cell func marks configuration or engine errors that abort
// the whole run.
type CellResult struct {
	Cell
	Outcome *Outcome `json:"outcome"`
}

// Report is the raw outcome of one grid execution, cells in enumeration
// order regardless of scheduling.
type Report struct {
	Grid string `json:"grid"`
	// Parallel records the pool width that produced the report. It is
	// excluded from encodings: serialised reports are a pure function of
	// the grid, bit-identical at any parallelism.
	Parallel int    `json:"-"`
	Replicas int    `json:"replicas"`
	BaseSeed uint64 `json:"baseSeed"`
	// Profiles names the grid's fault-profile axis, in column order; empty
	// (and omitted from encodings) for grids without one.
	Profiles []string `json:"profiles,omitempty"`
	// Metrics is the grid's result schema, in column order.
	Metrics []Metric `json:"metrics"`
	// Labels maps scenario IDs to their human captions for text reports.
	Labels map[string]string `json:"labels,omitempty"`
	Cells  []CellResult      `json:"cells"`
}

// Run executes every cell of the grid and returns the Report. The report is
// a pure function of the grid (for deterministic cells): identical at any
// Parallel setting. Canceling ctx stops dispatching cells, propagates into
// running cells, and returns ctx's error.
func (r *Runner) Run(ctx context.Context, g *Grid) (*Report, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	cells := g.Cells()
	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < r.workers(len(cells)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out, err := runCell(ctx, g, cells[i])
				results[i] = CellResult{Cell: cells[i], Outcome: out}
				errs[i] = err
			}
		}()
	}
dispatch:
	for i := range cells {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	// Cancellation trumps per-cell failures: a torn-down grid reports the
	// context error, not whichever cell the teardown interrupted.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Surface the lowest-index error so the failure reported is itself
	// deterministic.
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			label := c.Scenario + "/" + c.Policy
			if c.Profile != "" {
				label += "/" + c.Profile
			}
			return nil, fmt.Errorf("sweep: grid %q cell %s replica %d: %w",
				g.Name, label, c.Replica, err)
		}
	}
	labels := map[string]string{}
	for _, s := range g.Scenarios {
		if s.Label != "" {
			labels[s.ID] = s.Label
		}
	}
	var profiles []string
	for _, p := range g.Profiles {
		profiles = append(profiles, p.Name)
	}
	return &Report{
		Grid: g.Name, Parallel: r.Parallel, Replicas: g.replicas(),
		BaseSeed: g.BaseSeed, Profiles: profiles, Metrics: g.metrics(), Labels: labels,
		Cells: results,
	}, nil
}

// runCell resolves and executes one cell.
func runCell(ctx context.Context, g *Grid, c Cell) (*Outcome, error) {
	fn, err := g.cellFunc(c.ScenarioIdx, c.PolicyIdx, c.ProfileIdx)
	if err != nil {
		return nil, err
	}
	out, err := fn(ctx, c.Seed)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("cell returned neither outcome nor error")
	}
	return out, nil
}

// Results returns the report's per-cell simulator results in cell order —
// the shape the legacy serial paths produced for 1-replica simulator grids.
// Cells whose payload is not a simulator result yield nil entries.
func (rep *Report) Results() []*isim.Result {
	out := make([]*isim.Result, len(rep.Cells))
	for i, c := range rep.Cells {
		if r, ok := c.Outcome.Payload.(*isim.Result); ok {
			out[i] = r
		}
	}
	return out
}
