package sweep

import (
	"context"
	"fmt"
	"runtime"

	isim "repro/internal/sim"
)

// Runner executes a Grid's cells on a bounded goroutine pool. The zero value
// runs with GOMAXPROCS workers; Parallel=1 is fully serial.
type Runner struct {
	// Parallel is the worker count; values below 1 mean GOMAXPROCS.
	Parallel int
	// Memo, when non-nil, caches simulator cell outcomes across runs keyed
	// by the cell's full configuration digest (see ResultMemo). It applies
	// only to the default simulator binding; grids with a custom Cell
	// binding always execute. Nil (the default) disables memoisation.
	Memo *ResultMemo
}

// workers returns the effective pool width for a grid of n cells.
func (r *Runner) workers(n int) int {
	w := r.Parallel
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// CellResult pairs a cell with its outcome. Outcome.Failed marks
// configurations that cannot run (a legitimate experimental result); an
// error from the cell func marks configuration or engine errors that abort
// the whole run.
type CellResult struct {
	Cell
	Outcome *Outcome `json:"outcome"`
}

// Report is the raw outcome of one grid execution, cells in enumeration
// order regardless of scheduling.
type Report struct {
	Grid string `json:"grid"`
	// Parallel records the pool width that produced the report. It is
	// excluded from encodings: serialised reports are a pure function of
	// the grid, bit-identical at any parallelism.
	Parallel int    `json:"-"`
	Replicas int    `json:"replicas"`
	BaseSeed uint64 `json:"baseSeed"`
	// Profiles names the grid's fault-profile axis, in column order; empty
	// (and omitted from encodings) for grids without one.
	Profiles []string `json:"profiles,omitempty"`
	// Patterns names the grid's access-pattern axis, in column order; empty
	// (and omitted from encodings) for grids without one.
	Patterns []string `json:"patterns,omitempty"`
	// Metrics is the grid's result schema, in column order.
	Metrics []Metric `json:"metrics"`
	// Labels maps scenario IDs to their human captions for text reports.
	Labels map[string]string `json:"labels,omitempty"`
	Cells  []CellResult      `json:"cells"`
}

// Run executes every cell of the grid and returns the Report. The report is
// a pure function of the grid (for deterministic cells): identical at any
// Parallel setting. Canceling ctx stops dispatching cells, propagates into
// running cells, and returns ctx's error.
//
// Run is the in-memory special case of RunStream: a collecting aggregator
// retains every cell. Grids too large to hold their results should use
// RunStream with streaming encoders instead.
func (r *Runner) Run(ctx context.Context, g *Grid) (*Report, error) {
	col := &reportCollector{parallel: r.Parallel}
	if err := r.RunStream(ctx, g, col); err != nil {
		return nil, err
	}
	return col.rep, nil
}

// runCell resolves and executes one cell, consulting the runner's memo for
// simulator cells.
func runCell(ctx context.Context, r *Runner, g *Grid, c Cell) (*Outcome, error) {
	fn, err := g.cellFunc(c.ScenarioIdx, c.PolicyIdx, c.ProfileIdx, c.PatternIdx, r.Memo)
	if err != nil {
		return nil, err
	}
	out, err := fn(ctx, c.Seed)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, fmt.Errorf("cell returned neither outcome nor error")
	}
	return out, nil
}

// Results returns the report's per-cell simulator results in cell order —
// the shape the legacy serial paths produced for 1-replica simulator grids.
// Cells whose payload is not a simulator result yield nil entries.
func (rep *Report) Results() []*isim.Result {
	out := make([]*isim.Result, len(rep.Cells))
	for i, c := range rep.Cells {
		if r, ok := c.Outcome.Payload.(*isim.Result); ok {
			out[i] = r
		}
	}
	return out
}
