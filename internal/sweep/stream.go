package sweep

import (
	"context"
	"fmt"
	"sync"
)

// Meta describes a grid execution to aggregators before any cell arrives:
// the report header fields plus the total cell count, so encoders can emit
// prologues and size progress without seeing the whole result set.
type Meta struct {
	Grid     string
	Replicas int
	BaseSeed uint64
	// Profiles names the fault-profile axis in column order; empty for
	// grids without one.
	Profiles []string
	// Patterns names the access-pattern axis in column order; empty for
	// grids without one.
	Patterns []string
	// Metrics is the grid's result schema, in column order.
	Metrics []Metric
	// Labels maps scenario IDs to their human captions.
	Labels map[string]string
	// Size is the total number of cells the run will deliver.
	Size int
}

// Aggregator consumes a grid execution incrementally. Begin is called once
// before any cell; Cell is called exactly once per grid cell, in the grid's
// deterministic enumeration order regardless of execution parallelism; End
// is called once after the last cell. None of the methods are called
// concurrently. When the run aborts (context cancellation or a cell error),
// End is not called and partial output should be discarded.
//
// Aggregators exist so giant grids never need every Result in memory at
// once: the engine retains only the bounded in-flight window, and each
// aggregator decides what to keep (the streaming encoders keep O(replicas)
// for the open summary group; the in-memory Report keeps everything).
type Aggregator interface {
	Begin(meta Meta) error
	Cell(c CellResult) error
	End() error
}

// meta builds the stream metadata for the grid.
func (g *Grid) meta() Meta {
	labels := map[string]string{}
	for _, s := range g.Scenarios {
		if s.Label != "" {
			labels[s.ID] = s.Label
		}
	}
	var profiles []string
	for _, p := range g.Profiles {
		profiles = append(profiles, p.Name)
	}
	var patterns []string
	for _, p := range g.Patterns {
		patterns = append(patterns, p.Name)
	}
	return Meta{
		Grid: g.Name, Replicas: g.replicas(), BaseSeed: g.BaseSeed,
		Profiles: profiles, Patterns: patterns, Metrics: g.metrics(),
		Labels: labels,
		Size:   g.Size(),
	}
}

// streamWindow bounds the number of undelivered cells the engine may hold:
// in-order delivery means a slow early cell makes later finished cells wait,
// and the window caps that buffering (and therefore resident Result memory)
// at a small multiple of the pool width, independent of grid size.
func streamWindow(workers int) int { return 4 * workers }

// RunStream executes every cell of the grid and feeds each aggregator the
// results in deterministic enumeration order. Cells run on the bounded
// worker pool exactly as Run; completed cells are re-sequenced through a
// bounded window before delivery, so aggregators observe the same order at
// any parallelism while the engine holds at most O(window) outcomes.
//
// The first error — a canceled context, a failing cell (lowest index wins,
// since delivery is ordered), or an aggregator error — stops the run.
// Aggregators' End is invoked only on full success.
func (r *Runner) RunStream(ctx context.Context, g *Grid, aggs ...Aggregator) error {
	if err := g.Validate(); err != nil {
		return err
	}
	cells := g.Cells()
	meta := g.meta()
	for _, a := range aggs {
		if err := a.Begin(meta); err != nil {
			return err
		}
	}

	// Derived context: the delivery loop cancels it on the first delivered
	// error so workers stop chewing through doomed cells.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	w := r.workers(len(cells))
	window := streamWindow(w)
	if window > len(cells) {
		window = len(cells)
	}

	type done struct {
		i   int
		out *Outcome
		err error
	}
	sem := make(chan struct{}, window)
	results := make(chan done, window)
	jobs := make(chan int)

	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := cctx.Err(); err != nil {
					results <- done{i: i, err: err}
					continue
				}
				out, err := runCell(cctx, r, g, cells[i])
				results <- done{i: i, out: out, err: err}
			}
		}()
	}
	go func() {
	dispatch:
		for i := range cells {
			// Admission into the window precedes dispatch, so in-flight
			// plus undelivered cells never exceed the window.
			select {
			case sem <- struct{}{}:
			case <-cctx.Done():
				break dispatch
			}
			select {
			case jobs <- i:
			case <-cctx.Done():
				<-sem
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// In-order delivery: buffer out-of-order completions, release the
	// window slot only when the cell is handed to the aggregators.
	pending := make(map[int]done, window)
	next := 0
	var firstErr error
	for d := range results {
		pending[d.i] = d
		for {
			d, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			<-sem
			next++
			if firstErr != nil {
				continue // draining after failure
			}
			if d.err != nil {
				firstErr = cellError(g, cells[d.i], d.err)
				cancel()
				continue
			}
			for _, a := range aggs {
				if err := a.Cell(CellResult{Cell: cells[d.i], Outcome: d.out}); err != nil {
					firstErr = err
					cancel()
					break
				}
			}
		}
	}

	// Cancellation trumps per-cell failures: a torn-down grid reports the
	// context error, not whichever cell the teardown interrupted.
	if err := ctx.Err(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}
	for _, a := range aggs {
		if err := a.End(); err != nil {
			return err
		}
	}
	return nil
}

// cellError decorates a cell failure with its grid coordinates.
func cellError(g *Grid, c Cell, err error) error {
	label := c.Scenario + "/" + c.Policy
	if c.Profile != "" {
		label += "/" + c.Profile
	}
	if c.Pattern != "" {
		label += "/" + c.Pattern
	}
	return fmt.Errorf("sweep: grid %q cell %s replica %d: %w", g.Name, label, c.Replica, err)
}

// reportCollector is the in-memory Aggregator: it retains every cell and
// reassembles the legacy Report. Run is built on it, which keeps the two
// paths behaviourally identical by construction.
type reportCollector struct {
	parallel int
	rep      *Report
}

func (c *reportCollector) Begin(m Meta) error {
	c.rep = &Report{
		Grid: m.Grid, Parallel: c.parallel, Replicas: m.Replicas,
		BaseSeed: m.BaseSeed, Profiles: m.Profiles, Patterns: m.Patterns,
		Metrics: m.Metrics,
		Labels:  m.Labels, Cells: make([]CellResult, 0, m.Size),
	}
	return nil
}

func (c *reportCollector) Cell(cr CellResult) error {
	c.rep.Cells = append(c.rep.Cells, cr)
	return nil
}

func (c *reportCollector) End() error { return nil }

// summaryStream folds an ordered cell stream into per-group summaries. The
// grid enumerates replicas innermost, so each (scenario, policy, profile,
// pattern) group is contiguous: the streamer buffers only the open group —
// O(replicas) cells — and emits its Summary the moment the group closes.
type summaryStream struct {
	metrics                            []Metric
	scenario, policy, profile, pattern string
	open                               bool
	cells                              []CellResult
	emit                               func(Summary) error
}

func newSummaryStream(metrics []Metric, emit func(Summary) error) *summaryStream {
	return &summaryStream{metrics: metrics, emit: emit}
}

// add feeds the next cell, flushing the previous group if the key changed.
func (s *summaryStream) add(c CellResult) error {
	if s.open && (c.Scenario != s.scenario || c.Policy != s.policy ||
		c.Profile != s.profile || c.Pattern != s.pattern) {
		if err := s.flush(); err != nil {
			return err
		}
	}
	if !s.open {
		s.open = true
		s.scenario, s.policy, s.profile, s.pattern = c.Scenario, c.Policy, c.Profile, c.Pattern
	}
	s.cells = append(s.cells, c)
	return nil
}

// flush closes the open group, if any.
func (s *summaryStream) flush() error {
	if !s.open {
		return nil
	}
	sum := summarizeGroup(s.metrics, s.scenario, s.policy, s.profile, s.pattern, s.cells)
	s.open = false
	s.cells = s.cells[:0]
	return s.emit(sum)
}
