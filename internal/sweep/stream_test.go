package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/prng"
	isim "repro/internal/sim"
)

// encodeInMemory runs the grid through Run and the whole-report writers.
func encodeInMemory(t *testing.T, r *Runner, g *Grid) (jsonB, csvB, textB []byte) {
	t.Helper()
	rep, err := r.Run(bg, g)
	if err != nil {
		t.Fatal(err)
	}
	var j, c, x bytes.Buffer
	if err := WriteJSON(&j, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&c, rep); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&x, rep); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes(), x.Bytes()
}

// encodeStreaming runs the grid through RunStream and the streaming
// aggregators, all three at once.
func encodeStreaming(t *testing.T, r *Runner, g *Grid) (jsonB, csvB, textB []byte) {
	t.Helper()
	var j, c, x bytes.Buffer
	err := r.RunStream(bg, g,
		NewJSONAggregator(&j), NewCSVAggregator(&c), NewTextAggregator(&x))
	if err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), c.Bytes(), x.Bytes()
}

// randomFuncGrid builds a randomized pure-function grid: random axis sizes,
// optionally a fault-profile axis, random metric schema with a hidden
// column, and cells that are deterministic hashes of their coordinates with
// occasional failures and notes sprinkled in.
func randomFuncGrid(rng *rand.Rand) *Grid {
	nScen := 1 + rng.Intn(3)
	nPol := 1 + rng.Intn(3)
	replicas := 1 + rng.Intn(3)

	var scens []ScenarioSpec
	for i := 0; i < nScen; i++ {
		s := ScenarioSpec{ID: fmt.Sprintf("row%c", 'A'+i)}
		if rng.Intn(2) == 0 {
			s.Label = fmt.Sprintf("row %d label", i)
		}
		scens = append(scens, s)
	}
	var pols []PolicySpec
	for i := 0; i < nPol; i++ {
		pols = append(pols, PolicySpec{Name: fmt.Sprintf("col%c", 'X'+i)})
	}
	var profs []ProfileSpec
	if rng.Intn(2) == 0 {
		// Chaos axis: a clean baseline column plus a parsed fault profile,
		// exactly as ChaosAxis builds for the CLIs.
		p, err := chaos.ParseProfile("straggler:0x2@1,tier:pfsx3")
		if err != nil {
			panic(err)
		}
		profs = ChaosProfiles(chaos.Profile{Name: "clean"}, p)
	}
	failScen := rng.Intn(nScen + 2) // may select no scenario at all
	failPol := rng.Intn(nPol + 2)

	return &Grid{
		Name:      fmt.Sprintf("rand-%d", rng.Intn(1000)),
		Scenarios: scens, Policies: pols, Profiles: profs,
		Replicas: replicas, BaseSeed: rng.Uint64(),
		Metrics: []Metric{
			{Name: "score", Label: "score", Unit: "s"},
			{Name: "aux", Hide: true},
		},
		Cell: func(si, pi, fi, ai int) CellFunc {
			return func(_ context.Context, seed uint64) (*Outcome, error) {
				if si == failScen && pi == failPol {
					return &Outcome{Failed: true, FailReason: "cannot run"}, nil
				}
				h := prng.NewSplitMix64(seed ^ uint64(si*1009+pi*31+fi)).Next()
				o := &Outcome{Values: map[string]float64{
					"score": float64(h%100000) / 1000,
					"aux":   float64(h % 17),
				}}
				if h%5 == 0 {
					o.Note = fmt.Sprintf("note %d", h%7)
				}
				return o, nil
			}
		},
	}
}

// TestStreamEncodersMatchWritersRandomized is the streaming property test:
// on randomized grids — axis sizes, chaos profile axis, replicas, failures,
// notes, and pool widths all drawn per trial — the streaming JSON, CSV and
// text aggregators must produce byte-identical output to the in-memory
// Report writers.
func TestStreamEncodersMatchWritersRandomized(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		g := randomFuncGrid(rng)
		r := &Runner{Parallel: []int{1, 4, 8}[rng.Intn(3)]}
		wantJ, wantC, wantX := encodeInMemory(t, r, g)
		gotJ, gotC, gotX := encodeStreaming(t, r, g)
		if !bytes.Equal(wantJ, gotJ) {
			t.Fatalf("trial %d (grid %s, parallel %d): streaming JSON differs\nwant:\n%s\ngot:\n%s",
				trial, g.Name, r.Parallel, wantJ, gotJ)
		}
		if !bytes.Equal(wantC, gotC) {
			t.Fatalf("trial %d: streaming CSV differs\nwant:\n%s\ngot:\n%s", trial, wantC, gotC)
		}
		if !bytes.Equal(wantX, gotX) {
			t.Fatalf("trial %d: streaming text differs\nwant:\n%s\ngot:\n%s", trial, wantX, gotX)
		}
	}
}

// TestStreamEncodersMatchWritersSimulator repeats the byte-identity check on
// a real simulator grid with a chaos axis: the default cell binding, failed
// cells (LBANN on fig8d), and fault profiles all flow through the streaming
// path.
func TestStreamEncodersMatchWritersSimulator(t *testing.T) {
	axis, err := ChaosAxis("straggler:0x2@1")
	if err != nil {
		t.Fatal(err)
	}
	g := testGrid(t)
	g.Profiles = axis
	r := &Runner{Parallel: 4}
	wantJ, wantC, wantX := encodeInMemory(t, r, g)
	gotJ, gotC, gotX := encodeStreaming(t, r, g)
	if !bytes.Equal(wantJ, gotJ) {
		t.Error("streaming JSON differs from WriteJSON on simulator grid")
	}
	if !bytes.Equal(wantC, gotC) {
		t.Error("streaming CSV differs from WriteCSV on simulator grid")
	}
	if !bytes.Equal(wantX, gotX) {
		t.Error("streaming text differs from WriteText on simulator grid")
	}
}

// TestRunStreamDeliversInOrder pins the ordering contract directly: cells
// arrive at the aggregator in enumeration order at any pool width, exactly
// once each.
func TestRunStreamDeliversInOrder(t *testing.T) {
	g := funcGrid(8)
	for _, parallel := range []int{1, 3, 16} {
		var got []int
		agg := &funcAggregator{
			cell: func(c CellResult) error {
				got = append(got, c.Index)
				return nil
			},
		}
		if err := (&Runner{Parallel: parallel}).RunStream(bg, g, agg); err != nil {
			t.Fatal(err)
		}
		if len(got) != g.Size() {
			t.Fatalf("parallel %d: delivered %d cells, want %d", parallel, len(got), g.Size())
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("parallel %d: delivery %d carried index %d", parallel, i, idx)
			}
		}
		if !agg.began || !agg.ended {
			t.Fatalf("parallel %d: began=%v ended=%v", parallel, agg.began, agg.ended)
		}
	}
}

// funcAggregator adapts closures to the Aggregator interface for tests.
type funcAggregator struct {
	began, ended bool
	cell         func(CellResult) error
	end          func() error
}

func (a *funcAggregator) Begin(Meta) error { a.began = true; return nil }
func (a *funcAggregator) Cell(c CellResult) error {
	if a.cell != nil {
		return a.cell(c)
	}
	return nil
}
func (a *funcAggregator) End() error {
	a.ended = true
	if a.end != nil {
		return a.end()
	}
	return nil
}

// TestRunStreamLowestIndexError: with several failing cells racing on a wide
// pool, the error surfaced must be the lowest-index one (ordered delivery
// makes the failure deterministic), and End must not run.
func TestRunStreamLowestIndexError(t *testing.T) {
	g := funcGrid(8)
	inner := g.Cell
	g.Cell = func(si, pi, fi, ai int) CellFunc {
		fn := inner(si, pi, fi, ai)
		return func(ctx context.Context, seed uint64) (*Outcome, error) {
			// Fail every cell of rowB; the lowest enumerated rowB cell
			// must win regardless of completion order.
			if si == 1 {
				return nil, fmt.Errorf("boom si=%d pi=%d", si, pi)
			}
			return fn(ctx, seed)
		}
	}
	agg := &funcAggregator{}
	err := (&Runner{Parallel: 8}).RunStream(bg, g, agg)
	if err == nil {
		t.Fatal("failing grid returned nil error")
	}
	if !strings.Contains(err.Error(), "rowB/colX") || !strings.Contains(err.Error(), "replica 0") {
		t.Errorf("error is not the lowest-index failure: %v", err)
	}
	if agg.ended {
		t.Error("End ran despite a failed grid")
	}
}

// TestRunStreamCancelNoGoroutineLeak cancels a streaming run mid-flight and
// verifies every engine goroutine (workers, dispatcher) exits: the goroutine
// count must settle back to its baseline.
func TestRunStreamCancelNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	g := funcGrid(64)
	inner := g.Cell
	started := make(chan struct{}, 1)
	g.Cell = func(si, pi, fi, ai int) CellFunc {
		fn := inner(si, pi, fi, ai)
		return func(ctx context.Context, seed uint64) (*Outcome, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(30 * time.Second):
				return fn(ctx, seed)
			}
		}
	}
	errc := make(chan error, 1)
	go func() {
		errc <- (&Runner{Parallel: 4}).RunStream(ctx, g, &funcAggregator{})
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled stream returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunStream did not return after cancel")
	}

	// Goroutines unwind asynchronously after RunStream returns; poll.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestRunStreamAggregatorErrorStops: an aggregator error aborts the run with
// that error and cancels outstanding work.
func TestRunStreamAggregatorErrorStops(t *testing.T) {
	g := funcGrid(16)
	wantErr := errors.New("sink full")
	n := 0
	agg := &funcAggregator{cell: func(CellResult) error {
		n++
		if n == 3 {
			return wantErr
		}
		return nil
	}}
	err := (&Runner{Parallel: 4}).RunStream(bg, g, agg)
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want the aggregator error", err)
	}
	if agg.ended {
		t.Error("End ran despite aggregator failure")
	}
}

// TestRunMatchesLegacySemantics pins Run's regression surface now that it is
// built on RunStream: identical report to a direct serial execution and the
// same validation errors.
func TestRunMatchesLegacySemantics(t *testing.T) {
	s, err := isim.ScenarioByID("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	g := &Grid{
		Name:      "legacy",
		Scenarios: []ScenarioSpec{scenarioSpec(s, testScale)},
		Policies:  AllPolicySpecs()[:3],
		Replicas:  2, BaseSeed: 17,
	}
	rep, err := (&Runner{Parallel: 4}).Run(bg, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid != "legacy" || rep.Replicas != 2 || rep.BaseSeed != 17 {
		t.Errorf("report header %+v", rep)
	}
	if len(rep.Cells) != g.Size() {
		t.Fatalf("%d cells, want %d", len(rep.Cells), g.Size())
	}
	for i, c := range rep.Cells {
		if c.Index != i || c.Outcome == nil {
			t.Fatalf("cell %d malformed: %+v", i, c)
		}
	}
}
