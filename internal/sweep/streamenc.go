package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Streaming encoders: Aggregator implementations that emit the exact bytes
// of WriteJSON / WriteCSV / WriteText while holding only the open summary
// group (O(replicas) cells) — never the whole result set. The property tests
// assert byte identity against the in-memory writers on randomized grids.

// jsonHeader mirrors Report's encoded prefix — every field that precedes
// "cells" in declaration order — so the streaming encoder can emit it with
// the standard library and splice the cell array in behind it.
type jsonHeader struct {
	Grid     string            `json:"grid"`
	Replicas int               `json:"replicas"`
	BaseSeed uint64            `json:"baseSeed"`
	Profiles []string          `json:"profiles,omitempty"`
	Patterns []string          `json:"patterns,omitempty"`
	Metrics  []Metric          `json:"metrics"`
	Labels   map[string]string `json:"labels,omitempty"`
}

// jsonAggregator streams the WriteJSON document: header fields, then cells
// one by one as they are delivered, then the aggregated summaries. Only the
// summaries — O(groups), no payloads — are buffered to the end, because the
// document places them after the cell array.
type jsonAggregator struct {
	w         io.Writer
	sum       *summaryStream
	summaries []Summary
	cells     int
}

// NewJSONAggregator returns an Aggregator that streams the report as the
// same indented JSON document WriteJSON produces, byte for byte.
func NewJSONAggregator(w io.Writer) Aggregator {
	return &jsonAggregator{w: w}
}

func (a *jsonAggregator) Begin(m Meta) error {
	a.summaries = make([]Summary, 0)
	a.sum = newSummaryStream(m.Metrics, func(s Summary) error {
		a.summaries = append(a.summaries, s)
		return nil
	})
	h, err := json.MarshalIndent(jsonHeader{
		Grid: m.Grid, Replicas: m.Replicas, BaseSeed: m.BaseSeed,
		Profiles: m.Profiles, Patterns: m.Patterns, Metrics: m.Metrics,
		Labels: m.Labels,
	}, "", "  ")
	if err != nil {
		return err
	}
	// Drop the closing "\n}" and splice the cells array behind the header
	// fields, exactly where Report declares it.
	if _, err := a.w.Write(h[:len(h)-2]); err != nil {
		return err
	}
	_, err = io.WriteString(a.w, ",\n  \"cells\": [")
	return err
}

func (a *jsonAggregator) Cell(c CellResult) error {
	b, err := json.MarshalIndent(c, "    ", "  ")
	if err != nil {
		return err
	}
	sep := "\n    "
	if a.cells > 0 {
		sep = ",\n    "
	}
	a.cells++
	if _, err := io.WriteString(a.w, sep); err != nil {
		return err
	}
	if _, err := a.w.Write(b); err != nil {
		return err
	}
	return a.sum.add(c)
}

func (a *jsonAggregator) End() error {
	if err := a.sum.flush(); err != nil {
		return err
	}
	closeCells := "\n  ]"
	if a.cells == 0 {
		closeCells = "]" // empty arrays encode inline
	}
	if _, err := io.WriteString(a.w, closeCells+",\n  \"summaries\": "); err != nil {
		return err
	}
	s, err := json.MarshalIndent(a.summaries, "  ", "  ")
	if err != nil {
		return err
	}
	if _, err := a.w.Write(s); err != nil {
		return err
	}
	_, err = io.WriteString(a.w, "\n}\n")
	return err
}

// csvAggregator streams the WriteCSV table: the header row up front, one
// summary row the moment each (scenario, policy, profile, pattern) group
// closes.
type csvAggregator struct {
	cw   *csv.Writer
	grid string
	prof bool
	pat  bool
	sum  *summaryStream
}

// NewCSVAggregator returns an Aggregator that streams the same summary CSV
// WriteCSV produces, byte for byte.
func NewCSVAggregator(w io.Writer) Aggregator {
	return &csvAggregator{cw: csv.NewWriter(w)}
}

func (a *csvAggregator) Begin(m Meta) error {
	a.grid = m.Grid
	a.prof = len(m.Profiles) > 0
	a.pat = len(m.Patterns) > 0
	a.sum = newSummaryStream(m.Metrics, func(s Summary) error {
		return a.cw.Write(csvRow(a.grid, a.prof, a.pat, m.Metrics, s))
	})
	return a.cw.Write(csvHeader(a.prof, a.pat, m.Metrics))
}

func (a *csvAggregator) Cell(c CellResult) error { return a.sum.add(c) }

func (a *csvAggregator) End() error {
	if err := a.sum.flush(); err != nil {
		return err
	}
	a.cw.Flush()
	return a.cw.Error()
}

// textAggregator streams the WriteText bar-chart report: a scenario block
// header whenever the stream enters a new scenario, one row per closed
// summary group.
type textAggregator struct {
	w        io.Writer
	labels   map[string]string
	visible  []Metric
	multi    bool
	sum      *summaryStream
	scenario string
	blocks   int
}

// NewTextAggregator returns an Aggregator that streams the same text report
// WriteText produces, byte for byte (for grids with unique scenario IDs, the
// only kind the constructors build).
func NewTextAggregator(w io.Writer) Aggregator {
	return &textAggregator{w: w}
}

func (a *textAggregator) Begin(m Meta) error {
	a.labels = m.Labels
	a.visible = visibleMetrics(m.Metrics)
	a.multi = m.Replicas > 1
	a.sum = newSummaryStream(m.Metrics, a.row)
	return nil
}

// row emits one summary, opening a new scenario block when needed.
func (a *textAggregator) row(s Summary) error {
	if a.blocks == 0 || s.Scenario != a.scenario {
		if a.blocks > 0 {
			if _, err := fmt.Fprintln(a.w); err != nil {
				return err
			}
		}
		a.scenario = s.Scenario
		a.blocks++
		if err := textBlockHeader(a.w, s.Scenario, a.labels[s.Scenario], a.visible, a.multi); err != nil {
			return err
		}
	}
	return textRow(a.w, s, a.visible, a.multi)
}

func (a *textAggregator) Cell(c CellResult) error { return a.sum.add(c) }

func (a *textAggregator) End() error {
	if err := a.sum.flush(); err != nil {
		return err
	}
	if a.blocks > 0 {
		if _, err := fmt.Fprintln(a.w); err != nil {
			return err
		}
	}
	return nil
}
