// Package sweep is the concurrent orchestration layer of the simulator: it
// runs (scenario × policy × replica-seed) grids on a bounded goroutine pool
// and folds replica results into mean/CI summaries.
//
// The paper's headline artifacts — the Fig. 8 panels, the Fig. 9 environment
// study, and the ablation — are all grids of independent simulator runs.
// Before this package each had its own serial driver; now every one is a
// Grid value executed by the same Runner, following the "one interface,
// many execution modes" shape of the resource-manager pattern.
//
// Determinism is a hard invariant: each cell's PRNG seed is a pure function
// of the grid's base seed and the cell's replica index, never of execution
// order, so the same Grid produces bit-identical Reports at any parallelism
// level. Policies within one (scenario, replica) share the seed — the paper
// compares policies on identical training access streams.
package sweep

import (
	"fmt"

	"repro/internal/prng"
	isim "repro/internal/sim"
)

// ScenarioSpec is one row of a Grid: a named configuration factory. Config
// must be a pure function of the seed (no shared mutable state) so cells can
// be materialised concurrently.
type ScenarioSpec struct {
	// ID labels the row in reports ("fig8b", "ram64-ssd256", ...).
	ID string
	// Label is an optional human caption carried into text reports.
	Label string
	// Config materialises the simulator configuration for one cell seed.
	Config func(seed uint64) (isim.Config, error)
}

// PolicySpec is one column of a Grid. New must return a fresh policy
// instance per call: policies carry per-run placement state.
type PolicySpec struct {
	Name string
	New  func() isim.Policy
}

// AllPolicySpecs returns a column set covering every policy of the Fig. 8
// comparison, in bar order.
func AllPolicySpecs() []PolicySpec {
	var specs []PolicySpec
	for _, p := range isim.AllPolicies() {
		name := p.Name()
		specs = append(specs, PolicySpec{Name: name, New: func() isim.Policy {
			pol, err := isim.PolicyByName(name)
			if err != nil {
				return nil
			}
			return pol
		}})
	}
	return specs
}

// PolicySpecByName resolves a single registry column.
func PolicySpecByName(name string) (PolicySpec, error) {
	if _, err := isim.PolicyByName(name); err != nil {
		return PolicySpec{}, err
	}
	return PolicySpec{Name: name, New: func() isim.Policy {
		pol, err := isim.PolicyByName(name)
		if err != nil {
			return nil
		}
		return pol
	}}, nil
}

// Grid is a (scenario × policy × replica) experiment plan. It is pure data:
// nothing runs until a Runner executes it.
type Grid struct {
	// Name labels the whole grid in reports.
	Name string
	// Scenarios are the rows; Policies the columns.
	Scenarios []ScenarioSpec
	Policies  []PolicySpec
	// Replicas is the number of seeds per (scenario, policy) cell; values
	// below 1 mean 1.
	Replicas int
	// BaseSeed derives every replica seed. Replica 0 uses BaseSeed itself,
	// so a 1-replica grid reproduces the legacy serial paths bit for bit.
	BaseSeed uint64
}

// Cell identifies one simulator run within a grid.
type Cell struct {
	// Index is the cell's position in the deterministic enumeration order
	// (scenario-major, then policy, then replica).
	Index int `json:"index"`
	// Scenario and Policy are report labels; the *Idx fields index into the
	// grid's spec slices.
	Scenario    string `json:"scenario"`
	Policy      string `json:"policy"`
	Replica     int    `json:"replica"`
	Seed        uint64 `json:"seed"`
	ScenarioIdx int    `json:"-"`
	PolicyIdx   int    `json:"-"`
}

// ReplicaSeed derives the seed for replica r from the grid base seed.
// Replica 0 is the base seed unchanged (legacy-path compatibility); later
// replicas are SplitMix64-derived so they are uncorrelated. The result
// depends only on (base, r) — never on execution order — which is what
// makes Reports bit-identical at any parallelism.
func ReplicaSeed(base uint64, r int) uint64 {
	if r <= 0 {
		return base
	}
	h := prng.NewSplitMix64(base).Next()
	return prng.NewSplitMix64(h + uint64(r)).Next()
}

// replicas returns the effective replica count.
func (g *Grid) replicas() int {
	if g.Replicas < 1 {
		return 1
	}
	return g.Replicas
}

// Size returns the number of cells in the grid.
func (g *Grid) Size() int {
	return len(g.Scenarios) * len(g.Policies) * g.replicas()
}

// Cells enumerates the grid in deterministic order: scenario-major, then
// policy, then replica. All parallelism downstream preserves this order in
// the Report, so output is independent of scheduling.
func (g *Grid) Cells() []Cell {
	cells := make([]Cell, 0, g.Size())
	for si, s := range g.Scenarios {
		for pi, p := range g.Policies {
			for r := 0; r < g.replicas(); r++ {
				cells = append(cells, Cell{
					Index:    len(cells),
					Scenario: s.ID, Policy: p.Name,
					Replica: r, Seed: ReplicaSeed(g.BaseSeed, r),
					ScenarioIdx: si, PolicyIdx: pi,
				})
			}
		}
	}
	return cells
}

// Validate reports whether the grid is runnable.
func (g *Grid) Validate() error {
	if len(g.Scenarios) == 0 {
		return fmt.Errorf("sweep: grid %q has no scenarios", g.Name)
	}
	if len(g.Policies) == 0 {
		return fmt.Errorf("sweep: grid %q has no policies", g.Name)
	}
	for _, s := range g.Scenarios {
		if s.Config == nil {
			return fmt.Errorf("sweep: scenario %q has no config factory", s.ID)
		}
	}
	for _, p := range g.Policies {
		if p.New == nil {
			return fmt.Errorf("sweep: policy %q has no constructor", p.Name)
		}
	}
	return nil
}
