// Package sweep is the repo's single experiment-orchestration layer: it runs
// (scenario × policy × replica-seed) grids of independent cells on a bounded
// goroutine pool and folds replica results into mean/median/CI summaries.
//
// The engine is generic over what a cell *is*. A cell is any function of a
// derived seed that returns an Outcome — a named bag of scalar metrics plus
// an optional domain payload. Three cell families flow through it today:
//
//   - simulator runs (the Fig. 8 panels, the Fig. 9 environment study, and
//     the ablation — the default binding, see grids.go),
//   - trainer experiment points (internal/trainer builds grids whose cells
//     simulate one (machine, loader, GPU count) measurement), and
//   - live cluster jobs (package nopfs builds grids whose cells execute a
//     real RunCluster over the channel or TCP fabric).
//
// Determinism is a hard invariant: each cell's PRNG seed is a pure function
// of the grid's base seed and the cell's replica index, never of execution
// order, so the same Grid produces bit-identical Reports at any parallelism
// level (for cells that are themselves deterministic; live-cluster cells
// measure wall-clock effects and are deterministic only in their schedule-
// derived metrics). Policies within one (scenario, replica) share the seed —
// the paper compares policies on identical training access streams.
package sweep

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/prng"
	isim "repro/internal/sim"
)

// Metric declares one column of a grid's result schema. Every cell of the
// grid reports its scalar results under these names in Outcome.Values.
type Metric struct {
	// Name is the stable key into Outcome.Values and the CSV column stem.
	Name string `json:"name"`
	// Label is the short text-report column header (defaults to Name).
	Label string `json:"label,omitempty"`
	// Unit is appended to text-report values ("s" for seconds).
	Unit string `json:"unit,omitempty"`
	// Hide omits the metric from text reports; it is still present in JSON
	// and CSV encodings.
	Hide bool `json:"-"`
}

// label returns the text-report header for the metric.
func (m Metric) label() string {
	if m.Label != "" {
		return m.Label
	}
	return m.Name
}

// Outcome is the engine-visible result of executing one cell.
type Outcome struct {
	// Failed marks a cell whose configuration cannot run at all (a
	// legitimate experimental outcome, e.g. LBANN when the dataset exceeds
	// aggregate RAM) — distinct from an error, which aborts the whole grid.
	Failed     bool   `json:"failed,omitempty"`
	FailReason string `json:"failReason,omitempty"`
	// Note is a human remark carried into text reports ("does not access
	// entire dataset (61%)").
	Note string `json:"note,omitempty"`
	// Values holds the cell's scalar metrics, keyed by Metric.Name.
	Values map[string]float64 `json:"values,omitempty"`
	// Payload is the cell's domain-specific result (*isim.Result for
	// simulator cells, trainer.ScalePoint for trainer cells, []nopfs.Stats
	// for live cells). It is never encoded; presenters that need more than
	// the scalar metrics read it back out of the report cells.
	Payload any `json:"-"`
}

// CellFunc executes one cell of a grid from its deterministically derived
// seed. It must be safe to call concurrently with other cells' funcs, and
// should honour ctx cancellation when the cell blocks (live-cluster cells
// do; pure-compute simulator cells check it on entry).
type CellFunc func(ctx context.Context, seed uint64) (*Outcome, error)

// ScenarioSpec is one row of a Grid. For simulator grids, Config
// materialises the cell's simulator configuration (the default binding);
// grids with a custom Cell binding use the spec purely as a report label.
type ScenarioSpec struct {
	// ID labels the row in reports ("fig8b", "ram64-ssd256", ...).
	ID string
	// Label is an optional human caption carried into text reports.
	Label string
	// Config materialises the simulator configuration for one cell seed.
	// It must be a pure function of the seed (no shared mutable state) so
	// cells can be materialised concurrently. Nil for non-simulator grids.
	Config func(seed uint64) (isim.Config, error)
}

// PolicySpec is one column of a Grid. For simulator grids, New must return a
// fresh policy instance per call (policies carry per-run placement state);
// grids with a custom Cell binding use the spec purely as a report label.
type PolicySpec struct {
	Name string
	New  func() isim.Policy
}

// AllPolicySpecs returns a column set covering every policy of the Fig. 8
// comparison, in bar order.
func AllPolicySpecs() []PolicySpec {
	var specs []PolicySpec
	for _, p := range isim.AllPolicies() {
		name := p.Name()
		specs = append(specs, PolicySpec{Name: name, New: func() isim.Policy {
			pol, err := isim.PolicyByName(name)
			if err != nil {
				return nil
			}
			return pol
		}})
	}
	return specs
}

// ProfileSpec is one column of a grid's optional fault-profile axis: a named
// chaos scenario every (scenario, policy) pair additionally runs under. The
// empty Profile is a legal column (the explicit fault-free baseline); grids
// without a Profiles axis run exactly one implicit empty profile, preserving
// the legacy cell enumeration byte for byte.
type ProfileSpec struct {
	// Name labels the column in reports; required when the axis is present.
	Name string
	// Profile is the fault scenario, compiled per cell against the cell's
	// replica seed by the engine binding that consumes it.
	Profile chaos.Profile
}

// ChaosProfiles builds a profile axis from chaos profiles, labelling each
// column with the profile's Label.
func ChaosProfiles(profiles ...chaos.Profile) []ProfileSpec {
	specs := make([]ProfileSpec, len(profiles))
	for i, p := range profiles {
		specs[i] = ProfileSpec{Name: p.Label(), Profile: p}
	}
	return specs
}

// ChaosAxis turns a -chaos flag value (preset name or spec grammar, see
// chaos.ParseProfile) into a clean-vs-faulted profile axis, so every report
// pairs both numbers on identical access streams. An empty or no-op spec
// returns no axis at all, preserving byte-identical legacy output. Both
// CLIs build their -chaos axis through this one helper.
func ChaosAxis(spec string) ([]ProfileSpec, error) {
	if spec == "" {
		return nil, nil
	}
	p, err := chaos.ParseProfile(spec)
	if err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	return ChaosProfiles(chaos.Profile{Name: "clean"}, p), nil
}

// AccessSpec is one column of a grid's optional access-pattern axis: a named
// workload pattern every (scenario, policy, profile) triple additionally runs
// under. The empty Spec is a legal column (the explicit uniform baseline);
// grids without a Patterns axis run exactly one implicit uniform pattern,
// preserving the legacy cell enumeration byte for byte.
type AccessSpec struct {
	// Name labels the column in reports; required when the axis is present.
	Name string
	// Spec is the canonical access-pattern spec ("" = the uniform shuffle;
	// see access.ParseAccessSpec), stamped onto each simulator cell's config.
	Spec string
}

// AccessPatterns builds a pattern axis from parsed patterns, labelling each
// column with the pattern's Label and storing its canonical spec.
func AccessPatterns(patterns ...access.Pattern) []AccessSpec {
	specs := make([]AccessSpec, len(patterns))
	for i, p := range patterns {
		spec := ""
		if !p.Empty() {
			spec = p.Spec()
		}
		specs[i] = AccessSpec{Name: p.Label(), Spec: spec}
	}
	return specs
}

// AccessAxis turns an -access flag value (preset name or spec grammar, see
// access.ParseAccessSpec) into a uniform-vs-pattern axis, so every report
// pairs the workload against the classic uniform baseline on identical
// replica seeds. An empty or uniform spec returns no axis at all, preserving
// byte-identical legacy output. Both CLIs build their -access axis through
// this one helper, mirroring ChaosAxis.
func AccessAxis(spec string) ([]AccessSpec, error) {
	if spec == "" {
		return nil, nil
	}
	p, err := access.ParseAccessSpec(spec)
	if err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	return AccessPatterns(access.Pattern{Name: "uniform"}, p), nil
}

// PolicySpecByName resolves a single registry column.
func PolicySpecByName(name string) (PolicySpec, error) {
	if _, err := isim.PolicyByName(name); err != nil {
		return PolicySpec{}, err
	}
	return PolicySpec{Name: name, New: func() isim.Policy {
		pol, err := isim.PolicyByName(name)
		if err != nil {
			return nil
		}
		return pol
	}}, nil
}

// Grid is a (scenario × policy × fault-profile × access-pattern × replica)
// experiment plan. It is pure data: nothing runs until a Runner executes it.
type Grid struct {
	// Name labels the whole grid in reports.
	Name string
	// Scenarios are the rows; Policies the columns.
	Scenarios []ScenarioSpec
	Policies  []PolicySpec
	// Profiles is the optional fault-profile axis. Empty means one implicit
	// fault-free profile: the legacy (scenario × policy × replica)
	// enumeration, byte-identical reports included.
	Profiles []ProfileSpec
	// Patterns is the optional access-pattern axis. Empty means one implicit
	// uniform pattern, again preserving the legacy enumeration byte for byte.
	Patterns []AccessSpec
	// Replicas is the number of seeds per (scenario, policy, profile,
	// pattern) cell; values below 1 mean 1.
	Replicas int
	// BaseSeed derives every replica seed. Replica 0 uses BaseSeed itself,
	// so a 1-replica grid reproduces the legacy serial paths bit for bit.
	BaseSeed uint64
	// Metrics is the result schema shared by every cell. Nil means the
	// simulator schema (SimMetrics).
	Metrics []Metric
	// Cell binds the (scenario, policy, profile, pattern) tuple at the given
	// indices to an executable cell. Nil means the simulator binding:
	// Scenarios[si].Config × Policies[pi].New × Profiles[fi] × Patterns[ai]
	// × isim.Run.
	Cell func(scenario, policy, profile, pattern int) CellFunc
}

// Cell identifies one run within a grid.
type Cell struct {
	// Index is the cell's position in the deterministic enumeration order
	// (scenario-major, then policy, then profile, then replica).
	Index int `json:"index"`
	// Scenario, Policy, Profile and Pattern are report labels; the *Idx
	// fields index into the grid's spec slices. Profile and Pattern are
	// empty for grids without the corresponding axis (keeping their
	// encodings byte-identical).
	Scenario    string `json:"scenario"`
	Policy      string `json:"policy"`
	Profile     string `json:"profile,omitempty"`
	Pattern     string `json:"pattern,omitempty"`
	Replica     int    `json:"replica"`
	Seed        uint64 `json:"seed"`
	ScenarioIdx int    `json:"-"`
	PolicyIdx   int    `json:"-"`
	ProfileIdx  int    `json:"-"`
	PatternIdx  int    `json:"-"`
}

// ReplicaSeed derives the seed for replica r from the grid base seed.
// Replica 0 is the base seed unchanged (legacy-path compatibility); later
// replicas are SplitMix64-derived so they are uncorrelated. The result
// depends only on (base, r) — never on execution order — which is what
// makes Reports bit-identical at any parallelism.
func ReplicaSeed(base uint64, r int) uint64 {
	if r <= 0 {
		return base
	}
	h := prng.NewSplitMix64(base).Next()
	return prng.NewSplitMix64(h + uint64(r)).Next()
}

// replicas returns the effective replica count.
func (g *Grid) replicas() int {
	if g.Replicas < 1 {
		return 1
	}
	return g.Replicas
}

// profiles returns the effective fault-profile axis: the declared columns,
// or one implicit fault-free profile.
func (g *Grid) profiles() []ProfileSpec {
	if len(g.Profiles) > 0 {
		return g.Profiles
	}
	return []ProfileSpec{{}}
}

// patterns returns the effective access-pattern axis: the declared columns,
// or one implicit uniform pattern.
func (g *Grid) patterns() []AccessSpec {
	if len(g.Patterns) > 0 {
		return g.Patterns
	}
	return []AccessSpec{{}}
}

// metrics returns the effective result schema.
func (g *Grid) metrics() []Metric {
	if len(g.Metrics) > 0 {
		return g.Metrics
	}
	return SimMetrics()
}

// Size returns the number of cells in the grid.
func (g *Grid) Size() int {
	return len(g.Scenarios) * len(g.Policies) * len(g.profiles()) *
		len(g.patterns()) * g.replicas()
}

// Cells enumerates the grid in deterministic order: scenario-major, then
// policy, then profile, then pattern, then replica. All parallelism
// downstream preserves this order in the Report, so output is independent of
// scheduling. Replica seeds are shared across scenarios, policies, profiles
// AND patterns: fault and workload scenarios are compared on identical
// replica seeds, exactly as the paper compares policies.
func (g *Grid) Cells() []Cell {
	cells := make([]Cell, 0, g.Size())
	for si, s := range g.Scenarios {
		for pi, p := range g.Policies {
			for fi, prof := range g.profiles() {
				for ai, pat := range g.patterns() {
					for r := 0; r < g.replicas(); r++ {
						cells = append(cells, Cell{
							Index:    len(cells),
							Scenario: s.ID, Policy: p.Name, Profile: prof.Name,
							Pattern: pat.Name,
							Replica: r, Seed: ReplicaSeed(g.BaseSeed, r),
							ScenarioIdx: si, PolicyIdx: pi, ProfileIdx: fi,
							PatternIdx: ai,
						})
					}
				}
			}
		}
	}
	return cells
}

// cellFunc resolves the executable cell for (scenario, policy, profile,
// pattern) indices, applying the simulator default when the grid carries no
// custom binding. The memo applies only to the simulator default: custom
// bindings may close over live resources the memo cannot key.
func (g *Grid) cellFunc(si, pi, fi, ai int, memo *ResultMemo) (CellFunc, error) {
	if g.Cell != nil {
		fn := g.Cell(si, pi, fi, ai)
		if fn == nil {
			return nil, fmt.Errorf("sweep: grid %q cell binding returned nil for %s/%s",
				g.Name, g.Scenarios[si].ID, g.Policies[pi].Name)
		}
		return fn, nil
	}
	return simCellFunc(g.Scenarios[si], g.Policies[pi], g.profiles()[fi], g.patterns()[ai], memo), nil
}

// Validate reports whether the grid is runnable.
func (g *Grid) Validate() error {
	if len(g.Scenarios) == 0 {
		return fmt.Errorf("sweep: grid %q has no scenarios", g.Name)
	}
	if len(g.Policies) == 0 {
		return fmt.Errorf("sweep: grid %q has no policies", g.Name)
	}
	for _, prof := range g.Profiles {
		// An explicit axis needs distinguishable column labels (the empty
		// Profile itself is legal: the fault-free baseline column).
		if prof.Name == "" {
			return fmt.Errorf("sweep: grid %q has a fault-profile column without a name", g.Name)
		}
		if err := prof.Profile.Validate(); err != nil {
			return fmt.Errorf("sweep: grid %q profile %q: %w", g.Name, prof.Name, err)
		}
	}
	for _, pat := range g.Patterns {
		if pat.Name == "" {
			return fmt.Errorf("sweep: grid %q has an access-pattern column without a name", g.Name)
		}
		p, err := access.ParseAccessSpec(pat.Spec)
		if err != nil {
			return fmt.Errorf("sweep: grid %q pattern %q: %w", g.Name, pat.Name, err)
		}
		// Reject elastic × crash up front (sim.Config.Validate would fail
		// every such cell anyway): crash redistribution assumes the uniform
		// per-epoch partition an elastic membership schedule removes.
		if p.Elastic() {
			for _, prof := range g.Profiles {
				if prof.Profile.Structural() {
					return fmt.Errorf("sweep: grid %q: elastic pattern %q cannot cross structural (crash) profile %q",
						g.Name, pat.Name, prof.Name)
				}
			}
		}
	}
	if g.Cell != nil {
		// Custom binding: specs are labels only, but the grid must declare
		// its own schema — falling back to the simulator metric names would
		// aggregate nothing and emit zero-filled reports.
		if len(g.Metrics) == 0 {
			return fmt.Errorf("sweep: grid %q has a custom cell binding but no metric schema", g.Name)
		}
		return nil
	}
	for _, s := range g.Scenarios {
		if s.Config == nil {
			return fmt.Errorf("sweep: scenario %q has no config factory", s.ID)
		}
	}
	for _, p := range g.Policies {
		if p.New == nil {
			return fmt.Errorf("sweep: policy %q has no constructor", p.Name)
		}
	}
	return nil
}
