package sweep

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/prng"
	isim "repro/internal/sim"
)

// testScale keeps grids fast while preserving dataset-vs-storage regimes.
const testScale = 0.005

// bg is the default context for tests that exercise the engine's data paths
// rather than cancellation.
var bg = context.Background()

// testGrid is two Fig. 8 panels × every policy × two replicas — small
// enough for fast tests, wide enough to exercise scenario, policy, and
// replica enumeration plus a Failed cell group (LBANN on fig8d).
func testGrid(t *testing.T) *Grid {
	t.Helper()
	a, err := isim.ScenarioByID("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	d, err := isim.ScenarioByID("fig8d")
	if err != nil {
		t.Fatal(err)
	}
	return &Grid{
		Name:      "test",
		Scenarios: []ScenarioSpec{scenarioSpec(a, testScale), scenarioSpec(d, testScale)},
		Policies:  AllPolicySpecs(),
		Replicas:  2, BaseSeed: 42,
	}
}

func TestReplicaSeedDerivation(t *testing.T) {
	if got := ReplicaSeed(42, 0); got != 42 {
		t.Errorf("replica 0 seed = %d, want the base seed unchanged", got)
	}
	seen := map[uint64]int{42: 0}
	for r := 1; r <= 16; r++ {
		s := ReplicaSeed(42, r)
		if prev, dup := seen[s]; dup {
			t.Errorf("replica %d seed %d collides with replica %d", r, s, prev)
		}
		seen[s] = r
		if again := ReplicaSeed(42, r); again != s {
			t.Errorf("replica %d seed not stable: %d vs %d", r, s, again)
		}
	}
	if ReplicaSeed(42, 1) == ReplicaSeed(43, 1) {
		t.Error("different base seeds produced the same replica-1 seed")
	}
}

func TestGridEnumeration(t *testing.T) {
	g := testGrid(t)
	cells := g.Cells()
	if len(cells) != g.Size() || g.Size() != 2*10*2 {
		t.Fatalf("got %d cells, want %d", len(cells), 2*10*2)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
		if c.Seed != ReplicaSeed(g.BaseSeed, c.Replica) {
			t.Errorf("cell %d seed %d != ReplicaSeed(%d, %d)", i, c.Seed, g.BaseSeed, c.Replica)
		}
	}
	// Scenario-major, then policy, then replica.
	if cells[0].Scenario != "fig8a" || cells[0].Policy != "Naive" || cells[0].Replica != 0 {
		t.Errorf("unexpected first cell %+v", cells[0])
	}
	if c := cells[1]; c.Replica != 1 || c.Policy != "Naive" {
		t.Errorf("replica should vary fastest, got %+v", c)
	}
	if c := cells[len(cells)-1]; c.Scenario != "fig8d" || c.Policy != "LowerBound" || c.Replica != 1 {
		t.Errorf("unexpected last cell %+v", c)
	}
}

func TestGridValidate(t *testing.T) {
	if err := (&Grid{Name: "empty"}).Validate(); err == nil {
		t.Error("empty grid accepted")
	}
	g := testGrid(t)
	if err := g.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	bad := *g
	bad.Policies = []PolicySpec{{Name: "broken"}}
	if err := bad.Validate(); err == nil {
		t.Error("policy without constructor accepted")
	}
}

// TestDeterminismAcrossParallelism is the engine's core invariant: the same
// grid and base seed produce byte-identical JSON and CSV reports whether
// cells run serially or on an 8-wide pool.
func TestDeterminismAcrossParallelism(t *testing.T) {
	encode := func(parallel int) (jsonB, csvB []byte) {
		t.Helper()
		rep, err := (&Runner{Parallel: parallel}).Run(bg, testGrid(t))
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := WriteJSON(&j, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, rep); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := encode(1)
	j8, c8 := encode(8)
	if !bytes.Equal(j1, j8) {
		t.Error("JSON reports differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("CSV reports differ between -parallel 1 and -parallel 8")
	}
	// And across repeated runs at the same width.
	j8b, _ := encode(8)
	if !bytes.Equal(j8, j8b) {
		t.Error("repeated -parallel 8 runs differ")
	}
}

// TestEngineMatchesDirectRun pins the engine to the Run primitive: a
// 1-replica scenario grid must reproduce a hand-rolled serial loop exactly.
func TestEngineMatchesDirectRun(t *testing.T) {
	s, err := isim.ScenarioByID("fig8b")
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenario(bg, s, testScale, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Config(testScale, 42)
	if err != nil {
		t.Fatal(err)
	}
	pols := isim.AllPolicies()
	if len(got) != len(pols) {
		t.Fatalf("got %d results, want %d", len(got), len(pols))
	}
	for i, pol := range pols {
		want, err := isim.Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Policy != want.Policy {
			t.Errorf("result %d is %q, want %q (bar order)", i, got[i].Policy, want.Policy)
		}
		if got[i].ExecSeconds != want.ExecSeconds || got[i].StallSeconds != want.StallSeconds {
			t.Errorf("%s: engine exec/stall %.6f/%.6f != direct %.6f/%.6f",
				want.Policy, got[i].ExecSeconds, got[i].StallSeconds,
				want.ExecSeconds, want.StallSeconds)
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	// Policy registry: every Fig. 8 policy resolves to a working spec whose
	// constructor yields a fresh instance with the same name.
	specs := AllPolicySpecs()
	if len(specs) != len(isim.AllPolicies()) {
		t.Fatalf("%d policy specs, want %d", len(specs), len(isim.AllPolicies()))
	}
	for _, spec := range specs {
		byName, err := PolicySpecByName(spec.Name)
		if err != nil {
			t.Errorf("PolicySpecByName(%q): %v", spec.Name, err)
			continue
		}
		a, b := spec.New(), byName.New()
		if a == nil || b == nil {
			t.Errorf("%q constructor returned nil", spec.Name)
			continue
		}
		if a.Name() != spec.Name || b.Name() != spec.Name {
			t.Errorf("round trip %q -> %q / %q", spec.Name, a.Name(), b.Name())
		}
		// Stateful policies (pointer receivers) must come out fresh;
		// stateless value types may compare equal, which is harmless.
	}
	if _, err := PolicySpecByName("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	// Scenario registry: the Fig. 8 grid covers every panel preset.
	g := Fig8Grid(testScale, 1, 1)
	panels := isim.Fig8Scenarios()
	if len(g.Scenarios) != len(panels) {
		t.Fatalf("Fig8Grid has %d rows, want %d", len(g.Scenarios), len(panels))
	}
	for i, row := range g.Scenarios {
		if row.ID != panels[i].ID {
			t.Errorf("row %d is %q, want %q", i, row.ID, panels[i].ID)
		}
		if _, err := isim.ScenarioByID(row.ID); err != nil {
			t.Errorf("grid row %q not in scenario registry: %v", row.ID, err)
		}
	}
}

func TestAggregateReplicas(t *testing.T) {
	s, err := isim.ScenarioByID("fig8d")
	if err != nil {
		t.Fatal(err)
	}
	g := ScenarioGrid(s, testScale, 7, 3)
	rep, err := (&Runner{Parallel: 4}).Run(bg, g)
	if err != nil {
		t.Fatal(err)
	}
	summaries := rep.Aggregate()
	if len(summaries) != len(g.Policies) {
		t.Fatalf("%d summaries, want %d", len(summaries), len(g.Policies))
	}
	bySummary := map[string]Summary{}
	for _, sm := range summaries {
		bySummary[sm.Policy] = sm
		if sm.Replicas != 3 {
			t.Errorf("%s: %d replicas aggregated, want 3", sm.Policy, sm.Replicas)
		}
	}
	nopfs := bySummary["NoPFS"]
	if nopfs.Failed {
		t.Fatalf("NoPFS failed: %s", nopfs.FailReason)
	}
	exec := nopfs.Metric(MetricExec)
	if exec.N != 3 {
		t.Errorf("NoPFS exec summary over %d values, want 3", exec.N)
	}
	if exec.Mean <= 0 || exec.CILow > exec.Median || exec.CIHigh < exec.Median {
		t.Errorf("implausible exec summary: %+v", exec)
	}
	// LBANN cannot run the fig8d regime (dataset exceeds aggregate RAM);
	// the aggregate must carry the failure, not hide it.
	lbann := bySummary["LBANN (Dynamic)"]
	if !lbann.Failed || lbann.FailReason == "" {
		t.Error("LBANN failure not propagated to its summary")
	}
	// Replicas must actually differ: identical seeds would collapse the
	// spread to zero for a policy whose runtime depends on the shuffle.
	if exec.Min == exec.Max {
		t.Logf("note: NoPFS replica spread is zero (min=max=%.6f)", exec.Min)
	}
	seeds := map[uint64]bool{}
	for _, c := range rep.Cells {
		seeds[c.Seed] = true
	}
	if len(seeds) != 3 {
		t.Errorf("%d distinct seeds across 3 replicas", len(seeds))
	}
}

// TestFig9SweepMonotonicity migrates the legacy serial-path test onto the
// engine: more RAM at fixed SSD must never hurt, and vice versa (Fig. 9's
// central observation).
func TestFig9SweepMonotonicity(t *testing.T) {
	points, err := Fig9Sweep(bg, 0.002, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 25 {
		t.Fatalf("got %d sweep points, want 25", len(points))
	}
	byCfg := map[[2]int]float64{}
	for _, p := range points {
		if p.Result.Failed {
			t.Fatalf("sweep point ram=%d ssd=%d failed: %s", p.RAMGB, p.SSDGB, p.Result.FailReason)
		}
		byCfg[[2]int{p.RAMGB, p.SSDGB}] = p.Result.ExecSeconds
	}
	for _, ssd := range fig9SSDs {
		for i := 1; i < len(fig9RAMs); i++ {
			lo, hi := byCfg[[2]int{fig9RAMs[i-1], ssd}], byCfg[[2]int{fig9RAMs[i], ssd}]
			if hi > lo*1.001 {
				t.Errorf("ssd=%d: exec rose from %.2f to %.2f when RAM grew %d->%d GB",
					ssd, lo, hi, fig9RAMs[i-1], fig9RAMs[i])
			}
		}
	}
	for _, ram := range fig9RAMs {
		for i := 1; i < len(fig9SSDs); i++ {
			lo, hi := byCfg[[2]int{ram, fig9SSDs[i-1]}], byCfg[[2]int{ram, fig9SSDs[i]}]
			if hi > lo*1.001 {
				t.Errorf("ram=%d: exec rose from %.2f to %.2f when SSD grew %d->%d GB",
					ram, lo, hi, fig9SSDs[i-1], fig9SSDs[i])
			}
		}
	}
	// SSD must matter when memory is small ("if memory is expensive, it can
	// be compensated for with additional SSD storage").
	if byCfg[[2]int{32, 1024}] >= byCfg[[2]int{32, 0}] {
		t.Error("adding SSD at 32 GB RAM did not help")
	}
}

// TestFig9StagingCheck migrates the staging-buffer preliminary: 1-5 GB
// staging windows all produce the same runtime.
func TestFig9StagingCheck(t *testing.T) {
	res, err := Fig9StagingCheck(bg, 0.002, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := res[1].ExecSeconds
	for gb, r := range res {
		if math.Abs(r.ExecSeconds-base) > 0.02*base {
			t.Errorf("staging %d GB exec %.2f differs from 1 GB exec %.2f", gb, r.ExecSeconds, base)
		}
	}
}

// TestParallelSpeedup checks that the pool actually buys wall-clock time on
// multi-core hosts. Skipped below 4 CPUs, where the comparison is noise.
func TestParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("only %d CPUs; speedup is measured by the Fig9EnvironmentSweep benchmarks", runtime.NumCPU())
	}
	run := func(parallel int) time.Duration {
		start := time.Now()
		if _, err := Fig9Sweep(bg, 0.002, 11, parallel); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(1) // warm caches
	serial := run(1)
	parallel := run(4)
	t.Logf("fig9 grid: serial %v, 4-wide %v (%.2fx)", serial, parallel, float64(serial)/float64(parallel))
	if parallel > serial*9/10 {
		t.Errorf("4-wide pool (%v) not measurably faster than serial (%v)", parallel, serial)
	}
}

// funcGrid is a pure function-cell grid (no simulator involved): metrics
// are a deterministic hash of (scenario, policy, seed).
func funcGrid(replicas int) *Grid {
	return &Grid{
		Name: "func",
		Scenarios: []ScenarioSpec{
			{ID: "rowA", Label: "first row"},
			{ID: "rowB"},
		},
		Policies: []PolicySpec{{Name: "colX"}, {Name: "colY"}},
		Replicas: replicas, BaseSeed: 99,
		Metrics: []Metric{
			{Name: "score", Label: "score"},
			{Name: "aux", Hide: true},
		},
		Cell: func(si, pi, _, _ int) CellFunc {
			return func(_ context.Context, seed uint64) (*Outcome, error) {
				if si == 1 && pi == 1 {
					return &Outcome{Failed: true, FailReason: "colY cannot run rowB"}, nil
				}
				h := prng.NewSplitMix64(seed + uint64(si*31+pi)).Next()
				return &Outcome{Values: map[string]float64{
					"score": float64(h%1000) / 10,
					"aux":   float64(si + pi),
				}}, nil
			}
		},
	}
}

// TestFunctionCellGrid exercises the engine on a non-simulator grid: custom
// metric schema, custom cell binding, a Failed cell, and bit-identical
// encodings at any parallelism.
func TestFunctionCellGrid(t *testing.T) {
	encode := func(parallel int) (jsonB, csvB, textB []byte) {
		t.Helper()
		rep, err := (&Runner{Parallel: parallel}).Run(bg, funcGrid(3))
		if err != nil {
			t.Fatal(err)
		}
		var j, c, x bytes.Buffer
		if err := WriteJSON(&j, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, rep); err != nil {
			t.Fatal(err)
		}
		if err := WriteText(&x, rep); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes(), x.Bytes()
	}
	j1, c1, x1 := encode(1)
	j8, c8, x8 := encode(8)
	if !bytes.Equal(j1, j8) || !bytes.Equal(c1, c8) || !bytes.Equal(x1, x8) {
		t.Error("function-cell grid encodings differ across parallelism")
	}

	rep, err := (&Runner{Parallel: 4}).Run(bg, funcGrid(3))
	if err != nil {
		t.Fatal(err)
	}
	summaries := rep.Aggregate()
	if len(summaries) != 4 {
		t.Fatalf("%d summaries, want 4", len(summaries))
	}
	byKey := map[string]Summary{}
	for _, s := range summaries {
		byKey[s.Scenario+"/"+s.Policy] = s
	}
	if s := byKey["rowB/colY"]; !s.Failed || s.FailReason == "" {
		t.Error("failed function cell not propagated to its summary")
	}
	if s := byKey["rowA/colX"]; s.Metric("score").N != 3 || s.Metric("aux").N != 3 {
		t.Errorf("metric summaries not aggregated over 3 replicas: %+v", s.Metrics)
	}
	// The custom schema must flow into the report and text rendering: the
	// hidden metric stays out of the text table but in the CSV header.
	if len(rep.Metrics) != 2 || rep.Metrics[0].Name != "score" {
		t.Errorf("report metrics = %+v", rep.Metrics)
	}
	if !bytes.Contains(x1, []byte("score")) || bytes.Contains(x1, []byte("aux")) {
		t.Errorf("text report visibility wrong:\n%s", x1)
	}
	if !bytes.Contains(c1, []byte("aux_mean")) {
		t.Errorf("CSV missing hidden metric column:\n%s", c1)
	}
}

// TestRunnerCancellation pins the engine's context contract: canceling
// mid-grid stops dispatching cells and returns the context error, and a
// pre-canceled context runs nothing at all.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	g := funcGrid(64) // 3 cell groups × 64 replicas = plenty to interrupt
	inner := g.Cell
	g.Cell = func(si, pi, _, _ int) CellFunc {
		fn := inner(si, pi, 0, 0)
		return func(ctx context.Context, seed uint64) (*Outcome, error) {
			if ran.Add(1) == 3 {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return fn(ctx, seed)
		}
	}
	if _, err := (&Runner{Parallel: 2}).Run(ctx, g); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled grid returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= int64(g.Size()) {
		t.Errorf("cancellation did not stop dispatch: %d of %d cells ran", n, g.Size())
	}

	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	ran.Store(0)
	if _, err := (&Runner{Parallel: 2}).Run(pre, funcGrid(2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled grid returned %v", err)
	}
}

// TestNilCellBinding pins the error path: a custom binding returning nil
// must abort the grid with a descriptive error, not panic.
func TestNilCellBinding(t *testing.T) {
	g := funcGrid(1)
	g.Cell = func(si, pi, _, _ int) CellFunc { return nil }
	if _, err := (&Runner{Parallel: 2}).Run(bg, g); err == nil {
		t.Error("nil cell binding accepted")
	}
}

func TestWriteTextShape(t *testing.T) {
	rep, err := (&Runner{Parallel: 2}).Run(bg, testGrid(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig8a", "fig8d", "NoPFS", "LowerBound", "95% CI", "exceeds aggregate RAM"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}

// TestWarmGridCellsDoZeroShuffleWork drives the acceptance probe at the
// engine level: many concurrent cells hammer the shared plan cache, and a
// warm re-run of the same grid — every cell in parallel — performs zero
// epoch shuffles while producing a bit-identical report.
func TestWarmGridCellsDoZeroShuffleWork(t *testing.T) {
	grid := testGrid(t)
	wide := &Runner{Parallel: 4 * runtime.GOMAXPROCS(0)}
	cold, err := wide.Run(bg, grid)
	if err != nil {
		t.Fatal(err)
	}
	before := access.ShuffleCount()
	warm, err := wide.Run(bg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if n := access.ShuffleCount() - before; n != 0 {
		t.Fatalf("warm grid performed %d shuffles, want 0", n)
	}
	var coldBuf, warmBuf bytes.Buffer
	if err := WriteJSON(&coldBuf, cold); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&warmBuf, warm); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBuf.Bytes(), warmBuf.Bytes()) {
		t.Fatal("warm grid report differs from cold grid report")
	}
}
