// Command benchcompare diffs two BENCH_<date>.json trajectory documents
// (see internal/tools/benchjson) benchstat-style: one row per benchmark
// present in both files, with the ns/op delta and a regression marker.
//
// By default the comparison is advisory — regressions print a warning and
// the exit status stays 0, so CI can surface drift without turning noisy
// single-iteration runs into hard failures. Pass -gate to exit non-zero
// when any benchmark regresses past the threshold.
//
// Usage:
//
//	benchcompare -old bench/BENCH_2026-08-08_baseline.json -new bench/BENCH_2026-08-08.json
//	benchcompare -old OLD.json -new NEW.json -threshold 25 -gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// benchmark mirrors the benchjson per-benchmark schema (the fields this
// tool needs; unknown fields are ignored).
type benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

// document mirrors the benchjson Document schema.
type document struct {
	Date       string      `json:"date"`
	Label      string      `json:"label"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_*.json (required)")
	newPath := flag.String("new", "", "candidate BENCH_*.json (required)")
	threshold := flag.Float64("threshold", 10, "percent ns/op change that counts as a regression/improvement")
	gate := flag.Bool("gate", false, "exit 1 when any benchmark regresses past the threshold (default: warn only)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -old and -new are required")
		os.Exit(2)
	}

	oldDoc, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	oldBy := index(oldDoc)
	var names []string
	newBy := map[string]benchmark{}
	for _, b := range newDoc.Benchmarks {
		k := b.Package + "." + b.Name
		if _, ok := oldBy[k]; ok {
			names = append(names, k)
			newBy[k] = b
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no common benchmarks between the two documents")
		os.Exit(2)
	}

	fmt.Printf("benchcompare: %s (%s) -> %s (%s), %d common benchmarks, threshold %.0f%%\n",
		*oldPath, describe(oldDoc), *newPath, describe(newDoc), len(names), *threshold)
	fmt.Printf("%-52s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressions, improvements int
	for _, k := range names {
		o, n := oldBy[k], newBy[k]
		if o.NsPerOp <= 0 {
			continue
		}
		pct := 100 * (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		switch {
		case pct >= *threshold:
			mark = "  REGRESSION"
			regressions++
		case pct <= -*threshold:
			mark = "  improvement"
			improvements++
		}
		fmt.Printf("%-52s %14.0f %14.0f %+8.1f%%%s\n", n.Name, o.NsPerOp, n.NsPerOp, pct, mark)
	}
	fmt.Printf("summary: %d regression(s), %d improvement(s) past ±%.0f%%\n",
		regressions, improvements, *threshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: WARNING: %d benchmark(s) slower than baseline by ≥%.0f%%\n",
			regressions, *threshold)
		if *gate {
			os.Exit(1)
		}
	}
}

// load reads one trajectory document.
func load(path string) (document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return document{}, fmt.Errorf("benchcompare: %w", err)
	}
	var d document
	if err := json.Unmarshal(data, &d); err != nil {
		return document{}, fmt.Errorf("benchcompare: %s: %w", path, err)
	}
	return d, nil
}

// index keys a document's benchmarks by package-qualified name.
func index(d document) map[string]benchmark {
	m := make(map[string]benchmark, len(d.Benchmarks))
	for _, b := range d.Benchmarks {
		m[b.Package+"."+b.Name] = b
	}
	return m
}

// describe renders a document's provenance for the header line.
func describe(d document) string {
	if d.Label != "" {
		return d.Date + ", " + d.Label
	}
	return d.Date
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
