// Command benchjson converts `go test -bench` output into a
// benchstat-compatible JSON document for the repo's BENCH_<date>.json
// perf-trajectory files.
//
// It reads the benchmark text from stdin, echoes it unchanged to stdout (so
// it can sit in a pipe after `go test`), and writes a JSON file carrying
// both the parsed per-benchmark metrics and the raw text lines. The raw
// lines are the benchstat compatibility surface: extract them with
//
//	jq -r '.raw[]' bench/BENCH_2026-07-28.json > old.txt
//	benchstat old.txt new.txt
//
// Usage: go test -run '^$' -bench . -benchmem ./... | benchjson -out FILE
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string `json:"name"`
	Package    string `json:"package,omitempty"`
	Iterations int64  `json:"iterations"`
	NsPerOp    float64
	// Metrics holds every reported unit, including ns/op, B/op, allocs/op
	// and custom units (e.g. "NoPFS/LB").
	Metrics map[string]float64 `json:"metrics"`
}

// MarshalJSON flattens the common units to top-level fields for easy jq
// access while keeping the full unit map.
func (b Benchmark) MarshalJSON() ([]byte, error) {
	type alias struct {
		Name       string             `json:"name"`
		Package    string             `json:"package,omitempty"`
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		BPerOp     float64            `json:"bytes_per_op"`
		AllocsOp   float64            `json:"allocs_per_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	return json.Marshal(alias{
		Name: b.Name, Package: b.Package, Iterations: b.Iterations,
		NsPerOp: b.Metrics["ns/op"], BPerOp: b.Metrics["B/op"],
		AllocsOp: b.Metrics["allocs/op"], Metrics: b.Metrics,
	})
}

// Document is the BENCH_<date>.json schema.
type Document struct {
	Date       string      `json:"date"`
	Label      string      `json:"label,omitempty"`
	GoVersion  string      `json:"go"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw preserves the original `go test -bench` lines (package headers
	// included) — feed them to benchstat for before/after comparisons.
	Raw []string `json:"raw"`
}

func main() {
	out := flag.String("out", "", "output JSON path (required)")
	label := flag.String("label", "", "optional run label (e.g. 'pre-plancache baseline')")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	doc := Document{
		Date:      time.Now().UTC().Format("2006-01-02"),
		Label:     *label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "goos: "), strings.HasPrefix(line, "goarch: "):
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			doc.Raw = append(doc.Raw, line)
		case strings.HasPrefix(line, "Benchmark"):
			doc.Raw = append(doc.Raw, line)
			if b, ok := parseLine(line, pkg); ok {
				doc.Benchmarks = append(doc.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parseLine parses one "BenchmarkX-8 N value unit [value unit ...]" line.
func parseLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
