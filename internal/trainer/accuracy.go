package trainer

import "math"

// ResNet50Top1 returns a surrogate top-1 validation accuracy (percent) for
// ResNet-50 on ImageNet-1k after the given (fractional) epoch under the
// Goyal et al. large-minibatch schedule the paper follows: 5-epoch linear
// warmup, learning-rate drops at epochs 30, 60, and 80, converging to the
// paper's reported 76.5% at epoch 90.
//
// NoPFS does not alter the sample order SGD sees (full-dataset
// randomization is preserved), so the accuracy-vs-epoch curve is
// loader-independent; only the wall-clock axis differs. This surrogate
// captures the published curve's characteristic staircase shape: fast rise
// during warmup, plateaus within each learning-rate phase, and a jump at
// each drop.
func ResNet50Top1(epoch float64) float64 {
	if epoch <= 0 {
		return 0
	}
	// Phase plateaus (top-1 %) approached exponentially within each phase,
	// matching published ResNet-50/ImageNet learning curves.
	type phase struct {
		start, end   float64
		from, target float64
		rate         float64 // exponential approach rate per epoch
	}
	phases := []phase{
		{0, 30, 0, 63, 0.18},    // warmup + first LR phase
		{30, 60, 63, 73.5, 0.3}, // after first drop
		{60, 80, 73.5, 76, 0.35},
		{80, 90, 76, 76.5, 0.4},
	}
	for _, p := range phases {
		if epoch <= p.end {
			progress := 1 - math.Exp(-p.rate*(epoch-p.start))
			return p.from + (p.target-p.from)*progress
		}
	}
	return 76.5
}
