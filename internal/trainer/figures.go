package trainer

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// Figure presets. At scale = 1 these match the paper's configurations;
// tests and benchmarks pass smaller scales (and may trim GPUCounts, since a
// scaled dataset cannot feed 1024 ranks a full global batch).

// Fig10PizDaint: ResNet-50 / ImageNet-1k on Piz Daint, 32-256 GPUs,
// PyTorch vs PyTorch+DALI vs NoPFS vs No-I/O. 10 measured epochs.
func Fig10PizDaint(scale float64) Experiment {
	return Experiment{
		Name: "fig10-pizdaint",
		Sys:  hwspec.PizDaint(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50PizDaint(workers, 10, 64)
		},
		GPUCounts: []int{32, 64, 128, 256},
		Loaders:   []Loader{LoaderPyTorch, LoaderDALI, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF10, Jitter: 0.6,
	}
}

// Fig10Lassen: ResNet-50 / ImageNet-1k on Lassen, 32-1024 GPUs,
// PyTorch vs LBANN vs NoPFS vs No-I/O. Per-GPU batch 120.
func Fig10Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig10-lassen",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, 10, 120)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderLBANN, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF10, Jitter: 0.6,
	}
}

// Fig13BatchSweep: ResNet-50 / ImageNet-1k on 128 Lassen GPUs with per-GPU
// batch sizes 32-120, PyTorch vs NoPFS vs No-I/O.
func Fig13BatchSweep(scale float64) []Experiment {
	var out []Experiment
	for _, batch := range []int{32, 64, 96, 120} {
		b := batch
		out = append(out, Experiment{
			Name: fmt.Sprintf("fig13-b%d", b),
			Sys:  hwspec.Lassen(),
			Spec: dataset.ImageNet1kSpec(),
			Workload: func(workers int) hwspec.Workload {
				return hwspec.ResNet50Lassen(workers, 10, b)
			},
			GPUCounts: []int{128},
			Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
			Scale:     scale, Seed: 0xF13, Jitter: 0.6,
		})
	}
	return out
}

// Fig14Lassen: ResNet-50 / ImageNet-22k on Lassen, 32-1024 GPUs, 3 epochs.
func Fig14Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig14-imagenet22k",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet22kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, 3, 120)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF14, Jitter: 0.6,
	}
}

// Fig15Lassen: CosmoFlow on Lassen, 32-1024 GPUs, per-GPU batch 16.
func Fig15Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig15-cosmoflow",
		Sys:  hwspec.Lassen(),
		Spec: dataset.CosmoFlowSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.CosmoFlowLassen(workers, 10, 16)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF15, Jitter: 0.6,
	}
}

// Fig12CacheStats extracts the NoPFS stall time and fetch-location mix per
// scale (paper Fig. 12) from a Fig. 10 run.
func Fig12CacheStats(points []ScalePoint) []ScalePoint {
	var out []ScalePoint
	for _, p := range points {
		if p.Loader == LoaderNoPFS.String() && !p.Failed {
			out = append(out, p)
		}
	}
	return out
}

// EndToEndPoint is one sample of the Fig. 16 accuracy-vs-time curves.
type EndToEndPoint struct {
	Epoch       int
	Seconds     float64
	Top1Percent float64
}

// EndToEndResult holds one loader's simulated 90-epoch training run.
type EndToEndResult struct {
	Loader       string
	Curve        []EndToEndPoint
	TotalSeconds float64
	FinalTop1    float64
}

// Fig16 metric names and schema: the end-to-end grid reports total training
// time and the final top-1 accuracy; the full curve rides in the payload.
const (
	MetricTotalS    = "total_s"
	MetricFinalTop1 = "final_top1"
)

// Fig16Metrics is the end-to-end grid's result schema.
func Fig16Metrics() []sweep.Metric {
	return []sweep.Metric{
		{Name: MetricTotalS, Label: "total", Unit: "s"},
		{Name: MetricFinalTop1, Label: "top1%"},
	}
}

// Fig16Experiment is the Fig. 16 configuration: ResNet-50 on ImageNet-1k,
// 256 Lassen GPUs, per-GPU batch 32 (global 8192), 90 epochs.
func Fig16Experiment(scale float64) Experiment {
	const epochs = 90
	return Experiment{
		Name: "fig16",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, epochs, 32)
		},
		GPUCounts: []int{256},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF16, Jitter: 0.4,
	}
}

// fig16Cell simulates one loader's 90-epoch run and folds the per-epoch
// times into the accuracy-vs-time curve (the Goyal et al. schedule).
func fig16Cell(exp Experiment, ds *dataset.Synthetic, sys hwspec.System, loader Loader, seed uint64) (EndToEndResult, error) {
	work := loader.AdjustWorkload(exp.Workload(exp.GPUCounts[0]))
	cfg := sim.Config{Sys: sys, Work: work, DS: ds, Seed: seed, PFSJitter: exp.Jitter, DropLast: true, Chaos: exp.Chaos, Access: exp.Access}
	pol, err := loader.Policy()
	if err != nil {
		return EndToEndResult{}, err
	}
	r, err := sim.Run(cfg, pol)
	if err != nil {
		return EndToEndResult{}, err
	}
	res := EndToEndResult{Loader: loader.String()}
	if r.Failed {
		return res, nil
	}
	elapsed := 0.0
	for e, d := range r.EpochSeconds {
		elapsed += d
		res.Curve = append(res.Curve, EndToEndPoint{
			Epoch:       e + 1,
			Seconds:     elapsed,
			Top1Percent: ResNet50Top1(float64(e + 1)),
		})
	}
	res.TotalSeconds = elapsed
	if n := len(res.Curve); n > 0 {
		res.FinalTop1 = res.Curve[n-1].Top1Percent
	}
	return res, nil
}

// Fig16Grid plans the end-to-end comparison as a sweep grid: one row (256
// GPUs), one column per loader, cells carrying EndToEndResult payloads.
func Fig16Grid(scale float64, replicas int) *sweep.Grid {
	return Fig16GridFrom(Fig16Experiment(scale), replicas)
}

// Fig16GridFrom is Fig16Grid over a caller-prepared experiment (seed
// overrides, trimmed axes, chaos profiles).
func Fig16GridFrom(exp Experiment, replicas int) *sweep.Grid {
	cols := make([]sweep.PolicySpec, len(exp.Loaders))
	for i, l := range exp.Loaders {
		cols[i] = sweep.PolicySpec{Name: l.String()}
	}
	loaders := exp.Loaders
	env := sharedEnv(exp)
	grid := &sweep.Grid{
		Name: exp.Name,
		Scenarios: []sweep.ScenarioSpec{{
			ID:    fmt.Sprintf("%s-g%d", exp.Name, exp.GPUCounts[0]),
			Label: "ResNet-50/ImageNet-1k, 256 Lassen GPUs, 90 epochs",
		}},
		Policies: cols,
		Replicas: replicas, BaseSeed: exp.Seed,
		Metrics: Fig16Metrics(),
	}
	grid.Cell = func(si, pi, fi, ai int) sweep.CellFunc {
		l := loaders[pi]
		cell := exp
		cell.Chaos = effectiveChaos(exp, grid, fi)
		cell.Access = effectiveAccess(exp, grid, ai)
		return func(ctx context.Context, seed uint64) (*sweep.Outcome, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ds, sys, err := env()
			if err != nil {
				return nil, err
			}
			res, err := fig16Cell(cell, ds, sys, l, seed)
			if err != nil {
				return nil, err
			}
			o := &sweep.Outcome{Payload: res}
			if len(res.Curve) == 0 {
				o.Failed = true
				o.FailReason = fmt.Sprintf("%s cannot run fig16", res.Loader)
				return o, nil
			}
			o.Values = map[string]float64{
				MetricTotalS:    res.TotalSeconds,
				MetricFinalTop1: res.FinalTop1,
			}
			return o, nil
		}
	}
	return grid
}

// Fig16EndToEnd reproduces the end-to-end comparison: ResNet-50 on
// ImageNet-1k, 256 Lassen GPUs, per-GPU batch 32 (global 8192), 90 epochs
// with the Goyal et al. schedule. NoPFS preserves full-dataset
// randomization, so accuracy-vs-epoch is loader-independent; the loaders
// differ only in how fast epochs complete — exactly the paper's framing.
// The loaders run concurrently through the sweep engine.
func Fig16EndToEnd(ctx context.Context, scale float64) ([]EndToEndResult, error) {
	rep, err := (&sweep.Runner{}).Run(ctx, Fig16Grid(scale, 1))
	if err != nil {
		return nil, err
	}
	out := make([]EndToEndResult, len(rep.Cells))
	for i, c := range rep.Cells {
		res, ok := c.Outcome.Payload.(EndToEndResult)
		if !ok {
			return nil, fmt.Errorf("trainer: fig16 cell %d carries no end-to-end result", i)
		}
		out[i] = res
	}
	return out, nil
}
