package trainer

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/sim"
)

// Figure presets. At scale = 1 these match the paper's configurations;
// tests and benchmarks pass smaller scales (and may trim GPUCounts, since a
// scaled dataset cannot feed 1024 ranks a full global batch).

// Fig10PizDaint: ResNet-50 / ImageNet-1k on Piz Daint, 32-256 GPUs,
// PyTorch vs PyTorch+DALI vs NoPFS vs No-I/O. 10 measured epochs.
func Fig10PizDaint(scale float64) Experiment {
	return Experiment{
		Name: "fig10-pizdaint",
		Sys:  hwspec.PizDaint(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50PizDaint(workers, 10, 64)
		},
		GPUCounts: []int{32, 64, 128, 256},
		Loaders:   []Loader{LoaderPyTorch, LoaderDALI, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF10, Jitter: 0.6,
	}
}

// Fig10Lassen: ResNet-50 / ImageNet-1k on Lassen, 32-1024 GPUs,
// PyTorch vs LBANN vs NoPFS vs No-I/O. Per-GPU batch 120.
func Fig10Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig10-lassen",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, 10, 120)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderLBANN, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF10, Jitter: 0.6,
	}
}

// Fig13BatchSweep: ResNet-50 / ImageNet-1k on 128 Lassen GPUs with per-GPU
// batch sizes 32-120, PyTorch vs NoPFS vs No-I/O.
func Fig13BatchSweep(scale float64) []Experiment {
	var out []Experiment
	for _, batch := range []int{32, 64, 96, 120} {
		b := batch
		out = append(out, Experiment{
			Name: fmt.Sprintf("fig13-b%d", b),
			Sys:  hwspec.Lassen(),
			Spec: dataset.ImageNet1kSpec(),
			Workload: func(workers int) hwspec.Workload {
				return hwspec.ResNet50Lassen(workers, 10, b)
			},
			GPUCounts: []int{128},
			Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
			Scale:     scale, Seed: 0xF13, Jitter: 0.6,
		})
	}
	return out
}

// Fig14Lassen: ResNet-50 / ImageNet-22k on Lassen, 32-1024 GPUs, 3 epochs.
func Fig14Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig14-imagenet22k",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet22kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, 3, 120)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF14, Jitter: 0.6,
	}
}

// Fig15Lassen: CosmoFlow on Lassen, 32-1024 GPUs, per-GPU batch 16.
func Fig15Lassen(scale float64) Experiment {
	return Experiment{
		Name: "fig15-cosmoflow",
		Sys:  hwspec.Lassen(),
		Spec: dataset.CosmoFlowSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.CosmoFlowLassen(workers, 10, 16)
		},
		GPUCounts: []int{32, 64, 128, 256, 512, 1024},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF15, Jitter: 0.6,
	}
}

// Fig12CacheStats extracts the NoPFS stall time and fetch-location mix per
// scale (paper Fig. 12) from a Fig. 10 run.
func Fig12CacheStats(points []ScalePoint) []ScalePoint {
	var out []ScalePoint
	for _, p := range points {
		if p.Loader == LoaderNoPFS.String() && !p.Failed {
			out = append(out, p)
		}
	}
	return out
}

// EndToEndPoint is one sample of the Fig. 16 accuracy-vs-time curves.
type EndToEndPoint struct {
	Epoch       int
	Seconds     float64
	Top1Percent float64
}

// EndToEndResult holds one loader's simulated 90-epoch training run.
type EndToEndResult struct {
	Loader       string
	Curve        []EndToEndPoint
	TotalSeconds float64
	FinalTop1    float64
}

// Fig16EndToEnd reproduces the end-to-end comparison: ResNet-50 on
// ImageNet-1k, 256 Lassen GPUs, per-GPU batch 32 (global 8192), 90 epochs
// with the Goyal et al. schedule. NoPFS preserves full-dataset
// randomization, so accuracy-vs-epoch is loader-independent; the loaders
// differ only in how fast epochs complete — exactly the paper's framing.
func Fig16EndToEnd(scale float64) ([]EndToEndResult, error) {
	const epochs = 90
	exp := Experiment{
		Name: "fig16",
		Sys:  hwspec.Lassen(),
		Spec: dataset.ImageNet1kSpec(),
		Workload: func(workers int) hwspec.Workload {
			return hwspec.ResNet50Lassen(workers, epochs, 32)
		},
		GPUCounts: []int{256},
		Loaders:   []Loader{LoaderPyTorch, LoaderNoPFS, LoaderNoIO},
		Scale:     scale, Seed: 0xF16, Jitter: 0.4,
	}
	// Run the simulator directly so we keep per-epoch times.
	spec := exp.Spec
	sys := exp.Sys
	if scale != 1 {
		spec = spec.Scale(scale)
		sys = sim.ScaleSystem(sys, scale)
	}
	ds, err := dataset.New(spec)
	if err != nil {
		return nil, err
	}
	var out []EndToEndResult
	for _, loader := range exp.Loaders {
		work := loader.AdjustWorkload(exp.Workload(256))
		cfg := sim.Config{Sys: sys, Work: work, DS: ds, Seed: exp.Seed, PFSJitter: exp.Jitter, DropLast: true}
		pol, err := loader.Policy()
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(cfg, pol)
		if err != nil {
			return nil, err
		}
		if r.Failed {
			out = append(out, EndToEndResult{Loader: loader.String()})
			continue
		}
		res := EndToEndResult{Loader: loader.String()}
		elapsed := 0.0
		for e, d := range r.EpochSeconds {
			elapsed += d
			res.Curve = append(res.Curve, EndToEndPoint{
				Epoch:       e + 1,
				Seconds:     elapsed,
				Top1Percent: ResNet50Top1(float64(e + 1)),
			})
		}
		res.TotalSeconds = elapsed
		if n := len(res.Curve); n > 0 {
			res.FinalTop1 = res.Curve[n-1].Top1Percent
		}
		out = append(out, res)
	}
	return out, nil
}
