package trainer

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/perfmodel"
	"repro/internal/sweep"
)

// This file plans the real-system experiment grids — (machine × loader ×
// GPU count × replica seed) — as sweep-engine grids, so the trainer's
// scaling studies run through the same concurrent orchestration layer as
// the simulator's Fig. 8/9 grids: rows are GPU counts (or experiments),
// columns are loaders, and each cell simulates one measurement.

// Trainer metric names (the trainer grids' Outcome.Values keys).
const (
	MetricMedianEpoch = "median_epoch_s"
	MetricEpoch0      = "epoch0_s"
	MetricBatchMedian = "batch_median_s"
	MetricBatchP95    = "batch_p95_s"
	MetricBatchMax    = "batch_max_s"
	MetricBatch0Med   = "batch0_median_s"
	MetricBatch0P95   = "batch0_p95_s"
	MetricBatch0Max   = "batch0_max_s"
	MetricStallS      = "stall_s"
	MetricExecS       = "exec_s"
	MetricPFSFrac     = "pfs_frac"
	MetricRemoteFrac  = "remote_frac"
	MetricLocalFrac   = "local_frac"
)

// GridMetrics is the trainer grids' result schema: the paper's headline
// per-epoch and per-batch statistics plus the Fig. 12 stall/fetch-mix data
// (hidden from text tables, present in JSON/CSV).
func GridMetrics() []sweep.Metric {
	return []sweep.Metric{
		{Name: MetricMedianEpoch, Label: "med-epoch", Unit: "s"},
		{Name: MetricEpoch0, Label: "epoch0", Unit: "s"},
		{Name: MetricBatchP95, Label: "batch-p95", Unit: "s"},
		{Name: MetricBatchMax, Label: "batch-max", Unit: "s"},
		{Name: MetricBatchMedian, Unit: "s", Hide: true},
		{Name: MetricBatch0Med, Unit: "s", Hide: true},
		{Name: MetricBatch0P95, Unit: "s", Hide: true},
		{Name: MetricBatch0Max, Unit: "s", Hide: true},
		{Name: MetricStallS, Unit: "s", Hide: true},
		{Name: MetricExecS, Unit: "s", Hide: true},
		{Name: MetricPFSFrac, Hide: true},
		{Name: MetricRemoteFrac, Hide: true},
		{Name: MetricLocalFrac, Hide: true},
	}
}

// PointOutcome converts one scaling measurement into an engine cell
// outcome, keeping the full ScalePoint as the payload.
func PointOutcome(p ScalePoint) *sweep.Outcome {
	o := &sweep.Outcome{Payload: p}
	if p.Failed {
		o.Failed = true
		o.FailReason = p.Reason
		return o
	}
	o.Values = map[string]float64{
		MetricMedianEpoch: p.MedianEpoch,
		MetricEpoch0:      p.Epoch0Seconds,
		MetricBatchMedian: p.Batch.Median,
		MetricBatchP95:    p.Batch.P95,
		MetricBatchMax:    p.Batch.Max,
		MetricBatch0Med:   p.Batch0.Median,
		MetricBatch0P95:   p.Batch0.P95,
		MetricBatch0Max:   p.Batch0.Max,
		MetricStallS:      p.StallSeconds,
		MetricExecS:       p.ExecSeconds,
		MetricPFSFrac:     p.LocFraction[perfmodel.LocPFS],
		MetricRemoteFrac:  p.LocFraction[perfmodel.LocRemote],
		MetricLocalFrac:   p.LocFraction[perfmodel.LocLocal],
	}
	return o
}

// sharedEnv lazily builds the experiment's scaled dataset and system
// exactly once: materialising the O(F) size table per cell would dominate
// large grids, and Synthetic datasets are immutable after construction, so
// every cell of the experiment can read the same instance concurrently.
func sharedEnv(e Experiment) func() (*dataset.Synthetic, hwspec.System, error) {
	type env struct {
		ds  *dataset.Synthetic
		sys hwspec.System
	}
	build := sync.OnceValues(func() (env, error) {
		spec, sys := e.scaled()
		ds, err := dataset.Cached(spec)
		return env{ds, sys}, err
	})
	return func() (*dataset.Synthetic, hwspec.System, error) {
		v, err := build()
		return v.ds, v.sys, err
	}
}

// sharedCells returns a cell executor over one shared environment, running
// under the cell's resolved fault profile (see effectiveChaos) — the grids'
// fault-profile axis reuses one shared dataset across its clean and faulted
// columns.
func sharedCells(e Experiment) func(gpus int, loader Loader, seed uint64, prof chaos.Profile, access string) (ScalePoint, error) {
	env := sharedEnv(e)
	return func(gpus int, loader Loader, seed uint64, prof chaos.Profile, access string) (ScalePoint, error) {
		ds, sys, err := env()
		if err != nil {
			return ScalePoint{}, err
		}
		cell := e
		cell.Chaos = prof
		cell.Access = access
		return cell.cell(ds, sys, gpus, loader, seed)
	}
}

// effectiveChaos resolves one cell's fault profile: a declared profile axis
// fully determines it — an empty column there is a genuinely clean baseline,
// matching the sweep engine's default binding — while grids without the
// axis fall back to the experiment's own Chaos field.
func effectiveChaos(e Experiment, g *sweep.Grid, fi int) chaos.Profile {
	if len(g.Profiles) > 0 {
		return g.Profiles[fi].Profile
	}
	return e.Chaos
}

// effectiveAccess resolves one cell's access-pattern spec by the same rule:
// a declared pattern axis fully determines it (the empty column is the
// explicit uniform baseline); without the axis the experiment's own Access
// field applies.
func effectiveAccess(e Experiment, g *sweep.Grid, ai int) string {
	if len(g.Patterns) > 0 {
		return g.Patterns[ai].Spec
	}
	return e.Access
}

// Grid plans the experiment as a sweep grid: one row per GPU count, one
// column per loader, BaseSeed = the experiment's seed (so replica 0
// reproduces the legacy serial loop bit for bit).
func (e Experiment) Grid(replicas int) *sweep.Grid {
	rows := make([]sweep.ScenarioSpec, len(e.GPUCounts))
	for i, gpus := range e.GPUCounts {
		rows[i] = sweep.ScenarioSpec{
			ID:    fmt.Sprintf("%s-g%d", e.Name, gpus),
			Label: fmt.Sprintf("%s, %d GPUs", e.Name, gpus),
		}
	}
	cols := make([]sweep.PolicySpec, len(e.Loaders))
	for i, l := range e.Loaders {
		cols[i] = sweep.PolicySpec{Name: l.String()}
	}
	gpus, loaders := e.GPUCounts, e.Loaders
	run := sharedCells(e)
	grid := &sweep.Grid{
		Name: e.Name, Scenarios: rows, Policies: cols,
		Replicas: replicas, BaseSeed: e.Seed,
		Metrics: GridMetrics(),
	}
	// The binding closes over the grid so Profiles and Patterns axes
	// assigned by the caller (nopfs train -chaos / -access) reach the cells.
	grid.Cell = func(si, pi, fi, ai int) sweep.CellFunc {
		g, l, prof := gpus[si], loaders[pi], effectiveChaos(e, grid, fi)
		accessSpec := effectiveAccess(e, grid, ai)
		return func(ctx context.Context, seed uint64) (*sweep.Outcome, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := run(g, l, seed, prof, accessSpec)
			if err != nil {
				return nil, err
			}
			return PointOutcome(p), nil
		}
	}
	return grid
}

// MultiGrid plans several experiments as one grid — one row per
// (experiment, GPU count), shared loader columns — so studies like the
// Fig. 13 batch-size sweep emit a single report. Every experiment must use
// the same loaders and base seed (the presets do).
func MultiGrid(name string, exps []Experiment, replicas int) (*sweep.Grid, error) {
	if len(exps) == 0 {
		return nil, fmt.Errorf("trainer: grid %q has no experiments", name)
	}
	for _, e := range exps {
		if len(e.Loaders) != len(exps[0].Loaders) {
			return nil, fmt.Errorf("trainer: grid %q mixes loader sets (%s)", name, e.Name)
		}
		for i, l := range e.Loaders {
			if l != exps[0].Loaders[i] {
				return nil, fmt.Errorf("trainer: grid %q mixes loader sets (%s)", name, e.Name)
			}
		}
		if e.Seed != exps[0].Seed {
			return nil, fmt.Errorf("trainer: grid %q mixes base seeds (%s)", name, e.Name)
		}
	}
	type rowKey struct {
		exp  int
		gpus int
	}
	var rows []sweep.ScenarioSpec
	var keys []rowKey
	for ei, e := range exps {
		for _, gpus := range e.GPUCounts {
			rows = append(rows, sweep.ScenarioSpec{
				ID:    fmt.Sprintf("%s-g%d", e.Name, gpus),
				Label: fmt.Sprintf("%s, %d GPUs", e.Name, gpus),
			})
			keys = append(keys, rowKey{ei, gpus})
		}
	}
	cols := make([]sweep.PolicySpec, len(exps[0].Loaders))
	for i, l := range exps[0].Loaders {
		cols[i] = sweep.PolicySpec{Name: l.String()}
	}
	loaders := exps[0].Loaders
	runs := make([]func(int, Loader, uint64, chaos.Profile, string) (ScalePoint, error), len(exps))
	for i, e := range exps {
		runs[i] = sharedCells(e)
	}
	grid := &sweep.Grid{
		Name: name, Scenarios: rows, Policies: cols,
		Replicas: replicas, BaseSeed: exps[0].Seed,
		Metrics: GridMetrics(),
	}
	grid.Cell = func(si, pi, fi, ai int) sweep.CellFunc {
		k, l, prof := keys[si], loaders[pi], effectiveChaos(exps[keys[si].exp], grid, fi)
		accessSpec := effectiveAccess(exps[keys[si].exp], grid, ai)
		return func(ctx context.Context, seed uint64) (*sweep.Outcome, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := runs[k.exp](k.gpus, l, seed, prof, accessSpec)
			if err != nil {
				return nil, err
			}
			return PointOutcome(p), nil
		}
	}
	return grid, nil
}

// PointsFromReport recovers the per-cell ScalePoints of a trainer grid
// report, in deterministic cell order.
func PointsFromReport(rep *sweep.Report) ([]ScalePoint, error) {
	points := make([]ScalePoint, len(rep.Cells))
	for i, c := range rep.Cells {
		p, ok := c.Outcome.Payload.(ScalePoint)
		if !ok {
			return nil, fmt.Errorf("trainer: report %q cell %d carries no scale point", rep.Grid, i)
		}
		points[i] = p
	}
	return points, nil
}
