package trainer

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/sweep"
)

// smallFig10 trims the Piz Daint preset to a fast 2×4 grid.
func smallFig10() Experiment {
	exp := Fig10PizDaint(0.05)
	exp.GPUCounts = []int{32, 64}
	return exp
}

// TestGridMatchesSerialCells pins the engine path to the cell primitive: the
// grid-run experiment must reproduce a hand-rolled serial loop exactly, in
// the same (GPU count, loader) order.
func TestGridMatchesSerialCells(t *testing.T) {
	exp := smallFig10()
	got, err := exp.RunParallel(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var want []ScalePoint
	for _, gpus := range exp.GPUCounts {
		for _, loader := range exp.Loaders {
			p, err := exp.Cell(gpus, loader, exp.Seed)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, p)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("engine produced %d points, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Loader != w.Loader || g.GPUs != w.GPUs {
			t.Errorf("point %d is %s@%d, want %s@%d", i, g.Loader, g.GPUs, w.Loader, w.GPUs)
		}
		if g.MedianEpoch != w.MedianEpoch || g.StallSeconds != w.StallSeconds {
			t.Errorf("%s@%d: engine %.6f/%.6f != serial %.6f/%.6f",
				w.Loader, w.GPUs, g.MedianEpoch, g.StallSeconds, w.MedianEpoch, w.StallSeconds)
		}
	}
}

// TestTrainerGridDeterministicAcrossParallelism is the acceptance invariant
// behind `nopfs-train -parallel`: serialised trainer reports are
// byte-identical at any pool width.
func TestTrainerGridDeterministicAcrossParallelism(t *testing.T) {
	encode := func(parallel int) (jsonB, csvB, textB []byte) {
		t.Helper()
		rep, err := (&sweep.Runner{Parallel: parallel}).Run(context.Background(), smallFig10().Grid(2))
		if err != nil {
			t.Fatal(err)
		}
		var j, c, x bytes.Buffer
		if err := sweep.WriteJSON(&j, rep); err != nil {
			t.Fatal(err)
		}
		if err := sweep.WriteCSV(&c, rep); err != nil {
			t.Fatal(err)
		}
		if err := sweep.WriteText(&x, rep); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes(), x.Bytes()
	}
	j1, c1, x1 := encode(1)
	j8, c8, x8 := encode(8)
	if !bytes.Equal(j1, j8) {
		t.Error("trainer JSON reports differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("trainer CSV reports differ between -parallel 1 and -parallel 8")
	}
	if !bytes.Equal(x1, x8) {
		t.Error("trainer text reports differ between -parallel 1 and -parallel 8")
	}
}

// TestMultiGridFig13 runs the batch-size sweep as one engine grid and
// checks rows, columns, and payload recovery.
func TestMultiGridFig13(t *testing.T) {
	exps := Fig13BatchSweep(0.05)
	grid, err := MultiGrid("fig13", exps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Scenarios) != 4 || len(grid.Policies) != 3 {
		t.Fatalf("fig13 grid is %d×%d, want 4×3", len(grid.Scenarios), len(grid.Policies))
	}
	rep, err := (&sweep.Runner{}).Run(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	points, err := PointsFromReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 12 {
		t.Fatalf("%d points, want 12", len(points))
	}
	for _, p := range points {
		if p.GPUs != 128 {
			t.Errorf("point at %d GPUs, want 128", p.GPUs)
		}
	}

	// Mixed loader sets must be rejected.
	bad := []Experiment{exps[0], smallFig10()}
	if _, err := MultiGrid("bad", bad, 1); err == nil {
		t.Error("MultiGrid accepted mixed loader sets")
	}
}

// TestFig16GridShape checks the end-to-end grid carries curves in payloads
// and totals in metrics.
func TestFig16GridShape(t *testing.T) {
	rep, err := (&sweep.Runner{}).Run(context.Background(), Fig16Grid(0.05, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("%d cells, want 3 loaders", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		res, ok := c.Outcome.Payload.(EndToEndResult)
		if !ok {
			t.Fatalf("cell %s carries no EndToEndResult", c.Policy)
		}
		if c.Outcome.Failed {
			continue
		}
		if len(res.Curve) != 90 {
			t.Errorf("%s: %d-epoch curve, want 90", c.Policy, len(res.Curve))
		}
		if got := c.Outcome.Values[MetricTotalS]; got != res.TotalSeconds {
			t.Errorf("%s: total_s metric %.3f != payload %.3f", c.Policy, got, res.TotalSeconds)
		}
	}
}
