// Package trainer reproduces the paper's real-system evaluation (Sec. 7,
// Figs. 10-16) on top of the performance simulator.
//
// The paper measures PyTorch's DataLoader, DALI, the LBANN data store, and
// NoPFS on the Piz Daint and Lassen supercomputers. Neither machine nor the
// frameworks are available here, so each loader is modelled as the I/O
// policy it implements (see DESIGN.md's substitution table):
//
//   - PyTorch DataLoader  → sim.StagingBuffer (double-buffered PFS reads)
//   - DALI                → StagingBuffer with preprocessing offloaded to
//     GPU (5x the baseline preprocessing rate)
//   - LBANN data store    → sim.LBANN dynamic (first-touch RAM cache)
//   - NoPFS               → sim.NoPFS
//   - "No I/O"            → sim.LowerBound (synthetic-data baseline)
//
// Epoch times, per-batch distributions, stall breakdowns, and cache
// statistics all come from the simulator under the paper's machine presets.
package trainer

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/hwspec"
	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Loader identifies one of the compared data-loading frameworks.
type Loader int

// The frameworks of the paper's Sec. 7 comparison.
const (
	LoaderPyTorch Loader = iota
	LoaderDALI
	LoaderLBANN
	LoaderNoPFS
	LoaderNoIO
)

// String returns the plot label.
func (l Loader) String() string {
	switch l {
	case LoaderPyTorch:
		return "PyTorch"
	case LoaderDALI:
		return "PyTorch+DALI"
	case LoaderLBANN:
		return "LBANN"
	case LoaderNoPFS:
		return "NoPFS"
	case LoaderNoIO:
		return "No I/O"
	default:
		return fmt.Sprintf("loader(%d)", int(l))
	}
}

// Policy returns the simulator policy implementing the loader.
func (l Loader) Policy() (sim.Policy, error) {
	switch l {
	case LoaderPyTorch, LoaderDALI:
		return sim.NewStagingBuffer(), nil
	case LoaderLBANN:
		return sim.NewLBANN(false), nil
	case LoaderNoPFS:
		return sim.NewNoPFS(), nil
	case LoaderNoIO:
		return sim.NewLowerBound(), nil
	}
	return nil, fmt.Errorf("trainer: unknown loader %d", int(l))
}

// AdjustWorkload applies loader-specific workload changes: DALI offloads
// decoding and augmentation to the GPU, which we model as a 5x faster
// preprocessing stage.
func (l Loader) AdjustWorkload(w hwspec.Workload) hwspec.Workload {
	if l == LoaderDALI {
		w.PreprocMBps *= 5
	}
	return w
}

// ScalePoint is one (loader, GPU count) measurement of a scaling experiment.
type ScalePoint struct {
	Loader string
	GPUs   int
	Failed bool
	Reason string

	// Median per-epoch time excluding epoch 0, with a 95% CI — the
	// paper's headline metric (Figs. 10, 14, 15).
	MedianEpoch   float64
	EpochCILow    float64
	EpochCIHigh   float64
	Epoch0Seconds float64

	// Batch summarises per-batch times excluding epoch 0 (the violin
	// plots); Batch0 covers epoch 0 only (Fig. 11).
	Batch  stats.Summary
	Batch0 stats.Summary

	// StallSeconds and the fetch-location mix reproduce Fig. 12.
	StallSeconds float64
	LocFraction  map[perfmodel.Location]float64

	ExecSeconds float64
}

// pointFromResult converts a simulator result into a ScalePoint.
func pointFromResult(loader string, gpus, epochs, batchesPerEpoch int, r *sim.Result) ScalePoint {
	p := ScalePoint{Loader: loader, GPUs: gpus, ExecSeconds: r.ExecSeconds}
	if r.Failed {
		p.Failed = true
		p.Reason = r.FailReason
		return p
	}
	if len(r.EpochSeconds) > 0 {
		p.Epoch0Seconds = r.EpochSeconds[0]
	}
	if len(r.EpochSeconds) > 1 {
		rest := append([]float64(nil), r.EpochSeconds[1:]...)
		s := stats.Summarize(rest)
		p.MedianEpoch, p.EpochCILow, p.EpochCIHigh = s.Median, s.CILow, s.CIHigh
	} else if len(r.EpochSeconds) == 1 {
		p.MedianEpoch = r.EpochSeconds[0]
	}
	if batchesPerEpoch > 0 && len(r.BatchSeconds) > batchesPerEpoch {
		p.Batch0 = stats.Summarize(r.BatchSeconds[:batchesPerEpoch])
		p.Batch = stats.Summarize(r.BatchSeconds[batchesPerEpoch:])
	} else {
		p.Batch = stats.Summarize(r.BatchSeconds)
		p.Batch0 = p.Batch
	}
	p.StallSeconds = r.StallSeconds
	var total int64
	for _, c := range r.LocCount {
		total += c
	}
	p.LocFraction = map[perfmodel.Location]float64{}
	if total > 0 {
		for loc, c := range r.LocCount {
			p.LocFraction[loc] = float64(c) / float64(total)
		}
	}
	return p
}

// Experiment is a scaling study: one dataset and machine, several loaders,
// several GPU counts.
type Experiment struct {
	Name string
	Sys  hwspec.System
	Spec dataset.Spec
	// Workload returns the workload for a given worker count (compute
	// rate, preprocessing rate, batch size, epochs).
	Workload func(workers int) hwspec.Workload
	// GPUCounts are the x-axis points (one rank per GPU, as on Lassen).
	GPUCounts []int
	Loaders   []Loader
	// Scale shrinks the dataset and cache capacities together (1 = paper
	// scale).
	Scale  float64
	Seed   uint64
	Jitter float64
	// Chaos injects a fault/degradation scenario into every cell (zero =
	// fault-free, identical to the paper's healthy clusters).
	Chaos chaos.Profile
	// Access is the workload access-pattern spec stamped onto every cell
	// ("" = the classic uniform shuffle; see access.ParseAccessSpec).
	Access string
}

// scaled returns the experiment's dataset spec and system at its Scale.
func (e Experiment) scaled() (dataset.Spec, hwspec.System) {
	spec := e.Spec
	sys := e.Sys
	if e.Scale != 1 {
		spec = spec.Scale(e.Scale)
		sys = sim.ScaleSystem(sys, e.Scale)
	}
	return spec, sys
}

// Cell simulates one (GPU count, loader) point of the experiment with the
// given shuffle seed. It is a pure function of its arguments — no shared
// mutable state — so the sweep engine may execute cells concurrently.
func (e Experiment) Cell(gpus int, loader Loader, seed uint64) (ScalePoint, error) {
	spec, sys := e.scaled()
	ds, err := dataset.Cached(spec)
	if err != nil {
		return ScalePoint{}, err
	}
	return e.cell(ds, sys, gpus, loader, seed)
}

// Config builds (and validates) the simulator configuration for one
// (GPU count, loader) cell without running it — the dry-run explain path's
// view of the experiment.
func (e Experiment) Config(gpus int, loader Loader, seed uint64) (sim.Config, error) {
	spec, sys := e.scaled()
	ds, err := dataset.Cached(spec)
	if err != nil {
		return sim.Config{}, err
	}
	return e.config(ds, sys, gpus, loader, seed)
}

// config assembles the cell's sim.Config against a pre-built dataset.
func (e Experiment) config(ds *dataset.Synthetic, sys hwspec.System, gpus int, loader Loader, seed uint64) (sim.Config, error) {
	work := loader.AdjustWorkload(e.Workload(gpus))
	cfg := sim.Config{
		Sys: sys, Work: work, DS: ds,
		Seed: seed, PFSJitter: e.Jitter, DropLast: true,
		Chaos: e.Chaos, Access: e.Access,
	}
	if err := cfg.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("%s @%d GPUs (%s): %w", e.Name, gpus, loader, err)
	}
	return cfg, nil
}

// cell is Cell against a pre-built dataset: grid closures build the O(F)
// dataset once per experiment and share it across cells (datasets are
// read-only after construction and safe for concurrent readers).
func (e Experiment) cell(ds *dataset.Synthetic, sys hwspec.System, gpus int, loader Loader, seed uint64) (ScalePoint, error) {
	cfg, err := e.config(ds, sys, gpus, loader, seed)
	if err != nil {
		return ScalePoint{}, err
	}
	work := cfg.Work
	pol, err := loader.Policy()
	if err != nil {
		return ScalePoint{}, err
	}
	r, err := sim.Run(cfg, pol)
	if err != nil {
		return ScalePoint{}, fmt.Errorf("%s @%d GPUs (%s): %w", e.Name, gpus, loader, err)
	}
	plan := cfg.Plan()
	batchesPerEpoch := plan.SamplesPerEpoch(0) / work.BatchPerWorker
	return pointFromResult(loader.String(), gpus, work.Epochs, batchesPerEpoch, r), nil
}

// Run executes the experiment — every loader at every GPU count — through
// the sweep engine on a GOMAXPROCS-wide pool. Results are in (GPU count,
// loader) order, exactly as the former serial loop produced them, and are
// bit-identical at any pool width.
func (e Experiment) Run(ctx context.Context) ([]ScalePoint, error) {
	return e.RunParallel(ctx, 0)
}

// RunParallel is Run with an explicit engine pool width (0 = GOMAXPROCS,
// 1 = serial).
func (e Experiment) RunParallel(ctx context.Context, parallel int) ([]ScalePoint, error) {
	rep, err := (&sweep.Runner{Parallel: parallel}).Run(ctx, e.Grid(1))
	if err != nil {
		return nil, err
	}
	return PointsFromReport(rep)
}
