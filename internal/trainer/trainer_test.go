package trainer

import (
	"context"
	"math"
	"testing"

	"repro/internal/perfmodel"
)

// Test scales: large enough that 64-rank runs still have full batches.
const (
	// ImageNet-1k at 0.1 => F=128,116: large enough that 256 ranks still
	// run several batches per epoch (meaningful per-batch statistics),
	// small enough for fast tests.
	scalePD = 0.1
	scaleLA = 0.1
)

func pointsByLoader(points []ScalePoint, gpus int) map[string]ScalePoint {
	out := map[string]ScalePoint{}
	for _, p := range points {
		if p.GPUs == gpus {
			out[p.Loader] = p
		}
	}
	return out
}

func TestLoaderStringsAndPolicies(t *testing.T) {
	for _, l := range []Loader{LoaderPyTorch, LoaderDALI, LoaderLBANN, LoaderNoPFS, LoaderNoIO} {
		if l.String() == "" {
			t.Errorf("loader %d has empty label", int(l))
		}
		if _, err := l.Policy(); err != nil {
			t.Errorf("loader %s: %v", l, err)
		}
	}
	if _, err := Loader(99).Policy(); err == nil {
		t.Error("unknown loader accepted")
	}
}

func TestDALIBoostsPreprocessing(t *testing.T) {
	base := Fig10PizDaint(1).Workload(32)
	dali := LoaderDALI.AdjustWorkload(base)
	if dali.PreprocMBps != 5*base.PreprocMBps {
		t.Errorf("DALI preprocessing = %v, want 5x %v", dali.PreprocMBps, base.PreprocMBps)
	}
	if got := LoaderPyTorch.AdjustWorkload(base); got.PreprocMBps != base.PreprocMBps {
		t.Error("PyTorch adjusted the workload")
	}
}

func TestFig10PizDaintShape(t *testing.T) {
	exp := Fig10PizDaint(scalePD)
	exp.GPUCounts = []int{32, 256}
	points, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	at256 := pointsByLoader(points, 256)
	noIO := at256[LoaderNoIO.String()]
	nopfs := at256[LoaderNoPFS.String()]
	pytorch := at256[LoaderPyTorch.String()]
	dali := at256[LoaderDALI.String()]

	// Paper: NoPFS 2.2x faster than PyTorch and 1.9x faster than DALI at
	// 256 GPUs on Piz Daint; NoPFS near the no-I/O bound.
	if r := pytorch.MedianEpoch / nopfs.MedianEpoch; r < 1.6 || r > 3.5 {
		t.Errorf("PyTorch/NoPFS epoch ratio at 256 GPUs = %.2f, want ~2.2 (1.6-3.5)", r)
	}
	if r := dali.MedianEpoch / nopfs.MedianEpoch; r < 1.4 {
		t.Errorf("DALI/NoPFS ratio = %.2f, want >= 1.4 (paper: 1.9)", r)
	}
	if dali.MedianEpoch > pytorch.MedianEpoch*1.01 {
		t.Errorf("DALI (%.2f) slower than PyTorch (%.2f); should be a small improvement",
			dali.MedianEpoch, pytorch.MedianEpoch)
	}
	if r := nopfs.MedianEpoch / noIO.MedianEpoch; r > 1.35 {
		t.Errorf("NoPFS/No-I/O = %.2f at 256 GPUs, want close to 1", r)
	}

	// At 32 GPUs the PFS is uncontended: the gap must be small.
	at32 := pointsByLoader(points, 32)
	r32 := at32[LoaderPyTorch.String()].MedianEpoch / at32[LoaderNoPFS.String()].MedianEpoch
	r256 := pytorch.MedianEpoch / nopfs.MedianEpoch
	if r32 > r256 {
		t.Errorf("PyTorch/NoPFS gap shrank with scale: %.2f at 32 vs %.2f at 256", r32, r256)
	}
	if r32 > 1.5 {
		t.Errorf("PyTorch/NoPFS = %.2f at 32 GPUs, want small gap at small scale", r32)
	}
}

func TestFig10LassenShape(t *testing.T) {
	exp := Fig10Lassen(scaleLA)
	exp.GPUCounts = []int{32, 256}
	points, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	at256 := pointsByLoader(points, 256)
	pytorch := at256[LoaderPyTorch.String()]
	lbann := at256[LoaderLBANN.String()]
	nopfs := at256[LoaderNoPFS.String()]
	if pytorch.Failed || lbann.Failed || nopfs.Failed {
		t.Fatalf("unexpected failure: %+v %+v %+v", pytorch.Reason, lbann.Reason, nopfs.Reason)
	}
	// NoPFS fastest; LBANN between NoPFS and PyTorch (paper Fig. 10 right).
	if !(nopfs.MedianEpoch <= lbann.MedianEpoch*1.001 && lbann.MedianEpoch <= pytorch.MedianEpoch*1.001) {
		t.Errorf("expected NoPFS (%.2f) <= LBANN (%.2f) <= PyTorch (%.2f)",
			nopfs.MedianEpoch, lbann.MedianEpoch, pytorch.MedianEpoch)
	}
	if r := pytorch.MedianEpoch / nopfs.MedianEpoch; r < 1.5 {
		t.Errorf("PyTorch/NoPFS at 256 Lassen GPUs = %.2f, want substantial gap", r)
	}
}

func TestBatchTailVariance(t *testing.T) {
	// Paper: after epoch 0, PyTorch exhibits batch-time tail events an
	// order of magnitude above NoPFS's; NoPFS batches are consistently
	// fast.
	// 128 GPUs: the PFS per-client share sits right at ResNet-50's compute
	// rate, so jitter spikes surface directly as slow batches, and the
	// scaled dataset still yields many batches per epoch.
	exp := Fig10PizDaint(scalePD)
	exp.GPUCounts = []int{128}
	points, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := pointsByLoader(points, 128)
	pytorch, nopfs := m[LoaderPyTorch.String()], m[LoaderNoPFS.String()]
	relTail := func(p ScalePoint) float64 { return p.Batch.Max / p.Batch.Median }
	if relTail(pytorch) < 2*relTail(nopfs) {
		t.Errorf("PyTorch tail (%.1fx median) should far exceed NoPFS tail (%.1fx)",
			relTail(pytorch), relTail(nopfs))
	}
	if nopfs.Batch.P99 > 3*nopfs.Batch.Median {
		t.Errorf("NoPFS p99 batch (%.4f) too far above median (%.4f)", nopfs.Batch.P99, nopfs.Batch.Median)
	}
}

func TestEpoch0HighVarianceForAll(t *testing.T) {
	// Fig. 11: in epoch 0 everyone reads cold data from the PFS, so even
	// NoPFS shows elevated batch times there.
	exp := Fig10PizDaint(scalePD)
	exp.GPUCounts = []int{128}
	points, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := pointsByLoader(points, 128)
	nopfs := m[LoaderNoPFS.String()]
	if nopfs.Batch0.Mean < nopfs.Batch.Mean {
		t.Errorf("NoPFS epoch-0 mean batch (%.4f) below steady-state (%.4f); cold epoch should cost more",
			nopfs.Batch0.Mean, nopfs.Batch.Mean)
	}
}

func TestFig12FetchMixShiftsWithScale(t *testing.T) {
	// Paper Fig. 12: as GPU count grows, NoPFS shifts fetches from the PFS
	// toward remote workers; local+remote dominates everywhere after
	// epoch 0.
	exp := Fig10Lassen(scaleLA)
	exp.GPUCounts = []int{32, 256}
	points, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cache := Fig12CacheStats(points)
	if len(cache) != 2 {
		t.Fatalf("expected 2 NoPFS points, got %d", len(cache))
	}
	frac := func(p ScalePoint, loc perfmodel.Location) float64 { return p.LocFraction[loc] }
	small, large := cache[0], cache[1]
	if small.GPUs > large.GPUs {
		small, large = large, small
	}
	if frac(large, perfmodel.LocRemote) <= frac(small, perfmodel.LocRemote) {
		t.Errorf("remote fraction did not grow with scale: %.2f @%d vs %.2f @%d",
			frac(small, perfmodel.LocRemote), small.GPUs, frac(large, perfmodel.LocRemote), large.GPUs)
	}
	for _, p := range cache {
		if cached := frac(p, perfmodel.LocLocal) + frac(p, perfmodel.LocRemote); cached < 0.5 {
			t.Errorf("@%d GPUs only %.2f of fetches from caches", p.GPUs, cached)
		}
	}
}

func TestFig13BatchSizeSweep(t *testing.T) {
	var nopfsMedians, pytorchMedians []float64
	for _, exp := range Fig13BatchSweep(scaleLA) {
		points, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		m := pointsByLoader(points, 128)
		pytorch, nopfs := m[LoaderPyTorch.String()], m[LoaderNoPFS.String()]
		// NoPFS faster at every batch size.
		if nopfs.Batch.Median > pytorch.Batch.Median*1.001 {
			t.Errorf("%s: NoPFS median batch (%.4f) above PyTorch (%.4f)",
				exp.Name, nopfs.Batch.Median, pytorch.Batch.Median)
		}
		nopfsMedians = append(nopfsMedians, nopfs.Batch.Median)
		pytorchMedians = append(pytorchMedians, pytorch.Batch.Median)
	}
	// Per-batch time grows with batch size for both loaders.
	for i := 1; i < len(nopfsMedians); i++ {
		if nopfsMedians[i] <= nopfsMedians[i-1] {
			t.Errorf("NoPFS batch time did not grow with batch size: %v", nopfsMedians)
		}
		if pytorchMedians[i] <= pytorchMedians[i-1] {
			t.Errorf("PyTorch batch time did not grow with batch size: %v", pytorchMedians)
		}
	}
}

func TestFig14And15NoPFSWins(t *testing.T) {
	for _, mk := range []func(float64) Experiment{Fig14Lassen, Fig15Lassen} {
		exp := mk(scaleLA)
		exp.GPUCounts = []int{64}
		points, err := exp.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		m := pointsByLoader(points, 64)
		pytorch, nopfs := m[LoaderPyTorch.String()], m[LoaderNoPFS.String()]
		if nopfs.MedianEpoch > pytorch.MedianEpoch*1.001 {
			t.Errorf("%s: NoPFS (%.2f) slower than PyTorch (%.2f)", exp.Name, nopfs.MedianEpoch, pytorch.MedianEpoch)
		}
	}
}

func TestResNet50Top1Curve(t *testing.T) {
	if ResNet50Top1(0) != 0 {
		t.Error("accuracy at epoch 0 should be 0")
	}
	if got := ResNet50Top1(90); math.Abs(got-76.5) > 0.2 {
		t.Errorf("final accuracy = %.2f, want 76.5 (paper)", got)
	}
	if got := ResNet50Top1(1000); got != 76.5 {
		t.Errorf("post-schedule accuracy = %.2f, want 76.5", got)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for e := 1; e <= 90; e++ {
		v := ResNet50Top1(float64(e))
		if v < prev-1e-9 {
			t.Errorf("accuracy decreased at epoch %d: %.3f -> %.3f", e, prev, v)
		}
		prev = v
	}
	// Learning-rate drop at 30 and 60 must produce a visible jump.
	if ResNet50Top1(33)-ResNet50Top1(30) < 1 {
		t.Error("no visible jump after the epoch-30 LR drop")
	}
}

func TestFig16EndToEnd(t *testing.T) {
	results, err := Fig16EndToEnd(context.Background(), scaleLA)
	if err != nil {
		t.Fatal(err)
	}
	byLoader := map[string]EndToEndResult{}
	for _, r := range results {
		byLoader[r.Loader] = r
	}
	pytorch := byLoader[LoaderPyTorch.String()]
	nopfs := byLoader[LoaderNoPFS.String()]
	if len(pytorch.Curve) != 90 || len(nopfs.Curve) != 90 {
		t.Fatalf("expected 90-epoch curves, got %d and %d", len(pytorch.Curve), len(nopfs.Curve))
	}
	// Same accuracy trajectory per epoch (randomization preserved).
	for e := range nopfs.Curve {
		if nopfs.Curve[e].Top1Percent != pytorch.Curve[e].Top1Percent {
			t.Fatalf("accuracy-vs-epoch differs between loaders at epoch %d", e)
		}
	}
	if math.Abs(nopfs.FinalTop1-76.5) > 0.2 {
		t.Errorf("final top-1 = %.2f, want 76.5", nopfs.FinalTop1)
	}
	// NoPFS reaches the same accuracy faster (paper: 1.42x at 256 GPUs).
	speedup := pytorch.TotalSeconds / nopfs.TotalSeconds
	if speedup < 1.1 {
		t.Errorf("end-to-end speedup = %.2f, want > 1.1 (paper: 1.42)", speedup)
	}
	// Time axis strictly increasing.
	for e := 1; e < len(nopfs.Curve); e++ {
		if nopfs.Curve[e].Seconds <= nopfs.Curve[e-1].Seconds {
			t.Errorf("curve time not increasing at epoch %d", e)
		}
	}
}

func BenchmarkFig10LassenOnePoint(b *testing.B) {
	exp := Fig10Lassen(scaleLA)
	exp.GPUCounts = []int{64}
	exp.Loaders = []Loader{LoaderNoPFS}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
