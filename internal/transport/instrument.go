package transport

import (
	"context"
	"time"
)

// CallObserver receives one completed outbound Call: the request sent,
// whether it succeeded (err == nil), and its wall-clock duration in seconds.
type CallObserver func(req Request, ok bool, seconds float64)

// instrumented decorates a Network, timing outbound Calls. Serving-side
// traffic is untouched: the handler still sees the raw endpoint's context.
type instrumented struct {
	Network
	obs CallObserver
}

// Instrument wraps n so every outbound Call is reported to obs. A nil
// observer returns n unchanged, so the uninstrumented path stays
// decorator-free.
func Instrument(n Network, obs CallObserver) Network {
	if obs == nil {
		return n
	}
	return &instrumented{Network: n, obs: obs}
}

func (i *instrumented) Call(ctx context.Context, to int, req Request) (Response, error) {
	start := time.Now()
	resp, err := i.Network.Call(ctx, to, req)
	i.obs(req, err == nil, time.Since(start).Seconds())
	return resp, err
}
