package transport

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/storage"
)

// TCPEndpoint is a Network over loopback TCP sockets, using a compact
// length-prefixed binary protocol. It demonstrates that the middleware's
// fabric needs nothing beyond the standard library: swap the channel fabric
// for this one and real bytes cross real sockets.
type TCPEndpoint struct {
	rank     int
	addrs    []string
	listener net.Listener
	limiter  *storage.Limiter

	// life is the endpoint's lifetime context, canceled by Close; serve
	// loops run handlers and limiter waits under it.
	life     context.Context
	lifeStop context.CancelFunc

	mu      sync.Mutex
	handler Handler
	closed  bool
	// conns tracks every open connection — accepted and dialled — so Close
	// can sever them: an in-flight Call returns a clean error instead of
	// hanging on a peer that will never respond.
	conns map[net.Conn]struct{}
	// acceptOnce ensures one accept loop no matter how often the handler
	// is replaced, matching ChanEndpoint.
	acceptOnce sync.Once
	// closeOnce makes Close idempotent: a crash handler may close the
	// endpoint early and Job.Close will close it again on teardown.
	closeOnce sync.Once
	closeErr  error
}

// track registers an open connection; it reports false (and closes the
// connection) when the endpoint is already closed.
func (e *TCPEndpoint) track(conn net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		conn.Close()
		return false
	}
	if e.conns == nil {
		e.conns = make(map[net.Conn]struct{})
	}
	e.conns[conn] = struct{}{}
	return true
}

// untrack forgets a connection once its owner is done with it.
func (e *TCPEndpoint) untrack(conn net.Conn) {
	e.mu.Lock()
	delete(e.conns, conn)
	e.mu.Unlock()
}

// NewTCPNetwork builds an n-worker fabric on 127.0.0.1 ephemeral ports.
func NewTCPNetwork(n int, limiter *storage.Limiter) ([]*TCPEndpoint, error) {
	eps := make([]*TCPEndpoint, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for j := 0; j < i; j++ {
				eps[j].Close()
			}
			return nil, fmt.Errorf("transport: listen: %w", err)
		}
		//lint:ignore ctxfirst endpoint-lifetime root created at construction; Close calls lifeStop to sever it
		life, stop := context.WithCancel(context.Background())
		eps[i] = &TCPEndpoint{rank: i, listener: l, limiter: limiter, life: life, lifeStop: stop}
		addrs[i] = l.Addr().String()
	}
	for _, e := range eps {
		e.addrs = addrs
	}
	return eps, nil
}

// Rank implements Network.
func (e *TCPEndpoint) Rank() int { return e.rank }

// Size implements Network.
func (e *TCPEndpoint) Size() int { return len(e.addrs) }

// SetHandler implements Network and starts the accept loop on first call;
// later calls just replace the handler (latest wins).
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
	e.acceptOnce.Do(func() {
		//lint:ignore goroutine accept loop's teardown is the listener itself: Close closes it and Accept returns an error
		go func() {
			for {
				conn, err := e.listener.Accept()
				if err != nil {
					return // listener closed
				}
				go e.serve(conn)
			}
		}()
	})
}

func (e *TCPEndpoint) serve(conn net.Conn) {
	if !e.track(conn) {
		return
	}
	defer e.untrack(conn)
	defer conn.Close()
	var buf [reqSize]byte
	for {
		if _, err := io.ReadFull(conn, buf[:]); err != nil {
			return
		}
		from, req, err := decodeRequest(buf[:])
		if err != nil {
			return
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		resp := Response{}
		if h != nil {
			resp = h(e.life, from, req)
		}
		if len(resp.Data) > 0 {
			if err := e.limiter.Wait(e.life, int64(len(resp.Data))); err != nil {
				return // endpoint closed mid-response
			}
		}
		var head [respHeadSize]byte
		if err := encodeResponseHeader(&head, resp); err != nil {
			return // over-cap payload: sever rather than desync the stream
		}
		if _, err := conn.Write(head[:]); err != nil {
			return
		}
		if len(resp.Data) > 0 {
			if _, err := conn.Write(resp.Data); err != nil {
				return
			}
		}
	}
}

// Call implements Network. Connections are per-call: simple, correct, and
// plenty for loopback validation (a production fabric would pool them).
// Canceling ctx severs the connection, unblocking any in-flight read or
// write with ctx's error. A severed or half-closed connection fails fast
// with an ErrUnreachable-classified error after one re-dial: requests are
// idempotent reads, so retrying a broken exchange on a fresh connection is
// safe, and a second consecutive break means the peer is genuinely gone.
func (e *TCPEndpoint) Call(ctx context.Context, to int, req Request) (Response, error) {
	resp, err, retryable := e.callOnce(ctx, to, req)
	if retryable && ctx.Err() == nil {
		resp, err, _ = e.callOnce(ctx, to, req)
	}
	return resp, err
}

// callOnce performs one dial-exchange-close cycle. The third return
// reports whether the failure was a connection-level break worth one
// re-dial (as opposed to cancellation, a closed endpoint, or a protocol
// error).
func (e *TCPEndpoint) callOnce(ctx context.Context, to int, req Request) (Response, error, bool) {
	if to < 0 || to >= len(e.addrs) {
		return Response{}, fmt.Errorf("transport: rank %d out of range", to), false
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return Response{}, ErrClosed, false
	}
	if err := ctx.Err(); err != nil {
		return Response{}, err, false
	}
	conn, err := (&net.Dialer{}).DialContext(ctx, "tcp", e.addrs[to])
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Response{}, cerr, false
		}
		// A refused or failed dial is peer-down evidence: the peer's
		// listener is gone (its Close ran) or the host is unreachable.
		return Response{}, fmt.Errorf("transport: dial rank %d: %w: %w", to, ErrUnreachable, err), true
	}
	// Register the outgoing connection so closing this endpoint severs
	// in-flight calls; Close may have raced the dial, in which case track
	// already closed the connection. Cancellation severs it the same way.
	if !e.track(conn) {
		return Response{}, ErrClosed, false
	}
	defer e.untrack(conn)
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	// sever maps an I/O failure on the established connection: to the
	// context's error when cancellation severed it, to ErrClosed when our
	// own Close did, and otherwise to an ErrUnreachable-classified broken
	// connection (the peer closed, crashed, or reset mid-exchange) that
	// the caller may retry on a fresh dial.
	sever := func(op string, err error) (Response, error, bool) {
		if cerr := ctx.Err(); cerr != nil {
			return Response{}, cerr, false
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return Response{}, ErrClosed, false
		}
		return Response{}, fmt.Errorf("transport: %s rank %d: %w: %w", op, to, ErrUnreachable, err), true
	}

	var buf [reqSize]byte
	encodeRequest(&buf, e.rank, req)
	if _, err := conn.Write(buf[:]); err != nil {
		return sever("write to", err)
	}

	var head [respHeadSize]byte
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return sever("read from", err)
	}
	resp, n, err := decodeResponseHeader(head[:])
	if err != nil {
		// A malformed header is a protocol error, not a broken peer; do
		// not classify it as unreachable or retry it.
		return Response{}, fmt.Errorf("transport: response from rank %d: %w", to, err), false
	}
	if n > 0 {
		resp.Data = make([]byte, n)
		if _, err := io.ReadFull(conn, resp.Data); err != nil {
			return sever("read from", err)
		}
	}
	return resp, nil, false
}

// Close implements Network: it stops accepting, cancels the lifetime
// context, severs every open connection (unblocking in-flight Calls and
// serve loops on both sides), and marks the endpoint so later Calls fail
// fast with ErrClosed. It is idempotent: a crash handler may close the
// endpoint early and the job's teardown will close it again.
func (e *TCPEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		e.closed = true
		conns := make([]net.Conn, 0, len(e.conns))
		for c := range e.conns {
			conns = append(conns, c)
		}
		e.conns = nil
		e.mu.Unlock()
		e.lifeStop()
		for _, c := range conns {
			c.Close()
		}
		e.closeErr = e.listener.Close()
	})
	return e.closeErr
}
