package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// callResult carries a Call's outcome across the watchdog goroutine.
type callResult struct {
	resp Response
	err  error
}

// callWithin runs fn and fails the test if it has not returned within the
// deadline — the edge cases below must produce clean errors, never hangs.
func callWithin(t *testing.T, d time.Duration, fn func() (Response, error)) callResult {
	t.Helper()
	done := make(chan callResult, 1)
	go func() {
		resp, err := fn()
		done <- callResult{resp, err}
	}()
	select {
	case r := <-done:
		return r
	case <-time.After(d):
		t.Fatalf("call did not return within %v", d)
		return callResult{}
	}
}

// TestTCPProtocolEdgeCases covers the length-prefixed protocol's failure
// modes: truncated frames on either side, a peer closing mid-fetch, and
// fetches against closed endpoints. Every case must resolve to a clean
// error (or a served response for the surviving endpoint) without hanging.
func TestTCPProtocolEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{
			// A client that dies mid-request must not wedge the server:
			// the serve loop drops the connection and keeps accepting.
			name: "truncated request frame",
			run: func(t *testing.T) {
				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))

				raw, err := net.Dial("tcp", eps[0].addrs[0])
				if err != nil {
					t.Fatal(err)
				}
				if _, err := raw.Write([]byte{1, 2, 3}); err != nil {
					t.Fatal(err)
				}
				raw.Close()

				// The endpoint must still serve well-formed requests.
				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[1].Call(bg, 0, Request{Kind: KindFetch, Sample: 4})
				})
				if r.err != nil || !r.resp.OK || string(r.resp.Data) != "r0-s4" {
					t.Fatalf("call after truncated frame: resp=%+v err=%v", r.resp, r.err)
				}
			},
		},
		{
			// A peer that answers with a truncated response header must
			// surface as an error on the caller, not a hang or a garbage
			// response.
			name: "truncated response frame",
			run: func(t *testing.T) {
				lying, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer lying.Close()
				go func() {
					for {
						conn, err := lying.Accept()
						if err != nil {
							return
						}
						go func(conn net.Conn) {
							defer conn.Close()
							var buf [reqSize]byte
							if _, err := io.ReadFull(conn, buf[:]); err != nil {
								return
							}
							conn.Write([]byte{1, 0, 0}) // 3 of 13 header bytes
						}(conn)
					}
				}()

				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))
				eps[0].addrs[1] = lying.Addr().String() // addrs slice is shared

				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
				})
				if r.err == nil {
					t.Fatalf("truncated response accepted: %+v", r.resp)
				}
			},
		},
		{
			// Closing a peer while it is serving a fetch must unblock the
			// caller with an error: Close severs open connections.
			name: "peer closes mid-fetch",
			run: func(t *testing.T) {
				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))

				entered := make(chan struct{})
				release := make(chan struct{})
				eps[1].SetHandler(func(_ context.Context, from int, req Request) Response {
					close(entered)
					<-release
					return Response{OK: true}
				})
				defer close(release)

				done := make(chan callResult, 1)
				go func() {
					resp, err := eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
					done <- callResult{resp, err}
				}()
				<-entered
				eps[1].Close()
				select {
				case r := <-done:
					if r.err == nil {
						t.Fatalf("call against mid-fetch-closed peer succeeded: %+v", r.resp)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("call hung after peer closed mid-fetch")
				}
			},
		},
		{
			// A fetch issued after the peer closed must fail cleanly (the
			// dial is refused or the connection is reset).
			name: "fetch after peer close",
			run: func(t *testing.T) {
				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))
				eps[1].Close()

				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
				})
				if r.err == nil {
					t.Fatalf("fetch to closed peer succeeded: %+v", r.resp)
				}
				// The refused dial must carry the peer-down classification.
				if !errors.Is(r.err, ErrUnreachable) {
					t.Fatalf("want ErrUnreachable from refused dial, got %v", r.err)
				}
			},
		},
		{
			// A peer that accepts and then half-closes every connection
			// (reads the request, never answers) must fail fast with the
			// peer-down classification — even across the one re-dial —
			// not hang the caller.
			name: "half-closed connection fails fast",
			run: func(t *testing.T) {
				halfClosed, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer halfClosed.Close()
				go func() {
					for {
						conn, err := halfClosed.Accept()
						if err != nil {
							return
						}
						go func(conn net.Conn) {
							defer conn.Close()
							var buf [reqSize]byte
							io.ReadFull(conn, buf[:]) // consume, never answer
						}(conn)
					}
				}()

				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))
				eps[0].addrs[1] = halfClosed.Addr().String() // addrs slice is shared

				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
				})
				if !errors.Is(r.err, ErrUnreachable) {
					t.Fatalf("want ErrUnreachable from half-closed peer, got resp=%+v err=%v", r.resp, r.err)
				}
			},
		},
		{
			// A connection that breaks on the first exchange but serves the
			// second must succeed through Call's single re-dial.
			name: "one re-dial recovers a broken exchange",
			run: func(t *testing.T) {
				flaky, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				defer flaky.Close()
				conns := make(chan int, 16)
				go func() {
					n := 0
					for {
						conn, err := flaky.Accept()
						if err != nil {
							return
						}
						n++
						conns <- n
						go func(conn net.Conn, n int) {
							defer conn.Close()
							var buf [reqSize]byte
							if _, err := io.ReadFull(conn, buf[:]); err != nil {
								return
							}
							if n == 1 {
								return // first exchange: sever after the request
							}
							var head [respHeadSize]byte
							resp := Response{OK: true, Data: []byte("redialed")}
							if err := encodeResponseHeader(&head, resp); err != nil {
								return
							}
							conn.Write(head[:])
							conn.Write(resp.Data)
						}(conn, n)
					}
				}()

				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[0].Close()
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))
				eps[0].addrs[1] = flaky.Addr().String() // addrs slice is shared

				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
				})
				if r.err != nil || !r.resp.OK || string(r.resp.Data) != "redialed" {
					t.Fatalf("re-dial did not recover: resp=%+v err=%v", r.resp, r.err)
				}
				if got := <-conns; got != 1 {
					t.Fatalf("first connection numbered %d", got)
				}
				if got := <-conns; got != 2 {
					t.Fatalf("expected exactly one re-dial, second connection numbered %d", got)
				}
			},
		},
		{
			// Close must be idempotent: a crash handler closes the endpoint
			// early and the job's teardown closes it again.
			name: "double close is safe",
			run: func(t *testing.T) {
				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				first := eps[0].Close()
				second := eps[0].Close()
				if first != second {
					t.Fatalf("double Close changed its result: %v then %v", first, second)
				}
			},
		},
		{
			// A fetch issued after closing one's own endpoint reports
			// ErrClosed without touching the network.
			name: "fetch after own close",
			run: func(t *testing.T) {
				eps, err := NewTCPNetwork(2, nil)
				if err != nil {
					t.Fatal(err)
				}
				defer eps[1].Close()
				eps[0].SetHandler(echoHandler(0))
				eps[1].SetHandler(echoHandler(1))
				eps[0].Close()

				r := callWithin(t, 5*time.Second, func() (Response, error) {
					return eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2})
				})
				if !errors.Is(r.err, ErrClosed) {
					t.Fatalf("want ErrClosed, got %v", r.err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
