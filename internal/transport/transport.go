// Package transport is the communication substrate of the live middleware,
// standing in for the paper's MPI layer. It provides the two operations
// NoPFS needs — a setup allgather (exchanging plan digests) and
// point-to-point sample fetches — over two interchangeable fabrics: an
// in-process channel network (used by the cluster harness and tests) and a
// TCP loopback network (real sockets, same protocol).
//
// Every blocking operation is context-first: Call returns the context's
// error when the caller cancels mid-flight, and each endpoint carries a
// lifetime context (canceled by Close) under which it serves requests, so
// a canceled cluster tears its fabric down in bounded time.
package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// Request kinds.
const (
	// KindFetch asks a peer for a cached sample.
	KindFetch = uint8(iota + 1)
	// KindValue exchanges a uint64 (plan digests, progress counters).
	KindValue
)

// Request is one message to a peer.
type Request struct {
	Kind   uint8
	Sample int32
	Value  uint64
}

// Response is a peer's reply.
type Response struct {
	// OK is false for a fetch miss (the remote-progress heuristic's false
	// positive, Sec. 5.2.2 — detected, not fatal).
	OK    bool
	Value uint64
	Data  []byte
}

// Handler serves requests arriving at an endpoint. The context is the
// endpoint's lifetime: it is canceled when the endpoint closes, so a
// handler blocked on rate-limited storage unwinds instead of outliving its
// fabric.
type Handler func(ctx context.Context, from int, req Request) Response

// Network is one worker's view of the fabric.
type Network interface {
	// Rank is this worker's id in [0, Size).
	Rank() int
	// Size is the worker count.
	Size() int
	// SetHandler installs the request handler; it must be called before
	// any peer Calls this endpoint.
	SetHandler(Handler)
	// Call sends a request to a peer and waits for its response. Canceling
	// ctx unblocks the call with ctx's error.
	Call(ctx context.Context, to int, req Request) (Response, error)
	// Close releases the endpoint and cancels its lifetime context.
	Close() error
}

// AllgatherValue exchanges a uint64 with every peer: the returned slice
// holds each rank's value (own value included). NoPFS uses this at setup to
// verify that every worker derived the identical access plan.
func AllgatherValue(ctx context.Context, n Network, mine uint64) ([]uint64, error) {
	out := make([]uint64, n.Size())
	out[n.Rank()] = mine
	for peer := 0; peer < n.Size(); peer++ {
		if peer == n.Rank() {
			continue
		}
		resp, err := n.Call(ctx, peer, Request{Kind: KindValue, Value: mine})
		if err != nil {
			return nil, fmt.Errorf("transport: allgather with rank %d: %w", peer, err)
		}
		out[peer] = resp.Value
	}
	return out, nil
}

// ErrClosed is returned when calling through a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnreachable is returned when the peer itself cannot be reached —
// refused dials, severed connections, a peer that shut down. It is
// peer-down evidence for the resilience layer's failure classification,
// distinct from ErrClosed (our own endpoint is closed).
var ErrUnreachable = errors.New("transport: peer unreachable")

// chanCall is one in-flight request on the channel fabric.
type chanCall struct {
	from  int
	req   Request
	reply chan Response
}

// ChanEndpoint is an in-process Network. All endpoints of one fabric share
// an optional bandwidth limiter modelling the interconnect b_c, and see
// each other's shutdown state so a Call to a closed peer fails instead of
// hanging.
type ChanEndpoint struct {
	rank    int
	inboxes []chan chanCall
	dones   []chan struct{}
	limiter *storage.Limiter

	// life is the endpoint's lifetime context, canceled by Close; the serve
	// loop runs handlers and limiter waits under it.
	life     context.Context
	lifeStop context.CancelFunc

	// handler is the installed request handler (latest SetHandler wins);
	// serveOnce ensures a single serve loop regardless of how often the
	// handler is replaced.
	handler   atomic.Pointer[Handler]
	serveOnce sync.Once
	closeOnce sync.Once
}

// NewChanNetwork builds an n-worker in-process fabric. limiter (optional)
// throttles response payload bytes at the configured aggregate rate.
func NewChanNetwork(n int, limiter *storage.Limiter) []*ChanEndpoint {
	inboxes := make([]chan chanCall, n)
	dones := make([]chan struct{}, n)
	for i := range inboxes {
		inboxes[i] = make(chan chanCall, 64)
		dones[i] = make(chan struct{})
	}
	eps := make([]*ChanEndpoint, n)
	for i := 0; i < n; i++ {
		//lint:ignore ctxfirst endpoint-lifetime root created at construction; Close calls lifeStop to sever it
		life, stop := context.WithCancel(context.Background())
		eps[i] = &ChanEndpoint{
			rank: i, inboxes: inboxes, dones: dones, limiter: limiter,
			life: life, lifeStop: stop,
		}
	}
	return eps
}

// Rank implements Network.
func (e *ChanEndpoint) Rank() int { return e.rank }

// Size implements Network.
func (e *ChanEndpoint) Size() int { return len(e.inboxes) }

// SetHandler implements Network and starts the serve loop on first call.
// The handler is stored atomically — replacing it is race-free and the
// single loop always serves the latest one, matching TCPEndpoint.
func (e *ChanEndpoint) SetHandler(h Handler) {
	e.handler.Store(&h)
	e.serveOnce.Do(func() { go e.serveLoop() })
}

// serveLoop answers this endpoint's inbox until Close.
func (e *ChanEndpoint) serveLoop() {
	for {
		select {
		case call := <-e.inboxes[e.rank]:
			// Serve concurrently: a slow (bandwidth-limited) response
			// must not convoy unrelated requests; the limiters already
			// enforce aggregate rates.
			go func(call chanCall) {
				resp := (*e.handler.Load())(e.life, call.from, call.req)
				if len(resp.Data) > 0 {
					if err := e.limiter.Wait(e.life, int64(len(resp.Data))); err != nil {
						resp = Response{} // endpoint closed mid-response
					}
				}
				call.reply <- resp
			}(call)
		case <-e.dones[e.rank]:
			return
		}
	}
}

// Call implements Network.
func (e *ChanEndpoint) Call(ctx context.Context, to int, req Request) (Response, error) {
	if to < 0 || to >= len(e.inboxes) {
		return Response{}, fmt.Errorf("transport: rank %d out of range", to)
	}
	// Fast-fail a pre-canceled context without dispatching to the peer,
	// matching TCPEndpoint.Call (the select below would race the send
	// against ctx.Done()).
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	reply := make(chan Response, 1)
	select {
	case e.inboxes[to] <- chanCall{from: e.rank, req: req, reply: reply}:
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-e.dones[e.rank]:
		return Response{}, ErrClosed
	case <-e.dones[to]:
		return Response{}, fmt.Errorf("transport: rank %d: %w", to, ErrUnreachable)
	}
	select {
	case resp := <-reply:
		return resp, nil
	case <-ctx.Done():
		return Response{}, ctx.Err()
	case <-e.dones[e.rank]:
		return Response{}, ErrClosed
	case <-e.dones[to]:
		return Response{}, fmt.Errorf("transport: rank %d: %w", to, ErrUnreachable)
	}
}

// Close implements Network.
func (e *ChanEndpoint) Close() error {
	e.closeOnce.Do(func() {
		e.lifeStop()
		close(e.dones[e.rank])
	})
	return nil
}
