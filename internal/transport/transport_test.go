package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// bg is the default context for tests that exercise the data paths rather
// than cancellation.
var bg = context.Background()

// echoHandler answers fetches with a payload derived from the sample id and
// value exchanges with its own rank.
func echoHandler(rank int) Handler {
	return func(_ context.Context, from int, req Request) Response {
		switch req.Kind {
		case KindFetch:
			if req.Sample%2 == 1 {
				return Response{OK: false} // odd samples: miss
			}
			return Response{OK: true, Data: []byte(fmt.Sprintf("r%d-s%d", rank, req.Sample))}
		case KindValue:
			return Response{OK: true, Value: uint64(rank) * 100}
		}
		return Response{}
	}
}

// fabric abstracts over the two implementations for shared tests.
type fabric struct {
	name string
	nets []Network
}

func buildFabrics(t *testing.T, n int) []fabric {
	t.Helper()
	chans := NewChanNetwork(n, nil)
	chanNets := make([]Network, n)
	for i, e := range chans {
		chanNets[i] = e
	}
	tcps, err := NewTCPNetwork(n, nil)
	if err != nil {
		t.Fatal(err)
	}
	tcpNets := make([]Network, n)
	for i, e := range tcps {
		tcpNets[i] = e
	}
	return []fabric{{"chan", chanNets}, {"tcp", tcpNets}}
}

func TestCallBothFabrics(t *testing.T) {
	for _, f := range buildFabrics(t, 3) {
		t.Run(f.name, func(t *testing.T) {
			for i, n := range f.nets {
				n.SetHandler(echoHandler(i))
			}
			defer func() {
				for _, n := range f.nets {
					n.Close()
				}
			}()
			resp, err := f.nets[0].Call(bg, 2, Request{Kind: KindFetch, Sample: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !resp.OK || string(resp.Data) != "r2-s4" {
				t.Fatalf("resp = %+v", resp)
			}
			// Miss path.
			resp, err = f.nets[1].Call(bg, 0, Request{Kind: KindFetch, Sample: 3})
			if err != nil {
				t.Fatal(err)
			}
			if resp.OK {
				t.Fatal("odd sample should miss")
			}
			// Out of range.
			if _, err := f.nets[0].Call(bg, 99, Request{Kind: KindValue}); err == nil {
				t.Fatal("out-of-range rank accepted")
			}
		})
	}
}

func TestAllgatherValue(t *testing.T) {
	for _, f := range buildFabrics(t, 4) {
		t.Run(f.name, func(t *testing.T) {
			for i, n := range f.nets {
				n.SetHandler(echoHandler(i))
			}
			defer func() {
				for _, n := range f.nets {
					n.Close()
				}
			}()
			var wg sync.WaitGroup
			results := make([][]uint64, 4)
			for i, n := range f.nets {
				wg.Add(1)
				go func(i int, n Network) {
					defer wg.Done()
					// Handlers reply with rank*100 regardless of the
					// caller's value; rank i's own slot holds its value.
					vals, err := AllgatherValue(bg, n, uint64(i)*100)
					if err != nil {
						t.Errorf("rank %d: %v", i, err)
						return
					}
					results[i] = vals
				}(i, n)
			}
			wg.Wait()
			for i, vals := range results {
				for r, v := range vals {
					if v != uint64(r)*100 {
						t.Errorf("rank %d saw vals[%d] = %d, want %d", i, r, v, r*100)
					}
				}
			}
		})
	}
}

func TestConcurrentFetches(t *testing.T) {
	for _, f := range buildFabrics(t, 4) {
		t.Run(f.name, func(t *testing.T) {
			for i, n := range f.nets {
				n.SetHandler(echoHandler(i))
			}
			defer func() {
				for _, n := range f.nets {
					n.Close()
				}
			}()
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				for j := 0; j < 16; j++ {
					wg.Add(1)
					go func(from, s int) {
						defer wg.Done()
						to := (from + 1 + s) % 4
						if to == from {
							to = (to + 1) % 4
						}
						resp, err := f.nets[from].Call(bg, to, Request{Kind: KindFetch, Sample: int32(s * 2)})
						if err != nil {
							t.Errorf("call: %v", err)
							return
						}
						want := fmt.Sprintf("r%d-s%d", to, s*2)
						if string(resp.Data) != want {
							t.Errorf("got %q, want %q", resp.Data, want)
						}
					}(i, j)
				}
			}
			wg.Wait()
		})
	}
}

func TestRankAndSize(t *testing.T) {
	for _, f := range buildFabrics(t, 2) {
		for i, n := range f.nets {
			if n.Rank() != i || n.Size() != 2 {
				t.Errorf("%s: rank/size = %d/%d", f.name, n.Rank(), n.Size())
			}
			n.Close()
		}
	}
}

func TestChanCallAfterClose(t *testing.T) {
	eps := NewChanNetwork(2, nil)
	eps[0].SetHandler(echoHandler(0))
	eps[1].SetHandler(echoHandler(1))
	eps[0].Close()
	if _, err := eps[0].Call(bg, 1, Request{Kind: KindValue}); err == nil {
		t.Skip("call raced close; acceptable")
	}
	eps[1].Close()
}

func TestTCPCallAfterClose(t *testing.T) {
	eps, err := NewTCPNetwork(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps[0].SetHandler(echoHandler(0))
	eps[1].SetHandler(echoHandler(1))
	eps[1].Close()
	if _, err := eps[0].Call(bg, 1, Request{Kind: KindValue}); err == nil {
		t.Error("call to closed endpoint succeeded")
	}
	eps[0].Close()
	if _, err := eps[0].Call(bg, 1, Request{Kind: KindValue}); err != ErrClosed {
		t.Errorf("want ErrClosed from closed caller, got %v", err)
	}
}

// TestCallCancellation pins the context-first contract on both fabrics: a
// Call blocked on a slow peer must return the context's error promptly when
// the caller cancels, leaving the fabric healthy for later calls.
func TestCallCancellation(t *testing.T) {
	for _, f := range buildFabrics(t, 2) {
		t.Run(f.name, func(t *testing.T) {
			release := make(chan struct{})
			defer close(release)
			f.nets[0].SetHandler(echoHandler(0))
			f.nets[1].SetHandler(func(_ context.Context, from int, req Request) Response {
				<-release // serve only after the test is done
				return Response{OK: true}
			})
			defer func() {
				for _, n := range f.nets {
					n.Close()
				}
			}()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan error, 1)
			go func() {
				_, err := f.nets[0].Call(ctx, 1, Request{Kind: KindFetch, Sample: 2})
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("canceled call returned %v, want context.Canceled", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("canceled call did not return")
			}
			// The endpoint still serves calls under a live context.
			resp, err := f.nets[1].Call(bg, 0, Request{Kind: KindFetch, Sample: 4})
			if err != nil || !resp.OK {
				t.Fatalf("call after cancellation: resp=%+v err=%v", resp, err)
			}
			// A pre-canceled context fails fast without touching the fabric.
			if _, err := f.nets[0].Call(ctx, 1, Request{Kind: KindValue}); !errors.Is(err, context.Canceled) {
				t.Errorf("pre-canceled call returned %v", err)
			}
		})
	}
}

func BenchmarkChanFetch(b *testing.B) {
	eps := NewChanNetwork(2, nil)
	eps[0].SetHandler(echoHandler(0))
	eps[1].SetHandler(echoHandler(1))
	defer eps[0].Close()
	defer eps[1].Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPFetch(b *testing.B) {
	eps, err := NewTCPNetwork(2, nil)
	if err != nil {
		b.Fatal(err)
	}
	eps[0].SetHandler(echoHandler(0))
	eps[1].SetHandler(echoHandler(1))
	defer eps[0].Close()
	defer eps[1].Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eps[0].Call(bg, 1, Request{Kind: KindFetch, Sample: 2}); err != nil {
			b.Fatal(err)
		}
	}
}
