package transport

import (
	"encoding/binary"
	"fmt"
)

// The TCP fabric's wire format, little endian:
//
//	request:  from(4) kind(1) sample(4) value(8)
//	response: ok(1) value(8) len(4) data(len)
//
// The codec lives here, separate from the socket plumbing, so the fuzz tier
// (wire_fuzz_test.go) can hammer the exact bytes-to-struct functions the
// serve and Call loops use.

// reqSize is the fixed request message size.
const reqSize = 4 + 1 + 4 + 8

// respHeadSize is the fixed response header size (the payload follows).
const respHeadSize = 1 + 8 + 4

// maxDataLen caps a response's declared payload length. The length field is
// attacker-controlled on a real network; without the cap, a corrupt or
// malicious header makes the reader allocate up to 4 GiB before the first
// payload byte arrives. Samples are tens of MB at the largest (CosmoFlow
// 512³ is ~0.5 GiB full-paper scale — still under this bound).
const maxDataLen = 1 << 30

// encodeRequest marshals one request message.
func encodeRequest(buf *[reqSize]byte, from int, req Request) {
	binary.LittleEndian.PutUint32(buf[0:4], uint32(from))
	buf[4] = req.Kind
	binary.LittleEndian.PutUint32(buf[5:9], uint32(req.Sample))
	binary.LittleEndian.PutUint64(buf[9:17], req.Value)
}

// decodeRequest unmarshals one request message. Unknown kinds are not an
// error at this layer — the handler answers them with an empty response,
// which is what keeps old endpoints compatible with newer request kinds.
func decodeRequest(b []byte) (from int, req Request, err error) {
	if len(b) < reqSize {
		return 0, Request{}, fmt.Errorf("transport: short request: %d bytes, want %d", len(b), reqSize)
	}
	from = int(int32(binary.LittleEndian.Uint32(b[0:4])))
	req = Request{
		Kind:   b[4],
		Sample: int32(binary.LittleEndian.Uint32(b[5:9])),
		Value:  binary.LittleEndian.Uint64(b[9:17]),
	}
	return from, req, nil
}

// encodeResponseHeader marshals a response's fixed header; the caller
// writes resp.Data afterwards. It reports an error for payloads over the
// wire cap instead of emitting a header the peer will reject.
func encodeResponseHeader(head *[respHeadSize]byte, resp Response) error {
	if len(resp.Data) > maxDataLen {
		return fmt.Errorf("transport: response payload %d exceeds wire cap %d", len(resp.Data), maxDataLen)
	}
	head[0] = 0
	if resp.OK {
		head[0] = 1
	}
	binary.LittleEndian.PutUint64(head[1:9], resp.Value)
	binary.LittleEndian.PutUint32(head[9:13], uint32(len(resp.Data)))
	return nil
}

// decodeResponseHeader unmarshals a response header, returning the declared
// payload length. Lengths over maxDataLen are rejected before any
// allocation happens.
func decodeResponseHeader(b []byte) (resp Response, dataLen uint32, err error) {
	if len(b) < respHeadSize {
		return Response{}, 0, fmt.Errorf("transport: short response header: %d bytes, want %d", len(b), respHeadSize)
	}
	dataLen = binary.LittleEndian.Uint32(b[9:13])
	if dataLen > maxDataLen {
		return Response{}, 0, fmt.Errorf("transport: response declares %d payload bytes, cap is %d", dataLen, maxDataLen)
	}
	resp = Response{
		OK:    b[0] == 1,
		Value: binary.LittleEndian.Uint64(b[1:9]),
	}
	return resp, dataLen, nil
}
