package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Native Go fuzzing for the TCP wire codec: the decode functions face bytes
// from a real network, so they must never panic, must reject malformed
// input cleanly, and must round-trip with the encoders. Seed corpus lives
// under testdata/fuzz/<FuzzName>/; CI runs a short -fuzztime smoke per
// target on every push and a longer pass behind workflow_dispatch.

// FuzzDecodeMessage hammers the request codec: arbitrary bytes must decode
// without panicking, and anything that decodes must re-encode to the exact
// wire prefix it came from.
func FuzzDecodeMessage(f *testing.F) {
	// Valid requests of both kinds, a truncated message, an unknown kind,
	// and all-ones padding.
	var buf [reqSize]byte
	encodeRequest(&buf, 3, Request{Kind: KindFetch, Sample: 12345})
	f.Add(buf[:])
	encodeRequest(&buf, 0, Request{Kind: KindValue, Value: 0xDEADBEEFCAFE})
	f.Add(buf[:])
	encodeRequest(&buf, -1, Request{Kind: 0xFF, Sample: -9, Value: ^uint64(0)})
	f.Add(buf[:])
	f.Add(buf[:5])
	f.Add(bytes.Repeat([]byte{0xFF}, reqSize+3))

	f.Fuzz(func(t *testing.T, data []byte) {
		from, req, err := decodeRequest(data)
		if err != nil {
			if len(data) >= reqSize {
				t.Fatalf("full-size message rejected: %v", err)
			}
			return
		}
		if len(data) < reqSize {
			t.Fatalf("short message (%d bytes) decoded", len(data))
		}
		// Round trip: decode → encode reproduces the wire prefix bit for
		// bit (the codec carries every field).
		var back [reqSize]byte
		encodeRequest(&back, from, req)
		if !bytes.Equal(back[:], data[:reqSize]) {
			t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:reqSize], back[:])
		}
	})
}

// FuzzHeader hammers the response-header codec: no panic, the declared
// payload length is always capped (the allocation guard), and accepted
// headers round-trip.
func FuzzHeader(f *testing.F) {
	var head [respHeadSize]byte
	if err := encodeResponseHeader(&head, Response{OK: true, Value: 7, Data: make([]byte, 9)}); err != nil {
		f.Fatal(err)
	}
	f.Add(head[:])
	if err := encodeResponseHeader(&head, Response{}); err != nil {
		f.Fatal(err)
	}
	f.Add(head[:])
	// A header declaring a 4 GiB payload: must be rejected by the cap.
	var huge [respHeadSize]byte
	binary.LittleEndian.PutUint32(huge[9:13], ^uint32(0))
	f.Add(huge[:])
	f.Add(head[:3])

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, n, err := decodeResponseHeader(data)
		if err != nil {
			if len(data) >= respHeadSize && binary.LittleEndian.Uint32(data[9:13]) <= maxDataLen {
				t.Fatalf("in-cap full-size header rejected: %v", err)
			}
			return
		}
		if len(data) < respHeadSize {
			t.Fatalf("short header (%d bytes) decoded", len(data))
		}
		if n > maxDataLen {
			t.Fatalf("accepted header declares %d bytes, over the %d cap", n, maxDataLen)
		}
		// Round trip through the encoder: equal header bytes except the OK
		// flag, which canonicalises any non-1 truthy byte to 0. Payloads
		// are only materialised below a sanity size — the cap itself admits
		// up to 1 GiB, which would turn the fuzz loop into an allocation
		// benchmark.
		if n <= 1<<16 {
			resp.Data = make([]byte, n)
			var back [respHeadSize]byte
			if err := encodeResponseHeader(&back, resp); err != nil {
				t.Fatalf("re-encoding accepted header failed: %v", err)
			}
			if !bytes.Equal(back[1:], data[1:respHeadSize]) {
				t.Fatalf("round trip diverged:\n in  %x\n out %x", data[:respHeadSize], back[:])
			}
		}
		if (data[0] == 1) != resp.OK {
			t.Fatalf("OK flag mangled: byte %#x decoded as %v", data[0], resp.OK)
		}
	})
}
