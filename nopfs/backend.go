package nopfs

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
)

// StorageBackend is the byte store behind one storage class. Implementations
// must be safe for concurrent use and honour context cancellation on their
// blocking paths (see the embedded interface's contract). The built-in
// kinds are in-memory ("mem") and directory-backed ("dir") stores; custom
// kinds plug in through RegisterBackend and Class.Backend.
type StorageBackend = storage.Backend

// BackendFactory builds one rank's backend for a storage class. The class
// is the per-rank view (Class.Dir already carries the rank suffix inside a
// cluster); rank identifies the worker for factories that shard external
// resources.
type BackendFactory func(ctx context.Context, rank int, class Class) (StorageBackend, error)

// Built-in backend kinds.
const (
	// BackendMemory stores samples in RAM (the default for classes without
	// a Dir).
	BackendMemory = "mem"
	// BackendDir stores one file per sample under Class.Dir (the default
	// for classes with a Dir).
	BackendDir = "dir"
)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend adds a storage-backend kind to the registry. It panics on
// an empty kind, nil factory, or duplicate registration.
func RegisterBackend(kind string, f BackendFactory) {
	if kind == "" || f == nil {
		panic("nopfs: RegisterBackend with empty kind or nil factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[kind]; dup {
		panic(fmt.Sprintf("nopfs: RegisterBackend called twice for %q", kind))
	}
	backends[kind] = f
}

// BackendByKind resolves a registered backend factory.
func BackendByKind(kind string) (BackendFactory, error) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	f, ok := backends[kind]
	if !ok {
		return nil, fmt.Errorf("nopfs: unknown storage backend %q (registered: %v)", kind, backendKindsLocked())
	}
	return f, nil
}

// BackendKinds returns the registered backend kinds, sorted.
func BackendKinds() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	return backendKindsLocked()
}

func backendKindsLocked() []string {
	kinds := make([]string, 0, len(backends))
	for k := range backends {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// backendKind resolves the effective kind for a class: an explicit
// Class.Backend wins; otherwise a Dir selects the directory store and
// everything else the memory store.
func backendKind(c Class) string {
	switch {
	case c.Backend != "":
		return c.Backend
	case c.Dir != "":
		return BackendDir
	default:
		return BackendMemory
	}
}

// newClassBackend builds the backend for one rank's storage class through
// the registry.
func newClassBackend(ctx context.Context, rank int, c Class) (StorageBackend, error) {
	f, err := BackendByKind(backendKind(c))
	if err != nil {
		return nil, err
	}
	b, err := f(ctx, rank, c)
	if err != nil {
		return nil, fmt.Errorf("nopfs: class %q: %w", c.Name, err)
	}
	if b == nil {
		return nil, fmt.Errorf("nopfs: class %q: backend factory %q returned nil", c.Name, backendKind(c))
	}
	return b, nil
}

func init() {
	RegisterBackend(BackendMemory, func(_ context.Context, _ int, c Class) (StorageBackend, error) {
		return storage.NewMemory(c.Name, c.CapacityBytes,
			storage.NewLimiter(c.ReadMBps), storage.NewLimiter(c.WriteMBps)), nil
	})
	RegisterBackend(BackendDir, func(_ context.Context, _ int, c Class) (StorageBackend, error) {
		if c.Dir == "" {
			return nil, fmt.Errorf("backend %q needs Class.Dir", BackendDir)
		}
		return storage.NewFS(c.Name, c.Dir, c.CapacityBytes,
			storage.NewLimiter(c.ReadMBps), storage.NewLimiter(c.WriteMBps))
	})
}
