package nopfs

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// testCancelMidStream cancels the run context after a handful of samples
// and checks the cancellation contract on the given fabric: RunCluster
// returns context.Canceled within bounded time and every goroutine the
// cluster spawned — prefetchers, fabric serve loops, limiter waits — exits.
func testCancelMidStream(t *testing.T, fabricName string) {
	before := runtime.NumGoroutine()
	ds := testDataset(t, 96)
	opts := baseOptions()
	opts.Fabric = fabricName
	opts.Epochs = 4
	// Slow shared filesystem: at cancel time prefetchers are parked inside
	// bandwidth-limiter sleeps, proving the sleeps are interruptible.
	opts.PFSAggregateMBps = 4

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := RunCluster(ctx, ds, 3, opts, func(ctx context.Context, j *Job) error {
			for s, err := range j.Samples(ctx) {
				if err != nil {
					return err
				}
				_ = s
				if delivered.Add(1) == 10 {
					cancel()
				}
			}
			return nil
		})
		done <- result{err}
	}()

	select {
	case r := <-done:
		if !errors.Is(r.err, context.Canceled) {
			t.Fatalf("canceled cluster returned %v, want context.Canceled", r.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled cluster did not tear down in bounded time")
	}
	if n := delivered.Load(); n < 10 {
		t.Fatalf("delivered %d samples before cancel, want >= 10", n)
	}
	// +2 of slack: the runtime may keep a finalizer/timer goroutine warm.
	goroutinesSettle(t, before+2)
}

func TestCancelMidStreamChanFabric(t *testing.T) {
	testCancelMidStream(t, FabricChan)
}

func TestCancelMidStreamTCPFabric(t *testing.T) {
	testCancelMidStream(t, FabricTCP)
}

// TestCancelBeforeStart pins the fast path: a pre-canceled context never
// spins up the cluster.
func TestCancelBeforeStart(t *testing.T) {
	ds := testDataset(t, 32)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCluster(ctx, ds, 2, baseOptions(), DrainAll(nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled cluster returned %v", err)
	}
}

// TestCancelledGetBatchAndSamples pins the consumer-side contract of the
// streaming API: a canceled context surfaces the context error from both
// GetBatch and Samples instead of blocking or reporting a clean end.
func TestCancelledGetBatchAndSamples(t *testing.T) {
	ds := testDataset(t, 64)
	opts := baseOptions()
	opts.Epochs = 2
	_, err := RunCluster(context.Background(), ds, 2, opts, func(_ context.Context, j *Job) error {
		// A consumer-local cancel: the cluster context stays live.
		cctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		if batch, err := j.GetBatch(cctx, 4); err != nil || len(batch) != 4 {
			return err
		}
		cancel()
		if _, err := j.GetBatch(cctx, 4); !errors.Is(err, context.Canceled) {
			t.Errorf("GetBatch under canceled context returned %v", err)
		}
		var iterErr error
		for _, err := range j.Samples(cctx) {
			iterErr = err
		}
		if !errors.Is(iterErr, context.Canceled) {
			t.Errorf("Samples under canceled context yielded %v", iterErr)
		}
		// The job itself is still healthy: drain the rest under a live
		// context so the cluster finishes cleanly.
		for _, err := range j.Samples(context.Background()) {
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunClusterAggregatesRankErrors pins the errors.Join satellite: when
// several ranks fail, every rank's error must be visible in the joined
// result, not just the lowest rank's.
func TestRunClusterAggregatesRankErrors(t *testing.T) {
	ds := testDataset(t, 64)
	opts := baseOptions()
	errRank := [3]error{
		errors.New("rank-0 boom"),
		nil,
		errors.New("rank-2 boom"),
	}
	_, err := RunCluster(context.Background(), ds, 3, opts, func(ctx context.Context, j *Job) error {
		// Drain fully so no rank blocks on a failed peer's cache.
		for _, serr := range j.Samples(ctx) {
			if serr != nil {
				return serr
			}
		}
		return errRank[j.Rank()]
	})
	if err == nil {
		t.Fatal("failing ranks reported no error")
	}
	for _, want := range []error{errRank[0], errRank[2]} {
		if !errors.Is(err, want) {
			t.Errorf("joined error %v does not contain %v", err, want)
		}
	}
}
