package nopfs

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/storage"
	"repro/internal/transport"
)

// This file is the live middleware's half of the fault-injection contract
// (internal/chaos):
//
//   - chaosFabric decorates the run's Fabric, adding deterministic-rate
//     latency/jitter and transient fetch failures to every remote call;
//   - tierThrottle paces reads from a degraded storage class through a
//     storage.Limiter whose rate follows the schedule epoch by epoch;
//   - the Job paces straggler ranks by stretching each fetch to Factor×
//     its measured duration;
//   - node crashes are enacted: the crashed rank delivers only its
//     pre-crash prefix and then closes its fabric endpoint, while
//     survivors absorb its orphaned plan rounds via the shared
//     chaos.RedistributeStream rule (see Job's crash handling in job.go).
//
// The empty profile installs none of this: the run takes exactly the
// fault-free code path.

// errChaosDrop is the injected transient fabric failure. Jobs classify it
// as transient: with a resilience policy it is retried with backoff, and
// on exhaustion (or with the zero policy, immediately) the fetch falls
// back to the PFS, so a dropped fetch degrades throughput without failing
// the run.
var errChaosDrop = errors.New("nopfs: chaos: injected transient fabric failure")

// chaosFabric wraps a fabric so every built endpoint injects faults.
type chaosFabric struct {
	inner Fabric
	sched *chaos.Schedule
}

// Name reports the inner fabric's registry name: fault injection is a
// decorator, not a different transport.
func (f chaosFabric) Name() string { return f.inner.Name() }

func (f chaosFabric) Build(ctx context.Context, workers int, interconnectMBps float64) ([]Endpoint, error) {
	eps, err := f.inner.Build(ctx, workers, interconnectMBps)
	if err != nil {
		return nil, err
	}
	out := make([]Endpoint, len(eps))
	for i, ep := range eps {
		out[i] = &chaosEndpoint{Network: ep, sched: f.sched}
	}
	return out, nil
}

// chaosEndpoint injects per-call latency/jitter and transient failures. The
// fault draw is the schedule's stateless function of (rank, call index); the
// call index is a local counter, so the live failure *rate* matches the
// profile while the exact failing calls vary with scheduling — live runs
// measure wall-clock effects, not schedules.
type chaosEndpoint struct {
	transport.Network
	sched *chaos.Schedule
	calls atomic.Uint64
}

func (e *chaosEndpoint) Call(ctx context.Context, to int, req transport.Request) (transport.Response, error) {
	delay, fail := e.sched.FabricCall(e.Rank(), e.calls.Add(1)-1)
	if delay > 0 {
		timer := time.NewTimer(time.Duration(delay * float64(time.Second)))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return transport.Response{}, ctx.Err()
		}
	}
	// Only sample fetches fail transiently: the setup allgather is control
	// plane (real launchers retry it to death), and failing it would turn a
	// degraded-performance scenario into a failed run.
	if fail && req.Kind == transport.KindFetch {
		return transport.Response{}, errChaosDrop
	}
	return e.Network.Call(ctx, to, req)
}

// tierThrottle paces reads from one degraded storage class: a
// storage.Limiter at base/factor MB/s, whose factor follows the schedule as
// the run advances through epochs. A class with no configured bandwidth is
// throttled against chaos.DefaultLiveTierMBps.
type tierThrottle struct {
	baseMBps float64
	lim      *storage.Limiter
	// mu couples the factor check with the rate update: concurrent fetches
	// straddling an epoch boundary must not leave the limiter's rate
	// disagreeing with the recorded factor.
	mu     sync.Mutex
	factor float64
}

// newTierThrottle builds the throttle for one class at its base rate.
func newTierThrottle(class Class) *tierThrottle {
	base := class.ReadMBps
	if base <= 0 {
		base = chaos.DefaultLiveTierMBps
	}
	return &tierThrottle{baseMBps: base, lim: storage.NewLimiter(base)}
}

// wait paces n bytes at the epoch's degraded rate. factor <= 1 passes
// unthrottled (the limiter at base rate would still pace runs whose class
// declared no bandwidth at all, changing fault-free behaviour).
func (t *tierThrottle) wait(ctx context.Context, factor float64, n int64) error {
	if factor <= 1 {
		return nil
	}
	t.mu.Lock()
	if factor != t.factor {
		t.factor = factor
		t.lim.SetRate(t.baseMBps / factor)
	}
	t.mu.Unlock()
	return t.lim.Wait(ctx, n)
}
