package nopfs

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/chaos"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// chaosProfile is the standard live fault mix: a straggler rank, a degraded
// RAM tier, a degraded PFS, and a flaky fabric. (No crashes: those are
// simulator-only and ignored live.)
func chaosProfile() ChaosProfile {
	return ChaosProfile{
		Name:       "live-test",
		Stragglers: []chaos.Straggler{{Worker: 1, Factor: 2, FromEpoch: 1}},
		Tiers: []chaos.TierDegradation{
			{Class: 0, Factor: 3, FromEpoch: 1},
			{Class: chaos.PFSTier, Factor: 2},
		},
		Fabric: chaos.FabricFault{LatencySeconds: 0.0002, JitterSeconds: 0.0003, FailRate: 0.05},
	}
}

// TestChaosClusterDeliversExactSchedule pins the core chaos contract on the
// live path: under stragglers, degraded tiers, and a flaky fabric, every
// worker still receives exactly its clairvoyant stream — faults degrade
// timing, never correctness.
func TestChaosClusterDeliversExactSchedule(t *testing.T) {
	ds := testDataset(t, 96)
	opts := baseOptions()
	opts.Chaos = chaosProfile()
	const workers = 3
	delivered, stats := runAndCollect(t, ds, workers, opts)

	plan := &access.Plan{
		Seed: opts.Seed, F: ds.Len(), N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
	}
	for w := 0; w < workers; w++ {
		want := plan.WorkerStream(w)
		if len(delivered[w]) != len(want) {
			t.Fatalf("worker %d delivered %d samples under chaos, want %d", w, len(delivered[w]), len(want))
		}
		for i := range want {
			if delivered[w][i] != int(want[i]) {
				t.Fatalf("worker %d position %d: got %d, want %d", w, i, delivered[w][i], want[i])
			}
		}
	}
	for _, s := range stats {
		if s.StallSeconds < 0 {
			t.Errorf("rank %d negative stall under chaos", s.Rank)
		}
	}
}

// TestChaosFabricDropsFallBackToPFS checks injected transient fabric
// failures surface as remote-miss fallbacks, not run failures.
func TestChaosFabricDropsFallBackToPFS(t *testing.T) {
	ds := testDataset(t, 96)
	opts := baseOptions()
	opts.Epochs = 4
	opts.Chaos = ChaosProfile{
		Fabric: chaos.FabricFault{FailRate: 0.5},
	}
	delivered, stats := runAndCollect(t, ds, 3, opts)
	for w := range delivered {
		if len(delivered[w]) == 0 {
			t.Fatalf("worker %d starved under fabric drops", w)
		}
	}
	var falsePos int64
	for _, s := range stats {
		falsePos += s.RemoteFalsePositives
	}
	if falsePos == 0 {
		t.Error("a 50% fabric drop rate produced no remote-miss fallbacks")
	}
}

// TestChaosStragglerSlowsOnlyItsRank compares a clean run against one with
// a heavily straggling rank: the run still completes and the straggler's
// pacing does not corrupt any other rank's schedule.
func TestChaosStragglerSlowsOnlyItsRank(t *testing.T) {
	ds := testDataset(t, 48)
	opts := baseOptions()
	opts.Epochs = 2
	opts.Chaos = ChaosProfile{
		Stragglers: []chaos.Straggler{{Worker: 1, Factor: 3}},
	}
	delivered, _ := runAndCollect(t, ds, 2, opts)
	total := 0
	for _, ids := range delivered {
		total += len(ids)
	}
	if total != 48*2 {
		t.Fatalf("delivered %d samples, want 96", total)
	}
}

// TestChaosEmptyProfileInstallsNothing pins the zero-overhead contract: an
// empty profile must not wrap the fabric, build throttles, or compile a
// schedule — the fault-free code path, exactly.
func TestChaosEmptyProfileInstallsNothing(t *testing.T) {
	ds := testDataset(t, 32)
	opts := baseOptions().withDefaults()
	j, err := newJob(bg, ds, 0, 1, opts, nullEndpoint{}, &pfs{ds: ds})
	if err != nil {
		t.Fatal(err)
	}
	if j.chaosSched != nil || j.chaosTiers != nil {
		t.Error("empty profile installed chaos state on the job")
	}
	var p ChaosProfile
	if p.Compile(opts.Seed) != nil {
		t.Error("empty profile compiled")
	}
}

// nullEndpoint satisfies Endpoint for single-worker job construction tests.
type nullEndpoint struct{}

func (nullEndpoint) Rank() int                    { return 0 }
func (nullEndpoint) Size() int                    { return 1 }
func (nullEndpoint) SetHandler(transport.Handler) {}
func (nullEndpoint) Close() error                 { return nil }
func (nullEndpoint) Call(context.Context, int, transport.Request) (transport.Response, error) {
	return transport.Response{}, transport.ErrClosed
}

// TestChaosClusterGridDeterministicDelivery runs a (scenario × fabric-chan ×
// profile) live grid at two pool widths: schedule-derived metrics must not
// depend on engine parallelism, chaos or not.
func TestChaosClusterGridDeterministicDelivery(t *testing.T) {
	grid := func() *sweep.Grid {
		return ClusterGrid("chaos-live",
			[]ClusterScenario{{
				ID: "c64", Workers: 2,
				Dataset: func() (Dataset, error) {
					return testDataset(t, 64), nil
				},
				Options: NewOptions(
					WithEpochs(2),
					WithBatchPerWorker(4),
					WithStagingBuffer(64<<10),
					WithStagingThreads(2),
					WithClasses(Class{Name: "ram", CapacityBytes: 256 << 10, Threads: 1}),
				),
			}},
			ChanFabric(), 2, 17,
			sweep.ChaosProfiles(ChaosProfile{Name: "clean"}, chaosProfile())...)
	}
	rep2, err := (&sweep.Runner{Parallel: 4}).Run(bg, grid())
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := (&sweep.Runner{Parallel: 1}).Run(bg, grid())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Cells) != 4 { // 1 scenario × 1 fabric × 2 profiles × 2 replicas
		t.Fatalf("%d cells, want 4", len(rep2.Cells))
	}
	for i := range rep2.Cells {
		a, b := rep2.Cells[i], rep1.Cells[i]
		if a.Profile != b.Profile || a.Seed != b.Seed {
			t.Errorf("cell %d enumeration differs across widths", i)
		}
		if a.Outcome.Values[MetricDelivered] != b.Outcome.Values[MetricDelivered] {
			t.Errorf("cell %d delivered differs across widths", i)
		}
		if a.Outcome.Values[MetricDelivered] == 0 {
			t.Errorf("cell %d delivered nothing", i)
		}
	}
}

// TestChaosCancelTearsDownCleanly verifies the chaos decorators (fabric
// sleeps, tier throttles, straggler pacing) all honour cancellation: no
// goroutine outlives a canceled chaotic cluster.
func TestChaosCancelTearsDownCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	ds := testDataset(t, 96)
	opts := baseOptions()
	opts.Epochs = 4
	opts.PFSAggregateMBps = 4 // park prefetchers in limiter waits
	opts.Chaos = chaosProfile()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := RunCluster(ctx, ds, 3, opts, func(ctx context.Context, j *Job) error {
			n := 0
			for _, err := range j.Samples(ctx) {
				if err != nil {
					return err
				}
				if n++; n == 5 {
					cancel()
				}
			}
			return nil
		})
		done <- err
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("canceled chaotic cluster did not tear down in bounded time")
	}
	goroutinesSettle(t, before+2)
}
