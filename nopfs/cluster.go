package nopfs

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/dataset"
	"repro/internal/storage"
)

// verifyPayload checks the integrity envelope of internal/dataset payloads.
func verifyPayload(id int, data []byte) error {
	return dataset.VerifySample(id, data)
}

// RankFunc is one worker's training loop: it consumes the Job's sample
// stream (Samples / GetBatch / Get) until done. ctx is the cluster's run
// context; passing it into the Job's consuming calls makes the loop unwind
// promptly on cancellation.
type RankFunc func(ctx context.Context, job *Job) error

// RunCluster executes an N-worker distributed training job in one process:
// it builds the fabric selected by the options (in-process channels by
// default; see WithFabric and RegisterFabric), wires every worker's Job,
// runs fn concurrently for each worker (the per-rank training loop), and
// returns per-worker stats.
//
// Canceling ctx tears the whole cluster down in bounded time: prefetchers,
// bandwidth waits, fabric calls, and blocked consumers all unwind, every
// goroutine exits, and the context error is reported.
//
// Failures are aggregated: if several ranks fail, the returned error joins
// all of them (errors.Join), each wrapped with its rank.
//
// Every worker sees the dataset "at rest on a PFS" whose aggregate
// bandwidth is Options.PFSAggregateMBps, matching the paper's MLPerf-HPC
// starting condition.
func RunCluster(ctx context.Context, ds Dataset, workers int, opts Options, fn RankFunc) ([]Stats, error) {
	if ctx == nil {
		//lint:ignore ctxfirst documented nil-ctx fallback: v1 callers passing nil get uncancellable Background semantics
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	if err := opts.Validate(ds, workers); err != nil {
		return nil, err
	}
	fab, err := opts.fabric()
	if err != nil {
		return nil, err
	}
	if opts.TraceFetches != nil {
		// One shared serialising writer: per-rank trace lines must not
		// interleave even when the caller passes a plain file or buffer.
		opts.TraceFetches = &syncWriter{w: opts.TraceFetches}
	}
	shared := &pfs{ds: ds, limiter: storage.NewLimiter(opts.PFSAggregateMBps)}
	if sched := opts.Chaos.Compile(opts.Seed); sched != nil {
		// Fault injection: wrap the fabric in the latency/failure decorator
		// and throttle a degraded PFS. The PFS degradation is cluster-wide
		// state, so it applies from startup (per-epoch ramping of a shared
		// tier would need a global epoch clock the live system does not
		// have; the simulator models the ramp exactly).
		fab = chaosFabric{inner: fab, sched: sched}
		if factor := sched.MaxTierFactor(chaos.PFSTier); factor > 1 {
			base := opts.PFSAggregateMBps
			if base <= 0 {
				base = chaos.DefaultLiveTierMBps
			}
			shared.limiter = storage.NewLimiter(base / factor)
		}
	}
	// Observe after any chaos rebuild so the counter follows the limiter
	// that actually paces the run.
	observeLimiter(opts.Metrics, shared.limiter, "pfs")

	nets, err := fab.Build(ctx, workers, opts.InterconnectMBps)
	if err != nil {
		return nil, fmt.Errorf("nopfs: fabric %q: %w", fab.Name(), err)
	}
	if len(nets) != workers {
		for _, n := range nets {
			n.Close()
		}
		return nil, fmt.Errorf("nopfs: fabric %q built %d endpoints for %d workers", fab.Name(), len(nets), workers)
	}
	nets = instrumentFabric(opts.Metrics, nets)

	jobs := make([]*Job, workers)
	for rank := 0; rank < workers; rank++ {
		j, err := newJob(ctx, ds, rank, workers, perRankOptions(opts, rank), nets[rank], shared)
		if err != nil {
			for r := 0; r < rank; r++ {
				jobs[r].Close()
			}
			for r := rank; r < workers; r++ {
				nets[r].Close()
			}
			return nil, fmt.Errorf("nopfs: rank %d: %w", rank, err)
		}
		jobs[rank] = j
	}
	// Start after all handlers are installed (the allgather needs every
	// endpoint serving), and barrier between Start and the training loops:
	// a rank whose chaos schedule crashes it early must not close its
	// endpoint while a slower peer is still mid-allgather. Real launchers
	// have the same property — initialisation completes collectively before
	// any rank trains. Every Start returns (success or error), so the
	// barrier cannot deadlock.
	errs := make([]error, workers)
	var wg, started sync.WaitGroup
	started.Add(workers)
	for rank := range jobs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			err := jobs[rank].Start(ctx)
			started.Done()
			started.Wait()
			if err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(ctx, jobs[rank])
		}(rank)
	}
	wg.Wait()

	stats := make([]Stats, workers)
	for rank, j := range jobs {
		stats[rank] = j.Stats()
		j.Close()
	}
	var failures []error
	for rank, err := range errs {
		if err != nil {
			failures = append(failures, fmt.Errorf("nopfs: rank %d: %w", rank, err))
		}
	}
	if len(failures) > 0 {
		return stats, errors.Join(failures...)
	}
	return stats, nil
}

// perRankOptions gives each rank its own filesystem-backed class directory
// (a shared Dir would make workers share one cache).
func perRankOptions(opts Options, rank int) Options {
	classes := make([]Class, len(opts.Classes))
	copy(classes, opts.Classes)
	for i := range classes {
		if classes[i].Dir != "" {
			classes[i].Dir = fmt.Sprintf("%s/rank%03d", classes[i].Dir, rank)
		}
	}
	opts.Classes = classes
	return opts
}

// DrainAll is a convenience training loop: it consumes the entire stream,
// calling onSample (if non-nil) for every delivered sample.
func DrainAll(onSample func(Sample) error) RankFunc {
	return func(ctx context.Context, j *Job) error {
		for s, err := range j.Samples(ctx) {
			if err != nil {
				return err
			}
			if onSample != nil {
				if err := onSample(s); err != nil {
					return err
				}
			}
		}
		return nil
	}
}
