package nopfs

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/storage"
	"repro/internal/transport"
)

// verifyPayload checks the integrity envelope of internal/dataset payloads.
func verifyPayload(id int, data []byte) error {
	return dataset.VerifySample(id, data)
}

// RunCluster executes an N-worker distributed training job in one process:
// it builds the fabric (in-process channels, or loopback TCP with
// Options.UseTCP), wires every worker's Job, runs fn concurrently for each
// worker (the per-rank training loop), and returns per-worker stats.
//
// Every worker sees the dataset "at rest on a PFS" whose aggregate
// bandwidth is Options.PFSAggregateMBps, matching the paper's MLPerf-HPC
// starting condition.
func RunCluster(ds Dataset, workers int, opts Options, fn func(job *Job) error) ([]Stats, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(ds, workers); err != nil {
		return nil, err
	}
	shared := &pfs{ds: ds, limiter: storage.NewLimiter(opts.PFSAggregateMBps)}
	bc := storage.NewLimiter(opts.InterconnectMBps)

	nets := make([]transport.Network, workers)
	if opts.UseTCP {
		eps, err := transport.NewTCPNetwork(workers, bc)
		if err != nil {
			return nil, err
		}
		for i, e := range eps {
			nets[i] = e
		}
	} else {
		for i, e := range transport.NewChanNetwork(workers, bc) {
			nets[i] = e
		}
	}

	jobs := make([]*Job, workers)
	for rank := 0; rank < workers; rank++ {
		j, err := newJob(ds, rank, workers, perRankOptions(opts, rank), nets[rank], shared)
		if err != nil {
			for r := 0; r < rank; r++ {
				jobs[r].Close()
			}
			return nil, fmt.Errorf("nopfs: rank %d: %w", rank, err)
		}
		jobs[rank] = j
	}
	// Start after all handlers are installed (the allgather needs every
	// endpoint serving).
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := range jobs {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := jobs[rank].Start(); err != nil {
				errs[rank] = err
				return
			}
			errs[rank] = fn(jobs[rank])
		}(rank)
	}
	wg.Wait()

	stats := make([]Stats, workers)
	for rank, j := range jobs {
		stats[rank] = j.Stats()
		j.Close()
	}
	for rank, err := range errs {
		if err != nil {
			return stats, fmt.Errorf("nopfs: rank %d: %w", rank, err)
		}
	}
	return stats, nil
}

// perRankOptions gives each rank its own filesystem-backed class directory
// (a shared Dir would make workers share one cache).
func perRankOptions(opts Options, rank int) Options {
	classes := make([]Class, len(opts.Classes))
	copy(classes, opts.Classes)
	for i := range classes {
		if classes[i].Dir != "" {
			classes[i].Dir = fmt.Sprintf("%s/rank%03d", classes[i].Dir, rank)
		}
	}
	opts.Classes = classes
	return opts
}

// DrainAll is a convenience training loop: it consumes the entire stream,
// calling onSample (if non-nil) for every delivered sample.
func DrainAll(onSample func(Sample) error) func(*Job) error {
	return func(j *Job) error {
		for {
			s, ok, err := j.Get()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if onSample != nil {
				if err := onSample(s); err != nil {
					return err
				}
			}
		}
	}
}
