package nopfs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/chaos"
)

// The elastic-soak tier: live clusters under elastic membership schedules —
// ranks joining and leaving at epoch boundaries — asserting the delivery
// laws the schedules must preserve:
//
//   - every rank delivers exactly its re-partitioned plan stream, in order;
//   - the union of deliveries conserves the plan (each sample exactly once
//     per epoch — nothing lost when a rank sits an epoch out);
//   - a rank never delivers a sample from an epoch outside its membership
//     window, and a rank with an empty window ends cleanly;
//   - teardown leaks no goroutines.
//
// CI runs this file with -race alongside TestChaosSoak (`make chaos-soak`).

// elasticStreams computes the delivery oracle for one elastic run: each
// rank's stream under the plan's re-partitioned epoch ownership.
func elasticStreams(t *testing.T, f, workers int, opts Options) ([][]access.SampleID, *access.Plan) {
	t.Helper()
	spec, err := access.CanonicalSpec(opts.Access)
	if err != nil {
		t.Fatal(err)
	}
	plan := &access.Plan{
		Seed: opts.Seed, F: f, N: workers, E: opts.Epochs,
		BatchPerWorker: opts.BatchPerWorker, DropLast: opts.DropLast,
		Access: spec,
	}
	streams := make([][]access.SampleID, workers)
	for w := range streams {
		streams[w] = plan.WorkerStream(w)
	}
	return streams, plan
}

// delivery is one delivered sample as the training loop saw it.
type delivery struct {
	id, epoch int
}

// runElastic runs a cluster and records every rank's deliveries with the
// epoch each sample was reported under.
func runElastic(t *testing.T, ds Dataset, workers int, opts Options) [][]delivery {
	t.Helper()
	got := make([][]delivery, workers)
	var mu sync.Mutex
	_, err := RunCluster(bg, ds, workers, opts, func(ctx context.Context, j *Job) error {
		var ds []delivery
		for s, err := range j.Samples(ctx) {
			if err != nil {
				return err
			}
			ds = append(ds, delivery{id: s.ID, epoch: s.Epoch})
		}
		mu.Lock()
		got[j.Rank()] = ds
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestElasticSoak(t *testing.T) {
	schedules := []struct{ name, spec string }{
		{"join", "elastic:join=3@1"},
		{"leave", "elastic:leave=1@2"},
		{"churn", "elastic:join=3@1,leave=1@2"},
		// A rank whose membership window is empty: join at the epoch count
		// means it never activates and must end cleanly with zero samples.
		{"never-joins", "elastic:join=3@3"},
	}
	seeds := []uint64{1234, 99}
	if testing.Short() {
		seeds = seeds[:1]
	}
	before := runtime.NumGoroutine()
	for _, sc := range schedules {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				const workers, f = 4, 48
				opts := baseOptions()
				opts.Seed = seed
				opts.Fabric = FabricChan
				opts.Access = sc.spec
				opts.Resilience = DefaultResilience()

				ds := testDataset(t, f)
				got := runElastic(t, ds, workers, opts)
				want, plan := elasticStreams(t, f, workers, opts)

				// Law 1: exact per-rank delivery, in schedule order.
				for w := 0; w < workers; w++ {
					if len(got[w]) != len(want[w]) {
						t.Fatalf("rank %d delivered %d samples, want %d", w, len(got[w]), len(want[w]))
					}
					for i := range want[w] {
						if got[w][i].id != int(want[w][i]) {
							t.Fatalf("rank %d position %d: got %d, want %d", w, i, got[w][i].id, want[w][i])
						}
					}
				}

				// Law 2: conservation — each sample exactly once per epoch
				// across the whole cluster, however the partition moved.
				counts := make(map[int]int)
				for w := range got {
					for _, d := range got[w] {
						counts[d.id]++
					}
				}
				for id := 0; id < f; id++ {
					if counts[id] != opts.Epochs {
						t.Errorf("sample %d delivered %d times, want %d (once per epoch)", id, counts[id], opts.Epochs)
					}
				}

				// Law 3: membership windows — a rank only delivers samples
				// from epochs it is active in.
				for w := range got {
					for _, d := range got[w] {
						activeHere := false
						for _, r := range plan.ActiveRanks(d.epoch) {
							if r == w {
								activeHere = true
								break
							}
						}
						if !activeHere {
							t.Fatalf("rank %d delivered sample %d in epoch %d, outside its membership window", w, d.id, d.epoch)
						}
					}
				}
			})
		}
	}
	// One settle check over the whole matrix, including the empty-window
	// rank whose staging closes before any prefetcher stages a byte.
	goroutinesSettle(t, before+2)
}

// TestWithMembershipSpec pins the option's spec construction: explicit
// join/leave maps become the canonical elastic spec regardless of map
// iteration order, and empty maps reset to uniform.
func TestWithMembershipSpec(t *testing.T) {
	opts := NewOptions(WithMembership(
		map[int]int{3: 1, 2: 2},
		map[int]int{1: 2},
	))
	want := "elastic:join=2@2,join=3@1,leave=1@2"
	canon, err := access.CanonicalSpec(opts.Access)
	if err != nil {
		t.Fatal(err)
	}
	wantCanon, err := access.CanonicalSpec(want)
	if err != nil {
		t.Fatal(err)
	}
	if canon != wantCanon {
		t.Errorf("WithMembership spec = %q (canonical %q), want canonical %q", opts.Access, canon, wantCanon)
	}
	opts = NewOptions(WithAccessPattern("zipf"), WithMembership(nil, nil))
	if opts.Access != "" {
		t.Errorf("empty membership left Access = %q, want uniform", opts.Access)
	}
}

// TestElasticRejectsCrashChaos: the elastic × crash crossing is rejected at
// options validation, before any endpoint is built.
func TestElasticRejectsCrashChaos(t *testing.T) {
	opts := baseOptions()
	opts.Access = "elastic:join=1@1"
	crash, err := chaos.ParseProfile("crash:1@1")
	if err != nil {
		t.Fatal(err)
	}
	opts.Chaos = crash
	ds := testDataset(t, 48)
	if _, err := RunCluster(bg, ds, 3, opts, DrainAll(nil)); err == nil {
		t.Fatal("elastic access pattern × crash chaos accepted")
	}
}
