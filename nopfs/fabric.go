package nopfs

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/transport"
)

// Endpoint is one worker's handle on the cluster fabric: the transport
// layer's Network interface. Custom Fabric implementations return one
// endpoint per rank; the built-in fabrics wrap the in-process channel
// network and the loopback TCP network.
type Endpoint = transport.Network

// Fabric constructs a cluster's communication substrate. Implementations
// are registered by name (RegisterFabric) and selected per run with
// WithFabric / Options.Fabric, making the transport an open extension
// point: in-process channels and loopback TCP are merely the two built-ins.
type Fabric interface {
	// Name is the registry key ("chan", "tcp", ...).
	Name() string
	// Build returns one connected endpoint per rank, all sharing an
	// interconnect bandwidth budget of interconnectMBps (0 = unlimited).
	// ctx bounds setup; endpoints must honour cancellation in Call and
	// release all resources on Close.
	Build(ctx context.Context, workers int, interconnectMBps float64) ([]Endpoint, error)
}

// Built-in fabric names.
const (
	// FabricChan is the in-process channel fabric (the default).
	FabricChan = "chan"
	// FabricTCP is the loopback TCP-socket fabric.
	FabricTCP = "tcp"
)

var (
	fabricMu sync.RWMutex
	fabrics  = map[string]Fabric{}
)

// RegisterFabric adds a fabric to the registry. It panics on an empty name
// or a duplicate registration, mirroring database/sql's driver registry:
// both indicate a programming error, not a runtime condition.
func RegisterFabric(f Fabric) {
	if f == nil || f.Name() == "" {
		panic("nopfs: RegisterFabric with nil fabric or empty name")
	}
	fabricMu.Lock()
	defer fabricMu.Unlock()
	if _, dup := fabrics[f.Name()]; dup {
		panic(fmt.Sprintf("nopfs: RegisterFabric called twice for %q", f.Name()))
	}
	fabrics[f.Name()] = f
}

// FabricByName resolves a registered fabric.
func FabricByName(name string) (Fabric, error) {
	fabricMu.RLock()
	defer fabricMu.RUnlock()
	f, ok := fabrics[name]
	if !ok {
		return nil, fmt.Errorf("nopfs: unknown fabric %q (registered: %v)", name, fabricNamesLocked())
	}
	return f, nil
}

// FabricNames returns the registered fabric names, sorted.
func FabricNames() []string {
	fabricMu.RLock()
	defer fabricMu.RUnlock()
	return fabricNamesLocked()
}

func fabricNamesLocked() []string {
	names := make([]string, 0, len(fabrics))
	for n := range fabrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// chanFabric is the in-process channel fabric.
type chanFabric struct{}

func (chanFabric) Name() string { return FabricChan }

func (chanFabric) Build(ctx context.Context, workers int, interconnectMBps float64) ([]Endpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eps := transport.NewChanNetwork(workers, storage.NewLimiter(interconnectMBps))
	nets := make([]Endpoint, len(eps))
	for i, e := range eps {
		nets[i] = e
	}
	return nets, nil
}

// tcpFabric is the loopback TCP fabric.
type tcpFabric struct{}

func (tcpFabric) Name() string { return FabricTCP }

func (tcpFabric) Build(ctx context.Context, workers int, interconnectMBps float64) ([]Endpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eps, err := transport.NewTCPNetwork(workers, storage.NewLimiter(interconnectMBps))
	if err != nil {
		return nil, err
	}
	nets := make([]Endpoint, len(eps))
	for i, e := range eps {
		nets[i] = e
	}
	return nets, nil
}

func init() {
	RegisterFabric(chanFabric{})
	RegisterFabric(tcpFabric{})
}
