package nopfs

import (
	"context"
	"fmt"

	"repro/internal/sweep"
)

// This file plans live-cluster experiment grids: real RunCluster executions
// — goroutines, staging buffers, storage backends, and a channel or TCP
// fabric — orchestrated by the same sweep engine that runs the simulator
// and trainer grids. Rows are cluster configurations, columns are fabrics,
// and each replica runs the whole cluster under a derived seed.
//
// Unlike simulator cells, live cells measure wall-clock effects: stall
// times and fetch-source mixes vary run to run. The schedule-derived
// metrics (delivered samples) are deterministic, and the engine's
// enumeration order and seed derivation stay bit-stable at any parallelism.

// Live-cluster metric names (the cluster grids' Outcome.Values keys).
const (
	MetricDelivered = "delivered"
	MetricPFSFetch  = "pfs_fetch"
	MetricRemote    = "remote_fetch"
	MetricLocal     = "local_fetch"
	MetricFalsePos  = "false_pos"
	MetricStall     = "stall_s"
	MetricCachedMB  = "cached_mb"
)

// ClusterMetrics is the live grids' result schema: per-run totals across
// all workers.
func ClusterMetrics() []sweep.Metric {
	return []sweep.Metric{
		{Name: MetricDelivered, Label: "delivered"},
		{Name: MetricLocal, Label: "local"},
		{Name: MetricRemote, Label: "remote"},
		{Name: MetricPFSFetch, Label: "pfs"},
		{Name: MetricStall, Label: "stall", Unit: "s"},
		{Name: MetricFalsePos, Hide: true},
		{Name: MetricCachedMB, Hide: true},
	}
}

// ClusterScenario is one live-cluster configuration: a grid row.
type ClusterScenario struct {
	// ID labels the row in reports; Label is an optional caption.
	ID, Label string
	// Workers is the cluster size.
	Workers int
	// Dataset supplies the data source. It is called once per cell; the
	// returned dataset must tolerate concurrent readers (internal/dataset
	// types do).
	Dataset func() (Dataset, error)
	// Options configures the job. Seed and Fabric are overridden per cell
	// by the engine's replica seed and the fabric column.
	Options Options
}

// FabricSpec is one grid column: which transport the cluster runs on. Name
// is both the column label and the fabric-registry key.
type FabricSpec struct {
	Name string
}

// AllFabrics returns one column per registered fabric, sorted by name —
// the built-ins ("chan", "tcp") plus anything added via RegisterFabric.
func AllFabrics() []FabricSpec {
	names := FabricNames()
	specs := make([]FabricSpec, len(names))
	for i, n := range names {
		specs[i] = FabricSpec{Name: n}
	}
	return specs
}

// ChanFabric returns the in-process channel column only.
func ChanFabric() []FabricSpec {
	return []FabricSpec{{Name: FabricChan}}
}

// ClusterOutcome folds per-worker stats into an engine cell outcome,
// keeping the raw per-rank stats as the payload.
func ClusterOutcome(stats []Stats) *sweep.Outcome {
	var delivered, pfs, remote, local, falsePos, cached int64
	var stall float64
	for _, s := range stats {
		delivered += s.Delivered
		pfs += s.Fetches[SourcePFS]
		remote += s.Fetches[SourceRemote]
		local += s.Fetches[SourceLocal]
		falsePos += s.RemoteFalsePositives
		cached += s.CachedBytes
		stall += s.StallSeconds
	}
	return &sweep.Outcome{
		Values: map[string]float64{
			MetricDelivered: float64(delivered),
			MetricPFSFetch:  float64(pfs),
			MetricRemote:    float64(remote),
			MetricLocal:     float64(local),
			MetricFalsePos:  float64(falsePos),
			MetricStall:     stall,
			MetricCachedMB:  float64(cached) / (1 << 20),
		},
		Payload: stats,
	}
}

// ClusterGrid plans (scenario × fabric × fault-profile × replica) live
// cluster runs as a sweep grid. Each cell executes RunCluster with the
// cell's derived seed, draining every worker's stream. The optional
// trailing profiles add a fault-injection axis (sweep.ChaosProfiles builds
// one from chaos profiles); with none, the grid is the legacy
// (scenario × fabric × replica) shape.
func ClusterGrid(name string, scenarios []ClusterScenario, fabrics []FabricSpec, replicas int, baseSeed uint64, profiles ...sweep.ProfileSpec) *sweep.Grid {
	rows := make([]sweep.ScenarioSpec, len(scenarios))
	for i, sc := range scenarios {
		rows[i] = sweep.ScenarioSpec{ID: sc.ID, Label: sc.Label}
	}
	cols := make([]sweep.PolicySpec, len(fabrics))
	for i, f := range fabrics {
		cols[i] = sweep.PolicySpec{Name: f.Name}
	}
	grid := &sweep.Grid{
		Name: name, Scenarios: rows, Policies: cols, Profiles: profiles,
		Replicas: replicas, BaseSeed: baseSeed,
		Metrics: ClusterMetrics(),
	}
	// The binding closes over the grid so a Patterns axis assigned by the
	// caller (nopfs run -access over a grid) reaches the cells.
	grid.Cell = func(si, pi, fi, ai int) sweep.CellFunc {
		sc, f := scenarios[si], fabrics[pi]
		var prof ChaosProfile
		if len(profiles) > 0 {
			prof = profiles[fi].Profile
		}
		var accessSpec string
		if len(grid.Patterns) > 0 {
			accessSpec = grid.Patterns[ai].Spec
		}
		return func(ctx context.Context, seed uint64) (*sweep.Outcome, error) {
			if sc.Dataset == nil {
				return nil, fmt.Errorf("nopfs: cluster scenario %q has no dataset", sc.ID)
			}
			ds, err := sc.Dataset()
			if err != nil {
				return nil, err
			}
			opts := sc.Options
			opts.Seed = seed
			opts.Fabric = f.Name
			opts.Chaos = prof
			if accessSpec != "" {
				opts.Access = accessSpec
			}
			stats, err := RunCluster(ctx, ds, sc.Workers, opts, DrainAll(nil))
			if err != nil {
				return nil, err
			}
			return ClusterOutcome(stats), nil
		}
	}
	return grid
}
