package nopfs

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/access"
	"repro/internal/dataset"
	"repro/internal/sweep"
)

// testClusterGrid plans a 2-scenario × 2-fabric live grid on small
// synthetic datasets.
func testClusterGrid(t *testing.T, replicas int) *sweep.Grid {
	t.Helper()
	scenario := func(id string, f, workers int) ClusterScenario {
		return ClusterScenario{
			ID: id, Label: id + " live cluster",
			Workers: workers,
			Dataset: func() (Dataset, error) {
				return dataset.New(dataset.Spec{
					Name: id, F: f, MeanSize: 2048, StddevSize: 512, Classes: 10, Seed: 21,
				})
			},
			Options: Options{
				Epochs: 2, BatchPerWorker: 4,
				StagingBytes: 64 << 10, StagingThreads: 2,
				Classes:       []Class{{Name: "ram", CapacityBytes: 256 << 10, Threads: 1}},
				VerifySamples: true,
			},
		}
	}
	return ClusterGrid("live-test",
		[]ClusterScenario{scenario("c64", 64, 2), scenario("c96", 96, 3)},
		AllFabrics(), replicas, 77)
}

// TestClusterGridRunsLiveCells executes real clusters — channel and TCP
// fabrics — through the sweep engine and checks the schedule-derived
// metrics against the clairvoyant plan.
func TestClusterGridRunsLiveCells(t *testing.T) {
	grid := testClusterGrid(t, 1)
	rep, err := (&sweep.Runner{Parallel: 2}).Run(bg, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("%d cells, want 2 scenarios × 2 fabrics", len(rep.Cells))
	}
	want := map[string]int64{}
	for _, sc := range []struct {
		id         string
		f, workers int
	}{{"c64", 64, 2}, {"c96", 96, 3}} {
		plan := &access.Plan{Seed: 77, F: sc.f, N: sc.workers, E: 2, BatchPerWorker: 4}
		total := 0
		for w := 0; w < sc.workers; w++ {
			total += len(plan.WorkerStream(w))
		}
		want[sc.id] = int64(total)
	}
	for _, c := range rep.Cells {
		if c.Outcome.Failed {
			t.Fatalf("cell %s/%s failed: %s", c.Scenario, c.Policy, c.Outcome.FailReason)
		}
		if got := int64(c.Outcome.Values[MetricDelivered]); got != want[c.Scenario] {
			t.Errorf("%s/%s delivered %d samples, want %d", c.Scenario, c.Policy, got, want[c.Scenario])
		}
		stats, ok := c.Outcome.Payload.([]Stats)
		if !ok || len(stats) == 0 {
			t.Errorf("%s/%s carries no per-rank stats payload", c.Scenario, c.Policy)
		}
	}
	// The schedule-derived metric must also be stable across engine pool
	// widths (live wall-clock metrics are not, and are not compared).
	rep1, err := (&sweep.Runner{Parallel: 1}).Run(bg, testClusterGrid(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Cells {
		a, b := rep.Cells[i], rep1.Cells[i]
		if a.Scenario != b.Scenario || a.Policy != b.Policy || a.Seed != b.Seed {
			t.Errorf("cell %d enumeration differs across parallelism", i)
		}
		if a.Outcome.Values[MetricDelivered] != b.Outcome.Values[MetricDelivered] {
			t.Errorf("cell %d delivered count differs across parallelism", i)
		}
	}
}

// TestClusterGridReplicaSeeds checks replica cells run under distinct
// derived seeds and aggregate into per-metric summaries.
func TestClusterGridReplicaSeeds(t *testing.T) {
	grid := ClusterGrid("live-replicas",
		[]ClusterScenario{{
			ID: "c48", Workers: 2,
			Dataset: func() (Dataset, error) {
				return dataset.New(dataset.Spec{
					Name: "c48", F: 48, MeanSize: 1024, Classes: 4, Seed: 9,
				})
			},
			Options: Options{
				Epochs: 1, BatchPerWorker: 4,
				StagingBytes: 64 << 10, StagingThreads: 2,
			},
		}},
		ChanFabric(), 3, 5)
	rep, err := (&sweep.Runner{Parallel: 3}).Run(bg, grid)
	if err != nil {
		t.Fatal(err)
	}
	seeds := map[uint64]bool{}
	for _, c := range rep.Cells {
		seeds[c.Seed] = true
	}
	if len(seeds) != 3 {
		t.Errorf("%d distinct seeds across 3 replicas", len(seeds))
	}
	sums := rep.Aggregate()
	if len(sums) != 1 || sums[0].Metric(MetricDelivered).N != 3 {
		t.Errorf("aggregate shape wrong: %+v", sums)
	}
	var buf bytes.Buffer
	if err := sweep.WriteText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	for _, wantStr := range []string{"c48", "delivered", "95% CI"} {
		if !bytes.Contains(buf.Bytes(), []byte(wantStr)) {
			t.Errorf("live text report missing %q:\n%s", wantStr, buf.String())
		}
	}
}

// failingDataset returns read errors once a sample-id threshold of reads
// has been crossed, exercising the prefetcher failure path.
type failingDataset struct {
	Dataset
	reads     atomic.Int64
	failAfter int64
}

var errInjected = errors.New("injected read failure")

func (d *failingDataset) ReadSample(id int) ([]byte, error) {
	if d.reads.Add(1) > d.failAfter {
		return nil, errInjected
	}
	return d.Dataset.ReadSample(id)
}

// TestClusterPrefetchErrorSurfaces pins the failure path the race fix
// hardened: a prefetcher hitting a fatal read error must surface it through
// Get on every affected rank, concurrently with consumers — not hang, not
// race.
func TestClusterPrefetchErrorSurfaces(t *testing.T) {
	base := testDataset(t, 96)
	ds := &failingDataset{Dataset: base, failAfter: 40}
	opts := baseOptions()
	opts.Epochs = 3
	_, err := RunCluster(bg, ds, 3, opts, DrainAll(nil))
	if err == nil {
		t.Fatal("injected read failure did not surface")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("got %v, want the injected failure", err)
	}
}

// TestClusterEarlyConsumerStop exercises shutdown while prefetchers are
// mid-flight: the consumer walks away after a few samples and RunCluster
// must drain and close every rank cleanly.
func TestClusterEarlyConsumerStop(t *testing.T) {
	ds := testDataset(t, 96)
	opts := baseOptions()
	opts.Epochs = 3
	_, err := RunCluster(bg, ds, 3, opts, func(ctx context.Context, j *Job) error {
		for i := 0; i < 5; i++ {
			if _, ok, err := j.Get(ctx); err != nil || !ok {
				return err
			}
		}
		return nil // stop early; Close runs with prefetchers active
	})
	if err != nil {
		t.Fatal(err)
	}
}
